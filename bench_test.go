package genomedsm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/dbpack"
	"genomedsm/internal/experiments"
	"genomedsm/internal/heuristics"
	"genomedsm/internal/search"
	"genomedsm/internal/server"
	"genomedsm/internal/shard"
	"genomedsm/internal/swar"
)

// benchCtx returns an experiment context sized for the Go benchmark
// harness: heavily scaled inputs, trimmed grids, output discarded.
func benchCtx() *experiments.Ctx {
	ctx := experiments.New(io.Discard, 100)
	ctx.Quick = true
	return ctx
}

// runExperiment benchmarks one paper experiment end to end.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := benchCtx().Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure: the benchmark regenerates the
// experiment on micro-scaled inputs; cmd/benchtables regenerates the same
// experiments at presentation scale.

func BenchmarkTable1Heuristic(b *testing.B)       { runExperiment(b, "table1") }
func BenchmarkFig9Speedups(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkFig10Breakdown(b *testing.B)        { runExperiment(b, "fig10") }
func BenchmarkTable2BlastComparison(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3BlockingSweep(b *testing.B)   { runExperiment(b, "table3") }
func BenchmarkTable4Blocked(b *testing.B)         { runExperiment(b, "table4") }
func BenchmarkFig13BlockVsNoBlock(b *testing.B)   { runExperiment(b, "fig13") }
func BenchmarkFig14DotPlot(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15Phase2(b *testing.B)           { runExperiment(b, "fig15") }
func BenchmarkFig16GlobalAlign(b *testing.B)      { runExperiment(b, "fig16") }
func BenchmarkFig18Preprocess(b *testing.B)       { runExperiment(b, "fig18") }
func BenchmarkFig19BandSchemes(b *testing.B)      { runExperiment(b, "fig19") }
func BenchmarkFig20IOModes(b *testing.B)          { runExperiment(b, "fig20") }
func BenchmarkSec6ReverseRetrieval(b *testing.B)  { runExperiment(b, "sec6") }
func BenchmarkTables567Example(b *testing.B)      { runExperiment(b, "tables567") }
func BenchmarkAblations(b *testing.B)             { runExperiment(b, "ablations") }

// Kernel micro-benchmarks: cost per dynamic-programming cell for the
// exact and the heuristic recurrences (the constants behind every table).

func benchPair(n int) (bio.Sequence, bio.Sequence) {
	g := bio.NewGenerator(99)
	s := g.Random(n)
	return s, g.MutatedCopy(s, bio.DefaultMutationModel())
}

// reportCells reports throughput in DP cells per second, the unit the
// benchdiff regression harness tracks. cells is the number of matrix
// cells computed per benchmark iteration. (SetBytes with the same count
// also makes MB/s read as Mcells/s, kept for go-test familiarity.) It
// also turns on the allocs/op column, which pins the buffer-reuse work
// in the kernels and the wavefront strategies.
func reportCells(b *testing.B, cells int64) {
	b.Helper()
	b.ReportAllocs()
	b.SetBytes(cells)
	b.Cleanup(func() {
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(cells)*float64(b.N)/s, "cells/s")
		}
	})
}

func BenchmarkKernelExactScan(b *testing.B) {
	s, t := benchPair(1000)
	reportCells(b, int64(s.Len())*int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// ForceScalar keeps this benchmark the scalar denominator the
		// striped kernels are measured against (and the oracle they are
		// tested against); KernelStripedScan times the fast path.
		if _, err := align.Scan(s, t, bio.DefaultScoring(), align.ScanOptions{ForceScalar: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelHeuristicScan(b *testing.B) {
	s, t := benchPair(1000)
	reportCells(b, int64(s.Len())*int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristics.Scan(s, t, bio.DefaultScoring(),
			heuristics.Params{Open: 12, Close: 12, MinScore: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelColumnScan(b *testing.B) {
	s, t := benchPair(1000)
	reportCells(b, int64(s.Len())*int64(t.Len()))
	// A nil visit makes ColumnScan return without scanning (nothing
	// would observe the columns); the no-op keeps the kernel honest.
	visit := func(j int, col []int32) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := align.ColumnScan(s, t, bio.DefaultScoring(), visit); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelGotoh(b *testing.B) {
	s, t := benchPair(500)
	sc := align.AffineScoring{Match: 1, Mismatch: -1, GapOpen: -3, GapExtend: -1}
	var al align.AffineAligner // reused layer matrices: steady-state allocs only
	reportCells(b, int64(s.Len())*int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := al.BestLocalAffine(s, t, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelStepRow times the row kernel alone — two resident rows,
// no queue, no allocation — isolating the per-cell transition cost from
// Scan's setup and candidate handling.
func BenchmarkKernelStepRow(b *testing.B) {
	s, t := benchPair(1000)
	kern, err := heuristics.NewKernel(s, t, bio.DefaultScoring(),
		heuristics.Params{Open: 12, Close: 12, MinScore: 30})
	if err != nil {
		b.Fatal(err)
	}
	m, n := s.Len(), t.Len()
	prev := make([]heuristics.Cell, n+1)
	cur := make([]heuristics.Cell, n+1)
	reportCells(b, int64(m)*int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := range prev {
			prev[x] = heuristics.Cell{}
		}
		for r := 1; r <= m; r++ {
			cur[0] = heuristics.Cell{}
			kern.StepRow(prev, cur, r, 1, nil)
			prev, cur = cur, prev
		}
	}
}

// benchBatch returns a query plus count same-length random targets for
// the inter-sequence kernels: random data keeps every int8 lane far from
// the saturation cap, so the benchmark times the pure packed path.
func benchBatch(n, count int) (bio.Sequence, []bio.Sequence) {
	g := bio.NewGenerator(77)
	q := g.Random(n)
	targets := make([]bio.Sequence, count)
	for i := range targets {
		targets[i] = g.Random(n)
	}
	return q, targets
}

// BenchmarkKernelSWARScan times the 8-lane int8 inter-sequence kernel on
// a full lane group: 8 pairwise comparisons per pass, 8 DP cells per
// packed word. The acceptance bar for this kernel is ≥ 2× the scalar
// KernelExactScan cells/s.
func BenchmarkKernelSWARScan(b *testing.B) {
	q, targets := benchBatch(1000, 8)
	var al swar.Aligner
	sc := bio.DefaultScoring()
	reportCells(b, int64(len(targets))*int64(q.Len())*int64(q.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := al.Scan8(q, targets, sc); !ok {
			b.Fatal("Scan8 rejected default scoring")
		}
	}
}

// BenchmarkKernelSWARScan16 times the 4-lane int16 fallback kernel.
func BenchmarkKernelSWARScan16(b *testing.B) {
	q, targets := benchBatch(1000, 4)
	var al swar.Aligner
	sc := bio.DefaultScoring()
	reportCells(b, int64(len(targets))*int64(q.Len())*int64(q.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := al.Scan16(q, targets, sc); !ok {
			b.Fatal("Scan16 rejected default scoring")
		}
	}
}

// benchRandomPair returns two independent random sequences: unrelated
// data keeps local scores far below the int8 cap, so the striped
// benchmarks time the pure packed path with no fallback.
func benchRandomPair(n int) (bio.Sequence, bio.Sequence) {
	g := bio.NewGenerator(77)
	return g.Random(n), g.Random(n)
}

// BenchmarkKernelStripedScan times the striped intra-sequence int8
// kernel on a single pair — the Farrar-layout counterpart of the
// inter-sequence SWARScan, and the fast path behind align.Scan. The
// acceptance bar is ≥ 2× the scalar KernelExactScan cells/s.
func BenchmarkKernelStripedScan(b *testing.B) {
	s, t := benchRandomPair(1000)
	var al swar.Aligner
	sc := bio.DefaultScoring()
	reportCells(b, int64(s.Len())*int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := al.StripedScan8(s, t, sc); !ok {
			b.Fatal("StripedScan8 saturated on random data")
		}
	}
}

// BenchmarkKernelStripedScan16 times the 4-lane int16 striped fallback.
func BenchmarkKernelStripedScan16(b *testing.B) {
	s, t := benchRandomPair(1000)
	var al swar.Aligner
	sc := bio.DefaultScoring()
	reportCells(b, int64(s.Len())*int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := al.StripedScan16(s, t, sc); !ok {
			b.Fatal("StripedScan16 saturated on random data")
		}
	}
}

// BenchmarkSearchDatabase times the full multicore database scan: lane
// batching, the worker pool over all host cores, and the top-K merge.
func BenchmarkSearchDatabase(b *testing.B) {
	g := bio.NewGenerator(88)
	q := g.Random(1000)
	var db []bio.Record
	cells := int64(0)
	for i := 0; i < 64; i++ {
		t := g.Random(500 + i*17%1000)
		db = append(db, bio.Record{ID: fmt.Sprintf("r%d", i), Seq: t})
		cells += int64(q.Len()) * int64(t.Len())
	}
	reportCells(b, cells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Run(q, db, search.Options{NoEndpoints: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchUniformDB is the BenchmarkSearchDatabase workload, shared by the
// dispatch-mode variants so their cells/s numbers are comparable.
func benchUniformDB() (bio.Sequence, []bio.Record, int64) {
	g := bio.NewGenerator(88)
	q := g.Random(1000)
	var db []bio.Record
	cells := int64(0)
	for i := 0; i < 64; i++ {
		t := g.Random(500 + i*17%1000)
		db = append(db, bio.Record{ID: fmt.Sprintf("r%d", i), Seq: t})
		cells += int64(q.Len()) * int64(t.Len())
	}
	return q, db, cells
}

// benchSearch runs one search benchmark over a prebuilt workload with a
// warmup pass outside the timer, so one-time calibration (auto mode
// probes the kernel families on first use) never lands in the measured
// window.
func benchSearch(b *testing.B, q bio.Sequence, db []bio.Record, cells int64, opt search.Options) {
	b.Helper()
	if _, err := search.Run(q, db, opt); err != nil {
		b.Fatal(err)
	}
	reportCells(b, cells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Run(q, db, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchDatabaseDispatch / ...Fixed time the uniform database
// under calibrated auto routing versus the legacy fixed thresholds.
// ci.sh gates auto at ≥ 1.0× fixed: on a uniform workload the cost
// model must pick the same int8 word-pass route, so any gap is routing
// overhead.
func BenchmarkSearchDatabaseDispatch(b *testing.B) {
	q, db, cells := benchUniformDB()
	benchSearch(b, q, db, cells, search.Options{NoEndpoints: true, Dispatch: "auto"})
}

func BenchmarkSearchDatabaseFixed(b *testing.B) {
	q, db, cells := benchUniformDB()
	benchSearch(b, q, db, cells, search.Options{NoEndpoints: true, Dispatch: "fixed"})
}

// BenchmarkSearchDatabaseSharded times the uniform database scan
// scattered across a 4-shard in-process cluster (scatter, per-shard
// scan, floor gossip, merge). ci.sh gates it against
// BenchmarkSearchDatabase: the distribution layer must hold parity with
// a single-node scan on one host, since its wins come from adding
// hosts, not from overhead.
func BenchmarkSearchDatabaseSharded(b *testing.B) {
	q, recs, cells := benchUniformDB()
	db := search.NewDB(recs)
	c, err := shard.New(db, shard.Options{Shards: 4, Lease: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	opt := search.Options{NoEndpoints: true}
	if _, err := c.Search(context.Background(), q, opt); err != nil {
		b.Fatal(err)
	}
	reportCells(b, cells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(context.Background(), q, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMixedDB builds the workload adaptive dispatch exists for: two
// dozen long planted homologs whose scores blow past the int8 clean cap
// (every narrow scan of them is a doomed pass plus an int16 retry), and
// a long tail of short noise records that can never saturate (length ×
// match stays under the cap) where the int8 word-pass is unbeatable. No
// single fixed route wins both halves: the int8 ladder pays the doomed
// pass on every homolog group, forced int16 halves throughput on the
// noise, and auto learns the saturation rate and splits the routes.
func benchMixedDB() (bio.Sequence, []bio.Record, int64) {
	g := bio.NewGenerator(88)
	q := g.Random(1000)
	var db []bio.Record
	cells := int64(0)
	add := func(id string, t bio.Sequence) {
		db = append(db, bio.Record{ID: id, Seq: t})
		cells += int64(q.Len()) * int64(t.Len())
	}
	for i := 0; i < 16; i++ {
		pad := g.Random(250 + i*7)
		add(fmt.Sprintf("hom%d", i), append(pad.Clone(), g.MutatedCopy(q, bio.DefaultMutationModel())...))
	}
	for i := 0; i < 360; i++ {
		add(fmt.Sprintf("r%d", i), g.Random(60+i*67%68)) // 60..127: below the int8 cap
	}
	return q, db, cells
}

func BenchmarkSearchDatabaseMixed(b *testing.B) {
	q, db, cells := benchMixedDB()
	benchSearch(b, q, db, cells, search.Options{NoEndpoints: true, Dispatch: "auto"})
}

func BenchmarkSearchDatabaseMixedFixed(b *testing.B) {
	q, db, cells := benchMixedDB()
	benchSearch(b, q, db, cells, search.Options{NoEndpoints: true, Dispatch: "fixed"})
}

// BenchmarkSearchDatabaseMixedLanes16 is the other single-route
// baseline on the mixed workload: every group forced down the int16
// word-pass, the right call for the homologs and a ~2× loss on the
// short noise.
func BenchmarkSearchDatabaseMixedLanes16(b *testing.B) {
	q, db, cells := benchMixedDB()
	benchSearch(b, q, db, cells, search.Options{NoEndpoints: true, Lanes: 16})
}

// benchSkewedDB builds the skewed search workload the pruning gate is
// measured on: a handful of planted full-query homologs padded out to be
// the LONGEST records, followed by a long tail of shorter noise. The
// length-sorted scan order therefore meets the planted hits first, the
// top-K floor ratchets to the query's identity score immediately, and
// every noise record is either skipped by the O(1) record bound or
// abandoned at the first cadence check.
func benchSkewedDB() (bio.Sequence, []bio.Record, int64) {
	g := bio.NewGenerator(88)
	q := g.Random(1000)
	var db []bio.Record
	cells := int64(0)
	add := func(id string, t bio.Sequence) {
		db = append(db, bio.Record{ID: id, Seq: t})
		cells += int64(q.Len()) * int64(t.Len())
	}
	for i := 0; i < 12; i++ {
		pad := g.Random(450 + i*4)
		add(fmt.Sprintf("hom%d", i), append(pad.Clone(), q...))
	}
	for i := 0; i < 150; i++ {
		add(fmt.Sprintf("r%d", i), g.Random(300+i*1000/150))
	}
	return q, db, cells
}

// BenchmarkSearchDatabaseSkewed is the unpruned denominator of the
// pruning gate: the identical skewed database scanned end to end.
func BenchmarkSearchDatabaseSkewed(b *testing.B) {
	q, db, cells := benchSkewedDB()
	reportCells(b, cells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Run(q, db, search.Options{NoEndpoints: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchDatabaseSkewedFixed is the fixed-route baseline of the
// skewed workload; ci.sh gates the default (auto-dispatched) skewed
// scan at ≥ 1.0× this.
func BenchmarkSearchDatabaseSkewedFixed(b *testing.B) {
	q, db, cells := benchSkewedDB()
	benchSearch(b, q, db, cells, search.Options{NoEndpoints: true, Dispatch: "fixed"})
}

// BenchmarkSearchDatabasePruned runs the same skewed database with the
// three-stage exact pruning pipeline on. ci.sh gates this at ≥ 1.5× the
// cells/s of both SearchDatabaseSkewed and SearchDatabase; the cells
// denominator is the full matrix so the ratio reads as true end-to-end
// speedup, not work actually performed.
func BenchmarkSearchDatabasePruned(b *testing.B) {
	q, db, cells := benchSkewedDB()
	reportCells(b, cells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.Run(q, db, search.Options{NoEndpoints: true, Prune: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelFullMatrix(b *testing.B) {
	s, t := benchPair(500)
	reportCells(b, int64(s.Len())*int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := align.BestLocal(s, t, bio.DefaultScoring()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelReverseRetrieve(b *testing.B) {
	s, t := benchPair(1000)
	sc := bio.DefaultScoring()
	r, err := align.Scan(s, t, sc, align.ScanOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var rt align.Retriever // reused sparse arenas: steady-state allocs only
	reportCells(b, int64(s.Len())*int64(t.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rt.ReverseRetrieve(s, t, sc, r.BestI, r.BestJ, r.BestScore); err != nil {
			b.Fatal(err)
		}
	}
}

// Resident-service benchmarks: end-to-end HTTP query cost against the
// in-process search server. The workload is deliberately tiny (16-base
// queries, 16 short records) so the per-request fixed costs — HTTP
// round trip, JSON, per-scan setup — dominate the DP work; that is the
// regime the batching path exists for. ci.sh gates
// ServeThroughputBatched at ≥ 1.5× ServeQueryLatency queries/s: one
// POST carrying BatchMax queries shares a single database scan and one
// round trip, so the amortization must show up even on one core.

// benchServeQueries builds the shared serve workload: the HTTP test
// server (resident over a small synthetic database) plus count query
// sequences and the per-query full-matrix cell count.
func benchServeQueries(b *testing.B, count int) (*httptest.Server, []bio.Sequence, int64) {
	b.Helper()
	g := bio.NewGenerator(88)
	var recs []bio.Record
	bases := int64(0)
	for i := 0; i < 16; i++ {
		t := g.Random(40 + i*24%25)
		recs = append(recs, bio.Record{ID: fmt.Sprintf("r%d", i), Seq: t})
		bases += int64(t.Len())
	}
	queries := make([]bio.Sequence, count)
	for i := range queries {
		queries[i] = g.Random(16)
	}
	srv, err := server.New(server.Config{
		DB:      search.NewDB(recs),
		Options: search.Options{TopK: 5, NoEndpoints: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	b.Cleanup(func() {
		hs.Close()
		srv.Shutdown(context.Background())
	})
	return hs, queries, 16 * bases
}

// benchServePost sends one /search POST and fails the benchmark on any
// non-200 answer; the response body must be drained for the keep-alive
// connection to be reused.
func benchServePost(b *testing.B, c *http.Client, url string, body []byte) {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("search answered %d", resp.StatusCode)
	}
}

// reportQueries adds the queries/s metric the serve gate reads,
// alongside reportCells' cells/s for the benchdiff snapshot.
func reportQueries(b *testing.B, perIter int) {
	b.Cleanup(func() {
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(perIter)*float64(b.N)/s, "queries/s")
		}
	})
}

// BenchmarkServeQueryLatency times the sequential client: one query per
// POST, a full HTTP round trip and a private database scan each.
func BenchmarkServeQueryLatency(b *testing.B) {
	hs, queries, cellsPerQuery := benchServeQueries(b, 1)
	body, err := json.Marshal(map[string]any{"query": queries[0].String(), "top_k": 5})
	if err != nil {
		b.Fatal(err)
	}
	c := hs.Client()
	url := hs.URL + "/search"
	benchServePost(b, c, url, body) // warmup: dispatch calibration, conn setup
	reportCells(b, cellsPerQuery)
	reportQueries(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServePost(b, c, url, body)
	}
}

// BenchmarkServeThroughputBatched times the batched client: 16 queries
// in one POST, which the server answers with one shared scan.
func BenchmarkServeThroughputBatched(b *testing.B) {
	const batch = 16
	hs, queries, cellsPerQuery := benchServeQueries(b, batch)
	qs := make([]map[string]any, batch)
	for i, q := range queries {
		qs[i] = map[string]any{"seq": q.String(), "top_k": 5}
	}
	body, err := json.Marshal(map[string]any{"queries": qs})
	if err != nil {
		b.Fatal(err)
	}
	c := hs.Client()
	url := hs.URL + "/search"
	benchServePost(b, c, url, body)
	reportCells(b, int64(batch)*cellsPerQuery)
	reportQueries(b, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServePost(b, c, url, body)
	}
}

func BenchmarkCompareBlocked8(b *testing.B) {
	g := bio.NewGenerator(123)
	pair, err := g.HomologousPair(1500, bio.DefaultHomologyModel(1500))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(pair.S, pair.T, Options{
			Strategy: StrategyHeuristicBlock, Processors: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPackDB is a database sized so pack load cost is visible: 256
// records around 1kb each, with the default 11-mer prefilter index
// embedded (the index decode is most of a v1 load).
func benchPackDB() (bio.Sequence, []bio.Record, int64) {
	g := bio.NewGenerator(88)
	q := g.Random(1000)
	var db []bio.Record
	cells := int64(0)
	for i := 0; i < 256; i++ {
		t := g.Random(500 + i*37%1000)
		db = append(db, bio.Record{ID: fmt.Sprintf("r%d", i), Seq: t})
		cells += int64(q.Len()) * int64(t.Len())
	}
	return q, db, cells
}

// benchPackFile writes the benchPackDB database as one pack file in the
// given format and returns its path.
func benchPackFile(b *testing.B, format string) string {
	b.Helper()
	_, recs, _ := benchPackDB()
	p, err := dbpack.Build(recs, 11)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench-"+format+".pack")
	if format == "v2" {
		err = dbpack.WriteFileV2(path, p)
	} else {
		err = dbpack.WriteFile(path, p)
	}
	if err != nil {
		b.Fatal(err)
	}
	return path
}

// benchPackColdStart times open → first-query-ready: load the pack,
// answer one short query through the full fast path (lane layout
// included), close. This is the serve-restart metric the v2 format
// exists for; ci.sh gates v2 mmap at ≥ 2× the v1 decode.
func benchPackColdStart(b *testing.B, format string) {
	path := benchPackFile(b, format)
	q := bio.NewGenerator(7).Random(12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := dbpack.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := search.RunCtx(context.Background(), q, p.DB, search.Options{NoEndpoints: true, Lanes: 8}); err != nil {
			b.Fatal(err)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPackColdStartV1(b *testing.B) { benchPackColdStart(b, "v1") }
func BenchmarkPackColdStartV2(b *testing.B) { benchPackColdStart(b, "v2") }

// BenchmarkSearchDatabasePackV2 scans through an mmap-opened v2 pack:
// the kernels read lane words straight out of the mapped section.
// Comparable against BenchmarkSearchDatabase8 tier numbers via cells/s.
func BenchmarkSearchDatabasePackV2(b *testing.B) {
	path := benchPackFile(b, "v2")
	p, err := dbpack.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	q, _, cells := benchPackDB()
	opt := search.Options{NoEndpoints: true}
	if _, err := search.RunCtx(context.Background(), q, p.DB, opt); err != nil {
		b.Fatal(err)
	}
	reportCells(b, cells)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.RunCtx(context.Background(), q, p.DB, opt); err != nil {
			b.Fatal(err)
		}
	}
}
