// Package genomedsm is the public API of the GenomeDSM library: a
// reproduction of "Parallel Strategies for Local Biological Sequence
// Alignment in a Cluster of Workstations" (Boukerche, de Melo,
// Ayala-Rincón, Walter). It compares long DNA sequences with the
// Smith–Waterman algorithm parallelized over a simulated cluster of
// workstations running a JIAJIA-style software DSM, using the paper's
// three strategies, and retrieves the actual alignments of the similar
// regions with distributed Needleman–Wunsch (phase 2).
//
// Quick start:
//
//	pair, _ := genomedsm.NewGenerator(42).HomologousPair(10000, genomedsm.DefaultHomologyModel(10000))
//	rep, err := genomedsm.Compare(pair.S, pair.T, genomedsm.Options{
//		Strategy:   genomedsm.StrategyHeuristicBlock,
//		Processors: 8,
//		Phase2:     true,
//	})
//
// The heavy lifting lives in the internal packages (align, heuristics,
// dsm, cluster, wavefront, preprocess, phase2, blast); this package wires
// them into the paper's end-to-end pipeline.
package genomedsm

import (
	"context"
	"fmt"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/heuristics"
	"genomedsm/internal/phase2"
	"genomedsm/internal/preprocess"
	"genomedsm/internal/search"
	"genomedsm/internal/wavefront"
)

// Re-exported substrate types, so callers need only this package for the
// common paths.
type (
	// Sequence is a DNA sequence.
	Sequence = bio.Sequence
	// Scoring is the column scoring scheme (+1/−1/−2 by default).
	Scoring = bio.Scoring
	// Alignment is a concrete alignment with coordinates and operations.
	Alignment = align.Alignment
	// Candidate is one similar region found by phase 1.
	Candidate = heuristics.Candidate
	// HeuristicParams are the §4.1 open/close/threshold parameters.
	HeuristicParams = heuristics.Params
	// BlockConfig is strategy 2's bands×blocks decomposition.
	BlockConfig = wavefront.BlockConfig
	// PreprocessConfig is strategy 3's parameter set.
	PreprocessConfig = preprocess.Config
	// PreprocessResult is strategy 3's scoreboard outcome.
	PreprocessResult = preprocess.Result
	// ClusterConfig is the virtual-time cost model.
	ClusterConfig = cluster.Config
	// Breakdown is a virtual-time accounting split (Fig. 10).
	Breakdown = cluster.Breakdown
	// DSMStats are coherence-protocol counters.
	DSMStats = dsm.Stats
	// Generator produces reproducible synthetic DNA.
	Generator = bio.Generator
	// HomologyModel controls planted-region generation.
	HomologyModel = bio.HomologyModel
	// MutationModel controls synthetic divergence.
	MutationModel = bio.MutationModel
	// Record is one FASTA database record (ID + sequence).
	Record = bio.Record
	// SearchOptions configures a database scan (Search).
	SearchOptions = search.Options
	// SearchHit is one top-K hit of a database scan.
	SearchHit = search.Hit
	// SearchResult is the outcome of a database scan.
	SearchResult = search.Result
	// SearchPruneStats reports what the exact pruning pipeline did
	// during a scan (SearchOptions.Prune); see search.PruneStats.
	SearchPruneStats = search.PruneStats
)

// Re-exported constructors and helpers.
var (
	// NewSequence validates a string into a Sequence.
	NewSequence = bio.NewSequence
	// NewGenerator returns a seeded synthetic-DNA generator.
	NewGenerator = bio.NewGenerator
	// DefaultScoring is the paper's +1/−1/−2 scheme.
	DefaultScoring = bio.DefaultScoring
	// DefaultHomologyModel scales the paper's similar-region density.
	DefaultHomologyModel = bio.DefaultHomologyModel
	// DefaultMutationModel is the default synthetic-divergence model.
	DefaultMutationModel = bio.DefaultMutationModel
	// ReadFASTAFile loads sequences from a FASTA file.
	ReadFASTAFile = bio.ReadFASTAFile
	// Calibrated2005 is the cost model of the paper's testbed.
	Calibrated2005 = cluster.Calibrated2005
	// MultiplierConfig converts the paper's blocking-multiplier notation.
	MultiplierConfig = wavefront.MultiplierConfig
)

// Strategy selects one of the paper's three parallel strategies.
type Strategy int

// The strategies, in the paper's order.
const (
	// StrategyHeuristic is §4.2: linear-space heuristic scan, per-cell
	// border handoff (no blocking factors).
	StrategyHeuristic Strategy = iota
	// StrategyHeuristicBlock is §4.3: the same scan with bands × blocks
	// blocking factors.
	StrategyHeuristicBlock
	// StrategyPreprocess is §5: the exact recurrence with a hit
	// scoreboard and optional column saving (no candidate queue).
	StrategyPreprocess
)

func (s Strategy) String() string {
	switch s {
	case StrategyHeuristic:
		return "heuristic"
	case StrategyHeuristicBlock:
		return "heuristic-block"
	case StrategyPreprocess:
		return "pre-process"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Options configures Compare. The zero value plus Processors is usable:
// it runs the blocked heuristic strategy with the paper's defaults.
type Options struct {
	Strategy   Strategy
	Processors int
	// Scoring defaults to +1/−1/−2.
	Scoring *Scoring
	// Heuristics defaults to heuristics.DefaultParams (strategies 1–2).
	Heuristics *HeuristicParams
	// Blocking defaults to the paper's favourite 5×5 multiplier
	// (strategy 2 only).
	Blocking *BlockConfig
	// Preprocess defaults to preprocess.DefaultConfig (strategy 3 only).
	Preprocess *PreprocessConfig
	// Cluster defaults to the calibrated 2005 testbed model.
	Cluster *ClusterConfig
	// Phase2 additionally runs the distributed global alignment over the
	// found regions (strategies 1–2).
	Phase2 bool
	// Phase2LinearSpace, when positive, makes phase 2 switch regions whose
	// full matrix would exceed this many cells to Hirschberg's linear-
	// space algorithm (double time, linear memory — §6's reference [9]).
	Phase2LinearSpace int
}

// Report is the outcome of Compare.
type Report struct {
	Strategy   Strategy
	Processors int
	// Candidates are the phase-1 similar regions (strategies 1–2).
	Candidates []Candidate
	// Alignments are the phase-2 global alignments (when Phase2 was set),
	// index-aligned with Candidates.
	Alignments []*Alignment
	// Preprocess carries strategy 3's result matrix and I/O metrics.
	Preprocess *PreprocessResult
	// Phase1Time and Phase2Time are simulated parallel times (seconds on
	// the modelled cluster).
	Phase1Time float64
	Phase2Time float64
	// Breakdowns per node (phase 1), and aggregate DSM statistics.
	Breakdowns []Breakdown
	Stats      DSMStats
}

func (o *Options) fill() (Options, error) {
	out := *o
	if out.Processors == 0 {
		out.Processors = 1
	}
	if out.Processors < 1 {
		return out, fmt.Errorf("genomedsm: processors %d", out.Processors)
	}
	if out.Scoring == nil {
		s := bio.DefaultScoring()
		out.Scoring = &s
	}
	if out.Heuristics == nil {
		h := heuristics.DefaultParams()
		out.Heuristics = &h
	}
	if out.Blocking == nil {
		b := wavefront.MultiplierConfig(5, 5, out.Processors)
		out.Blocking = &b
	}
	if out.Preprocess == nil {
		p := preprocess.DefaultConfig()
		out.Preprocess = &p
	}
	if out.Cluster == nil {
		c := cluster.Calibrated2005()
		out.Cluster = &c
	}
	return out, nil
}

// Compare runs the selected strategy over s and t on the simulated
// cluster and, optionally, phase 2.
func Compare(s, t Sequence, opts Options) (*Report, error) {
	o, err := opts.fill()
	if err != nil {
		return nil, err
	}
	rep := &Report{Strategy: o.Strategy, Processors: o.Processors}
	switch o.Strategy {
	case StrategyHeuristic, StrategyHeuristicBlock:
		var res *wavefront.Result
		if o.Strategy == StrategyHeuristic {
			res, err = wavefront.RunNoBlock(o.Processors, *o.Cluster, s, t, *o.Scoring, *o.Heuristics)
		} else {
			bc := *o.Blocking
			// Clamp the decomposition to the matrix when the caller kept
			// defaults on small inputs.
			if bc.Bands > s.Len() {
				bc.Bands = s.Len()
			}
			if bc.Blocks > t.Len() {
				bc.Blocks = t.Len()
			}
			res, err = wavefront.RunBlocked(o.Processors, *o.Cluster, s, t, *o.Scoring, *o.Heuristics, bc)
		}
		if err != nil {
			return nil, err
		}
		rep.Candidates = res.Candidates
		rep.Phase1Time = res.Makespan
		rep.Breakdowns = res.Breakdowns
		rep.Stats = res.Stats
		if o.Phase2 && len(res.Candidates) > 0 {
			p2, err := phase2.RunWithOptions(o.Processors, *o.Cluster, s, t, *o.Scoring,
				phase2.JobsFromCandidates(res.Candidates),
				phase2.RunOptions{LinearSpaceThreshold: o.Phase2LinearSpace})
			if err != nil {
				return nil, err
			}
			rep.Alignments = p2.Alignments
			rep.Phase2Time = p2.Makespan
		}
	case StrategyPreprocess:
		res, err := preprocess.Run(o.Processors, *o.Cluster, s, t, *o.Scoring, *o.Preprocess, &preprocess.DiscardSink{})
		if err != nil {
			return nil, err
		}
		rep.Preprocess = res
		rep.Phase1Time = res.Makespan
		rep.Breakdowns = res.Breakdowns
		rep.Stats = res.Stats
	default:
		return nil, fmt.Errorf("genomedsm: unknown strategy %d", o.Strategy)
	}
	return rep, nil
}

// ColumnSink receives the columns saved by the pre-process strategy.
type ColumnSink = preprocess.ColumnSink

// NewDirSink returns a ColumnSink writing binary column files under dir.
var NewDirSink = preprocess.NewDirSink

// Preprocess runs strategy 3 with a caller-provided sink for the saved
// columns (Compare uses a counting sink; use this entry point to actually
// keep the data, as the paper does for later re-processing).
func Preprocess(s, t Sequence, opts Options, sink ColumnSink) (*PreprocessResult, error) {
	o, err := opts.fill()
	if err != nil {
		return nil, err
	}
	return preprocess.Run(o.Processors, *o.Cluster, s, t, *o.Scoring, *o.Preprocess, sink)
}

// Search scans a sequence database for the best local alignments of q:
// records are scored by the inter-sequence SWAR kernels (8 int8 lanes
// per machine word, widening per lane on overflow) over a worker pool
// of host cores, and the top-K hits come back with exact scores and
// alignment spans. Unlike Compare, which models the paper's 2005
// cluster in virtual time, Search uses the real hardware for
// throughput — the database-search workload of DSA and SWAPHI.
func Search(q Sequence, db []Record, opt SearchOptions) (*SearchResult, error) {
	return search.Run(q, db, opt)
}

// SearchDB is a prepared database: records plus the derived scan state
// (canonical order, prefilter index) built once and reused across
// queries. Build with NewSearchDB, or load a pre-packed one with
// internal/dbpack via `genomedsm index`/`serve`.
type SearchDB = search.DB

// NewSearchDB prepares a database for repeated scans.
func NewSearchDB(recs []Record) *SearchDB { return search.NewDB(recs) }

// SearchPrepared is Search over a prepared database with a context:
// cancelling ctx aborts the scan at the next lane-group boundary.
// Results are bit-identical to Search with the same options.
func SearchPrepared(ctx context.Context, q Sequence, db *SearchDB, opt SearchOptions) (*SearchResult, error) {
	return search.RunCtx(ctx, q, db, opt)
}

// AffineScoring is the affine gap-penalty scheme for BestLocalAffine.
type AffineScoring = align.AffineScoring

// BestLocalAffine computes one optimal local alignment under affine gap
// penalties (Gotoh's algorithm) — a library extension beyond the paper's
// linear scheme.
func BestLocalAffine(s, t Sequence, sc AffineScoring) (*Alignment, error) {
	return align.BestLocalAffine(s, t, sc)
}

// RetrieveFromBlock re-processes one interesting result-matrix block of a
// pre-process run from its saved data and retrieves the alignments it
// contains (the §5 "later processing"). The store is the sink used during
// the run (MemSink or DirSink).
func RetrieveFromBlock(s, t Sequence, sc Scoring, res *PreprocessResult, store preprocess.Store, band, group int, cfg PreprocessConfig) ([]*Alignment, error) {
	return preprocess.RetrieveFromBlock(s, t, sc, res, store, band, group, cfg)
}

// BestLocalAlignment computes one exact optimal local alignment in linear
// space using the paper's Section 6 method (scan + retrieval over the
// reverses) — the exact counterpart to the heuristic pipeline.
func BestLocalAlignment(s, t Sequence, sc Scoring) (*Alignment, error) {
	al, _, err := align.BestLocalLinear(s, t, sc)
	return al, err
}

// GlobalAlignment computes the optimal global alignment (Needleman–
// Wunsch, §2.3) of two sequences.
func GlobalAlignment(s, t Sequence, sc Scoring) (*Alignment, error) {
	return align.Global(s, t, sc)
}
