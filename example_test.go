package genomedsm_test

import (
	"fmt"
	"log"

	"genomedsm"
)

// ExampleGlobalAlignment reproduces the paper's Fig. 1.
func ExampleGlobalAlignment() {
	s, _ := genomedsm.NewSequence("GACGGATTAG")
	t, _ := genomedsm.NewSequence("GATCGGAATAG")
	al, err := genomedsm.GlobalAlignment(s, t, genomedsm.DefaultScoring())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("score %d\n", al.Score)
	fmt.Print(al.Render(s, t))
	// Output:
	// score 6
	// GA_CGGATTAG
	// || |||| |||
	// GATCGGAATAG
}

// ExampleBestLocalAlignment finds an exact local alignment in linear
// space (the Section 6 method).
func ExampleBestLocalAlignment() {
	s, _ := genomedsm.NewSequence("TCTCGACGGATTAGTATATATATA")
	t, _ := genomedsm.NewSequence("ATATGATCGGAATAGCTCT")
	al, err := genomedsm.BestLocalAlignment(s, t, genomedsm.DefaultScoring())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("score %d ending at s[%d], t[%d]\n", al.Score, al.SEnd, al.TEnd)
	// Output:
	// score 6 ending at s[14], t[15]
}

// ExampleCompare runs the paper's blocked parallel strategy on a
// synthetic pair with one planted similar region.
func ExampleCompare() {
	g := genomedsm.NewGenerator(1)
	pair, err := g.HomologousPair(2000, genomedsm.HomologyModel{
		Regions: 1, RegionLen: 120,
		Divergence: genomedsm.MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := genomedsm.Compare(pair.S, pair.T, genomedsm.Options{
		Strategy:   genomedsm.StrategyHeuristicBlock,
		Processors: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d similar region(s) found by %d simulated nodes\n",
		len(rep.Candidates), rep.Processors)
	// Output:
	// 1 similar region(s) found by 4 simulated nodes
}
