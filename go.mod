module genomedsm

go 1.22
