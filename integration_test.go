package genomedsm_test

import (
	"testing"

	"genomedsm"
	"genomedsm/internal/align"
	"genomedsm/internal/blast"
	"genomedsm/internal/cluster"
	"genomedsm/internal/preprocess"
)

// TestEndToEndAllSystemsAgree is the capstone integration test: one
// synthetic genome pair goes through every system in the repository —
// both heuristic parallel strategies, the exact pre-process strategy,
// phase 2, the Section 6 retrieval, and the BlastN baseline — and their
// findings must be mutually consistent.
func TestEndToEndAllSystemsAgree(t *testing.T) {
	g := genomedsm.NewGenerator(777)
	const n = 3000
	pair, err := g.HomologousPair(n, genomedsm.HomologyModel{
		Regions: 6, RegionLen: 200, RegionJit: 40,
		Divergence: genomedsm.MutationModel{SubstitutionRate: 0.04},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := genomedsm.DefaultScoring()
	h := genomedsm.HeuristicParams{Open: 12, Close: 12, MinScore: 80}
	zero := cluster.Zero()

	// 1. Both heuristic strategies, with phase 2.
	rep1, err := genomedsm.Compare(pair.S, pair.T, genomedsm.Options{
		Strategy: genomedsm.StrategyHeuristic, Processors: 4,
		Heuristics: &h, Cluster: &zero, Phase2: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := genomedsm.Compare(pair.S, pair.T, genomedsm.Options{
		Strategy: genomedsm.StrategyHeuristicBlock, Processors: 8,
		Heuristics: &h, Cluster: &zero, Phase2: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Candidates) != len(rep2.Candidates) {
		t.Fatalf("strategies found %d vs %d regions", len(rep1.Candidates), len(rep2.Candidates))
	}
	if len(rep1.Candidates) < 6 {
		t.Fatalf("only %d regions found for 6 planted", len(rep1.Candidates))
	}

	// 2. Every planted region is recovered by phase 1 and phase 2.
	for _, r := range pair.Regions {
		foundCand, foundAl := false, false
		for i, c := range rep2.Candidates {
			if c.SBegin <= r.SEnd && r.SBegin <= c.SEnd && c.TBegin <= r.TEnd && r.TBegin <= c.TEnd {
				foundCand = true
				al := rep2.Alignments[i]
				if al != nil && al.Identity() > 0.85 {
					foundAl = true
				}
				break
			}
		}
		if !foundCand || !foundAl {
			t.Errorf("planted region %+v: candidate=%v alignment=%v", r, foundCand, foundAl)
		}
	}

	// 3. The exact pre-process scoreboard lights up where (and only
	// roughly where) the candidates are.
	pc := preprocess.Config{
		BandScheme: preprocess.BandFixed, BandSize: 500,
		ChunkSize: 500, ResultInterleave: 500, Threshold: 80,
	}
	pres, err := preprocess.Run(4, zero, pair.S, pair.T, sc, pc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pres.TotalHits == 0 {
		t.Fatal("exact scoreboard empty despite strong candidates")
	}
	for _, c := range rep2.Candidates {
		band := -1
		for b, bd := range pres.Bands {
			if c.SEnd >= bd.R0 && c.SEnd <= bd.R1 {
				band = b
			}
		}
		group := c.TEnd / pc.ResultInterleave
		if band >= 0 && pres.ResultMatrix[band][group] == 0 {
			t.Errorf("candidate ending at (%d,%d) has an empty scoreboard block (%d,%d)",
				c.SEnd, c.TEnd, band, group)
		}
	}

	// 4. Section 6 exact retrieval at the pre-process best cell agrees
	// with the exact best score and validates.
	al, _, err := align.ReverseRetrieve(pair.S, pair.T, sc, pres.BestI, pres.BestJ, pres.BestScore)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != pres.BestScore {
		t.Errorf("retrieved %d, scoreboard best %d", al.Score, pres.BestScore)
	}
	if err := al.Validate(pair.S, pair.T, sc); err != nil {
		t.Error(err)
	}

	// 5. The BlastN baseline finds the same strong regions (Table 2).
	opt := blast.DefaultOptions()
	opt.MinScore = 80
	hits, err := blast.Search(pair.S, pair.T, sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < len(rep2.Candidates)/2 {
		t.Errorf("blast found %d regions, candidates %d", len(hits), len(rep2.Candidates))
	}
	for _, c := range rep2.Candidates[:min(3, len(rep2.Candidates))] {
		near := false
		for _, hit := range hits {
			if hit.SBegin <= c.SEnd && c.SBegin <= hit.SEnd && hit.TBegin <= c.TEnd && c.TBegin <= hit.TEnd {
				near = true
				break
			}
		}
		if !near {
			t.Errorf("candidate %+v has no overlapping blast hit", c)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
