// Command dotplot renders the similar-region dot plot of the paper's
// Fig. 14: every local alignment found between two sequences becomes a
// diagonal segment in the (s, t) plane.
//
// Usage:
//
//	dotplot -n 20000 -seed 7                 # ASCII to stdout
//	dotplot -s a.fa -t b.fa -svg plot.svg    # SVG file
package main

import (
	"flag"
	"fmt"
	"os"

	"genomedsm"
	"genomedsm/internal/bio"
	"genomedsm/internal/heuristics"
	"genomedsm/internal/viz"
)

func main() {
	var (
		n        = flag.Int("n", 20000, "synthetic sequence length (when no FASTA given)")
		seed     = flag.Int64("seed", 7, "synthetic generator seed")
		sFile    = flag.String("s", "", "FASTA file for sequence s")
		tFile    = flag.String("t", "", "FASTA file for sequence t")
		minScore = flag.Int("minscore", 40, "candidate score threshold")
		width    = flag.Int("width", 78, "ASCII plot width")
		height   = flag.Int("height", 32, "ASCII plot height")
		svgOut   = flag.String("svg", "", "write an SVG file instead of ASCII output")
	)
	flag.Parse()
	if err := run(*n, *seed, *sFile, *tFile, *minScore, *width, *height, *svgOut); err != nil {
		fmt.Fprintln(os.Stderr, "dotplot:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, sFile, tFile string, minScore, width, height int, svgOut string) error {
	var s, t genomedsm.Sequence
	if sFile != "" && tFile != "" {
		sr, err := bio.ReadFASTAFile(sFile)
		if err != nil {
			return err
		}
		tr, err := bio.ReadFASTAFile(tFile)
		if err != nil {
			return err
		}
		if len(sr) == 0 || len(tr) == 0 {
			return fmt.Errorf("empty FASTA input")
		}
		s, t = sr[0].Seq, tr[0].Seq
	} else {
		pair, err := bio.NewGenerator(seed).HomologousPair(n, bio.DefaultHomologyModel(n))
		if err != nil {
			return err
		}
		s, t = pair.S, pair.T
	}

	cands, err := heuristics.Scan(s, t, bio.DefaultScoring(),
		heuristics.Params{Open: 12, Close: 12, MinScore: minScore})
	if err != nil {
		return err
	}
	plot := &viz.DotPlot{SLen: s.Len(), TLen: t.Len(), Regions: cands}
	if svgOut != "" {
		if err := os.WriteFile(svgOut, []byte(plot.SVG(800, 800)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s with %d regions\n", svgOut, len(cands))
		return nil
	}
	fmt.Print(plot.ASCII(width, height))
	return nil
}
