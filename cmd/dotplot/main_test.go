package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunASCII(t *testing.T) {
	if err := run(800, 3, "", "", 30, 40, 16, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSVG(t *testing.T) {
	out := filepath.Join(t.TempDir(), "plot.svg")
	if err := run(800, 3, "", "", 30, 40, 16, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}

func TestRunFASTAErrors(t *testing.T) {
	if err := run(0, 0, "/nonexistent.fa", "/nonexistent.fa", 30, 40, 16, ""); err == nil {
		t.Error("missing FASTA accepted")
	}
}
