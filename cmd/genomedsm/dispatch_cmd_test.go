package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"genomedsm/internal/dispatch"
)

// TestMain points the dispatch calibration cache at a throwaway dir for
// every test in this package: searchCmd's auto mode persists probe
// results to the user cache dir otherwise, and tests must not write
// outside their sandbox.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "genomedsm-dispatch-cache")
	if err != nil {
		panic(err)
	}
	os.Setenv("GENOMEDSM_DISPATCH_CACHE", dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestSearchCmdCalibrateText(t *testing.T) {
	var buf bytes.Buffer
	if err := searchCmd([]string{"-calibrate"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "kernel calibration for") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, fam := range []string{"scalar", "inter8", "inter16", "striped8", "striped16", "band"} {
		if !strings.Contains(out, fam) {
			t.Errorf("family %s missing from table:\n%s", fam, out)
		}
	}
	if !strings.Contains(out, "Mcells/s") || !strings.Contains(out, "overhead ns") {
		t.Errorf("missing table columns:\n%s", out)
	}
	// The first run persisted the profile; a repeat run must report the
	// cached source instead of re-probing.
	buf.Reset()
	if err := searchCmd([]string{"-calibrate"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(cached)") {
		t.Errorf("second calibration did not use the cache:\n%s", buf.String())
	}
}

func TestSearchCmdCalibrateJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := searchCmd([]string{"-calibrate", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var prof dispatch.Profile
	if err := json.Unmarshal(buf.Bytes(), &prof); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if prof.Version != dispatch.ProfileVersion || prof.Host == "" || prof.Build == "" {
		t.Errorf("profile header: %+v", prof)
	}
	if len(prof.Families) != len(dispatch.Families) {
		t.Fatalf("profile holds %d families, want %d: %+v", len(prof.Families), len(dispatch.Families), prof)
	}
	for fam, st := range prof.Families {
		if st.MCells <= 0 {
			t.Errorf("family %s: non-positive throughput %+v", fam, st)
		}
	}
}

// TestSearchCmdDispatchModes pins the routing flag contract: every mode
// returns the identical hit list on the same synthetic database, and an
// unknown mode is rejected.
func TestSearchCmdDispatchModes(t *testing.T) {
	hits := func(mode string) []searchJSONHit {
		t.Helper()
		var buf bytes.Buffer
		args := []string{"-n", "350", "-db-size", "40", "-db-len", "250", "-k", "6", "-json", "-dispatch", mode}
		if err := searchCmd(args, &buf); err != nil {
			t.Fatalf("dispatch=%s: %v", mode, err)
		}
		var rep searchJSON
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		if len(rep.Hits) == 0 {
			t.Fatalf("dispatch=%s found no hits", mode)
		}
		return rep.Hits
	}
	want := hits("scalar")
	for _, mode := range []string{"auto", "fixed"} {
		got := hits(mode)
		if len(got) != len(want) {
			t.Fatalf("dispatch=%s: %d hits, scalar %d", mode, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("dispatch=%s hit %d: %+v, scalar %+v", mode, i, got[i], want[i])
			}
		}
	}
	var buf bytes.Buffer
	if err := searchCmd([]string{"-dispatch", "warp", "-n", "50", "-db-size", "4"}, &buf); err == nil {
		t.Error("unknown dispatch mode accepted")
	}
}
