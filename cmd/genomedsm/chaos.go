package main

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"genomedsm/internal/chaos"
	"genomedsm/internal/recovery"
)

// chaosCmd implements `genomedsm chaos`: the seeded fault-injection and
// schedule-exploration sweep. Every strategy is run under N explored
// schedules — permuted lock grants, barrier orders and eviction victims,
// plus injected message delays and reordering, and optionally message
// loss/duplication (-loss, -dup) and crash-stop faults with recovery
// (-kill node@point) — and its results are checked bit-for-bit against
// the sequential baseline. A failing interleaving prints its plan seed;
// `-replay` reruns exactly that interleaving and dumps its protocol
// trace, including any crash/recovery events.
func chaosCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("genomedsm chaos", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		seed      = fs.Int64("seed", 1, "master seed: derives the input pair and every schedule's fault plan")
		schedules = fs.Int("schedules", 4, "schedules to explore per strategy")
		strategy  = fs.String("strategy", "all", "strategy to check: noblock | blocked | blockedmp | preprocess | phase2 | all")
		procs     = fs.Int("procs", 4, "simulated cluster size")
		n         = fs.Int("len", 600, "generated sequence length")
		cache     = fs.Int("cache", 4, "per-node page-cache slots (forces eviction traffic; -1 = strategy default)")
		timeout   = fs.Duration("timeout", 60*time.Second, "per-run watchdog; an overrun is reported as a hang")
		noFaults  = fs.Bool("no-faults", false, "disable message faults (schedule exploration only)")
		replay    = fs.Int64("replay", 0, "replay one run with this plan seed (requires a single -strategy) and dump its trace")
		traceTail = fs.Int("trace", 64, "protocol trace events to show for a divergence or replay")
		kill      = fs.String("kill", "", "crash-stop schedule: comma-separated node@point[+delay] specs, e.g. 1@2 or 1@2+0.05 (not applied to blockedmp)")
		loss      = fs.Float64("loss", 0, "per-attempt message-loss probability, all classes (at-least-once delivery with dedup)")
		dup       = fs.Float64("dup", 0, "probability a delivered message arrives twice (duplicate suppressed by sequence numbers)")

		searchMode = fs.Bool("search", false, "check the sharded database-search layer instead of the DSM strategies")
		shards     = fs.Int("shards", 4, "(with -search) shard cluster width")
		queries    = fs.Int("queries", 2, "(with -search) queries per scattered batch")
		reorder    = fs.Float64("reorder", 0, "(with -search) per-message reorder probability")
		killShard  = fs.String("kill-shard", "", "(with -search) crash one worker: shard@groups, e.g. 1@1 kills shard 1 after its first lane group")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if *loss < 0 || *loss >= 1 || *dup < 0 || *dup >= 1 || *reorder < 0 || *reorder >= 1 {
		return fmt.Errorf("-loss, -dup and -reorder must be probabilities in [0, 1)")
	}
	if *searchMode {
		return chaosSearch(w, chaosSearchArgs{
			seed: *seed, schedules: *schedules, shards: *shards, queries: *queries,
			loss: *loss, dup: *dup, reorder: *reorder, killShard: *killShard,
			replay: *replay,
		})
	}

	var sts []chaos.Strategy
	if *strategy == "all" || *strategy == "" {
		sts = chaos.AllStrategies()
	} else {
		for _, name := range strings.Split(*strategy, ",") {
			st, err := chaos.ParseStrategy(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			sts = append(sts, st)
		}
	}
	opt := chaos.Options{
		Seed:      *seed,
		Schedules: *schedules,
		Nprocs:    *procs,
		SeqLen:    *n,
		CacheSlots: func() int {
			if *cache < 0 {
				return -1
			}
			return *cache
		}(),
		Timeout:   *timeout,
		TraceTail: *traceTail,
		UsePlanZero: func() bool {
			return *noFaults
		}(),
	}
	if *noFaults {
		opt.Plan = chaos.PlanConfig{} // all-zero: schedule exploration only
	}
	if *loss > 0 || *dup > 0 {
		// Probabilities ride on the effective plan: the defaults unless
		// -no-faults zeroed the delays.
		if !*noFaults {
			opt.Plan = chaos.DefaultPlanConfig()
		}
		for class := range opt.Plan.Loss {
			opt.Plan.Loss[class] = *loss
			opt.Plan.Dup[class] = *dup
		}
		opt.UsePlanZero = true // the plan is now deliberate; keep it
	}
	if *kill != "" {
		kills, err := recovery.ParseKills(*kill)
		if err != nil {
			return err
		}
		for _, k := range kills {
			if k.Node >= *procs {
				return fmt.Errorf("-kill %s: node %d out of range for -procs %d", k, k.Node, *procs)
			}
		}
		opt.Kills = kills
	}

	if *replay != 0 {
		if len(sts) != 1 {
			return fmt.Errorf("-replay needs exactly one -strategy, got %d", len(sts))
		}
		return chaosReplay(w, sts[0], opt, *replay, *traceTail)
	}

	start := time.Now()
	var divergences []*chaos.Divergence
	runs := 0
	for _, st := range sts {
		stOpt := opt
		stOpt.Strategies = []chaos.Strategy{st}
		rep, err := chaos.CheckStrategies(stOpt)
		if err != nil {
			return fmt.Errorf("strategy %s: %w", st, err)
		}
		runs += rep.Runs
		verdict := "bit-exact vs sequential"
		if len(rep.Divergences) > 0 {
			verdict = fmt.Sprintf("%d DIVERGENT", len(rep.Divergences))
			divergences = append(divergences, rep.Divergences...)
		}
		fmt.Fprintf(w, "%-11s %d schedules: %s\n", st, rep.Runs, verdict)
	}
	fmt.Fprintf(w, "\nseed %d: %d runs, %d divergences (%.2fs wall)\n",
		*seed, runs, len(divergences), time.Since(start).Seconds())
	if len(divergences) > 0 {
		extra := ""
		if *kill != "" {
			extra += fmt.Sprintf(" -kill %s", *kill)
		}
		if *loss > 0 {
			extra += fmt.Sprintf(" -loss %g", *loss)
		}
		if *dup > 0 {
			extra += fmt.Sprintf(" -dup %g", *dup)
		}
		for _, d := range divergences {
			fmt.Fprintln(w, d.Error())
			fmt.Fprintf(w, "  replay: genomedsm chaos -strategy %s -seed %d%s -replay %d\n",
				d.Strategy, *seed, extra, d.PlanSeed)
		}
		return fmt.Errorf("%d of %d runs diverged from the sequential baseline", len(divergences), runs)
	}
	return nil
}

// chaosSearchArgs carries the -search mode flags.
type chaosSearchArgs struct {
	seed      int64
	schedules int
	shards    int
	queries   int
	loss      float64
	dup       float64
	reorder   float64
	killShard string
	replay    int64
}

// chaosSearch runs the sharded-search differential oracle: every
// schedule scatters a query batch across a faulty cluster — message
// loss, duplication, reordering, optionally a worker crashed mid-scan —
// and checks the merged results bit-for-bit against a fault-free
// single-node scan. With a kill configured, the recovery counters must
// additionally prove the crash, detection and reassignment happened.
func chaosSearch(w io.Writer, a chaosSearchArgs) error {
	opt := chaos.SearchOptions{
		Seed: a.seed, Schedules: a.schedules, Shards: a.shards, Queries: a.queries,
		Loss: a.loss, Dup: a.dup, Reorder: a.reorder, KillShard: chaos.NoKill,
	}
	if a.killShard != "" {
		k, err := recovery.ParseKill(a.killShard)
		if err != nil {
			return fmt.Errorf("-kill-shard: %w", err)
		}
		opt.KillShard, opt.KillAfter = k.Node, k.Point
	}
	if a.replay != 0 {
		res, st, err := chaos.RunShardedOnce(opt, a.replay)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "replayed sharded search with fault seed %d: %d queries\n", a.replay, len(res))
		for i, br := range res {
			if br.Err != nil {
				fmt.Fprintf(w, "  query %d: error %v\n", i, br.Err)
				continue
			}
			fmt.Fprintf(w, "  query %d: %d hits over %d records\n", i, len(br.Result.Hits), br.Result.Searched)
		}
		fmt.Fprintf(w, "counters: %d retries, %d kills, %d dead detected, %d reassigns, %d lost, %d duped, %d reordered\n",
			st.Retries, st.Kills, st.DeadDetected, st.Reassigns, st.MsgsLost, st.MsgsDuped, st.MsgsReordered)
		return nil
	}
	start := time.Now()
	rep, err := chaos.CheckShardedSearch(opt)
	if err != nil {
		return err
	}
	verdict := "bit-exact vs single-node"
	if len(rep.Divergences) > 0 {
		verdict = fmt.Sprintf("%d DIVERGENT", len(rep.Divergences))
	}
	fmt.Fprintf(w, "sharded search (%d shards, %d queries/batch): %d schedules: %s\n",
		a.shards, a.queries, rep.Runs, verdict)
	fmt.Fprintf(w, "seed %d: %d runs, %d divergences (%.2fs wall)\n",
		a.seed, rep.Runs, len(rep.Divergences), time.Since(start).Seconds())
	if len(rep.Divergences) > 0 {
		extra := ""
		if a.killShard != "" {
			extra += fmt.Sprintf(" -kill-shard %s", a.killShard)
		}
		if a.loss > 0 {
			extra += fmt.Sprintf(" -loss %g", a.loss)
		}
		if a.dup > 0 {
			extra += fmt.Sprintf(" -dup %g", a.dup)
		}
		if a.reorder > 0 {
			extra += fmt.Sprintf(" -reorder %g", a.reorder)
		}
		for _, d := range rep.Divergences {
			fmt.Fprintln(w, d.Error())
			fmt.Fprintf(w, "  replay: genomedsm chaos -search -shards %d -seed %d%s -replay %d\n",
				a.shards, a.seed, extra, d.FaultSeed)
		}
		return fmt.Errorf("%d of %d runs diverged from the single-node baseline", len(rep.Divergences), rep.Runs)
	}
	return nil
}

// chaosReplay reruns a single interleaving byte-for-byte from its plan
// seed and prints the comparable result plus the protocol trace tail.
func chaosReplay(w io.Writer, st chaos.Strategy, opt chaos.Options, planSeed int64, tail int) error {
	res, err := chaos.RunOne(st, opt, planSeed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replayed %s with plan seed %d: %d gate picks, %d trace events\n",
		st, planSeed, res.Picks, len(res.Trace))
	switch {
	case res.Pre != nil:
		fmt.Fprintf(w, "preprocess: %d hits, best %d at (%d,%d)\n",
			res.Pre.TotalHits, res.Pre.BestScore, res.Pre.BestI, res.Pre.BestJ)
	case res.Alignments != nil:
		fmt.Fprintf(w, "phase2: %d alignments\n", len(res.Alignments))
	default:
		fmt.Fprintf(w, "wavefront: %d candidates\n", len(res.Candidates))
	}
	fmt.Fprintf(w, "dsm: %s\n", res.Stats.String())
	if len(res.Trace) > 0 {
		shown := res.Trace
		if tail > 0 && len(shown) > tail {
			fmt.Fprintf(w, "trace (last %d of %d events):\n", tail, len(shown))
			shown = shown[len(shown)-tail:]
		} else {
			fmt.Fprintf(w, "trace (%d events):\n", len(shown))
		}
		for _, ev := range shown {
			fmt.Fprintf(w, "  %s\n", ev.String())
		}
	}
	return nil
}
