package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"genomedsm/internal/bio"
)

func TestRunSyntheticStrategies(t *testing.T) {
	for _, strategy := range []string{"heuristic", "block", "preprocess"} {
		if err := run(strategy, 2, 600, 5, "", "", 10, 10, 30, 2, 2, false, 3); err != nil {
			t.Errorf("%s: %v", strategy, err)
		}
	}
}

func TestRunWithPhase2(t *testing.T) {
	if err := run("block", 2, 800, 6, "", "", 10, 10, 40, 2, 2, true, 2); err != nil {
		t.Error(err)
	}
}

func TestRunUnknownStrategy(t *testing.T) {
	if err := run("bogus", 2, 400, 1, "", "", 10, 10, 30, 2, 2, false, 3); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := runJSON(&buf, "block", 2, 600, 5, "", "", 10, 10, 30, 2, 2, true); err != nil {
		t.Fatal(err)
	}
	var rep jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.Strategy != "heuristic-block" || rep.Processors != 2 || rep.SLen != 600 {
		t.Errorf("report header: %+v", rep)
	}
	if len(rep.Regions) == 0 {
		t.Error("no regions in JSON report")
	}
	for _, r := range rep.Regions {
		if r.AlignmentScore == nil {
			t.Error("phase-2 alignment score missing")
			break
		}
	}
	if len(rep.Breakdown) == 0 {
		t.Error("no breakdown in JSON report")
	}
	// Pre-process variant carries its scoreboard summary.
	buf.Reset()
	if err := runJSON(&buf, "preprocess", 2, 600, 5, "", "", 10, 10, 30, 2, 2, false); err != nil {
		t.Fatal(err)
	}
	var rep2 jsonReport
	if err := json.Unmarshal(buf.Bytes(), &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Preprocess == nil || rep2.Preprocess.TotalHits == 0 {
		t.Errorf("preprocess JSON summary missing: %+v", rep2.Preprocess)
	}
}

func TestRunFromFASTA(t *testing.T) {
	dir := t.TempDir()
	g := bio.NewGenerator(33)
	pair, err := g.HomologousPair(600, bio.DefaultHomologyModel(600))
	if err != nil {
		t.Fatal(err)
	}
	sPath := filepath.Join(dir, "s.fa")
	tPath := filepath.Join(dir, "t.fa")
	if err := bio.WriteFASTAFile(sPath, bio.Record{ID: "s", Seq: pair.S}); err != nil {
		t.Fatal(err)
	}
	if err := bio.WriteFASTAFile(tPath, bio.Record{ID: "t", Seq: pair.T}); err != nil {
		t.Fatal(err)
	}
	if err := run("block", 2, 0, 0, sPath, tPath, 10, 10, 30, 2, 2, false, 3); err != nil {
		t.Error(err)
	}
	if err := run("block", 2, 0, 0, filepath.Join(dir, "missing.fa"), tPath, 10, 10, 30, 2, 2, false, 3); err == nil {
		t.Error("missing FASTA accepted")
	}
}
