package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"genomedsm/internal/bio"
)

func TestSearchCmdSynthetic(t *testing.T) {
	var buf bytes.Buffer
	err := searchCmd([]string{"-n", "400", "-db-size", "40", "-db-len", "300", "-k", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "searched 40 records") {
		t.Errorf("missing scan summary:\n%s", out)
	}
	// The synthetic database plants homologs of the query, so the top hit
	// must be one of them, with its alignment span retrieved.
	if !strings.Contains(out, "hom") || !strings.Contains(out, "..") {
		t.Errorf("no planted homolog hit with spans in output:\n%s", out)
	}
	if !strings.Contains(out, "Mcells/s") {
		t.Errorf("missing throughput line:\n%s", out)
	}
}

func TestSearchCmdJSON(t *testing.T) {
	var buf bytes.Buffer
	err := searchCmd([]string{"-n", "300", "-db-size", "32", "-k", "4", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep searchJSON
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.QueryLen != 300 || rep.Records != 32 {
		t.Errorf("report header: %+v", rep)
	}
	if len(rep.Hits) == 0 || len(rep.Hits) > 4 {
		t.Fatalf("got %d hits, want 1..4", len(rep.Hits))
	}
	for i := 1; i < len(rep.Hits); i++ {
		if rep.Hits[i].Score > rep.Hits[i-1].Score {
			t.Errorf("hits not sorted by score: %+v", rep.Hits)
		}
	}
	if rep.Hits[0].QBegin < 1 || rep.Hits[0].TBegin < 1 {
		t.Errorf("top hit missing alignment span: %+v", rep.Hits[0])
	}
	if rep.Cells <= 0 || rep.PaddedCells < rep.Cells {
		t.Errorf("cell accounting: cells=%d padded=%d", rep.Cells, rep.PaddedCells)
	}
}

func TestSearchCmdFASTA(t *testing.T) {
	dir := t.TempDir()
	g := bio.NewGenerator(7)
	q := g.Random(500)
	qPath := filepath.Join(dir, "q.fa")
	dbPath := filepath.Join(dir, "db.fa")
	if err := bio.WriteFASTAFile(qPath, bio.Record{ID: "query", Seq: q}); err != nil {
		t.Fatal(err)
	}
	recs := []bio.Record{
		{ID: "self", Seq: q.Clone()}, // identity hit: must rank first, score 500
		{ID: "noise1", Seq: g.Random(400)},
		{ID: "noise2", Seq: g.Random(600)},
	}
	if err := bio.WriteFASTAFile(dbPath, recs...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := searchCmd([]string{"-q", qPath, "-db", dbPath, "-k", "2", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep searchJSON
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	// The identity record saturates the int8 lanes (500 > 127), so this
	// also exercises the widening fallback through the CLI path.
	if len(rep.Hits) == 0 || rep.Hits[0].ID != "self" || rep.Hits[0].Score != 500 {
		t.Fatalf("identity record not the top hit: %+v", rep.Hits)
	}
	if _, err := bio.ReadFASTAFile(filepath.Join(dir, "absent.fa")); err == nil {
		t.Fatal("test precondition: absent file must not read")
	}
	if err := searchCmd([]string{"-q", filepath.Join(dir, "absent.fa"), "-db", dbPath}, &buf); err == nil {
		t.Error("missing query file accepted")
	}
	if err := searchCmd([]string{"-q", qPath, "-db", filepath.Join(dir, "absent.fa")}, &buf); err == nil {
		t.Error("missing database file accepted")
	}
}

func TestSearchCmdBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := searchCmd([]string{"-lanes", "7", "-n", "50", "-db-size", "4"}, &buf); err == nil {
		t.Error("invalid lane width accepted")
	}
	if err := searchCmd([]string{"-match", "-1", "-n", "50", "-db-size", "4"}, &buf); err == nil {
		t.Error("invalid scoring accepted")
	}
	if err := searchCmd([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}
