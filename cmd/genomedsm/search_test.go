package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"genomedsm/internal/bio"
)

func TestSearchCmdSynthetic(t *testing.T) {
	var buf bytes.Buffer
	err := searchCmd([]string{"-n", "400", "-db-size", "40", "-db-len", "300", "-k", "5"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "searched 40 records") {
		t.Errorf("missing scan summary:\n%s", out)
	}
	// The synthetic database plants homologs of the query, so the top hit
	// must be one of them, with its alignment span retrieved.
	if !strings.Contains(out, "hom") || !strings.Contains(out, "..") {
		t.Errorf("no planted homolog hit with spans in output:\n%s", out)
	}
	if !strings.Contains(out, "Mcells/s") {
		t.Errorf("missing throughput line:\n%s", out)
	}
}

func TestSearchCmdJSON(t *testing.T) {
	var buf bytes.Buffer
	err := searchCmd([]string{"-n", "300", "-db-size", "32", "-k", "4", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep searchJSON
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if rep.QueryLen != 300 || rep.Records != 32 {
		t.Errorf("report header: %+v", rep)
	}
	if len(rep.Hits) == 0 || len(rep.Hits) > 4 {
		t.Fatalf("got %d hits, want 1..4", len(rep.Hits))
	}
	for i := 1; i < len(rep.Hits); i++ {
		if rep.Hits[i].Score > rep.Hits[i-1].Score {
			t.Errorf("hits not sorted by score: %+v", rep.Hits)
		}
	}
	if rep.Hits[0].QBegin < 1 || rep.Hits[0].TBegin < 1 {
		t.Errorf("top hit missing alignment span: %+v", rep.Hits[0])
	}
	// Pruning is on by default: the kernels may compute fewer padded
	// cells than the full matrix, but never zero, and the stats must be
	// present and account for every record.
	if rep.Cells <= 0 || rep.PaddedCells <= 0 {
		t.Errorf("cell accounting: cells=%d padded=%d", rep.Cells, rep.PaddedCells)
	}
	if rep.Prune == nil {
		t.Fatal("default run missing prune stats")
	}
	if n := rep.Prune.Skipped + rep.Prune.Abandoned + rep.Prune.Scanned; n != rep.Records {
		t.Errorf("prune stats cover %d of %d records", n, rep.Records)
	}
}

// TestSearchCmdPruneDifferential pins the CLI contract behind -prune:
// identical hits with pruning on (with and without the prefilter) and
// off, on both the skewed (planted homologs) and uniform (pure noise)
// synthetic databases.
func TestSearchCmdPruneDifferential(t *testing.T) {
	hits := func(args ...string) []searchJSONHit {
		t.Helper()
		var buf bytes.Buffer
		if err := searchCmd(append(args, "-n", "350", "-db-size", "48", "-db-len", "250", "-json"), &buf); err != nil {
			t.Fatal(err)
		}
		var rep searchJSON
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep.Hits
	}
	for _, plant := range []string{"8", "0"} {
		want := hits("-prune=false", "-plant-every", plant)
		for _, args := range [][]string{
			{"-prune", "-plant-every", plant},
			{"-prune", "-prefilter", "-plant-every", plant},
		} {
			got := hits(args...)
			if len(got) != len(want) {
				t.Fatalf("plant=%s %v: %d hits, want %d", plant, args, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("plant=%s %v hit %d: %+v, want %+v", plant, args, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSearchCmdPruneText(t *testing.T) {
	var buf bytes.Buffer
	if err := searchCmd([]string{"-n", "300", "-db-size", "24", "-k", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "pruning: skipped") {
		t.Errorf("missing pruning stats line:\n%s", out)
	}
	buf.Reset()
	if err := searchCmd([]string{"-n", "300", "-db-size", "24", "-k", "3", "-prune=false"}, &buf); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); strings.Contains(out, "pruning:") || !strings.Contains(out, "padding overhead") {
		t.Errorf("-prune=false output wrong:\n%s", out)
	}
}

func TestSearchCmdFASTA(t *testing.T) {
	dir := t.TempDir()
	g := bio.NewGenerator(7)
	q := g.Random(500)
	qPath := filepath.Join(dir, "q.fa")
	dbPath := filepath.Join(dir, "db.fa")
	if err := bio.WriteFASTAFile(qPath, bio.Record{ID: "query", Seq: q}); err != nil {
		t.Fatal(err)
	}
	recs := []bio.Record{
		{ID: "self", Seq: q.Clone()}, // identity hit: must rank first, score 500
		{ID: "noise1", Seq: g.Random(400)},
		{ID: "noise2", Seq: g.Random(600)},
	}
	if err := bio.WriteFASTAFile(dbPath, recs...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := searchCmd([]string{"-q", qPath, "-db", dbPath, "-k", "2", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rep searchJSON
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	// The identity record saturates the int8 lanes (500 > 127), so this
	// also exercises the widening fallback through the CLI path.
	if len(rep.Hits) == 0 || rep.Hits[0].ID != "self" || rep.Hits[0].Score != 500 {
		t.Fatalf("identity record not the top hit: %+v", rep.Hits)
	}
	if _, err := bio.ReadFASTAFile(filepath.Join(dir, "absent.fa")); err == nil {
		t.Fatal("test precondition: absent file must not read")
	}
	if err := searchCmd([]string{"-q", filepath.Join(dir, "absent.fa"), "-db", dbPath}, &buf); err == nil {
		t.Error("missing query file accepted")
	}
	if err := searchCmd([]string{"-q", qPath, "-db", filepath.Join(dir, "absent.fa")}, &buf); err == nil {
		t.Error("missing database file accepted")
	}
}

func TestSearchCmdBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := searchCmd([]string{"-lanes", "7", "-n", "50", "-db-size", "4"}, &buf); err == nil {
		t.Error("invalid lane width accepted")
	}
	if err := searchCmd([]string{"-match", "-1", "-n", "50", "-db-size", "4"}, &buf); err == nil {
		t.Error("invalid scoring accepted")
	}
	if err := searchCmd([]string{"-bogus"}, &buf); err == nil {
		t.Error("unknown flag accepted")
	}
}
