// Command genomedsm compares two DNA sequences with the paper's parallel
// Smith–Waterman strategies on a simulated DSM cluster, printing the
// similar regions, optional phase-2 global alignments, and the simulated
// execution-time breakdown.
//
// Usage:
//
//	genomedsm -n 20000 -procs 8 -strategy block -phase2
//	genomedsm -s a.fa -t b.fa -strategy preprocess -procs 4
//
// The search subcommand instead scans a whole sequence database with
// the SWAR-vectorized multicore kernels and reports the top-K hits:
//
//	genomedsm search -q query.fa -db db.fa -k 10
//	genomedsm search -n 2000 -db-size 500 -json
//
// The chaos subcommand runs the seeded fault-injection and schedule
// sweep, checking every strategy bit-for-bit against the sequential
// baseline and replaying any failing interleaving from its plan seed:
//
//	genomedsm chaos -seed 7 -schedules 8
//	genomedsm chaos -strategy phase2 -seed 7 -replay 1234567
//
// The index and serve subcommands make the database search resident:
// index packs a database (records, scan order, prefilter word index)
// into one validated file, and serve loads it behind an HTTP/JSON API
// with shared-scan batching, admission control and graceful drain:
//
//	genomedsm index -db db.fa -o db.pack
//	genomedsm serve -pack db.pack -addr 127.0.0.1:7878
//	curl -d '{"query":"ACGTACGT...","top_k":5}' http://127.0.0.1:7878/search
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"genomedsm"
	"genomedsm/internal/cluster"
	"genomedsm/internal/stats"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "search" {
		if err := searchCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "genomedsm search:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		if err := chaosCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "genomedsm chaos:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "index" {
		if err := indexCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "genomedsm index:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := serveCmd(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "genomedsm serve:", err)
			os.Exit(1)
		}
		return
	}
	var (
		strategy = flag.String("strategy", "block", "strategy: heuristic | block | preprocess")
		procs    = flag.Int("procs", 8, "number of simulated cluster nodes")
		n        = flag.Int("n", 10000, "synthetic sequence length (when no FASTA given)")
		seed     = flag.Int64("seed", 42, "synthetic generator seed")
		sFile    = flag.String("s", "", "FASTA file for sequence s")
		tFile    = flag.String("t", "", "FASTA file for sequence t")
		open     = flag.Int("open", 10, "heuristic open parameter")
		closeP   = flag.Int("close", 10, "heuristic close parameter")
		minScore = flag.Int("minscore", 30, "candidate score threshold")
		multA    = flag.Int("multa", 5, "blocking multiplier a (blocks = a*procs)")
		multB    = flag.Int("multb", 5, "blocking multiplier b (bands = b*procs)")
		phase2F  = flag.Bool("phase2", false, "retrieve alignments with distributed global alignment")
		maxShow  = flag.Int("show", 10, "max regions/alignments to print")
		jsonOut  = flag.Bool("json", false, "emit a machine-readable JSON report instead of text")
	)
	flag.Parse()
	var err error
	if *jsonOut {
		err = runJSON(os.Stdout, *strategy, *procs, *n, *seed, *sFile, *tFile,
			*open, *closeP, *minScore, *multA, *multB, *phase2F)
	} else {
		err = run(*strategy, *procs, *n, *seed, *sFile, *tFile, *open, *closeP, *minScore,
			*multA, *multB, *phase2F, *maxShow)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genomedsm:", err)
		os.Exit(1)
	}
}

// jsonReport is the machine-readable CLI output.
type jsonReport struct {
	Strategy   string             `json:"strategy"`
	Processors int                `json:"processors"`
	SLen       int                `json:"s_len"`
	TLen       int                `json:"t_len"`
	Phase1Time float64            `json:"phase1_seconds"`
	Phase2Time float64            `json:"phase2_seconds,omitempty"`
	Regions    []jsonRegion       `json:"regions,omitempty"`
	Preprocess *jsonPreprocess    `json:"preprocess,omitempty"`
	Breakdown  map[string]float64 `json:"breakdown_seconds"`
}

type jsonRegion struct {
	SBegin int `json:"s_begin"`
	SEnd   int `json:"s_end"`
	TBegin int `json:"t_begin"`
	TEnd   int `json:"t_end"`
	Score  int `json:"score"`
	// AlignmentScore is the phase-2 exact global score when phase 2 ran.
	AlignmentScore *int `json:"alignment_score,omitempty"`
}

type jsonPreprocess struct {
	BestScore int   `json:"best_score"`
	BestI     int   `json:"best_i"`
	BestJ     int   `json:"best_j"`
	TotalHits int64 `json:"total_hits"`
	Bands     int   `json:"bands"`
	Groups    int   `json:"groups"`
}

func runJSON(w io.Writer, strategy string, procs, n int, seed int64, sFile, tFile string,
	open, closeP, minScore, multA, multB int, phase2F bool) error {
	s, t, err := loadOrGenerate(sFile, tFile, n, seed)
	if err != nil {
		return err
	}
	rep, err := compare(strategy, procs, s, t, open, closeP, minScore, multA, multB, phase2F)
	if err != nil {
		return err
	}
	out := jsonReport{
		Strategy:   rep.Strategy.String(),
		Processors: rep.Processors,
		SLen:       s.Len(),
		TLen:       t.Len(),
		Phase1Time: rep.Phase1Time,
		Phase2Time: rep.Phase2Time,
		Breakdown:  map[string]float64{},
	}
	merged := cluster.Merge(rep.Breakdowns)
	for cat := cluster.Compute; cat <= cluster.Recovery; cat++ {
		if v := merged.Cat[cat]; v > 0 {
			out.Breakdown[cat.String()] = v
		}
	}
	for i, c := range rep.Candidates {
		jr := jsonRegion{SBegin: c.SBegin, SEnd: c.SEnd, TBegin: c.TBegin, TEnd: c.TEnd, Score: c.Score}
		if i < len(rep.Alignments) && rep.Alignments[i] != nil {
			score := rep.Alignments[i].Score
			jr.AlignmentScore = &score
		}
		out.Regions = append(out.Regions, jr)
	}
	if pp := rep.Preprocess; pp != nil {
		out.Preprocess = &jsonPreprocess{
			BestScore: pp.BestScore, BestI: pp.BestI, BestJ: pp.BestJ,
			TotalHits: pp.TotalHits, Bands: len(pp.ResultMatrix),
		}
		if len(pp.ResultMatrix) > 0 {
			out.Preprocess.Groups = len(pp.ResultMatrix[0])
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// compare builds the Options for the named strategy and runs Compare.
func compare(strategy string, procs int, s, t genomedsm.Sequence,
	open, closeP, minScore, multA, multB int, phase2F bool) (*genomedsm.Report, error) {
	opts := genomedsm.Options{
		Processors: procs,
		Heuristics: &genomedsm.HeuristicParams{Open: open, Close: closeP, MinScore: minScore},
		Phase2:     phase2F,
	}
	switch strategy {
	case "heuristic":
		opts.Strategy = genomedsm.StrategyHeuristic
	case "block":
		opts.Strategy = genomedsm.StrategyHeuristicBlock
		bc := genomedsm.MultiplierConfig(multA, multB, procs)
		opts.Blocking = &bc
	case "preprocess":
		opts.Strategy = genomedsm.StrategyPreprocess
	default:
		return nil, fmt.Errorf("unknown strategy %q (want heuristic|block|preprocess)", strategy)
	}
	return genomedsm.Compare(s, t, opts)
}

func loadOrGenerate(sFile, tFile string, n int, seed int64) (genomedsm.Sequence, genomedsm.Sequence, error) {
	if sFile != "" && tFile != "" {
		sr, err := genomedsm.ReadFASTAFile(sFile)
		if err != nil {
			return nil, nil, err
		}
		tr, err := genomedsm.ReadFASTAFile(tFile)
		if err != nil {
			return nil, nil, err
		}
		if len(sr) == 0 || len(tr) == 0 {
			return nil, nil, fmt.Errorf("empty FASTA input")
		}
		return sr[0].Seq, tr[0].Seq, nil
	}
	g := genomedsm.NewGenerator(seed)
	pair, err := g.HomologousPair(n, genomedsm.DefaultHomologyModel(n))
	if err != nil {
		return nil, nil, err
	}
	return pair.S, pair.T, nil
}

func run(strategy string, procs, n int, seed int64, sFile, tFile string,
	open, closeP, minScore, multA, multB int, phase2F bool, maxShow int) error {
	s, t, err := loadOrGenerate(sFile, tFile, n, seed)
	if err != nil {
		return err
	}
	fmt.Printf("comparing |s|=%d against |t|=%d on %d simulated nodes (%s strategy)\n",
		s.Len(), t.Len(), procs, strategy)

	rep, err := compare(strategy, procs, s, t, open, closeP, minScore, multA, multB, phase2F)
	if err != nil {
		return err
	}

	if rep.Preprocess != nil {
		pp := rep.Preprocess
		fmt.Printf("\nexact best score %d at (%d,%d); %s hits over threshold\n",
			pp.BestScore, pp.BestI, pp.BestJ, stats.FormatCount(pp.TotalHits))
		fmt.Printf("core time %s, term time %s (simulated)\n",
			stats.FormatSeconds(pp.CoreTime), stats.FormatSeconds(pp.TermTime))
		blocks := 0
		for _, row := range pp.ResultMatrix {
			for _, v := range row {
				if v > 0 {
					blocks++
				}
			}
		}
		fmt.Printf("result matrix: %d bands × %d groups, %d non-empty blocks\n",
			len(pp.ResultMatrix), len(pp.ResultMatrix[0]), blocks)
	} else {
		fmt.Printf("\n%d similar regions (queue sorted by size):\n", len(rep.Candidates))
		tbl := stats.NewTable("", "#", "s begin..end", "t begin..end", "score")
		for i, c := range rep.Candidates {
			if i >= maxShow {
				tbl.AddRowRaw("…", "", "", "")
				break
			}
			tbl.AddRowRaw(fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%d..%d", c.SBegin, c.SEnd),
				fmt.Sprintf("%d..%d", c.TBegin, c.TEnd),
				fmt.Sprintf("%d", c.Score))
		}
		fmt.Print(tbl.Render())
	}

	if len(rep.Alignments) > 0 {
		fmt.Printf("\nphase-2 global alignments (showing up to %d):\n", maxShow)
		for i, al := range rep.Alignments {
			if i >= maxShow {
				break
			}
			fmt.Println(al.RenderReport(s, t, 64))
		}
		fmt.Printf("phase-2 simulated time: %s\n", stats.FormatSeconds(rep.Phase2Time))
	}

	fmt.Printf("\nsimulated phase-1 time: %s\n", stats.FormatSeconds(rep.Phase1Time))
	merged := cluster.Merge(rep.Breakdowns)
	fmt.Printf("breakdown: %s\n", merged)
	fmt.Printf("dsm: %s\n", rep.Stats)
	return nil
}
