package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSearchCmdSharded pins the -shards flag: identical hits to the
// single-node CLI run, plus the shard summary line in text output.
func TestSearchCmdSharded(t *testing.T) {
	run := func(args ...string) []searchJSONHit {
		t.Helper()
		var buf bytes.Buffer
		if err := searchCmd(append(args, "-n", "350", "-db-size", "48", "-db-len", "250", "-json"), &buf); err != nil {
			t.Fatal(err)
		}
		var rep searchJSON
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep.Hits
	}
	want := run()
	for _, shards := range []string{"2", "4"} {
		got := run("-shards", shards)
		if len(got) != len(want) {
			t.Fatalf("-shards %s: %d hits, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("-shards %s hit %d: %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}

	var buf bytes.Buffer
	if err := searchCmd([]string{"-n", "300", "-db-size", "24", "-shards", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sharded across 3 workers") {
		t.Errorf("missing shard summary line:\n%s", out)
	}
}

// TestChaosCmdSearchMode pins `chaos -search`: the clean, faulty, and
// kill-one-shard sweeps all verify bit-exactness against single-node,
// and the kill sweep proves recovery in its exit status (a vacuous
// pass would fail inside the oracle).
func TestChaosCmdSearchMode(t *testing.T) {
	var buf bytes.Buffer
	if err := chaosCmd([]string{"-search", "-schedules", "2", "-seed", "3"}, &buf); err != nil {
		t.Fatalf("clean sweep: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "bit-exact vs single-node") {
		t.Errorf("missing verdict:\n%s", buf.String())
	}

	buf.Reset()
	if err := chaosCmd([]string{"-search", "-schedules", "2", "-loss", "0.2", "-dup", "0.1", "-reorder", "0.1"}, &buf); err != nil {
		t.Fatalf("faulty sweep: %v\n%s", err, buf.String())
	}

	buf.Reset()
	if err := chaosCmd([]string{"-search", "-schedules", "2", "-kill-shard", "1@1"}, &buf); err != nil {
		t.Fatalf("kill sweep: %v\n%s", err, buf.String())
	}
}

// TestChaosCmdSearchReplay pins the replay flag for the search oracle.
func TestChaosCmdSearchReplay(t *testing.T) {
	var buf bytes.Buffer
	if err := chaosCmd([]string{"-search", "-loss", "0.3", "-replay", "12345"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "replayed sharded search with fault seed 12345") {
		t.Errorf("missing replay header:\n%s", out)
	}
	if !strings.Contains(out, "counters:") {
		t.Errorf("missing counters line:\n%s", out)
	}
}

// TestChaosCmdSearchBadFlags checks flag validation in -search mode.
func TestChaosCmdSearchBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-search", "-kill-shard", "banana"},
		{"-search", "-reorder", "1.5"},
		{"-search", "-shards", "2", "-kill-shard", "9@1"},
	} {
		var buf bytes.Buffer
		if err := chaosCmd(args, &buf); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}
