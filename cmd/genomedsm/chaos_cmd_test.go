package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestChaosCmdSweep(t *testing.T) {
	var buf bytes.Buffer
	err := chaosCmd([]string{"-seed", "3", "-schedules", "2", "-len", "360", "-procs", "3"}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"noblock", "blocked", "blockedmp", "preprocess", "phase2",
		"bit-exact vs sequential", "0 divergences"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestChaosCmdReplayDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		err := chaosCmd([]string{"-strategy", "noblock", "-seed", "3", "-len", "360",
			"-procs", "3", "-replay", "12345", "-trace", "16"}, &buf)
		if err != nil {
			t.Fatalf("%v\n%s", err, buf.String())
		}
		return buf.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay output not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "gate picks") || !strings.Contains(a, "trace") {
		t.Errorf("replay output missing trace summary:\n%s", a)
	}
}

func TestChaosCmdBadStrategy(t *testing.T) {
	var buf bytes.Buffer
	if err := chaosCmd([]string{"-strategy", "bogus"}, &buf); err == nil {
		t.Fatal("expected error for unknown strategy")
	}
	if err := chaosCmd([]string{"-replay", "7"}, &buf); err == nil {
		t.Fatal("expected error for -replay without a single -strategy")
	}
}
