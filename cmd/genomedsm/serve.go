package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"genomedsm"
	"genomedsm/internal/bio"
	"genomedsm/internal/dbpack"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/search"
	"genomedsm/internal/server"
)

// indexCmd implements `genomedsm index`: build the pre-packed database
// a resident `genomedsm serve` (or `search -pack`) loads without
// re-parsing FASTA, re-sorting, or re-indexing. Inputs mirror the
// search subcommand: a FASTA database, or the same reproducible
// synthetic database with planted homologs.
func indexCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("genomedsm index", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		dbFile = fs.String("db", "", "database FASTA file (synthetic when empty)")
		out    = fs.String("o", "", "output pack file (required)")
		word   = fs.Int("word", 11, "prefilter seed word size embedded in the pack (0 = no index)")
		format = fs.String("format", "v2", "pack format: v2 (page-aligned sections, mmap'd zero-copy at load, lane layout precomputed) or v1 (legacy varint stream)")
		n      = fs.Int("n", 1000, "synthetic query length (homolog planting)")
		dbSize = fs.Int("db-size", 200, "synthetic database record count")
		dbLen  = fs.Int("db-len", 1000, "synthetic database base record length")
		seed   = fs.Int64("seed", 42, "synthetic generator seed")
		plant  = fs.Int("plant-every", 8, "plant a mutated query homolog every Nth synthetic record (0 = pure noise)")
		qOut   = fs.String("q-out", "", "also write the (synthetic) query to this FASTA file")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if *out == "" {
		return fmt.Errorf("missing -o: where to write the pack")
	}
	q, recs, err := loadSearchInputs("", *dbFile, *n, *dbSize, *dbLen, *seed, *plant)
	if err != nil {
		return err
	}
	if *qOut != "" {
		if err := bio.WriteFASTAFile(*qOut, bio.Record{ID: "query", Seq: q}); err != nil {
			return err
		}
	}
	start := time.Now()
	p, err := dbpack.Build(recs, *word)
	if err != nil {
		return err
	}
	switch *format {
	case "v2":
		// Index time is where the lane-group interleave is paid: EncodeV2
		// computes it once and lays it out exactly as the SWAR kernels
		// consume it, so every later Open is validate-header-and-map.
		err = dbpack.WriteFileV2(*out, p)
	case "v1":
		err = dbpack.WriteFile(*out, p)
	default:
		return fmt.Errorf("unknown -format %q: want v2 or v1", *format)
	}
	if err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("packed %d records (%d bases) into %s (%s): %d bytes in %.3fs",
		p.DB.Size(), p.DB.TotalBases(), *out, *format, info.Size(), time.Since(start).Seconds())
	if ix := p.DB.WordIndex(); ix != nil {
		line += fmt.Sprintf(", %d-mer index (%d postings)", ix.Word(), ix.Postings())
	}
	fmt.Fprintln(w, line)
	return nil
}

// serveReady, when non-nil, receives the bound address once the
// listener is up — a test hook so the CLI tests learn the :0 port
// without parsing output. Never set outside tests.
var serveReady func(addr string)

// serveCmd implements `genomedsm serve`: load a pre-packed database (or
// build one in memory) and answer HTTP queries until SIGINT/SIGTERM,
// then drain: admitted queries finish, new ones get 503, and the
// process exits cleanly.
func serveCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("genomedsm serve", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		pack     = fs.String("pack", "", "pre-packed database from `genomedsm index` (preferred)")
		dbFile   = fs.String("db", "", "database FASTA file (when no -pack; synthetic when both empty)")
		addr     = fs.String("addr", "127.0.0.1:7878", "listen address")
		k        = fs.Int("k", 10, "default number of hits per query")
		workers  = fs.Int("workers", 0, "scan worker-pool size (0 = all host cores)")
		match    = fs.Int("match", 1, "match reward")
		mismatch = fs.Int("mismatch", -1, "mismatch penalty (negative)")
		gap      = fs.Int("gap", -2, "gap penalty (negative)")
		lanes    = fs.Int("lanes", 0, "default kernel: 0 adaptive dispatch, 8 int8, 16 int16, 1 scalar")
		disp     = fs.String("dispatch", "auto", "default kernel routing when -lanes=0: auto, fixed, scalar")
		prune    = fs.Bool("prune", true, "default exact top-K pruning")
		prefilt  = fs.Bool("prefilter", false, "default blast-seeded pruning floor (uses the pack's word index)")
		shards   = fs.Int("shards", 0, "scatter every scan across N in-process shards with gossiped pruning floors (0 or 1 = single-node)")
		queue    = fs.Int("queue", 64, "admission queue bound (requests; beyond it clients get 429 with Retry-After)")
		batchMax = fs.Int("batch-max", 16, "max queries coalesced into one shared scan")
		dbSize   = fs.Int("db-size", 200, "synthetic database record count")
		dbLen    = fs.Int("db-len", 1000, "synthetic database base record length")
		seed     = fs.Int64("seed", 42, "synthetic generator seed")
		plant    = fs.Int("plant-every", 8, "synthetic homolog planting cadence")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	mode, err := dispatch.ParseMode(*disp)
	if err != nil {
		return err
	}

	var db *search.DB
	var packInfo *dbpack.Info
	switch {
	case *pack != "":
		p, err := openPack(*pack, w)
		if err != nil {
			return err
		}
		defer p.Close()
		db = p.DB
		packInfo = &p.Info
	default:
		_, recs, err := loadSearchInputs("", *dbFile, 1000, *dbSize, *dbLen, *seed, *plant)
		if err != nil {
			return err
		}
		db = search.NewDB(recs)
	}

	installDispatch(mode)
	srv, err := server.New(server.Config{
		DB:   db,
		Pack: packInfo,
		Options: search.Options{
			Scoring:   genomedsm.Scoring{Match: *match, Mismatch: *mismatch, Gap: *gap},
			TopK:      *k,
			Workers:   *workers,
			Lanes:     *lanes,
			Dispatch:  mode.String(),
			Prune:     *prune,
			Prefilter: *prefilt,
		},
		MaxQueue: *queue,
		BatchMax: *batchMax,
		Shards:   *shards,
	})
	if err != nil {
		return err
	}

	// Listen before announcing anything: a busy port must fail loudly
	// here, not surface as a dead server.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	line := fmt.Sprintf("serving %d records (%d bases)", db.Size(), db.TotalBases())
	if ix := db.WordIndex(); ix != nil {
		line += fmt.Sprintf(" with a %d-mer prefilter index", ix.Word())
	}
	if *shards >= 2 {
		line += fmt.Sprintf(" across %d shards", *shards)
	}
	fmt.Fprintf(w, "%s\n", line)
	fmt.Fprintf(w, "listening on http://%s\n", bound)
	if serveReady != nil {
		serveReady(bound)
	}

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard
	fmt.Fprintln(w, "shutdown signal: draining in-flight queries")
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Shutdown(dctx); err != nil {
		return err
	}
	fmt.Fprintln(w, "drained")
	return nil
}
