package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"time"

	"genomedsm"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/shard"
	"genomedsm/internal/stats"
)

// searchCmd implements `genomedsm search`: a multicore Smith–Waterman
// database scan powered by the inter-sequence SWAR kernels. Inputs come
// from FASTA files or a reproducible synthetic database with planted
// homologs of the query, so the subcommand demos end to end without any
// data on disk.
func searchCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("genomedsm search", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		qFile    = fs.String("q", "", "query FASTA file (first record; synthetic when empty)")
		dbFile   = fs.String("db", "", "database FASTA file (synthetic when empty)")
		packFile = fs.String("pack", "", "pre-packed database from `genomedsm index` (overrides -db)")
		n        = fs.Int("n", 1000, "synthetic query length")
		dbSize   = fs.Int("db-size", 200, "synthetic database record count")
		dbLen    = fs.Int("db-len", 1000, "synthetic database base record length")
		seed     = fs.Int64("seed", 42, "synthetic generator seed")
		k        = fs.Int("k", 10, "number of hits to report")
		workers  = fs.Int("workers", 0, "worker-pool size (0 = all host cores)")
		minScore = fs.Int("minscore", 0, "drop hits scoring below this")
		match    = fs.Int("match", 1, "match reward")
		mismatch = fs.Int("mismatch", -1, "mismatch penalty (negative)")
		gap      = fs.Int("gap", -2, "gap penalty (negative)")
		lanes    = fs.Int("lanes", 0, "kernel: 0 adaptive dispatch, 8 int8 SWAR chain, 16 int16, 1 scalar")
		disp     = fs.String("dispatch", "auto", "kernel routing when -lanes=0: auto (calibrated cost model), fixed (legacy thresholds), scalar")
		calib    = fs.Bool("calibrate", false, "measure the per-family kernel table (Mcells/s, overhead) and exit without searching")
		scores   = fs.Bool("scores-only", false, "skip alignment-span retrieval of the hits")
		jsonOut  = fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
		prune    = fs.Bool("prune", true, "exact top-K pruning: skip and abandon records that provably cannot rank")
		prefilt  = fs.Bool("prefilter", false, "seed the pruning floor with blast word-seed lower bounds before scanning")
		plant    = fs.Int("plant-every", 8, "plant a mutated query homolog every Nth synthetic record (0 = pure noise)")
		shards   = fs.Int("shards", 0, "scatter the scan across N in-process shards with gossiped pruning floors; results stay bit-identical (0 or 1 = single-node)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}
	if *calib {
		return runCalibrate(w, *jsonOut)
	}
	mode, err := dispatch.ParseMode(*disp)
	if err != nil {
		return err
	}
	installDispatch(mode)
	opt := genomedsm.SearchOptions{
		Scoring:     genomedsm.Scoring{Match: *match, Mismatch: *mismatch, Gap: *gap},
		TopK:        *k,
		Workers:     *workers,
		MinScore:    *minScore,
		Lanes:       *lanes,
		Dispatch:    mode.String(),
		NoEndpoints: *scores,
		Prune:       *prune,
		Prefilter:   *prefilt,
	}
	var q genomedsm.Sequence
	var db *genomedsm.SearchDB
	if *packFile != "" {
		// Pre-packed database: the parse, sort, prefilter index and (v2)
		// lane layout were paid at `genomedsm index` time; the scan
		// starts cold-path-free through the same shared prepare path the
		// server uses. JSON mode keeps stdout machine-readable, so the
		// load chatter is dropped there.
		pw := io.Writer(w)
		if *jsonOut {
			pw = io.Discard
		}
		p, err := openPack(*packFile, pw)
		if err != nil {
			return err
		}
		defer p.Close()
		db = p.DB
		if q, err = loadQuery(*qFile, *n, *seed); err != nil {
			return err
		}
	} else {
		var recs []genomedsm.Record
		var err error
		if q, recs, err = loadSearchInputs(*qFile, *dbFile, *n, *dbSize, *dbLen, *seed, *plant); err != nil {
			return err
		}
		db = genomedsm.NewSearchDB(recs)
	}

	var res *genomedsm.SearchResult
	var cluster *shard.Cluster
	if *shards >= 2 {
		var err error
		if cluster, err = shard.New(db, shard.Options{Shards: *shards}); err != nil {
			return err
		}
		defer cluster.Close()
	}
	start := time.Now()
	if cluster != nil {
		res, err = cluster.Search(context.Background(), q, opt)
	} else {
		res, err = genomedsm.SearchPrepared(context.Background(), q, db, opt)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Seconds()
	if *jsonOut {
		return writeSearchJSON(w, q, res, elapsed)
	}
	writeSearchText(w, q, res, elapsed, *scores)
	if cluster != nil {
		writeShardText(w, cluster.Stats())
	}
	return nil
}

// writeShardText summarizes a sharded scan: the partition each shard
// answered for plus the robustness counters (all zero on a clean run).
func writeShardText(w io.Writer, st shard.Stats) {
	fmt.Fprintf(w, "sharded across %d workers:", len(st.Shards))
	for _, h := range st.Shards {
		fmt.Fprintf(w, " %d:[%d,%d)", h.Shard, h.SpanLo, h.SpanHi)
	}
	fmt.Fprintln(w)
	if st.Retries+st.Kills+st.Reassigns > 0 {
		fmt.Fprintf(w, "recovery: %d retries, %d kills, %d dead detected, %d spans reassigned\n",
			st.Retries, st.Kills, st.DeadDetected, st.Reassigns)
	}
	if st.FloorBroadcasts > 0 {
		fmt.Fprintf(w, "floor gossip: %d evidence batches up, %d floor broadcasts down\n",
			st.GossipUpdates, st.FloorBroadcasts)
	}
}

// installDispatch wires the process-wide kernel router for this run.
// Auto mode loads the host calibration from the on-disk cache — keyed
// by host and build, re-probed on any mismatch — so repeat CLI runs
// skip the startup probes; the loaded profile is also installed as the
// process profile so the search layer shares it.
func installDispatch(mode dispatch.Mode) {
	var prof *dispatch.Profile
	if mode == dispatch.ModeAuto {
		if path, err := dispatch.CachePath(); err == nil {
			prof, _ = dispatch.LoadOrCalibrate(path)
		} else {
			prof = dispatch.Host()
		}
		dispatch.SetHostProfile(prof)
	}
	dispatch.SetActive(dispatch.New(mode, prof))
}

// runCalibrate implements -calibrate: measure (or load from cache) the
// per-family kernel table and print it.
func runCalibrate(w io.Writer, jsonOut bool) error {
	var prof *dispatch.Profile
	fromCache := false
	if path, err := dispatch.CachePath(); err == nil {
		prof, fromCache = dispatch.LoadOrCalibrate(path)
	} else {
		prof = dispatch.Calibrate()
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(prof)
	}
	src := "measured now"
	if fromCache {
		src = "cached"
	}
	fmt.Fprintf(w, "kernel calibration for %s (%s)\n", prof.Host, src)
	tbl := stats.NewTable("", "family", "Mcells/s", "overhead ns")
	for _, row := range prof.TableRows() {
		tbl.AddRowRaw(row[0], row[1], row[2])
	}
	fmt.Fprint(w, tbl.Render())
	return nil
}

// loadSearchInputs reads the query and database from FASTA files, or
// synthesizes whichever is missing: a random query and a database of
// noise records with mutated query fragments planted every plantEvery
// records (default every eighth), so the scan has real hits to rank;
// plantEvery ≤ 0 yields pure noise (a uniform score distribution, the
// worst case for pruning).
func loadSearchInputs(qFile, dbFile string, n, dbSize, dbLen int, seed int64, plantEvery int) (genomedsm.Sequence, []genomedsm.Record, error) {
	g := genomedsm.NewGenerator(seed)
	var q genomedsm.Sequence
	if qFile != "" {
		recs, err := genomedsm.ReadFASTAFile(qFile)
		if err != nil {
			return nil, nil, err
		}
		if len(recs) == 0 {
			return nil, nil, fmt.Errorf("query file %s holds no records", qFile)
		}
		q = recs[0].Seq
	} else {
		q = g.Random(n)
	}
	return loadSearchDB(g, q, dbFile, dbSize, dbLen, plantEvery)
}

// loadQuery loads just the query: the first record of qFile, or the
// synthetic query the shared generator would produce — the same one
// loadSearchInputs plants homologs of, so `search -pack` against a
// synthetic pack of the same seed finds the planted hits.
func loadQuery(qFile string, n int, seed int64) (genomedsm.Sequence, error) {
	if qFile != "" {
		recs, err := genomedsm.ReadFASTAFile(qFile)
		if err != nil {
			return nil, err
		}
		if len(recs) == 0 {
			return nil, fmt.Errorf("query file %s holds no records", qFile)
		}
		return recs[0].Seq, nil
	}
	return genomedsm.NewGenerator(seed).Random(n), nil
}

// loadSearchDB reads or synthesizes the database half of the inputs.
func loadSearchDB(g *genomedsm.Generator, q genomedsm.Sequence, dbFile string, dbSize, dbLen, plantEvery int) (genomedsm.Sequence, []genomedsm.Record, error) {
	if dbFile != "" {
		db, err := genomedsm.ReadFASTAFile(dbFile)
		return q, db, err
	}
	db := make([]genomedsm.Record, 0, dbSize)
	for i := 0; i < dbSize; i++ {
		if plantEvery > 0 && i%plantEvery == 3%plantEvery && len(q) >= 2 {
			half := len(q) / 2
			frag := q[(i*13)%half : half+(i*29)%(half+1)]
			db = append(db, genomedsm.Record{
				ID:  fmt.Sprintf("hom%d", i),
				Seq: g.MutatedCopy(frag, genomedsm.DefaultMutationModel()),
			})
			continue
		}
		rl := dbLen/2 + (i*37)%(dbLen+1)
		db = append(db, genomedsm.Record{ID: fmt.Sprintf("rec%d", i), Seq: g.Random(rl)})
	}
	return q, db, nil
}

// searchJSON is the machine-readable report of `genomedsm search`.
type searchJSON struct {
	QueryLen    int              `json:"query_len"`
	Records     int              `json:"records"`
	Hits        []searchJSONHit  `json:"hits"`
	Cells       int64            `json:"cells"`
	PaddedCells int64            `json:"padded_cells"`
	Seconds     float64          `json:"seconds"`
	MCellsPerS  float64          `json:"mcells_per_second"`
	Prune       *searchJSONPrune `json:"prune,omitempty"`
}

// searchJSONPrune mirrors genomedsm.SearchPruneStats. The counts are
// scheduling-dependent diagnostics (see PruneStats), so consumers must
// not expect them to be stable run to run — only the hits are.
type searchJSONPrune struct {
	Skipped    int   `json:"skipped"`
	Abandoned  int   `json:"abandoned"`
	Scanned    int   `json:"scanned"`
	CellsSaved int64 `json:"cells_saved"`
	FloorFinal int   `json:"floor_final"`
}

type searchJSONHit struct {
	Index  int    `json:"index"`
	ID     string `json:"id"`
	Score  int    `json:"score"`
	QBegin int    `json:"q_begin,omitempty"`
	QEnd   int    `json:"q_end,omitempty"`
	TBegin int    `json:"t_begin,omitempty"`
	TEnd   int    `json:"t_end,omitempty"`
}

func writeSearchJSON(w io.Writer, q genomedsm.Sequence, res *genomedsm.SearchResult, seconds float64) error {
	out := searchJSON{
		QueryLen:    q.Len(),
		Records:     res.Searched,
		Cells:       res.Cells,
		PaddedCells: res.PaddedCells,
		Seconds:     seconds,
	}
	if seconds > 0 {
		out.MCellsPerS = float64(res.Cells) / seconds / 1e6
	}
	if st := res.Prune; st != nil {
		out.Prune = &searchJSONPrune{
			Skipped: st.Skipped, Abandoned: st.Abandoned, Scanned: st.Scanned,
			CellsSaved: st.CellsSaved, FloorFinal: st.FloorFinal,
		}
	}
	for _, h := range res.Hits {
		out.Hits = append(out.Hits, searchJSONHit{
			Index: h.Index, ID: h.ID, Score: h.Score,
			QBegin: h.QBegin, QEnd: h.QEnd, TBegin: h.TBegin, TEnd: h.TEnd,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func writeSearchText(w io.Writer, q genomedsm.Sequence, res *genomedsm.SearchResult, seconds float64, scoresOnly bool) {
	fmt.Fprintf(w, "searched %d records (%.2f Mcells) with a %d-base query\n",
		res.Searched, float64(res.Cells)/1e6, q.Len())
	if len(res.Hits) == 0 {
		fmt.Fprintln(w, "no hits above the score threshold")
	} else {
		tbl := stats.NewTable("", "#", "id", "score", "query span", "target span")
		for i, h := range res.Hits {
			qSpan, tSpan := "-", "-"
			if !scoresOnly {
				qSpan = fmt.Sprintf("%d..%d", h.QBegin, h.QEnd)
				tSpan = fmt.Sprintf("%d..%d", h.TBegin, h.TEnd)
			}
			tbl.AddRowRaw(fmt.Sprintf("%d", i+1), h.ID, fmt.Sprintf("%d", h.Score), qSpan, tSpan)
		}
		fmt.Fprint(w, tbl.Render())
	}
	if st := res.Prune; st != nil {
		line := fmt.Sprintf("pruning: skipped %d, abandoned %d, scanned %d of %d records",
			st.Skipped, st.Abandoned, st.Scanned, res.Searched)
		if res.Cells > 0 {
			line += fmt.Sprintf(" — %.1f%% of cells saved", 100*float64(st.CellsSaved)/float64(res.Cells))
		}
		if st.FloorFinal > 0 {
			line += fmt.Sprintf(" (top-%d floor %d)", len(res.Hits), st.FloorFinal)
		}
		fmt.Fprintln(w, line)
	}
	line := fmt.Sprintf("scan time %.3fs", seconds)
	if seconds > 0 {
		line += fmt.Sprintf(" — %.1f Mcells/s", float64(res.Cells)/seconds/1e6)
	}
	if res.Prune == nil && res.Cells > 0 {
		line += fmt.Sprintf(" (lane padding overhead %.1f%%)",
			100*float64(res.PaddedCells-res.Cells)/float64(res.Cells))
	}
	fmt.Fprintln(w, line)
}
