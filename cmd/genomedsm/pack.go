package main

import (
	"fmt"
	"io"

	"genomedsm/internal/dbpack"
)

// openPack is the one shared pack-prepare path for `serve` and
// `search -pack`: open the file in whichever format it carries (v2 is
// mmap'd with zero-copy views and the precomputed lane layout attached;
// v1 decodes through the legacy path and builds the layout in heap),
// and report how the bytes got into memory — including the re-index
// notice a legacy pack earns. Both commands used to duplicate this
// load-and-prepare work with slightly different behavior; now neither
// can drift.
func openPack(path string, w io.Writer) (*dbpack.Pack, error) {
	p, err := dbpack.Open(path)
	if err != nil {
		return nil, err
	}
	mode := p.Info.Mode.String()
	switch p.Info.Mode {
	case dbpack.LoadMMap:
		fmt.Fprintf(w, "pack %s: %s, %d bytes mapped\n", path, mode, p.Info.MappedBytes)
	default:
		fmt.Fprintf(w, "pack %s: %s, %d bytes on heap\n", path, mode, p.Info.HeapBytes)
	}
	if p.Info.Notice != "" {
		fmt.Fprintf(w, "pack %s: %s\n", path, p.Info.Notice)
	}
	return p, nil
}
