package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a mutex-guarded bytes.Buffer: serveCmd writes progress
// lines from the command goroutine while the test reads them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestIndexCmd(t *testing.T) {
	dir := t.TempDir()
	pack := filepath.Join(dir, "db.pack")
	qOut := filepath.Join(dir, "q.fa")
	var buf bytes.Buffer
	err := indexCmd([]string{
		"-db-size", "24", "-db-len", "120", "-n", "200",
		"-o", pack, "-q-out", qOut,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "packed 24 records") ||
		!strings.Contains(buf.String(), "11-mer index") {
		t.Errorf("index summary missing:\n%s", buf.String())
	}
	for _, f := range []string{pack, qOut} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("expected output %s: %v", f, err)
		}
	}
}

func TestIndexCmdErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing output", []string{"-db-size", "8"}, "missing -o"},
		{"bad word size", []string{"-db-size", "8", "-word", "3", "-o", filepath.Join(t.TempDir(), "x.pack")}, "outside [4,15]"},
		{"missing db file", []string{"-db", filepath.Join(t.TempDir(), "nope.fa"), "-o", filepath.Join(t.TempDir(), "x.pack")}, "no such file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := indexCmd(tc.args, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestSearchPackParity pins the cold-start promise: `search -pack`
// answers bit-identically to the same synthetic search that parses and
// prepares in-process, hits and accounting both.
func TestSearchPackParity(t *testing.T) {
	dir := t.TempDir()
	pack := filepath.Join(dir, "db.pack")
	args := []string{"-n", "300", "-db-size", "32", "-db-len", "200", "-seed", "9"}

	var buf bytes.Buffer
	if err := indexCmd(append([]string{"-o", pack}, args...), &buf); err != nil {
		t.Fatal(err)
	}
	var direct, packed bytes.Buffer
	common := []string{"-k", "5", "-prefilter", "-json"}
	if err := searchCmd(append(append([]string{}, args...), common...), &direct); err != nil {
		t.Fatal(err)
	}
	if err := searchCmd(append([]string{"-pack", pack, "-n", "300", "-seed", "9"}, common...), &packed); err != nil {
		t.Fatal(err)
	}
	var a, b searchJSON
	if err := json.Unmarshal(direct.Bytes(), &a); err != nil {
		t.Fatalf("direct: %v", err)
	}
	if err := json.Unmarshal(packed.Bytes(), &b); err != nil {
		t.Fatalf("packed: %v", err)
	}
	if len(a.Hits) == 0 {
		t.Fatal("direct search found no hits")
	}
	if fmt.Sprintf("%+v", a.Hits) != fmt.Sprintf("%+v", b.Hits) {
		t.Errorf("pack-loaded hits differ:\ndirect %+v\npacked %+v", a.Hits, b.Hits)
	}
	if a.Records != b.Records || a.Cells != b.Cells {
		t.Errorf("accounting differs: %d/%d vs %d/%d", a.Records, a.Cells, b.Records, b.Cells)
	}
}

// buildTestPack writes a small valid pack and returns its path.
func buildTestPack(t *testing.T) string {
	t.Helper()
	pack := filepath.Join(t.TempDir(), "db.pack")
	var buf bytes.Buffer
	if err := indexCmd([]string{"-db-size", "16", "-db-len", "100", "-n", "150", "-o", pack}, &buf); err != nil {
		t.Fatal(err)
	}
	return pack
}

// TestOpenPackFormats pins the shared prepare path both `serve` and
// `search -pack` go through: a default (v2) index mmaps and says so; a
// -format v1 index still loads but earns the re-index notice.
func TestOpenPackFormats(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		format string
		wants  []string
	}{
		{"v2", []string{"mmap"}},
		{"v1", []string{"legacy-v1", "re-index"}},
	} {
		pack := filepath.Join(dir, tc.format+".pack")
		var buf bytes.Buffer
		if err := indexCmd([]string{"-db-size", "16", "-db-len", "100", "-n", "150",
			"-format", tc.format, "-o", pack}, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "("+tc.format+")") {
			t.Errorf("index output %q does not name the %s format", buf.String(), tc.format)
		}
		buf.Reset()
		p, err := openPack(pack, &buf)
		if err != nil {
			t.Fatalf("openPack(%s): %v", tc.format, err)
		}
		for _, want := range tc.wants {
			if !strings.Contains(buf.String(), want) {
				t.Errorf("%s load output %q, want mention of %q", tc.format, buf.String(), want)
			}
		}
		if p.DB.Layout() == nil {
			t.Errorf("%s pack loaded without a lane layout", tc.format)
		}
		if err := p.Close(); err != nil {
			t.Errorf("Close(%s): %v", tc.format, err)
		}
	}
}

func TestServeCmdBadPacks(t *testing.T) {
	good, err := os.ReadFile(buildTestPack(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, blob []byte) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)/2] ^= 0x55

	// A stale-format pack with a correct checksum: bump the pack
	// version varint (payload byte 1, after the codec version byte) and
	// recompute the FNV-1a trailer.
	stale := append([]byte(nil), good[8:len(good)-8]...)
	stale[1]++
	h := fnv.New64a()
	h.Write(stale)
	stale = h.Sum(stale)
	stale = append(append([]byte(nil), good[:8]...), stale...)

	cases := []struct {
		name string
		path string
		want string
	}{
		{"missing", filepath.Join(dir, "nope.pack"), "no such file"},
		{"not a pack", write("junk.pack", []byte("this is not a pack at all")), "bad magic"},
		{"corrupt", write("corrupt.pack", corrupt), "checksum"},
		{"truncated", write("short.pack", good[:len(good)/3]), "truncated"},
		{"stale version", write("stale.pack", stale), "format version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf syncBuffer
			err := serveCmd([]string{"-pack", tc.path, "-addr", "127.0.0.1:0"}, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestServeCmdPortInUse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var buf syncBuffer
	err = serveCmd([]string{"-pack", buildTestPack(t), "-addr", ln.Addr().String()}, &buf)
	if err == nil || !strings.Contains(err.Error(), "address already in use") {
		t.Errorf("err %v, want address-in-use failure before serving", err)
	}
}

// TestServeCmdGracefulShutdown drives the full service lifecycle in
// process: serve a pack, answer a query, then SIGTERM — the in-flight
// query drains to a real answer and the command exits cleanly.
func TestServeCmdGracefulShutdown(t *testing.T) {
	addrCh := make(chan string, 1)
	serveReady = func(addr string) { addrCh <- addr }
	defer func() { serveReady = nil }()

	var buf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- serveCmd([]string{"-pack", buildTestPack(t), "-addr", "127.0.0.1:0", "-queue", "4"}, &buf)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("serve exited before listening: %v\n%s", err, buf.String())
	}

	// One query in flight while the signal lands: its response must
	// still arrive (drain), not be cut off.
	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/search", "application/json",
			strings.NewReader(`{"query":"ACGTACGTACGTACGTACGTACGT","top_k":3}`))
		if err != nil {
			reqDone <- -1
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()
	time.Sleep(10 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if status := <-reqDone; status != http.StatusOK {
		t.Errorf("in-flight query answered %d, want 200", status)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v\n%s", err, buf.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
	out := buf.String()
	for _, want := range []string{"serving 16 records", "listening on http://", "draining", "drained"} {
		if !strings.Contains(out, want) {
			t.Errorf("serve output missing %q:\n%s", want, out)
		}
	}
}
