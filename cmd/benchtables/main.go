// Command benchtables regenerates every table and figure of the paper's
// evaluation on the simulated cluster and prints them in the paper's
// format.
//
// Usage:
//
//	benchtables                      # everything, sizes scaled 1/25
//	benchtables -experiment table3   # one experiment
//	benchtables -scale 10            # closer to paper sizes (slower)
//	benchtables -list                # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"genomedsm/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id or 'all'")
		scale      = flag.Int("scale", 25, "divide the paper's input sizes by this factor")
		seed       = flag.Int64("seed", 2005, "synthetic data seed")
		list       = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	ctx := experiments.New(os.Stdout, *scale)
	ctx.Seed = *seed
	if err := ctx.Run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}
