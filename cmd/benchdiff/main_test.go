package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: genomedsm
BenchmarkKernelExactScan-4     	     433	   2772724 ns/op	 364.62 MB/s	 364624052 cells/s
BenchmarkKernelExactScan-4     	     409	   2849246 ns/op	 354.83 MB/s	 354830000 cells/s
BenchmarkKernelHeuristicScan-4 	     100	  11532556 ns/op	  87.66 MB/s	  87660000 cells/s
PASS
ok  	genomedsm	12.3s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 {
		t.Fatalf("got %d benchmarks, want 2: %v", len(snap), snap)
	}
	exact, ok := snap["KernelExactScan"]
	if !ok {
		t.Fatalf("KernelExactScan missing (prefix/suffix not stripped?): %v", snap)
	}
	// Best-of across the two runs: max throughput, min ns/op.
	if got := exact["cells/s"]; got != 364624052 {
		t.Errorf("cells/s = %v, want best-of 364624052", got)
	}
	if got := exact["MB/s"]; got != 364.62 {
		t.Errorf("MB/s = %v, want 364.62", got)
	}
	if got := exact["ns/op"]; got != 2772724 {
		t.Errorf("ns/op = %v, want best-of (min) 2772724", got)
	}
}

func TestThroughputFallback(t *testing.T) {
	v, unit, ok := throughput(Metrics{"cells/s": 5, "MB/s": 4, "ns/op": 2})
	if !ok || unit != "cells/s" || v != 5 {
		t.Errorf("preferred metric: got %v %s %v", v, unit, ok)
	}
	v, unit, ok = throughput(Metrics{"MB/s": 4, "ns/op": 2})
	if !ok || unit != "MB/s" || v != 4 {
		t.Errorf("MB/s fallback: got %v %s %v", v, unit, ok)
	}
	v, unit, ok = throughput(Metrics{"ns/op": 2})
	if !ok || unit != "op/ns" || v != 0.5 {
		t.Errorf("ns/op fallback: got %v %s %v", v, unit, ok)
	}
	if _, _, ok = throughput(Metrics{}); ok {
		t.Error("empty metrics should report no throughput")
	}
}

func TestCommonThroughput(t *testing.T) {
	// A baseline recorded before cells/s existed must compare via MB/s.
	av, bv, unit, ok := commonThroughput(
		Metrics{"MB/s": 66, "ns/op": 15e6},
		Metrics{"cells/s": 95e6, "MB/s": 95, "ns/op": 10e6})
	if !ok || unit != "MB/s" || av != 66 || bv != 95 {
		t.Errorf("got %v %v %s %v, want 66 95 MB/s true", av, bv, unit, ok)
	}
	// ns/op-only snapshots compare inverted.
	av, bv, unit, ok = commonThroughput(Metrics{"ns/op": 4}, Metrics{"ns/op": 2})
	if !ok || unit != "op/ns" || av != 0.25 || bv != 0.5 {
		t.Errorf("got %v %v %s %v, want 0.25 0.5 op/ns true", av, bv, unit, ok)
	}
	if _, _, _, ok = commonThroughput(Metrics{"MB/s": 1}, Metrics{"cells/s": 1}); ok {
		t.Error("disjoint units should not compare")
	}
}

func TestCheck(t *testing.T) {
	base := Snapshot{
		"A": Metrics{"cells/s": 100},
		"B": Metrics{"cells/s": 100},
		"D": Metrics{"cells/s": 100},
	}
	cur := Snapshot{
		"A": Metrics{"cells/s": 95},  // -5%: within 10% tolerance
		"B": Metrics{"cells/s": 80},  // -20%: regression
		"C": Metrics{"cells/s": 123}, // added: reported, not failed
		// D retired: reported as removed, not failed.
	}
	lines, regressions := check(base, cur, 0.10)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if len(regressions) != 1 || regressions[0] != "B" {
		t.Errorf("regressions = %v, want [B]", regressions)
	}
	var added, removed bool
	for _, l := range lines {
		if strings.HasPrefix(l, "C") && strings.Contains(l, "added") {
			added = true
		}
		if strings.HasPrefix(l, "D") && strings.Contains(l, "removed") {
			removed = true
		}
	}
	if !added || !removed {
		t.Errorf("added/removed lines missing:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCheckRoundTrip(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	// Identical output against itself: never a regression.
	if _, regressions := check(snap, snap, 0.10); len(regressions) != 0 {
		t.Errorf("self-check regressed: %v", regressions)
	}
}

func TestResolveTolerance(t *testing.T) {
	cases := []struct {
		name            string
		maxRegress, tol float64
		explicit        []string
		want            float64
	}{
		{"defaults", 5, 0.05, nil, 0.05},
		{"max-regress only", 8, 0.05, []string{"max-regress"}, 0.08},
		{"legacy tol only", 5, 0.12, []string{"tol"}, 0.12},
		{"both given: max-regress wins", 3, 0.25, []string{"max-regress", "tol"}, 0.03},
	}
	for _, tc := range cases {
		explicit := map[string]bool{}
		for _, f := range tc.explicit {
			explicit[f] = true
		}
		if got := resolveTolerance(tc.maxRegress, tc.tol, explicit); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: resolveTolerance = %v, want %v", tc.name, got, tc.want)
		}
	}
}
