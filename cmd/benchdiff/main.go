// Command benchdiff maintains the kernel benchmark snapshot file
// (BENCH_kernels.json) and gates regressions against it.
//
// It reads `go test -bench` output on stdin and either records it as a
// named snapshot or checks it against a stored baseline:
//
//	go test -run '^$' -bench Kernel -count 5 . | benchdiff -snapshot current
//	go test -run '^$' -bench Kernel -count 5 . | benchdiff -check
//	benchdiff -diff seed current
//	benchdiff -list
//
// Repeated runs of the same benchmark (from -count N) collapse to the
// best observation — maximum for throughput metrics, minimum for ns/op —
// which is the standard way to strip scheduler noise from shared
// machines. -check compares the preferred throughput metric (cells/s,
// falling back to MB/s, falling back to inverted ns/op) and exits
// non-zero when any benchmark is slower than baseline by more than
// -max-regress percent (default 5). The older -tol flag is the same
// limit as a fraction and is kept for compatibility; when both are
// given, -max-regress wins.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics maps a metric unit ("ns/op", "MB/s", "cells/s", ...) to its
// best observed value for one benchmark.
type Metrics map[string]float64

// Snapshot maps a benchmark name (without the Benchmark prefix and
// GOMAXPROCS suffix) to its metrics.
type Snapshot map[string]Metrics

// File is the on-disk shape of BENCH_kernels.json.
type File struct {
	Snapshots map[string]Snapshot `json:"snapshots"`
}

// lowerIsBetter reports whether smaller values of the unit are faster.
func lowerIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/op")
}

// parseBench extracts benchmark results from `go test -bench` output,
// collapsing repeated runs of the same benchmark to the best value per
// metric.
func parseBench(r io.Reader) (Snapshot, error) {
	snap := Snapshot{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			// Strip the -GOMAXPROCS suffix so snapshots from machines
			// with different core counts stay comparable.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		// f[1] is the iteration count; value/unit pairs follow.
		m := snap[name]
		if m == nil {
			m = Metrics{}
			snap[name] = m
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			unit := f[i+1]
			old, seen := m[unit]
			if !seen || (lowerIsBetter(unit) && v < old) || (!lowerIsBetter(unit) && v > old) {
				m[unit] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// throughput picks the metric used for regression checks: cells/s when
// reported, else MB/s, else the inverse of ns/op (ops/ns). The second
// return is the unit label.
func throughput(m Metrics) (float64, string, bool) {
	if v, ok := m["cells/s"]; ok {
		return v, "cells/s", true
	}
	if v, ok := m["MB/s"]; ok {
		return v, "MB/s", true
	}
	if v, ok := m["ns/op"]; ok && v > 0 {
		return 1 / v, "op/ns", true
	}
	return 0, "", false
}

// commonThroughput picks the best throughput metric present in both
// metric sets, so snapshots recorded before a new metric existed stay
// comparable (e.g. a seed snapshot with only MB/s against a current one
// that also reports cells/s).
func commonThroughput(a, b Metrics) (av, bv float64, unit string, ok bool) {
	for _, u := range []string{"cells/s", "MB/s"} {
		x, okA := a[u]
		y, okB := b[u]
		if okA && okB {
			return x, y, u, true
		}
	}
	x, okA := a["ns/op"]
	y, okB := b["ns/op"]
	if okA && okB && x > 0 && y > 0 {
		return 1 / x, 1 / y, "op/ns", true
	}
	return 0, 0, "", false
}

// check compares cur against base and returns one line per benchmark
// plus the list of regressions beyond tol. Benchmarks present in only
// one snapshot are reported as added or removed but are never
// regressions: a snapshot taken before a benchmark existed must not
// fail the gate, and neither must retiring one.
func check(base, cur Snapshot, tol float64) (lines []string, regressions []string) {
	for _, name := range sortedKeys(cur) {
		bm, ok := base[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("%-30s (added: no baseline yet)", name))
			continue
		}
		bv, cv, unit, ok := commonThroughput(bm, cur[name])
		if !ok || bv <= 0 {
			continue
		}
		ratio := cv / bv
		status := "ok"
		if ratio < 1-tol {
			status = "REGRESSION"
			regressions = append(regressions, name)
		}
		lines = append(lines, fmt.Sprintf("%-30s %12.4g -> %12.4g %-8s %6.2fx  %s",
			name, bv, cv, unit, ratio, status))
	}
	for _, name := range sortedKeys(base) {
		if _, ok := cur[name]; !ok {
			lines = append(lines, fmt.Sprintf("%-30s (removed: only in baseline)", name))
		}
	}
	return lines, regressions
}

func sortedKeys(s Snapshot) []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func loadFile(path string) (*File, error) {
	f := &File{Snapshots: map[string]Snapshot{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return f, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Snapshots == nil {
		f.Snapshots = map[string]Snapshot{}
	}
	return f, nil
}

func saveFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		file     = flag.String("file", "BENCH_kernels.json", "snapshot file")
		snapshot = flag.String("snapshot", "", "record stdin bench output under this snapshot name")
		doCheck  = flag.Bool("check", false, "check stdin bench output against the baseline snapshot")
		baseline   = flag.String("baseline", "current", "baseline snapshot name for -check")
		maxRegress = flag.Float64("max-regress", 5, "allowed per-benchmark throughput regression for -check, in percent")
		tol        = flag.Float64("tol", 0.05, "deprecated fractional form of -max-regress")
		doList     = flag.Bool("list", false, "list stored snapshots")
		diff       = flag.Bool("diff", false, "compare two stored snapshots given as arguments: benchdiff -diff OLD NEW")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	tolerance := resolveTolerance(*maxRegress, *tol, explicit)

	f, err := loadFile(*file)
	if err != nil {
		fatal(err)
	}

	switch {
	case *snapshot != "":
		snap, err := parseBench(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if len(snap) == 0 {
			fatal(fmt.Errorf("no benchmark lines on stdin"))
		}
		f.Snapshots[*snapshot] = snap
		if err := saveFile(*file, f); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d benchmarks as %q in %s\n", len(snap), *snapshot, *file)

	case *doCheck:
		base, ok := f.Snapshots[*baseline]
		if !ok {
			fatal(fmt.Errorf("%s: no snapshot %q (have %v)", *file, *baseline, mapKeys(f.Snapshots)))
		}
		cur, err := parseBench(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if len(cur) == 0 {
			fatal(fmt.Errorf("no benchmark lines on stdin"))
		}
		lines, regressions := check(base, cur, tolerance)
		for _, l := range lines {
			fmt.Println(l)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %.0f%%: %s\n",
				len(regressions), tolerance*100, strings.Join(regressions, ", "))
			os.Exit(1)
		}

	case *diff:
		args := flag.Args()
		if len(args) != 2 {
			fatal(fmt.Errorf("-diff needs two snapshot names"))
		}
		old, ok := f.Snapshots[args[0]]
		if !ok {
			fatal(fmt.Errorf("no snapshot %q", args[0]))
		}
		cur, ok := f.Snapshots[args[1]]
		if !ok {
			fatal(fmt.Errorf("no snapshot %q", args[1]))
		}
		lines, _ := check(old, cur, math.Inf(1))
		for _, l := range lines {
			fmt.Println(l)
		}

	case *doList:
		for _, name := range mapKeys(f.Snapshots) {
			fmt.Printf("%s: %d benchmarks\n", name, len(f.Snapshots[name]))
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// resolveTolerance merges the two regression-limit flags: -max-regress
// is the canonical knob (percent), -tol the fractional spelling older
// scripts used. An explicit -max-regress wins, an explicit -tol alone
// is honoured, otherwise the -max-regress default applies. explicit
// holds the flag names actually given on the command line.
func resolveTolerance(maxRegress, tol float64, explicit map[string]bool) float64 {
	if explicit["tol"] && !explicit["max-regress"] {
		return tol
	}
	return maxRegress / 100
}

func mapKeys(m map[string]Snapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
