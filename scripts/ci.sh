#!/bin/sh
# ci.sh — the repo's full verification pipeline:
#
#   1. go vet, build, and the test suite under the race detector
#      (plus a doubled -race pass over the concurrency-heavy SWAR,
#      align, search, dispatch, dbpack and server packages — the
#      striped kernels, their pooled aligners, the adaptive routing
#      state and the HTTP batching/admission machinery run under
#      -race -count=2)
#   2. a chaos sweep: 16 seeds x 3 strategies of the fault-injection
#      differential oracle, under the race detector, plus a
#      crash-recovery matrix (8 seeds x 3 strategies, one kill + 5%
#      message loss each) asserting bit-exact kill-and-recover runs,
#      plus a sharded-search chaos matrix (8 seeds x {kill one shard
#      mid-scan, 5% message loss, 5% duplication}, -race) asserting the
#      distributed scan stays bit-identical to single-node with the
#      recovery counters proving each kill was detected and reassigned,
#      plus a pruned-vs-unpruned search differential sweep (3 seeds x
#      skewed/uniform databases, -race) asserting bit-identical hits
#   3. per-package coverage, gated on >= 85% combined coverage of
#      internal/dsm + internal/chaos + internal/recovery (the
#      protocol, its harness and the fault-tolerance layer)
#   4. an index/serve e2e smoke: pack a synthetic database with the
#      real binary (v2 format), serve it resident with /statsz proving
#      the pack is mmap'd, answer an HTTP query with hits, then drain
#      cleanly on SIGTERM
#   5. a 1-iteration smoke run of every kernel, search, serve and pack
#      benchmark
#   6. the kernel, search and serve benchmarks for real, gated by
#      cmd/benchdiff against the committed BENCH_kernels.json baseline,
#      plus the pruning speedup gate: SearchDatabasePruned must hold
#      >= 1.5x the cells/s of both SearchDatabaseSkewed and
#      SearchDatabase, plus the dispatch routing gate: auto-dispatched
#      scans must hold parity with the best fixed route on the uniform
#      and skewed databases and beat every fixed route outright on the
#      mixed database (where no single fixed route wins both halves),
#      plus the serve batching gate: one 16-query POST must beat 16
#      sequential single-query POSTs by >= 1.5x queries/s, plus the
#      pack cold-start gate: opening + first query on a v2 (mmap) pack
#      must be >= 2x faster than the same on a v1 (varint-decode) pack
#
# The benchmark gate fails the build when any kernel loses more than
# BENCHDIFF_MAX_REGRESS percent (default 5) cells/sec against the
# "baseline" snapshot in BENCH_kernels.json. "baseline" is the gate
# anchor, recorded
# conservatively (a slow phase of the dev machine) so one-sided
# scheduler noise doesn't trip the gate; the "seed"/"current" snapshots
# document this repo's before/after kernel rewrite and are compared
# with `benchdiff -diff seed current`, not gated on. After an
# intentional perf change, re-record with:
#
#   go test -run '^$' -bench 'Kernel|Search|Serve|Pack' -count 5 . | go run ./cmd/benchdiff -snapshot baseline
#
# On shared/noisy machines set BENCHDIFF_MAX_REGRESS higher, increase
# BENCH_COUNT so best-of has more samples, or set SKIP_BENCHDIFF=1 to
# run only the functional checks.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== go test -race -count=2 (swar + align + search + shard + dispatch + dbpack + server)"
go test -race -count=2 ./internal/swar ./internal/align ./internal/search ./internal/shard ./internal/dispatch ./internal/dbpack ./internal/server ./cmd/genomedsm

echo "== chaos sweep (16 seeds x 3 strategies, -race)"
chaos_bin=$(mktemp -d)/genomedsm
go build -race -o "$chaos_bin" ./cmd/genomedsm
seed=1
while [ "$seed" -le 16 ]; do
    "$chaos_bin" chaos -seed "$seed" -strategy noblock,preprocess,phase2 \
        -schedules 2 -len 360 -procs 3 >/dev/null ||
        { echo "chaos sweep FAILED at seed $seed"; exit 1; }
    seed=$((seed + 1))
done
echo "chaos sweep ok"

echo "== crash-recovery matrix (8 seeds x 3 strategies, kill + 5% loss, -race)"
seed=1
while [ "$seed" -le 8 ]; do
    for st in noblock preprocess phase2; do
        "$chaos_bin" chaos -seed "$seed" -strategy "$st" \
            -kill 1@2 -loss 0.05 -schedules 1 -len 360 -procs 3 >/dev/null ||
            { echo "crash matrix FAILED at seed $seed strategy $st"; exit 1; }
    done
    seed=$((seed + 1))
done
echo "crash-recovery matrix ok"

echo "== sharded-search chaos matrix (8 seeds x kill/loss/dup, -race)"
# The distributed-search robustness contract: across every seed, a
# 4-shard scatter with one worker killed mid-scan (the oracle also
# requires its counters to prove the kill, detection and reassignment
# happened), 5% message loss, or 5% duplication must return hits
# bit-identical to a fault-free single-node scan.
seed=1
while [ "$seed" -le 8 ]; do
    for faults in "-kill-shard 1@1" "-loss 0.05" "-dup 0.05"; do
        "$chaos_bin" chaos -search -shards 4 -schedules 1 -seed "$seed" $faults >/dev/null ||
            { echo "sharded-search matrix FAILED at seed $seed faults '$faults'"; exit 1; }
    done
    seed=$((seed + 1))
done
echo "sharded-search chaos matrix ok"

echo "== pruned-vs-unpruned differential sweep (3 seeds x skewed/uniform, -race)"
# The exact-pruning contract: `search -prune` (and -prune -prefilter)
# must return bit-identical hits — scores, coordinates, tie-breaks — to
# the unpruned scan, on skewed (planted homologs) and uniform (pure
# noise, worst case) databases alike. Reuses the -race CLI binary so
# the sweep also exercises the shared floor under the race detector.
hits_of() {
    "$chaos_bin" search -n 400 -db-size 64 -db-len 300 -json "$@" |
        sed -n '/"hits"/,/\]/p'
}
for seed in 1 2 3; do
    for plant in 8 0; do
        want=$(hits_of -seed "$seed" -plant-every "$plant" -prune=false)
        for mode in "-prune" "-prune -prefilter"; do
            got=$(hits_of -seed "$seed" -plant-every "$plant" $mode)
            [ "$got" = "$want" ] ||
                { echo "differential sweep FAILED: seed $seed plant $plant mode '$mode'"
                  echo "--- unpruned"; echo "$want"; echo "--- pruned"; echo "$got"; exit 1; }
        done
    done
done
rm -rf "$(dirname "$chaos_bin")"
echo "differential sweep ok"

echo "== per-package coverage"
go test -cover ./...

echo "== dsm+chaos+recovery coverage gate (>= 85%)"
covfile=$(mktemp)
go test -coverpkg=./internal/dsm,./internal/chaos,./internal/recovery \
    -coverprofile="$covfile" \
    ./internal/dsm ./internal/chaos ./internal/recovery ./internal/phase2 \
    ./internal/preprocess ./internal/wavefront >/dev/null
pct=$(go tool cover -func="$covfile" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
rm -f "$covfile"
echo "combined internal/dsm + internal/chaos + internal/recovery coverage: ${pct}%"
awk -v p="$pct" 'BEGIN { exit (p >= 85.0) ? 0 : 1 }' ||
    { echo "coverage gate FAILED: ${pct}% < 85%"; exit 1; }

echo "== index/serve e2e smoke (pack -> resident server -> HTTP query -> drain)"
# The cold-start contract end to end with the real binary: pack a
# synthetic database once, serve it (no FASTA re-parse), answer an HTTP
# query with hits, report healthy, then drain cleanly on SIGTERM.
e2edir=$(mktemp -d)
go build -o "$e2edir/genomedsm" ./cmd/genomedsm
"$e2edir/genomedsm" index -db-size 48 -db-len 300 -n 400 \
    -o "$e2edir/db.pack" -q-out "$e2edir/q.fa" >/dev/null
"$e2edir/genomedsm" serve -pack "$e2edir/db.pack" -addr 127.0.0.1:17878 \
    >"$e2edir/serve.log" 2>&1 &
serve_pid=$!
ok=0
for _ in $(seq 1 50); do
    if curl -sf http://127.0.0.1:17878/healthz >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
done
[ "$ok" = 1 ] || { echo "e2e FAILED: server never became healthy"
                   cat "$e2edir/serve.log"; kill "$serve_pid" 2>/dev/null; exit 1; }
q=$(sed -n '2p' "$e2edir/q.fa" | cut -c1-200)
curl -sf -d "{\"query\":\"$q\",\"top_k\":3}" http://127.0.0.1:17878/search |
    grep -q '"score"' ||
    { echo "e2e FAILED: query returned no scored hits"; kill "$serve_pid" 2>/dev/null; exit 1; }
statsz=$(curl -sf http://127.0.0.1:17878/statsz)
echo "$statsz" | grep -q '"served": *1' ||
    { echo "e2e FAILED: statsz did not count the query"; kill "$serve_pid" 2>/dev/null; exit 1; }
# The zero-copy contract: `index` writes v2 by default and `serve` must
# have mmap'd it, with /statsz reporting the mapped load verbatim.
echo "$statsz" | grep -q '"mode": *"mmap"' ||
    { echo "e2e FAILED: statsz pack mode is not mmap"
      echo "$statsz"; kill "$serve_pid" 2>/dev/null; exit 1; }
echo "$statsz" | grep -q '"version": *2' ||
    { echo "e2e FAILED: statsz pack version is not 2"
      echo "$statsz"; kill "$serve_pid" 2>/dev/null; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "e2e FAILED: serve exited non-zero after SIGTERM"
                       cat "$e2edir/serve.log"; exit 1; }
grep -q drained "$e2edir/serve.log" ||
    { echo "e2e FAILED: no drain on shutdown"; cat "$e2edir/serve.log"; exit 1; }
rm -rf "$e2edir"
echo "index/serve e2e ok"

echo "== benchmark smoke (1 iteration)"
go test -run '^$' -bench 'Kernel|Search|Serve|Pack' -benchtime 1x .

if [ "${SKIP_BENCHDIFF:-0}" = "1" ]; then
    echo "== benchdiff gate skipped (SKIP_BENCHDIFF=1)"
    exit 0
fi

count="${BENCH_COUNT:-5}"
maxregress="${BENCHDIFF_MAX_REGRESS:-5}"
echo "== benchmark regression gate (count=$count, max-regress=${maxregress}%)"
benchout=$(mktemp)
go test -run '^$' -bench 'Kernel|Search|Serve|Pack' -benchtime 1s -count "$count" . |
    tee "$benchout" |
    go run ./cmd/benchdiff -check -baseline baseline -max-regress "$maxregress"

echo "== pruning speedup gate (SearchDatabasePruned >= 1.5x unpruned)"
# Best value of a metric ($2, default cells/s) over the -count runs,
# same collapse rule as benchdiff.
best() {
    awk -v name="Benchmark$1" -v unit="${2:-cells/s}" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            for (i = 2; i < NF; i++) if ($(i+1) == unit && $i > best) best = $i
        }
        END { if (best == "") exit 1; print best }' "$benchout"
}
pruned=$(best SearchDatabasePruned)
skewed=$(best SearchDatabaseSkewed)
uniform=$(best SearchDatabase)
echo "pruned $pruned cells/s vs skewed $skewed, uniform $uniform"
awk -v p="$pruned" -v s="$skewed" -v u="$uniform" 'BEGIN {
    if (p < 1.5 * s) { printf "pruning gate FAILED: %.2fx over skewed < 1.5x\n", p / s; exit 1 }
    if (p < 1.5 * u) { printf "pruning gate FAILED: %.2fx over uniform < 1.5x\n", p / u; exit 1 }
    printf "pruning gate ok: %.2fx over skewed, %.2fx over uniform\n", p / s, p / u
}'

echo "== dispatch routing gate (auto vs fixed routes)"
# On the uniform and skewed databases auto and fixed routing are a
# statistical tie (uniform routes identically; skewed trades an int8
# retry against feedback-driven int16 starts), so those pairs are
# parity checks: the floor is twice the benchdiff tolerance, wide
# enough for the ±7% run-to-run spread of two same-speed runs on a
# 1-core host but still tripped by any real routing regression. On the
# mixed database (saturating homologs + provably non-saturating noise)
# no single fixed route wins both halves, so auto must beat the best
# fixed route outright; that is the structural win routing exists to
# capture (≈1.15-1.3x on the dev host).
dauto=$(best SearchDatabaseDispatch)
dfixed=$(best SearchDatabaseFixed)
skewfixed=$(best SearchDatabaseSkewedFixed)
mixed=$(best SearchDatabaseMixed)
mixfixed=$(best SearchDatabaseMixedFixed)
mixlanes16=$(best SearchDatabaseMixedLanes16)
echo "uniform auto $dauto vs fixed $dfixed; skewed auto $skewed vs fixed $skewfixed"
echo "mixed auto $mixed vs fixed int8 $mixfixed, fixed int16 $mixlanes16"
awk -v tol="$maxregress" -v d="$dauto" -v f="$dfixed" \
    -v sa="$skewed" -v sf="$skewfixed" \
    -v m="$mixed" -v mf="$mixfixed" -v ml="$mixlanes16" 'BEGIN {
    floor = 1 - 2 * tol / 100
    if (d < floor * f)  { printf "dispatch gate FAILED: uniform auto at %.2fx of fixed (floor %.2fx)\n", d / f, floor; exit 1 }
    if (sa < floor * sf) { printf "dispatch gate FAILED: skewed auto at %.2fx of fixed (floor %.2fx)\n", sa / sf, floor; exit 1 }
    bf = (mf > ml) ? mf : ml
    if (m < bf) { printf "dispatch gate FAILED: mixed auto at %.2fx of best fixed route\n", m / bf; exit 1 }
    printf "dispatch gate ok: uniform %.2fx, skewed %.2fx, mixed %.2fx over best fixed\n", d / f, sa / sf, m / bf
}'

echo "== sharded scaling sanity gate (4-shard in-process >= single-node)"
# The distribution layer's wins come from adding hosts; on one host it
# must at least hold parity with the single-node scan on the uniform
# benchmark database. The floor is twice the benchdiff tolerance — the
# same same-speed-parity allowance the dispatch gate uses.
sharded=$(best SearchDatabaseSharded)
echo "sharded $sharded cells/s vs single-node $uniform"
awk -v tol="$maxregress" -v sh="$sharded" -v u="$uniform" 'BEGIN {
    floor = 1 - 2 * tol / 100
    if (sh < floor * u) { printf "scaling gate FAILED: 4-shard at %.2fx of single-node (floor %.2fx)\n", sh / u, floor; exit 1 }
    printf "scaling gate ok: 4-shard at %.2fx of single-node\n", sh / u
}'

echo "== serve batching gate (batched >= 1.5x sequential queries/s)"
# The shared-scan contract: one POST carrying 16 queries must amortize
# the per-request fixed costs (HTTP round trip, JSON, per-scan setup)
# into at least a 1.5x queries/s win over 16 sequential single-query
# POSTs of the same workload. The DP work per query is identical on
# both sides, so the ratio isolates exactly what the batching path
# exists to remove.
seqrate=$(best ServeQueryLatency queries/s)
batchrate=$(best ServeThroughputBatched queries/s)
echo "sequential $seqrate queries/s vs batched $batchrate queries/s"
awk -v s="$seqrate" -v b="$batchrate" 'BEGIN {
    if (b < 1.5 * s) { printf "serve gate FAILED: batched at %.2fx of sequential < 1.5x\n", b / s; exit 1 }
    printf "serve gate ok: batched %.2fx over sequential\n", b / s
}'

echo "== pack cold-start gate (v2 mmap >= 2x v1 decode)"
# The tentpole win of the v2 format: open-pack-and-answer-first-query
# must be at least twice as fast mmap'ing v2 as varint-decoding v1 of
# the same database. ns/op is a latency (lower is better), so collapse
# the -count runs with min, not the max the throughput gates use.
fastest() {
    awk -v name="Benchmark$1" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            for (i = 2; i < NF; i++)
                if ($(i+1) == "ns/op" && (best == "" || $i < best)) best = $i
        }
        END { if (best == "") exit 1; print best }' "$benchout"
}
v1cold=$(fastest PackColdStartV1)
v2cold=$(fastest PackColdStartV2)
rm -f "$benchout"
echo "v1 cold start $v1cold ns/op vs v2 $v2cold ns/op"
awk -v a="$v1cold" -v b="$v2cold" 'BEGIN {
    if (a < 2.0 * b) { printf "cold-start gate FAILED: v2 only %.2fx faster than v1 < 2x\n", a / b; exit 1 }
    printf "cold-start gate ok: v2 %.2fx faster than v1\n", a / b
}'
