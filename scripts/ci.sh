#!/bin/sh
# ci.sh — the repo's full verification pipeline:
#
#   1. go vet, build, and the test suite under the race detector
#      (plus a doubled -race pass over the concurrency-heavy SWAR
#      search packages)
#   2. a 1-iteration smoke run of every kernel and search benchmark
#   3. the kernel and search benchmarks for real, gated by
#      cmd/benchdiff against the committed BENCH_kernels.json baseline
#
# The benchmark gate fails the build when any kernel loses more than
# BENCHDIFF_TOL (default 10%) cells/sec against the "baseline" snapshot
# in BENCH_kernels.json. "baseline" is the gate anchor, recorded
# conservatively (a slow phase of the dev machine) so one-sided
# scheduler noise doesn't trip the gate; the "seed"/"current" snapshots
# document this repo's before/after kernel rewrite and are compared
# with `benchdiff -diff seed current`, not gated on. After an
# intentional perf change, re-record with:
#
#   go test -run '^$' -bench 'Kernel|Search' -count 5 . | go run ./cmd/benchdiff -snapshot baseline
#
# On shared/noisy machines set BENCHDIFF_TOL higher, increase
# BENCH_COUNT so best-of has more samples, or set SKIP_BENCHDIFF=1 to
# run only the functional checks.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== go test -race -count=2 (swar + search)"
go test -race -count=2 ./internal/swar ./internal/search ./cmd/genomedsm

echo "== benchmark smoke (1 iteration)"
go test -run '^$' -bench 'Kernel|Search' -benchtime 1x .

if [ "${SKIP_BENCHDIFF:-0}" = "1" ]; then
    echo "== benchdiff gate skipped (SKIP_BENCHDIFF=1)"
    exit 0
fi

count="${BENCH_COUNT:-5}"
tol="${BENCHDIFF_TOL:-0.10}"
echo "== benchmark regression gate (count=$count, tol=$tol)"
go test -run '^$' -bench 'Kernel|Search' -benchtime 1s -count "$count" . |
    go run ./cmd/benchdiff -check -baseline baseline -tol "$tol"
