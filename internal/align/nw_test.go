package align

import (
	"testing"
	"testing/quick"

	"genomedsm/internal/bio"
)

func TestGlobalIdentical(t *testing.T) {
	s := bio.MustSequence("ACGTACGT")
	al, err := Global(s, s, sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 8 || al.Length() != 8 {
		t.Errorf("self global: score %d length %d", al.Score, al.Length())
	}
	if err := al.Validate(s, s, sc); err != nil {
		t.Error(err)
	}
}

func TestGlobalAgainstEmpty(t *testing.T) {
	s := bio.MustSequence("ACGT")
	al, err := Global(s, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 4*sc.Gap {
		t.Errorf("global vs empty score %d, want %d", al.Score, 4*sc.Gap)
	}
	if al.Length() != 4 {
		t.Errorf("length %d", al.Length())
	}
}

func TestGlobalScoreMatchesMatrix(t *testing.T) {
	f := func(rawS, rawT []byte) bool {
		s, tt := seqPair(rawS, rawT)
		al, err := Global(s, tt, sc)
		if err != nil {
			return false
		}
		lin, err := GlobalScore(s, tt, sc)
		if err != nil {
			return false
		}
		if lin != al.Score {
			return false
		}
		if s.Len() > 0 && tt.Len() > 0 {
			if err := al.Validate(s, tt, sc); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalLinearMatchesGlobal(t *testing.T) {
	f := func(rawS, rawT []byte) bool {
		s, tt := seqPair(rawS, rawT)
		want, err := GlobalScore(s, tt, sc)
		if err != nil {
			return false
		}
		al, err := GlobalLinear(s, tt, sc)
		if err != nil {
			return false
		}
		if al.Score != want {
			return false
		}
		if s.Len() > 0 || tt.Len() > 0 {
			return al.Validate(s, tt, sc) == nil
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalLinearLargerInput(t *testing.T) {
	g := bio.NewGenerator(67)
	s := g.Random(700)
	tt := g.MutatedCopy(s, bio.DefaultMutationModel())
	want, err := GlobalScore(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	al, err := GlobalLinear(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != want {
		t.Errorf("hirschberg score %d, want %d", al.Score, want)
	}
	if err := al.Validate(s, tt, sc); err != nil {
		t.Error(err)
	}
}

func TestGlobalBadScoring(t *testing.T) {
	if _, err := Global(bio.MustSequence("A"), bio.MustSequence("A"), bio.Scoring{}); err == nil {
		t.Error("invalid scoring accepted by Global")
	}
	if _, err := GlobalScore(bio.MustSequence("A"), bio.MustSequence("A"), bio.Scoring{}); err == nil {
		t.Error("invalid scoring accepted by GlobalScore")
	}
	if _, err := GlobalLinear(bio.MustSequence("A"), bio.MustSequence("A"), bio.Scoring{}); err == nil {
		t.Error("invalid scoring accepted by GlobalLinear")
	}
}

func TestNWMatrixBorders(t *testing.T) {
	s := bio.MustSequence("ACG")
	tt := bio.MustSequence("AC")
	m, err := NewNWMatrix(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 3; i++ {
		if got := m.Score(i, 0); got != i*sc.Gap {
			t.Errorf("border A[%d][0] = %d, want %d", i, got, i*sc.Gap)
		}
	}
	for j := 0; j <= 2; j++ {
		if got := m.Score(0, j); got != j*sc.Gap {
			t.Errorf("border A[0][%d] = %d, want %d", j, got, j*sc.Gap)
		}
	}
}
