package align

import (
	"fmt"

	"genomedsm/internal/bio"
)

// AffineScoring is an affine gap-penalty scheme: a gap of length L costs
// GapOpen + L·GapExtend. The paper (and its evaluation) uses the linear
// scheme of bio.Scoring; affine gaps are the extension every production
// aligner ships, provided here via Gotoh's algorithm.
type AffineScoring struct {
	Match     int // > 0
	Mismatch  int // < 0
	GapOpen   int // <= 0, charged once per gap run
	GapExtend int // < 0, charged per gap column
}

// Validate rejects degenerate schemes.
func (a AffineScoring) Validate() error {
	if a.Match <= 0 || a.Mismatch >= 0 || a.GapExtend >= 0 || a.GapOpen > 0 {
		return fmt.Errorf("align: invalid affine scoring %+v", a)
	}
	return nil
}

// Linear returns the equivalent linear scheme when GapOpen is zero.
func (a AffineScoring) Linear() bio.Scoring {
	return bio.Scoring{Match: a.Match, Mismatch: a.Mismatch, Gap: a.GapExtend}
}

func (a AffineScoring) pair(x, y byte) int32 {
	return int32(bio.Substitution(x, y, a.Match, a.Mismatch))
}

// gotoh matrix layers.
const (
	layerH = iota // match/mismatch state
	layerE        // gap in s open (west runs)
	layerF        // gap in t open (north runs)
)

// BestLocalAffine computes one optimal local alignment under affine gap
// penalties with Gotoh's three-state dynamic programming.
func BestLocalAffine(s, t bio.Sequence, sc AffineScoring) (*Alignment, error) {
	var a AffineAligner
	return a.BestLocalAffine(s, t, sc)
}

// AffineAligner carries the three Gotoh layer matrices between calls so
// repeated affine alignments (batch realignment, tests) reuse one
// allocation instead of three O(m·n) ones per call. The zero value is
// ready to use; an AffineAligner must not be shared between goroutines.
type AffineAligner struct {
	h, e, f []int32
}

// BestLocalAffine is the buffer-reusing form of the package function of
// the same name; see its documentation.
func (a *AffineAligner) BestLocalAffine(s, t bio.Sequence, sc AffineScoring) (*Alignment, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	m, n := s.Len(), t.Len()
	if int64(m+1)*int64(n+1) > maxFullCells {
		return nil, fmt.Errorf("align: affine matrix %dx%d exceeds the %d-cell limit", m+1, n+1, maxFullCells)
	}
	const negInf = int32(-1 << 29)
	cols := n + 1
	size := (m + 1) * cols
	if cap(a.h) < size {
		a.h = make([]int32, size)
		a.e = make([]int32, size)
		a.f = make([]int32, size)
	}
	h, e, f := a.h[:size], a.e[:size], a.f[:size]
	// Only the borders are read before being written: the recurrence
	// consumes row 0 and column 0 of h as the zero clamp, and row 0 of
	// e/f as -inf; interior cells are written before any read. Reused
	// buffers therefore need the borders reset, nothing else.
	clear(h[:cols])
	for j := 0; j <= n; j++ {
		e[j], f[j] = negInf, negInf
	}
	open := int32(sc.GapOpen)
	ext := int32(sc.GapExtend)
	prof := bio.NewSubstProfile(t, sc.Match, sc.Mismatch)
	bestI, bestJ, bestV := 0, 0, int32(0)
	for i := 1; i <= m; i++ {
		row := i * cols
		prev := row - cols
		h[row] = 0
		e[row], f[row] = negInf, negInf
		sub := prof.Row(s[i-1])
		for j := 1; j <= n; j++ {
			ev := bio.Max32(e[row+j-1]+ext, h[row+j-1]+open+ext)
			e[row+j] = ev
			fv := bio.Max32(f[prev+j]+ext, h[prev+j]+open+ext)
			f[row+j] = fv
			hv := h[prev+j-1] + sub[j-1]
			hv = bio.Max32(hv, ev)
			hv = bio.Max32(hv, fv)
			hv = bio.Clamp0(hv)
			h[row+j] = hv
			if hv > bestV {
				bestV, bestI, bestJ = hv, i, j
			}
		}
	}
	if bestV == 0 {
		return &Alignment{}, nil
	}
	// Traceback by re-deriving which transition produced each value.
	var rev []Op
	i, j := bestI, bestJ
	layer := layerH
	for i > 0 && j > 0 {
		row, prev := i*cols, (i-1)*cols
		switch layer {
		case layerH:
			v := h[row+j]
			if v == 0 {
				goto done // start cell reached
			}
			switch {
			case v == e[row+j]:
				layer = layerE
			case v == f[row+j]:
				layer = layerF
			default:
				if bio.Matches(s[i-1], t[j-1]) {
					rev = append(rev, OpMatch)
				} else {
					rev = append(rev, OpMismatch)
				}
				i--
				j--
			}
		case layerE:
			rev = append(rev, OpGapS)
			if e[row+j] == h[row+j-1]+open+ext {
				layer = layerH
			}
			j--
		case layerF:
			rev = append(rev, OpGapT)
			if f[row+j] == h[prev+j]+open+ext {
				layer = layerH
			}
			i--
		}
	}
done:
	ops := make([]Op, len(rev))
	for k, op := range rev {
		ops[len(rev)-1-k] = op
	}
	return &Alignment{
		SBegin: i + 1, SEnd: bestI,
		TBegin: j + 1, TEnd: bestJ,
		Score: int(bestV),
		Ops:   ops,
	}, nil
}

// ValidateAffine checks an alignment's consistency under affine scoring
// (the linear Validate cannot price gap runs correctly).
func (a *Alignment) ValidateAffine(s, t bio.Sequence, sc AffineScoring) error {
	if a.SBegin < 1 || a.SEnd > s.Len() || a.TBegin < 1 || a.TEnd > t.Len() {
		if len(a.Ops) == 0 && a.Score == 0 {
			return nil // empty alignment
		}
		return fmt.Errorf("align: coordinates out of range")
	}
	si, tj, score := a.SBegin, a.TBegin, 0
	var lastOp Op
	for _, op := range a.Ops {
		switch op {
		case OpMatch, OpMismatch:
			score += int(sc.pair(s[si-1], t[tj-1]))
			si++
			tj++
		case OpGapS:
			if lastOp != OpGapS {
				score += sc.GapOpen
			}
			score += sc.GapExtend
			tj++
		case OpGapT:
			if lastOp != OpGapT {
				score += sc.GapOpen
			}
			score += sc.GapExtend
			si++
		default:
			return fmt.Errorf("align: unknown op %q", op)
		}
		lastOp = op
	}
	if si != a.SEnd+1 || tj != a.TEnd+1 {
		return fmt.Errorf("align: ops cover s[..%d] t[..%d], claim s[..%d] t[..%d]", si-1, tj-1, a.SEnd, a.TEnd)
	}
	if score != a.Score {
		return fmt.Errorf("align: affine recomputed score %d != claimed %d", score, a.Score)
	}
	return nil
}
