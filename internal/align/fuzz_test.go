package align

import (
	"testing"

	"genomedsm/internal/bio"
)

// fuzzSeq maps arbitrary bytes to DNA.
func fuzzSeq(raw []byte, limit int) bio.Sequence {
	if len(raw) > limit {
		raw = raw[:limit]
	}
	s := make(bio.Sequence, len(raw))
	for i, b := range raw {
		s[i] = "ACGT"[int(b)%4]
	}
	return s
}

// FuzzLocalAlignmentConsistency cross-checks the three local-alignment
// implementations (full matrix, linear scan, Section 6 retrieval) on
// arbitrary inputs.
func FuzzLocalAlignmentConsistency(f *testing.F) {
	f.Add([]byte("acgtacgt"), []byte("tgcacgta"))
	f.Add([]byte{}, []byte{1, 2, 3})
	f.Add([]byte("aaaaaaaa"), []byte("aaaa"))
	f.Fuzz(func(t *testing.T, rawS, rawT []byte) {
		s := fuzzSeq(rawS, 96)
		tt := fuzzSeq(rawT, 96)
		r, err := Scan(s, tt, sc, ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewSWMatrix(s, tt, sc)
		if err != nil {
			t.Fatal(err)
		}
		_, _, want := m.MaxCell()
		if r.BestScore != want {
			t.Fatalf("scan best %d, matrix best %d", r.BestScore, want)
		}
		if r.BestScore == 0 {
			return
		}
		al, _, err := ReverseRetrieve(s, tt, sc, r.BestI, r.BestJ, r.BestScore)
		if err != nil {
			t.Fatalf("retrieve: %v", err)
		}
		if al.Score < r.BestScore {
			t.Fatalf("retrieved score %d < detected %d", al.Score, r.BestScore)
		}
		if err := al.Validate(s, tt, sc); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzGlobalConsistency cross-checks Needleman–Wunsch against Hirschberg.
func FuzzGlobalConsistency(f *testing.F) {
	f.Add([]byte("acgt"), []byte("gtac"))
	f.Add([]byte{0}, []byte{})
	f.Fuzz(func(t *testing.T, rawS, rawT []byte) {
		s := fuzzSeq(rawS, 64)
		tt := fuzzSeq(rawT, 64)
		want, err := GlobalScore(s, tt, sc)
		if err != nil {
			t.Fatal(err)
		}
		al, err := GlobalLinear(s, tt, sc)
		if err != nil {
			t.Fatal(err)
		}
		if al.Score != want {
			t.Fatalf("hirschberg %d, nw %d", al.Score, want)
		}
	})
}
