package align

import (
	"testing"

	"genomedsm/internal/bio"
)

// The reusable aligner structs (Retriever, AffineAligner) exist to cut
// steady-state allocation: the one-shot package functions allocate the
// full working set per call (sparse rows per active cell, three O(m·n)
// Gotoh layers), while a warm struct should allocate only the query
// profile and the returned alignment. These tests pin that property with
// generous ceilings — a regression back to per-cell or per-row
// allocation blows through them by orders of magnitude.

// allocPair builds a pair with a strong planted alignment so the
// retrieval has real work to do.
func allocPair() (s, t bio.Sequence, sc bio.Scoring) {
	g := bio.NewGenerator(7)
	s = g.Random(400)
	motif := s[120:220]
	t = append(append(append(bio.Sequence(nil), g.Random(60)...), motif...), g.Random(60)...)
	return s, t, bio.DefaultScoring()
}

func TestRetrieverSteadyStateAllocs(t *testing.T) {
	s, tt, sc := allocPair()
	res, err := Scan(s, tt, sc, ScanOptions{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore < 10 {
		t.Fatalf("planted pair too weak: best=%d", res.BestScore)
	}
	var rt Retriever
	run := func() {
		al, _, err := rt.ReverseRetrieve(s, tt, sc, res.BestI, res.BestJ, res.BestScore)
		if err != nil {
			t.Fatal(err)
		}
		if al.Score != res.BestScore {
			t.Fatalf("retrieved score %d, want %d", al.Score, res.BestScore)
		}
	}
	run() // warm the arenas
	allocs := testing.AllocsPerRun(20, run)
	const ceiling = 32 // profile + result + op appends; was ~14.5k one-shot
	if allocs > ceiling {
		t.Errorf("Retriever.ReverseRetrieve: %.0f allocs/op, ceiling %d", allocs, ceiling)
	}
}

func TestAffineAlignerSteadyStateAllocs(t *testing.T) {
	s, tt, _ := allocPair()
	sc := AffineScoring{Match: 1, Mismatch: -3, GapOpen: -5, GapExtend: -2}
	var a AffineAligner
	run := func() {
		al, err := a.BestLocalAffine(s, tt, sc)
		if err != nil {
			t.Fatal(err)
		}
		if al.Score < 10 {
			t.Fatalf("planted pair too weak: score=%d", al.Score)
		}
	}
	run() // warm the layer matrices
	allocs := testing.AllocsPerRun(20, run)
	const ceiling = 32 // profile + result + op appends; layers are reused
	if allocs > ceiling {
		t.Errorf("AffineAligner.BestLocalAffine: %.0f allocs/op, ceiling %d", allocs, ceiling)
	}
}
