package align

import (
	"testing"

	"genomedsm/internal/bio"
)

// This file holds the reference implementations the profile-based kernels
// are tested against: straightforward per-cell dynamic programming that
// calls Scoring.Pair for every cell, the way the kernels were written
// before the query profile. The differential tests require bit-identical
// results on random, homologous, 'N'-containing and empty inputs.

// refScan is the per-cell reference for Scan.
func refScan(s, t bio.Sequence, sc bio.Scoring, opt ScanOptions) *ScanResult {
	m, n := s.Len(), t.Len()
	res := &ScanResult{}
	if m == 0 || n == 0 {
		return res
	}
	h := make([][]int, m+1)
	for i := range h {
		h[i] = make([]int, n+1)
	}
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			v := h[i-1][j-1] + sc.Pair(s[i-1], t[j-1])
			if w := h[i][j-1] + sc.Gap; w > v {
				v = w
			}
			if w := h[i-1][j] + sc.Gap; w > v {
				v = w
			}
			if v < 0 {
				v = 0
			}
			h[i][j] = v
			if v > res.BestScore {
				res.BestScore, res.BestI, res.BestJ = v, i, j
			}
			if opt.HitThreshold > 0 && v >= opt.HitThreshold {
				res.Hits++
			}
			res.Cells++
		}
	}
	if opt.EndpointMinScore > 0 {
		at := func(i, j int) int {
			if i > m || j > n {
				return 0
			}
			return h[i][j]
		}
		for i := 1; i <= m; i++ {
			for j := 1; j <= n; j++ {
				v := h[i][j]
				if v < opt.EndpointMinScore {
					continue
				}
				if v > at(i, j+1) && v > at(i+1, j) && v > at(i+1, j+1) {
					res.Endpoints = append(res.Endpoints, Endpoint{I: i, J: j, Score: v})
				}
			}
		}
	}
	return res
}

// refAffineBest is the per-cell reference for BestLocalAffine's score:
// Gotoh's three-layer recurrence with Pair called per cell.
func refAffineBest(s, t bio.Sequence, a AffineScoring) int {
	m, n := s.Len(), t.Len()
	neg := -1 << 30
	H := make([][]int, m+1)
	E := make([][]int, m+1)
	F := make([][]int, m+1)
	for i := range H {
		H[i], E[i], F[i] = make([]int, n+1), make([]int, n+1), make([]int, n+1)
		for j := range E[i] {
			E[i][j], F[i][j] = neg, neg
		}
	}
	best := 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			e := E[i][j-1] + a.GapExtend
			if w := H[i][j-1] + a.GapOpen + a.GapExtend; w > e {
				e = w
			}
			f := F[i-1][j] + a.GapExtend
			if w := H[i-1][j] + a.GapOpen + a.GapExtend; w > f {
				f = w
			}
			v := H[i-1][j-1] + int(a.pair(s[i-1], t[j-1]))
			if e > v {
				v = e
			}
			if f > v {
				v = f
			}
			if v < 0 {
				v = 0
			}
			E[i][j], F[i][j], H[i][j] = e, f, v
			if v > best {
				best = v
			}
		}
	}
	return best
}

// diffInputs is the shared set of input classes every differential test
// runs over.
func diffInputs(t *testing.T) []struct {
	name string
	s, t bio.Sequence
} {
	t.Helper()
	g := bio.NewGenerator(31)
	s := g.Random(90)
	hom := g.MutatedCopy(s, bio.DefaultMutationModel())
	return []struct {
		name string
		s, t bio.Sequence
	}{
		{"random", g.Random(70), g.Random(85)},
		{"homologous", s, hom},
		{"identical", s, s},
		{"with-N", bio.Sequence("ACGTNNACGTACGNTACGTNNNACGT"), bio.Sequence("ACNTACGTNACGTNNACGTACGTACG")},
		{"all-N", bio.Sequence("NNNNNN"), bio.Sequence("NNNN")},
		{"empty-s", bio.Sequence(""), g.Random(20)},
		{"empty-t", g.Random(20), bio.Sequence("")},
		{"both-empty", bio.Sequence(""), bio.Sequence("")},
	}
}

func TestScanMatchesReference(t *testing.T) {
	opts := []ScanOptions{
		{},
		{HitThreshold: 5},
		{EndpointMinScore: 8},
		{HitThreshold: 3, EndpointMinScore: 6},
	}
	for _, in := range diffInputs(t) {
		for _, opt := range opts {
			got, err := Scan(in.s, in.t, sc, opt)
			if err != nil {
				t.Fatalf("%s %+v: %v", in.name, opt, err)
			}
			want := refScan(in.s, in.t, sc, opt)
			if got.BestScore != want.BestScore || got.BestI != want.BestI || got.BestJ != want.BestJ {
				t.Errorf("%s %+v: best (%d,%d)=%d, reference (%d,%d)=%d", in.name, opt,
					got.BestI, got.BestJ, got.BestScore, want.BestI, want.BestJ, want.BestScore)
			}
			if got.Hits != want.Hits || got.Cells != want.Cells {
				t.Errorf("%s %+v: hits/cells %d/%d, reference %d/%d", in.name, opt,
					got.Hits, got.Cells, want.Hits, want.Cells)
			}
			if len(got.Endpoints) != len(want.Endpoints) {
				t.Errorf("%s %+v: %d endpoints, reference %d", in.name, opt,
					len(got.Endpoints), len(want.Endpoints))
				continue
			}
			for i := range got.Endpoints {
				if got.Endpoints[i] != want.Endpoints[i] {
					t.Errorf("%s %+v: endpoint %d: %+v != %+v", in.name, opt,
						i, got.Endpoints[i], want.Endpoints[i])
				}
			}
		}
	}
}

func TestColumnScanMatchesReference(t *testing.T) {
	for _, in := range diffInputs(t) {
		m := in.s.Len()
		// Reference columns from the full reference matrix.
		h := make([][]int, m+1)
		for i := range h {
			h[i] = make([]int, in.t.Len()+1)
		}
		for i := 1; i <= m; i++ {
			for j := 1; j <= in.t.Len(); j++ {
				v := h[i-1][j-1] + sc.Pair(in.s[i-1], in.t[j-1])
				if w := h[i][j-1] + sc.Gap; w > v {
					v = w
				}
				if w := h[i-1][j] + sc.Gap; w > v {
					v = w
				}
				if v < 0 {
					v = 0
				}
				h[i][j] = v
			}
		}
		err := ColumnScan(in.s, in.t, sc, func(j int, col []int32) {
			if len(col) != m+1 {
				t.Fatalf("%s: column %d has %d entries, want %d", in.name, j, len(col), m+1)
			}
			for i := 0; i <= m; i++ {
				if int(col[i]) != h[i][j] {
					t.Errorf("%s: A[%d][%d] = %d, reference %d", in.name, i, j, col[i], h[i][j])
				}
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", in.name, err)
		}
	}
}

func TestAffineMatchesReference(t *testing.T) {
	a := AffineScoring{Match: 1, Mismatch: -1, GapOpen: -3, GapExtend: -1}
	for _, in := range diffInputs(t) {
		al, err := BestLocalAffine(in.s, in.t, a)
		if err != nil {
			t.Fatalf("%s: %v", in.name, err)
		}
		if want := refAffineBest(in.s, in.t, a); al.Score != want {
			t.Errorf("%s: affine best %d, reference %d", in.name, al.Score, want)
		}
	}
}

func TestFullMatrixMatchesReference(t *testing.T) {
	for _, in := range diffInputs(t) {
		mtx, err := NewSWMatrix(in.s, in.t, sc)
		if err != nil {
			t.Fatalf("%s: %v", in.name, err)
		}
		_, _, got := mtx.MaxCell()
		if want := refScan(in.s, in.t, sc, ScanOptions{}).BestScore; got != want {
			t.Errorf("%s: matrix best %d, reference %d", in.name, got, want)
		}
	}
}

// FuzzScanDifferential holds the profile-based Scan bit-identical to the
// per-cell reference on arbitrary inputs over the 'N'-extended alphabet.
func FuzzScanDifferential(f *testing.F) {
	f.Add([]byte("acgtacgt"), []byte("tgcacgta"), 0, 0)
	f.Add([]byte{4, 4, 4}, []byte{0, 4, 1}, 3, 5)
	f.Add([]byte{}, []byte{1, 2}, 1, 1)
	f.Fuzz(func(t *testing.T, rawS, rawT []byte, thr, eps int) {
		mk := func(raw []byte) bio.Sequence {
			if len(raw) > 96 {
				raw = raw[:96]
			}
			s := make(bio.Sequence, len(raw))
			for i, b := range raw {
				s[i] = "ACGTN"[int(b)%5]
			}
			return s
		}
		s, tt := mk(rawS), mk(rawT)
		opt := ScanOptions{HitThreshold: thr % 32, EndpointMinScore: eps % 32}
		got, err := Scan(s, tt, sc, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := refScan(s, tt, sc, opt)
		if got.BestScore != want.BestScore || got.BestI != want.BestI || got.BestJ != want.BestJ ||
			got.Hits != want.Hits || len(got.Endpoints) != len(want.Endpoints) {
			t.Fatalf("scan %+v, reference %+v", got, want)
		}
		for i := range got.Endpoints {
			if got.Endpoints[i] != want.Endpoints[i] {
				t.Fatalf("endpoint %d: %+v != %+v", i, got.Endpoints[i], want.Endpoints[i])
			}
		}
	})
}
