package align

import (
	"strings"
	"testing"
	"testing/quick"

	"genomedsm/internal/bio"
)

var sc = bio.DefaultScoring()

// seqPair builds a pair of small DNA sequences from fuzzer bytes.
func seqPair(rawS, rawT []byte) (bio.Sequence, bio.Sequence) {
	conv := func(raw []byte) bio.Sequence {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		s := make(bio.Sequence, len(raw))
		for i, b := range raw {
			s[i] = "ACGT"[int(b)%4]
		}
		return s
	}
	return conv(rawS), conv(rawT)
}

func TestPaperFig1GlobalAlignment(t *testing.T) {
	// Fig. 1: s = GACGGATTAG, t = GATCGGAATAG align globally with score 6
	// (9 matches, 1 mismatch, 1 space under +1/−1/−2).
	s := bio.MustSequence("GACGGATTAG")
	tt := bio.MustSequence("GATCGGAATAG")
	al, err := Global(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 6 {
		t.Errorf("global score = %d, want 6", al.Score)
	}
	if err := al.Validate(s, tt, sc); err != nil {
		t.Error(err)
	}
	m, mm, g := al.Counts()
	if m != 9 || mm != 1 || g != 1 {
		t.Errorf("counts = %d matches %d mismatches %d gaps, want 9/1/1", m, mm, g)
	}
}

func TestSWIdenticalSequences(t *testing.T) {
	s := bio.MustSequence("ACGTACGTGG")
	al, err := BestLocal(s, s, sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != s.Len() {
		t.Errorf("self-alignment score %d, want %d", al.Score, s.Len())
	}
	if al.SBegin != 1 || al.SEnd != s.Len() || al.TBegin != 1 || al.TEnd != s.Len() {
		t.Errorf("self-alignment coordinates %+v", al)
	}
	if err := al.Validate(s, s, sc); err != nil {
		t.Error(err)
	}
}

func TestSWDisjointAlphabetGivesZero(t *testing.T) {
	s := bio.MustSequence("AAAA")
	tt := bio.MustSequence("CCCC")
	m, err := NewSWMatrix(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, score := m.MaxCell(); score != 0 {
		t.Errorf("max score %d, want 0", score)
	}
}

func TestSWEmptyInput(t *testing.T) {
	s := bio.MustSequence("ACGT")
	m, err := NewSWMatrix(s, nil, sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, score := m.MaxCell(); score != 0 {
		t.Errorf("score vs empty = %d", score)
	}
	al := m.Traceback(0, 0)
	if al.Length() != 0 {
		t.Errorf("traceback of empty matrix has %d ops", al.Length())
	}
}

func TestSWRejectsBadScoring(t *testing.T) {
	if _, err := NewSWMatrix(bio.MustSequence("A"), bio.MustSequence("A"), bio.Scoring{}); err == nil {
		t.Error("zero scoring accepted")
	}
}

func TestMatrixSizeLimit(t *testing.T) {
	big := make(bio.Sequence, 10000)
	for i := range big {
		big[i] = 'A'
	}
	// 10001 * 10001 > 64M? No: 1.0e8 > 6.7e7, so this should trip the limit.
	if _, err := NewSWMatrix(big, big, sc); err == nil {
		t.Error("oversized matrix accepted")
	}
}

func TestBestLocalEmbeddedMotif(t *testing.T) {
	g := bio.NewGenerator(17)
	motif := g.Random(40)
	s := append(append(g.Random(100).Clone(), motif...), g.Random(80)...)
	tt := append(append(g.Random(60).Clone(), motif...), g.Random(120)...)
	al, err := BestLocal(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score < 35 { // motif is 40 exact matches; allow flanking noise
		t.Errorf("embedded motif score %d, want >= 35", al.Score)
	}
	if err := al.Validate(s, tt, sc); err != nil {
		t.Error(err)
	}
	// The found region must overlap the planted motif in s.
	if al.SEnd < 101 || al.SBegin > 140 {
		t.Errorf("alignment s[%d..%d] misses planted motif at s[101..140]", al.SBegin, al.SEnd)
	}
}

func TestSimIsSymmetric(t *testing.T) {
	f := func(rawS, rawT []byte) bool {
		s, tt := seqPair(rawS, rawT)
		m1, err1 := NewSWMatrix(s, tt, sc)
		m2, err2 := NewSWMatrix(tt, s, sc)
		if err1 != nil || err2 != nil {
			return false
		}
		_, _, a := m1.MaxCell()
		_, _, b := m2.MaxCell()
		return a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestLocalScoreMatchesMatrixMax(t *testing.T) {
	f := func(rawS, rawT []byte) bool {
		s, tt := seqPair(rawS, rawT)
		m, err := NewSWMatrix(s, tt, sc)
		if err != nil {
			return false
		}
		i, j, best := m.MaxCell()
		al := m.Traceback(i, j)
		if al.Score != best {
			return false
		}
		return al.Validate(s, tt, sc) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalsAbove(t *testing.T) {
	g := bio.NewGenerator(23)
	motif1 := g.Random(30)
	motif2 := g.Random(25)
	s := concat(g.Random(50), motif1, g.Random(50), motif2, g.Random(50))
	tt := concat(g.Random(40), motif2, g.Random(70), motif1, g.Random(40))
	als, err := LocalsAbove(s, tt, sc, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(als) < 2 {
		t.Fatalf("found %d alignments, want >= 2 (two planted motifs)", len(als))
	}
	for i, a := range als {
		if a.Score < 20 {
			t.Errorf("alignment %d below threshold: %d", i, a.Score)
		}
		if err := a.Validate(s, tt, sc); err != nil {
			t.Errorf("alignment %d invalid: %v", i, err)
		}
		if i > 0 && a.Score > als[i-1].Score {
			t.Errorf("alignments not sorted by score at %d", i)
		}
		for j := 0; j < i; j++ {
			b := als[j]
			if a.SBegin <= b.SEnd && b.SBegin <= a.SEnd && a.TBegin <= b.TEnd && b.TBegin <= a.TEnd {
				t.Errorf("alignments %d and %d overlap", i, j)
			}
		}
	}
	if _, err := LocalsAbove(s, tt, sc, 0); err == nil {
		t.Error("minScore 0 accepted")
	}
}

func TestRenderFormat(t *testing.T) {
	s := bio.MustSequence("GACGGATTAG")
	tt := bio.MustSequence("GATCGGAATAG")
	al, err := Global(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	out := al.Render(s, tt)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("render has %d lines, want 3", len(lines))
	}
	if len(lines[0]) != al.Length() || len(lines[1]) != al.Length() || len(lines[2]) != al.Length() {
		t.Errorf("render line lengths %d/%d/%d, want %d", len(lines[0]), len(lines[1]), len(lines[2]), al.Length())
	}
	matches, _, _ := al.Counts()
	if got := strings.Count(lines[1], "|"); got != matches {
		t.Errorf("marker row has %d pipes, want %d", got, matches)
	}
	if !strings.Contains(lines[0], "_") && !strings.Contains(lines[2], "_") {
		t.Error("gap column not rendered as underscore")
	}
}

func TestRenderReport(t *testing.T) {
	s := bio.MustSequence("ACGTACGTAC")
	al, err := Global(s, s, sc)
	if err != nil {
		t.Fatal(err)
	}
	rep := al.RenderReport(s, s, 4)
	for _, want := range []string{"initial_x: 1", "final_x: 10", "similarity: 10", "align_s: ACGT", "align_t: ACGT"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := bio.MustSequence("ACGT")
	al, err := Global(s, s, sc)
	if err != nil {
		t.Fatal(err)
	}
	bad := *al
	bad.Score++
	if err := bad.Validate(s, s, sc); err == nil {
		t.Error("wrong score passed validation")
	}
	bad = *al
	bad.SEnd = 99
	if err := bad.Validate(s, s, sc); err == nil {
		t.Error("out-of-range coordinate passed validation")
	}
	bad = *al
	bad.Ops = append([]Op{}, al.Ops...)
	bad.Ops[0] = OpGapS
	if err := bad.Validate(s, s, sc); err == nil {
		t.Error("inconsistent ops passed validation")
	}
}

func TestIdentityAndCounts(t *testing.T) {
	al := &Alignment{Ops: []Op{OpMatch, OpMatch, OpMismatch, OpGapS}}
	m, mm, g := al.Counts()
	if m != 2 || mm != 1 || g != 1 {
		t.Errorf("counts %d/%d/%d", m, mm, g)
	}
	if al.Identity() != 0.5 {
		t.Errorf("identity %v", al.Identity())
	}
	if (&Alignment{}).Identity() != 0 {
		t.Error("empty identity not 0")
	}
}

func concat(parts ...bio.Sequence) bio.Sequence {
	var out bio.Sequence
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
