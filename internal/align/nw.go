package align

import (
	"genomedsm/internal/bio"
)

// Global computes the optimal global alignment of s and t with the
// Needleman–Wunsch algorithm (§2.3): the recurrence of Eq. (1) without the
// zero option, first row and column filled with accumulated gap penalties.
// Phase 2 of the paper runs this on every similar region found in phase 1.
func Global(s, t bio.Sequence, sc bio.Scoring) (*Alignment, error) {
	m, err := NewNWMatrix(s, t, sc)
	if err != nil {
		return nil, err
	}
	rows, cols := m.Dims()
	al := m.Traceback(rows-1, cols-1)
	// Traceback reports Score(end) − Score(start); for global alignment
	// start is the zero corner, so al.Score is already the global score.
	return al, nil
}

// GlobalScore returns only the global-alignment score, in linear space.
func GlobalScore(s, t bio.Sequence, sc bio.Scoring) (int, error) {
	if err := sc.Validate(); err != nil {
		return 0, err
	}
	row, err := nwLastRow(s, t, sc)
	if err != nil {
		return 0, err
	}
	return int(row[t.Len()]), nil
}

// nwLastRow computes the last row of the NW matrix for s vs t using two
// linear arrays. It is the building block of Hirschberg's divide and
// conquer. Like the local kernels it reads precomputed profile rows:
// the global recurrence is the local one without the zero clamp.
func nwLastRow(s, t bio.Sequence, sc bio.Scoring) ([]int32, error) {
	m, n := s.Len(), t.Len()
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	for j := 1; j <= n; j++ {
		prev[j] = int32(j * sc.Gap)
	}
	prof := bio.NewProfile(t, sc)
	gap := int32(sc.Gap)
	for i := 1; i <= m; i++ {
		cur[0] = int32(i) * gap
		sub := prof.Row(s[i-1])
		d := prev[0]
		w := cur[0]
		for j := 1; j <= n; j++ {
			v := d + sub[j-1]
			v = bio.Max32(v, w+gap)
			d = prev[j]
			v = bio.Max32(v, d+gap)
			cur[j] = v
			w = v
		}
		prev, cur = cur, prev
	}
	return prev, nil
}

// GlobalLinear computes an optimal global alignment in linear space with
// Hirschberg's divide-and-conquer [9]. The paper's Section 6 notes that
// once an alignment's position is known, Hirschberg's method rebuilds it
// in linear space at the cost of roughly doubling the work; GlobalLinear
// is that method.
func GlobalLinear(s, t bio.Sequence, sc bio.Scoring) (*Alignment, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	ops := make([]Op, 0, s.Len()+t.Len())
	var rec func(s, t bio.Sequence) error
	rec = func(s, t bio.Sequence) error {
		m, n := s.Len(), t.Len()
		switch {
		case m == 0:
			for j := 0; j < n; j++ {
				ops = append(ops, OpGapS)
			}
			return nil
		case n == 0:
			for i := 0; i < m; i++ {
				ops = append(ops, OpGapT)
			}
			return nil
		case m == 1 || n == 1:
			// Small enough for the full matrix.
			al, err := Global(s, t, sc)
			if err != nil {
				return err
			}
			ops = append(ops, al.Ops...)
			return nil
		}
		mid := m / 2
		top, err := nwLastRow(s[:mid], t, sc)
		if err != nil {
			return err
		}
		bot, err := nwLastRow(bio.Sequence(s[mid:]).Reverse(), t.Reverse(), sc)
		if err != nil {
			return err
		}
		// Choose the split column maximizing top[j] + bot[n-j].
		bestJ, bestV := 0, int32(-1<<30)
		for j := 0; j <= n; j++ {
			if v := top[j] + bot[n-j]; v > bestV {
				bestV, bestJ = v, j
			}
		}
		if err := rec(s[:mid], t[:bestJ]); err != nil {
			return err
		}
		return rec(s[mid:], t[bestJ:])
	}
	if err := rec(s, t); err != nil {
		return nil, err
	}
	al := &Alignment{
		SBegin: 1, SEnd: s.Len(),
		TBegin: 1, TEnd: t.Len(),
		Ops: ops,
	}
	al.Score = scoreOps(s, t, sc, al)
	return al, nil
}

// scoreOps recomputes the column score of an alignment's ops over the
// subsequences it spans.
func scoreOps(s, t bio.Sequence, sc bio.Scoring, a *Alignment) int {
	si, tj, score := a.SBegin, a.TBegin, 0
	for _, op := range a.Ops {
		switch op {
		case OpMatch, OpMismatch:
			score += sc.Pair(s[si-1], t[tj-1])
			si++
			tj++
		case OpGapS:
			score += sc.Gap
			tj++
		case OpGapT:
			score += sc.Gap
			si++
		}
	}
	return score
}
