package align

import (
	"testing"
	"testing/quick"

	"genomedsm/internal/bio"
)

func TestScanMatchesFullMatrix(t *testing.T) {
	f := func(rawS, rawT []byte) bool {
		s, tt := seqPair(rawS, rawT)
		m, err := NewSWMatrix(s, tt, sc)
		if err != nil {
			return false
		}
		_, _, want := m.MaxCell()
		r, err := Scan(s, tt, sc, ScanOptions{})
		if err != nil {
			return false
		}
		return r.BestScore == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScanEmpty(t *testing.T) {
	r, err := Scan(nil, bio.MustSequence("ACGT"), sc, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.BestScore != 0 || r.Cells != 0 {
		t.Errorf("scan of empty s: %+v", r)
	}
}

func TestScanBadScoring(t *testing.T) {
	if _, err := Scan(bio.MustSequence("A"), bio.MustSequence("A"), bio.Scoring{}, ScanOptions{}); err == nil {
		t.Error("invalid scoring accepted")
	}
}

func TestScanHitCountMatchesMatrix(t *testing.T) {
	g := bio.NewGenerator(31)
	s := g.Random(120)
	tt := g.MutatedCopy(s, bio.DefaultMutationModel())
	const threshold = 5
	r, err := Scan(s, tt, sc, ScanOptions{HitThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSWMatrix(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	rows, cols := m.Dims()
	for i := 1; i < rows; i++ {
		for j := 1; j < cols; j++ {
			if m.Score(i, j) >= threshold {
				want++
			}
		}
	}
	if r.Hits != want {
		t.Errorf("hit count %d, want %d", r.Hits, want)
	}
	if r.Cells != int64(s.Len())*int64(tt.Len()) {
		t.Errorf("cells %d, want %d", r.Cells, s.Len()*tt.Len())
	}
}

func TestScanEndpointsCoverBestCell(t *testing.T) {
	g := bio.NewGenerator(37)
	motif := g.Random(30)
	s := concat(g.Random(50), motif, g.Random(50))
	tt := concat(g.Random(70), motif, g.Random(30))
	r, err := Scan(s, tt, sc, ScanOptions{EndpointMinScore: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Endpoints) == 0 {
		t.Fatal("no endpoints found despite planted motif")
	}
	found := false
	for _, ep := range r.Endpoints {
		if ep.I == r.BestI && ep.J == r.BestJ && ep.Score == r.BestScore {
			found = true
		}
		if ep.Score < 15 {
			t.Errorf("endpoint below threshold: %+v", ep)
		}
	}
	if !found {
		t.Errorf("best cell (%d,%d,%d) not among endpoints %v", r.BestI, r.BestJ, r.BestScore, r.Endpoints)
	}
}

func TestScanEndpointScoresAreTrue(t *testing.T) {
	// Every reported endpoint's score must equal the actual matrix value.
	g := bio.NewGenerator(41)
	s := g.Random(80)
	tt := g.MutatedCopy(s, bio.DefaultMutationModel())
	r, err := Scan(s, tt, sc, ScanOptions{EndpointMinScore: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSWMatrix(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range r.Endpoints {
		if got := m.Score(ep.I, ep.J); got != ep.Score {
			t.Errorf("endpoint (%d,%d) claims %d, matrix has %d", ep.I, ep.J, ep.Score, got)
		}
	}
}

func TestColumnScanAgreesWithRowScan(t *testing.T) {
	g := bio.NewGenerator(43)
	s := g.Random(90)
	tt := g.Random(110)
	best := 0
	err := ColumnScan(s, tt, sc, func(j int, col []int32) {
		for _, v := range col {
			if int(v) > best {
				best = int(v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Scan(s, tt, sc, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if best != r.BestScore {
		t.Errorf("column scan best %d, row scan best %d", best, r.BestScore)
	}
}

func TestColumnScanColumnsMatchMatrix(t *testing.T) {
	g := bio.NewGenerator(47)
	s := g.Random(40)
	tt := g.Random(50)
	m, err := NewSWMatrix(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	err = ColumnScan(s, tt, sc, func(j int, col []int32) {
		for i := 0; i <= s.Len(); i++ {
			if int(col[i]) != m.Score(i, j) {
				t.Fatalf("column %d row %d: got %d, want %d", j, i, col[i], m.Score(i, j))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimHelper(t *testing.T) {
	s := bio.MustSequence("ACGTACGT")
	got, err := Sim(s, s, sc)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("Sim(s,s) = %d, want 8", got)
	}
}
