// Package align implements the sequential alignment algorithms the paper
// builds on: the full-matrix Smith–Waterman algorithm with traceback
// (§2.1–2.2), the two-row linear-space variant (§4.1), Needleman–Wunsch
// global alignment (§2.3), Hirschberg's linear-space global alignment
// (referenced in §6), and the paper's Section 6 reverse-based retrieval
// method with intermediate-zero elimination (Algorithm 1 + Theorem 6.2).
//
// Coordinates follow the paper's conventions: sequences are 1-based
// (s[1..i]), and matrix entry A[i][j] is the similarity of prefixes
// s[1..i] and t[1..j].
package align

import (
	"fmt"
	"strings"

	"genomedsm/internal/bio"
)

// Op is one column of an alignment.
type Op byte

// Alignment column kinds. The names follow the arrow metaphor of §2.2:
// a north-west arrow aligns s[i] with t[j]; a north arrow aligns s[i]
// with a space; a west arrow aligns a space with t[j].
const (
	OpMatch    Op = 'M' // s[i] aligned to t[j], equal characters
	OpMismatch Op = 'X' // s[i] aligned to t[j], distinct characters
	OpGapS     Op = 'I' // space in s aligned to t[j] (west arrow)
	OpGapT     Op = 'D' // s[i] aligned to space in t (north arrow)
)

// Alignment is a concrete alignment between subsequences of s and t.
// Begin/End coordinates are 1-based inclusive; an alignment covering
// s[3..10] has SBegin=3, SEnd=10.
type Alignment struct {
	SBegin, SEnd int
	TBegin, TEnd int
	Score        int
	Ops          []Op
}

// Validate checks internal consistency of the alignment against the
// sequences it claims to align: coordinates in range, op counts matching
// the spanned subsequence lengths, and the recomputed column score equal
// to Score.
func (a *Alignment) Validate(s, t bio.Sequence, sc bio.Scoring) error {
	if a.SBegin < 1 || a.SEnd > s.Len() || a.TBegin < 1 || a.TEnd > t.Len() {
		return fmt.Errorf("align: coordinates (%d,%d)-(%d,%d) out of range for |s|=%d |t|=%d",
			a.SBegin, a.TBegin, a.SEnd, a.TEnd, s.Len(), t.Len())
	}
	si, tj := a.SBegin, a.TBegin
	score := 0
	for _, op := range a.Ops {
		switch op {
		case OpMatch, OpMismatch:
			if si > a.SEnd || tj > a.TEnd {
				return fmt.Errorf("align: ops overrun coordinates")
			}
			want := OpMismatch
			if bio.Matches(s[si-1], t[tj-1]) {
				want = OpMatch
			}
			if op != want {
				return fmt.Errorf("align: op %c at s[%d],t[%d] disagrees with bases %c,%c",
					op, si, tj, s[si-1], t[tj-1])
			}
			score += sc.Pair(s[si-1], t[tj-1])
			si++
			tj++
		case OpGapS:
			if tj > a.TEnd {
				return fmt.Errorf("align: ops overrun t coordinates")
			}
			score += sc.Gap
			tj++
		case OpGapT:
			if si > a.SEnd {
				return fmt.Errorf("align: ops overrun s coordinates")
			}
			score += sc.Gap
			si++
		default:
			return fmt.Errorf("align: unknown op %q", op)
		}
	}
	if si != a.SEnd+1 || tj != a.TEnd+1 {
		return fmt.Errorf("align: ops cover s[%d..%d] t[%d..%d], claim s[%d..%d] t[%d..%d]",
			a.SBegin, si-1, a.TBegin, tj-1, a.SBegin, a.SEnd, a.TBegin, a.TEnd)
	}
	if score != a.Score {
		return fmt.Errorf("align: recomputed score %d != claimed %d", score, a.Score)
	}
	return nil
}

// Length returns the number of columns.
func (a *Alignment) Length() int { return len(a.Ops) }

// Counts returns the number of matches, mismatches and gap columns.
func (a *Alignment) Counts() (matches, mismatches, gaps int) {
	for _, op := range a.Ops {
		switch op {
		case OpMatch:
			matches++
		case OpMismatch:
			mismatches++
		default:
			gaps++
		}
	}
	return
}

// Identity is the fraction of match columns.
func (a *Alignment) Identity() float64 {
	if len(a.Ops) == 0 {
		return 0
	}
	m, _, _ := a.Counts()
	return float64(m) / float64(len(a.Ops))
}

// Render produces the three-line textual form used by Fig. 1 and Fig. 16
// of the paper: the s row with spaces, a marker row (| for match), and
// the t row.
func (a *Alignment) Render(s, t bio.Sequence) string {
	var top, mid, bot strings.Builder
	si, tj := a.SBegin, a.TBegin
	for _, op := range a.Ops {
		switch op {
		case OpMatch:
			top.WriteByte(s[si-1])
			mid.WriteByte('|')
			bot.WriteByte(t[tj-1])
			si++
			tj++
		case OpMismatch:
			top.WriteByte(s[si-1])
			mid.WriteByte(' ')
			bot.WriteByte(t[tj-1])
			si++
			tj++
		case OpGapS:
			top.WriteByte('_')
			mid.WriteByte(' ')
			bot.WriteByte(t[tj-1])
			tj++
		case OpGapT:
			top.WriteByte(s[si-1])
			mid.WriteByte(' ')
			bot.WriteByte('_')
			si++
		}
	}
	return top.String() + "\n" + mid.String() + "\n" + bot.String() + "\n"
}

// RenderReport renders the alignment in the labelled format of Fig. 16
// (initial/final coordinates, similarity, aligned subsequences wrapped at
// width columns).
func (a *Alignment) RenderReport(s, t bio.Sequence, width int) string {
	if width <= 0 {
		width = 60
	}
	body := a.Render(s, t)
	lines := strings.SplitN(body, "\n", 3)
	top, bot := lines[0], lines[2]
	var sb strings.Builder
	fmt.Fprintf(&sb, "initial_x: %d final_x: %d\n", a.SBegin, a.SEnd)
	fmt.Fprintf(&sb, "initial_y: %d final_y: %d\n", a.TBegin, a.TEnd)
	fmt.Fprintf(&sb, "similarity: %d\n", a.Score)
	for off := 0; off < len(top); off += width {
		end := off + width
		if end > len(top) {
			end = len(top)
		}
		fmt.Fprintf(&sb, "align_s: %s\n", top[off:end])
		fmt.Fprintf(&sb, "align_t: %s\n", bot[off:end])
	}
	return sb.String()
}

// Reverse returns the alignment mapped onto the reversed sequences: if a
// aligns s[i..i'] with t[j..j'], Reverse(n, m) aligns
// srev[n-i'+1 .. n-i+1] with trev[m-j'+1 .. m-j+1] with the column order
// reversed. This is the coordinate transform of Observation 6.1.
func (a *Alignment) Reverse(n, m int) *Alignment {
	ops := make([]Op, len(a.Ops))
	for i, op := range a.Ops {
		ops[len(ops)-1-i] = op
	}
	return &Alignment{
		SBegin: n - a.SEnd + 1, SEnd: n - a.SBegin + 1,
		TBegin: m - a.TEnd + 1, TEnd: m - a.TBegin + 1,
		Score: a.Score,
		Ops:   ops,
	}
}
