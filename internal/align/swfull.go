package align

import (
	"fmt"
	"sort"

	"genomedsm/internal/bio"
)

// Arrow flags stored per cell of the full similarity matrix (§2.1). A cell
// may carry several arrows when the maximum is attained in more than one
// way; traceback follows a fixed preference so results are deterministic.
const (
	ArrowDiag  byte = 1 << iota // from A[i-1][j-1] (north-west)
	ArrowWest                   // from A[i][j-1] (space in s)
	ArrowNorth                  // from A[i-1][j] (space in t)
)

// Matrix is the full (m+1)×(n+1) similarity matrix of the Smith–Waterman
// algorithm, including traceback arrows. Its memory footprint is
// quadratic; it exists for small inputs, correctness baselines and the
// retrieval of alignments inside similar regions, exactly as in the paper
// (long sequences go through the linear-space variants instead).
type Matrix struct {
	S, T    bio.Sequence
	Scoring bio.Scoring
	Local   bool // zero-clamped local recurrence vs. global (NW) recurrence

	rows, cols int // m+1, n+1 where m=|S|, n=|T|
	score      []int32
	arrows     []byte
}

// maxFullCells bounds the memory of a full-matrix computation. 64M cells
// ≈ 320 MB, far beyond anything the full matrix is needed for (the paper
// notes two 10 kBP sequences already require 400 MB of column data).
const maxFullCells = 64 << 20

// NewSWMatrix computes the full local-alignment similarity matrix for s
// and t: first row and column zero, interior cells from Eq. (1).
func NewSWMatrix(s, t bio.Sequence, sc bio.Scoring) (*Matrix, error) {
	return newMatrix(s, t, sc, true)
}

// NewNWMatrix computes the full global-alignment (Needleman–Wunsch)
// matrix: the zero option of Eq. (1) is removed and the first row and
// column hold accumulated gap penalties (§2.3).
func NewNWMatrix(s, t bio.Sequence, sc bio.Scoring) (*Matrix, error) {
	return newMatrix(s, t, sc, false)
}

func newMatrix(s, t bio.Sequence, sc bio.Scoring, local bool) (*Matrix, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	m, n := s.Len(), t.Len()
	cells := (m + 1) * (n + 1)
	if int64(m+1)*int64(n+1) > maxFullCells {
		return nil, fmt.Errorf("align: full matrix %dx%d exceeds the %d-cell limit; use the linear-space algorithms", m+1, n+1, maxFullCells)
	}
	a := &Matrix{
		S: s, T: t, Scoring: sc, Local: local,
		rows: m + 1, cols: n + 1,
		score:  make([]int32, cells),
		arrows: make([]byte, cells),
	}
	if !local {
		for i := 1; i <= m; i++ {
			a.score[i*a.cols] = int32(i * sc.Gap)
			a.arrows[i*a.cols] = ArrowNorth
		}
		for j := 1; j <= n; j++ {
			a.score[j] = int32(j * sc.Gap)
			a.arrows[j] = ArrowWest
		}
	}
	prof := bio.NewProfile(t, sc)
	gap := int32(sc.Gap)
	for i := 1; i <= m; i++ {
		row := i * a.cols
		prev := row - a.cols
		sub := prof.Row(s[i-1])
		for j := 1; j <= n; j++ {
			diag := a.score[prev+j-1] + sub[j-1]
			west := a.score[row+j-1] + gap
			north := a.score[prev+j] + gap
			best := bio.Max32(diag, bio.Max32(west, north))
			var arrows byte
			if local && best <= 0 {
				best = 0
				// A zero cell keeps no arrows: traceback stops here (§2.2).
			} else {
				if diag == best {
					arrows |= ArrowDiag
				}
				if west == best {
					arrows |= ArrowWest
				}
				if north == best {
					arrows |= ArrowNorth
				}
			}
			a.score[row+j] = best
			a.arrows[row+j] = arrows
		}
	}
	return a, nil
}

// Score returns A[i][j] (0-based on the extended matrix: Score(0,0) is the
// empty-prefix corner).
func (a *Matrix) Score(i, j int) int { return int(a.score[i*a.cols+j]) }

// Arrows returns the arrow flags of A[i][j].
func (a *Matrix) Arrows(i, j int) byte { return a.arrows[i*a.cols+j] }

// Dims returns the extended-matrix dimensions (|s|+1, |t|+1).
func (a *Matrix) Dims() (rows, cols int) { return a.rows, a.cols }

// MaxCell returns the coordinates and value of the maximum entry; for the
// local matrix this is the best local-alignment score (sim(s,t)).
func (a *Matrix) MaxCell() (i, j, score int) {
	best := int32(-1 << 30)
	for ii := 0; ii < a.rows; ii++ {
		row := ii * a.cols
		for jj := 0; jj < a.cols; jj++ {
			if a.score[row+jj] > best {
				best = a.score[row+jj]
				i, j = ii, jj
			}
		}
	}
	return i, j, int(best)
}

// Traceback builds the alignment ending at cell (i, j), following arrows
// until a cell with no arrow (zero cell for local; the origin corner for
// global). When several arrows are present the preference is
// diagonal, then west, then north, which keeps results deterministic.
func (a *Matrix) Traceback(i, j int) *Alignment {
	var rev []Op
	endI, endJ := i, j
	for {
		arrows := a.arrows[i*a.cols+j]
		if arrows == 0 {
			break
		}
		switch {
		case arrows&ArrowDiag != 0:
			if bio.Matches(a.S[i-1], a.T[j-1]) {
				rev = append(rev, OpMatch)
			} else {
				rev = append(rev, OpMismatch)
			}
			i--
			j--
		case arrows&ArrowWest != 0:
			rev = append(rev, OpGapS)
			j--
		default:
			rev = append(rev, OpGapT)
			i--
		}
	}
	ops := make([]Op, len(rev))
	for k, op := range rev {
		ops[len(rev)-1-k] = op
	}
	return &Alignment{
		SBegin: i + 1, SEnd: endI,
		TBegin: j + 1, TEnd: endJ,
		Score: a.Score(endI, endJ) - a.Score(i, j),
		Ops:   ops,
	}
}

// BestLocal computes the full matrix and returns one optimal local
// alignment (the traceback from the maximum cell).
func BestLocal(s, t bio.Sequence, sc bio.Scoring) (*Alignment, error) {
	m, err := NewSWMatrix(s, t, sc)
	if err != nil {
		return nil, err
	}
	i, j, _ := m.MaxCell()
	return m.Traceback(i, j), nil
}

// LocalsAbove returns non-overlapping local alignments with score of at
// least minScore, best first. Cells are visited in decreasing score order;
// a traceback is kept only if it does not overlap (in either sequence) a
// previously kept alignment. This mirrors how the tools of §4.4 report
// multiple similar regions.
func LocalsAbove(s, t bio.Sequence, sc bio.Scoring, minScore int) ([]*Alignment, error) {
	if minScore < 1 {
		return nil, fmt.Errorf("align: minScore must be >= 1, got %d", minScore)
	}
	m, err := NewSWMatrix(s, t, sc)
	if err != nil {
		return nil, err
	}
	type cand struct{ i, j, score int }
	var cands []cand
	for i := 1; i < m.rows; i++ {
		row := i * m.cols
		for j := 1; j < m.cols; j++ {
			if int(m.score[row+j]) >= minScore {
				cands = append(cands, cand{i, j, int(m.score[row+j])})
			}
		}
	}
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].score != cands[y].score {
			return cands[x].score > cands[y].score
		}
		if cands[x].i != cands[y].i {
			return cands[x].i < cands[y].i
		}
		return cands[x].j < cands[y].j
	})
	var out []*Alignment
	for _, c := range cands {
		al := m.Traceback(c.i, c.j)
		overlap := false
		for _, kept := range out {
			if al.SBegin <= kept.SEnd && kept.SBegin <= al.SEnd &&
				al.TBegin <= kept.TEnd && kept.TBegin <= al.TEnd {
				overlap = true
				break
			}
		}
		if !overlap {
			out = append(out, al)
		}
	}
	return out, nil
}
