package align

import (
	"sync"

	"genomedsm/internal/bio"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/swar"
)

// alignerPool shares striped row buffers between the concurrent Scan
// callers (search workers, realignment); a swar.Aligner is cheap but
// its buffers are worth keeping warm across the many short scans the
// top-K realignment phase issues.
var alignerPool = sync.Pool{New: func() any { return new(swar.Aligner) }}

// stripedScan runs the striped fallback ladder for a plain best-score
// scan, starting at the rung the router picked. ok=false means even the
// int16 lanes saturated (or the scoring scheme fits no packed layout)
// and the caller must run the scalar kernel. From the int8 rung, random
// pairs stay far below the cap and a saturating scan bails out at the
// first flagged row, so a doomed rung costs a small prefix of the
// matrix, not a full pass; a route starting at int16 skips even that
// prefix when saturation is predicted or proven.
func stripedScan(s, t bio.Sequence, sc bio.Scoring, route dispatch.PairRoute) (swar.Pair, bool) {
	al := alignerPool.Get().(*swar.Aligner)
	defer alignerPool.Put(al)
	if route == dispatch.PairStriped8 {
		if p, ok := al.StripedScan8(s, t, sc); ok {
			return p, true
		}
	}
	return al.StripedScan16(s, t, sc)
}
