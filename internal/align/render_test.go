package align

import (
	"strings"
	"testing"

	"genomedsm/internal/bio"
)

func TestRenderMatrixFig3Values(t *testing.T) {
	// Fig. 3's pair: the rendered matrix must show the sequences on the
	// borders and a positive best score somewhere inside.
	s := bio.MustSequence("ATAGCT")
	tt := bio.MustSequence("GATATGCA")
	m, err := NewSWMatrix(tt, s, sc) // t indexes rows in the paper's figure
	if err != nil {
		t.Fatal(err)
	}
	out := m.RenderMatrix(nil)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != tt.Len()+2 { // header + zero row + |t| rows
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "G") || !strings.HasPrefix(lines[9], "A") {
		t.Errorf("row labels wrong:\n%s", out)
	}
	// The paper says the best local score appears in A[7,5]; with the
	// +1/−1/−2 scheme that cell holds 3 (tied with A[4,3] — "many optimal
	// local alignments may exist", §2.2).
	_, _, best := m.MaxCell()
	if got := m.Score(7, 5); got != best || got != 3 {
		t.Errorf("A[7,5]=%d, max=%d; paper puts an optimum at (7,5) with value 3", got, best)
	}
}

func TestReverseExamplePaperStrings(t *testing.T) {
	s := bio.MustSequence("TCTCGACGGATTAGTATATATATA")
	tt := bio.MustSequence("ATATGATCGGAATAGCTCT")
	detect, full, pruned, err := ReverseExample(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detect, "score 6") || !strings.Contains(detect, "14 and 15") {
		t.Errorf("detection line: %q", detect)
	}
	// Table 6's matrix is over the reversed prefixes: G A T T A G G C A G C T C T
	// across the top (reverse of s[1..14]).
	if !strings.Contains(strings.Split(full, "\n")[0], "G  A  T  T  A  G") {
		t.Errorf("full matrix header wrong:\n%s", full)
	}
	// The pruned rendering must contain strictly fewer printed numbers.
	count := func(s string) int { return strings.Count(s, "0") + strings.Count(s, "1") }
	if count(pruned) >= count(full) {
		t.Error("pruned matrix is not smaller than the full one")
	}
	// The score-6 cell must survive pruning (the alignment is found).
	if !strings.Contains(pruned, "6") {
		t.Errorf("pruned matrix lost the target score:\n%s", pruned)
	}
}

func TestReverseExampleNoAlignment(t *testing.T) {
	detect, full, pruned, err := ReverseExample(bio.MustSequence("AAAA"), bio.MustSequence("CCCC"), sc)
	if err != nil {
		t.Fatal(err)
	}
	if full != "" || pruned != "" || !strings.Contains(detect, "score 0") {
		t.Errorf("no-alignment case: %q / %q / %q", detect, full, pruned)
	}
}
