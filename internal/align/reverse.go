package align

import (
	"fmt"

	"genomedsm/internal/bio"
)

// RetrieveStats instruments the Section 6 retrieval so the Eq. (3) claim
// (only ≈30% of the n'×n' matrix is necessary in the worst case) can be
// measured.
type RetrieveStats struct {
	CellsComputed int64 // interior cells evaluated inside the useful area
	FullCells     int64 // (p_max+1)·(q_max+1) the naive method would compute
	RowsComputed  int   // rows of the reverse matrix that were touched
}

// UsefulFraction is CellsComputed / FullCells.
func (st RetrieveStats) UsefulFraction() float64 {
	if st.FullCells == 0 {
		return 0
	}
	return float64(st.CellsComputed) / float64(st.FullCells)
}

// ReverseRetrieve implements the second step of the paper's Algorithm 1
// (Section 6): given the end coordinates (endI, endJ) and score k of a
// local alignment between s and t — typically found by Scan — it rebuilds
// the alignment by running the dynamic programming over the *reverses* of
// the prefixes s[1..endI] and t[1..endJ] (Observation 6.1), pruning every
// computation that descends from an intermediate zero (Theorem 6.2).
//
// The returned alignment is expressed in original s/t coordinates and is
// the minimal-length alignment of score k ending at (endI, endJ). Space is
// proportional to the useful area only, O(n'²) with the Eq. (3) constant,
// instead of endI·endJ.
func ReverseRetrieve(s, t bio.Sequence, sc bio.Scoring, endI, endJ, k int) (*Alignment, RetrieveStats, error) {
	var r Retriever
	return r.ReverseRetrieve(s, t, sc, endI, endJ, k)
}

// Retriever carries the reusable sparse-row storage of ReverseRetrieve:
// all rows live in one shared arena (vals/arrs), each row holding only
// its index window into it, so a retrieval performs a handful of
// amortized arena growths instead of one pair of appends per active
// cell. The zero value is ready to use; a Retriever must not be shared
// between goroutines. Steady-state reuse (the top-K realignment loop,
// RetrieveAll) allocates only the profile and the result.
type Retriever struct {
	vals []int32      // row-value arena
	arrs []byte       // parallel arrow arena
	rows []rrow       // per-row windows into the arenas
	rev  bio.Sequence // reversed-prefix scratch for the profile
	// High-water trim bookkeeping: one huge retrieval must not pin its
	// arena for the lifetime of a long-lived Retriever (the search
	// worker pool, RetrieveAll loops). Every trimWindow calls the arenas
	// are shrunk back to the window's peak usage when their capacity
	// dwarfs it; see observe.
	calls  int
	hw     int // peak len(vals) observed this window
	hwRows int // peak len(rows) observed this window
}

// Arena trim tuning: how many retrievals one observation window spans,
// the slack factor before a trim fires, and the capacity below which
// trimming is never worth it.
const (
	arenaTrimWindow = 16
	arenaTrimFactor = 2
	arenaTrimMinCap = 4096
)

// observe runs at the start of each retrieval, while the arenas still
// hold the previous call's rows: it folds that usage into the window's
// high-water marks and, once per window, releases arenas whose
// capacity exceeds arenaTrimFactor × the recent peak (so alternating
// big/small workloads keep their buffers, while a one-off giant
// retrieval stops taxing every later small one).
func (rt *Retriever) observe() {
	if n := len(rt.vals); n > rt.hw {
		rt.hw = n
	}
	if n := len(rt.rows); n > rt.hwRows {
		rt.hwRows = n
	}
	if rt.calls++; rt.calls < arenaTrimWindow {
		return
	}
	if cap(rt.vals) > arenaTrimFactor*rt.hw && cap(rt.vals) > arenaTrimMinCap {
		rt.vals = make([]int32, 0, rt.hw)
		rt.arrs = make([]byte, 0, rt.hw)
		rt.rev = nil
	}
	if cap(rt.rows) > arenaTrimFactor*rt.hwRows && cap(rt.rows) > arenaTrimMinCap {
		rt.rows = make([]rrow, 0, rt.hwRows)
	}
	rt.calls, rt.hw, rt.hwRows = 0, 0, 0
}

// rrow is one sparse row: the active column window [lo, hi] stored at
// arena offset off (so column q lives at index off+q-lo).
type rrow struct {
	lo, hi, off int
}

// ReverseRetrieve is the buffer-reusing form of the package function of
// the same name; see its documentation.
func (rt *Retriever) ReverseRetrieve(s, t bio.Sequence, sc bio.Scoring, endI, endJ, k int) (*Alignment, RetrieveStats, error) {
	rt.observe()
	var st RetrieveStats
	if err := sc.Validate(); err != nil {
		return nil, st, err
	}
	if endI < 1 || endI > s.Len() || endJ < 1 || endJ > t.Len() {
		return nil, st, fmt.Errorf("align: end position (%d,%d) out of range for |s|=%d |t|=%d",
			endI, endJ, s.Len(), t.Len())
	}
	if k < 1 {
		return nil, st, fmt.Errorf("align: target score %d must be >= 1", k)
	}
	// Work over the reversed prefixes. srev[p] (1-based) is s[endI-p+1].
	srevAt := func(p int) byte { return s[endI-p] }
	trevAt := func(q int) byte { return t[endJ-q] }
	pmax, qmax := endI, endJ
	// Query profile over the reversed prefix of t: sub[p][q-1] is the
	// substitution score of srev[p] against trev[q], one int32 load per
	// cell in the hot loop below. The reversal scratch is reused.
	rt.rev = rt.rev[:0]
	for q := endJ - 1; q >= 0; q-- {
		rt.rev = append(rt.rev, t[q])
	}
	prof := bio.NewProfile(rt.rev, sc)

	// Sparse row storage: row p keeps values and arrows for the active
	// column window [lo, hi]. A cell is active when its value is positive
	// and it is reachable from the (1,1) seed without crossing a zero —
	// Theorem 6.2 says pruning the rest cannot lose the minimal-length
	// alignment, because that alignment starts at the first character of
	// each reversed sequence. Rows stack up in the shared arena: the
	// current row grows at the arena tail, front shrinks just advance its
	// offset, tail shrinks truncate the arena before the next row starts.
	rt.vals = append(rt.vals[:0], 0)
	rt.arrs = append(rt.arrs[:0], 0)
	rt.rows = append(rt.rows[:0], rrow{lo: 0, hi: 0, off: 0})

	get := func(r rrow, q int) (int32, bool) {
		if q < r.lo || q > r.hi {
			return 0, false
		}
		v := rt.vals[r.off+q-r.lo]
		return v, v > 0 || (q == 0 && r.lo == 0)
	}

	bestP, bestQ := -1, -1
	bestSum := 1 << 30
	for p := 1; p <= pmax; p++ {
		prev := rt.rows[p-1]
		// Any cell in this row has path length ≥ p; stop once no cell can
		// beat the best minimal-length hit found so far.
		if bestP >= 0 && p+1 > bestSum {
			break
		}
		lo := prev.lo
		if lo < 1 {
			lo = 1
		}
		if lo > qmax {
			break
		}
		cur := rrow{lo: lo, hi: lo - 1, off: len(rt.vals)}
		sub := prof.Row(srevAt(p))
		rowAlive := false
		// Columns [lo, prev.hi+1] can receive diagonal or north arrows
		// from the previous row; beyond that only west chains (runs of
		// gaps in s) can stay alive, and they die as soon as a value
		// drops to zero.
		for q := lo; q <= qmax; q++ {
			diagOnly := q > prev.hi+1
			var v int32
			var arrows byte
			if dv, ok := get(prev, q-1); ok {
				if cand := dv + sub[q-1]; cand > 0 {
					v, arrows = cand, ArrowDiag
				}
			}
			if q-1 >= cur.lo && q-1 <= cur.hi {
				if wv := rt.vals[cur.off+q-1-cur.lo]; wv > 0 {
					switch cand := wv + int32(sc.Gap); {
					case cand > v:
						v, arrows = cand, ArrowWest
					case cand == v && v > 0:
						arrows |= ArrowWest
					}
				}
			}
			if nv, ok := get(prev, q); ok {
				switch cand := nv + int32(sc.Gap); {
				case cand > v:
					v, arrows = cand, ArrowNorth
				case cand == v && v > 0:
					arrows |= ArrowNorth
				}
			}
			st.CellsComputed++
			if v <= 0 {
				if diagOnly {
					break // west chain exhausted; nothing further can revive
				}
				v, arrows = 0, 0
			}
			rt.vals = append(rt.vals, v)
			rt.arrs = append(rt.arrs, arrows)
			cur.hi = q
			if v <= 0 {
				continue
			}
			rowAlive = true
			if int(v) >= k && p+q < bestSum {
				bestP, bestQ, bestSum = p, q, p+q
			}
		}
		// Shrink the stored window to the live cells.
		for cur.lo <= cur.hi && rt.vals[cur.off] <= 0 {
			cur.off++
			cur.lo++
		}
		for cur.hi >= cur.lo && rt.vals[len(rt.vals)-1] <= 0 {
			rt.vals = rt.vals[:len(rt.vals)-1]
			rt.arrs = rt.arrs[:len(rt.arrs)-1]
			cur.hi--
		}
		rt.rows = append(rt.rows, cur)
		st.RowsComputed = p
		if !rowAlive {
			break
		}
	}
	st.FullCells = int64(st.RowsComputed+1) * int64(qmax+1)
	if bestP < 0 {
		// Rare but possible: every score-k path ending exactly at
		// (endI, endJ) revisits score k at an interior point, so its
		// reverse partial sums touch zero and Theorem 6.2's pruning
		// removes it. The theorem's proof tells us what remains: dropping
		// the zero-score reverse prefix leaves an equal-score alignment at
		// a smaller extent, i.e. the alignment relocates to an earlier
		// forward end. A dense (unpruned) reverse Smith–Waterman finds the
		// relocated alignment; it costs more memory but only runs in this
		// corner case.
		return reverseRetrieveDense(s, t, sc, endI, endJ, k, st)
	}

	// Traceback inside the stored area, collecting ops of the *reverse*
	// alignment; reversing at the end yields the original-order ops.
	var revOps []Op
	p, q := bestP, bestQ
	for p > 0 || q > 0 {
		r := rt.rows[p]
		if q < r.lo || q > r.hi {
			return nil, st, fmt.Errorf("align: traceback escaped the stored area at (%d,%d)", p, q)
		}
		arrows := rt.arrs[r.off+q-r.lo]
		if arrows == 0 {
			break
		}
		switch {
		case arrows&ArrowDiag != 0:
			if bio.Matches(srevAt(p), trevAt(q)) {
				revOps = append(revOps, OpMatch)
			} else {
				revOps = append(revOps, OpMismatch)
			}
			p--
			q--
		case arrows&ArrowWest != 0:
			revOps = append(revOps, OpGapS)
			q--
		default:
			revOps = append(revOps, OpGapT)
			p--
		}
	}
	if p != 0 || q != 0 {
		return nil, st, fmt.Errorf("align: traceback stopped at (%d,%d), want origin", p, q)
	}
	// revOps is ordered end→start of the reverse alignment, which is
	// start→end of the original alignment already.
	al := &Alignment{
		SBegin: endI - bestP + 1, SEnd: endI,
		TBegin: endJ - bestQ + 1, TEnd: endJ,
		Score: k,
		Ops:   revOps,
	}
	return al, st, nil
}

// reverseRetrieveDense is the unpruned fallback for ReverseRetrieve: a
// plain Smith–Waterman over the reversed prefixes, rows stored with
// arrows, stopped at the first (minimal p+q) cell reaching score k. The
// traceback start need not be the origin — the returned alignment carries
// its true (possibly relocated) forward coordinates and its true score,
// which is >= k.
func reverseRetrieveDense(s, t bio.Sequence, sc bio.Scoring, endI, endJ, k int, st RetrieveStats) (*Alignment, RetrieveStats, error) {
	srevAt := func(p int) byte { return s[endI-p] }
	trevAt := func(q int) byte { return t[endJ-q] }
	pmax, qmax := endI, endJ
	prof := bio.NewProfile(bio.Sequence(t[:endJ]).Reverse(), sc)
	gap := int32(sc.Gap)
	vals := [][]int32{make([]int32, qmax+1)}
	arrs := [][]byte{make([]byte, qmax+1)}
	bestP, bestQ := -1, -1
	bestSum := 1 << 30
	for p := 1; p <= pmax; p++ {
		if bestP >= 0 && p+1 > bestSum {
			break
		}
		pv := vals[p-1]
		cv := make([]int32, qmax+1)
		ca := make([]byte, qmax+1)
		sub := prof.Row(srevAt(p))
		for q := 1; q <= qmax; q++ {
			v := pv[q-1] + sub[q-1]
			arrows := ArrowDiag
			if w := cv[q-1] + gap; w > v {
				v, arrows = w, ArrowWest
			}
			if n := pv[q] + gap; n > v {
				v, arrows = n, ArrowNorth
			}
			if v <= 0 {
				v, arrows = 0, 0
			}
			cv[q], ca[q] = v, arrows
			st.CellsComputed++
			if int(v) >= k && p+q < bestSum {
				bestP, bestQ, bestSum = p, q, p+q
			}
		}
		vals = append(vals, cv)
		arrs = append(arrs, ca)
	}
	st.FullCells = int64(len(vals)) * int64(qmax+1)
	if bestP < 0 {
		return nil, st, fmt.Errorf("align: no alignment of score %d ends at or before (%d,%d)", k, endI, endJ)
	}
	var revOps []Op
	p, q := bestP, bestQ
	for p > 0 && q > 0 && arrs[p][q] != 0 {
		switch arrs[p][q] {
		case ArrowDiag:
			if bio.Matches(srevAt(p), trevAt(q)) {
				revOps = append(revOps, OpMatch)
			} else {
				revOps = append(revOps, OpMismatch)
			}
			p--
			q--
		case ArrowWest:
			revOps = append(revOps, OpGapS)
			q--
		default:
			revOps = append(revOps, OpGapT)
			p--
		}
	}
	al := &Alignment{
		SBegin: endI - bestP + 1, SEnd: endI - p,
		TBegin: endJ - bestQ + 1, TEnd: endJ - q,
		Score: int(vals[bestP][bestQ] - vals[p][q]),
		Ops:   revOps,
	}
	return al, st, nil
}

// BestLocalLinear runs the complete Section 6 pipeline: a linear-space
// scan finds the best score and its end coordinates, and ReverseRetrieve
// rebuilds the alignment in O(min(n,m) + n'²) space. This is the exact
// replacement for the full-matrix BestLocal on long sequences.
func BestLocalLinear(s, t bio.Sequence, sc bio.Scoring) (*Alignment, RetrieveStats, error) {
	r, err := Scan(s, t, sc, ScanOptions{})
	if err != nil {
		return nil, RetrieveStats{}, err
	}
	if r.BestScore <= 0 {
		return nil, RetrieveStats{}, fmt.Errorf("align: no positive-score local alignment exists")
	}
	return ReverseRetrieve(s, t, sc, r.BestI, r.BestJ, r.BestScore)
}

// RetrieveAll retrieves one alignment per endpoint (as produced by Scan
// with EndpointMinScore set), skipping endpoints that fall inside an
// already-retrieved alignment. Stats are accumulated.
func RetrieveAll(s, t bio.Sequence, sc bio.Scoring, eps []Endpoint) ([]*Alignment, RetrieveStats, error) {
	var total RetrieveStats
	var out []*Alignment
	for _, ep := range eps {
		covered := false
		for _, a := range out {
			if ep.I >= a.SBegin && ep.I <= a.SEnd && ep.J >= a.TBegin && ep.J <= a.TEnd {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		a, st, err := ReverseRetrieve(s, t, sc, ep.I, ep.J, ep.Score)
		total.CellsComputed += st.CellsComputed
		total.FullCells += st.FullCells
		if err != nil {
			return nil, total, fmt.Errorf("endpoint (%d,%d,%d): %w", ep.I, ep.J, ep.Score, err)
		}
		out = append(out, a)
	}
	return out, total, nil
}
