package align

import (
	"fmt"

	"genomedsm/internal/bio"
)

// Endpoint is a candidate local-alignment end position found by a linear
// scan: the cell (I, J) holds Score and no successor cell extends the
// alignment to an equal or better score.
type Endpoint struct {
	I, J  int // 1-based end coordinates in s and t
	Score int
}

// ScanOptions configures Scan.
type ScanOptions struct {
	// EndpointMinScore, when positive, collects endpoints with at least
	// this score.
	EndpointMinScore int
	// HitThreshold, when positive, counts matrix cells with score >= the
	// threshold — the "scoreboard of points of interest" kept by the
	// paper's pre-process strategy (§5).
	HitThreshold int
}

// ScanResult is the outcome of a linear-space Smith–Waterman scan.
type ScanResult struct {
	BestScore    int
	BestI, BestJ int // end coordinates of the best local alignment
	Endpoints    []Endpoint
	Hits         int64 // cells >= HitThreshold (0 when disabled)
	Cells        int64 // interior cells computed (= |s|·|t|)
}

// Scan runs the Smith–Waterman recurrence over s and t using two linear
// arrays (§4.1's space reduction, without the candidate heuristics, which
// live in the heuristics package). It is the first step of Section 6's
// Algorithm 1: detect where alignments of interest end, in O(min-row)
// space.
func Scan(s, t bio.Sequence, sc bio.Scoring, opt ScanOptions) (*ScanResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	m, n := s.Len(), t.Len()
	res := &ScanResult{}
	if m == 0 || n == 0 {
		return res, nil
	}
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	// next is needed only for endpoint detection (a cell is an endpoint
	// when none of its successors east/south/south-east improves on it);
	// we detect endpoints for row i-1 once row i is complete.
	var pendRow []int32
	pendIdx := 0
	collect := opt.EndpointMinScore > 0
	if collect {
		pendRow = make([]int32, n+1)
	}
	flushEndpoints := func(rowIdx int, row, next []int32) {
		for j := 1; j <= n; j++ {
			v := row[j]
			if int(v) < opt.EndpointMinScore {
				continue
			}
			east := int32(0)
			if j < n {
				east = row[j+1]
			}
			south, diag := next[j], int32(0)
			if j < n {
				diag = next[j+1]
			}
			if v > east && v > south && v > diag {
				res.Endpoints = append(res.Endpoints, Endpoint{I: rowIdx, J: j, Score: int(v)})
			}
		}
	}
	for i := 1; i <= m; i++ {
		si := s[i-1]
		cur[0] = 0
		for j := 1; j <= n; j++ {
			v := int(prev[j-1]) + sc.Pair(si, t[j-1])
			if w := int(cur[j-1]) + sc.Gap; w > v {
				v = w
			}
			if no := int(prev[j]) + sc.Gap; no > v {
				v = no
			}
			if v < 0 {
				v = 0
			}
			cur[j] = int32(v)
			if v > res.BestScore {
				res.BestScore, res.BestI, res.BestJ = v, i, j
			}
			if opt.HitThreshold > 0 && v >= opt.HitThreshold {
				res.Hits++
			}
		}
		res.Cells += int64(n)
		if collect {
			if i > 1 {
				flushEndpoints(pendIdx, pendRow, cur)
			}
			copy(pendRow, cur)
			pendIdx = i
		}
		prev, cur = cur, prev
	}
	if collect {
		// The last row has no successors; every qualifying cell that beats
		// its east neighbour is an endpoint.
		zero := make([]int32, n+1)
		flushEndpoints(pendIdx, pendRow, zero)
	}
	return res, nil
}

// Sim returns sim(s, t), the best local-alignment score, in linear space.
func Sim(s, t bio.Sequence, sc bio.Scoring) (int, error) {
	r, err := Scan(s, t, sc, ScanOptions{})
	if err != nil {
		return 0, err
	}
	return r.BestScore, nil
}

// ColumnScan computes the exact similarity column A[0..m][j] for every j
// and hands each finished column to visit (which must not retain the
// slice). It is the column-oriented kernel the pre-process strategy (§5)
// distributes over bands; kept here so tests can compare the distributed
// runs against a trusted sequential implementation.
func ColumnScan(s, t bio.Sequence, sc bio.Scoring, visit func(j int, col []int32)) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	m, n := s.Len(), t.Len()
	prev := make([]int32, m+1)
	cur := make([]int32, m+1)
	if visit != nil {
		visit(0, prev)
	}
	for j := 1; j <= n; j++ {
		tj := t[j-1]
		cur[0] = 0
		for i := 1; i <= m; i++ {
			v := int(prev[i-1]) + sc.Pair(s[i-1], tj)
			if w := int(prev[i]) + sc.Gap; w > v {
				v = w
			}
			if no := int(cur[i-1]) + sc.Gap; no > v {
				v = no
			}
			if v < 0 {
				v = 0
			}
			cur[i] = int32(v)
		}
		if visit != nil {
			visit(j, cur)
		}
		prev, cur = cur, prev
	}
	return nil
}

// String implements fmt.Stringer for quick debugging of scan results.
func (r *ScanResult) String() string {
	return fmt.Sprintf("best=%d at (%d,%d), %d endpoints, %d hits over %d cells",
		r.BestScore, r.BestI, r.BestJ, len(r.Endpoints), r.Hits, r.Cells)
}
