package align

import (
	"fmt"

	"genomedsm/internal/bio"
	"genomedsm/internal/dispatch"
)

// Endpoint is a candidate local-alignment end position found by a linear
// scan: the cell (I, J) holds Score and no successor cell extends the
// alignment to an equal or better score.
type Endpoint struct {
	I, J  int // 1-based end coordinates in s and t
	Score int
}

// ScanOptions configures Scan.
type ScanOptions struct {
	// EndpointMinScore, when positive, collects endpoints with at least
	// this score.
	EndpointMinScore int
	// HitThreshold, when positive, counts matrix cells with score >= the
	// threshold — the "scoreboard of points of interest" kept by the
	// paper's pre-process strategy (§5).
	HitThreshold int
	// ForceScalar disables the striped SWAR fast path and runs the
	// scalar int32 kernel unconditionally. The scalar path is the
	// differential oracle the striped kernels are tested against, and
	// benchmarks use it to keep the KernelExactScan denominator stable.
	ForceScalar bool
	// ExpectScore, when positive, is a known lower bound on the final
	// best score (re-alignment of a database hit knows the score it is
	// looking for). A bound above a packed rung's clean cap proves that
	// rung will saturate, so the fast path starts the fallback ladder
	// past it instead of paying a doomed scan. The result is unchanged —
	// the ladder is exact from any starting rung.
	ExpectScore int
}

// ScanResult is the outcome of a linear-space Smith–Waterman scan.
type ScanResult struct {
	BestScore    int
	BestI, BestJ int // end coordinates of the best local alignment
	Endpoints    []Endpoint
	Hits         int64 // cells >= HitThreshold (0 when disabled)
	Cells        int64 // interior cells computed (= |s|·|t|)
}

// swRow advances one row of the zero-clamped local recurrence:
//
//	cur[j] = max(0, prev[j-1]+sub[j-1], cur[j-1]+gap, prev[j]+gap)
//
// for j = 1..len(sub), where sub is the precomputed profile row of the
// current residue. cur[0] must already hold the row's left border. It
// returns the row maximum and its column (0 when the row is all zero).
// The loop is the shared exact inner kernel: one int32 load per cell for
// the substitution score and conditional-move maxes, no per-cell calls
// or byte branches.
func swRow(prev, cur, sub []int32, gap int32) (best int32, bestJ int) {
	n := len(sub)
	d := prev[0]    // prev[j-1], carried across iterations
	w := cur[0]     // cur[j-1], carried across iterations
	prev = prev[1:] // prev[j] is now prev[j-1] after reslice
	out := cur[1:]  // out[j-1] is cur[j]
	_ = prev[n-1]   // bounds hints for the loop body
	_ = out[n-1]
	for j := 0; j < n; j++ {
		v := d + sub[j]
		v = bio.Max32(v, w+gap)
		d = prev[j]
		v = bio.Max32(v, d+gap)
		v = bio.Clamp0(v)
		out[j] = v
		w = v
		if v > best {
			best, bestJ = v, j+1
		}
	}
	return best, bestJ
}

// Scan runs the Smith–Waterman recurrence over s and t using two linear
// arrays (§4.1's space reduction, without the candidate heuristics, which
// live in the heuristics package). It is the first step of Section 6's
// Algorithm 1: detect where alignments of interest end, in O(min-row)
// space. The inner loop reads precomputed profile rows (bio.Profile), so
// the per-cell cost is pure int32 arithmetic.
func Scan(s, t bio.Sequence, sc bio.Scoring, opt ScanOptions) (*ScanResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	m, n := s.Len(), t.Len()
	res := &ScanResult{}
	if m == 0 || n == 0 {
		return res, nil
	}
	// Plain best-score scans take the striped SWAR fast path; the
	// optional per-cell features (endpoint collection, hit counting)
	// need the full score rows and keep the scalar kernel, which also
	// remains the differential oracle for the striped one. The rung the
	// ladder starts at — and whether the packed path is worth entering
	// at all for this matrix shape — is the process router's call.
	if !opt.ForceScalar && opt.EndpointMinScore <= 0 && opt.HitThreshold <= 0 {
		if route := dispatch.Active().Pair(m, n, sc, opt.ExpectScore); route != dispatch.PairScalar {
			if p, ok := stripedScan(s, t, sc, route); ok {
				res.BestScore, res.BestI, res.BestJ = p.Score, p.I, p.J
				res.Cells = int64(m) * int64(n)
				return res, nil
			}
		}
	}
	prof := bio.NewProfile(t, sc)
	gap := int32(sc.Gap)
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	// The HitThreshold and endpoint features are paid for per row, not per
	// cell: the kernel row runs unconditionally and the optional passes run
	// over the finished row only when enabled.
	countHits := opt.HitThreshold > 0
	thr := int32(opt.HitThreshold)
	// next is needed only for endpoint detection (a cell is an endpoint
	// when none of its successors east/south/south-east improves on it);
	// we detect endpoints for row i-1 once row i is complete.
	var pendRow []int32
	pendIdx := 0
	collect := opt.EndpointMinScore > 0
	if collect {
		pendRow = make([]int32, n+1)
	}
	flushEndpoints := func(rowIdx int, row, next []int32) {
		for j := 1; j <= n; j++ {
			v := row[j]
			if int(v) < opt.EndpointMinScore {
				continue
			}
			east := int32(0)
			if j < n {
				east = row[j+1]
			}
			south, diag := next[j], int32(0)
			if j < n {
				diag = next[j+1]
			}
			if v > east && v > south && v > diag {
				res.Endpoints = append(res.Endpoints, Endpoint{I: rowIdx, J: j, Score: int(v)})
			}
		}
	}
	var best int32
	for i := 1; i <= m; i++ {
		cur[0] = 0
		rowBest, rowJ := swRow(prev, cur, prof.Row(s[i-1]), gap)
		if rowBest > best {
			best = rowBest
			res.BestScore, res.BestI, res.BestJ = int(rowBest), i, rowJ
		}
		if countHits {
			for j := 1; j <= n; j++ {
				if cur[j] >= thr {
					res.Hits++
				}
			}
		}
		res.Cells += int64(n)
		if collect {
			if i > 1 {
				flushEndpoints(pendIdx, pendRow, cur)
			}
			copy(pendRow, cur)
			pendIdx = i
		}
		prev, cur = cur, prev
	}
	if collect {
		// The last row has no successors; every qualifying cell that beats
		// its east neighbour is an endpoint. cur (the retired write buffer)
		// is cleared in place and reused as the all-zero successor row
		// instead of allocating a fresh one.
		clear(cur)
		flushEndpoints(pendIdx, pendRow, cur)
	}
	return res, nil
}

// Sim returns sim(s, t), the best local-alignment score, in linear space.
func Sim(s, t bio.Sequence, sc bio.Scoring) (int, error) {
	r, err := Scan(s, t, sc, ScanOptions{})
	if err != nil {
		return 0, err
	}
	return r.BestScore, nil
}

// ColumnScan computes the exact similarity column A[0..m][j] for every j
// and hands each finished column to visit (which must not retain the
// slice). It is the column-oriented kernel the pre-process strategy (§5)
// distributes over bands; kept here so tests can compare the distributed
// runs against a trusted sequential implementation. It shares the swRow
// profile kernel with Scan, with the roles of s and t swapped: the
// profile is built over s and one profile row per column character is
// consumed.
func ColumnScan(s, t bio.Sequence, sc bio.Scoring, visit func(j int, col []int32)) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	m, n := s.Len(), t.Len()
	if visit == nil {
		// Nothing observes the columns; the scan would be pure waste.
		return nil
	}
	prof := bio.NewProfile(s, sc)
	gap := int32(sc.Gap)
	prev := make([]int32, m+1)
	cur := make([]int32, m+1)
	visit(0, prev)
	for j := 1; j <= n; j++ {
		cur[0] = 0
		if m > 0 {
			swRow(prev, cur, prof.Row(t[j-1]), gap)
		}
		visit(j, cur)
		prev, cur = cur, prev
	}
	return nil
}

// String implements fmt.Stringer for quick debugging of scan results.
func (r *ScanResult) String() string {
	return fmt.Sprintf("best=%d at (%d,%d), %d endpoints, %d hits over %d cells",
		r.BestScore, r.BestI, r.BestJ, len(r.Endpoints), r.Hits, r.Cells)
}
