package align

import (
	"fmt"
	"strings"

	"genomedsm/internal/bio"
)

// RenderMatrix renders the similarity matrix as aligned text with the
// sequences on the borders, in the style of the paper's Figs. 3–4 and
// Tables 5–7. Cells where show returns false print blank — used to
// visualize the pruned "useful area" of the Section 6 method (Table 7).
// A nil show prints everything.
func (a *Matrix) RenderMatrix(show func(i, j int) bool) string {
	rows, cols := a.Dims()
	var sb strings.Builder
	// Header: the t sequence across the top.
	sb.WriteString("    ")
	for j := 1; j < cols; j++ {
		fmt.Fprintf(&sb, "%3c", a.T[j-1])
	}
	sb.WriteByte('\n')
	for i := 0; i < rows; i++ {
		if i == 0 {
			sb.WriteString(" ")
		} else {
			fmt.Fprintf(&sb, "%c", a.S[i-1])
		}
		for j := 0; j < cols; j++ {
			if show != nil && !show(i, j) {
				sb.WriteString("   ")
				continue
			}
			fmt.Fprintf(&sb, "%3d", a.Score(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ReverseExample reproduces the Section 6 worked example (Tables 5–7) for
// arbitrary inputs: it returns the detection scan result, the full
// reverse matrix (Table 6), and the same matrix restricted to the pruned
// useful area (Table 7), all as rendered text.
func ReverseExample(s, t bio.Sequence, sc bio.Scoring) (detect string, full string, pruned string, err error) {
	r, err := Scan(s, t, sc, ScanOptions{})
	if err != nil {
		return "", "", "", err
	}
	detect = fmt.Sprintf("detected alignment of score %d finishing at positions %d and %d of s and t\n",
		r.BestScore, r.BestI, r.BestJ)
	if r.BestScore <= 0 {
		return detect, "", "", nil
	}
	srev := bio.Sequence(s[:r.BestI]).Reverse()
	trev := bio.Sequence(t[:r.BestJ]).Reverse()
	// The paper's Tables 6–7 put srev across the top and trev down the
	// side; match that orientation.
	m, err := NewSWMatrix(trev, srev, sc)
	if err != nil {
		return "", "", "", err
	}
	full = m.RenderMatrix(nil)

	// The pruned area: cells reachable from the (1,1) seed without
	// crossing an intermediate zero, exactly what ReverseRetrieve
	// computes. Recompute reachability over the full matrix for display.
	rows, cols := m.Dims()
	active := make([][]bool, rows)
	for i := range active {
		active[i] = make([]bool, cols)
	}
	active[0][0] = true
	for i := 1; i < rows; i++ {
		for j := 1; j < cols; j++ {
			if m.Score(i, j) <= 0 {
				continue
			}
			if active[i-1][j-1] || active[i-1][j] || (j > 1 && active[i][j-1]) {
				active[i][j] = true
			}
		}
	}
	pruned = m.RenderMatrix(func(i, j int) bool {
		if i == 0 || j == 0 {
			return true // the zero borders are printed, as in Table 7
		}
		return active[i][j]
	})
	return detect, full, pruned, nil
}
