package align

import (
	"testing"
	"testing/quick"

	"genomedsm/internal/bio"
)

// TestPaperSection6Example reproduces the worked example of Section 6:
// running the linear scan over the two given sequences detects an
// alignment of score 6 finishing at positions 14 and 15, and the reverse
// retrieval rebuilds it.
func TestPaperSection6Example(t *testing.T) {
	s := bio.MustSequence("TCTCGACGGATTAGTATATATATA")
	tt := bio.MustSequence("ATATGATCGGAATAGCTCT")
	r, err := Scan(s, tt, sc, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.BestScore != 6 {
		t.Fatalf("best score = %d, want 6 (paper example)", r.BestScore)
	}
	if r.BestI != 14 || r.BestJ != 15 {
		t.Fatalf("best end = (%d,%d), want (14,15) (paper example)", r.BestI, r.BestJ)
	}
	al, st, err := ReverseRetrieve(s, tt, sc, r.BestI, r.BestJ, r.BestScore)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 6 || al.SEnd != 14 || al.TEnd != 15 {
		t.Errorf("retrieved %+v", al)
	}
	if err := al.Validate(s, tt, sc); err != nil {
		t.Error(err)
	}
	if st.CellsComputed >= st.FullCells {
		t.Errorf("pruning saved nothing: %d computed of %d", st.CellsComputed, st.FullCells)
	}
}

// TestObservation61 checks the paper's Observation 6.1 directly: if an
// alignment of score k finishes at (i, j) in (s, t), an alignment of the
// same score starts at (n−i+1, m−j+1) in the reverses — equivalently, the
// alignment mapped by Alignment.Reverse is valid on the reversed
// sequences.
func TestObservation61(t *testing.T) {
	f := func(rawS, rawT []byte) bool {
		s, tt := seqPair(rawS, rawT)
		if s.Len() == 0 || tt.Len() == 0 {
			return true
		}
		al, err := BestLocal(s, tt, sc)
		if err != nil || al.Score == 0 {
			return err == nil
		}
		rev := al.Reverse(s.Len(), tt.Len())
		if rev.Score != al.Score {
			return false
		}
		if rev.SBegin != s.Len()-al.SEnd+1 || rev.TBegin != tt.Len()-al.TEnd+1 {
			return false
		}
		return rev.Validate(s.Reverse(), tt.Reverse(), sc) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBestLocalLinearMatchesFullMatrix(t *testing.T) {
	f := func(rawS, rawT []byte) bool {
		s, tt := seqPair(rawS, rawT)
		full, err := BestLocal(s, tt, sc)
		if err != nil {
			return len(s) == 0 || len(tt) == 0
		}
		if full.Score == 0 {
			return true // nothing to retrieve
		}
		lin, _, err := BestLocalLinear(s, tt, sc)
		if err != nil {
			return false
		}
		return lin.Score == full.Score && lin.Validate(s, tt, sc) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseRetrieveOnPlantedMotif(t *testing.T) {
	g := bio.NewGenerator(53)
	motif := g.Random(60)
	s := concat(g.Random(200), motif, g.Random(150))
	tt := concat(g.Random(100), g.MutatedCopy(motif, bio.MutationModel{SubstitutionRate: 0.05}), g.Random(250))
	al, st, err := BestLocalLinear(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.Validate(s, tt, sc); err != nil {
		t.Fatal(err)
	}
	if al.Score < 40 {
		t.Errorf("planted motif retrieved with score %d", al.Score)
	}
	// The useful area must be a small fraction of the naive reverse
	// computation: the alignment is ~60 long but ends ~260 deep in s.
	if frac := st.UsefulFraction(); frac > 0.5 {
		t.Errorf("useful fraction %.2f, expected substantial pruning", frac)
	}
}

func TestReverseRetrieveMinimalLength(t *testing.T) {
	// s contains the motif twice back to back; the alignment of score
	// |motif| ending at the second copy must span only that copy
	// (minimal length), not both.
	motif := bio.MustSequence("ACGGTACGGTTACGAGT") // 17 bases
	s := concat(motif, motif)
	al, _, err := ReverseRetrieve(s, motif, sc, s.Len(), motif.Len(), motif.Len())
	if err != nil {
		t.Fatal(err)
	}
	if al.Length() != motif.Len() {
		t.Errorf("retrieved alignment length %d, want minimal %d", al.Length(), motif.Len())
	}
	if al.SBegin != motif.Len()+1 {
		t.Errorf("alignment begins at s[%d], want %d", al.SBegin, motif.Len()+1)
	}
	if err := al.Validate(s, motif, sc); err != nil {
		t.Error(err)
	}
}

func TestReverseRetrieveErrors(t *testing.T) {
	s := bio.MustSequence("ACGT")
	tt := bio.MustSequence("ACGT")
	if _, _, err := ReverseRetrieve(s, tt, sc, 0, 1, 1); err == nil {
		t.Error("out-of-range endI accepted")
	}
	if _, _, err := ReverseRetrieve(s, tt, sc, 1, 5, 1); err == nil {
		t.Error("out-of-range endJ accepted")
	}
	if _, _, err := ReverseRetrieve(s, tt, sc, 4, 4, 0); err == nil {
		t.Error("non-positive score accepted")
	}
	// Score 10 is impossible for 4-base sequences.
	if _, _, err := ReverseRetrieve(s, tt, sc, 4, 4, 10); err == nil {
		t.Error("impossible target score accepted")
	}
	// Position with no alignment of the requested score.
	if _, _, err := ReverseRetrieve(bio.MustSequence("AAAA"), bio.MustSequence("CCCC"), sc, 4, 4, 3); err == nil {
		t.Error("retrieval at dissimilar position accepted")
	}
	if _, _, err := BestLocalLinear(bio.MustSequence("AAAA"), bio.MustSequence("CCCC"), sc); err == nil {
		t.Error("BestLocalLinear with no positive alignment accepted")
	}
}

func TestRetrieveAll(t *testing.T) {
	g := bio.NewGenerator(59)
	m1, m2 := g.Random(40), g.Random(35)
	s := concat(g.Random(80), m1, g.Random(90), m2, g.Random(60))
	tt := concat(g.Random(50), m2, g.Random(100), m1, g.Random(70))
	r, err := Scan(s, tt, sc, ScanOptions{EndpointMinScore: 25})
	if err != nil {
		t.Fatal(err)
	}
	als, st, err := RetrieveAll(s, tt, sc, r.Endpoints)
	if err != nil {
		t.Fatal(err)
	}
	if len(als) < 2 {
		t.Fatalf("retrieved %d alignments, want >= 2", len(als))
	}
	for i, a := range als {
		if err := a.Validate(s, tt, sc); err != nil {
			t.Errorf("alignment %d: %v", i, err)
		}
		if a.Score < 25 {
			t.Errorf("alignment %d score %d below threshold", i, a.Score)
		}
	}
	if st.CellsComputed == 0 {
		t.Error("stats not accumulated")
	}
}

// TestEq3WorstCaseBound exercises Eq. (3)'s worst-case analysis: even for
// a full-length alignment (n' = n, the worst case for the useful area),
// the pruned computation must stay under ~2/3 of the matrix plus
// lower-order terms — the paper derives that at least 2/3·n'² − n' cells
// are unnecessary, i.e. necessary space ≈ 1/3 before rounding ("roughly
// 30%").
func TestEq3WorstCaseBound(t *testing.T) {
	g := bio.NewGenerator(61)
	s := g.Random(400)
	// t = s makes the whole-diagonal alignment the best one, so n' = n
	// and the useful area is maximal.
	r, err := Scan(s, s, sc, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := ReverseRetrieve(s, s, sc, r.BestI, r.BestJ, r.BestScore)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(s.Len())
	bound := n*n/3 + 3*n // necessary area per Eq. (3), plus slack for borders
	if float64(st.CellsComputed) > bound {
		t.Errorf("computed %d cells, Eq. (3) bound %.0f", st.CellsComputed, bound)
	}
	if frac := st.UsefulFraction(); frac > 0.36 {
		t.Errorf("worst-case useful fraction %.3f, paper says ~0.30", frac)
	}
}

// TestRetrieverArenaTrim pins the high-water trim: a single giant
// retrieval must not pin its arena for the lifetime of the Retriever.
// After enough small retrievals to roll through a full observation
// window, the arena capacity must drop back near the small workload's
// needs instead of staying at the giant one's.
func TestRetrieverArenaTrim(t *testing.T) {
	g := bio.NewGenerator(77)
	big := g.Random(1500)
	small := g.Random(80)

	var rt Retriever
	retrieve := func(s, tt bio.Sequence) {
		t.Helper()
		r, err := Scan(s, tt, sc, ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		al, _, err := rt.ReverseRetrieve(s, tt, sc, r.BestI, r.BestJ, r.BestScore)
		if err != nil {
			t.Fatal(err)
		}
		if al.Score != r.BestScore {
			t.Fatalf("retrieved score %d, want %d", al.Score, r.BestScore)
		}
	}

	// The identity pair maximizes the useful area, so the arena balloons.
	retrieve(big, big)
	bigCap := cap(rt.vals)
	if bigCap <= arenaTrimMinCap {
		t.Fatalf("giant retrieval only grew the arena to %d, test needs > %d", bigCap, arenaTrimMinCap)
	}

	// Two full windows of small retrievals: the first window's high-water
	// mark still sees the giant residue, the second one is all-small and
	// must fire the trim.
	for i := 0; i < 2*arenaTrimWindow+1; i++ {
		retrieve(small, small)
	}
	if c := cap(rt.vals); c >= bigCap {
		t.Errorf("arena capacity %d never shrank from %d after %d small retrievals",
			c, bigCap, 2*arenaTrimWindow+1)
	}
	if c := cap(rt.rows); c > 4*small.Len()+arenaTrimMinCap {
		t.Errorf("row arena capacity %d not trimmed for %d-base retrievals", c, small.Len())
	}

	// Trimming must never break correctness: mixed sizes keep retrieving
	// the exact score (checked inside retrieve).
	for i := 0; i < arenaTrimWindow; i++ {
		if i%3 == 0 {
			retrieve(big[:400], big[:400])
		} else {
			retrieve(small, small)
		}
	}
}
