package align

import (
	"testing"
	"testing/quick"

	"genomedsm/internal/bio"
)

var affine = AffineScoring{Match: 2, Mismatch: -1, GapOpen: -3, GapExtend: -1}

func TestAffineScoringValidate(t *testing.T) {
	if err := affine.Validate(); err != nil {
		t.Errorf("valid scheme rejected: %v", err)
	}
	bad := []AffineScoring{
		{Match: 0, Mismatch: -1, GapOpen: -1, GapExtend: -1},
		{Match: 1, Mismatch: 1, GapOpen: -1, GapExtend: -1},
		{Match: 1, Mismatch: -1, GapOpen: 1, GapExtend: -1},
		{Match: 1, Mismatch: -1, GapOpen: -1, GapExtend: 0},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scheme %d accepted: %+v", i, sc)
		}
	}
}

func TestAffineIdentical(t *testing.T) {
	s := bio.MustSequence("ACGTACGTAC")
	al, err := BestLocalAffine(s, s, affine)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 20 { // 10 matches × 2
		t.Errorf("self score %d, want 20", al.Score)
	}
	if err := al.ValidateAffine(s, s, affine); err != nil {
		t.Error(err)
	}
}

func TestAffinePrefersOneLongGap(t *testing.T) {
	// Affine penalties should bridge a single 4-base insertion rather
	// than fragment the alignment: gap cost = open + 4·extend = −7 <
	// losing 5 matches.
	g := bio.NewGenerator(601)
	left, right := g.Random(20), g.Random(20)
	s := concat(left, right)
	tt := concat(left, bio.MustSequence("ACGT"), right)
	al, err := BestLocalAffine(s, tt, affine)
	if err != nil {
		t.Fatal(err)
	}
	if err := al.ValidateAffine(s, tt, affine); err != nil {
		t.Fatal(err)
	}
	m, _, gaps := al.Counts()
	if m != 40 || gaps != 4 {
		t.Errorf("matches %d gaps %d, want 40 matched bases bridged by a 4-gap", m, gaps)
	}
	if want := 40*2 - 3 - 4; al.Score != want {
		t.Errorf("score %d, want %d", al.Score, want)
	}
}

func TestAffineEqualsLinearWhenOpenIsZero(t *testing.T) {
	zeroOpen := AffineScoring{Match: 1, Mismatch: -1, GapOpen: 0, GapExtend: -2}
	f := func(rawS, rawT []byte) bool {
		s, tt := seqPair(rawS, rawT)
		aff, err := BestLocalAffine(s, tt, zeroOpen)
		if err != nil {
			return false
		}
		lin, err := Sim(s, tt, zeroOpen.Linear())
		if err != nil {
			return false
		}
		return aff.Score == lin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAffineNeverBeatsItsOwnValidation(t *testing.T) {
	f := func(rawS, rawT []byte) bool {
		s, tt := seqPair(rawS, rawT)
		al, err := BestLocalAffine(s, tt, affine)
		if err != nil {
			return false
		}
		if al.Score == 0 {
			return true
		}
		return al.ValidateAffine(s, tt, affine) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAffineNoSimilarity(t *testing.T) {
	al, err := BestLocalAffine(bio.MustSequence("AAAA"), bio.MustSequence("CCCC"), affine)
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 0 || al.Length() != 0 {
		t.Errorf("dissimilar inputs: %+v", al)
	}
}

func TestAffineRejectsBadInput(t *testing.T) {
	if _, err := BestLocalAffine(bio.MustSequence("A"), bio.MustSequence("A"), AffineScoring{}); err == nil {
		t.Error("invalid scheme accepted")
	}
}
