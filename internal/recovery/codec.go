package recovery

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// codecVersion is bumped whenever the checkpoint wire format changes; a
// Reader rejects blobs from another version instead of mis-decoding them.
const codecVersion = 1

// Writer builds one checkpoint blob: a version byte, a length-prefixed
// value stream, and a trailing FNV-1a checksum. The caller appends typed
// values in order; the matching Reader must consume them in the same
// order (the codec is positional, like encoding/gob without the schema).
type Writer struct {
	buf []byte
}

// NewWriter starts an empty checkpoint blob.
func NewWriter() *Writer {
	return &Writer{buf: []byte{codecVersion}}
}

// Uint appends an unsigned integer (uvarint).
func (w *Writer) Uint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Int appends a signed integer (varint).
func (w *Writer) Int(v int) {
	w.buf = binary.AppendVarint(w.buf, int64(v))
}

// Int64 appends a signed 64-bit integer (varint).
func (w *Writer) Int64(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Float appends a float64 (IEEE-754 bits).
func (w *Writer) Float(v float64) {
	w.buf = binary.AppendUvarint(w.buf, math.Float64bits(v))
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Int32s appends a length-prefixed slice of int32 values.
func (w *Writer) Int32s(vs []int32) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(vs)))
	for _, v := range vs {
		w.buf = binary.AppendVarint(w.buf, int64(v))
	}
}

// Int64s appends a length-prefixed slice of int64 values.
func (w *Writer) Int64s(vs []int64) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(vs)))
	for _, v := range vs {
		w.buf = binary.AppendVarint(w.buf, v)
	}
}

// Finish seals the blob with its checksum and returns it. The Writer
// must not be reused afterwards.
func (w *Writer) Finish() []byte {
	h := fnv.New64a()
	h.Write(w.buf) //nolint:errcheck // fnv never errors
	w.buf = h.Sum(w.buf)
	return w.buf
}

// Len returns the current payload size in bytes (before the checksum).
func (w *Writer) Len() int { return len(w.buf) }

// Reader decodes a blob produced by Writer. Decoding errors are sticky:
// the first failure poisons the Reader, later reads return zero values,
// and Err reports what went wrong — callers check once at the end.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader verifies the blob's checksum and version and positions a
// Reader at its first value.
func NewReader(blob []byte) (*Reader, error) {
	if len(blob) < 1+8 {
		return nil, fmt.Errorf("recovery: checkpoint blob of %d bytes is truncated", len(blob))
	}
	payload, sum := blob[:len(blob)-8], blob[len(blob)-8:]
	h := fnv.New64a()
	h.Write(payload) //nolint:errcheck // fnv never errors
	if string(h.Sum(nil)) != string(sum) {
		return nil, fmt.Errorf("recovery: checkpoint checksum mismatch (%d-byte blob corrupt)", len(blob))
	}
	if payload[0] != codecVersion {
		return nil, fmt.Errorf("recovery: checkpoint codec version %d, want %d", payload[0], codecVersion)
	}
	return &Reader{buf: payload, pos: 1}, nil
}

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("recovery: checkpoint truncated or out of sync decoding %s at byte %d", what, r.pos)
	}
}

func (r *Reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.pos += n
	return v
}

func (r *Reader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.pos += n
	return v
}

// Uint reads an unsigned integer.
func (r *Reader) Uint() uint64 { return r.uvarint("uint") }

// Int reads a signed integer.
func (r *Reader) Int() int { return int(r.varint("int")) }

// Int64 reads a signed 64-bit integer.
func (r *Reader) Int64() int64 { return r.varint("int64") }

// Float reads a float64.
func (r *Reader) Float() float64 { return math.Float64frombits(r.uvarint("float")) }

// Bytes reads a length-prefixed byte string (aliasing the blob).
func (r *Reader) Bytes() []byte {
	n := int(r.uvarint("bytes length"))
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail("bytes")
		return nil
	}
	out := r.buf[r.pos : r.pos+n]
	r.pos += n
	return out
}

// Int32s reads a length-prefixed slice of int32 values.
func (r *Reader) Int32s() []int32 {
	n := int(r.uvarint("int32s length"))
	if r.err != nil || n < 0 || n > len(r.buf)-r.pos {
		r.fail("int32s")
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.varint("int32"))
	}
	return out
}

// Int64s reads a length-prefixed slice of int64 values.
func (r *Reader) Int64s() []int64 {
	n := int(r.uvarint("int64s length"))
	if r.err != nil || n < 0 || n > len(r.buf)-r.pos {
		r.fail("int64s")
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.varint("int64")
	}
	return out
}
