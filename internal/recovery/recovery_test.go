package recovery

import (
	"math"
	"testing"
)

// TestBackoffSchedule pins the capped-exponential shape: each case lists
// the un-jittered delays expected per attempt.
func TestBackoffSchedule(t *testing.T) {
	cases := []struct {
		name string
		b    Backoff
		want []float64 // per attempt 0, 1, 2, ...
	}{
		{
			name: "doubling to cap",
			b:    Backoff{Base: 1e-3, Factor: 2, Cap: 8e-3},
			want: []float64{1e-3, 2e-3, 4e-3, 8e-3, 8e-3, 8e-3},
		},
		{
			name: "factor below one clamps to constant",
			b:    Backoff{Base: 2e-3, Factor: 0.5, Cap: 8e-3},
			want: []float64{2e-3, 2e-3, 2e-3},
		},
		{
			name: "no cap grows unbounded",
			b:    Backoff{Base: 1e-3, Factor: 3},
			want: []float64{1e-3, 3e-3, 9e-3, 27e-3},
		},
		{
			name: "base above cap clamps immediately",
			b:    Backoff{Base: 5e-3, Factor: 2, Cap: 2e-3},
			want: []float64{2e-3, 2e-3},
		},
		{
			name: "zero base disables retries",
			b:    Backoff{Factor: 2, Cap: 8e-3, Jitter: 0.5, Seed: 7},
			want: []float64{0, 0, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for attempt, want := range tc.want {
				got := tc.b.Delay(42, attempt)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("attempt %d: delay %g, want %g", attempt, got, want)
				}
			}
		})
	}
}

// TestBackoffJitterDeterminism: jitter is a pure function of (seed, key,
// attempt) — equal inputs replay identical delays, different seeds or
// keys spread, and every jittered delay stays inside [d, d·(1+Jitter)].
func TestBackoffJitterDeterminism(t *testing.T) {
	b := Backoff{Base: 1e-3, Factor: 2, Cap: 8e-3, Jitter: 0.25, Seed: 99}
	for attempt := 0; attempt < 6; attempt++ {
		for key := uint64(0); key < 16; key++ {
			d1 := b.Delay(key, attempt)
			d2 := b.Delay(key, attempt)
			if d1 != d2 {
				t.Fatalf("delay(key=%d, attempt=%d) not deterministic: %g vs %g", key, attempt, d1, d2)
			}
			base := Backoff{Base: b.Base, Factor: b.Factor, Cap: b.Cap}.Delay(key, attempt)
			if d1 < base || d1 > base*(1+b.Jitter) {
				t.Fatalf("delay(key=%d, attempt=%d) = %g outside [%g, %g]", key, attempt, d1, base, base*(1+b.Jitter))
			}
		}
	}
	other := b
	other.Seed = 100
	same := 0
	for key := uint64(0); key < 32; key++ {
		if b.Delay(key, 1) == other.Delay(key, 1) {
			same++
		}
	}
	if same == 32 {
		t.Fatalf("changing the seed left all 32 jittered delays identical")
	}
}

func TestParseKill(t *testing.T) {
	cases := []struct {
		spec    string
		want    Kill
		wantErr bool
	}{
		{spec: "1@3", want: Kill{Node: 1, Point: 3}},
		{spec: "0@1", want: Kill{Node: 0, Point: 1}},
		{spec: " 2@5+0.05 ", want: Kill{Node: 2, Point: 5, After: 0.05}},
		{spec: "3", wantErr: true},
		{spec: "x@3", wantErr: true},
		{spec: "1@0", wantErr: true}, // points are 1-based
		{spec: "1@-2", wantErr: true},
		{spec: "1@2+-1", wantErr: true},
		{spec: "1@two", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseKill(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseKill(%q) = %+v, want error", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseKill(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseKill(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		back, err := ParseKill(got.String())
		if err != nil || back != got {
			t.Errorf("ParseKill(%q).String() = %q does not round-trip: %+v, %v", tc.spec, got.String(), back, err)
		}
	}
}

func TestParseKills(t *testing.T) {
	ks, err := ParseKills(" 1@3, 0@2+0.01 ")
	if err != nil {
		t.Fatalf("ParseKills: %v", err)
	}
	want := []Kill{{Node: 1, Point: 3}, {Node: 0, Point: 2, After: 0.01}}
	if len(ks) != len(want) || ks[0] != want[0] || ks[1] != want[1] {
		t.Fatalf("ParseKills = %+v, want %+v", ks, want)
	}
	if ks, err := ParseKills(""); err != nil || ks != nil {
		t.Fatalf("ParseKills(\"\") = %+v, %v; want nil, nil", ks, err)
	}
	if _, err := ParseKills("1@1,bogus"); err == nil {
		t.Fatalf("ParseKills with a bad element did not error")
	}
}

func TestParamsWithDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.Lease <= 0 || p.HeartbeatEvery <= 0 || p.RestartDelay <= 0 || p.Retry.Base <= 0 {
		t.Fatalf("WithDefaults left zero fields: %+v", p)
	}
	custom := Params{Lease: 1e-3, HeartbeatEvery: 5, RestartDelay: 2e-3,
		Retry: Backoff{Base: 1e-4, Factor: 2, Cap: 1e-3}}.WithDefaults()
	if custom.Lease != 1e-3 || custom.HeartbeatEvery != 5 || custom.RestartDelay != 2e-3 || custom.Retry.Base != 1e-4 {
		t.Fatalf("WithDefaults overrode explicit values: %+v", custom)
	}
	// A seed set without a schedule survives the default fill.
	seeded := Params{Retry: Backoff{Seed: 77}}.WithDefaults()
	if seeded.Retry.Seed != 77 || seeded.Retry.Base != DefaultBackoff().Base {
		t.Fatalf("WithDefaults dropped the retry seed: %+v", seeded.Retry)
	}
}
