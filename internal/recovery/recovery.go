// Package recovery holds the crash-fault-tolerance primitives shared by
// the cluster and dsm layers: crash-stop fault specifications, the
// retransmission backoff schedule, the failure-detector / recovery
// parameters, and a checksummed checkpoint codec (codec.go).
//
// The package is deliberately dependency-free (standard library only) so
// internal/cluster can expose these types on its chaos hooks without an
// upward dependency on the protocol layers that implement them.
package recovery

import (
	"fmt"
	"strconv"
	"strings"
)

// Kill is one scheduled crash-stop fault: node Node crashes at its
// Point-th recovery point (1-based). Recovery points are the checkpoint
// boundaries of the running strategy — a row boundary in the non-blocked
// wavefront, a tile boundary in the blocked wavefront, a chunk boundary
// in the pre-process strategy, a job boundary in phase 2 — so a crash
// always lands where a checkpoint has just been persisted and volatile
// state (the page cache, twins, pending notices) can be discarded
// without losing committed work.
type Kill struct {
	// Node is the victim node id.
	Node int
	// Point is the 1-based recovery point at which the node dies. Points
	// are counted per node across its whole lifetime, so a point survives
	// a restart and each Kill fires at most once.
	Point int
	// After is extra virtual seconds added to the recovery manager's
	// restart delay before the node comes back (the "optional restart
	// after d" of a kill schedule). Zero restarts after the default
	// delay.
	After float64
}

// String renders the kill in the CLI's spec syntax.
func (k Kill) String() string {
	if k.After > 0 {
		return fmt.Sprintf("%d@%d+%g", k.Node, k.Point, k.After)
	}
	return fmt.Sprintf("%d@%d", k.Node, k.Point)
}

// ParseKill parses one kill spec of the form "node@point" or
// "node@point+delay", e.g. "1@3" (kill node 1 at its 3rd recovery point)
// or "1@3+0.05" (same, restart 50 virtual ms later than the default).
func ParseKill(spec string) (Kill, error) {
	var k Kill
	node, rest, ok := strings.Cut(spec, "@")
	if !ok {
		return k, fmt.Errorf("recovery: kill spec %q: want node@point[+delay]", spec)
	}
	point, delay, hasDelay := strings.Cut(rest, "+")
	var err error
	if k.Node, err = strconv.Atoi(strings.TrimSpace(node)); err != nil || k.Node < 0 {
		return k, fmt.Errorf("recovery: kill spec %q: bad node %q", spec, node)
	}
	if k.Point, err = strconv.Atoi(strings.TrimSpace(point)); err != nil || k.Point < 1 {
		return k, fmt.Errorf("recovery: kill spec %q: bad recovery point %q (1-based)", spec, point)
	}
	if hasDelay {
		if k.After, err = strconv.ParseFloat(strings.TrimSpace(delay), 64); err != nil || k.After < 0 {
			return k, fmt.Errorf("recovery: kill spec %q: bad restart delay %q", spec, delay)
		}
	}
	return k, nil
}

// ParseKills parses a comma-separated list of kill specs.
func ParseKills(specs string) ([]Kill, error) {
	specs = strings.TrimSpace(specs)
	if specs == "" {
		return nil, nil
	}
	var out []Kill
	for _, spec := range strings.Split(specs, ",") {
		k, err := ParseKill(strings.TrimSpace(spec))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// Backoff is a capped exponential retransmission schedule with seeded
// jitter: attempt a (0-based) waits min(Cap, Base·Factor^a) plus a
// deterministic jitter fraction. The jitter is a pure function of (Seed,
// key, attempt), so a replayed run charges identical timeouts.
type Backoff struct {
	Base   float64 // first retransmission timeout, virtual seconds
	Factor float64 // multiplier per attempt (>= 1)
	Cap    float64 // ceiling on the un-jittered delay
	Jitter float64 // fraction of the delay added as jitter in [0, Jitter)
	Seed   int64   // jitter seed; runs with equal seeds replay identically
}

// DefaultBackoff returns a schedule on the scale of the calibrated 2005
// network: the first timeout covers a few round trips (~1 ms), doubling
// up to an 8 ms cap with 25% jitter.
func DefaultBackoff() Backoff {
	return Backoff{Base: 1e-3, Factor: 2, Cap: 8e-3, Jitter: 0.25, Seed: 1}
}

// Delay returns the virtual seconds waited before retransmission
// attempt (0-based) of the message identified by key.
func (b Backoff) Delay(key uint64, attempt int) float64 {
	if b.Base <= 0 {
		return 0
	}
	d := b.Base
	f := b.Factor
	if f < 1 {
		f = 1
	}
	for a := 0; a < attempt; a++ {
		d *= f
		if b.Cap > 0 && d >= b.Cap {
			d = b.Cap
			break
		}
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	if b.Jitter > 0 {
		u := float64(hash64(uint64(b.Seed), key, uint64(attempt))>>11) / float64(1<<53)
		d += d * b.Jitter * u
	}
	return d
}

// Params bundles the failure-detector and recovery-manager parameters a
// run uses. The zero value means "defaults" everywhere; WithDefaults
// resolves them.
type Params struct {
	// Lease is the heartbeat lease: a crash is confirmed when a node's
	// lease expires, so detection charges this much virtual time.
	Lease float64
	// HeartbeatEvery is how many protocol operations pass between
	// heartbeats a node sends to its lease holder.
	HeartbeatEvery int
	// RestartDelay is the virtual seconds between crash confirmation and
	// the node rejoining (process restart + DSM re-initialization).
	RestartDelay float64
	// Retry is the retransmission backoff schedule for lost messages.
	Retry Backoff
	// ForceCheckpoints enables the checkpoint facility even when no
	// crash is scheduled, so checkpoint round-trips can be exercised and
	// costed on their own.
	ForceCheckpoints bool
}

// WithDefaults fills every unset field with the calibrated default:
// a 5 ms lease (vs ~150 µs message latency), a heartbeat every 32
// protocol operations, a 10 ms restart, and DefaultBackoff retries.
func (p Params) WithDefaults() Params {
	if p.Lease <= 0 {
		p.Lease = 5e-3
	}
	if p.HeartbeatEvery <= 0 {
		p.HeartbeatEvery = 32
	}
	if p.RestartDelay <= 0 {
		p.RestartDelay = 10e-3
	}
	if p.Retry.Base <= 0 {
		seed := p.Retry.Seed
		p.Retry = DefaultBackoff()
		if seed != 0 {
			p.Retry.Seed = seed
		}
	}
	return p
}

// hash64 is a splitmix64-style finalizer over a word sequence; it is the
// package's only source of (deterministic) randomness.
func hash64(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}
