package recovery

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Int(-42)
	w.Int(0)
	w.Uint(1 << 60)
	w.Int64(-1 << 40)
	w.Float(3.141592653589793)
	w.Bytes([]byte("border row"))
	w.Bytes(nil)
	w.Int32s([]int32{-1, 0, 2147483647, -2147483648})
	w.Int64s([]int64{9, -9, 1 << 50})
	blob := w.Finish()

	r, err := NewReader(blob)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if got := r.Int(); got != -42 {
		t.Errorf("Int = %d, want -42", got)
	}
	if got := r.Int(); got != 0 {
		t.Errorf("Int = %d, want 0", got)
	}
	if got := r.Uint(); got != 1<<60 {
		t.Errorf("Uint = %d", got)
	}
	if got := r.Int64(); got != -1<<40 {
		t.Errorf("Int64 = %d", got)
	}
	if got := r.Float(); got != 3.141592653589793 {
		t.Errorf("Float = %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte("border row")) {
		t.Errorf("Bytes = %q", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Errorf("empty Bytes = %q", got)
	}
	i32 := r.Int32s()
	if len(i32) != 4 || i32[0] != -1 || i32[2] != 2147483647 || i32[3] != -2147483648 {
		t.Errorf("Int32s = %v", i32)
	}
	i64 := r.Int64s()
	if len(i64) != 3 || i64[2] != 1<<50 {
		t.Errorf("Int64s = %v", i64)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err after clean decode: %v", err)
	}
}

// TestCodecCorruption: any single flipped bit fails the checksum, and a
// truncated or over-read blob surfaces a sticky error instead of
// garbage.
func TestCodecCorruption(t *testing.T) {
	w := NewWriter()
	w.Int(7)
	w.Bytes([]byte{1, 2, 3})
	blob := w.Finish()

	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, err := NewReader(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	if _, err := NewReader(blob[:5]); err == nil {
		t.Fatalf("truncated blob went undetected")
	}
	if _, err := NewReader(nil); err == nil {
		t.Fatalf("nil blob went undetected")
	}

	r, err := NewReader(blob)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	_ = r.Int()
	_ = r.Bytes()
	_ = r.Int() // over-read: one value past the end
	if r.Err() == nil {
		t.Fatalf("over-read did not poison the reader")
	}
	if got := r.Int(); got != 0 {
		t.Fatalf("poisoned reader returned %d, want 0", got)
	}
}

// TestCodecVersion: a future-format blob is rejected, not mis-decoded.
func TestCodecVersion(t *testing.T) {
	w := NewWriter()
	w.Int(1)
	blob := w.Finish()
	// A re-checksummed blob with a bumped version byte must fail on
	// version, proving the check is separate from corruption detection.
	bad := append([]byte(nil), blob[:len(blob)-8]...)
	bad[0] = codecVersion + 1
	w2 := &Writer{buf: bad}
	if _, err := NewReader(w2.Finish()); err == nil {
		t.Fatalf("version mismatch went undetected")
	}
}

// TestCodecGoldenBlob pins the wire format byte for byte: a checkpoint
// written by any build of this codec version must produce exactly this
// blob, so checkpoints replay across runs and the encoding cannot drift
// silently.
func TestCodecGoldenBlob(t *testing.T) {
	w := NewWriter()
	w.Int(9)   // points
	w.Uint(17) // syncSeq
	w.Int(1)   // one diffSeq entry
	w.Int(3)   // pid
	w.Uint(5)  // seq
	w.Int32s([]int32{1, -2, 3})
	w.Float(0.25)
	w.Bytes([]byte("row"))
	blob := w.Finish()

	const golden = "0112110206050302030680808080808080e83f03726f77bce6074751da53a6"
	if got := hex.EncodeToString(blob); got != golden {
		t.Fatalf("checkpoint blob drifted from the golden encoding:\n got %s\nwant %s", got, golden)
	}
	r, err := NewReader(blob)
	if err != nil {
		t.Fatal(err)
	}
	if r.Int() != 9 || r.Uint() != 17 || r.Int() != 1 || r.Int() != 3 || r.Uint() != 5 {
		t.Fatal("golden blob header did not decode to its inputs")
	}
	cells := r.Int32s()
	if len(cells) != 3 || cells[0] != 1 || cells[1] != -2 || cells[2] != 3 {
		t.Fatalf("golden blob cells = %v", cells)
	}
	if r.Float() != 0.25 || string(r.Bytes()) != "row" {
		t.Fatal("golden blob tail did not decode to its inputs")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}
