package wavefront

import (
	"fmt"

	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/heuristics"
	"genomedsm/internal/recovery"
)

// BlockConfig controls strategy 2's decomposition: the similarity matrix
// is divided into Bands (sets of rows, assigned to processors round-robin)
// and each band into Blocks (sets of columns). The horizontal block-row
// crossing a band boundary is the unit of communication (Fig. 11).
type BlockConfig struct {
	Bands  int
	Blocks int
}

// MultiplierConfig builds the paper's blocking-multiplier notation: an
// a×b multiplier for P processors divides the matrix into b·P bands, each
// containing a·P blocks ("a 3 × 5 blocking multiplier for 8 processors
// divides the matrix into 40 bands (5 × 8), each one containing 24 blocks
// (3 × 8)", §4.3.1).
func MultiplierConfig(a, b, nprocs int) BlockConfig {
	return BlockConfig{Bands: b * nprocs, Blocks: a * nprocs}
}

// Validate checks the configuration against the matrix dimensions.
func (bc BlockConfig) Validate(m, n int) error {
	if bc.Bands < 1 || bc.Blocks < 1 {
		return fmt.Errorf("wavefront: need at least 1 band and 1 block, got %d×%d", bc.Bands, bc.Blocks)
	}
	if bc.Bands > m {
		return fmt.Errorf("wavefront: %d bands for %d rows", bc.Bands, m)
	}
	if bc.Blocks > n {
		return fmt.Errorf("wavefront: %d blocks for %d columns", bc.Blocks, n)
	}
	return nil
}

// RunBlocked executes strategy 2 (§4.3): bands are assigned round-robin
// (processor p owns bands p, p+P, …); each processor processes its bands
// in order, block by block, waiting for the bottom block-row of the band
// above before computing a block and passing its own bottom block-row to
// the band below when done.
//
// Each band boundary owns a full shared border row (written segment by
// segment as blocks complete, as the paper's horizontal double lines in
// Fig. 11 suggest): a bounded per-boundary buffer can deadlock the
// pipeline, because the producer of band b+1 may fill it while its
// consumer is still helping drain boundary b.
func RunBlocked(nprocs int, cfg cluster.Config, s, t bio.Sequence, sc bio.Scoring, p heuristics.Params, bc BlockConfig) (*Result, error) {
	m, n := s.Len(), t.Len()
	if nprocs < 1 {
		return nil, fmt.Errorf("wavefront: nprocs %d", nprocs)
	}
	if m == 0 || n == 0 {
		return &Result{}, nil
	}
	if err := bc.Validate(m, n); err != nil {
		return nil, err
	}
	kern, err := heuristics.NewKernel(s, t, sc, p)
	if err != nil {
		return nil, err
	}
	sys, err := dsm.NewSystem(nprocs, cfg, dsm.Options{
		CondVars: bc.Bands + 2,
		Locks:    4,
	})
	if err != nil {
		return nil, err
	}

	// One full border row per band boundary, homed at the producer (the
	// owner of the upper band). Segment for block k lives at column
	// offset (c0−1)·CellBytes.
	slots := make([]dsm.Region, bc.Bands-1)
	for b := range slots {
		if slots[b], err = sys.AllocAt(n*heuristics.CellBytes, b%nprocs); err != nil {
			return nil, err
		}
	}
	results, err := sys.AllocAt(8+defaultMaxCandidates*candidateBytes, 0)
	if err != nil {
		return nil, err
	}
	// dataCV(b) is signalled once per completed block segment of boundary
	// b; the consumer waits once per block, in order (signals are sticky
	// and FIFO).
	dataCV := func(b int) int { return b }

	bandRows := func(b int) (int, int) { return b*m/bc.Bands + 1, (b + 1) * m / bc.Bands }
	blockCols := func(k int) (int, int) { return k*n/bc.Blocks + 1, (k + 1) * n / bc.Blocks }
	maxBlockWidth := 0
	for k := 0; k < bc.Blocks; k++ {
		c0, c1 := blockCols(k)
		if w := c1 - c0 + 1; w > maxBlockWidth {
			maxBlockWidth = w
		}
	}
	maxBandHeight := 0
	for b := 0; b < bc.Bands; b++ {
		r0, r1 := bandRows(b)
		if h := r1 - r0 + 1; h > maxBandHeight {
			maxBandHeight = h
		}
	}

	var out *Result
	err = sys.Run(func(node *dsm.Node) error {
		id := node.ID()
		var q heuristics.Queue
		emit := q.Add
		buf := make([]byte, maxBlockWidth*heuristics.CellBytes)
		// Row and column buffers are sized once per node for the largest
		// band/block and resliced per tile; a band or tile boundary resets
		// their contents, never their backing arrays.
		rightColBuf := make([]heuristics.Cell, maxBandHeight)
		prev := make([]heuristics.Cell, maxBlockWidth+1)
		cur := make([]heuristics.Cell, maxBlockWidth+1)
		top := make([]heuristics.Cell, maxBlockWidth)

		// The owner of the last band accumulates row m's cells so they can
		// be flushed left-to-right after the whole row exists — exactly
		// when the sequential scan flushes them. Flushing per tile would
		// mutate state that still flows east into the next tile.
		var lastRow []heuristics.Cell

		// Crash recovery: resume from the checkpointed tile cursor. A
		// mid-band checkpoint also carries the band's right column and
		// corner cell (the carried state a tile needs from its western
		// neighbour); the boundary-row CV handshake state survives at the
		// managers, so consumption continues where it stopped.
		firstBand, firstBlk := id, 0
		var resumeRight []heuristics.Cell
		var resumeCorner heuristics.Cell
		if ck := node.Restored(); ck != nil {
			firstBand = ck.Int()
			firstBlk = ck.Int()
			if firstBlk > 0 {
				resumeRight = decodeCells(ck)
				corner := decodeCells(ck)
				if len(corner) != 1 {
					// A truncated or out-of-sync blob yields an empty
					// slice; surface the codec error instead of panicking
					// on the index below.
					if err := ck.Err(); err != nil {
						return err
					}
					return fmt.Errorf("wavefront: checkpoint corner: %d cells, want 1", len(corner))
				}
				resumeCorner = corner[0]
			}
			if ck.Int() == 1 {
				lastRow = decodeCells(ck)
			}
			decodeQueue(ck, &q)
			if err := ck.Err(); err != nil {
				return err
			}
		} else if err := node.Barrier(); err != nil {
			return err
		}

		for band := firstBand; band < bc.Bands; band += nprocs {
			r0, r1 := bandRows(band)
			height := r1 - r0 + 1
			// rightCol[x] is the cell at (r0+x, c0−1): the previous
			// block's right column. Starts as the zero column.
			rightCol := rightColBuf[:height]
			clear(rightCol)
			// corner is the cell at (r0−1, c0−1).
			var corner heuristics.Cell
			blk0 := 0
			if band == firstBand && firstBlk > 0 {
				blk0 = firstBlk
				copy(rightCol, resumeRight)
				corner = resumeCorner
			}

			for blk := blk0; blk < bc.Blocks; blk++ {
				c0, c1 := blockCols(blk)
				width := c1 - c0 + 1
				// Top block-row of this tile: from the band above via the
				// boundary row, or the zero row for band 0.
				top := top[:width]
				if band == 0 {
					clear(top)
				} else {
					if err := node.Waitcv(dataCV(band - 1)); err != nil {
						return err
					}
					if err := node.ReadAt(slots[band-1], (c0-1)*heuristics.CellBytes, buf[:width*heuristics.CellBytes]); err != nil {
						return err
					}
					for x := 0; x < width; x++ {
						top[x] = heuristics.DecodeCell(buf[x*heuristics.CellBytes:])
					}
				}

				// Compute the tile row by row.
				prev[0] = corner
				copy(prev[1:], top)
				for x := 0; x < height; x++ {
					r := r0 + x
					cur[0] = rightCol[x]
					kern.StepRow(prev[:width+1], cur[:width+1], r, c0, emit)
					if r == m {
						if lastRow == nil {
							lastRow = make([]heuristics.Cell, n)
						}
						copy(lastRow[c0-1:], cur[1:width+1])
					}
					rightCol[x] = cur[width] // becomes the left column of the next tile
					prev, cur = cur, prev
				}
				node.Compute(int64(height) * int64(width))
				// After the swap, prev holds the tile's bottom row.
				corner = top[width-1] // (r0−1, c1) for the next tile
				if band < bc.Bands-1 {
					for y := 1; y <= width; y++ {
						prev[y].Encode(buf[(y-1)*heuristics.CellBytes:])
					}
					if err := node.WriteAt(slots[band], (c0-1)*heuristics.CellBytes, buf[:width*heuristics.CellBytes]); err != nil {
						return err
					}
					if err := node.Setcv(dataCV(band)); err != nil {
						return err
					}
				}
				// Tile boundary: a recovery point. The cursor names the
				// next tile; a mid-band cut also needs the carried right
				// column and corner.
				nextBand, nextBlk := band, blk+1
				if nextBlk == bc.Blocks {
					nextBand, nextBlk = band+nprocs, 0
				}
				if err := node.Checkpoint(func(w *recovery.Writer) {
					w.Int(nextBand)
					w.Int(nextBlk)
					if nextBlk > 0 {
						encodeCells(w, rightCol)
						encodeCells(w, []heuristics.Cell{corner})
					}
					if lastRow != nil {
						w.Int(1)
						encodeCells(w, lastRow)
					} else {
						w.Int(0)
					}
					encodeQueue(w, &q)
				}); err != nil {
					return err
				}
			}
		}
		for x := range lastRow {
			kern.Flush(&lastRow[x], emit)
		}

		if err := publishCandidates(node, results, q.Items()); err != nil {
			return err
		}
		if err := node.Barrier(); err != nil {
			return err
		}
		if id == 0 {
			cands, err := collectCandidates(node, results)
			if err != nil {
				return err
			}
			out = &Result{Candidates: cands}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Makespan = sys.Makespan()
	out.Breakdowns = sys.Breakdowns()
	out.Stats = sys.TotalStats()
	return out, nil
}
