package wavefront

import (
	"fmt"

	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/heuristics"
	"genomedsm/internal/recovery"
)

// noblockCkptRows is the recovery-point cadence of strategy 1: every this
// many completed rows the node checkpoints its cursor, the border row it
// would otherwise have to recompute, and the candidates found so far. The
// row boundary is a natural recovery point — no lock is held and the CV
// handshake for the finished row is fully sent.
const noblockCkptRows = 8

// RunNoBlock executes strategy 1 (§4.2): each of nprocs processors is
// assigned N/P columns; every processor works on two rows (a writing row
// and a reading row); each value of the border column is passed
// individually to the next processor through shared memory, synchronized
// with condition variables. Barriers are used only at the beginning and
// the end of the computation.
func RunNoBlock(nprocs int, cfg cluster.Config, s, t bio.Sequence, sc bio.Scoring, p heuristics.Params) (*Result, error) {
	m, n := s.Len(), t.Len()
	if nprocs < 1 {
		return nil, fmt.Errorf("wavefront: nprocs %d", nprocs)
	}
	if n < nprocs {
		return nil, fmt.Errorf("wavefront: %d columns cannot be split over %d processors", n, nprocs)
	}
	if m == 0 {
		return &Result{}, nil
	}
	kern, err := heuristics.NewKernel(s, t, sc, p)
	if err != nil {
		return nil, err
	}
	sys, err := dsm.NewSystem(nprocs, cfg, dsm.Options{
		CondVars: 2*nprocs + 2,
		Locks:    4,
	})
	if err != nil {
		return nil, err
	}

	// Shared memory: one border-cell slot per processor boundary (homed at
	// the producer) and the gathered result vector (homed at node 0).
	borders := make([]dsm.Region, nprocs-1)
	for b := range borders {
		if borders[b], err = sys.AllocAt(heuristics.CellBytes, b); err != nil {
			return nil, err
		}
	}
	results, err := sys.AllocAt(8+defaultMaxCandidates*candidateBytes, 0)
	if err != nil {
		return nil, err
	}

	// Condition variables: dataCV[b] signals "border value of boundary b
	// written"; ackCV[b] signals "value read, the slot may be reused".
	dataCV := func(b int) int { return 2 * b }
	ackCV := func(b int) int { return 2*b + 1 }

	var out *Result
	err = sys.Run(func(node *dsm.Node) error {
		id := node.ID()
		lo, hi := stripe(id, nprocs, n)
		width := hi - lo + 1
		var q heuristics.Queue
		emit := q.Add

		// Two rows of state for the stripe, plus the left border column:
		// prev[x]/cur[x] hold columns lo-1+x (x=0 is the border cell
		// received from the left neighbour; zero column for processor 0).
		prev := make([]heuristics.Cell, width+1)
		cur := make([]heuristics.Cell, width+1)
		buf := make([]byte, heuristics.CellBytes)

		start := 1
		if ck := node.Restored(); ck != nil {
			// Crash recovery: resume mid-sweep from the checkpointed
			// cursor. prev holds the last completed row and q the
			// candidates found so far; the opening barrier was already
			// passed by the previous incarnation, and the manager-side CV
			// state survived the crash, so the handshake continues where
			// it stopped.
			start = ck.Int()
			copy(prev, decodeCells(ck))
			decodeQueue(ck, &q)
			if err := ck.Err(); err != nil {
				return err
			}
		} else if err := node.Barrier(); err != nil {
			return err
		}

		for i := start; i <= m; i++ {
			if id > 0 {
				// Wait for the left neighbour's border value of this row,
				// read it, and acknowledge so the slot can be reused.
				if err := node.Waitcv(dataCV(id - 1)); err != nil {
					return err
				}
				if err := node.ReadAt(borders[id-1], 0, buf); err != nil {
					return err
				}
				cur[0] = heuristics.DecodeCell(buf)
				if err := node.Setcv(ackCV(id - 1)); err != nil {
					return err
				}
			} else {
				cur[0] = heuristics.Cell{}
			}
			kern.StepRow(prev, cur, i, lo, emit)
			node.Compute(int64(width))
			if id < nprocs-1 {
				if i > 1 {
					// Ensure the previous border value was consumed before
					// overwriting the slot.
					if err := node.Waitcv(ackCV(id)); err != nil {
						return err
					}
				}
				cur[width].Encode(buf)
				if err := node.WriteAt(borders[id], 0, buf); err != nil {
					return err
				}
				if err := node.Setcv(dataCV(id)); err != nil {
					return err
				}
			}
			if i == m {
				for x := 1; x <= width; x++ {
					kern.Flush(&cur[x], emit)
				}
			}
			prev, cur = cur, prev
			if i%noblockCkptRows == 0 && i < m {
				row := i
				if err := node.Checkpoint(func(w *recovery.Writer) {
					w.Int(row + 1)
					encodeCells(w, prev)
					encodeQueue(w, &q)
				}); err != nil {
					return err
				}
			}
		}

		if err := publishCandidates(node, results, q.Items()); err != nil {
			return err
		}
		if err := node.Barrier(); err != nil {
			return err
		}
		if id == 0 {
			cands, err := collectCandidates(node, results)
			if err != nil {
				return err
			}
			out = &Result{Candidates: cands}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Makespan = sys.Makespan()
	out.Breakdowns = sys.Breakdowns()
	out.Stats = sys.TotalStats()
	return out, nil
}
