package wavefront

import (
	"reflect"
	"testing"

	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/heuristics"
)

var sc = bio.DefaultScoring()

func testPair(t *testing.T, seed int64, n int) (bio.Sequence, bio.Sequence) {
	t.Helper()
	g := bio.NewGenerator(seed)
	pair, err := g.HomologousPair(n, bio.HomologyModel{
		Regions: n / 300, RegionLen: 150, RegionJit: 50,
		Divergence: bio.MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pair.S, pair.T
}

var testParams = heuristics.Params{Open: 12, Close: 12, MinScore: 30}

// TestNoBlockMatchesSequential is the paper's central correctness claim
// for strategy 1: the parallel scan must produce exactly the sequential
// candidate queue, for every processor count.
func TestNoBlockMatchesSequential(t *testing.T) {
	s, tt := testPair(t, 101, 900)
	want, err := heuristics.Scan(s, tt, sc, testParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("sequential scan found nothing; test input too weak")
	}
	for _, nprocs := range []int{1, 2, 3, 4, 8} {
		res, err := RunNoBlock(nprocs, cluster.Zero(), s, tt, sc, testParams)
		if err != nil {
			t.Fatalf("nprocs=%d: %v", nprocs, err)
		}
		if !reflect.DeepEqual(res.Candidates, want) {
			t.Errorf("nprocs=%d: parallel candidates differ from sequential\nparallel: %v\nsequential: %v",
				nprocs, res.Candidates, want)
		}
	}
}

// TestBlockedMatchesSequential is the same claim for strategy 2, across
// several blocking configurations.
func TestBlockedMatchesSequential(t *testing.T) {
	s, tt := testPair(t, 103, 900)
	want, err := heuristics.Scan(s, tt, sc, testParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("sequential scan found nothing; test input too weak")
	}
	cases := []struct {
		nprocs int
		bc     BlockConfig
	}{
		{1, BlockConfig{Bands: 1, Blocks: 1}},
		{1, BlockConfig{Bands: 7, Blocks: 5}},
		{2, MultiplierConfig(2, 2, 2)},
		{3, BlockConfig{Bands: 9, Blocks: 6}},
		{4, MultiplierConfig(1, 1, 4)},
		{4, MultiplierConfig(5, 5, 4)},
		{8, MultiplierConfig(3, 5, 8)},
	}
	for _, c := range cases {
		res, err := RunBlocked(c.nprocs, cluster.Zero(), s, tt, sc, testParams, c.bc)
		if err != nil {
			t.Fatalf("nprocs=%d %+v: %v", c.nprocs, c.bc, err)
		}
		if !reflect.DeepEqual(res.Candidates, want) {
			t.Errorf("nprocs=%d %+v: parallel candidates differ from sequential (%d vs %d)",
				c.nprocs, c.bc, len(res.Candidates), len(want))
		}
	}
}

func TestNoBlockValidation(t *testing.T) {
	s, tt := testPair(t, 107, 200)
	if _, err := RunNoBlock(0, cluster.Zero(), s, tt, sc, testParams); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := RunNoBlock(300, cluster.Zero(), s, tt, sc, testParams); err == nil {
		t.Error("more processors than columns accepted")
	}
	if _, err := RunNoBlock(2, cluster.Zero(), s, tt, sc, heuristics.Params{}); err == nil {
		t.Error("invalid params accepted")
	}
	res, err := RunNoBlock(2, cluster.Zero(), nil, tt, sc, testParams)
	if err != nil || len(res.Candidates) != 0 {
		t.Errorf("empty s: %v %v", res, err)
	}
}

func TestBlockedValidation(t *testing.T) {
	s, tt := testPair(t, 109, 200)
	if _, err := RunBlocked(2, cluster.Zero(), s, tt, sc, testParams, BlockConfig{Bands: 0, Blocks: 1}); err == nil {
		t.Error("zero bands accepted")
	}
	if _, err := RunBlocked(2, cluster.Zero(), s, tt, sc, testParams, BlockConfig{Bands: 500, Blocks: 2}); err == nil {
		t.Error("more bands than rows accepted")
	}
	if _, err := RunBlocked(2, cluster.Zero(), s, tt, sc, testParams, BlockConfig{Bands: 2, Blocks: 500}); err == nil {
		t.Error("more blocks than columns accepted")
	}
}

func TestMultiplierConfig(t *testing.T) {
	bc := MultiplierConfig(3, 5, 8)
	if bc.Bands != 40 || bc.Blocks != 24 {
		t.Errorf("3×5 multiplier for 8 procs: %+v, paper says 40 bands × 24 blocks", bc)
	}
}

// TestBlockedFasterThanNoBlock verifies the headline of §4.3/Fig. 13
// under the calibrated cost model: with an adequate blocking factor the
// blocked strategy beats per-cell handoff by a large margin.
func TestBlockedFasterThanNoBlock(t *testing.T) {
	s, tt := testPair(t, 113, 1200)
	cfg := cluster.Calibrated2005()
	noBlock, err := RunNoBlock(4, cfg, s, tt, sc, testParams)
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := RunBlocked(4, cfg, s, tt, sc, testParams, MultiplierConfig(5, 5, 4))
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Makespan >= noBlock.Makespan {
		t.Errorf("blocked %.3fs not faster than no-block %.3fs", blocked.Makespan, noBlock.Makespan)
	}
	if blocked.Stats.CVSignals >= noBlock.Stats.CVSignals {
		t.Errorf("blocked sent %d signals, no-block %d; blocking should reduce synchronization",
			blocked.Stats.CVSignals, noBlock.Stats.CVSignals)
	}
}

// TestSpeedupGrowsWithSize reproduces the Fig. 9 trend: larger inputs give
// better speed-ups because the parallel part dominates synchronization.
func TestSpeedupGrowsWithSize(t *testing.T) {
	cfg := cluster.Calibrated2005()
	speedup := func(n int) float64 {
		s, tt := testPair(t, 127, n)
		serial, err := RunBlocked(1, cfg, s, tt, sc, testParams, BlockConfig{Bands: 1, Blocks: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := RunBlocked(4, cfg, s, tt, sc, testParams, MultiplierConfig(5, 5, 4))
		if err != nil {
			t.Fatal(err)
		}
		return cluster.Speedup(serial.Makespan, par.Makespan)
	}
	small := speedup(400)
	large := speedup(2000)
	if large <= small {
		t.Errorf("speedup did not grow with size: %d->%.2f vs %d->%.2f", 400, small, 2000, large)
	}
	if large < 2.0 {
		t.Errorf("4-processor speedup on the large input is %.2f, want >= 2", large)
	}
}

// TestCostModelDoesNotChangeResults: the virtual-time model must be
// purely observational — identical candidates under zero-cost and
// calibrated configurations.
func TestCostModelDoesNotChangeResults(t *testing.T) {
	s, tt := testPair(t, 139, 800)
	free, err := RunBlocked(4, cluster.Zero(), s, tt, sc, testParams, MultiplierConfig(3, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	paid, err := RunBlocked(4, cluster.Calibrated2005(), s, tt, sc, testParams, MultiplierConfig(3, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(free.Candidates, paid.Candidates) {
		t.Error("cost model changed the computed candidates")
	}
	if paid.Makespan <= free.Makespan {
		t.Errorf("calibrated model (%.3f) not slower than free model (%.3f)", paid.Makespan, free.Makespan)
	}
}

func TestBreakdownCategoriesPopulated(t *testing.T) {
	s, tt := testPair(t, 131, 600)
	cfg := cluster.Calibrated2005()
	res, err := RunNoBlock(2, cfg, s, tt, sc, testParams)
	if err != nil {
		t.Fatal(err)
	}
	merged := cluster.Merge(res.Breakdowns)
	if merged.Cat[cluster.Compute] == 0 {
		t.Error("no compute time recorded")
	}
	if merged.Cat[cluster.LockCV] == 0 {
		t.Error("no lock+cv time recorded despite per-cell handoff")
	}
	if merged.Cat[cluster.Barrier] == 0 {
		t.Error("no barrier time recorded")
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}
