package wavefront

import (
	"reflect"
	"testing"

	"genomedsm/internal/cluster"
	"genomedsm/internal/heuristics"
)

func TestBlockedMPMatchesSequential(t *testing.T) {
	s, tt := testPair(t, 151, 900)
	want, err := heuristics.Scan(s, tt, sc, testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, nprocs := range []int{1, 2, 4, 8} {
		res, err := RunBlockedMP(nprocs, cluster.Zero(), s, tt, sc, testParams,
			BlockConfig{Bands: 12, Blocks: 10})
		if err != nil {
			t.Fatalf("nprocs=%d: %v", nprocs, err)
		}
		if !reflect.DeepEqual(res.Candidates, want) {
			t.Errorf("nprocs=%d: MP candidates differ from sequential", nprocs)
		}
	}
}

func TestBlockedMPValidation(t *testing.T) {
	s, tt := testPair(t, 157, 200)
	if _, err := RunBlockedMP(0, cluster.Zero(), s, tt, sc, testParams, BlockConfig{Bands: 2, Blocks: 2}); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := RunBlockedMP(2, cluster.Zero(), s, tt, sc, testParams, BlockConfig{}); err == nil {
		t.Error("empty block config accepted")
	}
	res, err := RunBlockedMP(2, cluster.Zero(), nil, tt, sc, testParams, BlockConfig{Bands: 2, Blocks: 2})
	if err != nil || len(res.Candidates) != 0 {
		t.Errorf("empty input: %v %v", res, err)
	}
}

// TestDSMOverheadAblation quantifies the DSM abstraction's cost: on the
// same network model, the message-passing variant must be at least as
// fast as the DSM variant (it skips page faults, diffs and notices), but
// within a small factor — the paper's argument that DSM's programmability
// comes at an acceptable price.
func TestDSMOverheadAblation(t *testing.T) {
	s, tt := testPair(t, 163, 1500)
	cfg := cluster.Calibrated2005()
	bc := MultiplierConfig(5, 5, 8)
	dsmRes, err := RunBlocked(8, cfg, s, tt, sc, testParams, bc)
	if err != nil {
		t.Fatal(err)
	}
	mpRes, err := RunBlockedMP(8, cfg, s, tt, sc, testParams, bc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dsmRes.Candidates, mpRes.Candidates) {
		t.Error("DSM and MP variants disagree on candidates")
	}
	if mpRes.Makespan > dsmRes.Makespan {
		t.Errorf("MP (%.3fs) slower than DSM (%.3fs)", mpRes.Makespan, dsmRes.Makespan)
	}
	if dsmRes.Makespan > 3*mpRes.Makespan {
		t.Errorf("DSM overhead factor %.2f looks implausible (> 3×)",
			dsmRes.Makespan/mpRes.Makespan)
	}
	// The DSM run moves more protocol bytes (pages + diffs + notices).
	if dsmRes.Stats.BytesMoved <= mpRes.Stats.BytesMoved {
		t.Errorf("DSM moved %d bytes, MP %d; expected DSM > MP",
			dsmRes.Stats.BytesMoved, mpRes.Stats.BytesMoved)
	}
}
