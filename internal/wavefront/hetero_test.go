package wavefront

import (
	"reflect"
	"testing"

	"genomedsm/internal/cluster"
)

// TestHeterogeneousClusterSlowsToTheWeakestNode models the paper's
// future-work scenario: one half-speed workstation in the cluster. With
// static band assignment the whole pipeline slows toward the weakest
// node, while results stay identical.
func TestHeterogeneousClusterSlowsToTheWeakestNode(t *testing.T) {
	s, tt := testPair(t, 167, 1200)
	bc := MultiplierConfig(4, 4, 4)

	homo := cluster.Calibrated2005()
	hres, err := RunBlocked(4, homo, s, tt, sc, testParams, bc)
	if err != nil {
		t.Fatal(err)
	}

	hetero := cluster.Calibrated2005()
	hetero.NodeSpeeds = []float64{1, 1, 0.5, 1} // node 2 is half speed
	xres, err := RunBlocked(4, hetero, s, tt, sc, testParams, bc)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(hres.Candidates, xres.Candidates) {
		t.Error("heterogeneity changed the results")
	}
	if xres.Makespan <= hres.Makespan {
		t.Errorf("half-speed node did not slow the run: %.3f vs %.3f", xres.Makespan, hres.Makespan)
	}
	// The slowdown is bounded by the weakest node's 2× factor.
	if xres.Makespan > 2.2*hres.Makespan {
		t.Errorf("slowdown %.2f× exceeds the weakest node's 2×", xres.Makespan/hres.Makespan)
	}
	// The slow node's compute time roughly doubles.
	slow := xres.Breakdowns[2].Cat[cluster.Compute]
	fast := hres.Breakdowns[2].Cat[cluster.Compute]
	if slow < 1.8*fast || slow > 2.2*fast {
		t.Errorf("slow node compute %.3f, homogeneous %.3f; want ≈2×", slow, fast)
	}
}

func TestNodeSpeedsValidation(t *testing.T) {
	cfg := cluster.Calibrated2005()
	cfg.NodeSpeeds = []float64{1, 0}
	if err := cfg.Validate(); err == nil {
		t.Error("zero node speed accepted")
	}
	cfg.NodeSpeeds = []float64{1, -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative node speed accepted")
	}
	cfg.NodeSpeeds = []float64{2, 1}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid speeds rejected: %v", err)
	}
	if got := cfg.CellTimeFor(0); got != cfg.CellTime/2 {
		t.Errorf("CellTimeFor(0) = %g", got)
	}
	if got := cfg.CellTimeFor(5); got != cfg.CellTime {
		t.Errorf("CellTimeFor beyond table = %g, want base", got)
	}
}
