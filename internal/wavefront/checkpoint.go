package wavefront

import (
	"genomedsm/internal/heuristics"
	"genomedsm/internal/recovery"
)

// Checkpoint codec helpers shared by the wavefront strategies: the DP
// border state and the candidate queue are what a restarted node needs to
// resume its sweep without recomputing finished rows or tiles.

// encodeCells appends a cell run to a checkpoint blob.
func encodeCells(w *recovery.Writer, cells []heuristics.Cell) {
	blob := make([]byte, len(cells)*heuristics.CellBytes)
	for i := range cells {
		cells[i].Encode(blob[i*heuristics.CellBytes:])
	}
	w.Bytes(blob)
}

// decodeCells reads a cell run written by encodeCells.
func decodeCells(r *recovery.Reader) []heuristics.Cell {
	blob := r.Bytes()
	cells := make([]heuristics.Cell, len(blob)/heuristics.CellBytes)
	for i := range cells {
		cells[i] = heuristics.DecodeCell(blob[i*heuristics.CellBytes:])
	}
	return cells
}

// encodeQueue appends the queue's candidates to a checkpoint blob.
func encodeQueue(w *recovery.Writer, q *heuristics.Queue) {
	items := q.Items()
	w.Int(len(items))
	for _, c := range items {
		w.Int(c.SBegin)
		w.Int(c.SEnd)
		w.Int(c.TBegin)
		w.Int(c.TEnd)
		w.Int(c.Score)
	}
}

// decodeQueue refills q with candidates written by encodeQueue.
func decodeQueue(r *recovery.Reader, q *heuristics.Queue) {
	n := r.Int()
	for i := 0; i < n; i++ {
		var c heuristics.Candidate
		c.SBegin = r.Int()
		c.SEnd = r.Int()
		c.TBegin = r.Int()
		c.TEnd = r.Int()
		c.Score = r.Int()
		q.Add(c)
	}
}
