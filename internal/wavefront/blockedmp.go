package wavefront

import (
	"fmt"
	"sync"

	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/heuristics"
)

// RunBlockedMP is the message-passing ablation of strategy 2: the same
// bands×blocks decomposition and the same cell kernel, but border rows
// travel as direct point-to-point messages instead of DSM pages — no
// page faults, twins, diffs or write notices. The paper chose DSM for its
// programming model and names message passing as future work for
// inter-cluster communication; this variant quantifies what the DSM
// abstraction costs on the same network model.
//
// Fault support is timing-only: injected message loss charges each send
// the same capped-exponential retransmission backoff the DSM layer uses.
// Crash-stop faults are not supported here — there is no page table to
// re-home and no checkpoint facility outside the DSM layer — so the
// chaos harness never schedules kills against this variant.
func RunBlockedMP(nprocs int, cfg cluster.Config, s, t bio.Sequence, sc bio.Scoring, p heuristics.Params, bc BlockConfig) (*Result, error) {
	m, n := s.Len(), t.Len()
	if nprocs < 1 {
		return nil, fmt.Errorf("wavefront: nprocs %d", nprocs)
	}
	if m == 0 || n == 0 {
		return &Result{}, nil
	}
	if err := bc.Validate(m, n); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kern, err := heuristics.NewKernel(s, t, sc, p)
	if err != nil {
		return nil, err
	}

	type mpMsg struct {
		cells []heuristics.Cell
		at    float64 // sender's virtual time at send
	}
	// One channel per band boundary, buffered for the whole band so the
	// producer never blocks (mirrors the full-row slots of the DSM
	// version).
	chans := make([]chan mpMsg, bc.Bands-1)
	for b := range chans {
		chans[b] = make(chan mpMsg, bc.Blocks)
	}
	gather := make(chan mpMsg, nprocs)

	bandRows := func(b int) (int, int) { return b*m/bc.Bands + 1, (b + 1) * m / bc.Bands }
	blockCols := func(k int) (int, int) { return k*n/bc.Blocks + 1, (k + 1) * n / bc.Blocks }
	maxW := (n + bc.Blocks - 1) / bc.Blocks * 2
	maxH := 0
	for b := 0; b < bc.Bands; b++ {
		r0, r1 := bandRows(b)
		if h := r1 - r0 + 1; h > maxH {
			maxH = h
		}
	}

	clocks := make([]cluster.Clock, nprocs)
	queues := make([]heuristics.Queue, nprocs)
	var stats dsm.Stats
	var statsMu sync.Mutex
	errs := make([]error, nprocs)
	var wg sync.WaitGroup
	for id := 0; id < nprocs; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			clock := &clocks[id]
			emit := queues[id].Add
			var lastRow []heuristics.Cell
			// Per-node row/column buffers, resliced per band and tile.
			rightColBuf := make([]heuristics.Cell, maxH)
			prev := make([]heuristics.Cell, maxW+1)
			cur := make([]heuristics.Cell, maxW+1)
			top := make([]heuristics.Cell, maxW)
			msgs, bytes := int64(0), int64(0)
			// Injected message loss costs the sender one retransmission
			// timeout per lost attempt, as in the DSM layer's lossRetries.
			recParams := cfg.RecoveryParams()
			sendNo := uint64(0)
			lossDelay := func(class cluster.MsgClass) float64 {
				sendNo++
				lost := cfg.LostAttempts(class, id)
				if lost == 0 {
					return 0
				}
				key := uint64(id)<<48 ^ uint64(class)<<40 ^ sendNo
				total := 0.0
				for a := 0; a < lost; a++ {
					total += recParams.Retry.Delay(key, a)
				}
				msgs += int64(lost)
				return total
			}
			defer func() {
				statsMu.Lock()
				stats.MsgsSent += msgs
				stats.BytesMoved += bytes
				statsMu.Unlock()
			}()

			for band := id; band < bc.Bands; band += nprocs {
				r0, r1 := bandRows(band)
				height := r1 - r0 + 1
				rightCol := rightColBuf[:height]
				clear(rightCol)
				var corner heuristics.Cell

				for blk := 0; blk < bc.Blocks; blk++ {
					c0, c1 := blockCols(blk)
					width := c1 - c0 + 1
					top := top[:width]
					if band == 0 {
						clear(top)
					} else {
						msg := <-chans[band-1]
						copy(top, msg.cells)
						clock.AdvanceTo(msg.at+cfg.Net.MessageCost(width*heuristics.CellBytes), cluster.Comm)
					}
					prev[0] = corner
					copy(prev[1:], top)
					for x := 0; x < height; x++ {
						r := r0 + x
						cur[0] = rightCol[x]
						kern.StepRow(prev[:width+1], cur[:width+1], r, c0, emit)
						if r == m {
							if lastRow == nil {
								lastRow = make([]heuristics.Cell, n)
							}
							copy(lastRow[c0-1:], cur[1:width+1])
						}
						rightCol[x] = cur[width]
						prev, cur = cur, prev
					}
					clock.Advance(float64(height)*float64(width)*cfg.CellTime, cluster.Compute)
					corner = top[width-1]
					if band < bc.Bands-1 {
						// This allocation must stay per send: ownership of the
						// slice moves to the consumer with the message, while
						// prev is reused for the next tile.
						row := make([]heuristics.Cell, width)
						copy(row, prev[1:width+1])
						clock.Advance(cfg.Net.PerMessageCPU+lossDelay(cluster.MsgDiff), cluster.Comm)
						msgs++
						bytes += int64(width * heuristics.CellBytes)
						// Border rows are this variant's diff analogue, so
						// they answer to the same fault class.
						at := clock.Now() + cfg.FaultDelay(cluster.MsgDiff, id)
						chans[band] <- mpMsg{cells: row, at: at}
					}
				}
			}
			for x := range lastRow {
				kern.Flush(&lastRow[x], emit)
			}
			// Ship the local queue to node 0.
			size := queues[id].Len()*candidateBytes + msgHeader
			clock.Advance(cfg.Net.PerMessageCPU+lossDelay(cluster.MsgSync), cluster.Comm)
			msgs++
			bytes += int64(size)
			gather <- mpMsg{at: clock.Now() + cfg.Net.MessageCost(size)}
			errs[id] = nil
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", id, err)
		}
	}
	// Node 0 collects: its clock advances to the latest gather arrival.
	for i := 0; i < nprocs; i++ {
		msg := <-gather
		clocks[0].AdvanceTo(msg.at, cluster.Comm)
	}
	var q heuristics.Queue
	for i := range queues {
		q.AddAll(&queues[i])
	}
	res := &Result{Candidates: q.Finalize(), Stats: stats}
	for i := range clocks {
		b := clocks[i].Breakdown()
		res.Breakdowns = append(res.Breakdowns, b)
		if b.Total > res.Makespan {
			res.Makespan = b.Total
		}
	}
	return res, nil
}

// msgHeader approximates a message-passing envelope.
const msgHeader = 32
