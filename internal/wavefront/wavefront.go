// Package wavefront implements the paper's first two parallel strategies
// for the heuristic local-alignment scan on the DSM cluster:
//
//   - Strategy 1 (§4.2, RunNoBlock): work is assigned on a column basis —
//     each processor owns a stripe of columns and two rows of state; every
//     border-column cell is passed individually to the right neighbour
//     through shared memory, synchronized with condition variables.
//   - Strategy 2 (§4.3, RunBlocked): the matrix is divided into bands
//     (sets of rows, assigned round-robin) subdivided into blocks; a whole
//     block-row is passed per synchronization, governed by a blocking
//     multiplier (Table 3).
//
// Both strategies run the identical cell kernel (heuristics.Kernel.Step)
// as the sequential scan, so their finalized candidate queues are equal to
// the sequential one by construction — a property the tests enforce.
package wavefront

import (
	"fmt"

	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/heuristics"
)

// Result is the outcome of a parallel scan.
type Result struct {
	Candidates []heuristics.Candidate
	// Makespan is the simulated parallel execution time (max node time).
	Makespan float64
	// Breakdowns holds each node's virtual-time accounting (Fig. 10).
	Breakdowns []cluster.Breakdown
	// Stats aggregates DSM protocol counters.
	Stats dsm.Stats
}

// candidateBytes is the wire size of one candidate in the shared result
// vector (5 × int32).
const candidateBytes = 20

// defaultMaxCandidates bounds the shared result vector.
const defaultMaxCandidates = 1 << 16

// gatherLock is the lock protecting the shared result vector.
const gatherLock = 0

// encodeCandidate stores c as 5 int32s.
func encodeCandidate(c heuristics.Candidate) []int32 {
	return []int32{int32(c.SBegin), int32(c.SEnd), int32(c.TBegin), int32(c.TEnd), int32(c.Score)}
}

func decodeCandidate(v []int32) heuristics.Candidate {
	return heuristics.Candidate{
		SBegin: int(v[0]), SEnd: int(v[1]),
		TBegin: int(v[2]), TEnd: int(v[3]),
		Score: int(v[4]),
	}
}

// publishCandidates appends the node's local queue to the shared result
// vector under the gather lock, as the final collection phase of both
// strategies ("these alignments are then gathered", §4.3).
func publishCandidates(n *dsm.Node, results dsm.Region, local []heuristics.Candidate) error {
	return n.WithLock(gatherLock, func() error {
		count, err := n.ReadInt64(results, 0)
		if err != nil {
			return err
		}
		capacity := (results.Size() - 8) / candidateBytes
		if int(count)+len(local) > capacity {
			return fmt.Errorf("wavefront: result vector overflow (%d + %d > %d); raise MaxCandidates",
				count, len(local), capacity)
		}
		for i, c := range local {
			off := 8 + (int(count)+i)*candidateBytes
			if err := n.WriteInt32s(results, off, encodeCandidate(c)); err != nil {
				return err
			}
		}
		return n.WriteInt64(results, 0, count+int64(len(local)))
	})
}

// collectCandidates reads the shared result vector (from node 0) and
// finalizes the queue.
func collectCandidates(n *dsm.Node, results dsm.Region) ([]heuristics.Candidate, error) {
	count, err := n.ReadInt64(results, 0)
	if err != nil {
		return nil, err
	}
	var q heuristics.Queue
	buf := make([]int32, 5)
	for i := 0; i < int(count); i++ {
		if err := n.ReadInt32s(results, 8+i*candidateBytes, buf); err != nil {
			return nil, err
		}
		q.Add(decodeCandidate(buf))
	}
	return q.Finalize(), nil
}

// stripe returns the 1-based inclusive column range of processor p out of
// nprocs over n columns.
func stripe(p, nprocs, n int) (lo, hi int) {
	return p*n/nprocs + 1, (p + 1) * n / nprocs
}
