package wavefront

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/heuristics"
)

// TestParallelEqualsSequentialProperty randomizes everything at once —
// input pair, heuristic parameters, processor count and decomposition —
// and checks the central §4 invariant: both parallel strategies (and the
// message-passing ablation) produce exactly the sequential queue.
func TestParallelEqualsSequentialProperty(t *testing.T) {
	f := func(seed int64, openRaw, closeRaw, minRaw, procRaw, bandRaw, blockRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(400)
		g := bio.NewGenerator(seed)
		pair, err := g.HomologousPair(n, bio.HomologyModel{
			Regions: 1 + rng.Intn(3), RegionLen: 60, RegionJit: 20,
			Divergence: bio.MutationModel{SubstitutionRate: 0.05},
		})
		if err != nil {
			return false
		}
		p := heuristics.Params{
			Open:     3 + int(openRaw%20),
			Close:    3 + int(closeRaw%20),
			MinScore: 5 + int(minRaw%40),
		}
		want, err := heuristics.Scan(pair.S, pair.T, sc, p)
		if err != nil {
			return false
		}
		procs := 1 + int(procRaw%8)
		bc := BlockConfig{
			Bands:  1 + int(bandRaw)%(n/8),
			Blocks: 1 + int(blockRaw)%(n/8),
		}
		blocked, err := RunBlocked(procs, cluster.Zero(), pair.S, pair.T, sc, p, bc)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(blocked.Candidates, want) {
			return false
		}
		mp, err := RunBlockedMP(procs, cluster.Zero(), pair.S, pair.T, sc, p, bc)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(mp.Candidates, want) {
			return false
		}
		if procs <= n { // strategy 1 needs at least one column per node
			noblock, err := RunNoBlock(procs, cluster.Zero(), pair.S, pair.T, sc, p)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(noblock.Candidates, want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
