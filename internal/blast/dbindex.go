package blast

import (
	"fmt"
	"slices"
	"sort"

	"genomedsm/internal/bio"
)

// DBWordIndex is the database-side counterpart of WordIndex: every exact
// w-mer of every database record, hashed once at index time. Where
// WordIndex indexes one query and scans each record (one pass over the
// database per query), DBWordIndex indexes the records and scans the
// query (one pass over the query per query) — the shape a resident
// search service wants, and the part of prefilter seeding worth
// persisting in a pack file. Lookups yield the same kind of evidence as
// WordIndex.SeedScore: exact ungapped X-drop extension scores, each the
// score of a concrete local alignment and therefore a true lower bound
// on the record's Smith–Waterman score. The two sides enumerate seeds
// in different orders, so their bounds may differ — but any true lower
// bound preserves the pruning pipeline's exactness, so the hit set does
// not depend on which side seeded it.
type DBWordIndex struct {
	w    int
	recs []bio.Sequence
	// idx is the build-side representation: NewDBWordIndex appends
	// postings per word as it scans, which wants a map. nil for a
	// restored index.
	idx map[uint32][]DBPosting
	// words/posts is the restore-side representation: pack files store
	// words sorted, so a loaded index binary-searches the sorted pair
	// instead of paying a posting-count-sized map build on every load —
	// the dominant cost of opening a pack with an embedded index.
	words []uint32
	posts [][]DBPosting
}

// lookup returns the posting list for word under either representation.
func (ix *DBWordIndex) lookup(word uint32) []DBPosting {
	if ix.idx != nil {
		return ix.idx[word]
	}
	if i, ok := slices.BinarySearch(ix.words, word); ok {
		return ix.posts[i]
	}
	return nil
}

// DBPosting locates one indexed word occurrence: record index and
// 0-based start position within the record.
type DBPosting struct {
	Rec int32
	Pos int32
}

// NewDBWordIndex indexes every exact w-mer of every record. It returns
// nil when w is outside the supported [4,15] range; records shorter
// than one word simply contribute no postings.
func NewDBWordIndex(db []bio.Record, w int) *DBWordIndex {
	if w < 4 || w > 15 {
		return nil
	}
	ix := &DBWordIndex{w: w, recs: make([]bio.Sequence, len(db)), idx: make(map[uint32][]DBPosting)}
	mask := uint32(1)<<(2*uint(w)) - 1
	for r, rec := range db {
		ix.recs[r] = rec.Seq
		var word uint32
		valid := 0
		for i := 0; i < rec.Seq.Len(); i++ {
			code, ok := baseCode(rec.Seq[i])
			if !ok {
				valid, word = 0, 0
				continue
			}
			word = (word<<2 | code) & mask
			valid++
			if valid >= w {
				ix.idx[word] = append(ix.idx[word], DBPosting{Rec: int32(r), Pos: int32(i - w + 1)})
			}
		}
	}
	return ix
}

// RestoreDBWordIndex rebuilds an index from serialized postings (the
// dbpack codec stores words sorted with their posting lists). Posting
// ranges are validated against the records so a malformed pack cannot
// make lookups panic; the scores themselves stay true lower bounds for
// ANY posting content, because SeedScores extends seeds over the actual
// record bases — a wrong posting merely seeds a worse (but still real)
// ungapped alignment.
func RestoreDBWordIndex(db []bio.Record, w int, words []uint32, postings [][]DBPosting) (*DBWordIndex, error) {
	if w < 4 || w > 15 {
		return nil, fmt.Errorf("blast: word size %d outside [4,15]", w)
	}
	if len(words) != len(postings) {
		return nil, fmt.Errorf("blast: %d words with %d posting lists", len(words), len(postings))
	}
	ix := &DBWordIndex{w: w, recs: make([]bio.Sequence, len(db)), words: words, posts: postings}
	for r, rec := range db {
		ix.recs[r] = rec.Seq
	}
	max := uint32(1)<<(2*uint(w)) - 1
	for i, word := range words {
		if word > max {
			return nil, fmt.Errorf("blast: word %#x exceeds the %d-mer space", word, w)
		}
		if i > 0 && word <= words[i-1] {
			// The sorted-slice representation binary-searches, so an
			// unsorted table would silently lose postings — reject it.
			return nil, fmt.Errorf("blast: word table not strictly ascending at entry %d", i)
		}
		for _, p := range postings[i] {
			if p.Rec < 0 || int(p.Rec) >= len(db) {
				return nil, fmt.Errorf("blast: posting names record %d of %d", p.Rec, len(db))
			}
			if p.Pos < 0 || int(p.Pos)+w > ix.recs[p.Rec].Len() {
				return nil, fmt.Errorf("blast: posting at %d overruns record %d (len %d)", p.Pos, p.Rec, ix.recs[p.Rec].Len())
			}
		}
	}
	return ix, nil
}

// Word returns the index's word size.
func (ix *DBWordIndex) Word() int { return ix.w }

// Records returns the number of indexed records.
func (ix *DBWordIndex) Records() int { return len(ix.recs) }

// Postings returns the count of indexed word occurrences.
func (ix *DBWordIndex) Postings() int {
	n := 0
	if ix.idx != nil {
		for _, ps := range ix.idx {
			n += len(ps)
		}
		return n
	}
	for _, ps := range ix.posts {
		n += len(ps)
	}
	return n
}

// Export returns the index content in deterministic serialization
// order: words ascending, each with its posting list (record ascending,
// position ascending — the insertion order of NewDBWordIndex). A
// restored index already holds that exact shape and returns it as is.
func (ix *DBWordIndex) Export() (words []uint32, postings [][]DBPosting) {
	if ix.idx == nil {
		return ix.words, ix.posts
	}
	words = make([]uint32, 0, len(ix.idx))
	for w := range ix.idx {
		words = append(words, w)
	}
	sort.Slice(words, func(a, b int) bool { return words[a] < words[b] })
	postings = make([][]DBPosting, len(words))
	for i, w := range words {
		postings[i] = ix.idx[w]
	}
	return words, postings
}

// SeedScores returns, per record, an exact lower bound on the best
// local-alignment score of q against that record: the best ungapped
// X-drop extension over the exact words they share, or 0 when none.
// Extensions are deduplicated per (record, diagonal), mirroring
// WordIndex.SeedScore. xdrop ≤ 0 selects the DefaultOptions X-drop.
func (ix *DBWordIndex) SeedScores(q bio.Sequence, sc bio.Scoring, xdrop int) []int {
	best := make([]int, len(ix.recs))
	if ix == nil || q.Len() < ix.w {
		return best
	}
	if xdrop <= 0 {
		xdrop = DefaultOptions().XDrop
	}
	type diagKey struct {
		rec  int32
		diag int32
	}
	covered := make(map[diagKey]int) // (record, t0-s0) → t index covered up to
	mask := uint32(1)<<(2*uint(ix.w)) - 1
	var word uint32
	valid := 0
	for i := 0; i < q.Len(); i++ {
		code, ok := baseCode(q[i])
		if !ok {
			valid, word = 0, 0
			continue
		}
		word = (word<<2 | code) & mask
		valid++
		if valid < ix.w {
			continue
		}
		qStart := i - ix.w + 1
		for _, p := range ix.lookup(word) {
			key := diagKey{rec: p.Rec, diag: p.Pos - int32(qStart)}
			if covered[key] >= int(p.Pos)+ix.w {
				continue
			}
			h := extend(q, ix.recs[p.Rec], sc, qStart, int(p.Pos), ix.w, xdrop)
			covered[key] = h.t1
			if h.score > best[p.Rec] {
				best[p.Rec] = h.score
			}
		}
	}
	return best
}
