// Package blast is a from-scratch BlastN-style heuristic local aligner,
// standing in for NCBI BlastN in the paper's Table 2 comparison. It runs
// the classic seed-and-extend pipeline: exact word seeding over a hashed
// query index, diagonal-deduplicated ungapped X-drop extension, and a
// gapped refinement pass (full Smith–Waterman over a small window around
// each high-scoring segment pair).
//
// Like the real tool, it is a heuristic: its alignments are expected to be
// near — but not exactly equal to — the exact Smith–Waterman coordinates,
// which is precisely the effect Table 2 reports.
package blast

import (
	"fmt"
	"sort"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
)

// Options tunes the pipeline.
type Options struct {
	// WordSize is the seed length (BlastN default 11).
	WordSize int
	// XDrop stops ungapped extension when the running score falls this
	// far below the best seen.
	XDrop int
	// MinScore discards HSPs (after gapped refinement) below this score.
	MinScore int
	// Margin is the window padding around an HSP for gapped refinement.
	Margin int
	// MaxHits caps the number of reported alignments (0 = unlimited).
	MaxHits int
}

// DefaultOptions mirrors common BlastN settings under the +1/−1/−2 scheme.
func DefaultOptions() Options {
	return Options{WordSize: 11, XDrop: 20, MinScore: 28, Margin: 48}
}

// Validate rejects unusable options.
func (o Options) Validate() error {
	if o.WordSize < 4 || o.WordSize > 15 {
		return fmt.Errorf("blast: word size %d outside [4,15]", o.WordSize)
	}
	if o.XDrop < 1 || o.MinScore < 1 || o.Margin < 0 || o.MaxHits < 0 {
		return fmt.Errorf("blast: invalid options %+v", o)
	}
	return nil
}

// baseCode maps a base to 2 bits; ok is false for N.
func baseCode(b byte) (uint32, bool) {
	switch b {
	case 'A':
		return 0, true
	case 'C':
		return 1, true
	case 'G':
		return 2, true
	case 'T':
		return 3, true
	}
	return 0, false
}

// index hashes every valid word of s to its (0-based) start positions.
func index(s bio.Sequence, w int) map[uint32][]int32 {
	idx := make(map[uint32][]int32)
	if s.Len() < w {
		return idx
	}
	mask := uint32(1)<<(2*uint(w)) - 1
	var word uint32
	valid := 0
	for i := 0; i < s.Len(); i++ {
		code, ok := baseCode(s[i])
		if !ok {
			valid = 0
			word = 0
			continue
		}
		word = (word<<2 | code) & mask
		valid++
		if valid >= w {
			start := int32(i - w + 1)
			idx[word] = append(idx[word], start)
		}
	}
	return idx
}

// hsp is an ungapped high-scoring segment pair (0-based half-open ranges).
type hsp struct {
	s0, s1 int // s[s0:s1]
	t0, t1 int // t[t0:t1]
	score  int
}

// extend grows a seed match at (si, ti) of length w into an ungapped HSP
// with X-drop termination.
func extend(s, t bio.Sequence, sc bio.Scoring, si, ti, w, xdrop int) hsp {
	score := 0
	for k := 0; k < w; k++ {
		score += sc.Pair(s[si+k], t[ti+k])
	}
	best := score
	// Right extension.
	bestS1, bestT1 := si+w, ti+w
	cs, i, j := score, si+w, ti+w
	for i < s.Len() && j < t.Len() {
		cs += sc.Pair(s[i], t[j])
		i++
		j++
		if cs > best {
			best, bestS1, bestT1 = cs, i, j
		}
		if cs <= best-xdrop {
			break
		}
	}
	// Left extension.
	bestS0, bestT0 := si, ti
	cs, i, j = best, si, ti
	for i > 0 && j > 0 {
		i--
		j--
		cs += sc.Pair(s[i], t[j])
		if cs > best {
			best, bestS0, bestT0 = cs, i, j
		}
		if cs <= best-xdrop {
			break
		}
	}
	return hsp{s0: bestS0, s1: bestS1, t0: bestT0, t1: bestT1, score: best}
}

// Search reports gapped local alignments of s against t, best first.
func Search(s, t bio.Sequence, sc bio.Scoring, opt Options) ([]*align.Alignment, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	w := opt.WordSize
	if s.Len() < w || t.Len() < w {
		return nil, nil
	}
	idx := index(s, w)

	// Seed scan over t with per-diagonal extension skipping: if a
	// previous extension on the same diagonal already covered this t
	// position, the seed is inside a known HSP.
	covered := make(map[int]int) // diagonal (t0-s0) → t index covered up to
	var hsps []hsp
	mask := uint32(1)<<(2*uint(w)) - 1
	var word uint32
	valid := 0
	ungappedMin := opt.MinScore * 2 / 3
	for j := 0; j < t.Len(); j++ {
		code, ok := baseCode(t[j])
		if !ok {
			valid, word = 0, 0
			continue
		}
		word = (word<<2 | code) & mask
		valid++
		if valid < w {
			continue
		}
		tStart := j - w + 1
		for _, sp := range idx[word] {
			si := int(sp)
			diag := tStart - si
			if covered[diag] >= tStart+w {
				continue
			}
			h := extend(s, t, sc, si, tStart, w, opt.XDrop)
			covered[diag] = h.t1
			if h.score >= ungappedMin {
				hsps = append(hsps, h)
			}
		}
	}

	// Gapped refinement: exact local alignment inside a padded window.
	var out []*align.Alignment
	for _, h := range hsps {
		s0 := maxInt(0, h.s0-opt.Margin)
		s1 := minInt(s.Len(), h.s1+opt.Margin)
		t0 := maxInt(0, h.t0-opt.Margin)
		t1 := minInt(t.Len(), h.t1+opt.Margin)
		al, err := align.BestLocal(s[s0:s1], t[t0:t1], sc)
		if err != nil {
			return nil, err
		}
		if al.Score < opt.MinScore {
			continue
		}
		al.SBegin += s0
		al.SEnd += s0
		al.TBegin += t0
		al.TEnd += t0
		out = append(out, al)
	}

	// Sort best-first and drop alignments overlapping a better one.
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].SBegin != out[b].SBegin {
			return out[a].SBegin < out[b].SBegin
		}
		return out[a].TBegin < out[b].TBegin
	})
	var kept []*align.Alignment
	for _, al := range out {
		dup := false
		for _, k := range kept {
			if al.SBegin <= k.SEnd && k.SBegin <= al.SEnd && al.TBegin <= k.TEnd && k.TBegin <= al.TEnd {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, al)
			if opt.MaxHits > 0 && len(kept) >= opt.MaxHits {
				break
			}
		}
	}
	return kept, nil
}

// WordIndex is a reusable hashed word index of one query — the seeding
// stage of Search, exported on its own for the database-search pruning
// prefilter (internal/search), which wants seed evidence without the
// gapped refinement pass.
type WordIndex struct {
	q   bio.Sequence
	w   int
	idx map[uint32][]int32
}

// NewWordIndex indexes every exact w-mer of q. It returns nil when w is
// outside the supported [4,15] range or q is shorter than one word;
// callers then simply skip seeding.
func NewWordIndex(q bio.Sequence, w int) *WordIndex {
	if w < 4 || w > 15 || q.Len() < w {
		return nil
	}
	return &WordIndex{q: q, w: w, idx: index(q, w)}
}

// SeedScore returns an exact lower bound on the best local-alignment
// score of the indexed query against t: the best ungapped X-drop
// extension over the exact words the two sequences share, or 0 when
// they share none. Every reported value is the score of a concrete
// ungapped local alignment, so SeedScore ≤ the exact Smith–Waterman
// score — the direction the pruning prefilter relies on. Like Search's
// seed scan, extensions are deduplicated per diagonal. xdrop ≤ 0
// selects the DefaultOptions X-drop.
func (ix *WordIndex) SeedScore(t bio.Sequence, sc bio.Scoring, xdrop int) int {
	if ix == nil || t.Len() < ix.w {
		return 0
	}
	if xdrop <= 0 {
		xdrop = DefaultOptions().XDrop
	}
	best := 0
	covered := make(map[int]int) // diagonal (t0-s0) → t index covered up to
	mask := uint32(1)<<(2*uint(ix.w)) - 1
	var word uint32
	valid := 0
	for j := 0; j < t.Len(); j++ {
		code, ok := baseCode(t[j])
		if !ok {
			valid, word = 0, 0
			continue
		}
		word = (word<<2 | code) & mask
		valid++
		if valid < ix.w {
			continue
		}
		tStart := j - ix.w + 1
		for _, sp := range ix.idx[word] {
			si := int(sp)
			diag := tStart - si
			if covered[diag] >= tStart+ix.w {
				continue
			}
			h := extend(ix.q, t, sc, si, tStart, ix.w, xdrop)
			covered[diag] = h.t1
			if h.score > best {
				best = h.score
			}
		}
	}
	return best
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
