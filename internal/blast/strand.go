package blast

import (
	"sort"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
)

// Hit is a strand-annotated alignment, as BlastN reports them.
type Hit struct {
	*align.Alignment
	// MinusStrand is true when the alignment is between s and the
	// reverse complement of t; its T coordinates refer to the original
	// (plus-strand) t, with TBegin > TEnd mirroring BlastN's convention
	// for minus-strand subject coordinates.
	MinusStrand bool
}

// SearchBothStrands searches s against both strands of t, merging the
// hits best-first. DNA homology frequently lies on the opposite strand;
// the paper's mitochondrial genomes are compared plus/plus, but the real
// BlastN it benchmarks against always checks both.
func SearchBothStrands(s, t bio.Sequence, sc bio.Scoring, opt Options) ([]Hit, error) {
	plus, err := Search(s, t, sc, opt)
	if err != nil {
		return nil, err
	}
	rc := t.ReverseComplement()
	minus, err := Search(s, rc, sc, opt)
	if err != nil {
		return nil, err
	}
	out := make([]Hit, 0, len(plus)+len(minus))
	for _, al := range plus {
		out = append(out, Hit{Alignment: al})
	}
	n := t.Len()
	for _, al := range minus {
		// Map reverse-complement coordinates back to the plus strand:
		// rc position p corresponds to t position n-p+1.
		mapped := *al
		mapped.TBegin = n - al.TBegin + 1 // > mapped.TEnd, by convention
		mapped.TEnd = n - al.TEnd + 1
		out = append(out, Hit{Alignment: &mapped, MinusStrand: true})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].SBegin != out[b].SBegin {
			return out[a].SBegin < out[b].SBegin
		}
		return out[a].TBegin < out[b].TBegin
	})
	if opt.MaxHits > 0 && len(out) > opt.MaxHits {
		out = out[:opt.MaxHits]
	}
	return out, nil
}
