package blast

import (
	"testing"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
)

var sc = bio.DefaultScoring()

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	bad := []Options{
		{WordSize: 2, XDrop: 10, MinScore: 10},
		{WordSize: 20, XDrop: 10, MinScore: 10},
		{WordSize: 11, XDrop: 0, MinScore: 10},
		{WordSize: 11, XDrop: 10, MinScore: 0},
		{WordSize: 11, XDrop: 10, MinScore: 10, Margin: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
	}
}

func TestIndexSkipsN(t *testing.T) {
	s := bio.MustSequence("ACGTACGTNNACGTACGTACGT")
	idx := index(s, 8)
	for word, positions := range idx {
		for _, p := range positions {
			for k := 0; k < 8; k++ {
				if s[int(p)+k] == 'N' {
					t.Fatalf("word %x at %d covers an N", word, p)
				}
			}
		}
	}
}

func TestIndexShortSequence(t *testing.T) {
	if got := index(bio.MustSequence("ACG"), 11); len(got) != 0 {
		t.Errorf("index of short sequence: %d words", len(got))
	}
}

func TestSearchFindsExactDuplicate(t *testing.T) {
	g := bio.NewGenerator(401)
	s := g.Random(500)
	hits, err := Search(s, s, sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("self-search found nothing")
	}
	best := hits[0]
	if best.Score < 480 {
		t.Errorf("self-search best score %d, want near 500", best.Score)
	}
	if err := best.Validate(s, s, sc); err != nil {
		t.Error(err)
	}
}

func TestSearchFindsPlantedMotifs(t *testing.T) {
	g := bio.NewGenerator(409)
	m1, m2 := g.Random(80), g.Random(60)
	s := cat(g.Random(300), m1, g.Random(200), m2, g.Random(250))
	tt := cat(g.Random(150), g.MutatedCopy(m2, bio.MutationModel{SubstitutionRate: 0.04}),
		g.Random(350), g.MutatedCopy(m1, bio.MutationModel{SubstitutionRate: 0.04}), g.Random(100))
	hits, err := Search(s, tt, sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 2 {
		t.Fatalf("found %d hits, want both planted motifs", len(hits))
	}
	for i, h := range hits {
		if err := h.Validate(s, tt, sc); err != nil {
			t.Errorf("hit %d invalid: %v", i, err)
		}
		if i > 0 && h.Score > hits[i-1].Score {
			t.Errorf("hits not sorted by score at %d", i)
		}
	}
	// The m1 hit must overlap s[301..380].
	found := false
	for _, h := range hits {
		if h.SBegin <= 380 && h.SEnd >= 301 {
			found = true
		}
	}
	if !found {
		t.Error("planted m1 not located")
	}
}

func TestSearchNoiseIsQuiet(t *testing.T) {
	g := bio.NewGenerator(419)
	s := g.Random(2000)
	tt := g.Random(2000)
	opt := DefaultOptions()
	opt.MinScore = 40
	hits, err := Search(s, tt, sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Errorf("found %d hits in unrelated noise", len(hits))
	}
}

func TestSearchMaxHits(t *testing.T) {
	g := bio.NewGenerator(421)
	motif := g.Random(50)
	s := cat(motif, g.Random(100), motif, g.Random(100), motif)
	tt := motif.Clone()
	opt := DefaultOptions()
	opt.MaxHits = 1
	hits, err := Search(s, tt, sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Errorf("MaxHits=1 returned %d", len(hits))
	}
}

func TestSearchValidation(t *testing.T) {
	s := bio.MustSequence("ACGTACGTACGTACGT")
	if _, err := Search(s, s, bio.Scoring{}, DefaultOptions()); err == nil {
		t.Error("invalid scoring accepted")
	}
	if _, err := Search(s, s, sc, Options{WordSize: 1}); err == nil {
		t.Error("invalid options accepted")
	}
	hits, err := Search(bio.MustSequence("ACG"), s, sc, DefaultOptions())
	if err != nil || hits != nil {
		t.Errorf("short query: %v %v", hits, err)
	}
}

// TestTable2CoordinatesCloseToExact is the library-level version of the
// paper's Table 2: the coordinates reported by the heuristic must be very
// close to (but not necessarily identical with) the exact Smith–Waterman
// coordinates of the same regions.
func TestTable2CoordinatesCloseToExact(t *testing.T) {
	g := bio.NewGenerator(431)
	pair, err := g.HomologousPair(3000, bio.HomologyModel{
		Regions: 3, RegionLen: 300, RegionJit: 50,
		Divergence: bio.MutationModel{SubstitutionRate: 0.05, InsertionRate: 0.004, DeletionRate: 0.004},
	})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := align.LocalsAbove(pair.S, pair.T, sc, 120)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := Search(pair.S, pair.T, sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) == 0 || len(heur) == 0 {
		t.Fatalf("exact=%d heuristic=%d alignments", len(exact), len(heur))
	}
	// For each exact alignment, a heuristic hit must exist whose begin/end
	// coordinates are within a small distance (Table 2 shows offsets of
	// tens of bases between GenomeDSM and BlastN).
	const tol = 120
	for i, ea := range exact {
		bestDist := 1 << 30
		for _, ha := range heur {
			d := absInt(ha.SBegin-ea.SBegin) + absInt(ha.TBegin-ea.TBegin) +
				absInt(ha.SEnd-ea.SEnd) + absInt(ha.TEnd-ea.TEnd)
			if d < bestDist {
				bestDist = d
			}
		}
		if bestDist > 4*tol {
			t.Errorf("exact alignment %d (%d,%d)-(%d,%d) has no nearby heuristic hit (distance %d)",
				i, ea.SBegin, ea.TBegin, ea.SEnd, ea.TEnd, bestDist)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func cat(parts ...bio.Sequence) bio.Sequence {
	var out bio.Sequence
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
