package blast_test

import (
	"testing"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/blast"
)

func TestNewWordIndexRejects(t *testing.T) {
	g := bio.NewGenerator(5)
	q := g.Random(100)
	for _, w := range []int{0, 3, 16, 101} {
		if ix := blast.NewWordIndex(q, w); ix != nil {
			t.Errorf("word size %d accepted", w)
		}
	}
	if ix := blast.NewWordIndex(q[:5], 11); ix != nil {
		t.Error("query shorter than a word accepted")
	}
	var nilIx *blast.WordIndex
	if s := nilIx.SeedScore(q, bio.DefaultScoring(), 0); s != 0 {
		t.Errorf("nil index seed score %d", s)
	}
}

// TestSeedScoreIsLowerBound is the exactness contract the search
// prefilter relies on: SeedScore never exceeds the true Smith–Waterman
// score, for related and unrelated pairs alike.
func TestSeedScoreIsLowerBound(t *testing.T) {
	g := bio.NewGenerator(15)
	sc := bio.DefaultScoring()
	q := g.Random(300)
	ix := blast.NewWordIndex(q, 11)
	if ix == nil {
		t.Fatal("index not built")
	}
	targets := []bio.Sequence{
		g.MutatedCopy(q, bio.DefaultMutationModel()),
		g.MutatedCopy(q[50:200], bio.DefaultMutationModel()),
		g.Random(400),
		g.Random(10),
		q.Clone(),
	}
	for i, tgt := range targets {
		lb := ix.SeedScore(tgt, sc, 0)
		r, err := align.Scan(q, tgt, sc, align.ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if lb > r.BestScore {
			t.Errorf("target %d: seed lower bound %d exceeds exact score %d", i, lb, r.BestScore)
		}
	}
	// The identity copy shares every word: the ungapped extension must
	// recover the full identity score.
	if lb := ix.SeedScore(q, sc, 0); lb != len(q)*sc.Match {
		t.Errorf("identity seed score %d, want %d", lb, len(q)*sc.Match)
	}
}
