package blast

import (
	"testing"

	"genomedsm/internal/bio"
)

func TestSearchBothStrandsFindsInvertedSegment(t *testing.T) {
	g := bio.NewGenerator(443)
	motif := g.Random(70)
	s := cat(g.Random(200), motif, g.Random(200))
	// Plant the motif's reverse complement into t: invisible to the
	// plus-strand search, found on the minus strand.
	tt := cat(g.Random(150), motif.ReverseComplement(), g.Random(250))

	plus, err := Search(s, tt, sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(plus) != 0 {
		t.Fatalf("plus-strand search found the inverted segment: %d hits", len(plus))
	}
	hits, err := SearchBothStrands(s, tt, sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("both-strand search missed the inverted segment")
	}
	h := hits[0]
	if !h.MinusStrand {
		t.Error("hit not flagged as minus strand")
	}
	if h.TBegin <= h.TEnd {
		t.Errorf("minus-strand t coordinates not inverted: %d..%d", h.TBegin, h.TEnd)
	}
	// The hit must overlap the planted segment in both sequences.
	if h.SEnd < 201 || h.SBegin > 270 {
		t.Errorf("hit s[%d..%d] misses planted motif at s[201..270]", h.SBegin, h.SEnd)
	}
	if h.TBegin < 151 || h.TEnd > 220 {
		t.Errorf("hit t coordinates (%d..%d) miss planted segment t[151..220]", h.TEnd, h.TBegin)
	}
}

func TestSearchBothStrandsMergesAndSorts(t *testing.T) {
	g := bio.NewGenerator(449)
	m1 := g.Random(90) // plus-strand, bigger score
	m2 := g.Random(50) // minus-strand
	s := cat(g.Random(100), m1, g.Random(100), m2, g.Random(100))
	tt := cat(g.Random(80), m1, g.Random(120), m2.ReverseComplement(), g.Random(80))
	hits, err := SearchBothStrands(s, tt, sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) < 2 {
		t.Fatalf("found %d hits, want both motifs", len(hits))
	}
	if hits[0].MinusStrand || !hits[1].MinusStrand {
		t.Errorf("strand flags wrong: %v %v", hits[0].MinusStrand, hits[1].MinusStrand)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Error("hits not sorted by score")
		}
	}
	opt := DefaultOptions()
	opt.MaxHits = 1
	one, err := SearchBothStrands(s, tt, sc, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Errorf("MaxHits=1 returned %d", len(one))
	}
}
