// Package viz renders the similar-region dot plot of Fig. 14: each local
// alignment found in phase 1 is drawn as a diagonal segment in the
// (s, t) plane, visualizing where the two genomes are similar. Output is
// ASCII (terminal) or SVG (with zoomable coordinates).
package viz

import (
	"fmt"
	"strings"

	"genomedsm/internal/heuristics"
)

// DotPlot is a plot specification.
type DotPlot struct {
	SLen, TLen int // sequence extents (x: s, y: t)
	Regions    []heuristics.Candidate
}

// ASCII renders the plot on a width×height character grid. Alignments are
// drawn as '*' runs along their diagonals; the frame carries coordinate
// ticks.
func (p *DotPlot) ASCII(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 8 {
		height = 8
	}
	if p.SLen < 1 || p.TLen < 1 {
		return "(empty plot)\n"
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	sx := func(s int) int { return clamp((s-1)*width/p.SLen, 0, width-1) }
	ty := func(t int) int { return clamp((t-1)*height/p.TLen, 0, height-1) }
	for _, r := range p.Regions {
		x0, x1 := sx(r.SBegin), sx(r.SEnd)
		y0, y1 := ty(r.TBegin), ty(r.TEnd)
		steps := maxInt(maxInt(x1-x0, y1-y0), 1)
		for k := 0; k <= steps; k++ {
			x := x0 + (x1-x0)*k/steps
			y := y0 + (y1-y0)*k/steps
			grid[y][x] = '*'
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "t\\s 1..%d (x) vs 1..%d (y), %d regions\n", p.SLen, p.TLen, len(p.Regions))
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for y := 0; y < height; y++ {
		sb.WriteString("|")
		sb.Write(grid[y])
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	return sb.String()
}

// SVG renders the plot as a standalone SVG document of the given pixel
// size. Each region is a line segment; stroke width grows with score.
func (p *DotPlot) SVG(width, height int) string {
	if width < 64 {
		width = 64
	}
	if height < 64 {
		height = 64
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height, width, height)
	sb.WriteString("\n")
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white" stroke="black"/>`, width, height)
	sb.WriteString("\n")
	if p.SLen > 0 && p.TLen > 0 {
		for _, r := range p.Regions {
			x0 := float64(r.SBegin-1) * float64(width) / float64(p.SLen)
			x1 := float64(r.SEnd) * float64(width) / float64(p.SLen)
			y0 := float64(r.TBegin-1) * float64(height) / float64(p.TLen)
			y1 := float64(r.TEnd) * float64(height) / float64(p.TLen)
			w := 1.0
			if r.Score > 100 {
				w = 2.0
			}
			fmt.Fprintf(&sb,
				`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black" stroke-width="%.1f"><title>s[%d..%d] t[%d..%d] score %d</title></line>`,
				x0, y0, x1, y1, w, r.SBegin, r.SEnd, r.TBegin, r.TEnd, r.Score)
			sb.WriteString("\n")
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
