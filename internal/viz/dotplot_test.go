package viz

import (
	"strings"
	"testing"

	"genomedsm/internal/heuristics"
)

func plot() *DotPlot {
	return &DotPlot{
		SLen: 1000, TLen: 1000,
		Regions: []heuristics.Candidate{
			{SBegin: 100, SEnd: 300, TBegin: 100, TEnd: 300, Score: 150},
			{SBegin: 700, SEnd: 900, TBegin: 200, TEnd: 400, Score: 80},
		},
	}
}

func TestASCII(t *testing.T) {
	out := plot().ASCII(40, 20)
	if !strings.Contains(out, "*") {
		t.Error("no points plotted")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 23 { // header + top frame + 20 rows + bottom frame
		t.Errorf("got %d lines", len(lines))
	}
	for _, l := range lines[1:] {
		if len(l) != 42 {
			t.Errorf("unaligned frame line %q", l)
		}
	}
	if !strings.Contains(lines[0], "2 regions") {
		t.Errorf("header: %q", lines[0])
	}
}

func TestASCIIEmptyAndTiny(t *testing.T) {
	empty := &DotPlot{}
	if out := empty.ASCII(40, 20); !strings.Contains(out, "empty") {
		t.Errorf("empty plot: %q", out)
	}
	// Tiny dimensions are clamped.
	out := plot().ASCII(1, 1)
	if !strings.Contains(out, "*") {
		t.Error("clamped plot lost points")
	}
}

func TestSVG(t *testing.T) {
	out := plot().SVG(400, 400)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not an SVG document")
	}
	if got := strings.Count(out, "<line"); got != 2 {
		t.Errorf("%d lines drawn, want 2", got)
	}
	if !strings.Contains(out, "score 150") {
		t.Error("tooltip titles missing")
	}
	if !strings.Contains(out, `stroke-width="2.0"`) {
		t.Error("high-score region not thickened")
	}
}

func TestDiagonalOrientation(t *testing.T) {
	// A main-diagonal region must produce '*' near the top-left and
	// bottom-right, not an anti-diagonal.
	p := &DotPlot{SLen: 100, TLen: 100, Regions: []heuristics.Candidate{
		{SBegin: 1, SEnd: 100, TBegin: 1, TEnd: 100, Score: 50},
	}}
	out := p.ASCII(10, 10)
	lines := strings.Split(out, "\n")
	body := lines[2 : 2+10]
	if body[0][1] != '*' || body[9][10] != '*' {
		t.Errorf("diagonal not drawn corner to corner:\n%s", out)
	}
}
