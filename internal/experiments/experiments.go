// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 1–4, Figs. 9–20, and the Section 6 analysis) on the
// simulated cluster. Each experiment prints the same rows or data series
// the paper reports.
//
// Sizes are scaled: an experiment designed for the paper's 50 kBP inputs
// runs on 50000/Scale bases. The virtual-time model (cluster.Calibrated2005)
// keeps the *shape* of the results — who wins, by what factor, where the
// crossovers fall — while the real computation stays laptop-sized. Paper
// reference values are printed alongside for comparison where the paper
// gives them.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/blast"
	"genomedsm/internal/cluster"
	"genomedsm/internal/heuristics"
	"genomedsm/internal/phase2"
	"genomedsm/internal/preprocess"
	"genomedsm/internal/stats"
	"genomedsm/internal/viz"
	"genomedsm/internal/wavefront"
)

// Ctx carries the shared experiment configuration.
type Ctx struct {
	W     io.Writer // destination for the rendered tables
	Scale int       // paper sizes are divided by Scale (≥1)
	Seed  int64     // generator seed
	Procs []int     // processor counts to sweep (default 1,2,4,8)
	Quick bool      // trim the heaviest rows (used by the Go benches)
}

// New returns a Ctx with defaults filled in.
func New(w io.Writer, scale int) *Ctx {
	if scale < 1 {
		scale = 1
	}
	return &Ctx{W: w, Scale: scale, Seed: 2005, Procs: []int{1, 2, 4, 8}}
}

func (c *Ctx) scaled(paperSize int) int {
	n := paperSize / c.Scale
	if n < 128 {
		n = 128
	}
	return n
}

func (c *Ctx) pair(paperSize int) (bio.Sequence, bio.Sequence, error) {
	n := c.scaled(paperSize)
	g := bio.NewGenerator(c.Seed + int64(paperSize))
	p, err := g.HomologousPair(n, bio.DefaultHomologyModel(n))
	if err != nil {
		return nil, nil, err
	}
	return p.S, p.T, nil
}

var heuristicParams = heuristics.Params{Open: 12, Close: 12, MinScore: 30}

var scoring = bio.DefaultScoring()

func (c *Ctx) printf(format string, args ...interface{}) {
	fmt.Fprintf(c.W, format, args...)
}

// Names lists the runnable experiment identifiers in paper order.
func Names() []string {
	return []string{"table1", "fig9", "fig10", "table2", "table3", "table4",
		"fig13", "fig14", "fig15", "fig16", "fig18", "fig19", "fig20",
		"tables567", "sec6", "ablations"}
}

// Run executes one experiment by name ("all" runs everything).
func (c *Ctx) Run(name string) error {
	switch name {
	case "table1":
		return c.Table1()
	case "fig9":
		return c.Fig9()
	case "fig10":
		return c.Fig10()
	case "table2":
		return c.Table2()
	case "table3":
		return c.Table3()
	case "table4", "fig12":
		return c.Table4()
	case "fig13":
		return c.Fig13()
	case "fig14":
		return c.Fig14()
	case "fig15":
		return c.Fig15()
	case "fig16":
		return c.Fig16()
	case "fig18":
		return c.Fig18()
	case "fig19":
		return c.Fig19()
	case "fig20":
		return c.Fig20()
	case "tables567":
		return c.Tables567()
	case "sec6":
		return c.Sec6()
	case "ablations":
		return c.Ablations()
	case "all":
		for _, n := range Names() {
			if err := c.Run(n); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
			c.printf("\n")
		}
		return nil
	default:
		return fmt.Errorf("experiments: unknown experiment %q (have %v, all)", name, Names())
	}
}

func iabs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// table1Sizes are the paper's Table 1 input sizes (base pairs) and its
// measured times in seconds for {serial, 2, 4, 8} processors.
var table1Sizes = []struct {
	label string
	bp    int
	paper [4]float64
}{
	{"15K", 15000, [4]float64{296, 283.18, 202.18, 181.29}},
	{"50K", 50000, [4]float64{3461, 2884.15, 1669.53, 1107.02}},
	{"80K", 80000, [4]float64{7967, 6094.18, 3370.40, 2162.82}},
	{"150K", 150000, [4]float64{24107, 19522.95, 10377.89, 5991.79}},
	{"400K", 400000, [4]float64{175295, 141840.98, 72770.99, 38206.84}},
}

// table1Rows runs the heuristic (no-blocking) strategy over the Table 1
// grid and returns the modelled times, one row per size, indexed by the
// processor sweep.
func (c *Ctx) table1Rows() ([][]float64, []string, error) {
	sizes := table1Sizes
	if c.Quick {
		sizes = sizes[:2]
	}
	cc := cluster.Calibrated2005()
	var rows [][]float64
	var labels []string
	for _, sz := range sizes {
		s, t, err := c.pair(sz.bp)
		if err != nil {
			return nil, nil, err
		}
		row := make([]float64, len(c.Procs))
		for pi, p := range c.Procs {
			res, err := wavefront.RunNoBlock(p, cc, s, t, scoring, heuristicParams)
			if err != nil {
				return nil, nil, err
			}
			row[pi] = res.Makespan
		}
		rows = append(rows, row)
		labels = append(labels, sz.label)
	}
	return rows, labels, nil
}

// Table1 reproduces "Total execution times (s) for 5 sequence sizes"
// (heuristic strategy, no blocking factors).
func (c *Ctx) Table1() error {
	rows, labels, err := c.table1Rows()
	if err != nil {
		return err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Table 1 — total execution times, heuristic strategy (sizes scaled 1/%d, modelled 2005 cluster)", c.Scale),
		"size", "serial", "2 proc", "4 proc", "8 proc", "paper serial", "paper 8 proc")
	for i, row := range rows {
		ref := table1Sizes[i].paper
		cells := []interface{}{labels[i] + "(scaled)"}
		for _, v := range row {
			cells = append(cells, v)
		}
		for len(cells) < 5 {
			cells = append(cells, "-")
		}
		cells = append(cells, ref[0], ref[3])
		tbl.AddRow(cells...)
	}
	c.printf("%s", tbl.Render())
	return nil
}

// Fig9 reproduces the absolute speed-ups of the Table 1 runs.
func (c *Ctx) Fig9() error {
	rows, labels, err := c.table1Rows()
	if err != nil {
		return err
	}
	var series []stats.Series
	for i, row := range rows {
		var pts []stats.Point
		for pi, p := range c.Procs {
			pts = append(pts, stats.Point{X: float64(p), Y: cluster.Speedup(row[0], row[pi])})
		}
		series = append(series, stats.Series{Label: labels[i], Points: pts})
	}
	c.printf("%s", stats.RenderSeries(
		fmt.Sprintf("Fig. 9 — absolute speed-ups, heuristic strategy (scaled 1/%d; paper: 15K flat ≈1.6, 400K ≈4.6 at 8 procs)", c.Scale),
		"procs", series))
	return nil
}

// Fig10 reproduces the execution-time breakdown per category at 8
// processors for each size.
func (c *Ctx) Fig10() error {
	sizes := table1Sizes
	if c.Quick {
		sizes = sizes[:2]
	}
	cc := cluster.Calibrated2005()
	tbl := stats.NewTable(
		fmt.Sprintf("Fig. 10 — execution-time breakdown at 8 processors (scaled 1/%d)", c.Scale),
		"size", "computation", "communication", "lock+cv", "barrier")
	for _, sz := range sizes {
		s, t, err := c.pair(sz.bp)
		if err != nil {
			return err
		}
		res, err := wavefront.RunNoBlock(8, cc, s, t, scoring, heuristicParams)
		if err != nil {
			return err
		}
		merged := cluster.Merge(res.Breakdowns)
		sum := 0.0
		for _, v := range merged.Cat {
			sum += v
		}
		pct := func(cat cluster.Category) string {
			if sum == 0 {
				return "0%"
			}
			return fmt.Sprintf("%.1f%%", 100*merged.Cat[cat]/sum)
		}
		tbl.AddRowRaw(sz.label+"(scaled)", pct(cluster.Compute), pct(cluster.Comm),
			pct(cluster.LockCV), pct(cluster.Barrier))
	}
	c.printf("%s", tbl.Render())
	return nil
}

// Table2 compares GenomeDSM's exact/heuristic coordinates against the
// BlastN-style baseline on one ~50 kBP (scaled) genome pair, printing the
// begin/end coordinates of the best alignments side by side.
func (c *Ctx) Table2() error {
	s, t, err := c.pair(50000)
	if err != nil {
		return err
	}
	cands, err := heuristics.Scan(s, t, scoring, heuristics.Params{Open: 12, Close: 12, MinScore: 60})
	if err != nil {
		return err
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].Score > cands[b].Score })
	opt := blast.DefaultOptions()
	opt.MinScore = 60
	hits, err := blast.Search(s, t, scoring, opt)
	if err != nil {
		return err
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Table 2 — GenomeDSM vs BlastN-style coordinates (scaled 1/%d genome pair)", c.Scale),
		"alignment", "GenomeDSM begin", "GenomeDSM end", "BlastN begin", "BlastN end")
	// Pair each GenomeDSM alignment with the nearest BlastN hit, the way
	// the paper's Table 2 lines the two tools' reports up.
	nrows := 3
	for i := 0; i < nrows; i++ {
		g := "-"
		ge := "-"
		b := "-"
		be := "-"
		if i < len(cands) {
			g = fmt.Sprintf("(%d,%d)", cands[i].SBegin, cands[i].TBegin)
			ge = fmt.Sprintf("(%d,%d)", cands[i].SEnd, cands[i].TEnd)
			bestDist := 1 << 60
			for _, h := range hits {
				d := iabs(h.SBegin-cands[i].SBegin) + iabs(h.TBegin-cands[i].TBegin)
				if d < bestDist {
					bestDist = d
					b = fmt.Sprintf("(%d,%d)", h.SBegin, h.TBegin)
					be = fmt.Sprintf("(%d,%d)", h.SEnd, h.TEnd)
				}
			}
		}
		tbl.AddRowRaw(fmt.Sprintf("Alignment %d", i+1), g, ge, b, be)
	}
	c.printf("%s", tbl.Render())
	c.printf("(as in the paper, both tools report very close but not identical coordinates)\n")
	return nil
}

// Table3 reproduces the blocking-multiplier sweep: 50 kBP (scaled), 8
// processors, multipliers 1×1 … 5×5, with the performance gain relative
// to 1×1.
func (c *Ctx) Table3() error {
	s, t, err := c.pair(50000)
	if err != nil {
		return err
	}
	cc := cluster.Calibrated2005()
	paperGain := map[string]string{"1×1": "0%", "2×2": "59%", "3×3": "85%", "4×4": "99%", "5×5": "101%"}
	tbl := stats.NewTable(
		fmt.Sprintf("Table 3 — execution times for 8 processors, 50K (scaled 1/%d), varying blocking multipliers", c.Scale),
		"blocking factor", "time", "gain vs 1×1", "paper gain")
	var base float64
	for m := 1; m <= 5; m++ {
		bc := wavefront.MultiplierConfig(m, m, 8)
		res, err := wavefront.RunBlocked(8, cc, s, t, scoring, heuristicParams, bc)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%d×%d", m, m)
		if m == 1 {
			base = res.Makespan
		}
		gain := fmt.Sprintf("%.0f%%", 100*(base-res.Makespan)/res.Makespan)
		tbl.AddRowRaw(label, stats.FormatSeconds(res.Makespan), gain, paperGain[label])
	}
	c.printf("%s", tbl.Render())
	return nil
}

// table4Sizes are the Table 4 sizes with the paper's times/speed-ups.
var table4Sizes = []struct {
	label  string
	bp     int
	bands  wavefront.BlockConfig
	paper8 float64 // paper 8-proc speed-up
}{
	{"8K", 8000, wavefront.BlockConfig{Bands: 40, Blocks: 40}, 4.55},
	{"15K", 15000, wavefront.BlockConfig{Bands: 40, Blocks: 40}, 7.29},
	{"50K", 50000, wavefront.BlockConfig{Bands: 40, Blocks: 25}, 7.21},
}

// Table4 reproduces the blocked-strategy execution times and speed-ups
// (the data behind Fig. 12 as well).
func (c *Ctx) Table4() error {
	cc := cluster.Calibrated2005()
	tbl := stats.NewTable(
		fmt.Sprintf("Table 4 / Fig. 12 — blocked strategy times and speed-ups (scaled 1/%d)", c.Scale),
		"size", "bands", "serial", "2 proc", "4 proc", "8 proc", "speedup@8", "paper speedup@8")
	for _, sz := range table4Sizes {
		s, t, err := c.pair(sz.bp)
		if err != nil {
			return err
		}
		bc := sz.bands
		if bc.Bands > s.Len() {
			bc.Bands = s.Len()
		}
		if bc.Blocks > t.Len() {
			bc.Blocks = t.Len()
		}
		times := make([]float64, len(c.Procs))
		for pi, p := range c.Procs {
			res, err := wavefront.RunBlocked(p, cc, s, t, scoring, heuristicParams, bc)
			if err != nil {
				return err
			}
			times[pi] = res.Makespan
		}
		tbl.AddRow(sz.label+"(scaled)", fmt.Sprintf("%d×%d", bc.Bands, bc.Blocks),
			times[0], times[1], times[2], times[3],
			fmt.Sprintf("%.2f", cluster.Speedup(times[0], times[3])),
			fmt.Sprintf("%.2f", sz.paper8))
	}
	c.printf("%s", tbl.Render())
	return nil
}

// Fig13 compares the blocked and non-blocked strategies at 8 processors.
func (c *Ctx) Fig13() error {
	cc := cluster.Calibrated2005()
	tbl := stats.NewTable(
		fmt.Sprintf("Fig. 13 — blocking vs no blocking at 8 processors (scaled 1/%d; paper 50K: 1362s → 313s)", c.Scale),
		"size", "serial (no block)", "8 proc (no block)", "8 proc (block)")
	for _, bp := range []int{15000, 50000} {
		s, t, err := c.pair(bp)
		if err != nil {
			return err
		}
		serial, err := wavefront.RunNoBlock(1, cc, s, t, scoring, heuristicParams)
		if err != nil {
			return err
		}
		nb, err := wavefront.RunNoBlock(8, cc, s, t, scoring, heuristicParams)
		if err != nil {
			return err
		}
		bl, err := wavefront.RunBlocked(8, cc, s, t, scoring, heuristicParams,
			wavefront.MultiplierConfig(5, 5, 8))
		if err != nil {
			return err
		}
		tbl.AddRow(fmt.Sprintf("%dK(scaled)", bp/1000), serial.Makespan, nb.Makespan, bl.Makespan)
	}
	c.printf("%s", tbl.Render())
	return nil
}

// Fig14 renders the similar-region dot plot for the 50 kBP (scaled) pair.
func (c *Ctx) Fig14() error {
	s, t, err := c.pair(50000)
	if err != nil {
		return err
	}
	cands, err := heuristics.Scan(s, t, scoring, heuristics.Params{Open: 12, Close: 12, MinScore: 40})
	if err != nil {
		return err
	}
	plot := &viz.DotPlot{SLen: s.Len(), TLen: t.Len(), Regions: cands}
	c.printf("Fig. 14 — similar-region dot plot (scaled 1/%d; the paper shows 123 regions for its 50K pair)\n%s",
		c.Scale, plot.ASCII(72, 24))
	return nil
}

// fig15Counts are the paper's subsequence-pair counts, scaled.
func (c *Ctx) fig15Counts() []int {
	paper := []int{100, 1000, 2000, 3000, 4000, 5000}
	if c.Quick {
		paper = paper[:2]
	}
	out := make([]int, len(paper))
	for i, v := range paper {
		n := v / c.Scale
		if n < 4 {
			n = 4
		}
		out[i] = n
	}
	return out
}

// Fig15 reproduces the phase-2 speed-ups for a varying number of
// subsequence comparisons (average subsequence size ≈253, as the paper
// measured).
func (c *Ctx) Fig15() error {
	cc := cluster.Calibrated2005()
	g := bio.NewGenerator(c.Seed + 15)
	// One big backing pair; jobs point into it with ~253-base regions.
	counts := c.fig15Counts()
	maxJobs := counts[len(counts)-1]
	// Keep planted-region occupancy low enough that the non-overlapping
	// placement can seat every region.
	n := 700 * (maxJobs + 2)
	pair, err := g.HomologousPair(n, bio.HomologyModel{
		Regions: maxJobs, RegionLen: 253, RegionJit: 80,
		Divergence: bio.MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		return err
	}
	jobs := make([]phase2.Job, len(pair.Regions))
	for i, r := range pair.Regions {
		jobs[i] = phase2.Job{SBegin: r.SBegin, SEnd: r.SEnd, TBegin: r.TBegin, TEnd: r.TEnd}
	}
	var series []stats.Series
	for _, count := range counts {
		if count > len(jobs) {
			count = len(jobs)
		}
		sub := jobs[:count]
		serial, err := phase2.Run(1, cc, pair.S, pair.T, scoring, sub)
		if err != nil {
			return err
		}
		var pts []stats.Point
		for _, p := range c.Procs {
			if p == 1 {
				pts = append(pts, stats.Point{X: 1, Y: 1})
				continue
			}
			res, err := phase2.Run(p, cc, pair.S, pair.T, scoring, sub)
			if err != nil {
				return err
			}
			pts = append(pts, stats.Point{X: float64(p), Y: cluster.Speedup(serial.Makespan, res.Makespan)})
		}
		series = append(series, stats.Series{Label: fmt.Sprintf("%d comp", count*c.Scale), Points: pts})
	}
	c.printf("%s", stats.RenderSeries(
		fmt.Sprintf("Fig. 15 — phase-2 speed-ups, scattered mapping (counts scaled 1/%d; paper: 7.57 at 1000 pairs / 8 procs)", c.Scale),
		"procs", series))
	return nil
}

// Fig16 prints example phase-2 global alignments in the paper's report
// format.
func (c *Ctx) Fig16() error {
	g := bio.NewGenerator(c.Seed + 16)
	pair, err := g.HomologousPair(4000, bio.HomologyModel{
		Regions: 2, RegionLen: 80, RegionJit: 20,
		Divergence: bio.MutationModel{SubstitutionRate: 0.10, InsertionRate: 0.01, DeletionRate: 0.01},
	})
	if err != nil {
		return err
	}
	jobs := make([]phase2.Job, len(pair.Regions))
	for i, r := range pair.Regions {
		jobs[i] = phase2.Job{SBegin: r.SBegin, SEnd: r.SEnd, TBegin: r.TBegin, TEnd: r.TEnd}
	}
	als, err := phase2.Sequential(pair.S, pair.T, scoring, jobs)
	if err != nil {
		return err
	}
	c.printf("Fig. 16 — global alignments of subsequences generated in phase 1\n\n")
	for _, al := range als {
		c.printf("%s\n", al.RenderReport(pair.S, pair.T, 32))
	}
	return nil
}

// fig18Sizes are the §5.1 sizes.
var fig18Sizes = []int{16000, 40000, 80000}

// preprocessConfigs is the §5.1 configuration grid (Fig. 19's options).
func preprocessConfigs(scale int) []struct {
	label string
	cfg   preprocess.Config
} {
	blk1k := 1024 / scale
	if blk1k < 16 {
		blk1k = 16
	}
	blk4k := 4096 / scale
	if blk4k < 64 {
		blk4k = 64
	}
	mk := func(scheme preprocess.BandScheme, size int) preprocess.Config {
		return preprocess.Config{
			BandScheme: scheme, BandSize: size,
			ChunkSize: size, ResultInterleave: size,
			Threshold: 25, IOMode: preprocess.IONone,
		}
	}
	return []struct {
		label string
		cfg   preprocess.Config
	}{
		{"Bal. 1K blks, no IO", mk(preprocess.BandBalanced, blk1k)},
		{"Equal blks, no IO", mk(preprocess.BandEqual, blk1k)},
		{"1K blks, no IO", mk(preprocess.BandFixed, blk1k)},
		{"Bal. 4K blks, no IO", mk(preprocess.BandBalanced, blk4k)},
		{"4K blks, no IO", mk(preprocess.BandFixed, blk4k)},
	}
}

// Fig18 reproduces the pre-process speed-ups on the average and the best
// core time across the configuration grid.
func (c *Ctx) Fig18() error {
	cc := cluster.Calibrated2005()
	cfgs := preprocessConfigs(c.Scale)
	sizes := fig18Sizes
	if c.Quick {
		sizes = sizes[:1]
	}
	var avgSeries, bestSeries []stats.Series
	for _, bp := range sizes {
		s, t, err := c.pair(bp)
		if err != nil {
			return err
		}
		avg := map[int]float64{}
		best := map[int]float64{}
		for _, pc := range cfgs {
			for _, p := range c.Procs {
				res, err := preprocess.Run(p, cc, s, t, scoring, pc.cfg, nil)
				if err != nil {
					return err
				}
				avg[p] += res.CoreTime / float64(len(cfgs))
				if best[p] == 0 || res.CoreTime < best[p] {
					best[p] = res.CoreTime
				}
			}
		}
		label := fmt.Sprintf("%dK seq", bp/1000)
		var aPts, bPts []stats.Point
		for _, p := range c.Procs {
			aPts = append(aPts, stats.Point{X: float64(p), Y: avg[c.Procs[0]] / avg[p]})
			bPts = append(bPts, stats.Point{X: float64(p), Y: best[c.Procs[0]] / best[p]})
		}
		avgSeries = append(avgSeries, stats.Series{Label: label, Points: aPts})
		bestSeries = append(bestSeries, stats.Series{Label: label, Points: bPts})
	}
	c.printf("%s\n", stats.RenderSeries(
		fmt.Sprintf("Fig. 18a — pre-process speed-up on the average core time (scaled 1/%d; paper ≈75%% of linear)", c.Scale),
		"procs", avgSeries))
	c.printf("%s", stats.RenderSeries(
		fmt.Sprintf("Fig. 18b — pre-process speed-up on the best core time (paper ≈80%% of linear)"),
		"procs", bestSeries))
	return nil
}

// Fig19 reproduces the effect of the blocking options on run times.
func (c *Ctx) Fig19() error {
	cc := cluster.Calibrated2005()
	cfgs := preprocessConfigs(c.Scale)
	sizes := fig18Sizes
	if c.Quick {
		sizes = sizes[:1]
	}
	headers := []string{"procs/size"}
	for _, pc := range cfgs {
		headers = append(headers, pc.label)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("Fig. 19 — effect of blocking options on core times (scaled 1/%d)", c.Scale),
		headers...)
	for _, p := range c.Procs {
		for _, bp := range sizes {
			s, t, err := c.pair(bp)
			if err != nil {
				return err
			}
			row := []string{fmt.Sprintf("%d procs/%dK seq", p, bp/1000)}
			for _, pc := range cfgs {
				res, err := preprocess.Run(p, cc, s, t, scoring, pc.cfg, nil)
				if err != nil {
					return err
				}
				row = append(row, stats.FormatSeconds(res.CoreTime))
			}
			tbl.AddRowRaw(row...)
		}
	}
	c.printf("%s", tbl.Render())
	return nil
}

// Fig20 reproduces the effect of the I/O modes (1K blocks).
func (c *Ctx) Fig20() error {
	cc := cluster.Calibrated2005()
	base := preprocessConfigs(c.Scale)[2].cfg // fixed 1K blocks
	base.SaveInterleave = base.ChunkSize
	sizes := fig18Sizes
	if c.Quick {
		sizes = sizes[:1]
	}
	modes := []preprocess.IOMode{preprocess.IONone, preprocess.IOImmediate, preprocess.IODeferred}
	tbl := stats.NewTable(
		fmt.Sprintf("Fig. 20 — effect of I/O options on run times, 1K blocks (scaled 1/%d)", c.Scale),
		"procs/size", "1K blks, no IO", "1K blks, immed. IO", "1K blks, def. IO")
	for _, p := range c.Procs {
		for _, bp := range sizes {
			s, t, err := c.pair(bp)
			if err != nil {
				return err
			}
			row := []string{fmt.Sprintf("%d procs/%dK seq", p, bp/1000)}
			for _, mode := range modes {
				cfg := base
				cfg.IOMode = mode
				var sink preprocess.ColumnSink
				if mode != preprocess.IONone {
					sink = &preprocess.DiscardSink{}
				}
				res, err := preprocess.Run(p, cc, s, t, scoring, cfg, sink)
				if err != nil {
					return err
				}
				row = append(row, stats.FormatSeconds(res.CoreTime+res.TermTime))
			}
			tbl.AddRowRaw(row...)
		}
	}
	c.printf("%s", tbl.Render())
	c.printf("(paper: saving at these frequencies has little effect; deferred ≈ immediate thanks to the NFS buffer cache)\n")
	return nil
}

// Tables567 reproduces the Section 6 worked example on the paper's exact
// input strings: Table 5 detects the score-6 alignment ending at
// positions (14, 15); Table 6 is the matrix over the reverses; Table 7
// shows the same matrix with the computations descending from
// intermediate zeros eliminated (Theorem 6.2).
func (c *Ctx) Tables567() error {
	s := bio.MustSequence("TCTCGACGGATTAGTATATATATA")
	t := bio.MustSequence("ATATGATCGGAATAGCTCT")
	detect, full, pruned, err := align.ReverseExample(s, t, scoring)
	if err != nil {
		return err
	}
	c.printf("Table 5 — detection of the \"good\" score over s=%s, t=%s\n%s\n", s, t, detect)
	c.printf("Table 6 — detection of alignments over the reverses\n%s\n", full)
	c.printf("Table 7 — detection of alignments of minimal length over the reverses\n(blank cells are pruned by Theorem 6.2)\n%s", pruned)
	return nil
}

// Sec6 measures the Section 6 reverse-retrieval method: worst-case useful
// area (Eq. 3 says ≈30%) and typical-case savings. Both rows share one
// align.Retriever so the second retrieval reuses the arena the first one
// grew, matching how the search pipeline drives retrievals.
func (c *Ctx) Sec6() error {
	g := bio.NewGenerator(c.Seed + 6)
	var rt align.Retriever
	tbl := stats.NewTable(
		"Section 6 — reverse retrieval: useful area of the n'×n' matrix (Eq. 3 bound ≈30% worst case)",
		"case", "n'", "cells computed", "naive cells", "useful fraction")

	// Worst case: the alignment spans the whole sequence (s vs s).
	n := c.scaled(50000)
	if n > 4000 {
		n = 4000
	}
	s := g.Random(n)
	r, err := align.Scan(s, s, scoring, align.ScanOptions{})
	if err != nil {
		return err
	}
	_, st, err := rt.ReverseRetrieve(s, s, scoring, r.BestI, r.BestJ, r.BestScore)
	if err != nil {
		return err
	}
	tbl.AddRowRaw("worst (self)", fmt.Sprintf("%d", n),
		stats.FormatCount(st.CellsComputed), stats.FormatCount(st.FullCells),
		fmt.Sprintf("%.1f%%", 100*st.UsefulFraction()))

	// Typical case: a short alignment deep inside long sequences.
	motif := g.Random(300)
	long := append(append(g.Random(3*n/2).Clone(), motif...), g.Random(n/8)...)
	other := append(append(g.Random(n).Clone(), g.MutatedCopy(motif, bio.MutationModel{SubstitutionRate: 0.04})...), g.Random(n/8)...)
	r2, err := align.Scan(long, other, scoring, align.ScanOptions{})
	if err != nil {
		return err
	}
	al, st2, err := rt.ReverseRetrieve(long, other, scoring, r2.BestI, r2.BestJ, r2.BestScore)
	if err != nil {
		return err
	}
	tbl.AddRowRaw("typical (planted 300bp)", fmt.Sprintf("%d", al.Length()),
		stats.FormatCount(st2.CellsComputed), stats.FormatCount(st2.FullCells),
		fmt.Sprintf("%.2f%%", 100*st2.UsefulFraction()))
	c.printf("%s", tbl.Render())
	return nil
}
