package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickCtx runs experiments at micro scale with trimmed grids.
func quickCtx(buf *bytes.Buffer) *Ctx {
	ctx := New(buf, 100)
	ctx.Quick = true
	return ctx
}

func TestNamesAllRunnable(t *testing.T) {
	for _, name := range Names() {
		var buf bytes.Buffer
		if err := quickCtx(&buf).Run(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := quickCtx(&buf).Run("all"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Fig. 9", "Fig. 10", "Table 2",
		"Table 3", "Table 4", "Fig. 13", "Fig. 14", "Fig. 15", "Fig. 16",
		"Fig. 18a", "Fig. 18b", "Fig. 19", "Fig. 20", "Section 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("combined output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := quickCtx(&buf).Run("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestScaleClamp(t *testing.T) {
	ctx := New(&bytes.Buffer{}, 0)
	if ctx.Scale != 1 {
		t.Errorf("scale %d, want clamp to 1", ctx.Scale)
	}
	if n := ctx.scaled(50); n != 128 {
		t.Errorf("tiny scaled size %d, want floor 128", n)
	}
}

// TestTable3ShapeAtModerateScale asserts the Table 3 qualitative claim at
// a scale where block compute still dominates per-block sync: any
// blocking beats 1×1, substantially.
func TestTable3ShapeAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale experiment")
	}
	var buf bytes.Buffer
	ctx := New(&buf, 25)
	if err := ctx.Run("table3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2×2") || strings.Contains(out, "gain vs 1×1   paper\n1×1") {
		t.Logf("output:\n%s", out)
	}
	// The 1×1 row must be the slowest configuration: every other row
	// shows a positive gain.
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if strings.HasPrefix(l, "2×2") || strings.HasPrefix(l, "3×3") {
			if strings.Contains(l, "-") && strings.Contains(l, "-%") {
				t.Errorf("blocking slower than 1×1: %s", l)
			}
		}
	}
}
