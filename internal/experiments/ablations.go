package experiments

import (
	"fmt"

	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/phase2"
	"genomedsm/internal/stats"
	"genomedsm/internal/wavefront"
)

// Ablations quantifies the design choices the paper discusses but does
// not measure: the cost of the DSM abstraction against raw message
// passing, the write-invalidate/write-update protocol choice, home
// migration, and a heterogeneous cluster (the paper's future work).
func (c *Ctx) Ablations() error {
	s, t, err := c.pair(50000)
	if err != nil {
		return err
	}
	cc := cluster.Calibrated2005()
	bc := wavefront.MultiplierConfig(5, 5, 8)

	tbl := stats.NewTable(
		fmt.Sprintf("Ablations — blocked strategy, 8 processors, 50K (scaled 1/%d)", c.Scale),
		"variant", "simulated time", "protocol bytes", "notes")

	dsmRes, err := wavefront.RunBlocked(8, cc, s, t, scoring, heuristicParams, bc)
	if err != nil {
		return err
	}
	tbl.AddRowRaw("DSM (paper's design)", stats.FormatSeconds(dsmRes.Makespan),
		stats.FormatCount(dsmRes.Stats.BytesMoved), "write-invalidate, Fig. 6 barrier")

	mpRes, err := wavefront.RunBlockedMP(8, cc, s, t, scoring, heuristicParams, bc)
	if err != nil {
		return err
	}
	tbl.AddRowRaw("message passing", stats.FormatSeconds(mpRes.Makespan),
		stats.FormatCount(mpRes.Stats.BytesMoved),
		fmt.Sprintf("DSM overhead ×%.2f", dsmRes.Makespan/mpRes.Makespan))

	hetero := cc
	hetero.NodeSpeeds = []float64{1, 1, 1, 1, 0.5, 1, 1, 1}
	hetRes, err := wavefront.RunBlocked(8, hetero, s, t, scoring, heuristicParams, bc)
	if err != nil {
		return err
	}
	tbl.AddRowRaw("one half-speed node", stats.FormatSeconds(hetRes.Makespan),
		stats.FormatCount(hetRes.Stats.BytesMoved),
		fmt.Sprintf("slowdown ×%.2f (future-work heterogeneity)", hetRes.Makespan/dsmRes.Makespan))

	c.printf("%s", tbl.Render())

	// Coherence-protocol micro-ablation on a producer/consumer pattern.
	pc := func(protocol dsm.Protocol) (float64, dsm.Stats, error) {
		sys, err := dsm.NewSystem(2, cc, dsm.Options{Protocol: protocol})
		if err != nil {
			return 0, dsm.Stats{}, err
		}
		r, err := sys.AllocAt(cc.PageSize, 0)
		if err != nil {
			return 0, dsm.Stats{}, err
		}
		err = sys.Run(func(n *dsm.Node) error {
			for e := 0; e < 32; e++ {
				if n.ID() == 0 {
					if err := n.WithLock(0, func() error { return n.WriteAt(r, 5, []byte{byte(e)}) }); err != nil {
						return err
					}
					if err := n.Setcv(0); err != nil {
						return err
					}
					if err := n.Waitcv(1); err != nil {
						return err
					}
				} else {
					if err := n.Waitcv(0); err != nil {
						return err
					}
					var b [1]byte
					if err := n.WithLock(0, func() error { return n.ReadAt(r, 5, b[:]) }); err != nil {
						return err
					}
					if err := n.Setcv(1); err != nil {
						return err
					}
				}
			}
			return nil
		})
		return sys.Makespan(), sys.TotalStats(), err
	}
	tbl2 := stats.NewTable("Coherence-protocol ablation — 32-round producer/consumer on one hot page",
		"protocol", "simulated time", "page fetches", "patches", "bytes")
	for _, protocol := range []dsm.Protocol{dsm.WriteInvalidate, dsm.WriteUpdate} {
		mk, st, err := pc(protocol)
		if err != nil {
			return err
		}
		tbl2.AddRowRaw(protocol.String(), stats.FormatSeconds(mk),
			fmt.Sprintf("%d", st.PageFetches), fmt.Sprintf("%d", st.Updates),
			stats.FormatCount(st.BytesMoved))
	}
	c.printf("\n%s", tbl2.Render())

	// Phase-2 work-distribution ablation: §4.4's lock-free scattered
	// mapping vs a lock-protected shared queue.
	g := bio.NewGenerator(c.Seed + 44)
	nJobs := 1000 / c.Scale
	if nJobs < 8 {
		nJobs = 8
	}
	pairP2, err := g.HomologousPair(700*nJobs, bio.HomologyModel{
		Regions: nJobs, RegionLen: 253, RegionJit: 60,
		Divergence: bio.MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		return err
	}
	jobs := make([]phase2.Job, len(pairP2.Regions))
	for i, r := range pairP2.Regions {
		jobs[i] = phase2.Job{SBegin: r.SBegin, SEnd: r.SEnd, TBegin: r.TBegin, TEnd: r.TEnd}
	}
	tbl3 := stats.NewTable(
		fmt.Sprintf("Phase-2 distribution ablation — %d subsequence pairs, 8 processors", len(jobs)),
		"distribution", "simulated time", "lock acquires")
	scat, err := phase2.Run(8, cc, pairP2.S, pairP2.T, scoring, jobs)
	if err != nil {
		return err
	}
	tbl3.AddRowRaw("scattered mapping (§4.4)", stats.FormatSeconds(scat.Makespan),
		fmt.Sprintf("%d", scat.Stats.LockAcquires))
	lq, err := phase2.RunLockQueue(8, cc, pairP2.S, pairP2.T, scoring, jobs)
	if err != nil {
		return err
	}
	tbl3.AddRowRaw("lock-protected shared queue", stats.FormatSeconds(lq.Makespan),
		fmt.Sprintf("%d", lq.Stats.LockAcquires))
	c.printf("\n%s", tbl3.Render())
	return nil
}
