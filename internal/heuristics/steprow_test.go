package heuristics

import (
	"testing"

	"genomedsm/internal/bio"
)

// stepRowRef advances one row with the per-cell reference transition
// (Kernel.Step), mirroring StepRow's contract exactly. The differential
// tests below hold the two implementations bit-identical; this is the
// ground the "parallel == sequential" invariant stands on, because the
// wavefront strategies call StepRow on arbitrary row fragments.
func stepRowRef(k *Kernel, prev, cur []Cell, i, j0 int, emit func(Candidate)) {
	for x := 1; x < len(cur); x++ {
		cur[x] = k.Step(&prev[x-1], &cur[x-1], &prev[x], i, j0+x-1, emit)
	}
}

// diffPair runs a whole matrix through StepRow and through stepRowRef and
// requires every cell of every row and every emitted candidate to be
// identical.
func diffPair(t *testing.T, name string, s, tt bio.Sequence, sc bio.Scoring, p Params) {
	t.Helper()
	k, err := NewKernel(s, tt, sc, p)
	if err != nil {
		t.Fatalf("%s: NewKernel: %v", name, err)
	}
	m, n := s.Len(), tt.Len()
	prevA := make([]Cell, n+1)
	curA := make([]Cell, n+1)
	prevB := make([]Cell, n+1)
	curB := make([]Cell, n+1)
	var candA, candB []Candidate
	emitA := func(c Candidate) { candA = append(candA, c) }
	emitB := func(c Candidate) { candB = append(candB, c) }
	for i := 1; i <= m; i++ {
		curA[0], curB[0] = Cell{}, Cell{}
		k.StepRow(prevA, curA, i, 1, emitA)
		stepRowRef(k, prevB, curB, i, 1, emitB)
		for j := 0; j <= n; j++ {
			if curA[j] != curB[j] {
				t.Fatalf("%s: row %d col %d: StepRow %+v != Step %+v", name, i, j, curA[j], curB[j])
			}
		}
		prevA, curA = curA, prevA
		prevB, curB = curB, prevB
	}
	if len(candA) != len(candB) {
		t.Fatalf("%s: %d candidates from StepRow, %d from Step", name, len(candA), len(candB))
	}
	for i := range candA {
		if candA[i] != candB[i] {
			t.Fatalf("%s: candidate %d: %+v != %+v", name, i, candA[i], candB[i])
		}
	}
}

func TestStepRowMatchesStep(t *testing.T) {
	sc := bio.DefaultScoring()
	p := Params{Open: 6, Close: 6, MinScore: 8}
	g := bio.NewGenerator(7)

	t.Run("random", func(t *testing.T) {
		s := g.Random(120)
		u := g.Random(140)
		diffPair(t, "random", s, u, sc, p)
	})
	t.Run("homologous", func(t *testing.T) {
		s := g.Random(150)
		u := g.MutatedCopy(s, bio.DefaultMutationModel())
		diffPair(t, "homologous", s, u, sc, p)
	})
	t.Run("identical", func(t *testing.T) {
		s := g.Random(100)
		diffPair(t, "identical", s, s, sc, p)
	})
	t.Run("with-N", func(t *testing.T) {
		s := bio.Sequence("ACGTNNACGTACGTNACGTACGTNNNACGTACGTACGTNACGT")
		u := bio.Sequence("ACGTACNTACGTACGTNACGTANGTACGTCCNNACGTACGTAC")
		diffPair(t, "with-N", s, u, sc, p)
	})
	t.Run("all-N", func(t *testing.T) {
		s := bio.Sequence("NNNNNNNNNN")
		u := bio.Sequence("NNNNNNNNNNNN")
		diffPair(t, "all-N", s, u, sc, p)
	})
	t.Run("tight-thresholds", func(t *testing.T) {
		// Open/Close of 1 exercises the open and close branches on nearly
		// every live cell, including immediate close-after-open.
		s := g.Random(80)
		u := g.MutatedCopy(s, bio.DefaultMutationModel())
		diffPair(t, "tight", s, u, sc, Params{Open: 1, Close: 1, MinScore: 1})
	})
}

// TestStepRowFragments drives StepRow with j0 > 1 and short widths — the
// shapes the blocked wavefront uses — against the per-cell reference over
// the same fragment, with non-zero border cells flowing in.
func TestStepRowFragments(t *testing.T) {
	sc := bio.DefaultScoring()
	p := Params{Open: 4, Close: 4, MinScore: 5}
	g := bio.NewGenerator(21)
	s := g.Random(60)
	u := g.MutatedCopy(s, bio.DefaultMutationModel())
	k, err := NewKernel(s, u, sc, p)
	if err != nil {
		t.Fatal(err)
	}
	m, n := s.Len(), u.Len()

	// Full rows computed once with the reference; fragments must match
	// them wherever they land.
	rows := make([][]Cell, m+1)
	rows[0] = make([]Cell, n+1)
	for i := 1; i <= m; i++ {
		rows[i] = make([]Cell, n+1)
		stepRowRef(k, rows[i-1], rows[i], i, 1, nil)
	}

	for _, frag := range []struct{ i, j0, w int }{
		{1, 1, 1}, {5, 7, 13}, {17, n / 2, n/2 + 1}, {m, n - 3, 4}, {9, 1, n},
	} {
		prev := make([]Cell, frag.w+1)
		cur := make([]Cell, frag.w+1)
		copy(prev, rows[frag.i-1][frag.j0-1:frag.j0+frag.w])
		cur[0] = rows[frag.i][frag.j0-1]
		k.StepRow(prev, cur, frag.i, frag.j0, nil)
		for x := 1; x <= frag.w; x++ {
			want := rows[frag.i][frag.j0+x-1]
			if cur[x] != want {
				t.Errorf("fragment i=%d j0=%d w=%d: col %d: %+v != %+v",
					frag.i, frag.j0, frag.w, frag.j0+x-1, cur[x], want)
			}
		}
	}
}

// TestStepRowEmptyRow checks the degenerate widths StepRow must tolerate.
func TestStepRowEmptyRow(t *testing.T) {
	sc := bio.DefaultScoring()
	k, err := NewKernel(bio.Sequence("ACGT"), bio.Sequence("ACGT"), sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// width 0: one border slot only — must be a no-op, no panic.
	k.StepRow(make([]Cell, 1), make([]Cell, 1), 1, 1, nil)
	// empty slices must also be a no-op.
	k.StepRow(nil, nil, 1, 1, nil)
}

func FuzzStepRowMatchesStep(f *testing.F) {
	f.Add("ACGTACGTACGT", "ACGTACGTAGGT", uint8(6), uint8(6))
	f.Add("AAAAAAAA", "AAAAAAAA", uint8(1), uint8(1))
	f.Add("ACGTN", "NACGT", uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, rawS, rawT string, open, clos uint8) {
		if len(rawS) == 0 || len(rawT) == 0 || len(rawS) > 200 || len(rawT) > 200 {
			t.Skip()
		}
		// Map arbitrary bytes onto the alphabet including 'N' so the
		// wildcard row is exercised.
		const alpha = "ACGTN"
		mk := func(raw string) bio.Sequence {
			b := make([]byte, len(raw))
			for i := 0; i < len(raw); i++ {
				b[i] = alpha[int(raw[i])%len(alpha)]
			}
			return bio.Sequence(b)
		}
		p := Params{Open: 1 + int(open%16), Close: 1 + int(clos%16), MinScore: 4}
		diffPair(t, "fuzz", mk(rawS), mk(rawT), bio.DefaultScoring(), p)
	})
}
