package heuristics

import (
	"reflect"
	"testing"

	"genomedsm/internal/bio"
)

func TestScanFindsPlantedRegions(t *testing.T) {
	g := bio.NewGenerator(73)
	pair, err := g.HomologousPair(3000, bio.HomologyModel{
		Regions: 6, RegionLen: 200, RegionJit: 40,
		Divergence: bio.MutationModel{SubstitutionRate: 0.04},
	})
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Scan(pair.S, pair.T, sc, Params{Open: 15, Close: 15, MinScore: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates found despite planted regions")
	}
	// Every planted region must be covered by at least one candidate.
	for _, r := range pair.Regions {
		found := false
		for _, c := range cands {
			if c.SBegin <= r.SEnd && r.SBegin <= c.SEnd && c.TBegin <= r.TEnd && r.TBegin <= c.TEnd {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("planted region %+v not covered by any candidate", r)
		}
	}
	// Candidates must carry sane coordinates.
	for _, c := range cands {
		if c.SBegin < 1 || c.SEnd > pair.S.Len() || c.TBegin < 1 || c.TEnd > pair.T.Len() {
			t.Errorf("candidate out of bounds: %+v", c)
		}
		if c.SBegin > c.SEnd || c.TBegin > c.TEnd {
			t.Errorf("candidate inverted: %+v", c)
		}
		if c.Score < 50 {
			t.Errorf("candidate below MinScore: %+v", c)
		}
	}
}

func TestScanNoSimilarityFindsNothing(t *testing.T) {
	// Two unrelated random sequences of modest length should not produce
	// high-scoring candidates.
	g := bio.NewGenerator(79)
	s := g.Random(1500)
	tt := g.Random(1500)
	cands, err := Scan(s, tt, sc, Params{Open: 15, Close: 15, MinScore: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("found %d candidates in unrelated noise: %+v", len(cands), cands)
	}
}

func TestScanIsDeterministic(t *testing.T) {
	g := bio.NewGenerator(83)
	pair, err := g.HomologousPair(2000, bio.DefaultHomologyModel(2000))
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Open: 10, Close: 10, MinScore: 30}
	a, err := Scan(pair.S, pair.T, sc, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Scan(pair.S, pair.T, sc, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical scans disagreed")
	}
}

func TestScanEmptyInputs(t *testing.T) {
	cands, err := Scan(nil, bio.MustSequence("ACGT"), sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("scan of empty s found %d candidates", len(cands))
	}
	cands, err = Scan(bio.MustSequence("ACGT"), nil, sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("scan of empty t found %d candidates", len(cands))
	}
}

func TestScanRejectsBadInput(t *testing.T) {
	s := bio.MustSequence("ACGT")
	if _, err := Scan(s, s, bio.Scoring{}, DefaultParams()); err == nil {
		t.Error("invalid scoring accepted")
	}
	if _, err := Scan(s, s, sc, Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestQueueFinalizeSortsAndDedupes(t *testing.T) {
	var q Queue
	small := Candidate{SBegin: 1, SEnd: 5, TBegin: 1, TEnd: 5, Score: 5}
	big := Candidate{SBegin: 10, SEnd: 40, TBegin: 10, TEnd: 40, Score: 20}
	q.Add(small)
	q.Add(big)
	q.Add(small) // duplicate
	got := q.Finalize()
	if len(got) != 2 {
		t.Fatalf("finalize kept %d, want 2", len(got))
	}
	if got[0] != big || got[1] != small {
		t.Errorf("finalize order wrong: %+v", got)
	}
	if q.Len() != 2 {
		t.Errorf("queue length after finalize %d", q.Len())
	}
}

func TestQueueAddAll(t *testing.T) {
	var a, b Queue
	a.Add(Candidate{SBegin: 1, SEnd: 2, TBegin: 1, TEnd: 2, Score: 1})
	b.Add(Candidate{SBegin: 3, SEnd: 4, TBegin: 3, TEnd: 4, Score: 2})
	a.AddAll(&b)
	if a.Len() != 2 {
		t.Errorf("AddAll: len %d, want 2", a.Len())
	}
	if len(a.Items()) != 2 {
		t.Errorf("Items: %d", len(a.Items()))
	}
}

// TestScanCandidateIsGenuinelySimilar cross-checks the heuristic against
// the exact algorithm: the region reported by a candidate must contain a
// true local alignment with score comparable to the candidate's claim.
func TestScanCandidateIsGenuinelySimilar(t *testing.T) {
	g := bio.NewGenerator(89)
	motif := g.Random(120)
	s := concat(g.Random(300), motif, g.Random(300))
	tt := concat(g.Random(200), g.MutatedCopy(motif, bio.MutationModel{SubstitutionRate: 0.03}), g.Random(400))
	cands, err := Scan(s, tt, sc, Params{Open: 15, Close: 15, MinScore: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	best := cands[0]
	// Exact similarity of the reported subsequences (with a margin around
	// them, since heuristic coordinates are approximate).
	margin := 30
	sb, se := clamp(best.SBegin-margin, 1, s.Len()), clamp(best.SEnd+margin, 1, s.Len())
	tb, te := clamp(best.TBegin-margin, 1, tt.Len()), clamp(best.TEnd+margin, 1, tt.Len())
	sim, err := exactSim(s.Sub(sb, se), tt.Sub(tb, te))
	if err != nil {
		t.Fatal(err)
	}
	if sim < best.Score*7/10 {
		t.Errorf("candidate claims %d but exact similarity of its region is %d", best.Score, sim)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// exactSim is a tiny local-alignment scorer used for cross-checking (kept
// here to avoid an import cycle with internal/align).
func exactSim(s, t bio.Sequence) (int, error) {
	prev := make([]int, t.Len()+1)
	cur := make([]int, t.Len()+1)
	best := 0
	for i := 1; i <= s.Len(); i++ {
		for j := 1; j <= t.Len(); j++ {
			v := prev[j-1] + sc.Pair(s[i-1], t[j-1])
			if w := cur[j-1] + sc.Gap; w > v {
				v = w
			}
			if n := prev[j] + sc.Gap; n > v {
				v = n
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best, nil
}

func concat(parts ...bio.Sequence) bio.Sequence {
	var out bio.Sequence
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
