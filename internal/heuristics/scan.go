package heuristics

import (
	"genomedsm/internal/bio"
)

// Scan runs the complete sequential heuristic algorithm of §4.1 over s
// (rows) and t (columns) using two linear arrays of Cells, and returns
// the finalized candidate queue. It is the serial baseline of the paper's
// Tables 1 and 4 and the reference result both parallel strategies must
// reproduce exactly.
func Scan(s, t bio.Sequence, sc bio.Scoring, p Params) ([]Candidate, error) {
	k, err := NewKernel(s, t, sc, p)
	if err != nil {
		return nil, err
	}
	var q Queue
	emit := q.Add
	m, n := s.Len(), t.Len()
	prev := make([]Cell, n+1) // reading row (row i−1)
	cur := make([]Cell, n+1)  // writing row (row i)
	for i := 1; i <= m; i++ {
		cur[0] = Cell{}
		k.StepRow(prev, cur, i, 1, emit)
		if i == m {
			// Cells of the last row have no successors below; flush their
			// open candidates. (Candidates still open elsewhere never get
			// another chance to close — as in the paper, they are simply
			// not reported.)
			for j := 1; j <= n; j++ {
				k.Flush(&cur[j], emit)
			}
		}
		prev, cur = cur, prev
	}
	return q.Finalize(), nil
}
