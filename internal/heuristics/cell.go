// Package heuristics implements the candidate-alignment heuristics of
// Martins et al. used by the paper's first two parallel strategies (§4.1):
// a linear-space Smith–Waterman scan whose cells carry, besides the
// current score, the bookkeeping needed to report local alignments without
// a traceback — initial and final coordinates, maximal and minimal score,
// gap/match/mismatch counters and an open-candidate flag.
//
// The cell-transition function (Kernel.Step) is shared verbatim by the
// sequential scan and by both parallel strategies, which is what makes the
// "parallel result == sequential result" invariant hold exactly.
package heuristics

import (
	"encoding/binary"
	"fmt"

	"genomedsm/internal/bio"
)

// Params are the user parameters of the heuristic (§4.1).
type Params struct {
	// Open is the minimum rise of the current score above the running
	// minimum for a candidate alignment to open ("a minimum value for
	// opening this alignment as a candidate alignment").
	Open int
	// Close is the drop below the running maximum that closes a candidate
	// ("a value for closing an alignment").
	Close int
	// MinScore filters the queue: only candidates whose score is at least
	// MinScore are recorded ("whose scores are above the threshold").
	MinScore int
}

// DefaultParams gives a usable configuration for DNA under the paper's
// +1/−1/−2 scheme.
func DefaultParams() Params { return Params{Open: 10, Close: 10, MinScore: 20} }

// Validate rejects non-positive thresholds.
func (p Params) Validate() error {
	if p.Open <= 0 || p.Close <= 0 || p.MinScore <= 0 {
		return fmt.Errorf("heuristics: parameters must be positive, got %+v", p)
	}
	return nil
}

// Cell is the per-entry state of the heuristic scan. All fields are int32
// so a Cell has a fixed wire encoding (CellBytes) — border cells travel
// through DSM pages in the parallel strategies.
type Cell struct {
	Score      int32 // current similarity value (zero-clamped)
	Flag       int32 // 1 while a candidate alignment is open
	BeginI     int32 // initial coordinates (set when the candidate opens)
	BeginJ     int32
	PeakI      int32 // coordinates of the maximal score (candidate end)
	PeakJ      int32
	Max        int32 // maximal score since the candidate opened
	Min        int32 // minimal score since the last close
	MinAtOpen  int32 // Min captured when the candidate opened
	Gaps       int32 // counters; per §4.1 they are never reset
	Matches    int32
	Mismatches int32
}

// CellBytes is the fixed encoded size of a Cell.
const CellBytes = 12 * 4

// Encode writes the cell into buf (little-endian), which must hold at
// least CellBytes.
func (c *Cell) Encode(buf []byte) {
	_ = buf[CellBytes-1]
	fields := [...]int32{c.Score, c.Flag, c.BeginI, c.BeginJ, c.PeakI, c.PeakJ,
		c.Max, c.Min, c.MinAtOpen, c.Gaps, c.Matches, c.Mismatches}
	for i, f := range fields {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(f))
	}
}

// DecodeCell reads a Cell previously written by Encode.
func DecodeCell(buf []byte) Cell {
	_ = buf[CellBytes-1]
	get := func(i int) int32 { return int32(binary.LittleEndian.Uint32(buf[i*4:])) }
	return Cell{
		Score: get(0), Flag: get(1), BeginI: get(2), BeginJ: get(3),
		PeakI: get(4), PeakJ: get(5), Max: get(6), Min: get(7),
		MinAtOpen: get(8), Gaps: get(9), Matches: get(10), Mismatches: get(11),
	}
}

// priority is the tie-break expression of §4.1: gaps are penalized while
// matches and mismatches are rewarded.
func (c *Cell) priority() int32 { return 2*c.Matches + 2*c.Mismatches + c.Gaps }

// Candidate is one entry of the alignment queue: the coordinates of a
// similar region and its heuristic score.
type Candidate struct {
	SBegin, SEnd int
	TBegin, TEnd int
	Score        int
}

// Size is the larger of the two subsequence extents; the queue is sorted
// by it.
func (c Candidate) Size() int {
	s := c.SEnd - c.SBegin + 1
	t := c.TEnd - c.TBegin + 1
	if t > s {
		return t
	}
	return s
}

// Kernel computes heuristic cells for one sequence pair. It is stateless
// apart from the inputs (the profile and thresholds are derived once in
// NewKernel and read-only afterwards), so the same Kernel may be used
// concurrently by several goroutines.
type Kernel struct {
	S, T    bio.Sequence
	Scoring bio.Scoring
	Params  Params

	prof     *bio.Profile // query profile over T, built once per comparison
	gap      int32        // Scoring.Gap
	openThr  int32        // Params.Open
	closeThr int32        // Params.Close
}

// NewKernel validates the inputs and builds a Kernel, precomputing the
// query profile over t so the per-cell transition reads substitution
// scores as int32 loads instead of calling Scoring.Pair.
func NewKernel(s, t bio.Sequence, sc bio.Scoring, p Params) (*Kernel, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Kernel{
		S: s, T: t, Scoring: sc, Params: p,
		prof:    bio.NewProfile(t, sc),
		gap:     int32(sc.Gap),
		openThr: int32(p.Open), closeThr: int32(p.Close),
	}, nil
}

// Step computes the cell at (i, j) (1-based) from its three predecessors,
// applying the full §4.1 heuristic: origin selection with the counter
// tie-break and the horizontal→vertical→diagonal preference, counter
// updates, min/max tracking, candidate open/close. A candidate that closes
// at this cell with score ≥ MinScore is passed to emit (which may be nil).
//
// Step is the per-cell reference form; the scans and wavefront strategies
// go through StepRow, which advances a whole row with the same transition
// (bit-exact, see the differential tests in steprow_test.go).
func (k *Kernel) Step(diag, west, north *Cell, i, j int, emit func(Candidate)) Cell {
	sub := k.prof.Row(k.S[i-1])[j-1]
	dv := diag.Score + sub
	wv := west.Score + k.gap
	nv := north.Score + k.gap
	best := bio.Max32(dv, bio.Max32(wv, nv))
	if best <= 0 {
		// The path dies: fresh state. Any open candidate on the chosen
		// predecessor already closed on the way down (the score crosses
		// Max−Close before reaching zero whenever Max ≥ Close).
		return Cell{}
	}
	var cell Cell
	k.liveStep(&cell, diag, west, north, dv, wv, nv, best, sub, int32(i), int32(j), emit)
	return cell
}

// liveStep writes into dst the transition for a cell whose score best is
// positive, given the three candidate values dv/wv/nv (diag/west/north)
// already computed. It is the single implementation of the live branch of
// the §4.1 transition, shared by Step and StepRow. dst must not alias
// diag, west or north.
func (k *Kernel) liveStep(dst, diag, west, north *Cell, dv, wv, nv, best, sub int32, i, j int32, emit func(Candidate)) {
	// Origin selection: among the predecessors attaining the maximum, the
	// greater 2·matches+2·mismatches+gaps wins; if still equal, preference
	// is horizontal, then vertical, then diagonal (§4.1).
	var origin *Cell
	var fromDiag bool
	if wv == best {
		origin = west
	}
	if nv == best && (origin == nil || north.priority() > origin.priority()) {
		origin = north
	}
	if dv == best && (origin == nil || diag.priority() > origin.priority()) {
		origin, fromDiag = diag, true
	}

	*dst = *origin
	dst.Score = best
	if fromDiag {
		if sub > 0 {
			dst.Matches++
		} else {
			dst.Mismatches++
		}
	} else {
		dst.Gaps++
	}

	if dst.Score < dst.Min {
		dst.Min = dst.Score
	}
	if dst.Flag == 0 {
		if dst.Score >= dst.Min+k.openThr {
			dst.Flag = 1
			dst.BeginI, dst.BeginJ = i, j
			dst.PeakI, dst.PeakJ = i, j
			dst.Max = dst.Score
			dst.MinAtOpen = dst.Min
		}
		return
	}
	if dst.Score > dst.Max {
		dst.Max = dst.Score
		dst.PeakI, dst.PeakJ = i, j
	}
	if dst.Score <= dst.Max-k.closeThr {
		k.close(dst, emit)
	}
}

// close finalizes the open candidate held by cell, emitting it when it
// clears the MinScore threshold, and resets the hysteresis floor.
func (k *Kernel) close(cell *Cell, emit func(Candidate)) {
	if score := int(cell.Max - cell.MinAtOpen); score >= k.Params.MinScore && emit != nil {
		emit(Candidate{
			SBegin: int(cell.BeginI), SEnd: int(cell.PeakI),
			TBegin: int(cell.BeginJ), TEnd: int(cell.PeakJ),
			Score: score,
		})
	}
	cell.Flag = 0
	cell.Min = cell.Score
}

// Flush emits the candidate still open in cell, if any. The scans call it
// for cells on the last row and last column, whose state has no successors
// to close it.
func (k *Kernel) Flush(cell *Cell, emit func(Candidate)) {
	if cell.Flag != 0 {
		k.close(cell, emit)
	}
}
