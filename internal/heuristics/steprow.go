package heuristics

import "genomedsm/internal/bio"

// StepRow advances one whole row of the §4.1 heuristic recurrence: it
// computes cur[x] for x = 1..len(cur)-1, where cur[x] is the cell at
// matrix position (i, j0+x-1), prev holds the corresponding cells of row
// i-1, and cur[0] / prev[0] hold the left border column (the cell at
// column j0-1). prev and cur must have equal length and must not alias.
//
// The transition per cell is exactly Step's — the scans and both
// wavefront strategies use StepRow, and the "parallel == sequential"
// invariant rests on every path computing bit-identical cells; the
// differential and fuzz tests in steprow_test.go hold the two
// implementations together. The row form is faster because the
// substitution scores come from one precomputed profile-row slice, the
// predecessor scores are carried in registers instead of re-loaded from
// the 48-byte cells, dead cells (score ≤ 0, the common case on diverged
// inputs) take a short path, and the live transition is inlined rather
// than paying a per-cell function call.
func (k *Kernel) StepRow(prev, cur []Cell, i, j0 int, emit func(Candidate)) {
	width := len(cur) - 1
	if width <= 0 {
		return
	}
	sub := k.prof.Row(k.S[i-1])[j0-1 : j0-1+width]
	gap := k.gap
	// Thresholds as loop locals: k escapes (close may call emit), so the
	// compiler will not hoist loads through k itself.
	openThr, closeThr := k.openThr, k.closeThr
	minScore := k.Params.MinScore
	ii := int32(i)
	jj := int32(j0 - 1)   // column index, carried instead of recomputed
	prev = prev[:width+1] // bounds hint: prev[x] and prev[x-1] need no checks
	ds := prev[0].Score   // diag score: prev[x-1].Score, carried
	ws := cur[0].Score    // west score: cur[x-1].Score, carried
	for x := 1; x <= width; x++ {
		jj++
		north := &prev[x]
		ns := north.Score
		sv := sub[x-1]
		dv := ds + sv
		wv := ws + gap
		nv := ns + gap
		best := bio.Max32(dv, bio.Max32(wv, nv))
		ds = ns
		if best <= 0 {
			cur[x] = Cell{}
			ws = 0
			continue
		}
		ws = best

		// Origin selection, counter update, min/max tracking and candidate
		// open/close — the live branch of Step's transition, inlined.
		// Order and tie-breaks must stay identical to liveStep.
		diag := &prev[x-1]
		var origin *Cell
		diagBit := int32(0) // 1 when the diagonal predecessor was chosen
		if dv > wv && dv > nv {
			// Strict diagonal winner — the common case on live paths (a
			// match extends the diagonal past both gap moves): no tie is
			// possible, so the priority loads are skipped entirely.
			origin, diagBit = diag, 1
		} else {
			west := &cur[x-1]
			if wv == best {
				origin = west
			}
			if nv == best && (origin == nil || north.priority() > origin.priority()) {
				origin = north
			}
			if dv == best && (origin == nil || diag.priority() > origin.priority()) {
				origin, diagBit = diag, 1
			}
		}

		// Mutate a local copy so the updates stay in registers; cur[x]
		// receives one single 48-byte store at the end. The counter and
		// min/max updates are written branch-free (conditional moves):
		// whether a diagonal step is a match is data-dependent per cell
		// and would mispredict constantly as a branch.
		tmp := *origin
		tmp.Score = best
		posBit := int32(0) // 1 when the substitution score rewards a match
		if sv > 0 {
			posBit = 1
		}
		tmp.Matches += diagBit & posBit
		tmp.Mismatches += diagBit &^ posBit
		tmp.Gaps += 1 - diagBit
		tmp.Min = bio.Min32(tmp.Min, best)

		if tmp.Flag == 0 {
			if best >= tmp.Min+openThr {
				tmp.Flag = 1
				tmp.BeginI, tmp.BeginJ = ii, jj
				tmp.PeakI, tmp.PeakJ = ii, jj
				tmp.Max = best
				tmp.MinAtOpen = tmp.Min
			}
			cur[x] = tmp
			continue
		}
		pi, pj := tmp.PeakI, tmp.PeakJ
		if best > tmp.Max {
			pi = ii
		}
		if best > tmp.Max {
			pj = jj
		}
		tmp.PeakI, tmp.PeakJ = pi, pj
		tmp.Max = bio.Max32(tmp.Max, best)
		if best <= tmp.Max-closeThr {
			// close, inlined field-by-field so tmp is never address-taken
			// (an escaping &tmp would force every update above through the
			// stack). Same effect as k.close: emit when the candidate
			// clears MinScore, drop the flag, reset the hysteresis floor
			// to the current score (== best here).
			if score := int(tmp.Max - tmp.MinAtOpen); score >= minScore && emit != nil {
				emit(Candidate{
					SBegin: int(tmp.BeginI), SEnd: int(tmp.PeakI),
					TBegin: int(tmp.BeginJ), TEnd: int(tmp.PeakJ),
					Score: score,
				})
			}
			tmp.Flag = 0
			tmp.Min = best
		}
		cur[x] = tmp
	}
}
