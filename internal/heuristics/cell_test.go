package heuristics

import (
	"reflect"
	"testing"
	"testing/quick"

	"genomedsm/internal/bio"
)

var sc = bio.DefaultScoring()

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	for _, p := range []Params{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}, {-1, 1, 1}} {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid params", p)
		}
	}
}

func TestCellEncodeDecodeRoundTrip(t *testing.T) {
	f := func(score, flag, bi, bj, pi, pj, mx, mn, mao, g, m, mm int32) bool {
		c := Cell{score, flag, bi, bj, pi, pj, mx, mn, mao, g, m, mm}
		buf := make([]byte, CellBytes)
		c.Encode(buf)
		return DecodeCell(buf) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellEncodePanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode on short buffer did not panic")
		}
	}()
	c := Cell{}
	c.Encode(make([]byte, CellBytes-1))
}

func TestNewKernelValidation(t *testing.T) {
	s := bio.MustSequence("ACGT")
	if _, err := NewKernel(s, s, bio.Scoring{}, DefaultParams()); err == nil {
		t.Error("invalid scoring accepted")
	}
	if _, err := NewKernel(s, s, sc, Params{}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestStepScoreMatchesPlainSW(t *testing.T) {
	// The heuristic cell's Score field must follow the plain zero-clamped
	// Smith–Waterman recurrence regardless of the candidate bookkeeping.
	g := bio.NewGenerator(71)
	s := g.Random(60)
	tt := g.MutatedCopy(s, bio.DefaultMutationModel())
	k, err := NewKernel(s, tt, sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m, n := s.Len(), tt.Len()
	prev := make([]Cell, n+1)
	cur := make([]Cell, n+1)
	swPrev := make([]int, n+1)
	swCur := make([]int, n+1)
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			cur[j] = k.Step(&prev[j-1], &cur[j-1], &prev[j], i, j, nil)
			v := swPrev[j-1] + sc.Pair(s[i-1], tt[j-1])
			if w := swCur[j-1] + sc.Gap; w > v {
				v = w
			}
			if no := swPrev[j] + sc.Gap; no > v {
				v = no
			}
			if v < 0 {
				v = 0
			}
			swCur[j] = v
			if int(cur[j].Score) != v {
				t.Fatalf("cell (%d,%d): heuristic score %d, SW score %d", i, j, cur[j].Score, v)
			}
		}
		prev, cur = cur, prev
		swPrev, swCur = swCur, swPrev
	}
}

func TestStepTieBreakPrefersHorizontal(t *testing.T) {
	s := bio.MustSequence("AC")
	tt := bio.MustSequence("AC")
	k, err := NewKernel(s, tt, sc, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Construct predecessors with identical resulting value and identical
	// priority: the horizontal (west) origin must win.
	west := Cell{Score: 5, Matches: 2, Gaps: 1}                // wv = 3
	north := Cell{Score: 5, Matches: 2, Gaps: 1}               // nv = 3
	diag := Cell{Score: 4, Matches: 2, Mismatches: 0, Gaps: 1} // dv = 4±... use mismatching bases
	// Use position (1,2): s[0]='A', t[1]='C' mismatch, so dv = 4-1 = 3.
	got := k.Step(&diag, &west, &north, 1, 2, nil)
	if got.Score != 3 {
		t.Fatalf("score %d, want 3", got.Score)
	}
	// West origin increments Gaps (2), keeps Matches 2.
	if got.Gaps != 2 || got.Matches != 2 || got.Mismatches != 0 {
		t.Errorf("origin not horizontal: %+v", got)
	}
}

func TestStepTieBreakPrefersHigherPriority(t *testing.T) {
	s := bio.MustSequence("AC")
	tt := bio.MustSequence("AC")
	k, _ := NewKernel(s, tt, sc, DefaultParams())
	west := Cell{Score: 5, Gaps: 1}     // priority 1, wv = 3
	north := Cell{Score: 5, Matches: 3} // priority 6, nv = 3
	diag := Cell{Score: 4}              // dv = 3 at mismatch position
	got := k.Step(&diag, &west, &north, 1, 2, nil)
	// North origin (priority 6) wins; gap increment applies.
	if got.Matches != 3 || got.Gaps != 1 {
		t.Errorf("expected north origin, got %+v", got)
	}
}

func TestStepDiagonalCounters(t *testing.T) {
	s := bio.MustSequence("AA")
	tt := bio.MustSequence("AC")
	k, _ := NewKernel(s, tt, sc, DefaultParams())
	diag := Cell{Score: 10, Matches: 1}
	weak := Cell{Score: 0}
	// Match position (1,1): diag wins with 11, Matches increments.
	got := k.Step(&diag, &weak, &weak, 1, 1, nil)
	if got.Score != 11 || got.Matches != 2 || got.Mismatches != 0 {
		t.Errorf("match step: %+v", got)
	}
	// Mismatch position (1,2): diag 9, Mismatches increments.
	got = k.Step(&diag, &weak, &weak, 1, 2, nil)
	if got.Score != 9 || got.Mismatches != 1 {
		t.Errorf("mismatch step: %+v", got)
	}
}

func TestStepZeroResetsState(t *testing.T) {
	s := bio.MustSequence("AA")
	tt := bio.MustSequence("CC")
	k, _ := NewKernel(s, tt, sc, DefaultParams())
	rich := Cell{Score: 1, Flag: 1, Max: 30, Matches: 9}
	got := k.Step(&rich, &rich, &rich, 1, 1, nil)
	if !reflect.DeepEqual(got, Cell{}) {
		t.Errorf("dead path did not reset state: %+v", got)
	}
}

func TestOpenCloseLifecycle(t *testing.T) {
	// Drive a single path: scores rise by matches, opening a candidate,
	// then fall by gaps until it closes. Use a 1-row scan over equal and
	// then disjoint bases.
	s := bio.MustSequence("AAAAAAAAAAAA")
	tt := bio.MustSequence("AAAAAACCCCCC")
	p := Params{Open: 3, Close: 3, MinScore: 3}
	k, err := NewKernel(s, tt, sc, p)
	if err != nil {
		t.Fatal(err)
	}
	var got []Candidate
	emit := func(c Candidate) { got = append(got, c) }
	// Walk the diagonal only: cell (i,i) from cell (i-1,i-1).
	cell := Cell{}
	empty := Cell{}
	for i := 1; i <= 12; i++ {
		cell = k.Step(&cell, &empty, &empty, i, i, emit)
	}
	if len(got) != 1 {
		t.Fatalf("emitted %d candidates, want 1: %+v", len(got), got)
	}
	c := got[0]
	// Scores along the diagonal: 1..6 then 5,4,3 (mismatches). Open fires
	// at score 3 (cell 3), peak at 6 (cell 6), close at 6-3=3 (cell 9).
	if c.SBegin != 3 || c.SEnd != 6 || c.TBegin != 3 || c.TEnd != 6 {
		t.Errorf("candidate coordinates %+v", c)
	}
	if c.Score != 6 {
		t.Errorf("candidate score %d, want 6 (max 6 − min-at-open 0)", c.Score)
	}
	if cell.Flag != 0 {
		t.Error("cell still open after close")
	}
	if cell.Min != cell.Score {
		t.Errorf("hysteresis floor not reset: min %d score %d", cell.Min, cell.Score)
	}
}

func TestFlushEmitsOpenCandidate(t *testing.T) {
	s := bio.MustSequence("AAAA")
	p := Params{Open: 2, Close: 2, MinScore: 2}
	k, err := NewKernel(s, s, sc, p)
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{}
	empty := Cell{}
	for i := 1; i <= 4; i++ {
		cell = k.Step(&cell, &empty, &empty, i, i, nil)
	}
	if cell.Flag != 1 {
		t.Fatal("candidate should be open at the end of the diagonal")
	}
	var got []Candidate
	k.Flush(&cell, func(c Candidate) { got = append(got, c) })
	if len(got) != 1 {
		t.Fatalf("flush emitted %d, want 1", len(got))
	}
	if got[0].Score != 4 || got[0].SEnd != 4 {
		t.Errorf("flushed candidate %+v", got[0])
	}
	var again []Candidate
	k.Flush(&cell, func(c Candidate) { again = append(again, c) })
	if len(again) != 0 {
		t.Error("second flush re-emitted a closed candidate")
	}
}

func TestCandidateSize(t *testing.T) {
	c := Candidate{SBegin: 1, SEnd: 10, TBegin: 5, TEnd: 20}
	if c.Size() != 16 {
		t.Errorf("size %d, want 16", c.Size())
	}
	c = Candidate{SBegin: 1, SEnd: 30, TBegin: 5, TEnd: 20}
	if c.Size() != 30 {
		t.Errorf("size %d, want 30", c.Size())
	}
}
