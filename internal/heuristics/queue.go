package heuristics

import "sort"

// Queue accumulates candidate alignments during a scan. At the end of the
// algorithm it is sorted by subsequence size and repeated alignments are
// removed (§4.1). The zero value is ready to use.
type Queue struct {
	items []Candidate
}

// Add appends a candidate.
func (q *Queue) Add(c Candidate) { q.items = append(q.items, c) }

// AddAll appends every candidate of other.
func (q *Queue) AddAll(other *Queue) { q.items = append(q.items, other.items...) }

// Len returns the number of stored candidates (including duplicates until
// Finalize is called).
func (q *Queue) Len() int { return len(q.items) }

// Finalize sorts the queue by decreasing subsequence size (ties broken by
// coordinates so the order is total and deterministic) and removes
// repeated alignments: exact duplicates, and shorter restatements of a
// candidate that share its initial coordinates — the candidate state is
// replicated across a cone of cells during the scan, so the same
// alignment typically closes several times with slightly different final
// coordinates; only the largest survives. It returns the resulting slice;
// the queue itself holds the finalized content afterwards.
func (q *Queue) Finalize() []Candidate {
	sort.Slice(q.items, func(a, b int) bool {
		x, y := q.items[a], q.items[b]
		if x.Size() != y.Size() {
			return x.Size() > y.Size()
		}
		if x.SBegin != y.SBegin {
			return x.SBegin < y.SBegin
		}
		if x.TBegin != y.TBegin {
			return x.TBegin < y.TBegin
		}
		if x.SEnd != y.SEnd {
			return x.SEnd < y.SEnd
		}
		if x.TEnd != y.TEnd {
			return x.TEnd < y.TEnd
		}
		return x.Score > y.Score
	})
	out := q.items[:0]
	seenBegin := make(map[[2]int]bool, len(q.items))
	for i, c := range q.items {
		if i > 0 && c == q.items[i-1] {
			continue
		}
		begin := [2]int{c.SBegin, c.TBegin}
		if seenBegin[begin] {
			continue // a larger candidate with the same origin was kept
		}
		seenBegin[begin] = true
		out = append(out, c)
	}
	q.items = out
	return out
}

// Items returns the current contents without finalizing.
func (q *Queue) Items() []Candidate { return q.items }
