package bio

import "testing"

// TestStripedProfileLanes pins the striped layout lane by lane against
// the scalar Substitution rule: word v lane l must carry the split
// magnitudes of query position v + l·SegLen, padded positions must be
// all-mismatch, and the masks must cover exactly the real lanes.
func TestStripedProfileLanes(t *testing.T) {
	sc := DefaultScoring()
	for _, seq := range []Sequence{
		MustSequence("ACGTNNACGTANACG"), // 15 = 8*2-1: one padded lane
		MustSequence("ACGT"),            // shorter than one word of lanes
		MustSequence("A"),
		nil,
	} {
		for _, wide := range []bool{false, true} {
			var p *StripedProfile
			if wide {
				p = NewStripedProfile16(seq, sc)
			} else {
				p = NewStripedProfile8(seq, sc)
			}
			if p == nil {
				t.Fatalf("profile rejected scoring %+v", sc)
			}
			if p.Len() != len(seq) {
				t.Fatalf("Len = %d, want %d", p.Len(), len(seq))
			}
			wantSeg := (len(seq) + p.Lanes() - 1) / p.Lanes()
			if p.SegLen() != wantSeg {
				t.Fatalf("SegLen = %d, want %d", p.SegLen(), wantSeg)
			}
			for _, a := range []byte{'A', 'C', 'G', 'T', 'N', 'x'} {
				plus, minus := p.PlusRow(a), p.MinusRow(a)
				for v := 0; v < p.SegLen(); v++ {
					for l := 0; l < p.Lanes(); l++ {
						pos := v + l*p.SegLen()
						wantPlus, wantMinus := 0, -sc.Mismatch
						if pos < len(seq) {
							if s := Substitution(a, seq[pos], sc.Match, sc.Mismatch); s > 0 {
								wantPlus, wantMinus = s, 0
							} else {
								wantPlus, wantMinus = 0, -s
							}
						}
						if got := p.Lane(plus[v], l); got != wantPlus {
							t.Fatalf("lanes=%d plus(%q) word %d lane %d (pos %d) = %d, want %d",
								p.Lanes(), a, v, l, pos, got, wantPlus)
						}
						if got := p.Lane(minus[v], l); got != wantMinus {
							t.Fatalf("lanes=%d minus(%q) word %d lane %d (pos %d) = %d, want %d",
								p.Lanes(), a, v, l, pos, got, wantMinus)
						}
					}
				}
			}
			// Masks: value mask = lane cap for real lanes, 0 for padded.
			for v := 0; v < p.SegLen(); v++ {
				vm := p.ValueMask()[v]
				gm := p.GuardMask(v)
				for l := 0; l < p.Lanes(); l++ {
					pos := v + l*p.SegLen()
					wantVal, wantGuard := 0, 0
					if pos < len(seq) {
						wantVal = p.Cap()
						wantGuard = p.Cap() + 1
					}
					if got := p.Lane(vm, l); got != wantVal {
						t.Fatalf("value mask word %d lane %d = %#x, want %#x", v, l, got, wantVal)
					}
					if got := p.Lane(gm, l); got != wantGuard {
						t.Fatalf("guard mask word %d lane %d = %#x, want %#x", v, l, got, wantGuard)
					}
				}
			}
		}
	}
}

// TestStripedProfileRejectsWideScores checks the constructor refuses
// scoring magnitudes that do not fit the clean lane range.
func TestStripedProfileRejectsWideScores(t *testing.T) {
	seq := MustSequence("ACGT")
	if p := NewStripedProfile8(seq, Scoring{Match: 200, Mismatch: -1, Gap: -2}); p != nil {
		t.Fatal("int8 profile accepted match=200")
	}
	if p := NewStripedProfile8(seq, Scoring{Match: 1, Mismatch: -200, Gap: -2}); p != nil {
		t.Fatal("int8 profile accepted mismatch=-200")
	}
	if p := NewStripedProfile16(seq, Scoring{Match: 40000, Mismatch: -1, Gap: -2}); p != nil {
		t.Fatal("int16 profile accepted match=40000")
	}
	if p := NewStripedProfile16(seq, Scoring{Match: 200, Mismatch: -100, Gap: -2}); p == nil {
		t.Fatal("int16 profile rejected in-range scores")
	}
}

// TestStripedBroadcast pins Broadcast/Lane round-trips on both widths.
func TestStripedBroadcast(t *testing.T) {
	seq := MustSequence("ACGTACGTA")
	for _, p := range []*StripedProfile{
		NewStripedProfile8(seq, DefaultScoring()),
		NewStripedProfile16(seq, DefaultScoring()),
	} {
		w := p.Broadcast(5)
		for l := 0; l < p.Lanes(); l++ {
			if got := p.Lane(w, l); got != 5 {
				t.Fatalf("lanes=%d Broadcast(5) lane %d = %d", p.Lanes(), l, got)
			}
		}
	}
}
