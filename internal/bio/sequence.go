// Package bio provides the biological-sequence substrate used by the
// GenomeDSM alignment strategies: DNA sequences, scoring schemes, FASTA
// input/output and reproducible synthetic-genome generators.
//
// Sequences are stored 1 byte per base in upper-case ASCII. The package
// deliberately restricts itself to the DNA alphabet plus 'N' (unknown),
// matching the inputs used by the paper (whole mitochondrial genomes from
// NCBI).
package bio

import (
	"fmt"
	"strings"
)

// Sequence is a DNA sequence. The zero value is an empty sequence ready to
// use. Sequences are mutable byte slices; callers that need isolation
// should use Clone.
type Sequence []byte

// validBase reports whether b is an accepted upper-case base symbol.
func validBase(b byte) bool {
	switch b {
	case 'A', 'C', 'G', 'T', 'N':
		return true
	}
	return false
}

// NewSequence validates and normalizes s (accepting lower case and
// whitespace) into a Sequence. It returns an error naming the first
// offending byte if s contains anything outside the DNA alphabet.
func NewSequence(s string) (Sequence, error) {
	out := make(Sequence, 0, len(s))
	for i := 0; i < len(s); i++ {
		b := s[i]
		switch {
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			continue
		case b >= 'a' && b <= 'z':
			b -= 'a' - 'A'
		}
		if !validBase(b) {
			return nil, fmt.Errorf("bio: invalid base %q at position %d", s[i], i)
		}
		out = append(out, b)
	}
	return out, nil
}

// MustSequence is NewSequence that panics on invalid input. It is intended
// for tests and literals.
func MustSequence(s string) Sequence {
	seq, err := NewSequence(s)
	if err != nil {
		panic(err)
	}
	return seq
}

// Len returns the number of bases.
func (s Sequence) Len() int { return len(s) }

// String renders the sequence as a plain string of bases.
func (s Sequence) String() string { return string(s) }

// Clone returns an independent copy of s.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// Reverse returns the reversed sequence (s[n-1], …, s[0]). Section 6 of the
// paper retrieves alignments by running the dynamic programming over
// reversed inputs; Reverse is the srev/trev operation used there.
func (s Sequence) Reverse() Sequence {
	out := make(Sequence, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b
	}
	return out
}

// Complement returns the base-complemented sequence (A<->T, C<->G; N stays N).
func (s Sequence) Complement() Sequence {
	out := make(Sequence, len(s))
	for i, b := range s {
		out[i] = complementBase(b)
	}
	return out
}

func complementBase(b byte) byte {
	switch b {
	case 'A':
		return 'T'
	case 'T':
		return 'A'
	case 'C':
		return 'G'
	case 'G':
		return 'C'
	default:
		return 'N'
	}
}

// ReverseComplement returns the reverse complement of s.
func (s Sequence) ReverseComplement() Sequence {
	return s.Reverse().Complement()
}

// Sub returns the 1-based inclusive subsequence s[i..j], following the
// paper's s[1..i] indexing convention. It panics if the range is invalid.
func (s Sequence) Sub(i, j int) Sequence {
	if i < 1 || j > len(s) || i > j+1 {
		panic(fmt.Sprintf("bio: invalid subsequence range [%d..%d] of length %d", i, j, len(s)))
	}
	return s[i-1 : j]
}

// GC returns the fraction of G/C bases, a cheap composition check used by
// the synthetic generator tests.
func (s Sequence) GC() float64 {
	if len(s) == 0 {
		return 0
	}
	n := 0
	for _, b := range s {
		if b == 'G' || b == 'C' {
			n++
		}
	}
	return float64(n) / float64(len(s))
}

// Pretty renders the sequence wrapped at width columns for display.
func (s Sequence) Pretty(width int) string {
	if width <= 0 {
		width = 60
	}
	var sb strings.Builder
	for i := 0; i < len(s); i += width {
		end := i + width
		if end > len(s) {
			end = len(s)
		}
		sb.Write(s[i:end])
		sb.WriteByte('\n')
	}
	return sb.String()
}
