package bio

// This file defines the lane-interleaved *code word* layout behind the
// pack-v2 precomputed lane groups (internal/dbpack, DESIGN.md §12): one
// uint64 word per target position j, whose byte l is the residue code
// (BaseCode) of target lane l at j, with lanes past a target's end — and
// lanes with no target at all — holding PadCode. The layout is exactly
// the shape the inter-sequence SWAR kernels consume: building a
// PackedProfile from it (NewPackedProfile8FromWords) replaces the
// per-lane byte gather of NewPackedProfile8 with five word-wide
// compares per position, and the words themselves are query- and
// scoring-independent, so `genomedsm index` computes them once and a
// loaded pack maps them straight into the scan.
//
// PadCode is codeUnknown on purpose: a pad column must decay every
// padded lane to zero, and codeUnknown already encodes "matches
// nothing" — a real 'N' target residue and padding are
// indistinguishable to the recurrence, which is what makes the
// from-words profile bit-identical to the from-targets one.

// PadCode is the code byte of a padded (absent or past-the-end) lane in
// an interleaved code word.
const PadCode = codeUnknown

// InterleaveWords8 appends the 8-lane interleaved code words of up to 8
// targets to dst and returns the extended slice: max(len(targets[l]))
// words, one per position, byte l = BaseCode of lane l (PadCode when
// the lane is short or absent). It panics when more than 8 targets are
// given — callers cut lane groups before interleaving.
func InterleaveWords8(dst []uint64, targets []Sequence) []uint64 {
	if len(targets) > PackedLanes8 {
		panic("bio: InterleaveWords8 given more than 8 targets")
	}
	words := 0
	for _, t := range targets {
		if len(t) > words {
			words = len(t)
		}
	}
	const allPad = uint64(PadCode) * 0x0101010101010101
	for j := 0; j < words; j++ {
		w := allPad
		for l, t := range targets {
			if j < len(t) {
				w &^= uint64(0xFF) << (uint(l) * 8)
				w |= uint64(baseCode[t[j]]) << (uint(l) * 8)
			}
		}
		dst = append(dst, w)
	}
	return dst
}

// eqMask8 returns, per byte, 0xFF where the byte of w equals the byte
// of pattern and 0x00 elsewhere. Exact only for byte values ≤ 0x7F —
// residue codes are ≤ 4, so x = w^pattern stays ≤ 7 per byte. Adding
// 0x7F to such a byte sets its top bit iff the byte is nonzero and can
// never carry into the next byte (unlike the classic subtract-borrow
// zero test, whose borrows cross byte boundaries); the ×0xFF spread is
// exact because the 0x80 marker bits are isolated per byte.
func eqMask8(w, pattern uint64) uint64 {
	x := w ^ pattern
	m := ^((x + 0x7f7f7f7f7f7f7f7f) | x) & hiBits8
	return (m >> 7) * 0xFF
}

const hiBits8 = 0x8080808080808080

// NewPackedProfile8FromWords builds the 8-lane int8 packed profile of a
// lane group from its interleaved code words instead of the target
// bytes. lens holds the true length of each live lane (≤ 8 lanes); the
// words must be the group's InterleaveWords8 output, i.e. max(lens)
// words with PadCode in every padded byte. The result is bit-identical
// — every plus and minus row — to NewPackedProfile8 over the same
// targets and scoring (pinned by TestPackedProfileFromWords), and nil
// under exactly the same conditions: more than 8 lanes, or scoring
// magnitudes outside the clean 7-bit lane range.
func NewPackedProfile8FromWords(words []uint64, lens []int, sc Scoring) *PackedProfile {
	if len(lens) > PackedLanes8 {
		return nil
	}
	match, mismatch := sc.Match, -sc.Mismatch
	if match < 0 || match > PackedCap8 || mismatch < 0 || mismatch > PackedCap8 {
		return nil
	}
	n := 0
	for _, l := range lens {
		if l > n {
			n = l
		}
	}
	if n != len(words) {
		// The words do not cover the group they claim to describe — a
		// corrupt layout must never produce a silently wrong profile.
		return nil
	}
	p := &PackedProfile{
		lanes: PackedLanes8, shift: 8, cap: PackedCap8, words: n,
		lens: append([]int(nil), lens...),
	}
	backing := make([]uint64, 2*AlphabetSize*n)
	for c := 0; c < AlphabetSize; c++ {
		p.plus[c] = backing[2*c*n : (2*c+1)*n : (2*c+1)*n]
		p.minus[c] = backing[(2*c+1)*n : (2*c+2)*n : (2*c+2)*n]
	}
	mv := uint64(match) * 0x0101010101010101
	allMiss := uint64(mismatch) * 0x0101010101010101
	for c := 0; c < AlphabetSize; c++ {
		plus, minus := p.plus[c], p.minus[c]
		if c == codeUnknown {
			// The unknown query row matches nothing — including a target
			// 'N' whose code equals codeUnknown — so equality must not
			// apply; the whole row is the all-mismatch column.
			for j := range minus {
				minus[j] = allMiss
			}
			continue
		}
		pattern := uint64(c) * 0x0101010101010101
		for j, w := range words {
			eq := eqMask8(w, pattern)
			plus[j] = mv & eq
			minus[j] = allMiss &^ eq
		}
	}
	return p
}
