package bio

import "testing"

// TestProfileMatchesSubstitution checks the profile against the scalar
// rule for every possible residue byte, including 'N', lower case and
// bytes far outside the alphabet.
func TestProfileMatchesSubstitution(t *testing.T) {
	seq := MustSequence("ACGTNNACGTAN")
	sc := DefaultScoring()
	p := NewProfile(seq, sc)
	if p.Len() != seq.Len() {
		t.Fatalf("profile length %d, want %d", p.Len(), seq.Len())
	}
	for a := 0; a < 256; a++ {
		row := p.Row(byte(a))
		if len(row) != seq.Len() {
			t.Fatalf("Row(%q) length %d, want %d", byte(a), len(row), seq.Len())
		}
		for j, b := range seq {
			want := int32(Substitution(byte(a), b, sc.Match, sc.Mismatch))
			if row[j] != want {
				t.Fatalf("Row(%q)[%d] (vs %q) = %d, want %d", byte(a), j, b, row[j], want)
			}
		}
	}
}

// TestSubstitutionWildcard pins the 'N' rule: N never matches, not even
// itself, and Pair agrees with Substitution.
func TestSubstitutionWildcard(t *testing.T) {
	sc := DefaultScoring()
	cases := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', sc.Match},
		{'T', 'T', sc.Match},
		{'A', 'C', sc.Mismatch},
		{'N', 'N', sc.Mismatch},
		{'N', 'A', sc.Mismatch},
		{'A', 'N', sc.Mismatch},
		{'x', 'x', sc.Mismatch}, // outside the alphabet: never a match
	}
	for _, c := range cases {
		if got := Substitution(c.a, c.b, sc.Match, sc.Mismatch); got != c.want {
			t.Errorf("Substitution(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := sc.Pair(c.a, c.b); got != c.want {
			t.Errorf("Pair(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestProfileEmpty(t *testing.T) {
	p := NewProfile(nil, DefaultScoring())
	if p.Len() != 0 {
		t.Fatalf("empty profile length %d", p.Len())
	}
	if row := p.Row('A'); len(row) != 0 {
		t.Fatalf("empty profile row length %d", len(row))
	}
}

func TestMax32Clamp0(t *testing.T) {
	if got := Max32(3, -5); got != 3 {
		t.Errorf("Max32(3,-5) = %d", got)
	}
	if got := Max32(-5, 3); got != 3 {
		t.Errorf("Max32(-5,3) = %d", got)
	}
	if got := Clamp0(-7); got != 0 {
		t.Errorf("Clamp0(-7) = %d", got)
	}
	if got := Clamp0(7); got != 7 {
		t.Errorf("Clamp0(7) = %d", got)
	}
}
