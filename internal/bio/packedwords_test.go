package bio

import (
	"math/rand"
	"reflect"
	"testing"
)

// randSeq draws n residues including occasional 'N' and lowercase
// bytes, exercising the full BaseCode table.
func randSeq(rng *rand.Rand, n int) Sequence {
	const letters = "ACGTacgtNn"
	s := make(Sequence, n)
	for i := range s {
		s[i] = letters[rng.Intn(len(letters))]
	}
	return s
}

func lensOf(targets []Sequence) []int {
	lens := make([]int, len(targets))
	for i, t := range targets {
		lens[i] = len(t)
	}
	return lens
}

// TestPackedProfileFromWords pins the zero-copy exactness claim of the
// pack-v2 lane layout: a profile built from interleaved code words is
// bit-identical — every plus and minus row, every metadata field — to
// the profile built from the target bytes themselves.
func TestPackedProfileFromWords(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	scorings := []Scoring{
		DefaultScoring(),
		{Match: 5, Mismatch: -4, Gap: -8},
		{Match: 1, Mismatch: -1, Gap: -1},
		{Match: 127, Mismatch: -127, Gap: -127},
	}
	for trial := 0; trial < 200; trial++ {
		nt := 1 + rng.Intn(PackedLanes8)
		targets := make([]Sequence, nt)
		maxLen := 1 + rng.Intn(40)
		for l := range targets {
			n := rng.Intn(maxLen + 1)
			targets[l] = randSeq(rng, n)
		}
		if trial%7 == 0 {
			// Degenerate group: every lane empty.
			for l := range targets {
				targets[l] = nil
			}
		}
		words := InterleaveWords8(nil, targets)
		sc := scorings[trial%len(scorings)]
		want := NewPackedProfile8(targets, sc)
		got := NewPackedProfile8FromWords(words, lensOf(targets), sc)
		if want == nil || got == nil {
			t.Fatalf("trial %d: nil profile (want=%v got=%v)", trial, want == nil, got == nil)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: from-words profile differs from from-targets profile\ntargets=%q sc=%+v", trial, targets, sc)
		}
	}
}

// TestPackedProfileFromWordsRejects pins the nil conditions: they must
// match NewPackedProfile8 exactly, plus the extra corrupt-layout guard
// when the word count disagrees with the claimed lane lengths.
func TestPackedProfileFromWordsRejects(t *testing.T) {
	targets := []Sequence{Sequence("ACGT"), Sequence("AC")}
	words := InterleaveWords8(nil, targets)
	lens := lensOf(targets)
	if p := NewPackedProfile8FromWords(words, lens, Scoring{Match: 200, Mismatch: -1, Gap: -1}); p != nil {
		t.Fatalf("match magnitude beyond the int8 cap must yield nil")
	}
	if p := NewPackedProfile8FromWords(words, lens, Scoring{Match: 1, Mismatch: -200, Gap: -1}); p != nil {
		t.Fatalf("mismatch magnitude beyond the int8 cap must yield nil")
	}
	if p := NewPackedProfile8FromWords(words, make([]int, 9), DefaultScoring()); p != nil {
		t.Fatalf("more than 8 lanes must yield nil")
	}
	if p := NewPackedProfile8FromWords(words[:len(words)-1], lens, DefaultScoring()); p != nil {
		t.Fatalf("truncated words must yield nil, not a wrong profile")
	}
	if p := NewPackedProfile8FromWords(append(words[:len(words):len(words)], 0), lens, DefaultScoring()); p != nil {
		t.Fatalf("overlong words must yield nil, not a wrong profile")
	}
}

// TestInterleaveWords8Padding checks the pad byte: every lane past its
// target's end — and every lane with no target — must hold PadCode.
func TestInterleaveWords8Padding(t *testing.T) {
	targets := []Sequence{Sequence("ACG"), Sequence("T")}
	words := InterleaveWords8(nil, targets)
	if len(words) != 3 {
		t.Fatalf("got %d words, want 3", len(words))
	}
	for j, w := range words {
		for l := 0; l < PackedLanes8; l++ {
			got := byte(w >> (uint(l) * 8))
			want := byte(PadCode)
			if l < len(targets) && j < len(targets[l]) {
				want = BaseCode(targets[l][j])
			}
			if got != want {
				t.Fatalf("word %d lane %d: code %d, want %d", j, l, got, want)
			}
		}
	}
}

func FuzzPackedProfileFromWords(f *testing.F) {
	f.Add([]byte("ACGTNACGT"), []byte("TTTT"), int8(2), int8(-3))
	f.Add([]byte(""), []byte("N"), int8(1), int8(-1))
	f.Fuzz(func(t *testing.T, a, b []byte, match, mismatch int8) {
		if match < 0 || mismatch > 0 {
			t.Skip()
		}
		sc := Scoring{Match: int(match), Mismatch: int(mismatch), Gap: -1}
		targets := []Sequence{Sequence(a), Sequence(b)}
		words := InterleaveWords8(nil, targets)
		want := NewPackedProfile8(targets, sc)
		got := NewPackedProfile8FromWords(words, lensOf(targets), sc)
		if (want == nil) != (got == nil) {
			t.Fatalf("nil disagreement: want=%v got=%v", want == nil, got == nil)
		}
		if want != nil && !reflect.DeepEqual(want, got) {
			t.Fatalf("profiles differ for %q %q %+v", a, b, sc)
		}
	})
}
