package bio

import "fmt"

// Scoring holds the column scores used by every alignment algorithm in the
// repository. The paper's scheme (§2) is +1 for identical characters, −1
// for different characters and −2 for a space (gap).
type Scoring struct {
	Match    int // score for a column with identical characters
	Mismatch int // score for a column with distinct characters
	Gap      int // score for a column containing a space
}

// DefaultScoring is the scheme used throughout the paper's evaluation.
func DefaultScoring() Scoring {
	return Scoring{Match: 1, Mismatch: -1, Gap: -2}
}

// Validate checks that the scheme is sensible for local alignment: matches
// must be rewarded and gaps/mismatches penalized, otherwise the local
// recurrence degenerates (every extension would be profitable and "local"
// alignments would always span the whole inputs).
func (sc Scoring) Validate() error {
	if sc.Match <= 0 {
		return fmt.Errorf("bio: match score must be positive, got %d", sc.Match)
	}
	if sc.Mismatch >= 0 {
		return fmt.Errorf("bio: mismatch score must be negative, got %d", sc.Mismatch)
	}
	if sc.Gap >= 0 {
		return fmt.Errorf("bio: gap score must be negative, got %d", sc.Gap)
	}
	return nil
}

// Substitution is the single substitution rule shared by Scoring.Pair,
// the affine aligner and the query profiles (NewProfile /
// NewSubstProfile): two residues score match if and only if they are the
// same known base (A, C, G or T). The 'N' wildcard — and any byte
// outside the DNA alphabet — never matches anything, including itself:
// an unknown base gives no evidence of similarity, so rewarding N/N
// columns would let runs of unknowns masquerade as conserved regions.
//
// Every kernel must implement exactly this rule. The hot loops read it
// from a precomputed Profile row; Pair is the scalar reference form used
// by tracebacks, validators and tests.
func Substitution(a, b byte, match, mismatch int) int {
	if a == b && baseCode[a] != codeUnknown {
		return match
	}
	return mismatch
}

// Pair returns the substitution score for aligning bases a and b; see
// Substitution for the rule.
func (sc Scoring) Pair(a, b byte) int {
	return Substitution(a, b, sc.Match, sc.Mismatch)
}

// Matches reports whether aligning a and b counts as a match under the
// Substitution rule. Tracebacks use it to classify diagonal steps so
// they agree exactly with the scores the kernels assigned.
func Matches(a, b byte) bool {
	return a == b && baseCode[a] != codeUnknown
}
