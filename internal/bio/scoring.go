package bio

import "fmt"

// Scoring holds the column scores used by every alignment algorithm in the
// repository. The paper's scheme (§2) is +1 for identical characters, −1
// for different characters and −2 for a space (gap).
type Scoring struct {
	Match    int // score for a column with identical characters
	Mismatch int // score for a column with distinct characters
	Gap      int // score for a column containing a space
}

// DefaultScoring is the scheme used throughout the paper's evaluation.
func DefaultScoring() Scoring {
	return Scoring{Match: 1, Mismatch: -1, Gap: -2}
}

// Validate checks that the scheme is sensible for local alignment: matches
// must be rewarded and gaps/mismatches penalized, otherwise the local
// recurrence degenerates (every extension would be profitable and "local"
// alignments would always span the whole inputs).
func (sc Scoring) Validate() error {
	if sc.Match <= 0 {
		return fmt.Errorf("bio: match score must be positive, got %d", sc.Match)
	}
	if sc.Mismatch >= 0 {
		return fmt.Errorf("bio: mismatch score must be negative, got %d", sc.Mismatch)
	}
	if sc.Gap >= 0 {
		return fmt.Errorf("bio: gap score must be negative, got %d", sc.Gap)
	}
	return nil
}

// Pair returns the substitution score for aligning bases a and b.
func (sc Scoring) Pair(a, b byte) int {
	if a == b && a != 'N' {
		return sc.Match
	}
	return sc.Mismatch
}
