package bio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFASTA checks the parser never panics and that accepted input
// round-trips.
func FuzzReadFASTA(f *testing.F) {
	f.Add(">a desc\nACGT\n")
	f.Add(">x\nacgt\nNNNN\n>y\nTT\n")
	f.Add("")
	f.Add(">only header\n")
	f.Add("garbage before\n>a\nACGT")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadFASTA(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, recs...); err != nil {
			t.Fatalf("write of parsed records failed: %v", err)
		}
		again, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
		for i := range recs {
			if again[i].Seq.String() != recs[i].Seq.String() {
				t.Fatalf("record %d sequence changed", i)
			}
		}
	})
}

// FuzzNewSequence checks validation never panics and accepted sequences
// contain only the alphabet.
func FuzzNewSequence(f *testing.F) {
	f.Add("ACGT")
	f.Add("acgtn")
	f.Add("AC GT\n")
	f.Add("bad!")
	f.Fuzz(func(t *testing.T, in string) {
		seq, err := NewSequence(in)
		if err != nil {
			return
		}
		for _, b := range seq {
			if !validBase(b) {
				t.Fatalf("accepted invalid base %q", b)
			}
		}
		if seq.Reverse().Reverse().String() != seq.String() {
			t.Fatal("reverse not an involution")
		}
	})
}
