package bio_test

import (
	"strings"
	"testing"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
)

func TestQueryBoundTables(t *testing.T) {
	q, err := bio.NewSequence("ACGTNNACGT")
	if err != nil {
		t.Fatal(err)
	}
	sc := bio.Scoring{Match: 3, Mismatch: -2, Gap: -4}
	b := bio.NewQueryBound(q, sc)
	if b.QueryLen() != 10 {
		t.Fatalf("query len %d", b.QueryLen())
	}
	// 8 known bases contribute Match=3 each; the two Ns contribute 0.
	if got := b.RecordBound(1000); got != 24 {
		t.Errorf("RecordBound(1000) = %d, want 24", got)
	}
	// Shorter records cap the number of aligned columns.
	for l, want := range map[int]int{0: 0, 1: 3, 5: 15, 8: 24, 10: 24, -3: 0} {
		if got := b.RecordBound(l); got != want {
			t.Errorf("RecordBound(%d) = %d, want %d", l, got, want)
		}
	}
	// Suffix sums walk past the Ns without adding score.
	for r, want := range map[int]int{0: 24, 4: 12, 5: 12, 6: 12, 7: 9, 10: 0, 99: 0} {
		if got := b.SuffixBound(r); got != want {
			t.Errorf("SuffixBound(%d) = %d, want %d", r, got, want)
		}
	}
}

// TestQueryBoundIsUpperBound is the property the pruning pipeline
// rests on: for random queries and records, the exact local-alignment
// score never exceeds RecordBound of the record's length.
func TestQueryBoundIsUpperBound(t *testing.T) {
	g := bio.NewGenerator(17)
	sc := bio.DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		q := g.Random(20 + trial*7%180)
		b := bio.NewQueryBound(q, sc)
		rec := g.Random(5 + trial*13%300)
		r, err := align.Scan(q, rec, sc, align.ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if bound := b.RecordBound(len(rec)); r.BestScore > bound {
			t.Fatalf("trial %d: score %d exceeds bound %d (|q|=%d |rec|=%d)",
				trial, r.BestScore, bound, len(q), len(rec))
		}
		// Exact-copy record: the bound is tight for full-length identity.
		if bound := b.RecordBound(len(q)); bound < len(q)*sc.Match-countN(q)*sc.Match {
			t.Fatalf("trial %d: identity bound %d too small", trial, bound)
		}
	}
}

// TestSuffixBoundDominates pins the mid-scan abandon inequality: the
// exact score is always ≤ the best DP value within the first r rows
// plus SuffixBound(r), for every prefix r.
func TestSuffixBoundDominates(t *testing.T) {
	g := bio.NewGenerator(29)
	sc := bio.Scoring{Match: 2, Mismatch: -3, Gap: -1}
	q := g.Random(80)
	rec := g.MutatedCopy(q, bio.DefaultMutationModel())
	b := bio.NewQueryBound(q, sc)
	full, err := align.Scan(q, rec, sc, align.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 8; r <= len(q); r += 8 {
		prefix, err := align.Scan(q[:r], rec, sc, align.ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if full.BestScore > prefix.BestScore+b.SuffixBound(r) {
			t.Fatalf("r=%d: full %d > prefix %d + suffix %d",
				r, full.BestScore, prefix.BestScore, b.SuffixBound(r))
		}
	}
}

func countN(q bio.Sequence) int {
	return strings.Count(string(q), "N")
}
