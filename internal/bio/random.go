package bio

import (
	"fmt"
	"math/rand"
)

// Generator produces reproducible synthetic DNA. It substitutes for the
// real NCBI genomes used in the paper: the alignment algorithms only see
// A/C/G/T strings, and the evaluation depends on sequence length and on
// the presence of scattered similar regions, both of which Generator
// controls exactly.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a Generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

var bases = [4]byte{'A', 'C', 'G', 'T'}

// Random returns a uniformly random DNA sequence of length n.
func (g *Generator) Random(n int) Sequence {
	s := make(Sequence, n)
	for i := range s {
		s[i] = bases[g.rng.Intn(4)]
	}
	return s
}

// MutationModel controls MutatedCopy.
type MutationModel struct {
	SubstitutionRate float64 // probability a base is substituted
	InsertionRate    float64 // probability an insertion occurs after a base
	DeletionRate     float64 // probability a base is deleted
}

// DefaultMutationModel mutates roughly 10% of positions, mostly by
// substitution, which produces local alignments in the score range the
// paper's thresholds were tuned for.
func DefaultMutationModel() MutationModel {
	return MutationModel{SubstitutionRate: 0.08, InsertionRate: 0.01, DeletionRate: 0.01}
}

// MutatedCopy returns a copy of s with point mutations and indels applied
// according to the model.
func (g *Generator) MutatedCopy(s Sequence, m MutationModel) Sequence {
	out := make(Sequence, 0, len(s)+len(s)/16)
	for _, b := range s {
		r := g.rng.Float64()
		switch {
		case r < m.DeletionRate:
			// drop the base
		case r < m.DeletionRate+m.SubstitutionRate:
			nb := bases[g.rng.Intn(4)]
			for nb == b {
				nb = bases[g.rng.Intn(4)]
			}
			out = append(out, nb)
		default:
			out = append(out, b)
		}
		if g.rng.Float64() < m.InsertionRate {
			out = append(out, bases[g.rng.Intn(4)])
		}
	}
	return out
}

// Region records where a planted homologous segment lives in each of the
// two generated sequences (1-based inclusive coordinates, as used by the
// alignment queue).
type Region struct {
	SBegin, SEnd int
	TBegin, TEnd int
}

// HomologousPair describes a pair of synthetic sequences that share planted
// similar regions — the workload shape the paper describes for real
// genomes ("for two 400 kBP DNA sequences, we can obtain approximately
// 2000 similar regions with an average size of 300 × 300").
type HomologousPair struct {
	S, T    Sequence
	Regions []Region // planted regions, sorted by SBegin
}

// HomologyModel controls HomologousPair generation.
type HomologyModel struct {
	Regions    int           // number of planted similar regions
	RegionLen  int           // average region length (bases)
	RegionJit  int           // +- jitter on region length
	Divergence MutationModel // mutations applied to the T-side copy of each region
}

// DefaultHomologyModel scales the paper's density (2000 regions of ~300 bp
// per 400 kBP) to the requested sequence length. For sequences too short
// to host 300 bp regions, the region size shrinks proportionally so the
// model stays usable on scaled-down benchmark inputs.
func DefaultHomologyModel(seqLen int) HomologyModel {
	regions := seqLen / 200 // paper density: 2000 per 400k = 1 per 200
	if regions < 1 {
		regions = 1
	}
	regionLen, jit := 300, 150
	if seqLen < 2*(regionLen+jit) {
		regionLen = seqLen / 5
		if regionLen < 16 {
			regionLen = 16
		}
		jit = regionLen / 2
	}
	return HomologyModel{
		Regions:    regions,
		RegionLen:  regionLen,
		RegionJit:  jit,
		Divergence: MutationModel{SubstitutionRate: 0.05, InsertionRate: 0.005, DeletionRate: 0.005},
	}
}

// HomologousPair generates two sequences of approximately n bases sharing
// planted similar regions. Both backgrounds are independent random DNA;
// each region is copied from S into T (with divergence mutations) at an
// independently chosen position, so the dot plot of the pair shows
// scattered similarity regions exactly like Fig. 2 / Fig. 14.
func (g *Generator) HomologousPair(n int, m HomologyModel) (HomologousPair, error) {
	if m.Regions < 0 {
		return HomologousPair{}, fmt.Errorf("bio: negative region count %d", m.Regions)
	}
	if m.RegionLen <= 0 && m.Regions > 0 {
		return HomologousPair{}, fmt.Errorf("bio: region length must be positive, got %d", m.RegionLen)
	}
	s := g.Random(n)
	t := g.Random(n)
	maxLen := m.RegionLen + m.RegionJit
	if m.Regions > 0 && maxLen >= n {
		return HomologousPair{}, fmt.Errorf("bio: region length %d does not fit in sequence length %d", maxLen, n)
	}
	var regions []Region
	// Planted T intervals must not overlap, or a later plant would
	// overwrite an earlier region and destroy its similarity. Rejection
	// sampling with a bounded retry budget; if the sequence is too dense
	// to place all regions we plant as many as fit.
	var tUsed []Region
	for i := 0; i < m.Regions; i++ {
		rl := m.RegionLen
		if m.RegionJit > 0 {
			rl += g.rng.Intn(2*m.RegionJit+1) - m.RegionJit
		}
		if rl < 8 {
			rl = 8
		}
		sPos := g.rng.Intn(n - rl)
		segment := g.MutatedCopy(s[sPos:sPos+rl], m.Divergence)
		tPos, ok := g.placeNonOverlapping(n, len(segment), tUsed)
		if !ok {
			break
		}
		copy(t[tPos:], segment)
		r := Region{
			SBegin: sPos + 1, SEnd: sPos + rl,
			TBegin: tPos + 1, TEnd: tPos + len(segment),
		}
		regions = append(regions, r)
		tUsed = append(tUsed, r)
	}
	sortRegions(regions)
	return HomologousPair{S: s, T: t, Regions: regions}, nil
}

// placeNonOverlapping picks a start offset in [0, n-length] whose interval
// does not intersect any already-used T interval. It reports failure after
// a bounded number of attempts (the sequence is then considered full).
func (g *Generator) placeNonOverlapping(n, length int, used []Region) (int, bool) {
	if length > n {
		return 0, false
	}
attempts:
	for try := 0; try < 200; try++ {
		pos := g.rng.Intn(n - length + 1)
		begin, end := pos+1, pos+length // 1-based inclusive
		for _, u := range used {
			if begin <= u.TEnd && u.TBegin <= end {
				continue attempts
			}
		}
		return pos, true
	}
	return 0, false
}

func sortRegions(rs []Region) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].SBegin < rs[j-1].SBegin; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
