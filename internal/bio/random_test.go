package bio

import (
	"reflect"
	"testing"
)

func TestRandomIsDeterministic(t *testing.T) {
	a := NewGenerator(99).Random(1000)
	b := NewGenerator(99).Random(1000)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different sequences")
	}
	c := NewGenerator(100).Random(1000)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical sequences")
	}
}

func TestRandomComposition(t *testing.T) {
	s := NewGenerator(1).Random(100000)
	if s.Len() != 100000 {
		t.Fatalf("length %d", s.Len())
	}
	gc := s.GC()
	if gc < 0.48 || gc > 0.52 {
		t.Errorf("GC content %v far from uniform 0.5", gc)
	}
	for _, b := range s {
		if !validBase(b) || b == 'N' {
			t.Fatalf("invalid generated base %q", b)
		}
	}
}

func TestMutatedCopyRates(t *testing.T) {
	g := NewGenerator(5)
	s := g.Random(20000)
	m := MutationModel{SubstitutionRate: 0.10, InsertionRate: 0, DeletionRate: 0}
	c := g.MutatedCopy(s, m)
	if c.Len() != s.Len() {
		t.Fatalf("substitution-only copy changed length: %d vs %d", c.Len(), s.Len())
	}
	diff := 0
	for i := range s {
		if s[i] != c[i] {
			diff++
		}
	}
	rate := float64(diff) / float64(s.Len())
	if rate < 0.08 || rate > 0.12 {
		t.Errorf("substitution rate %v, want ~0.10", rate)
	}
}

func TestMutatedCopyIndels(t *testing.T) {
	g := NewGenerator(6)
	s := g.Random(20000)
	del := g.MutatedCopy(s, MutationModel{DeletionRate: 0.1})
	if del.Len() >= s.Len() {
		t.Errorf("deletion model did not shrink: %d vs %d", del.Len(), s.Len())
	}
	ins := g.MutatedCopy(s, MutationModel{InsertionRate: 0.1})
	if ins.Len() <= s.Len() {
		t.Errorf("insertion model did not grow: %d vs %d", ins.Len(), s.Len())
	}
}

func TestMutatedCopyZeroModelIsIdentity(t *testing.T) {
	g := NewGenerator(7)
	s := g.Random(500)
	if got := g.MutatedCopy(s, MutationModel{}); !reflect.DeepEqual(got, s) {
		t.Error("zero mutation model altered the sequence")
	}
}

func TestHomologousPair(t *testing.T) {
	g := NewGenerator(11)
	model := HomologyModel{Regions: 10, RegionLen: 200, RegionJit: 50,
		Divergence: MutationModel{SubstitutionRate: 0.05}}
	pair, err := g.HomologousPair(10000, model)
	if err != nil {
		t.Fatal(err)
	}
	if pair.S.Len() != 10000 || pair.T.Len() != 10000 {
		t.Fatalf("lengths %d/%d", pair.S.Len(), pair.T.Len())
	}
	if len(pair.Regions) != 10 {
		t.Fatalf("got %d regions, want 10", len(pair.Regions))
	}
	for i, r := range pair.Regions {
		if r.SBegin < 1 || r.SEnd > 10000 || r.TBegin < 1 || r.TEnd > 10000 {
			t.Errorf("region %d out of bounds: %+v", i, r)
		}
		if r.SEnd < r.SBegin || r.TEnd < r.TBegin {
			t.Errorf("region %d inverted: %+v", i, r)
		}
		if i > 0 && r.SBegin < pair.Regions[i-1].SBegin {
			t.Errorf("regions not sorted by SBegin at %d", i)
		}
		// The planted segments must actually be similar: count identities
		// over the aligned prefix (substitution-only divergence here).
		sSeg := pair.S.Sub(r.SBegin, r.SEnd)
		tSeg := pair.T.Sub(r.TBegin, r.TEnd)
		n := min(len(sSeg), len(tSeg))
		match := 0
		for k := 0; k < n; k++ {
			if sSeg[k] == tSeg[k] {
				match++
			}
		}
		if frac := float64(match) / float64(n); frac < 0.85 {
			t.Errorf("region %d identity %.2f too low; plant failed", i, frac)
		}
	}
}

func TestHomologousPairValidation(t *testing.T) {
	g := NewGenerator(1)
	if _, err := g.HomologousPair(100, HomologyModel{Regions: -1}); err == nil {
		t.Error("negative regions accepted")
	}
	if _, err := g.HomologousPair(100, HomologyModel{Regions: 1, RegionLen: 0}); err == nil {
		t.Error("zero region length accepted")
	}
	if _, err := g.HomologousPair(100, HomologyModel{Regions: 1, RegionLen: 200}); err == nil {
		t.Error("region longer than sequence accepted")
	}
}

func TestHomologousPairZeroRegions(t *testing.T) {
	g := NewGenerator(2)
	pair, err := g.HomologousPair(1000, HomologyModel{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pair.Regions) != 0 {
		t.Errorf("expected no regions, got %d", len(pair.Regions))
	}
}

func TestDefaultHomologyModelDensity(t *testing.T) {
	m := DefaultHomologyModel(400000)
	if m.Regions != 2000 {
		t.Errorf("paper density: 400k should plant 2000 regions, got %d", m.Regions)
	}
	if m2 := DefaultHomologyModel(50); m2.Regions < 1 {
		t.Errorf("tiny sequences must still plant at least one region, got %d", m2.Regions)
	}
}
