package bio

// This file extends the query-profile idea of profile.go to the
// lane-parallel ("inter-sequence") layout used by the SWAR kernels in
// internal/swar: instead of one int32 substitution score per query
// position, a PackedProfile row holds one uint64 *word* per target
// position, with the scores of several target sequences packed side by
// side — 8 unsigned int8 lanes or 4 unsigned int16 lanes. Scoring many
// database sequences per word is the vectorization style of DSA (Xu et
// al.) and SWAPHI (Liu & Schmidt): all lanes advance through their own
// target in lockstep while the query residue — and therefore the profile
// row — is shared by every lane.
//
// The packed kernels work in unsigned *guard-bit* arithmetic: the top
// bit of every lane is kept free, so clean lane values stay ≤ 127
// (int8) or ≤ 32767 (int16), and the zero clamp of the local recurrence
// is the floor of a clamped subtract. A substitution score is therefore
// split into two non-negative magnitudes per lane:
//
//	plus[c][j]:  Match   where residue c matches target lane l at j, else 0
//	minus[c][j]: |Mismatch| where it does not match, else 0
//
// so that H = clamp(diag − minus) + plus reproduces
// max(0, diag + Substitution(...)) exactly — per lane, exactly one of
// plus/minus is nonzero — as long as no lane exceeds its clean cap
// (PackedCap8 or PackedCap16); a lane that does trips its guard bit and
// is retried wider by internal/swar. Lanes shorter than the padded
// length are padded with an all-mismatch column, which decays their
// scores to zero and can never raise a lane's running maximum.

// Lane geometry of the two packed widths.
const (
	// PackedLanes8 is the number of int8 lanes per uint64 word.
	PackedLanes8 = 8
	// PackedCap8 is the largest score a clean int8 lane can hold: the
	// lane's top bit is a guard bit, and a lane that ever sets it is
	// unreliable and must fall back to a wider kernel.
	PackedCap8 = 127
	// PackedLanes16 is the number of int16 lanes per uint64 word.
	PackedLanes16 = 4
	// PackedCap16 is the guard-bit cap of an int16 lane.
	PackedCap16 = 32767
)

// PackedProfile is the lane-parallel form of Profile: a set of packed
// per-residue rows over a group of up to Lanes() target sequences.
// PlusRow(a)[j] / MinusRow(a)[j] hold, for every lane l, the split
// substitution magnitudes of query residue a against target l's residue
// at position j. Build it once per lane group; it is read-only
// afterwards and safe for concurrent use.
type PackedProfile struct {
	lanes int  // PackedLanes8 or PackedLanes16
	shift uint // bits per lane (8 or 16)
	cap   int  // per-lane saturation cap
	words int  // padded target length (words per row)
	lens  []int
	plus  [AlphabetSize][]uint64
	minus [AlphabetSize][]uint64
}

// NewPackedProfile8 builds the 8-lane int8 packed profile of up to 8
// targets under sc. It returns nil when the scoring magnitudes do not
// fit the clean 7-bit lane range or when more than 8 targets are given;
// callers then fall back to a wider layout.
func NewPackedProfile8(targets []Sequence, sc Scoring) *PackedProfile {
	return newPackedProfile(targets, sc, PackedLanes8, 8, PackedCap8)
}

// NewPackedProfile16 builds the 4-lane int16 packed profile of up to 4
// targets under sc, for lanes whose scores overflow the int8 cap.
func NewPackedProfile16(targets []Sequence, sc Scoring) *PackedProfile {
	return newPackedProfile(targets, sc, PackedLanes16, 16, PackedCap16)
}

func newPackedProfile(targets []Sequence, sc Scoring, lanes int, shift uint, capVal int) *PackedProfile {
	if len(targets) > lanes {
		return nil
	}
	match, mismatch := sc.Match, -sc.Mismatch
	if match < 0 || match > capVal || mismatch < 0 || mismatch > capVal {
		return nil
	}
	words := 0
	lens := make([]int, len(targets))
	for i, t := range targets {
		lens[i] = len(t)
		if len(t) > words {
			words = len(t)
		}
	}
	p := &PackedProfile{lanes: lanes, shift: shift, cap: capVal, words: words, lens: lens}
	backing := make([]uint64, 2*AlphabetSize*words)
	for c := 0; c < AlphabetSize; c++ {
		p.plus[c] = backing[2*c*words : (2*c+1)*words : (2*c+1)*words]
		p.minus[c] = backing[(2*c+1)*words : (2*c+2)*words : (2*c+2)*words]
	}
	mm := uint64(mismatch)
	mv := uint64(match)
	// allMiss is the column of a padded (or mismatching-everywhere) word:
	// |Mismatch| in every lane of the minus row.
	allMiss := uint64(0)
	for l := 0; l < lanes; l++ {
		allMiss |= mm << (uint(l) * shift)
	}
	for c := 0; c < AlphabetSize; c++ {
		for j := 0; j < words; j++ {
			plusW, minusW := uint64(0), allMiss
			if c != codeUnknown {
				for l, t := range targets {
					if j < len(t) && baseCode[t[j]] == uint8(c) {
						off := uint(l) * shift
						plusW |= mv << off
						minusW &^= mm << off
					}
				}
			}
			// The unknown query row (c == 4, i.e. 'N' or invalid bytes)
			// matches nothing — including a target 'N' — so it keeps the
			// all-mismatch column, encoding the Substitution wildcard rule.
			p.plus[c][j] = plusW
			p.minus[c][j] = minusW
		}
	}
	return p
}

// Lanes returns the number of lanes per word (8 for int8, 4 for int16).
func (p *PackedProfile) Lanes() int { return p.lanes }

// Words returns the padded target length: the number of words per row.
func (p *PackedProfile) Words() int { return p.words }

// Cap returns the per-lane clean cap (127 or 32767).
func (p *PackedProfile) Cap() int { return p.cap }

// Shift returns the number of bits per lane (8 or 16).
func (p *PackedProfile) Shift() uint { return p.shift }

// LaneLen returns the true (unpadded) length of target lane l, or 0 for
// an empty lane.
func (p *PackedProfile) LaneLen(l int) int {
	if l >= len(p.lens) {
		return 0
	}
	return p.lens[l]
}

// PlusRow returns the packed match-magnitude row for query residue a.
// The slice is shared and must not be modified.
func (p *PackedProfile) PlusRow(a byte) []uint64 { return p.plus[baseCode[a]] }

// MinusRow returns the packed mismatch-magnitude row for query residue a.
func (p *PackedProfile) MinusRow(a byte) []uint64 { return p.minus[baseCode[a]] }

// Lane extracts lane l of a packed word as an int.
func (p *PackedProfile) Lane(word uint64, l int) int {
	mask := uint64(1)<<p.shift - 1
	return int(word >> (uint(l) * p.shift) & mask)
}

// Broadcast replicates the magnitude v (which must fit a lane) into
// every lane of a word — used for the gap-penalty constant.
func (p *PackedProfile) Broadcast(v int) uint64 {
	w := uint64(0)
	for l := 0; l < p.lanes; l++ {
		w |= uint64(v) << (uint(l) * p.shift)
	}
	return w
}
