package bio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is one FASTA entry.
type Record struct {
	ID          string // first word of the header line
	Description string // remainder of the header line
	Seq         Sequence
}

// ReadFASTA parses all records from r. It accepts the common FASTA layout:
// '>' header lines followed by wrapped sequence lines; blank lines are
// ignored. Sequence data is validated against the DNA alphabet.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var recs []Record
	var cur *Record
	var body strings.Builder
	line := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		seq, err := NewSequence(body.String())
		if err != nil {
			return fmt.Errorf("record %q: %w", cur.ID, err)
		}
		cur.Seq = seq
		recs = append(recs, *cur)
		cur = nil
		body.Reset()
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			header := strings.TrimSpace(text[1:])
			id, desc, _ := strings.Cut(header, " ")
			cur = &Record{ID: id, Description: desc}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("bio: line %d: sequence data before any '>' header", line)
		}
		body.WriteString(text)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ReadFASTAFile reads all records from the named file.
func ReadFASTAFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadFASTA(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// WriteFASTA writes records to w, wrapping sequence lines at 70 columns.
func WriteFASTA(w io.Writer, recs ...Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		header := rec.ID
		if rec.Description != "" {
			header += " " + rec.Description
		}
		if _, err := fmt.Fprintf(bw, ">%s\n", header); err != nil {
			return err
		}
		for i := 0; i < len(rec.Seq); i += 70 {
			end := i + 70
			if end > len(rec.Seq) {
				end = len(rec.Seq)
			}
			if _, err := bw.Write(rec.Seq[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFASTAFile writes records to the named file, replacing it.
func WriteFASTAFile(path string, recs ...Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFASTA(f, recs...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
