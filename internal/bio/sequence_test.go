package bio

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSequenceValidates(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"ACGT", "ACGT", false},
		{"acgt", "ACGT", false},
		{"AC GT\nTT", "ACGTTT", false},
		{"ACGTN", "ACGTN", false},
		{"", "", false},
		{"ACGU", "", true},
		{"123", "", true},
		{"AC-GT", "", true},
	}
	for _, c := range cases {
		got, err := NewSequence(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("NewSequence(%q): expected error, got %q", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("NewSequence(%q): unexpected error %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("NewSequence(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMustSequencePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSequence on invalid input did not panic")
		}
	}()
	MustSequence("XYZ")
}

func TestReverse(t *testing.T) {
	s := MustSequence("ACGTT")
	if got := s.Reverse().String(); got != "TTGCA" {
		t.Errorf("Reverse = %q, want TTGCA", got)
	}
	if got := Sequence(nil).Reverse(); len(got) != 0 {
		t.Errorf("Reverse of empty = %q", got)
	}
}

func TestReverseIsInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		s := randomSeqFromBytes(raw)
		return reflect.DeepEqual(s.Reverse().Reverse(), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComplement(t *testing.T) {
	s := MustSequence("ACGTN")
	if got := s.Complement().String(); got != "TGCAN" {
		t.Errorf("Complement = %q, want TGCAN", got)
	}
	if got := s.ReverseComplement().String(); got != "NACGT" {
		t.Errorf("ReverseComplement = %q, want NACGT", got)
	}
}

func TestComplementIsInvolutionOnACGT(t *testing.T) {
	f := func(raw []byte) bool {
		s := randomSeqFromBytes(raw)
		return reflect.DeepEqual(s.Complement().Complement(), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSub(t *testing.T) {
	s := MustSequence("ACGTACGT")
	if got := s.Sub(1, 4).String(); got != "ACGT" {
		t.Errorf("Sub(1,4) = %q", got)
	}
	if got := s.Sub(5, 8).String(); got != "ACGT" {
		t.Errorf("Sub(5,8) = %q", got)
	}
	if got := s.Sub(3, 2); len(got) != 0 { // empty range is allowed
		t.Errorf("Sub(3,2) = %q, want empty", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sub out of range did not panic")
		}
	}()
	s.Sub(0, 3)
}

func TestCloneIsIndependent(t *testing.T) {
	s := MustSequence("ACGT")
	c := s.Clone()
	c[0] = 'T'
	if s[0] != 'A' {
		t.Error("Clone shares storage with original")
	}
}

func TestGC(t *testing.T) {
	if gc := MustSequence("GGCC").GC(); gc != 1 {
		t.Errorf("GC(GGCC) = %v", gc)
	}
	if gc := MustSequence("AATT").GC(); gc != 0 {
		t.Errorf("GC(AATT) = %v", gc)
	}
	if gc := MustSequence("ACGT").GC(); gc != 0.5 {
		t.Errorf("GC(ACGT) = %v", gc)
	}
	if gc := Sequence(nil).GC(); gc != 0 {
		t.Errorf("GC(empty) = %v", gc)
	}
}

func TestPrettyWraps(t *testing.T) {
	s := MustSequence(strings.Repeat("ACGT", 10)) // 40 bases
	out := s.Pretty(16)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("Pretty(16) produced %d lines, want 3: %q", len(lines), out)
	}
	if len(lines[0]) != 16 || len(lines[2]) != 8 {
		t.Errorf("unexpected line lengths %d/%d", len(lines[0]), len(lines[2]))
	}
	if got := strings.ReplaceAll(out, "\n", ""); got != s.String() {
		t.Errorf("Pretty altered content: %q", got)
	}
}

func TestScoringValidate(t *testing.T) {
	if err := DefaultScoring().Validate(); err != nil {
		t.Errorf("default scoring invalid: %v", err)
	}
	bad := []Scoring{
		{Match: 0, Mismatch: -1, Gap: -2},
		{Match: 1, Mismatch: 0, Gap: -2},
		{Match: 1, Mismatch: -1, Gap: 0},
		{Match: -1, Mismatch: -1, Gap: -2},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid scheme", sc)
		}
	}
}

func TestScoringPair(t *testing.T) {
	sc := DefaultScoring()
	if got := sc.Pair('A', 'A'); got != 1 {
		t.Errorf("Pair(A,A) = %d", got)
	}
	if got := sc.Pair('A', 'C'); got != -1 {
		t.Errorf("Pair(A,C) = %d", got)
	}
	// N never matches, even against itself.
	if got := sc.Pair('N', 'N'); got != -1 {
		t.Errorf("Pair(N,N) = %d, want mismatch", got)
	}
}

// randomSeqFromBytes maps arbitrary fuzz bytes onto the DNA alphabet so
// quick.Check can exercise Sequence methods.
func randomSeqFromBytes(raw []byte) Sequence {
	s := make(Sequence, len(raw))
	for i, b := range raw {
		s[i] = bases[int(b)%4]
	}
	return s
}

func TestRandomSeqHelperAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	raw := make([]byte, 100)
	rng.Read(raw)
	for _, b := range randomSeqFromBytes(raw) {
		if !validBase(b) {
			t.Fatalf("helper produced invalid base %q", b)
		}
	}
}
