package bio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadFASTA(t *testing.T) {
	in := `>seq1 first sequence
ACGTACGT
ACGT

>seq2
TTTT
`
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != "seq1" || recs[0].Description != "first sequence" {
		t.Errorf("record 0 header = %q %q", recs[0].ID, recs[0].Description)
	}
	if recs[0].Seq.String() != "ACGTACGTACGT" {
		t.Errorf("record 0 seq = %q", recs[0].Seq)
	}
	if recs[1].ID != "seq2" || recs[1].Seq.String() != "TTTT" {
		t.Errorf("record 1 = %+v", recs[1])
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header accepted")
	}
	if _, err := ReadFASTA(strings.NewReader(">x\nAC!T\n")); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestReadFASTAEmpty(t *testing.T) {
	recs, err := ReadFASTA(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty input", len(recs))
	}
}

func TestFASTARoundTrip(t *testing.T) {
	g := NewGenerator(42)
	recs := []Record{
		{ID: "a", Description: "synthetic genome", Seq: g.Random(500)},
		{ID: "b", Seq: g.Random(71)}, // exercises the wrap boundary
		{ID: "empty"},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, recs...); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID {
			t.Errorf("record %d ID = %q, want %q", i, got[i].ID, recs[i].ID)
		}
		if got[i].Seq.String() != recs[i].Seq.String() {
			t.Errorf("record %d sequence mismatch (%d vs %d bases)", i, got[i].Seq.Len(), recs[i].Seq.Len())
		}
	}
}

func TestFASTAFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.fa")
	g := NewGenerator(7)
	want := Record{ID: "chr1", Description: "test", Seq: g.Random(200)}
	if err := WriteFASTAFile(path, want); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFASTAFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq.String() != want.Seq.String() {
		t.Errorf("file round trip mismatch")
	}
	if _, err := ReadFASTAFile(filepath.Join(dir, "missing.fa")); err == nil {
		t.Error("reading missing file succeeded")
	}
}

func TestWriteFASTAWrapping(t *testing.T) {
	var buf bytes.Buffer
	g := NewGenerator(3)
	if err := WriteFASTA(&buf, Record{ID: "x", Seq: g.Random(150)}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // header + 70 + 70 + 10
		t.Fatalf("got %d lines, want 4: %v", len(lines), lines)
	}
	if len(lines[1]) != 70 || len(lines[3]) != 10 {
		t.Errorf("wrap widths %d/%d, want 70/10", len(lines[1]), len(lines[3]))
	}
}
