package bio

// This file adds the *striped* (intra-sequence) counterpart of
// packed.go's inter-sequence PackedProfile: instead of eight different
// target sequences sharing a word, the lanes of a StripedProfile word
// hold eight positions of ONE sequence, interleaved Farrar-style
// (Farrar 2007; SWAPHI, Liu & Schmidt, arXiv:1404.4152 apply the same
// layout on wide-vector CPUs). With segment length L = ceil(n/lanes),
// word v lane l holds position v + l·L, so *consecutive word indices
// are consecutive positions within every lane's segment*. That is the
// property the striped kernels in internal/swar exploit: the
// along-stripe DP dependency (the gap chain) flows word-to-word inside
// the column pass, and only chains that cross a segment boundary need
// the lazy wrap-around correction loop.
//
// Scores use the same guard-bit split as PackedProfile — non-negative
// plus/minus magnitudes per lane, top bit kept free — so the striped
// kernels reuse SubClamp8/16 and MaxClamped8/16 unchanged. Positions
// past the true length n (the tail of the last lane) are padded with
// all-mismatch columns; padded values only ever decay from real ones,
// and ValueMask additionally zeroes padded lanes so they can never
// surface in a maximum or a hit count.

// StripedProfile is the striped query profile of one sequence t: for
// each residue code a, PlusRow(a)[v] / MinusRow(a)[v] hold the split
// substitution magnitudes of a against the lane positions of word v.
// Build once per comparison; read-only and safe for concurrent use
// afterwards.
type StripedProfile struct {
	lanes  int  // PackedLanes8 or PackedLanes16
	shift  uint // bits per lane (8 or 16)
	cap    int  // per-lane clean cap (guard bit excluded)
	segLen int  // words per row = ceil(n/lanes)
	n      int  // true sequence length
	plus   [AlphabetSize][]uint64
	minus  [AlphabetSize][]uint64
	// vmask[v] has the full lane mask (all bits) of every lane whose
	// position v + l·segLen is real (< n); value[v] is the same mask
	// with the guard bits stripped (lane caps), ready to both strip
	// and pad-mask a score word in one AND.
	vmask []uint64
	value []uint64
}

// NewStripedProfile8 builds the 8-lane int8 striped profile of t under
// sc, or nil when the scoring magnitudes do not fit the 7-bit clean
// lane range (callers then fall back to a wider layout).
func NewStripedProfile8(t Sequence, sc Scoring) *StripedProfile {
	return newStripedProfile(t, sc, PackedLanes8, 8, PackedCap8)
}

// NewStripedProfile16 builds the 4-lane int16 striped profile of t.
func NewStripedProfile16(t Sequence, sc Scoring) *StripedProfile {
	return newStripedProfile(t, sc, PackedLanes16, 16, PackedCap16)
}

func newStripedProfile(t Sequence, sc Scoring, lanes int, shift uint, capVal int) *StripedProfile {
	match, mismatch := sc.Match, -sc.Mismatch
	if match < 0 || match > capVal || mismatch < 0 || mismatch > capVal {
		return nil
	}
	n := len(t)
	segLen := (n + lanes - 1) / lanes
	p := &StripedProfile{lanes: lanes, shift: shift, cap: capVal, segLen: segLen, n: n}
	if segLen == 0 {
		return p
	}
	backing := make([]uint64, (2*AlphabetSize+2)*segLen)
	for c := 0; c < AlphabetSize; c++ {
		p.plus[c] = backing[2*c*segLen : (2*c+1)*segLen : (2*c+1)*segLen]
		p.minus[c] = backing[(2*c+1)*segLen : (2*c+2)*segLen : (2*c+2)*segLen]
	}
	p.vmask = backing[2*AlphabetSize*segLen : (2*AlphabetSize+1)*segLen]
	p.value = backing[(2*AlphabetSize+1)*segLen : (2*AlphabetSize+2)*segLen]
	mm := uint64(mismatch)
	mv := uint64(match)
	laneMask := uint64(1)<<shift - 1
	guard := uint64(1) << (shift - 1)
	for v := 0; v < segLen; v++ {
		for l := 0; l < lanes; l++ {
			pos := v + l*segLen
			off := uint(l) * shift
			// Padded lanes (pos >= n) keep the all-mismatch column so
			// their values only ever decay from real ones; the unknown
			// row (c == 4: 'N' and invalid bytes) matches nothing —
			// the Substitution wildcard rule, as in PackedProfile.
			for c := 0; c < AlphabetSize; c++ {
				if pos < n && c != codeUnknown && baseCode[t[pos]] == byte(c) {
					p.plus[c][v] |= mv << off
				} else {
					p.minus[c][v] |= mm << off
				}
			}
			if pos < n {
				p.vmask[v] |= laneMask << off
				p.value[v] |= (laneMask &^ guard) << off
			}
		}
	}
	return p
}

// Lanes returns the number of lanes per word (8 for int8, 4 for int16).
func (p *StripedProfile) Lanes() int { return p.lanes }

// Shift returns the number of bits per lane (8 or 16).
func (p *StripedProfile) Shift() uint { return p.shift }

// Cap returns the per-lane clean cap (127 or 32767).
func (p *StripedProfile) Cap() int { return p.cap }

// SegLen returns the segment length: the number of words per row.
func (p *StripedProfile) SegLen() int { return p.segLen }

// Len returns the true (unpadded) sequence length.
func (p *StripedProfile) Len() int { return p.n }

// PlusRow returns the striped match-magnitude row for query residue a.
// The slice is shared and must not be modified.
func (p *StripedProfile) PlusRow(a byte) []uint64 { return p.plus[baseCode[a]] }

// MinusRow returns the striped mismatch-magnitude row for residue a.
func (p *StripedProfile) MinusRow(a byte) []uint64 { return p.minus[baseCode[a]] }

// ValueMask returns, per word, the mask that both strips the guard
// bits and zeroes padded lanes: w & ValueMask()[v] is the clean score
// payload of word v. The slice is shared and must not be modified.
func (p *StripedProfile) ValueMask() []uint64 { return p.value }

// GuardMask returns the guard-bit positions of the real (unpadded)
// lanes of word v, for saturation and threshold tests.
func (p *StripedProfile) GuardMask(v int) uint64 {
	guard := uint64(1) << (p.shift - 1)
	return p.vmask[v] & (guard * stripedOnes(p.shift, p.lanes))
}

// stripedOnes returns a word with bit 0 of every lane set.
func stripedOnes(shift uint, lanes int) uint64 {
	var w uint64
	for l := 0; l < lanes; l++ {
		w |= 1 << (uint(l) * shift)
	}
	return w
}

// Lane extracts lane l of a packed word as an int.
func (p *StripedProfile) Lane(word uint64, l int) int {
	mask := uint64(1)<<p.shift - 1
	return int(word >> (uint(l) * p.shift) & mask)
}

// Broadcast replicates the magnitude v (which must fit a lane) into
// every lane of a word — used for the gap penalty and the threshold.
func (p *StripedProfile) Broadcast(v int) uint64 {
	w := uint64(0)
	for l := 0; l < p.lanes; l++ {
		w |= uint64(v) << (uint(l) * p.shift)
	}
	return w
}
