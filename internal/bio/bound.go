package bio

// This file implements the precomputed score bounds behind the search
// layer's ALAE-style exact pruning: for one query and one scoring
// scheme, QueryBound answers two questions in O(1) —
//
//   - RecordBound: how high can ANY record of length L possibly score
//     against this query? Every aligned column contributes at most the
//     query position's best substitution score (gaps only cost), and a
//     local alignment against a length-L record aligns at most
//     min(|q|, L) query positions, so the sum of the min(|q|, L)
//     largest per-position maxima bounds the score from above.
//   - SuffixBound: mid-scan, after the kernel has finished r query
//     rows, how much more can any alignment still gain? Only query
//     positions > r can add score, each at most its per-position
//     maximum, so the suffix sum over positions > r bounds the gain.
//
// Both are bounds on the exact Smith–Waterman score, so a record ruled
// out by them is ruled out exactly — no heuristics, no false drops.

// QueryBound holds the per-position score maxima of one query under one
// scoring scheme, with the prefix/suffix sums that make record-level
// and mid-scan upper bounds O(1). Build once per search; it is
// read-only afterwards and safe for concurrent use.
type QueryBound struct {
	n      int
	prefix []int32 // prefix[w]: sum of the w largest per-position maxima
	suffix []int32 // suffix[r]: sum of maxima at 0-based positions ≥ r
}

// NewQueryBound precomputes the bounds of q under sc. The per-position
// maximum of a known base is sc.Match (some target residue matches it);
// an unknown base ('N' or out-of-alphabet) never matches anything, so
// its best substitution is sc.Mismatch < 0 and — since a local
// alignment may simply not include the column — it contributes 0.
func NewQueryBound(q Sequence, sc Scoring) *QueryBound {
	n := len(q)
	b := &QueryBound{
		n:      n,
		prefix: make([]int32, n+1),
		suffix: make([]int32, n+1),
	}
	known := 0
	for r := n - 1; r >= 0; r-- {
		b.suffix[r] = b.suffix[r+1]
		if baseCode[q[r]] != codeUnknown {
			b.suffix[r] += int32(sc.Match)
			known++
		}
	}
	// All positive maxima are equal (sc.Match), so the "w largest" sum
	// needs no sort: the first `known` prefix steps add sc.Match each and
	// the rest add the zero contribution of unknown positions.
	for w := 1; w <= n; w++ {
		b.prefix[w] = b.prefix[w-1]
		if w <= known {
			b.prefix[w] += int32(sc.Match)
		}
	}
	return b
}

// QueryLen returns the bound's query length.
func (b *QueryBound) QueryLen() int { return b.n }

// RecordBound returns an upper bound on the best local-alignment score
// of the query against any record of length recLen. The bound is exact
// in the sense of never under-estimating: score ≤ RecordBound(recLen)
// for every record of that length.
func (b *QueryBound) RecordBound(recLen int) int {
	if recLen > b.n {
		recLen = b.n
	}
	if recLen < 0 {
		recLen = 0
	}
	return int(b.prefix[recLen])
}

// SuffixBound returns an upper bound on the score any alignment can
// still gain from query positions after the first rowsDone rows of a
// row-major scan: every such alignment either ended within the finished
// rows (already folded into the kernel's running maximum) or crosses
// into rows > rowsDone, gaining at most this much beyond the best
// prefix value the kernel has seen.
func (b *QueryBound) SuffixBound(rowsDone int) int {
	if rowsDone >= b.n {
		return 0
	}
	if rowsDone < 0 {
		rowsDone = 0
	}
	return int(b.suffix[rowsDone])
}
