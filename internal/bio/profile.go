package bio

// This file implements the query profile: the precomputed substitution
// rows that let the dynamic-programming inner loops read one int32 per
// cell instead of calling Scoring.Pair (a byte comparison with an 'N'
// branch) per cell. The technique is standard in fast Smith–Waterman
// implementations (Farrar/SWAPHI-style "query profiles"): for each
// residue code x and each query position j, profile[x][j] holds the
// substitution score of x against t[j], built once per comparison in
// O(|Σ|·n) and then shared by every row of the O(m·n) matrix fill.

// AlphabetSize is the number of residue codes a Profile distinguishes:
// A, C, G and T each get their own row; code 4 is the catch-all
// "unknown" row used for 'N' and any byte outside the DNA alphabet.
const AlphabetSize = 5

// codeUnknown is the catch-all residue code ('N' and invalid bytes).
const codeUnknown = 4

// baseCode maps an ASCII byte to its profile row. Only upper-case
// A/C/G/T get dedicated codes, matching the normalized form produced by
// NewSequence.
var baseCode = func() (tab [256]uint8) {
	for i := range tab {
		tab[i] = codeUnknown
	}
	tab['A'], tab['C'], tab['G'], tab['T'] = 0, 1, 2, 3
	return tab
}()

// BaseCode returns the profile row index of base b (A=0, C=1, G=2, T=3,
// everything else — including 'N' — the unknown code 4).
func BaseCode(b byte) uint8 { return baseCode[b] }

// Profile is a query profile against a fixed sequence t: Row(a)[j] is
// the substitution score of residue a against t[j] under the rule of
// Substitution. Build it once per comparison; it is read-only afterwards
// and safe for concurrent use.
type Profile struct {
	n    int
	rows [AlphabetSize][]int32
}

// NewProfile builds the query profile of t under the linear scheme sc.
func NewProfile(t Sequence, sc Scoring) *Profile {
	return NewSubstProfile(t, sc.Match, sc.Mismatch)
}

// NewSubstProfile builds the query profile of t for an arbitrary
// match/mismatch pair (used by the affine aligner, whose gap model lives
// outside the substitution rule).
func NewSubstProfile(t Sequence, match, mismatch int) *Profile {
	n := len(t)
	p := &Profile{n: n}
	backing := make([]int32, AlphabetSize*n)
	mm := int32(mismatch)
	for i := range backing {
		backing[i] = mm
	}
	for c := 0; c < AlphabetSize; c++ {
		p.rows[c] = backing[c*n : (c+1)*n : (c+1)*n]
	}
	// Only identical known bases score Match; the unknown row (code 4,
	// which includes 'N') stays all-mismatch, and 'N' positions of t are
	// never promoted — the Substitution wildcard rule, encoded once.
	for j := 0; j < n; j++ {
		if c := baseCode[t[j]]; c != codeUnknown {
			p.rows[c][j] = int32(match)
		}
	}
	return p
}

// Len returns the profile's query length |t|.
func (p *Profile) Len() int { return p.n }

// Row returns the precomputed substitution row for residue a: a slice of
// length Len() with Row(a)[j] == Substitution(a, t[j], match, mismatch).
// The slice is shared and must not be modified.
func (p *Profile) Row(a byte) []int32 { return p.rows[baseCode[a]] }

// Max32 returns the larger of a and b. The comparison is written so the
// compiler emits a conditional move (no branch) on amd64 and arm64,
// which is what keeps the DP inner loops free of data-dependent
// branches.
func Max32(a, b int32) int32 {
	if b > a {
		a = b
	}
	return a
}

// Min32 returns the smaller of a and b, compiled branch-free like Max32.
func Min32(a, b int32) int32 {
	if b < a {
		a = b
	}
	return a
}

// Clamp0 returns max(v, 0), the zero clamp of the local recurrence,
// compiled branch-free like Max32.
func Clamp0(v int32) int32 {
	if v < 0 {
		v = 0
	}
	return v
}
