package search

import (
	"sync"
	"sync/atomic"

	"genomedsm/internal/bio"
	"genomedsm/internal/blast"
	"genomedsm/internal/swar"
)

// This file holds the ALAE-style exact pruning pipeline of Run:
//
//   stage 1 — record-level skip: bio.QueryBound.RecordBound gives an
//     O(1) upper bound per record (best-case ungapped sum capped by
//     record and query length); records strictly below the shared
//     top-K floor never touch a kernel.
//   stage 2 — mid-scan abandon: the floor is threaded into the packed
//     kernels as a swar.Bound; every cadence rows the kernel checks
//     whether any lane can still reach it and bails when none can.
//   stage 3 — optional seed-and-extend prefilter: blast word seeding
//     plus ungapped X-drop extension yields an exact LOWER bound per
//     record, and the K-th best lower bound pre-seeds the floor before
//     any DP runs.
//
// All three stages prove scores strictly below the pruning threshold,
// and ties at the threshold are never pruned, so the surviving top-K
// set, scores, coordinates and tie-breaks are bit-identical to the
// unpruned scan — the differential and fuzz suites pin exactly that.

// PruneStats reports what the pruning pipeline did during one Run.
// Skipped + Abandoned + Scanned always equals the number of records
// searched; the split between them (and CellsSaved) depends on how fast
// the floor ratcheted, which varies with worker scheduling — callers
// must treat the counts as diagnostics, never as part of the result.
type PruneStats struct {
	// Skipped counts records dropped by the O(1) record-level bound
	// without touching a kernel.
	Skipped int
	// Abandoned counts records whose scan a kernel abandoned mid-matrix.
	Abandoned int
	// Scanned counts records scored to completion.
	Scanned int
	// CellsSaved estimates the true DP cells not computed: the full
	// |q|·|record| matrix for skipped records, plus the rows the
	// resolving kernel rung never reached for abandoned ones. Never
	// exceeds Result.Cells.
	CellsSaved int64
	// FloorFinal is the shared top-K score floor when the scan finished
	// (0 when fewer than K records produced eligible scores).
	FloorFinal int
}

// floorEntry is one record's best known score evidence in the shared
// floor heap: its exact score once scanned, or the prefilter's
// seed-and-extend lower bound before that.
type floorEntry struct {
	score int
	index int
}

// floorTracker maintains the shared top-K score floor that makes
// pruning global across workers: a bounded min-heap of per-record
// score evidence whose root — once K records are in — is published
// through an atomic, so the hot path reads the current floor without
// a lock. The floor only ever ratchets up, and is valid by
// construction: when get() returns f > 0, K distinct records are known
// to score ≥ f and to be result-eligible (callers only push eligible
// evidence, see push), so a record provably scoring < f cannot enter
// the final merged top K no matter how worker scheduling interleaves.
type floorTracker struct {
	floor   atomic.Int64
	mu      sync.Mutex
	k       int
	dedup   bool         // prefilter seeded the heap: pushes must dedup by index
	entries []floorEntry // min-heap on score
}

func newFloorTracker(k int) *floorTracker {
	return &floorTracker{k: k}
}

// get returns the current published floor (0 until K records have
// evidence).
func (f *floorTracker) get() int { return int(f.floor.Load()) }

// threshold folds the published floor with the caller's MinScore and
// the implicit "hits must score > 0" rule into the strict pruning
// threshold: a record provably scoring < threshold cannot appear in
// the result. Records tying the threshold are never pruned — a score
// equal to the floor can still win its place on the index tie-break.
func (f *floorTracker) threshold(minScore int) int {
	t := f.get()
	if minScore > t {
		t = minScore
	}
	if t < 1 {
		t = 1
	}
	return t
}

// push records score evidence for one record: its exact score after a
// completed scan, or a prefilter lower bound. Callers must only push
// evidence for result-eligible records (score ≥ max(MinScore, 1)),
// otherwise the floor could be propped up by records the result later
// drops. When the prefilter seeded the heap, a record already present
// is updated in place (lower bound upgraded to exact score), never
// counted twice — double-counting would overstate how many distinct
// records clear the floor and break the floor's validity.
func (f *floorTracker) push(score, index int) {
	if f.k <= 0 {
		return
	}
	// Fast path without the lock: once the heap is full every entry
	// scores ≥ the published floor, so evidence at or below it can
	// neither displace an entry nor improve one.
	if fl := f.floor.Load(); fl > 0 && int64(score) <= fl {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dedup {
		for i := range f.entries {
			if f.entries[i].index == index {
				if score > f.entries[i].score {
					f.entries[i].score = score
					f.siftDown(i)
					f.publish()
				}
				return
			}
		}
	}
	if len(f.entries) < f.k {
		f.entries = append(f.entries, floorEntry{score, index})
		for i := len(f.entries) - 1; i > 0; {
			parent := (i - 1) / 2
			if f.entries[parent].score <= f.entries[i].score {
				break
			}
			f.entries[i], f.entries[parent] = f.entries[parent], f.entries[i]
			i = parent
		}
		f.publish()
		return
	}
	if score > f.entries[0].score {
		f.entries[0] = floorEntry{score, index}
		f.siftDown(0)
		f.publish()
	}
}

func (f *floorTracker) siftDown(i int) {
	n := len(f.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && f.entries[l].score < f.entries[smallest].score {
			smallest = l
		}
		if r < n && f.entries[r].score < f.entries[smallest].score {
			smallest = r
		}
		if smallest == i {
			return
		}
		f.entries[i], f.entries[smallest] = f.entries[smallest], f.entries[i]
		i = smallest
	}
}

// publish exposes the heap root as the floor once K records are in.
// The root never decreases (entries are only replaced by larger
// scores), so readers observe a monotonically ratcheting floor.
func (f *floorTracker) publish() {
	if len(f.entries) == f.k {
		f.floor.Store(int64(f.entries[0].score))
	}
}

// seedFloor runs the optional stage-3 prefilter: every record gets a
// blast seed-and-extend LOWER bound on its exact score, and the K best
// bounds pre-seed the floor so stage 1 and 2 start pruning from the
// first group instead of waiting for K full scans. Records without
// seed hits contribute no evidence and stay protected by the upper
// bounds, so exactness is preserved by construction.
func seedFloor(ft *floorTracker, q bio.Sequence, db []bio.Record, sc bio.Scoring, word, minScore int) {
	ix := blast.NewWordIndex(q, word)
	if ix == nil {
		return
	}
	ft.dedup = true
	lo := minScore
	if lo < 1 {
		lo = 1
	}
	for i := range db {
		if lb := ix.SeedScore(db[i].Seq, sc, 0); lb >= lo {
			ft.push(lb, i)
		}
	}
}

// scoreGroupBounded is scoreGroup under a pruning bound: pruned[i]
// reports that target i's exact score is provably below ab.Below (its
// scores slot is then 0 and meaningless) and rows[i] is the number of
// query rows the kernel rung that resolved target i consumed. Targets
// that are not pruned are scored bit-exactly to scoreGroup's result.
// A non-nil gp supplies the group's shared prebuilt int8 profile.
func scoreGroupBounded(al *swar.Aligner, q bio.Sequence, targets []bio.Sequence, sc bio.Scoring, lanesOpt int, ab *swar.Bound, gp *groupProf) ([]int, []bool, []int, error) {
	switch lanesOpt {
	case 0, 8:
		if len(targets) == 1 {
			// Same singleton special-case as scoreGroup: the striped
			// intra-sequence kernel uses all lanes on the single pair.
			p, rows, pruned := al.StripedScoreBounded(q, targets[0], sc, ab)
			return []int{p.Score}, []bool{pruned}, []int{rows}, nil
		}
		if gp != nil {
			return al.GroupScores(q, targets, sc, gp.profile(), ab)
		}
		return al.ScoresBounded(q, targets, sc, ab)
	case 16:
		scores := make([]int, len(targets))
		pruned := make([]bool, len(targets))
		rows := make([]int, len(targets))
		ls, ok := al.Scan16Bounded(q, targets, sc, ab)
		for i := range targets {
			switch {
			case ok && ls.Pruned:
				pruned[i], rows[i] = true, ls.Rows
			case !ok || ls.Saturated&(1<<uint(i)) != 0:
				p, r, pr := al.StripedScoreBounded(q, targets[i], sc, ab)
				scores[i], rows[i], pruned[i] = p.Score, r, pr
			default:
				scores[i], rows[i] = ls.Scores[i], len(q)
			}
		}
		return scores, pruned, rows, nil
	default: // scalar reference path
		scores := make([]int, len(targets))
		pruned := make([]bool, len(targets))
		rows := make([]int, len(targets))
		for i, t := range targets {
			scores[i], rows[i], pruned[i] = swar.ScalarScoreBounded(q, t, sc, ab)
		}
		return scores, pruned, rows, nil
	}
}
