package search

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"genomedsm/internal/bio"
)

func TestLayoutBuildAndValidate(t *testing.T) {
	g := bio.NewGenerator(7)
	q := g.Random(200)
	db := NewDB(testDB(t, 8, q, 20, 5))
	lay := BuildLayout(db)
	if lay.Groups() != (db.Size()+bio.PackedLanes8-1)/bio.PackedLanes8 {
		t.Fatalf("layout holds %d groups for %d records", lay.Groups(), db.Size())
	}
	if err := lay.Validate(db); err != nil {
		t.Fatalf("fresh layout must validate: %v", err)
	}
	if err := db.SetLayout(lay); err != nil {
		t.Fatalf("SetLayout: %v", err)
	}
	if db.Layout() != lay {
		t.Fatalf("Layout() did not return the attached layout")
	}
	// A single flipped code byte must fail validation — this is the
	// forged-lane-section guarantee the pack loader leans on.
	lay.words[len(lay.words)/2] ^= 0x01
	if err := lay.Validate(db); err == nil {
		t.Fatalf("corrupt layout word must fail Validate")
	}
	lay.words[len(lay.words)/2] ^= 0x01
	if err := lay.Validate(db); err != nil {
		t.Fatalf("restored layout must validate again: %v", err)
	}
}

func TestLayoutViewRejects(t *testing.T) {
	words := make([]uint64, 10)
	cases := []struct {
		name string
		offs []int64
	}{
		{"empty", nil},
		{"nonzero start", []int64{1, 10}},
		{"decreasing", []int64{0, 8, 4, 10}},
		{"short cover", []int64{0, 4}},
		{"over cover", []int64{0, 12}},
	}
	for _, tc := range cases {
		if _, err := NewLayoutView(tc.offs, words); err == nil {
			t.Errorf("%s: view must be rejected", tc.name)
		}
	}
	if _, err := NewLayoutView([]int64{0, 4, 10}, words); err != nil {
		t.Fatalf("well-formed view rejected: %v", err)
	}
}

func TestLayoutSlice(t *testing.T) {
	g := bio.NewGenerator(9)
	db := NewDB(testDB(t, 10, g.Random(150), 25, 0))
	lay := BuildLayout(db)
	if lay.Groups() < 3 {
		t.Fatalf("need at least 3 groups, got %d", lay.Groups())
	}
	sub := lay.Slice(1, 3)
	if sub.Groups() != 2 {
		t.Fatalf("slice holds %d groups, want 2", sub.Groups())
	}
	for gi := 0; gi < 2; gi++ {
		want := lay.GroupWords(1 + gi)
		got := sub.GroupWords(gi)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("slice group %d words differ", gi)
		}
		if len(want) > 0 && &want[0] != &got[0] {
			t.Fatalf("slice group %d does not alias the parent words", gi)
		}
	}
}

// TestSearchWithLayoutDifferential is the exactness pin of the layout
// fast path: every mode — plain, pruned, prefiltered, dispatched, solo
// and batch — returns bit-identical hits whether the DB carries a
// precomputed layout or not.
func TestSearchWithLayoutDifferential(t *testing.T) {
	g := bio.NewGenerator(21)
	q1 := g.Random(250)
	q2 := g.Random(120)
	recs := testDB(t, 22, q1, 40, 8)
	plain := NewDB(recs)
	withLay := NewDB(recs)
	withLay.EnsureLayout()
	if withLay.Layout() == nil {
		t.Fatal("EnsureLayout did not attach a layout")
	}

	opts := []Options{
		{Lanes: 8, NoEndpoints: true},
		{Lanes: 8, Workers: 3},
		{Lanes: 8, Prune: true, TopK: 5},
		{Lanes: 8, Prune: true, Prefilter: true, TopK: 3},
		{Dispatch: "fixed", NoEndpoints: true},
		{Dispatch: "fixed", Prune: true, TopK: 7},
		{Lanes: 16, NoEndpoints: true},
		{Lanes: 1, NoEndpoints: true},
	}
	queries := []BatchQuery{{Seq: q1}, {Seq: q2}, {Seq: q1[:50]}}
	ctx := context.Background()
	for oi, opt := range opts {
		t.Run(fmt.Sprintf("opt%d", oi), func(t *testing.T) {
			want, err := RunBatch(ctx, queries, plain, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunBatch(ctx, queries, withLay, opt)
			if err != nil {
				t.Fatal(err)
			}
			for qi := range want {
				if want[qi].Err != nil || got[qi].Err != nil {
					t.Fatalf("query %d: unexpected error %v / %v", qi, want[qi].Err, got[qi].Err)
				}
				if !reflect.DeepEqual(want[qi].Result.Hits, got[qi].Result.Hits) {
					t.Errorf("query %d: hits differ with layout attached\nwant %+v\ngot  %+v",
						qi, want[qi].Result.Hits, got[qi].Result.Hits)
				}
				if want[qi].Result.PaddedCells != got[qi].Result.PaddedCells && opt.Dispatch == "" && !opt.Prune {
					// Without pruning or adaptive routing the padded-cell
					// accounting is scheduling-independent and must agree.
					t.Errorf("query %d: padded cells %d vs %d",
						qi, want[qi].Result.PaddedCells, got[qi].Result.PaddedCells)
				}
			}
		})
	}
}
