package search

import (
	"fmt"
	"testing"

	"genomedsm/internal/bio"
)

// FuzzPrunedSearchVsFull drives the full pruning pipeline against the
// unpruned scan on fuzzer-chosen databases, queries, scoring schemes
// and K, asserting the bit-exact hit-set contract (same records,
// scores, coordinates and tie-break order) plus the stats invariants:
// every record is accounted for exactly once and cells-saved never
// exceeds the total cell count.
func FuzzPrunedSearchVsFull(f *testing.F) {
	f.Add([]byte("acgtacgtacgtacgtacgt"), []byte("tacgtacgtttacgacgtacgtacgacgt"), uint8(3), uint8(0), uint8(0))
	f.Add([]byte("aaaaaaaaaaaaaaaa"), []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), uint8(1), uint8(1), uint8(2))
	f.Add([]byte{}, []byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(10), uint8(2), uint8(1))
	f.Add([]byte("nnnnnnnnnn"), []byte("acgtnacgtnacgtn"), uint8(2), uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, rawQ, rawDB []byte, kByte, scheme, mode uint8) {
		q := make(bio.Sequence, 0, len(rawQ))
		for _, b := range rawQ {
			q = append(q, "ACGTN"[int(b)%5])
		}
		if len(q) > 96 {
			q = q[:96]
		}
		// Cut the database material into records of fuzzer-shaped
		// lengths; sprinkle in query copies so high scores and floor
		// ties are reachable.
		var db []bio.Record
		pool := make(bio.Sequence, 0, len(rawDB))
		for _, b := range rawDB {
			pool = append(pool, "ACGTN"[int(b)%5])
		}
		if len(pool) > 512 {
			pool = pool[:512]
		}
		for lo, n := 0, 1; lo < len(pool); lo, n = lo+n, (n*7)%23+1 {
			hi := min(lo+n, len(pool))
			db = append(db, bio.Record{ID: fmt.Sprintf("r%d", len(db)), Seq: pool[lo:hi]})
			if len(db)%5 == 2 && len(q) > 0 {
				db = append(db, bio.Record{ID: fmt.Sprintf("copy%d", len(db)), Seq: q})
			}
		}
		scorings := []bio.Scoring{
			bio.DefaultScoring(),
			{Match: 25, Mismatch: -2, Gap: -3},         // saturates int8 fast
			{Match: 7000, Mismatch: -7000, Gap: -9000}, // int16-only, saturates it too
		}
		sc := scorings[int(scheme)%len(scorings)]
		k := int(kByte)%12 + 1
		opt := Options{Scoring: sc, TopK: k}
		switch mode % 4 {
		case 1:
			opt.Prefilter = true
		case 2:
			opt.Lanes = 16
		case 3:
			opt.MinScore = sc.Match * 3
		}
		want, err := Run(q, db, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Prune = true
		got, err := Run(q, db, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("pruned %d hits, full %d\npruned: %+v\nfull:   %+v", len(got.Hits), len(want.Hits), got.Hits, want.Hits)
		}
		for i := range want.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Fatalf("hit %d: pruned %+v, full %+v", i, got.Hits[i], want.Hits[i])
			}
		}
		st := got.Prune
		if st == nil {
			t.Fatal("pruned run returned no stats")
		}
		if n := st.Skipped + st.Abandoned + st.Scanned; n != got.Searched {
			t.Fatalf("stats cover %d of %d records: %+v", n, got.Searched, st)
		}
		if st.CellsSaved < 0 || st.CellsSaved > got.Cells {
			t.Fatalf("cells saved %d outside [0, %d]", st.CellsSaved, got.Cells)
		}
	})
}
