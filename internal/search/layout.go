package search

import (
	"fmt"

	"genomedsm/internal/bio"
)

// Layout is the precomputed 8-lane group layout of a DB: the canonical
// scan order cut into groups of bio.PackedLanes8 records, each group
// stored as its lane-interleaved code words (bio.InterleaveWords8) —
// exactly the representation the packed profile builder consumes. The
// layout is query- and scoring-independent, so `genomedsm index`
// computes it once at index time and a pack-v2 load maps the words
// straight from the file: the scan's profile build becomes five
// word-wide compares per position over memory it never copied, and the
// shard layer hands each worker a Slice of the same words without
// materializing a sub-database. A Layout is read-only after
// construction and safe for concurrent scans.
type Layout struct {
	offs  []int64  // len Groups()+1: word offset of each group's first word
	words []uint64 // lane-interleaved code words, groups concatenated
	view  bool     // words alias a caller-owned region (an mmap'd pack)
}

// BuildLayout computes the layout of d in memory — the single shared
// layout code path: the index-time encoder, the legacy v1 load and the
// forged-section rebuild all come through here.
func BuildLayout(d *DB) *Layout {
	groups := d.groups(bio.PackedLanes8)
	l := &Layout{offs: make([]int64, 1, len(groups)+1)}
	targets := make([]bio.Sequence, 0, bio.PackedLanes8)
	for _, g := range groups {
		targets = targets[:0]
		for _, idx := range g {
			targets = append(targets, d.recs[idx].Seq)
		}
		l.words = bio.InterleaveWords8(l.words, targets)
		l.offs = append(l.offs, int64(len(l.words)))
	}
	return l
}

// NewLayoutView wraps precomputed layout data — typically slices into
// an mmap'd pack section — without copying. The view is checked
// structurally here (offsets must be a monotone cover of words);
// callers that cannot trust the bytes must also run Validate against
// the DB before scanning with it.
func NewLayoutView(offs []int64, words []uint64) (*Layout, error) {
	if len(offs) == 0 || offs[0] != 0 {
		return nil, fmt.Errorf("search: layout offsets must start at 0")
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return nil, fmt.Errorf("search: layout offsets decrease at group %d", i-1)
		}
	}
	if offs[len(offs)-1] != int64(len(words)) {
		return nil, fmt.Errorf("search: layout offsets end at %d for %d words", offs[len(offs)-1], len(words))
	}
	return &Layout{offs: offs, words: words, view: true}, nil
}

// Groups returns the number of lane groups.
func (l *Layout) Groups() int { return len(l.offs) - 1 }

// GroupWords returns group g's interleaved code words (do not modify).
func (l *Layout) GroupWords(g int) []uint64 { return l.words[l.offs[g]:l.offs[g+1]] }

// Offsets returns the group word-offset table (do not modify).
func (l *Layout) Offsets() []int64 { return l.offs }

// Words returns the concatenated code words (do not modify).
func (l *Layout) Words() []uint64 { return l.words }

// IsView reports whether the words alias a caller-owned region rather
// than heap memory built by BuildLayout.
func (l *Layout) IsView() bool { return l.view }

// Bytes returns the in-memory size of the layout data.
func (l *Layout) Bytes() int64 { return int64(len(l.words))*8 + int64(len(l.offs))*8 }

// Slice returns the sub-layout of groups [from, to) sharing the same
// underlying words — how a shard worker attaches to its span's byte
// range of an mmap'd pack without copying.
func (l *Layout) Slice(from, to int) *Layout {
	base := l.offs[from]
	offs := make([]int64, to-from+1)
	for i := range offs {
		offs[i] = l.offs[from+i] - base
	}
	return &Layout{offs: offs, words: l.words[base:l.offs[to]], view: l.view}
}

// Validate proves the layout semantically consistent with d: every
// group's words must equal the interleave of the group's record bytes.
// This is what upholds the "a forged lane section can only slow, never
// corrupt" rule for pack v2 — a file whose section checksums were
// forged along with the section can pass Open's integrity pass, but it
// cannot pass this compare against the sequence bytes, and the loader
// then rebuilds the layout from the records instead of trusting it.
func (l *Layout) Validate(d *DB) error {
	groups := d.groups(bio.PackedLanes8)
	if l.Groups() != len(groups) {
		return fmt.Errorf("search: layout holds %d groups for %d", l.Groups(), len(groups))
	}
	var scratch []uint64
	targets := make([]bio.Sequence, 0, bio.PackedLanes8)
	for gi, g := range groups {
		targets = targets[:0]
		for _, idx := range g {
			targets = append(targets, d.recs[idx].Seq)
		}
		scratch = bio.InterleaveWords8(scratch[:0], targets)
		got := l.GroupWords(gi)
		if len(got) != len(scratch) {
			return fmt.Errorf("search: layout group %d holds %d words, want %d", gi, len(got), len(scratch))
		}
		for j := range scratch {
			if got[j] != scratch[j] {
				return fmt.Errorf("search: layout group %d word %d disagrees with the record bytes", gi, j)
			}
		}
	}
	return nil
}

// SetLayout attaches a precomputed lane-group layout; scans then build
// packed profiles from its words instead of gathering record bytes.
// Only the cheap structural shape is checked here — callers loading
// untrusted bytes must Validate first. Call before the first scan.
func (d *DB) SetLayout(l *Layout) error {
	want := (len(d.order) + bio.PackedLanes8 - 1) / bio.PackedLanes8
	if l.Groups() != want {
		return fmt.Errorf("search: layout holds %d groups for %d records", l.Groups(), len(d.order))
	}
	d.layout = l
	return nil
}

// Layout returns the attached layout, or nil.
func (d *DB) Layout() *Layout { return d.layout }

// EnsureLayout returns the attached layout, building (and attaching)
// one when missing. Not safe to race with scans; call during
// preparation.
func (d *DB) EnsureLayout() *Layout {
	if d.layout == nil {
		d.layout = BuildLayout(d)
	}
	return d.layout
}
