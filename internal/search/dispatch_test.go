package search

import (
	"fmt"
	"testing"

	"genomedsm/internal/bio"
	"genomedsm/internal/dispatch"
)

// forceRouter builds a router whose test hooks pin every lane group to
// groupRoute and every pairwise realign to pairRoute, regardless of
// workload — the adversarial mis-route the dispatch layer must survive
// bit-exactly.
func forceRouter(groupRoute dispatch.GroupRoute, pairRoute dispatch.PairRoute) *dispatch.Router {
	r := dispatch.New(dispatch.ModeAuto, nil)
	r.ForceGroup = func(qLen int, lens []int) (dispatch.GroupRoute, bool) { return groupRoute, true }
	r.ForcePair = func(m, n int) (dispatch.PairRoute, bool) { return pairRoute, true }
	return r
}

// installForced routes this test's Run calls (testRouter) and its
// realign align.Scan calls (the process-wide active router) down the
// forced routes, restoring both on cleanup. Tests in this package do
// not run in parallel, so mutating the globals is safe.
func installForced(t *testing.T, r *dispatch.Router) {
	t.Helper()
	testRouter = r
	dispatch.SetActive(r)
	t.Cleanup(func() {
		testRouter = nil
		dispatch.SetActive(nil)
	})
}

var allGroupRoutes = []dispatch.GroupRoute{
	dispatch.GroupInter8, dispatch.GroupInter16, dispatch.GroupSingles, dispatch.GroupScalar,
}

var allPairRoutes = []dispatch.PairRoute{
	dispatch.PairStriped8, dispatch.PairStriped16, dispatch.PairScalar,
}

// TestDispatchForcedRoutesBitExact is the deterministic mis-route
// differential: every GroupRoute × PairRoute combination — including
// provably wrong ones like forcing an int8 word-pass on an int16-only
// scoring — must return the scalar reference's hits bit-for-bit
// (records, scores, coordinates, tie-break order).
func TestDispatchForcedRoutesBitExact(t *testing.T) {
	g := bio.NewGenerator(71)
	q := g.Random(240)
	db := testDB(t, 72, q, 24, 8)
	scorings := []bio.Scoring{
		bio.DefaultScoring(),
		{Match: 25, Mismatch: -2, Gap: -3},         // saturates int8
		{Match: 7000, Mismatch: -7000, Gap: -9000}, // int16-only
	}
	for si, sc := range scorings {
		// Reference: the legacy scalar lane path, no router involved.
		want, err := Run(q, db, Options{Scoring: sc, TopK: 8, Lanes: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, gr := range allGroupRoutes {
			for _, pr := range allPairRoutes {
				name := fmt.Sprintf("scoring%d/%v/%v", si, gr, pr)
				installForced(t, forceRouter(gr, pr))
				got, err := Run(q, db, Options{Scoring: sc, TopK: 8})
				testRouter = nil
				dispatch.SetActive(nil)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(got.Hits) != len(want.Hits) {
					t.Fatalf("%s: %d hits, want %d\ngot:  %+v\nwant: %+v",
						name, len(got.Hits), len(want.Hits), got.Hits, want.Hits)
				}
				for i := range want.Hits {
					if got.Hits[i] != want.Hits[i] {
						t.Fatalf("%s: hit %d = %+v, want %+v", name, i, got.Hits[i], want.Hits[i])
					}
				}
				if got.Cells != want.Cells {
					t.Fatalf("%s: cells %d, want %d", name, got.Cells, want.Cells)
				}
				if got.PaddedCells < got.Cells {
					t.Fatalf("%s: padded %d < cells %d", name, got.PaddedCells, got.Cells)
				}
			}
		}
	}
}

// TestDispatchOptionModes checks the user-facing Options.Dispatch knob:
// every mode returns the same hits, and an unknown mode is an error.
func TestDispatchOptionModes(t *testing.T) {
	g := bio.NewGenerator(81)
	q := g.Random(300)
	db := testDB(t, 82, q, 20, 6)
	want, err := Run(q, db, Options{TopK: 6, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"", "auto", "fixed", "scalar"} {
		got, err := Run(q, db, Options{TopK: 6, Dispatch: mode})
		if err != nil {
			t.Fatalf("dispatch=%q: %v", mode, err)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("dispatch=%q: %d hits, want %d", mode, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Fatalf("dispatch=%q hit %d: %+v, want %+v", mode, i, got.Hits[i], want.Hits[i])
			}
		}
	}
	if _, err := Run(q, db, Options{TopK: 6, Dispatch: "warp"}); err == nil {
		t.Fatal("unknown dispatch mode accepted")
	}
	// An explicit lane count bypasses routing; Dispatch is ignored, not
	// an error, even when invalid.
	if _, err := Run(q, db, Options{TopK: 6, Lanes: 16, Dispatch: "warp"}); err != nil {
		t.Fatalf("explicit lanes should ignore dispatch: %v", err)
	}
}

// TestDispatchPrunedForcedRoutes drives the pruning pipeline down each
// forced group route: the exact top-K contract must hold on every rung
// (pruned partial scans flow through the same bound logic regardless of
// the kernel that produced them).
func TestDispatchPrunedForcedRoutes(t *testing.T) {
	g := bio.NewGenerator(91)
	q := g.Random(200)
	db := testDB(t, 92, q, 30, 10)
	sc := bio.Scoring{Match: 25, Mismatch: -2, Gap: -3}
	want, err := Run(q, db, Options{Scoring: sc, TopK: 5, Lanes: 1, NoEndpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range allGroupRoutes {
		installForced(t, forceRouter(gr, dispatch.PairScalar))
		got, err := Run(q, db, Options{Scoring: sc, TopK: 5, Prune: true, NoEndpoints: true})
		testRouter = nil
		dispatch.SetActive(nil)
		if err != nil {
			t.Fatalf("%v: %v", gr, err)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("%v: %d hits, want %d", gr, len(got.Hits), len(want.Hits))
		}
		for i := range want.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Fatalf("%v: hit %d = %+v, want %+v", gr, i, got.Hits[i], want.Hits[i])
			}
		}
		if st := got.Prune; st == nil {
			t.Fatalf("%v: pruned run returned no stats", gr)
		} else if n := st.Skipped + st.Abandoned + st.Scanned; n != got.Searched {
			t.Fatalf("%v: stats cover %d of %d records", gr, n, got.Searched)
		}
	}
}

// FuzzDispatchVsScalar fuzzes the routing layer the same way
// FuzzPrunedSearchVsFull fuzzes pruning: fuzzer-chosen databases,
// queries and scorings run down a fuzzer-forced (usually wrong) route
// and must match the scalar lane path bit-exactly.
func FuzzDispatchVsScalar(f *testing.F) {
	f.Add([]byte("acgtacgtacgtacgtacgt"), []byte("tacgtacgtttacgacgtacgtacgacgt"), uint8(0), uint8(0), uint8(0))
	f.Add([]byte("aaaaaaaaaaaaaaaa"), []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), uint8(1), uint8(1), uint8(5))
	f.Add([]byte{}, []byte{0, 1, 2, 3, 4, 5, 6, 7}, uint8(2), uint8(7), uint8(2))
	f.Add([]byte("nnnnnnnnnn"), []byte("acgtnacgtnacgtn"), uint8(1), uint8(11), uint8(9))
	f.Fuzz(func(t *testing.T, rawQ, rawDB []byte, scheme, routeByte, mode uint8) {
		q := make(bio.Sequence, 0, len(rawQ))
		for _, b := range rawQ {
			q = append(q, "ACGTN"[int(b)%5])
		}
		if len(q) > 96 {
			q = q[:96]
		}
		var db []bio.Record
		pool := make(bio.Sequence, 0, len(rawDB))
		for _, b := range rawDB {
			pool = append(pool, "ACGTN"[int(b)%5])
		}
		if len(pool) > 512 {
			pool = pool[:512]
		}
		for lo, n := 0, 1; lo < len(pool); lo, n = lo+n, (n*7)%23+1 {
			hi := min(lo+n, len(pool))
			db = append(db, bio.Record{ID: fmt.Sprintf("r%d", len(db)), Seq: pool[lo:hi]})
			if len(db)%5 == 2 && len(q) > 0 {
				db = append(db, bio.Record{ID: fmt.Sprintf("copy%d", len(db)), Seq: q})
			}
		}
		scorings := []bio.Scoring{
			bio.DefaultScoring(),
			{Match: 25, Mismatch: -2, Gap: -3},         // saturates int8 fast
			{Match: 7000, Mismatch: -7000, Gap: -9000}, // int16-only, saturates it too
		}
		sc := scorings[int(scheme)%len(scorings)]
		opt := Options{Scoring: sc, TopK: int(mode)%7 + 1}
		switch mode % 3 {
		case 1:
			opt.Prune = true
		case 2:
			opt.MinScore = sc.Match * 2
		}

		ref := opt
		ref.Lanes = 1
		want, err := Run(q, db, ref)
		if err != nil {
			t.Fatal(err)
		}

		gr := allGroupRoutes[int(routeByte)%len(allGroupRoutes)]
		pr := allPairRoutes[int(routeByte/4)%len(allPairRoutes)]
		testRouter = forceRouter(gr, pr)
		dispatch.SetActive(testRouter)
		got, err := Run(q, db, opt)
		testRouter = nil
		dispatch.SetActive(nil)
		if err != nil {
			t.Fatal(err)
		}

		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("route %v/%v: %d hits, scalar %d\nrouted: %+v\nscalar: %+v",
				gr, pr, len(got.Hits), len(want.Hits), got.Hits, want.Hits)
		}
		for i := range want.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Fatalf("route %v/%v hit %d: routed %+v, scalar %+v", gr, pr, i, got.Hits[i], want.Hits[i])
			}
		}
		if got.PaddedCells < got.Cells {
			t.Fatalf("route %v/%v: padded %d < cells %d", gr, pr, got.PaddedCells, got.Cells)
		}
	})
}
