package search

import (
	"genomedsm/internal/bio"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/swar"
)

// This file connects the database scan to internal/dispatch: Run's
// default kernel path (Options.Lanes == 0) asks the router for a route
// per lane group instead of hard-coding the int8 ladder, and reports
// observed int8 saturation back so the router's retry prediction tracks
// the database actually being scanned. Every route resolves through the
// same exact-or-flagged kernels, so the hit set is bit-identical across
// routes — only the padded-cell cost differs.

// testRouter, when non-nil, overrides the router Run builds from
// Options.Dispatch. Tests use it to force adversarial mis-routes
// (dispatch.Router.ForceGroup/ForcePair) and prove the result does not
// depend on routing.
var testRouter *dispatch.Router

// routerFor builds the scan router for one Run: the test override wins,
// then a caller-provided shared router (Options.Router), then one built
// from the Dispatch mode.
func routerFor(opt Options) (*dispatch.Router, error) {
	if testRouter != nil {
		return testRouter, nil
	}
	if opt.Router != nil {
		return opt.Router, nil
	}
	mode, err := dispatch.ParseMode(opt.Dispatch)
	if err != nil {
		return nil, err
	}
	if mode == dispatch.ModeAuto {
		// Auto routes by the per-process calibrated profile (probed once,
		// in memory; the CLI may pre-seed it from its on-disk cache).
		return dispatch.New(mode, dispatch.Host()), nil
	}
	return dispatch.New(mode, nil), nil
}

// scoreGroupRouted scores one lane group down the route the scan state
// picks, under an optional pruning bound (nil ab = no pruning), and
// returns the padded cells the chosen kernels actually computed.
// Results are bit-exact against scoreGroup/scoreGroupBounded for every
// route, including forced mis-routes. A non-nil gp supplies the group's
// shared prebuilt int8 profile for the inter8 route.
func scoreGroupRouted(al *swar.Aligner, q bio.Sequence, targets []bio.Sequence, sc bio.Scoring, st *dispatch.ScanState, ab *swar.Bound, gp *groupProf) (scores []int, pruned []bool, rows []int, padded int64, err error) {
	g := len(targets)
	scores = make([]int, g)
	pruned = make([]bool, g)
	rows = make([]int, g)
	for i := range rows {
		rows[i] = len(q)
	}
	lens := make([]int, g)
	maxLen := 0
	for i, t := range targets {
		lens[i] = len(t)
		if len(t) > maxLen {
			maxLen = len(t)
		}
	}

	// observeExact feeds a completed (unpruned) exact score of target i
	// back into the scan state when the lane was taken AWAY from the
	// int8 rung: the exact score proves whether an int8 scan would have
	// saturated, so the observed rate can recover after a burst of
	// saturating records — without this, a high rate routes everything
	// to int16, int16 passes produce no int8 evidence, and the estimate
	// would stay stuck at its peak for the rest of the scan.
	observeExact := func(i int) {
		if !pruned[i] && dispatch.SatPossible8(len(q), lens[i], sc) {
			flagged := 0
			if scores[i] > bio.PackedCap8 {
				flagged = 1
			}
			st.Observe8(1, flagged)
		}
	}
	// scalarOne is the ladder's last rung: always succeeds, exact.
	// observe reports the score back to the routing state (false when
	// this call is an int8-retry whose saturation was already counted).
	scalarOne := func(i int, observe bool) {
		scores[i], rows[i], pruned[i] = swar.ScalarScoreBounded(q, targets[i], sc, ab)
		padded += int64(lens[i]) * int64(rows[i])
		if observe {
			observeExact(i)
		}
	}
	// inter16 scans the given target indices in int16 subgroups of 4,
	// dropping still-saturated lanes to the scalar rung.
	inter16 := func(idxs []int, observe bool) {
		group := make([]bio.Sequence, 0, bio.PackedLanes16)
		for lo := 0; lo < len(idxs); lo += bio.PackedLanes16 {
			hi := min(lo+bio.PackedLanes16, len(idxs))
			group = group[:0]
			subMax := 0
			for _, ix := range idxs[lo:hi] {
				group = append(group, targets[ix])
				subMax = max(subMax, lens[ix])
			}
			ls, ok := al.Scan16Bounded(q, group, sc, ab)
			if !ok {
				for _, ix := range idxs[lo:hi] {
					scalarOne(ix, observe)
				}
				continue
			}
			padded += int64(bio.PackedLanes16) * int64(subMax) * int64(ls.Rows)
			if ls.Pruned {
				for _, ix := range idxs[lo:hi] {
					pruned[ix], rows[ix] = true, ls.Rows
				}
				continue
			}
			for l, ix := range idxs[lo:hi] {
				if ls.Saturated&(1<<uint(l)) != 0 {
					scalarOne(ix, observe)
				} else {
					scores[ix], rows[ix] = ls.Scores[l], len(q)
					if observe {
						observeExact(ix)
					}
				}
			}
		}
	}

	switch st.Group(len(q), lens, sc) {
	case dispatch.GroupInter8:
		var ls swar.LaneScores
		var ok bool
		if gp != nil {
			// gp.profile() is nil exactly when NewPackedProfile8 would be,
			// and Scan8Prof refuses under the same gap condition as
			// Scan8Bounded, so the fallback below triggers identically.
			ls, ok = al.Scan8Prof(q, gp.profile(), sc, len(targets), ab)
		} else {
			ls, ok = al.Scan8Bounded(q, targets, sc, ab)
		}
		if !ok {
			// Scoring magnitudes do not fit int8 lanes at all.
			idxs := make([]int, g)
			for i := range idxs {
				idxs[i] = i
			}
			inter16(idxs, false)
			return scores, pruned, rows, padded, nil
		}
		padded += int64(bio.PackedLanes8) * int64(maxLen) * int64(ls.Rows)
		if ls.Pruned {
			for i := range targets {
				pruned[i], rows[i] = true, ls.Rows
			}
			return scores, pruned, rows, padded, nil
		}
		// Feed the observed saturation of saturation-capable lanes back
		// into the scan state (a completed scan is full evidence; pruned
		// scans above are not — a partial scan proves nothing about
		// saturation over the full matrix).
		possible, flagged := 0, 0
		var narrow []int
		for l := 0; l < ls.Lanes; l++ {
			sat := ls.Saturated&(1<<uint(l)) != 0
			if dispatch.SatPossible8(len(q), lens[l], sc) {
				possible++
				if sat {
					flagged++
				}
			}
			if sat {
				narrow = append(narrow, l)
			} else {
				scores[l] = ls.Scores[l]
			}
		}
		st.Observe8(possible, flagged)
		if narrow != nil {
			// Saturation of these lanes was counted above; the retry
			// must not observe them a second time.
			inter16(narrow, false)
		}
	case dispatch.GroupInter16:
		idxs := make([]int, g)
		for i := range idxs {
			idxs[i] = i
		}
		inter16(idxs, true)
	case dispatch.GroupSingles:
		for i, t := range targets {
			p, r, pr := al.StripedScoreBounded(q, t, sc, ab)
			scores[i], rows[i], pruned[i] = p.Score, r, pr
			// The striped layout pads the target to full words of 8 lanes.
			padded += int64((lens[i]+bio.PackedLanes8-1)/bio.PackedLanes8*bio.PackedLanes8) * int64(r)
			observeExact(i)
		}
	default: // dispatch.GroupScalar
		for i := range targets {
			scalarOne(i, true)
		}
	}
	return scores, pruned, rows, padded, nil
}
