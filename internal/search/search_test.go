package search

import (
	"fmt"
	"testing"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
)

// testDB builds a synthetic database: noise records plus mutated copies
// of query fragments, so real hits exist at known indices.
func testDB(t *testing.T, seed int64, q bio.Sequence, noise, homologs int) []bio.Record {
	t.Helper()
	g := bio.NewGenerator(seed)
	var db []bio.Record
	for i := 0; i < noise; i++ {
		db = append(db, bio.Record{ID: fmt.Sprintf("noise%d", i), Seq: g.Random(100 + i*13%400)})
	}
	for i := 0; i < homologs; i++ {
		frag := q[i*7%(len(q)/2) : len(q)/2+i*11%(len(q)/2)]
		db = append(db, bio.Record{ID: fmt.Sprintf("hom%d", i), Seq: g.MutatedCopy(frag, bio.DefaultMutationModel())})
	}
	return db
}

// bruteTopK is the reference: score every record with align.Scan, sort
// by (score desc, index asc), trim to k.
func bruteTopK(t *testing.T, q bio.Sequence, db []bio.Record, sc bio.Scoring, k, minScore int) []Hit {
	t.Helper()
	var hits []Hit
	for i, rec := range db {
		r, err := align.Scan(q, rec.Seq, sc, align.ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.BestScore > 0 && r.BestScore >= minScore {
			hits = append(hits, Hit{Index: i, ID: rec.ID, Score: r.BestScore})
		}
	}
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0; j-- {
			a, b := hits[j-1], hits[j]
			if b.Score > a.Score || (b.Score == a.Score && b.Index < a.Index) {
				hits[j-1], hits[j] = hits[j], hits[j-1]
			}
		}
	}
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

func TestRunMatchesBruteForce(t *testing.T) {
	g := bio.NewGenerator(11)
	q := g.Random(300)
	db := testDB(t, 12, q, 30, 10)
	sc := bio.DefaultScoring()
	want := bruteTopK(t, q, db, sc, 10, 0)
	for _, workers := range []int{1, 3, 8} {
		for _, lanes := range []int{0, 16, 1} {
			res, err := Run(q, db, Options{Workers: workers, Lanes: lanes, NoEndpoints: true})
			if err != nil {
				t.Fatalf("workers=%d lanes=%d: %v", workers, lanes, err)
			}
			if res.Searched != len(db) {
				t.Errorf("searched %d, want %d", res.Searched, len(db))
			}
			if len(res.Hits) != len(want) {
				t.Fatalf("workers=%d lanes=%d: %d hits, want %d", workers, lanes, len(res.Hits), len(want))
			}
			for i := range want {
				if res.Hits[i] != want[i] {
					t.Errorf("workers=%d lanes=%d hit %d: %+v, want %+v", workers, lanes, i, res.Hits[i], want[i])
				}
			}
		}
	}
}

func TestRunEndpoints(t *testing.T) {
	g := bio.NewGenerator(21)
	q := g.Random(300)
	db := testDB(t, 22, q, 10, 5)
	sc := bio.DefaultScoring()
	res, err := Run(q, db, Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range res.Hits {
		if h.QBegin < 1 || h.QEnd > len(q) || h.QBegin > h.QEnd {
			t.Errorf("%s: query span %d..%d out of range", h.ID, h.QBegin, h.QEnd)
		}
		tgt := db[h.Index].Seq
		if h.TBegin < 1 || h.TEnd > len(tgt) || h.TBegin > h.TEnd {
			t.Errorf("%s: target span %d..%d out of range", h.ID, h.TBegin, h.TEnd)
		}
		// The span must reproduce the reported score exactly.
		sub, err := align.Sim(q.Sub(h.QBegin, h.QEnd), tgt.Sub(h.TBegin, h.TEnd), sc)
		if err != nil {
			t.Fatal(err)
		}
		if sub != h.Score {
			t.Errorf("%s: span rescores %d, want %d", h.ID, sub, h.Score)
		}
	}
}

func TestRunOptions(t *testing.T) {
	g := bio.NewGenerator(31)
	q := g.Random(200)
	db := testDB(t, 32, q, 20, 4)

	res, err := Run(q, db, Options{TopK: 3, NoEndpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 3 {
		t.Errorf("TopK=3 returned %d hits", len(res.Hits))
	}

	// MinScore filters everything below the strongest hit.
	top := res.Hits[0].Score
	res, err = Run(q, db, Options{MinScore: top, NoEndpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hits {
		if h.Score < top {
			t.Errorf("MinScore leak: %+v", h)
		}
	}

	if _, err := Run(q, db, Options{Lanes: 7}); err == nil {
		t.Error("invalid lane width accepted")
	}
	if _, err := Run(q, db, Options{Scoring: bio.Scoring{Match: -1, Mismatch: 1, Gap: 1}}); err == nil {
		t.Error("invalid scoring accepted")
	}
}

func TestRunEmptyDatabase(t *testing.T) {
	g := bio.NewGenerator(41)
	res, err := Run(g.Random(100), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 || res.Searched != 0 || res.Cells != 0 {
		t.Errorf("empty database: %+v", res)
	}
}

// TestRunSaturatingRecords mixes records long and similar enough to
// overflow int8 (and with a crafted scoring, int16) into the database,
// so the per-lane fallback chain runs inside the worker pool.
func TestRunSaturatingRecords(t *testing.T) {
	g := bio.NewGenerator(51)
	q := g.Random(700)
	db := testDB(t, 52, q, 15, 3)
	db = append(db,
		bio.Record{ID: "identity", Seq: q.Clone()}, // score 700 > 255
		bio.Record{ID: "half", Seq: q[:400].Clone()},
	)
	want := bruteTopK(t, q, db, bio.DefaultScoring(), 10, 0)
	res, err := Run(q, db, Options{NoEndpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if res.Hits[i] != want[i] {
			t.Errorf("hit %d: %+v, want %+v", i, res.Hits[i], want[i])
		}
	}
	if res.Hits[0].ID != "identity" || res.Hits[0].Score != 700 {
		t.Errorf("identity record not on top: %+v", res.Hits[0])
	}
}

func TestLaneGroups(t *testing.T) {
	var db []bio.Record
	g := bio.NewGenerator(61)
	for _, n := range []int{5, 900, 17, 900, 33, 1, 0, 250, 250, 249} {
		db = append(db, bio.Record{Seq: g.Random(n)})
	}
	groups := laneGroups(db, 4)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	seen := map[int]bool{}
	prevMin := 1 << 30
	for _, grp := range groups {
		if len(grp) > 4 {
			t.Fatalf("group of %d lanes", len(grp))
		}
		for _, idx := range grp {
			if seen[idx] {
				t.Fatalf("record %d in two groups", idx)
			}
			seen[idx] = true
			n := len(db[idx].Seq)
			if n > prevMin {
				t.Fatalf("record %d (len %d) after shorter records (min %d): not length-sorted", idx, n, prevMin)
			}
			if n < prevMin {
				prevMin = n
			}
		}
	}
	if len(seen) != len(db) {
		t.Fatalf("grouped %d of %d records", len(seen), len(db))
	}
	// Sorted batching packs equal lengths together: the two 900s and the
	// 250/250/249 run must land in the same groups, keeping padding low.
	res, err := Run(g.Random(50), db, Options{NoEndpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PaddedCells < res.Cells {
		t.Errorf("padded cells %d < true cells %d", res.PaddedCells, res.Cells)
	}
	// With 8 lanes over this length mix the padding overhead stays well
	// under the all-in-one-group worst case (everything padded to 900).
	worst := int64(len(db)) * 900 * 50
	if res.PaddedCells >= worst {
		t.Errorf("padding waste %d not better than unsorted worst case %d", res.PaddedCells, worst)
	}
}

func TestTopKHeap(t *testing.T) {
	h := &topK{k: 3}
	for i, s := range []int{5, 1, 9, 3, 9, 2, 7} {
		h.push(Hit{Index: i, Score: s})
	}
	if len(h.items) != 3 {
		t.Fatalf("heap kept %d items", len(h.items))
	}
	got := map[int]bool{}
	for _, it := range h.items {
		got[it.Index] = true
	}
	// Top 3 by (score, lower index): scores 9(idx 2), 9(idx 4), 7(idx 6).
	for _, idx := range []int{2, 4, 6} {
		if !got[idx] {
			t.Errorf("top-3 missing index %d: %+v", idx, h.items)
		}
	}
}
