package search

import (
	"fmt"
	"sort"

	"genomedsm/internal/bio"
	"genomedsm/internal/blast"
)

// DB is a prepared database: the records plus everything a scan derives
// from them that does not depend on the query — the canonical
// descending-length order behind the lane-group batching, the total
// base count, and (optionally) a database-side blast word index for the
// pruning prefilter. Build one DB per database and reuse it across
// scans: a resident server amortizes the preparation over millions of
// queries, and internal/dbpack persists exactly this state so a cold
// process loads it without re-parsing FASTA or re-sorting. A DB is
// read-only after construction and safe for concurrent scans.
type DB struct {
	recs   []bio.Record
	order  []int // canonical scan order: length desc, index asc on ties
	total  int64 // Σ record lengths
	ix     *blast.DBWordIndex
	layout *Layout // optional precomputed lane-group layout (layout.go)
}

// sortedOrder computes the canonical scan order of recs: decreasing
// sequence length, record index ascending on ties. The order is a
// strict total order, so it is unique — every scan of the same records
// forms identical lane groups, which is what keeps tie-breaks and
// padded-cell accounting reproducible across Run, RunBatch and a
// pack-loaded database.
func sortedOrder(recs []bio.Record) []int {
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := len(recs[order[a]].Seq), len(recs[order[b]].Seq)
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	return order
}

// NewDB prepares recs for scanning.
func NewDB(recs []bio.Record) *DB {
	d := &DB{recs: recs, order: sortedOrder(recs)}
	for _, r := range recs {
		d.total += int64(len(r.Seq))
	}
	return d
}

// PreparedDB builds a DB from records plus a precomputed scan order
// (a pack file stores the order so loading skips the sort). The order
// is validated against the canonical total order — length descending,
// index ascending on ties — because a permutation that merely looks
// sorted but breaks the tie rule would regroup records and silently
// change padded-cell accounting; the canonical order is unique, so
// checking adjacency pairs proves equality with what NewDB computes.
func PreparedDB(recs []bio.Record, order []int) (*DB, error) {
	if len(order) != len(recs) {
		return nil, fmt.Errorf("search: order holds %d entries for %d records", len(order), len(recs))
	}
	seen := make([]bool, len(recs))
	for rank, idx := range order {
		if idx < 0 || idx >= len(recs) {
			return nil, fmt.Errorf("search: order rank %d names record %d of %d", rank, idx, len(recs))
		}
		if seen[idx] {
			return nil, fmt.Errorf("search: order names record %d twice", idx)
		}
		seen[idx] = true
		if rank == 0 {
			continue
		}
		prev := order[rank-1]
		lp, li := len(recs[prev].Seq), len(recs[idx].Seq)
		if lp < li || (lp == li && prev > idx) {
			return nil, fmt.Errorf("search: order is not the canonical length-sorted order at rank %d", rank)
		}
	}
	d := &DB{recs: recs, order: order}
	for _, r := range recs {
		d.total += int64(len(r.Seq))
	}
	return d, nil
}

// SetWordIndex attaches a database-side blast word index; scans with
// Options.Prefilter whose word size matches seed the pruning floor from
// it instead of re-indexing per query. Call before the first scan.
func (d *DB) SetWordIndex(ix *blast.DBWordIndex) { d.ix = ix }

// WordIndex returns the attached word index, or nil.
func (d *DB) WordIndex() *blast.DBWordIndex { return d.ix }

// Records returns the underlying records (callers must not mutate).
func (d *DB) Records() []bio.Record { return d.recs }

// Order returns the canonical scan order (callers must not mutate).
func (d *DB) Order() []int { return d.order }

// Size returns the number of records.
func (d *DB) Size() int { return len(d.recs) }

// TotalBases returns the summed record lengths.
func (d *DB) TotalBases() int64 { return d.total }

// groups cuts the canonical order into consecutive lane groups.
func (d *DB) groups(lanes int) [][]int {
	out := make([][]int, 0, (len(d.order)+lanes-1)/lanes)
	for lo := 0; lo < len(d.order); lo += lanes {
		out = append(out, d.order[lo:min(lo+lanes, len(d.order))])
	}
	return out
}
