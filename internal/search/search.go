// Package search implements a multicore Smith–Waterman database scan:
// one query against every record of a FASTA database, scored by the
// inter-sequence SWAR kernels of internal/swar and fanned out over a
// worker pool of host cores. It is the repo's first use of real
// parallel hardware for throughput — the cluster strategies elsewhere
// model a 2005 testbed in virtual time, while this layer answers the
// ROADMAP's "as fast as the hardware allows" for the database-search
// workload that DSA and SWAPHI target.
//
// The pipeline: records are ordered by decreasing length and cut into
// lane groups of 8 consecutive records, so the lanes of a group have
// near-equal length and the padded cells wasted on short lanes are
// minimized. Groups feed a shared work queue; each worker owns one
// swar.Aligner (reused row buffers) and a bounded top-K heap. Per-worker
// heaps merge into the global top K, and only those final hits pay for
// scalar re-alignment (align.Scan end coordinates + align.ReverseRetrieve
// start coordinates).
package search

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/swar"
)

// Options configures a database scan. The zero value scans with the
// paper's default scoring, top 10 hits and one worker per host core.
type Options struct {
	// Scoring is the column scoring scheme; zero means bio.DefaultScoring.
	Scoring bio.Scoring
	// TopK is the number of hits to keep (default 10).
	TopK int
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// MinScore drops hits scoring below it; scores ≤ 0 are always dropped.
	MinScore int
	// Lanes selects the kernel: 0 routes each lane group adaptively (see
	// Dispatch), 8 forces the int8 SWAR chain, 16 starts at the int16
	// kernel, 1 forces the scalar path (reference and benchmarking).
	Lanes int
	// Dispatch selects the routing mode for the default kernel path
	// (Lanes == 0): "" or "auto" picks the fastest exact route per lane
	// group by the calibrated cost model of internal/dispatch, "fixed"
	// reproduces the pre-dispatch fixed thresholds, "scalar" forces the
	// exact scalar kernels. All modes return bit-identical hits; only
	// speed varies. Ignored when Lanes selects an explicit kernel.
	Dispatch string
	// NoEndpoints skips the scalar re-alignment of the final hits, for
	// callers that only need scores.
	NoEndpoints bool
	// Prune enables the exact ALAE-style pruning pipeline (prune.go):
	// an O(1) record-level upper bound skips hopeless records and a
	// shared top-K floor lets the kernels abandon scans that provably
	// cannot reach the result. The hit set — scores, coordinates and
	// tie-breaks — is bit-identical with or without it.
	Prune bool
	// Prefilter additionally seeds the floor with blast seed-and-extend
	// lower bounds before any DP runs (stage 3; only with Prune).
	Prefilter bool
	// PrefilterWord is the prefilter seed word size (default 11).
	PrefilterWord int
	// AbandonEvery is the mid-scan abandon check cadence in query rows
	// (default swar.DefaultAbandonEvery).
	AbandonEvery int
}

// Hit is one database record in the top K.
type Hit struct {
	Index int    // record index in the database
	ID    string // FASTA record ID
	Score int    // exact best local-alignment score
	// Alignment span of the best hit, 1-based inclusive, filled by the
	// scalar re-alignment pass (zero when NoEndpoints is set).
	QBegin, QEnd int // in the query
	TBegin, TEnd int // in the target record
}

// Result is the outcome of a database scan.
type Result struct {
	Hits     []Hit
	Searched int   // records scored
	Cells    int64 // true DP cells: Σ |q|·|target|
	// PaddedCells counts the cells the packed kernels actually computed
	// (lane width × padded group length × rows scanned): the
	// padding-waste metric that the length-sorted batching keeps close
	// to Cells. Under pruning it shrinks with the abandoned rows and
	// skipped records, and — like the PruneStats — depends on worker
	// scheduling.
	PaddedCells int64
	// Prune holds the pruning statistics; nil when Options.Prune is off.
	Prune *PruneStats
}

// laneGroups orders record indices by decreasing sequence length and
// cuts them into consecutive groups of lanes, so each group packs
// near-equal lengths and short lanes waste little padding.
func laneGroups(db []bio.Record, lanes int) [][]int {
	order := make([]int, len(db))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := len(db[order[a]].Seq), len(db[order[b]].Seq)
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	groups := make([][]int, 0, (len(order)+lanes-1)/lanes)
	for lo := 0; lo < len(order); lo += lanes {
		groups = append(groups, order[lo:min(lo+lanes, len(order))])
	}
	return groups
}

// topK is a bounded min-heap of hits ordered by (score, then lower
// index wins ties), so the heap root is the weakest kept hit. A plain
// slice heap keeps the merge deterministic regardless of worker
// scheduling: every record that belongs to the global top K under the
// same total order survives its worker's local top K.
type topK struct {
	k     int
	items []Hit
}

// less orders a strictly below b: worse score first, higher index first
// on ties.
func (h *topK) less(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Index > b.Index
}

func (h *topK) push(it Hit) {
	if h.k <= 0 {
		return
	}
	if len(h.items) == h.k {
		if h.less(it, h.items[0]) || it == h.items[0] {
			return
		}
		h.items[0] = it
		h.siftDown(0)
		return
	}
	h.items = append(h.items, it)
	// Sift up.
	for i := len(h.items) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *topK) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// Run scans the database for the best local alignments of q and returns
// the top-K hits sorted by decreasing score (record index breaks ties).
func Run(q bio.Sequence, db []bio.Record, opt Options) (*Result, error) {
	sc := opt.Scoring
	if sc == (bio.Scoring{}) {
		sc = bio.DefaultScoring()
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	k := opt.TopK
	if k <= 0 {
		k = 10
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	lanes := bio.PackedLanes8
	switch opt.Lanes {
	case 0, 8:
		// adaptive routing (0) and the forced int8 chain (8) both pack
		// groups of 8 records
	case 16:
		lanes = bio.PackedLanes16
	case 1:
		lanes = 1
	default:
		return nil, fmt.Errorf("search: lanes must be 8, 16 or 1, got %d", opt.Lanes)
	}
	var scanState *dispatch.ScanState
	if opt.Lanes == 0 {
		router, err := routerFor(opt)
		if err != nil {
			return nil, err
		}
		scanState = router.NewScan()
	}

	var qb *bio.QueryBound
	var ft *floorTracker
	if opt.Prune {
		qb = bio.NewQueryBound(q, sc)
		ft = newFloorTracker(k)
		if opt.Prefilter {
			word := opt.PrefilterWord
			if word == 0 {
				word = 11
			}
			seedFloor(ft, q, db, sc, word, opt.MinScore)
		}
	}

	groups := laneGroups(db, lanes)
	if workers > len(groups) && len(groups) > 0 {
		workers = len(groups)
	}
	work := make(chan []int)
	heaps := make([]*topK, workers)
	errs := make([]error, workers)
	padded := make([]int64, workers)
	pstats := make([]PruneStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var al swar.Aligner
			heap := &topK{k: k}
			heaps[w] = heap
			targets := make([]bio.Sequence, 0, lanes)
			kept := make([]int, 0, lanes)
			for group := range work {
				targets = targets[:0]
				kept = kept[:0]
				var ab *swar.Bound
				if opt.Prune {
					// Stage 1: the O(1) record bound against the floor read
					// once per group (a stale, lower floor only makes the
					// check more conservative — never wrong).
					th := ft.threshold(opt.MinScore)
					for _, idx := range group {
						t := db[idx].Seq
						if qb.RecordBound(len(t)) < th {
							pstats[w].Skipped++
							pstats[w].CellsSaved += int64(len(q)) * int64(len(t))
							continue
						}
						kept = append(kept, idx)
					}
					ab = &swar.Bound{Below: th, Query: qb, Every: opt.AbandonEvery}
				} else {
					kept = append(kept, group...)
				}
				if len(kept) == 0 {
					continue
				}
				maxLen := 0
				for _, idx := range kept {
					t := db[idx].Seq
					targets = append(targets, t)
					if len(t) > maxLen {
						maxLen = len(t)
					}
				}
				var scores []int
				var prunedMask []bool
				var rowsScanned []int
				var err error
				if scanState != nil {
					// Adaptive path: the router picks the route and the
					// scorer reports the padded cells that route computed.
					var pad int64
					scores, prunedMask, rowsScanned, pad, err = scoreGroupRouted(&al, q, targets, sc, scanState, ab)
					padded[w] += pad
				} else if opt.Prune {
					scores, prunedMask, rowsScanned, err = scoreGroupBounded(&al, q, targets, sc, opt.Lanes, ab)
				} else {
					scores, err = scoreGroup(&al, q, targets, sc, opt.Lanes)
				}
				if err != nil {
					errs[w] = err
					return
				}
				if scanState == nil {
					rowsUsed := len(q)
					if rowsScanned != nil {
						rowsUsed = 0
						for _, r := range rowsScanned {
							if r > rowsUsed {
								rowsUsed = r
							}
						}
					}
					padded[w] += int64(lanes) * int64(maxLen) * int64(rowsUsed)
				}
				for i, idx := range kept {
					if prunedMask != nil && prunedMask[i] {
						pstats[w].Abandoned++
						pstats[w].CellsSaved += int64(len(q)-rowsScanned[i]) * int64(len(targets[i]))
						continue
					}
					if opt.Prune {
						pstats[w].Scanned++
					}
					if s := scores[i]; s > 0 && s >= opt.MinScore {
						heap.push(Hit{Index: idx, ID: db[idx].ID, Score: s})
						if ft != nil {
							ft.push(s, idx)
						}
					}
				}
			}
		}(w)
	}
	for _, g := range groups {
		work <- g
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Searched: len(db)}
	for _, rec := range db {
		res.Cells += int64(len(q)) * int64(len(rec.Seq))
	}
	merged := &topK{k: k}
	for _, h := range heaps {
		if h == nil {
			continue
		}
		for _, it := range h.items {
			merged.push(it)
		}
	}
	for _, p := range padded {
		res.PaddedCells += p
	}
	if opt.Prune {
		st := &PruneStats{FloorFinal: ft.get()}
		for _, ps := range pstats {
			st.Skipped += ps.Skipped
			st.Abandoned += ps.Abandoned
			st.Scanned += ps.Scanned
			st.CellsSaved += ps.CellsSaved
		}
		res.Prune = st
	}
	res.Hits = merged.items
	sort.Slice(res.Hits, func(a, b int) bool {
		x, y := res.Hits[a], res.Hits[b]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		return x.Index < y.Index
	})
	if !opt.NoEndpoints {
		if err := realign(q, db, sc, res.Hits); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// scoreGroup dispatches one lane group to the kernel selected by the
// Lanes option. The default (0/8) uses the full int8→int16→scalar chain
// of swar.Scores; 16 starts at int16 with scalar fallback; 1 is the
// scalar reference path (align.Scan with its striped fast path disabled,
// so differential tests compare two independent kernels).
func scoreGroup(al *swar.Aligner, q bio.Sequence, targets []bio.Sequence, sc bio.Scoring, lanesOpt int) ([]int, error) {
	switch lanesOpt {
	case 0, 8:
		if len(targets) == 1 {
			// A singleton group (database tail, tiny database) would fill
			// one of eight lanes; the striped intra-sequence kernel inside
			// align.Scan uses all lanes on the single pair instead.
			r, err := align.Scan(q, targets[0], sc, align.ScanOptions{})
			if err != nil {
				return nil, err
			}
			return []int{r.BestScore}, nil
		}
		return al.Scores(q, targets, sc)
	case 16:
		out := make([]int, len(targets))
		ls, ok := al.Scan16(q, targets, sc)
		for i := range targets {
			if !ok || ls.Saturated&(1<<uint(i)) != 0 {
				r, err := align.Scan(q, targets[i], sc, align.ScanOptions{})
				if err != nil {
					return nil, err
				}
				out[i] = r.BestScore
			} else {
				out[i] = ls.Scores[i]
			}
		}
		return out, nil
	default: // scalar
		out := make([]int, len(targets))
		for i, t := range targets {
			r, err := align.Scan(q, t, sc, align.ScanOptions{ForceScalar: true})
			if err != nil {
				return nil, err
			}
			out[i] = r.BestScore
		}
		return out, nil
	}
}

// realign fills the alignment spans of the final hits with the exact
// kernels: align.Scan (striped when the scheme fits, scalar otherwise)
// finds the end cell, ReverseRetrieve walks back to the start. Only the
// K winners pay this cost, and the exact re-scan doubles as a safety
// net: a score disagreeing with the packed inter-sequence kernel is a
// kernel bug and is reported, never papered over. One Retriever serves
// the whole loop, so the sparse traceback arenas are allocated once.
func realign(q bio.Sequence, db []bio.Record, sc bio.Scoring, hits []Hit) error {
	var rt align.Retriever
	for i := range hits {
		h := &hits[i]
		t := db[h.Index].Seq
		// The hit's score is already known: passing it as ExpectScore
		// lets the scan skip packed rungs it proves will saturate.
		r, err := align.Scan(q, t, sc, align.ScanOptions{ExpectScore: h.Score})
		if err != nil {
			return err
		}
		if r.BestScore != h.Score {
			return fmt.Errorf("search: packed score %d for %q disagrees with scalar %d",
				h.Score, h.ID, r.BestScore)
		}
		al, _, err := rt.ReverseRetrieve(q, t, sc, r.BestI, r.BestJ, r.BestScore)
		if err != nil {
			return err
		}
		h.QBegin, h.QEnd = al.SBegin, al.SEnd
		h.TBegin, h.TEnd = al.TBegin, al.TEnd
	}
	return nil
}
