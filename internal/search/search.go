// Package search implements a multicore Smith–Waterman database scan:
// one query against every record of a FASTA database, scored by the
// inter-sequence SWAR kernels of internal/swar and fanned out over a
// worker pool of host cores. It is the repo's first use of real
// parallel hardware for throughput — the cluster strategies elsewhere
// model a 2005 testbed in virtual time, while this layer answers the
// ROADMAP's "as fast as the hardware allows" for the database-search
// workload that DSA and SWAPHI target.
//
// The pipeline: records are ordered by decreasing length and cut into
// lane groups of 8 consecutive records, so the lanes of a group have
// near-equal length and the padded cells wasted on short lanes are
// minimized. Groups feed a shared work queue; each worker owns one
// swar.Aligner (reused row buffers) and a bounded top-K heap. Per-worker
// heaps merge into the global top K, and only those final hits pay for
// scalar re-alignment (align.Scan end coordinates + align.ReverseRetrieve
// start coordinates).
package search

import (
	"context"
	"fmt"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/swar"
)

// Options configures a database scan. The zero value scans with the
// paper's default scoring, top 10 hits and one worker per host core.
type Options struct {
	// Scoring is the column scoring scheme; zero means bio.DefaultScoring.
	Scoring bio.Scoring
	// TopK is the number of hits to keep (default 10).
	TopK int
	// Workers is the worker-pool size (default runtime.NumCPU()).
	Workers int
	// MinScore drops hits scoring below it; scores ≤ 0 are always dropped.
	MinScore int
	// Lanes selects the kernel: 0 routes each lane group adaptively (see
	// Dispatch), 8 forces the int8 SWAR chain, 16 starts at the int16
	// kernel, 1 forces the scalar path (reference and benchmarking).
	Lanes int
	// Dispatch selects the routing mode for the default kernel path
	// (Lanes == 0): "" or "auto" picks the fastest exact route per lane
	// group by the calibrated cost model of internal/dispatch, "fixed"
	// reproduces the pre-dispatch fixed thresholds, "scalar" forces the
	// exact scalar kernels. All modes return bit-identical hits; only
	// speed varies. Ignored when Lanes selects an explicit kernel.
	Dispatch string
	// NoEndpoints skips the scalar re-alignment of the final hits, for
	// callers that only need scores.
	NoEndpoints bool
	// Prune enables the exact ALAE-style pruning pipeline (prune.go):
	// an O(1) record-level upper bound skips hopeless records and a
	// shared top-K floor lets the kernels abandon scans that provably
	// cannot reach the result. The hit set — scores, coordinates and
	// tie-breaks — is bit-identical with or without it.
	Prune bool
	// Prefilter additionally seeds the floor with blast seed-and-extend
	// lower bounds before any DP runs (stage 3; only with Prune).
	Prefilter bool
	// PrefilterWord is the prefilter seed word size (default 11).
	PrefilterWord int
	// AbandonEvery is the mid-scan abandon check cadence in query rows
	// (default swar.DefaultAbandonEvery).
	AbandonEvery int
	// Router, when non-nil, routes this scan's lane groups (Lanes == 0)
	// instead of a router built from Dispatch: a resident server shares
	// one calibrated router — and its route statistics — across
	// requests. Routing never changes results, only speed.
	Router *dispatch.Router
}

// Hit is one database record in the top K.
type Hit struct {
	Index int    // record index in the database
	ID    string // FASTA record ID
	Score int    // exact best local-alignment score
	// Alignment span of the best hit, 1-based inclusive, filled by the
	// scalar re-alignment pass (zero when NoEndpoints is set).
	QBegin, QEnd int // in the query
	TBegin, TEnd int // in the target record
}

// Result is the outcome of a database scan.
type Result struct {
	Hits     []Hit
	Searched int   // records scored
	Cells    int64 // true DP cells: Σ |q|·|target|
	// PaddedCells counts the cells the packed kernels actually computed
	// (lane width × padded group length × rows scanned): the
	// padding-waste metric that the length-sorted batching keeps close
	// to Cells. Under pruning it shrinks with the abandoned rows and
	// skipped records, and — like the PruneStats — depends on worker
	// scheduling.
	PaddedCells int64
	// Prune holds the pruning statistics; nil when Options.Prune is off.
	Prune *PruneStats
}

// laneGroups orders record indices by decreasing sequence length and
// cuts them into consecutive groups of lanes, so each group packs
// near-equal lengths and short lanes waste little padding.
func laneGroups(db []bio.Record, lanes int) [][]int {
	order := sortedOrder(db)
	groups := make([][]int, 0, (len(order)+lanes-1)/lanes)
	for lo := 0; lo < len(order); lo += lanes {
		groups = append(groups, order[lo:min(lo+lanes, len(order))])
	}
	return groups
}

// topK is a bounded min-heap of hits ordered by (score, then lower
// index wins ties), so the heap root is the weakest kept hit. A plain
// slice heap keeps the merge deterministic regardless of worker
// scheduling: every record that belongs to the global top K under the
// same total order survives its worker's local top K.
type topK struct {
	k     int
	items []Hit
}

// less orders a strictly below b: worse score first, higher index first
// on ties.
func (h *topK) less(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Index > b.Index
}

func (h *topK) push(it Hit) {
	if h.k <= 0 {
		return
	}
	if len(h.items) == h.k {
		if h.less(it, h.items[0]) || it == h.items[0] {
			return
		}
		h.items[0] = it
		h.siftDown(0)
		return
	}
	h.items = append(h.items, it)
	// Sift up.
	for i := len(h.items) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *topK) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && h.less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// Run scans the database for the best local alignments of q and returns
// the top-K hits sorted by decreasing score (record index breaks ties).
// Run prepares the database and scans it once; callers with many
// queries against one database should build a DB once (NewDB, or load a
// pack via internal/dbpack) and use RunCtx/RunBatch instead.
func Run(q bio.Sequence, db []bio.Record, opt Options) (*Result, error) {
	return RunCtx(context.Background(), q, NewDB(db), opt)
}

// scoreGroup dispatches one lane group to the kernel selected by the
// Lanes option. The default (0/8) uses the full int8→int16→scalar chain
// of swar.Scores; 16 starts at int16 with scalar fallback; 1 is the
// scalar reference path (align.Scan with its striped fast path disabled,
// so differential tests compare two independent kernels). A non-nil gp
// supplies the group's shared prebuilt int8 profile (bit-identical to
// the one the chain would build) for the 0/8 path.
func scoreGroup(al *swar.Aligner, q bio.Sequence, targets []bio.Sequence, sc bio.Scoring, lanesOpt int, gp *groupProf) ([]int, error) {
	switch lanesOpt {
	case 0, 8:
		if len(targets) == 1 {
			// A singleton group (database tail, tiny database) would fill
			// one of eight lanes; the striped intra-sequence kernel inside
			// align.Scan uses all lanes on the single pair instead.
			r, err := align.Scan(q, targets[0], sc, align.ScanOptions{})
			if err != nil {
				return nil, err
			}
			return []int{r.BestScore}, nil
		}
		if gp != nil {
			scores, _, _, err := al.GroupScores(q, targets, sc, gp.profile(), nil)
			return scores, err
		}
		return al.Scores(q, targets, sc)
	case 16:
		out := make([]int, len(targets))
		ls, ok := al.Scan16(q, targets, sc)
		for i := range targets {
			if !ok || ls.Saturated&(1<<uint(i)) != 0 {
				r, err := align.Scan(q, targets[i], sc, align.ScanOptions{})
				if err != nil {
					return nil, err
				}
				out[i] = r.BestScore
			} else {
				out[i] = ls.Scores[i]
			}
		}
		return out, nil
	default: // scalar
		out := make([]int, len(targets))
		for i, t := range targets {
			r, err := align.Scan(q, t, sc, align.ScanOptions{ForceScalar: true})
			if err != nil {
				return nil, err
			}
			out[i] = r.BestScore
		}
		return out, nil
	}
}

// Realign fills the alignment spans of the final hits with the exact
// kernels: align.Scan (striped when the scheme fits, scalar otherwise)
// finds the end cell, ReverseRetrieve walks back to the start. Only the
// K winners pay this cost, and the exact re-scan doubles as a safety
// net: a score disagreeing with the packed inter-sequence kernel is a
// kernel bug and is reported, never papered over. One Retriever serves
// the whole loop, so the sparse traceback arenas are allocated once.
// Exported for the shard master, which realigns only the merged global
// winners instead of every shard's local top K. A zero sc means
// bio.DefaultScoring.
func Realign(q bio.Sequence, db []bio.Record, sc bio.Scoring, hits []Hit) error {
	if sc == (bio.Scoring{}) {
		sc = bio.DefaultScoring()
	}
	var rt align.Retriever
	for i := range hits {
		h := &hits[i]
		t := db[h.Index].Seq
		// The hit's score is already known: passing it as ExpectScore
		// lets the scan skip packed rungs it proves will saturate.
		r, err := align.Scan(q, t, sc, align.ScanOptions{ExpectScore: h.Score})
		if err != nil {
			return err
		}
		if r.BestScore != h.Score {
			return fmt.Errorf("search: packed score %d for %q disagrees with scalar %d",
				h.Score, h.ID, r.BestScore)
		}
		al, _, err := rt.ReverseRetrieve(q, t, sc, r.BestI, r.BestJ, r.BestScore)
		if err != nil {
			return err
		}
		h.QBegin, h.QEnd = al.SBegin, al.SEnd
		h.TBegin, h.TEnd = al.TBegin, al.TEnd
	}
	return nil
}
