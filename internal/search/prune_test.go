package search

import (
	"fmt"
	"strings"
	"testing"

	"genomedsm/internal/bio"
)

// requireSameHits asserts two hit slices are bit-identical: same
// records, scores, coordinates and tie-break order.
func requireSameHits(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d\ngot:  %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: hit %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestPrunedMatchesUnpruned is the core differential suite: across
// random databases, kernels, worker counts, K values and the optional
// prefilter, the pruned scan must return the bit-identical top-K —
// scores, endpoints and tie-break order — as the unpruned scan.
func TestPrunedMatchesUnpruned(t *testing.T) {
	for _, seed := range []int64{7, 19, 23} {
		g := bio.NewGenerator(seed)
		q := g.Random(250 + int(seed)*13)
		db := testDB(t, seed+100, q, 40, 12)
		for _, k := range []int{3, 10} {
			for _, lanes := range []int{0, 16, 1} {
				for _, prefilter := range []bool{false, true} {
					base := Options{TopK: k, Lanes: lanes}
					want, err := Run(q, db, base)
					if err != nil {
						t.Fatal(err)
					}
					pr := base
					pr.Prune = true
					pr.Prefilter = prefilter
					got, err := Run(q, db, pr)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("seed=%d k=%d lanes=%d prefilter=%v", seed, k, lanes, prefilter)
					requireSameHits(t, label, got.Hits, want.Hits)
					if got.Prune == nil {
						t.Fatalf("%s: no prune stats", label)
					}
					if n := got.Prune.Skipped + got.Prune.Abandoned + got.Prune.Scanned; n != got.Searched {
						t.Errorf("%s: stats cover %d of %d records", label, n, got.Searched)
					}
					if got.Prune.CellsSaved < 0 || got.Prune.CellsSaved > got.Cells {
						t.Errorf("%s: cells saved %d outside [0, %d]", label, got.Prune.CellsSaved, got.Cells)
					}
				}
			}
		}
	}
}

// TestPrunedMinScore pins the MinScore interaction: the floor may only
// be propped up by result-eligible records, so a high MinScore must
// yield the same (possibly short) hit list pruned and unpruned.
func TestPrunedMinScore(t *testing.T) {
	g := bio.NewGenerator(71)
	q := g.Random(300)
	db := testDB(t, 72, q, 30, 6)
	want, err := Run(q, db, Options{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Hits) < 3 {
		t.Fatal("test database produced too few hits")
	}
	for _, minScore := range []int{0, want.Hits[len(want.Hits)-1].Score, want.Hits[0].Score, want.Hits[0].Score + 1} {
		base := Options{TopK: 10, MinScore: minScore}
		ref, err := Run(q, db, base)
		if err != nil {
			t.Fatal(err)
		}
		pr := base
		pr.Prune, pr.Prefilter = true, true
		got, err := Run(q, db, pr)
		if err != nil {
			t.Fatal(err)
		}
		requireSameHits(t, fmt.Sprintf("minscore=%d", minScore), got.Hits, ref.Hits)
	}
}

// TestPrunedAdversarial drives the tie-handling edge cases: databases
// where nearly every record ties the floor must keep the exact
// index-order tie-breaks, and an all-unknown query (every bound zero)
// must skip everything and return the same empty result.
func TestPrunedAdversarial(t *testing.T) {
	g := bio.NewGenerator(81)
	q := g.Random(200)

	t.Run("all-identical-records", func(t *testing.T) {
		rec := g.Random(150)
		var db []bio.Record
		for i := 0; i < 30; i++ {
			db = append(db, bio.Record{ID: fmt.Sprintf("dup%d", i), Seq: rec.Clone()})
		}
		want, err := Run(q, db, Options{TopK: 7})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(q, db, Options{TopK: 7, Prune: true})
		if err != nil {
			t.Fatal(err)
		}
		requireSameHits(t, "identical", got.Hits, want.Hits)
		// Every kept hit ties: the winners must be the lowest indices.
		for i, h := range got.Hits {
			if h.Index != i {
				t.Errorf("tie-break broke: hit %d is record %d", i, h.Index)
			}
		}
	})

	t.Run("near-floor-ties", func(t *testing.T) {
		// Many mutated copies of the same query fragment: scores cluster
		// within a few points of each other, so the floor sits inside a
		// dense band of near-ties.
		frag := q[:120]
		var db []bio.Record
		for i := 0; i < 40; i++ {
			db = append(db, bio.Record{ID: fmt.Sprintf("tie%d", i), Seq: g.MutatedCopy(frag, bio.DefaultMutationModel())})
		}
		for _, prefilter := range []bool{false, true} {
			want, err := Run(q, db, Options{TopK: 10})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(q, db, Options{TopK: 10, Prune: true, Prefilter: prefilter})
			if err != nil {
				t.Fatal(err)
			}
			requireSameHits(t, fmt.Sprintf("near-ties prefilter=%v", prefilter), got.Hits, want.Hits)
		}
	})

	t.Run("all-unknown-query", func(t *testing.T) {
		nq, err := bio.NewSequence(strings.Repeat("N", 100))
		if err != nil {
			t.Fatal(err)
		}
		db := testDB(t, 83, q, 10, 0)
		got, err := Run(nq, db, Options{Prune: true, NoEndpoints: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Hits) != 0 {
			t.Errorf("all-N query produced hits: %+v", got.Hits)
		}
		if got.Prune.Skipped != len(db) {
			t.Errorf("all-N query skipped %d of %d records", got.Prune.Skipped, len(db))
		}
	})

	t.Run("k-exceeds-database", func(t *testing.T) {
		db := testDB(t, 84, q, 5, 2)
		want, err := Run(q, db, Options{TopK: 100})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(q, db, Options{TopK: 100, Prune: true, Prefilter: true})
		if err != nil {
			t.Fatal(err)
		}
		requireSameHits(t, "k>db", got.Hits, want.Hits)
	})
}

// TestPrunedActuallyPrunes pins that the machinery fires on a skewed
// database — strong hits planted first in scan order (the longest
// records), so the floor ratchets high early and the noise tail is
// skipped or abandoned. Without this, the differential suite could
// pass trivially with pruning never triggering.
func TestPrunedActuallyPrunes(t *testing.T) {
	g := bio.NewGenerator(91)
	q := g.Random(400)
	var db []bio.Record
	for i := 0; i < 12; i++ {
		// Planted full-query records, padded to be the longest in the db.
		pad := g.Random(100)
		db = append(db, bio.Record{ID: fmt.Sprintf("plant%d", i), Seq: append(append(bio.Sequence{}, pad...), q...)})
	}
	for i := 0; i < 60; i++ {
		db = append(db, bio.Record{ID: fmt.Sprintf("noise%d", i), Seq: g.Random(150 + i*5)})
	}
	want, err := Run(q, db, Options{NoEndpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(q, db, Options{NoEndpoints: true, Prune: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireSameHits(t, "skewed", got.Hits, want.Hits)
	st := got.Prune
	if st.Skipped+st.Abandoned == 0 {
		t.Fatalf("skewed database pruned nothing: %+v", st)
	}
	if st.CellsSaved == 0 || st.CellsSaved > got.Cells {
		t.Errorf("cells saved %d outside (0, %d]", st.CellsSaved, got.Cells)
	}
	if st.FloorFinal != want.Hits[len(want.Hits)-1].Score {
		t.Errorf("final floor %d, want the K-th best score %d", st.FloorFinal, want.Hits[len(want.Hits)-1].Score)
	}
}

// TestFloorRatchetRace is the -race coverage of the shared floor: many
// workers ratchet it while pushing near-tie hits, and the merged top-K
// must stay deterministic — identical to both a single-worker pruned
// run and the unpruned reference. Run with -race this also proves the
// atomic publish / lock discipline of floorTracker.
func TestFloorRatchetRace(t *testing.T) {
	g := bio.NewGenerator(101)
	q := g.Random(300)
	frag := q[:150]
	var db []bio.Record
	for i := 0; i < 120; i++ {
		// Alternate near-tie homologs and noise so every worker keeps
		// pushing scores right at the floor.
		if i%2 == 0 {
			db = append(db, bio.Record{ID: fmt.Sprintf("h%d", i), Seq: g.MutatedCopy(frag, bio.DefaultMutationModel())})
		} else {
			db = append(db, bio.Record{ID: fmt.Sprintf("n%d", i), Seq: g.Random(140 + i)})
		}
	}
	want, err := Run(q, db, Options{TopK: 15, NoEndpoints: true})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(q, db, Options{TopK: 15, NoEndpoints: true, Prune: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireSameHits(t, "single-worker", single.Hits, want.Hits)
	for _, workers := range []int{4, 16} {
		for rep := 0; rep < 3; rep++ {
			got, err := Run(q, db, Options{TopK: 15, NoEndpoints: true, Prune: true, Prefilter: rep%2 == 0, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			requireSameHits(t, fmt.Sprintf("workers=%d rep=%d", workers, rep), got.Hits, want.Hits)
		}
	}
}

func TestFloorTracker(t *testing.T) {
	ft := newFloorTracker(3)
	if ft.get() != 0 || ft.threshold(0) != 1 {
		t.Fatalf("empty tracker: floor %d threshold %d", ft.get(), ft.threshold(0))
	}
	ft.push(10, 0)
	ft.push(20, 1)
	if ft.get() != 0 {
		t.Fatalf("floor published before K records: %d", ft.get())
	}
	ft.push(30, 2)
	if ft.get() != 10 {
		t.Fatalf("floor %d, want 10", ft.get())
	}
	ft.push(5, 3) // below the floor: no effect
	if ft.get() != 10 {
		t.Fatalf("floor dropped to %d", ft.get())
	}
	ft.push(15, 4) // displaces the 10
	if ft.get() != 15 {
		t.Fatalf("floor %d, want 15", ft.get())
	}
	if th := ft.threshold(40); th != 40 {
		t.Errorf("threshold with MinScore 40 = %d", th)
	}

	// Dedup mode: upgrading one record's lower bound must not count it
	// twice (the floor stays backed by 3 distinct records).
	ft = newFloorTracker(3)
	ft.dedup = true
	ft.push(10, 0)
	ft.push(12, 1)
	ft.push(50, 0) // same record, better evidence — still only 2 records
	if ft.get() != 0 {
		t.Fatalf("dedup failed: floor %d from 2 records", ft.get())
	}
	ft.push(20, 2)
	if ft.get() != 12 {
		t.Fatalf("floor %d, want 12", ft.get())
	}
}
