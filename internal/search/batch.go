package search

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"genomedsm/internal/bio"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/swar"
)

// This file holds the multi-query scan engine behind Run, RunCtx and
// RunBatch. A batch shares one pass over the lane groups: every group a
// worker pulls is scored for every live query while its targets are hot,
// so per-scan costs (worker pool, group traversal, channel traffic) are
// paid once per batch instead of once per query — the shared-scan
// serving mode of the resident server. Sharing changes only scheduling:
// each query keeps its own top-K heap, pruning floor, query bound and
// adaptive routing state, so every completed query's result is
// bit-identical — hits, scores, coordinates, tie-breaks, cells — to a
// solo Run of the same query against the same DB with the same Options.

// BatchQuery is one query of a shared scan.
type BatchQuery struct {
	// Seq is the query sequence.
	Seq bio.Sequence
	// Ctx, when non-nil, cancels this query alone: the scan stops
	// spending kernel time on it at the next group boundary while the
	// rest of the batch continues. Nil means the batch context.
	Ctx context.Context
	// TopK overrides Options.TopK for this query (0 keeps it).
	TopK int
	// MinScore overrides Options.MinScore for this query (0 keeps it).
	MinScore int
	// FloorHint, when non-nil, supplies an externally proven pruning
	// floor that is folded into the query's own threshold (Options.Prune
	// only). The distributed layer feeds the gossiped global top-K floor
	// through it. The hint must obey the floor contract: when it returns
	// f > 0, at least K distinct result-eligible records of the full
	// search score ≥ f — then pruning strictly below max(local floor,
	// hint) stays exact. A stale (lower) hint is always safe, only
	// slower. Called concurrently from scan workers.
	FloorHint func() int
	// OnScore, when non-nil, observes every result-eligible exact score
	// (score > 0 and ≥ the query's MinScore) as it is pushed into the
	// heap, with the record's index in the scanned DB. The distributed
	// layer gossips these to the master as floor evidence. Called
	// concurrently from scan workers.
	OnScore func(score, index int)
	// OnGroup, when non-nil, runs after each lane group is scanned for
	// this query — a progress hook for gossip cadence and fault
	// injection. Called concurrently from scan workers.
	OnGroup func()
}

// BatchResult is one query's outcome. When Err is nil, Result is the
// full scan result, bit-identical to a solo Run. When Err reports the
// query's context (cancelled or past its deadline), Result carries
// partial diagnostics only — Searched/Cells/PaddedCells and prune
// counters for the records actually processed before the cancellation
// took effect, and no Hits: a partial top K is not a valid top K.
type BatchResult struct {
	Result *Result
	Err    error
}

// qstate is the per-query scan state.
type qstate struct {
	q        bio.Sequence
	ctx      context.Context
	k        int
	minScore int
	qb       *bio.QueryBound
	ft       *floorTracker
	scan     *dispatch.ScanState
	hint     func() int
	onScore  func(score, index int)
	onGroup  func()
	// cancelled latches the first ctx.Err observation so workers stop
	// probing the context once the query is dead.
	cancelled atomic.Bool
}

// done reports (and latches) whether the query's context has fired.
func (st *qstate) done() bool {
	if st.cancelled.Load() {
		return true
	}
	if st.ctx.Err() != nil {
		st.cancelled.Store(true)
		return true
	}
	return false
}

// RunCtx is Run over a prepared DB with a context: cancelling ctx stops
// the workers at the next group boundary and returns the context error.
func RunCtx(ctx context.Context, q bio.Sequence, db *DB, opt Options) (*Result, error) {
	brs, err := RunBatch(ctx, []BatchQuery{{Seq: q}}, db, opt)
	if err != nil {
		return nil, err
	}
	if brs[0].Err != nil {
		return nil, brs[0].Err
	}
	return brs[0].Result, nil
}

// RunBatch scans the database once for every query of the batch. The
// batch-level error is non-nil only when the whole scan failed (kernel
// error, batch context cancelled, invalid options); per-query context
// errors land in the matching BatchResult instead.
func RunBatch(ctx context.Context, queries []BatchQuery, db *DB, opt Options) ([]BatchResult, error) {
	sc := opt.Scoring
	if sc == (bio.Scoring{}) {
		sc = bio.DefaultScoring()
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	lanes := bio.PackedLanes8
	switch opt.Lanes {
	case 0, 8:
		// adaptive routing (0) and the forced int8 chain (8) both pack
		// groups of 8 records
	case 16:
		lanes = bio.PackedLanes16
	case 1:
		lanes = 1
	default:
		return nil, fmt.Errorf("search: lanes must be 8, 16 or 1, got %d", opt.Lanes)
	}
	var router *dispatch.Router
	if opt.Lanes == 0 {
		var err error
		if router, err = routerFor(opt); err != nil {
			return nil, err
		}
	}
	if len(queries) == 0 {
		return nil, nil
	}

	word := opt.PrefilterWord
	if word == 0 {
		word = 11
	}
	nq := len(queries)
	states := make([]*qstate, nq)
	for i, bq := range queries {
		st := &qstate{
			q: bq.Seq, ctx: bq.Ctx, k: bq.TopK, minScore: bq.MinScore,
			hint: bq.FloorHint, onScore: bq.OnScore, onGroup: bq.OnGroup,
		}
		if st.ctx == nil {
			st.ctx = ctx
		}
		if st.k <= 0 {
			st.k = opt.TopK
		}
		if st.k <= 0 {
			st.k = 10
		}
		if st.minScore == 0 {
			st.minScore = opt.MinScore
		}
		if router != nil {
			st.scan = router.NewScan()
		}
		if opt.Prune {
			st.qb = bio.NewQueryBound(bq.Seq, sc)
			st.ft = newFloorTracker(st.k)
			if opt.Prefilter && !st.done() {
				seedFloorDB(st.ft, bq.Seq, db, sc, word, st.minScore)
			}
		}
		states[i] = st
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	groups := db.groups(lanes)
	// The precomputed lane layout applies only to the 8-lane group cut it
	// was built for; 16-lane and scalar cuts regroup records.
	var lay *Layout
	if lanes == bio.PackedLanes8 {
		lay = db.layout
	}
	if workers > len(groups) && len(groups) > 0 {
		workers = len(groups)
	}
	work := make(chan int)
	heaps := make([][]*topK, workers)
	errs := make([]error, workers)
	padded := make([][]int64, workers)
	pstats := make([][]PruneStats, workers)
	procRecs := make([][]int, workers)
	procCells := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var al swar.Aligner
			heaps[w] = make([]*topK, nq)
			for qi, st := range states {
				heaps[w][qi] = &topK{k: st.k}
			}
			padded[w] = make([]int64, nq)
			pstats[w] = make([]PruneStats, nq)
			procRecs[w] = make([]int, nq)
			procCells[w] = make([]int64, nq)
			targets := make([]bio.Sequence, 0, lanes)
			kept := make([]int, 0, lanes)
			gp := &groupProf{sc: sc}
			for gi := range work {
				group := groups[gi]
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				var groupBases int64
				for _, idx := range group {
					groupBases += int64(len(db.recs[idx].Seq))
				}
				// Every query of the batch scans this group with the same
				// query-independent packed profile: reset the lazy holder
				// once per work item, point it at the group's precomputed
				// layout words when the DB carries them. Singleton groups
				// take the striped path and never need it.
				use := (*groupProf)(nil)
				if lanes == bio.PackedLanes8 && len(group) > 1 {
					gp.reset(db, group)
					if lay != nil {
						gp.words = lay.GroupWords(gi)
					}
					use = gp
				}
				for qi, st := range states {
					if st.done() {
						continue
					}
					err := scanGroupFor(&al, st, db, group, sc, opt, lanes,
						heaps[w][qi], &pstats[w][qi], &padded[w][qi], targets, kept, use)
					if err != nil {
						errs[w] = err
						return
					}
					procRecs[w][qi] += len(group)
					procCells[w][qi] += int64(len(st.q)) * groupBases
					if st.onGroup != nil {
						st.onGroup()
					}
				}
			}
		}(w)
	}
feed:
	for gi := range groups {
		select {
		case work <- gi:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := make([]BatchResult, nq)
	for qi, st := range states {
		qerr := st.ctx.Err()
		res := &Result{}
		if qerr == nil {
			res.Searched = len(db.recs)
			res.Cells = int64(len(st.q)) * db.total
		} else {
			for w := range procRecs {
				if procRecs[w] != nil {
					res.Searched += procRecs[w][qi]
					res.Cells += procCells[w][qi]
				}
			}
		}
		for w := range padded {
			if padded[w] != nil {
				res.PaddedCells += padded[w][qi]
			}
		}
		if opt.Prune {
			pst := &PruneStats{FloorFinal: st.ft.get()}
			for w := range pstats {
				if pstats[w] == nil {
					continue
				}
				pst.Skipped += pstats[w][qi].Skipped
				pst.Abandoned += pstats[w][qi].Abandoned
				pst.Scanned += pstats[w][qi].Scanned
				pst.CellsSaved += pstats[w][qi].CellsSaved
			}
			res.Prune = pst
		}
		if qerr != nil {
			out[qi] = BatchResult{Result: res, Err: qerr}
			continue
		}
		merged := &topK{k: st.k}
		for w := range heaps {
			if heaps[w] == nil {
				continue
			}
			for _, it := range heaps[w][qi].items {
				merged.push(it)
			}
		}
		res.Hits = merged.items
		sort.Slice(res.Hits, func(a, b int) bool {
			x, y := res.Hits[a], res.Hits[b]
			if x.Score != y.Score {
				return x.Score > y.Score
			}
			return x.Index < y.Index
		})
		if !opt.NoEndpoints {
			if err := Realign(st.q, db.recs, sc, res.Hits); err != nil {
				return nil, err
			}
		}
		out[qi] = BatchResult{Result: res}
	}
	return out, nil
}

// groupProf lazily builds — at most once per work item — the
// query-independent int8 packed profile of one full lane group, shared
// by every query of the batch. With a DB layout attached the build
// reads the precomputed interleaved words (the pack-v2 zero-copy path);
// otherwise it interleaves the record bytes once instead of once per
// query. Either build is bit-identical to the profile the kernels would
// construct per scan (TestPackedProfileFromWords pins the equivalence),
// so sharing changes cost only, never results.
type groupProf struct {
	words   []uint64       // the group's layout words; nil without a layout
	targets []bio.Sequence // full group targets in rank order
	lens    []int          // their lengths
	sc      bio.Scoring
	prof    *bio.PackedProfile
	tried   bool
}

// reset points the holder at a new group and drops any cached profile.
func (g *groupProf) reset(db *DB, group []int) {
	g.words, g.prof, g.tried = nil, nil, false
	g.targets = g.targets[:0]
	g.lens = g.lens[:0]
	for _, idx := range group {
		t := db.recs[idx].Seq
		g.targets = append(g.targets, t)
		g.lens = append(g.lens, len(t))
	}
}

// profile returns the group's int8 packed profile, building it on first
// use; nil under exactly the conditions bio.NewPackedProfile8 returns
// nil, so callers fall back identically.
func (g *groupProf) profile() *bio.PackedProfile {
	if !g.tried {
		g.tried = true
		if g.words != nil {
			g.prof = bio.NewPackedProfile8FromWords(g.words, g.lens, g.sc)
		} else {
			g.prof = bio.NewPackedProfile8(g.targets, g.sc)
		}
	}
	return g.prof
}

// scanGroupFor scores one lane group for one query: stage-1 record
// skipping against the query's floor, the kernel route (adaptive,
// bounded or plain), and the heap/floor pushes. This is the body of the
// original single-query Run worker, parameterized by query state.
func scanGroupFor(al *swar.Aligner, st *qstate, db *DB, group []int, sc bio.Scoring, opt Options, lanes int,
	heap *topK, ps *PruneStats, padded *int64, targets []bio.Sequence, kept []int, gp *groupProf) error {
	q := st.q
	targets = targets[:0]
	kept = kept[:0]
	var ab *swar.Bound
	if opt.Prune {
		// Stage 1: the O(1) record bound against the floor read once per
		// group (a stale, lower floor only makes the check more
		// conservative — never wrong).
		th := st.ft.threshold(st.minScore)
		if st.hint != nil {
			// An external floor (the gossiped global top-K floor of the
			// shard layer) tightens the threshold: the hint's contract
			// guarantees K distinct eligible records of the full search
			// score ≥ it, so pruning strictly below it stays exact even
			// when this scan covers only a shard of that search.
			if h := st.hint(); h > th {
				th = h
			}
		}
		for _, idx := range group {
			t := db.recs[idx].Seq
			if st.qb.RecordBound(len(t)) < th {
				ps.Skipped++
				ps.CellsSaved += int64(len(q)) * int64(len(t))
				continue
			}
			kept = append(kept, idx)
		}
		ab = &swar.Bound{Below: th, Query: st.qb, Every: opt.AbandonEvery}
	} else {
		kept = append(kept, group...)
	}
	if len(kept) == 0 {
		return nil
	}
	if gp != nil && len(kept) != len(group) {
		// Stage-1 skips compacted the surviving lanes, so the full-group
		// profile no longer lines up lane for lane — the kernels rebuild
		// from the compacted targets as before.
		gp = nil
	}
	maxLen := 0
	for _, idx := range kept {
		t := db.recs[idx].Seq
		targets = append(targets, t)
		if len(t) > maxLen {
			maxLen = len(t)
		}
	}
	var scores []int
	var prunedMask []bool
	var rowsScanned []int
	var err error
	if st.scan != nil {
		// Adaptive path: the router picks the route and the scorer
		// reports the padded cells that route computed.
		var pad int64
		scores, prunedMask, rowsScanned, pad, err = scoreGroupRouted(al, q, targets, sc, st.scan, ab, gp)
		*padded += pad
	} else if opt.Prune {
		scores, prunedMask, rowsScanned, err = scoreGroupBounded(al, q, targets, sc, opt.Lanes, ab, gp)
	} else {
		scores, err = scoreGroup(al, q, targets, sc, opt.Lanes, gp)
	}
	if err != nil {
		return err
	}
	if st.scan == nil {
		rowsUsed := len(q)
		if rowsScanned != nil {
			rowsUsed = 0
			for _, r := range rowsScanned {
				if r > rowsUsed {
					rowsUsed = r
				}
			}
		}
		*padded += int64(lanes) * int64(maxLen) * int64(rowsUsed)
	}
	for i, idx := range kept {
		if prunedMask != nil && prunedMask[i] {
			ps.Abandoned++
			ps.CellsSaved += int64(len(q)-rowsScanned[i]) * int64(len(targets[i]))
			continue
		}
		if opt.Prune {
			ps.Scanned++
		}
		if s := scores[i]; s > 0 && s >= st.minScore {
			heap.push(Hit{Index: idx, ID: db.recs[idx].ID, Score: s})
			if st.ft != nil {
				st.ft.push(s, idx)
			}
			if st.onScore != nil {
				st.onScore(s, idx)
			}
		}
	}
	return nil
}

// seedFloorDB is seedFloor over a prepared DB: when the database carries
// a word index of the right word size, the prefilter looks the query up
// in it — one pass over the query instead of one pass over every record
// — and otherwise falls back to the per-run query-side index. Both
// produce true lower bounds, so either way the hit set is unchanged.
func seedFloorDB(ft *floorTracker, q bio.Sequence, db *DB, sc bio.Scoring, word, minScore int) {
	ix := db.ix
	if ix == nil || ix.Word() != word {
		seedFloor(ft, q, db.recs, sc, word, minScore)
		return
	}
	ft.dedup = true
	lo := minScore
	if lo < 1 {
		lo = 1
	}
	for i, lb := range ix.SeedScores(q, sc, 0) {
		if lb >= lo {
			ft.push(lb, i)
		}
	}
}
