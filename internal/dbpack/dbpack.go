// Package dbpack persists a prepared search database: the FASTA records
// plus everything internal/search derives from them once per database —
// the canonical length-sorted scan order behind lane-group batching, the
// per-record length table the O(1) skip bound reads, and the database-
// side blast word index the pruning prefilter seeds from. `genomedsm
// index` pays the FASTA parse, the sort and the word indexing once;
// `genomedsm serve` (or `search -pack`) loads the pack near-instantly
// and starts answering queries without recomputing any of it.
//
// The wire format reuses the internal/recovery checkpoint codec — a
// version byte, positional varint values, and a trailing FNV-1a
// checksum — prefixed by an 8-byte magic string so "not a pack file"
// and "corrupt pack file" stay distinguishable errors. Loading
// validates the magic, the codec version and checksum, the pack format
// version, the stored scan order (it must equal the unique canonical
// order search.NewDB would compute), the length table, and the word
// index posting ranges. A pack that decodes is therefore
// indistinguishable, to a scan, from a database prepared in-process.
package dbpack

import (
	"fmt"
	"os"
	"path/filepath"

	"genomedsm/internal/bio"
	"genomedsm/internal/blast"
	"genomedsm/internal/recovery"
	"genomedsm/internal/search"
)

// magic opens every pack file. The trailing byte leaves room for a
// future incompatible container layout without touching the codec.
const magic = "GDMPACK\x01"

// packVersion is the pack payload format version; bumped whenever the
// value stream changes so a stale pack is rejected, never mis-decoded.
const packVersion = 1

// Pack is a loaded (or about-to-be-written) database pack.
type Pack struct {
	// DB is the prepared database, ready to scan. After ReadFile it
	// carries the stored scan order and word index; after Open it also
	// carries the lane-group layout (mapped for v2, built for v1).
	DB *search.DB
	// Word is the word size of the embedded prefilter index, 0 when the
	// pack was built without one.
	Word int
	// Info describes how the pack got into memory (Open fills it).
	Info Info
	// close releases the mmap'd region of an Open'd v2 pack.
	close func() error
}

// Build prepares records for packing: the canonical scan order is
// computed, and when word is within blast's [4,15] range a database-side
// word index is built and embedded. word 0 skips the index.
func Build(recs []bio.Record, word int) (*Pack, error) {
	db := search.NewDB(recs)
	if word != 0 {
		ix := blast.NewDBWordIndex(recs, word)
		if ix == nil {
			return nil, fmt.Errorf("dbpack: prefilter word size %d outside [4,15]", word)
		}
		db.SetWordIndex(ix)
		return &Pack{DB: db, Word: word}, nil
	}
	return &Pack{DB: db, Word: 0}, nil
}

// Encode serializes the pack. The byte stream is deterministic: records
// in database order, the scan order table, the length table in scan
// order, then the word index with words ascending — so the same records
// and word size always produce the identical blob (pinned by the golden
// test).
func (p *Pack) Encode() []byte {
	recs := p.DB.Records()
	w := recovery.NewWriter()
	w.Uint(packVersion)
	w.Uint(uint64(len(recs)))
	for _, r := range recs {
		w.Bytes([]byte(r.ID))
		w.Bytes([]byte(r.Description))
		w.Bytes(r.Seq)
	}
	order := p.DB.Order()
	ord32 := make([]int32, len(order))
	lens := make([]int32, len(order))
	for i, idx := range order {
		ord32[i] = int32(idx)
		lens[i] = int32(len(recs[idx].Seq))
	}
	w.Int32s(ord32)
	w.Int32s(lens)
	w.Int(p.Word)
	if ix := p.DB.WordIndex(); p.Word != 0 && ix != nil {
		words, postings := ix.Export()
		w.Uint(uint64(len(words)))
		for i, word := range words {
			w.Uint(uint64(word))
			flat := make([]int32, 0, 2*len(postings[i]))
			for _, pt := range postings[i] {
				flat = append(flat, pt.Rec, pt.Pos)
			}
			w.Int32s(flat)
		}
	}
	blob := w.Finish()
	out := make([]byte, 0, len(magic)+len(blob))
	out = append(out, magic...)
	return append(out, blob...)
}

// Decode parses and validates a pack blob. Every failure mode has a
// distinct error: wrong magic (not a pack), checksum mismatch
// (corrupt), codec or pack version mismatch (stale), malformed scan
// order or posting table (invalid).
func Decode(blob []byte) (*Pack, error) {
	if len(blob) < len(magic) || string(blob[:len(magic)]) != magic {
		return nil, fmt.Errorf("dbpack: not a database pack (bad magic)")
	}
	r, err := recovery.NewReader(blob[len(magic):])
	if err != nil {
		return nil, fmt.Errorf("dbpack: %w", err)
	}
	if v := r.Uint(); v != packVersion {
		if r.Err() == nil {
			return nil, fmt.Errorf("dbpack: pack format version %d, want %d", v, packVersion)
		}
		return nil, fmt.Errorf("dbpack: %w", r.Err())
	}
	n := int(r.Uint())
	if r.Err() != nil {
		return nil, fmt.Errorf("dbpack: %w", r.Err())
	}
	if n < 0 || n > len(blob) { // each record costs ≥1 byte of stream
		return nil, fmt.Errorf("dbpack: implausible record count %d in %d-byte pack", n, len(blob))
	}
	recs := make([]bio.Record, n)
	for i := range recs {
		id := r.Bytes()
		desc := r.Bytes()
		seq := r.Bytes()
		if r.Err() != nil {
			return nil, fmt.Errorf("dbpack: %w", r.Err())
		}
		// Copy out of the blob so the records do not alias the file buffer.
		recs[i] = bio.Record{
			ID:          string(id),
			Description: string(desc),
			Seq:         bio.Sequence(append([]byte(nil), seq...)),
		}
	}
	ord32 := r.Int32s()
	lens := r.Int32s()
	word := r.Int()
	if r.Err() != nil {
		return nil, fmt.Errorf("dbpack: %w", r.Err())
	}
	order := make([]int, len(ord32))
	for i, v := range ord32 {
		order[i] = int(v)
	}
	db, err := search.PreparedDB(recs, order)
	if err != nil {
		return nil, fmt.Errorf("dbpack: %w", err)
	}
	if len(lens) != len(order) {
		return nil, fmt.Errorf("dbpack: length table holds %d entries for %d records", len(lens), len(order))
	}
	for i, idx := range order {
		if int(lens[i]) != len(recs[idx].Seq) {
			return nil, fmt.Errorf("dbpack: length table disagrees with record %d (%d vs %d)",
				idx, lens[i], len(recs[idx].Seq))
		}
	}
	p := &Pack{DB: db, Word: word}
	if word != 0 {
		nw := int(r.Uint())
		if r.Err() != nil {
			return nil, fmt.Errorf("dbpack: %w", r.Err())
		}
		if nw < 0 || nw > len(blob) {
			return nil, fmt.Errorf("dbpack: implausible word count %d in %d-byte pack", nw, len(blob))
		}
		words := make([]uint32, nw)
		postings := make([][]blast.DBPosting, nw)
		for i := 0; i < nw; i++ {
			words[i] = uint32(r.Uint())
			flat := r.Int32s()
			if r.Err() != nil {
				return nil, fmt.Errorf("dbpack: %w", r.Err())
			}
			if len(flat)%2 != 0 {
				return nil, fmt.Errorf("dbpack: odd posting table for word %#x", words[i])
			}
			if i > 0 && words[i] <= words[i-1] {
				return nil, fmt.Errorf("dbpack: word table not strictly ascending at entry %d", i)
			}
			ps := make([]blast.DBPosting, len(flat)/2)
			for j := range ps {
				ps[j] = blast.DBPosting{Rec: flat[2*j], Pos: flat[2*j+1]}
			}
			postings[i] = ps
		}
		ix, err := blast.RestoreDBWordIndex(recs, word, words, postings)
		if err != nil {
			return nil, fmt.Errorf("dbpack: %w", err)
		}
		db.SetWordIndex(ix)
	}
	return p, nil
}

// WriteFile writes the pack atomically in the legacy v1 format; new
// packs should use WriteFileV2 (mmap-ready).
func WriteFile(path string, p *Pack) error {
	return writeBlob(path, p.Encode())
}

// writeBlob writes blob atomically: temp file in the destination
// directory, fsync, rename.
func writeBlob(path string, blob []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".dbpack-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads and validates a pack file. The whole file is read into
// memory (a pack holds sequences the scan needs resident anyway;
// deliberately no mmap — the portability cost buys nothing for the
// sizes this repo models).
func ReadFile(path string) (*Pack, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}
