//go:build !unix

package dbpack

import (
	"fmt"
	"os"
)

// mmapFile is unavailable on this platform; Open falls back to reading
// the pack into one aligned buffer (LoadCopy), behind the same API and
// with the same zero-copy views into that buffer.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, fmt.Errorf("dbpack: mmap unsupported on this platform")
}
