//go:build unix

package dbpack

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps the file read-only and private. The mapping base is
// page-aligned, so the pack's page-aligned sections land 8-aligned in
// memory and decodeV2 can reinterpret them as []uint64 in place.
// PROT_READ doubles as a safety net: any accidental write through a
// zero-copy view faults instead of silently corrupting the pack.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("dbpack: cannot map %d-byte file", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("dbpack: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
