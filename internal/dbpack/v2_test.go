package dbpack

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"unsafe"

	"genomedsm/internal/bio"
	"genomedsm/internal/search"
	"genomedsm/internal/shard"
)

// alignedCopy copies blob into an 8-aligned buffer — the alignment
// guarantee mmap and readAligned provide — so tests can call decodeV2
// on crafted bytes directly.
func alignedCopy(blob []byte) []byte {
	buf := make([]uint64, (len(blob)+7)/8+1)
	b := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(blob))
	copy(b, blob)
	return b
}

// parseV2Table reads the section table out of a valid v2 blob.
func parseV2Table(t *testing.T, blob []byte) []v2Section {
	t.Helper()
	ns := int(binary.LittleEndian.Uint32(blob[12:]))
	secs := make([]v2Section, ns)
	for i := range secs {
		hdr := blob[v2FixedHdr+i*v2SecHdr:]
		secs[i] = v2Section{
			kind: binary.LittleEndian.Uint32(hdr),
			off:  binary.LittleEndian.Uint64(hdr[8:]),
			len:  binary.LittleEndian.Uint64(hdr[16:]),
			sum:  binary.LittleEndian.Uint64(hdr[24:]),
		}
	}
	return secs
}

// refixV2 recomputes every section checksum and the header checksum in
// place — how a forger with full file access would cover their tracks.
// Used to prove that semantic validation, not just checksums, guards
// derived data.
func refixV2(blob []byte) []byte {
	ns := int(binary.LittleEndian.Uint32(blob[12:]))
	for i := 0; i < ns; i++ {
		hdr := blob[v2FixedHdr+i*v2SecHdr:]
		off := binary.LittleEndian.Uint64(hdr[8:])
		slen := binary.LittleEndian.Uint64(hdr[16:])
		binary.LittleEndian.PutUint64(hdr[24:], sum64(blob[off:off+slen]))
	}
	hdrLen := v2FixedHdr + ns*v2SecHdr
	binary.LittleEndian.PutUint64(blob[hdrLen:], sum64(blob[:hdrLen]))
	return blob
}

func encodeV2T(t *testing.T, word int) []byte {
	t.Helper()
	p, err := Build(testRecords(), word)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeV2(p)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestV2RoundTrip(t *testing.T) {
	for _, word := range []int{0, 4, 11} {
		p, err := Build(testRecords(), word)
		if err != nil {
			t.Fatalf("Build(word=%d): %v", word, err)
		}
		path := filepath.Join(t.TempDir(), "db.pack")
		if err := WriteFileV2(path, p); err != nil {
			t.Fatalf("WriteFileV2(word=%d): %v", word, err)
		}
		got, err := Open(path)
		if err != nil {
			t.Fatalf("Open(word=%d): %v", word, err)
		}
		if got.Word != word {
			t.Errorf("word %d round-tripped to %d", word, got.Word)
		}
		if got.Info.Version != 2 {
			t.Errorf("Info.Version = %d, want 2", got.Info.Version)
		}
		if runtime.GOOS == "linux" && got.Info.Mode != LoadMMap {
			t.Errorf("Info.Mode = %v, want mmap on linux", got.Info.Mode)
		}
		if got.Info.Mode == LoadMMap && got.Info.MappedBytes == 0 {
			t.Error("mmap load reports 0 mapped bytes")
		}
		if got.Info.LayoutRebuilt {
			t.Errorf("clean pack reports rebuilt layout: %s", got.Info.Notice)
		}
		want := testRecords()
		recs := got.DB.Records()
		if len(recs) != len(want) {
			t.Fatalf("got %d records, want %d", len(recs), len(want))
		}
		for i := range want {
			if recs[i].ID != want[i].ID || recs[i].Description != want[i].Description ||
				!bytes.Equal(recs[i].Seq, want[i].Seq) {
				t.Errorf("record %d round-tripped to %+v", i, recs[i])
			}
		}
		if (got.DB.WordIndex() != nil) != (word != 0) {
			t.Errorf("word=%d: index presence wrong", word)
		}
		lay := got.DB.Layout()
		if lay == nil {
			t.Fatalf("word=%d: no lane layout after Open", word)
		}
		if hostLittleEndian && !lay.IsView() {
			t.Errorf("word=%d: layout copied on a little-endian host", word)
		}
		if err := lay.Validate(got.DB); err != nil {
			t.Errorf("word=%d: loaded layout fails validation: %v", word, err)
		}
		if err := got.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := got.Close(); err != nil {
			t.Errorf("second Close: %v", err)
		}
	}
}

// Golden pins for the v2 wire format: the full blob is dozens of KB of
// mostly page padding, so the header (which transitively covers every
// section via its checksums) is pinned as hex, and the whole blob by
// length + FNV-1a. If an intentional format change trips this, bump
// packVersionV2 and re-pin.
const (
	goldenV2HeaderHex = "47444d5041434b02020000000800000004000000050000005100000000000000" +
		"010000000000000000100000000000002f0000000000000016ad4f85406b1274" +
		"0200000000000000002000000000000030000000000000001e86001c48d59308" +
		"030000000000000000300000000000005100000000000000ebdfed02cf81de98" +
		"0400000000000000004000000000000014000000000000007bd1411e87ac06f2" +
		"0500000000000000005000000000000014000000000000001204c04187e0a778" +
		"060000000000000000600000000000008c02000000000000b896cc051303df31" +
		"0700000000000000007000000000000010000000000000005940ebb4076c3208" +
		"08000000000000000080000000000000e000000000000000598d000667b99be5"
	goldenV2BlobLen = 32992
	goldenV2BlobFNV = uint64(0x4b39df3e33907372)
)

func TestV2GoldenHeader(t *testing.T) {
	blob := encodeV2T(t, 4)
	ns := int(binary.LittleEndian.Uint32(blob[12:]))
	hdrLen := v2FixedHdr + ns*v2SecHdr
	got := fmt.Sprintf("%x", blob[:hdrLen])
	if got != goldenV2HeaderHex {
		t.Errorf("v2 header changed:\n got %s\nwant %s\n(intentional? bump packVersionV2 and re-pin)", got, goldenV2HeaderHex)
	}
	if len(blob) != goldenV2BlobLen || sum64(blob) != goldenV2BlobFNV {
		t.Errorf("v2 blob changed: len %d fnv %#x, want len %d fnv %#x\n(intentional? bump packVersionV2 and re-pin)",
			len(blob), sum64(blob), goldenV2BlobLen, goldenV2BlobFNV)
	}
	if _, err := decodeV2(alignedCopy(blob), Info{}); err != nil {
		t.Fatalf("golden blob does not decode: %v", err)
	}
}

func TestV2DecodeRejects(t *testing.T) {
	base := encodeV2T(t, 4)
	secOf := func(kind uint32) v2Section {
		for _, s := range parseV2Table(t, base) {
			if s.kind == kind {
				return s
			}
		}
		t.Fatalf("no section kind %d", kind)
		return v2Section{}
	}
	for _, tc := range []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:16] }},
		{"truncated table", func(b []byte) []byte { return b[:v2FixedHdr+8] }},
		{"truncated sections", func(b []byte) []byte { return b[:pageAlign] }},
		{"bad version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 3)
			return b
		}},
		{"zero sections", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], 0)
			return b
		}},
		{"section count over cap", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:], maxSections+1)
			return b
		}},
		{"header flip without refix", func(b []byte) []byte {
			b[v2FixedHdr+16] ^= 0x40
			return b
		}},
		{"section flip without refix", func(b []byte) []byte {
			s := secOf(secMeta)
			b[s.off] ^= 0x01
			return b
		}},
		{"misaligned section", func(b []byte) []byte {
			// Shift a section's recorded offset off the page boundary and
			// re-seal the header: alignment is checked before checksums.
			binary.LittleEndian.PutUint64(b[v2FixedHdr+8:], secOf(secMeta).off+8)
			hdrLen := v2FixedHdr + 8*v2SecHdr
			binary.LittleEndian.PutUint64(b[hdrLen:], sum64(b[:hdrLen]))
			return b
		}},
		{"section beyond EOF", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[v2FixedHdr+16:], uint64(len(b)))
			hdrLen := v2FixedHdr + 8*v2SecHdr
			binary.LittleEndian.PutUint64(b[hdrLen:], sum64(b[:hdrLen]))
			return b
		}},
		{"duplicate section kind", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[v2FixedHdr+v2SecHdr:], secMeta)
			hdrLen := v2FixedHdr + 8*v2SecHdr
			binary.LittleEndian.PutUint64(b[hdrLen:], sum64(b[:hdrLen]))
			return b
		}},
		{"unknown section kind", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[v2FixedHdr:], 99)
			hdrLen := v2FixedHdr + 8*v2SecHdr
			binary.LittleEndian.PutUint64(b[hdrLen:], sum64(b[:hdrLen]))
			return b
		}},
		{"missing section", func(b []byte) []byte {
			// Drop the last table entry: the shorter table must re-seal at
			// its new end, and decode must notice the absent kind.
			binary.LittleEndian.PutUint32(b[12:], 7)
			hdrLen := v2FixedHdr + 8*v2SecHdr
			binary.LittleEndian.PutUint64(b[hdrLen:], sum64(b[:hdrLen]))
			return b
		}},
		{"record count lie", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:], 6)
			return refixV2(b)
		}},
		{"total bases lie", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], binary.LittleEndian.Uint64(b[24:])+1)
			return refixV2(b)
		}},
		{"seq offset overflow", func(b []byte) []byte {
			s := secOf(secSeqOff)
			binary.LittleEndian.PutUint64(b[s.off+8:], 1<<40)
			return refixV2(b)
		}},
		{"seq offsets decrease", func(b []byte) []byte {
			s := secOf(secSeqOff)
			binary.LittleEndian.PutUint64(b[s.off+16:], 0)
			binary.LittleEndian.PutUint64(b[s.off+8:], 5)
			return refixV2(b)
		}},
		{"order rank out of range", func(b []byte) []byte {
			s := secOf(secOrder)
			binary.LittleEndian.PutUint32(b[s.off:], 99)
			return refixV2(b)
		}},
		{"length table lie", func(b []byte) []byte {
			s := secOf(secLens)
			binary.LittleEndian.PutUint32(b[s.off:], binary.LittleEndian.Uint32(b[s.off:])+1)
			return refixV2(b)
		}},
		{"blast words unsorted", func(b []byte) []byte {
			s := secOf(secBlast)
			binary.LittleEndian.PutUint32(b[s.off+4:], ^uint32(0)>>1)
			return refixV2(b)
		}},
	} {
		blob := tc.mut(append([]byte(nil), base...))
		if _, err := decodeV2(alignedCopy(blob), Info{}); err == nil {
			t.Errorf("%s: decodeV2 accepted the mutant", tc.name)
		}
	}
}

// TestV2ForgedLayoutSection proves the derived-data trust model: a
// lane-group section that passes its checksum (the forger re-sealed the
// file) but disagrees with the sequence bytes is detected by semantic
// validation and rebuilt in heap — the load slows, results cannot
// change.
func TestV2ForgedLayoutSection(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind uint32
		mut  func(b []byte, s v2Section)
	}{
		{"forged lane words", secLanes, func(b []byte, s v2Section) { b[s.off] ^= 0x03 }},
		{"forged group offsets", secGroupOff, func(b []byte, s v2Section) {
			binary.LittleEndian.PutUint64(b[s.off+8:], 0)
		}},
	} {
		blob := encodeV2T(t, 4)
		for _, s := range parseV2Table(t, blob) {
			if s.kind == tc.kind {
				tc.mut(blob, s)
			}
		}
		refixV2(blob)
		path := filepath.Join(t.TempDir(), "forged.pack")
		if err := writeBlob(path, blob); err != nil {
			t.Fatal(err)
		}
		p, err := Open(path)
		if err != nil {
			t.Fatalf("%s: Open rejected a re-sealed pack: %v", tc.name, err)
		}
		if !p.Info.LayoutRebuilt {
			t.Fatalf("%s: forged layout was trusted (Notice=%q)", tc.name, p.Info.Notice)
		}
		lay := p.DB.Layout()
		if lay == nil || lay.IsView() {
			t.Fatalf("%s: rebuilt layout should live in heap", tc.name)
		}
		if err := lay.Validate(p.DB); err != nil {
			t.Fatalf("%s: rebuilt layout invalid: %v", tc.name, err)
		}
		q := bio.Sequence("ACGTACGTACGTACGT")
		got, err := search.RunCtx(context.Background(), q, p.DB, search.Options{Lanes: 8})
		if err != nil {
			t.Fatal(err)
		}
		want, err := search.Run(q, testRecords(), search.Options{Lanes: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Hits, want.Hits) {
			t.Errorf("%s: hits diverged after rebuild:\n got %+v\nwant %+v", tc.name, got.Hits, want.Hits)
		}
		p.Close()
	}
}

// TestOpenLegacyV1 pins the compatibility path: a v1 pack still loads —
// through the legacy decoder, with the layout built in heap and a
// re-index notice — and scans identically.
func TestOpenLegacyV1(t *testing.T) {
	p, err := Build(testRecords(), 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v1.pack")
	if err := WriteFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.Info.Mode != LoadLegacyV1 || got.Info.Version != 1 {
		t.Errorf("Info = %+v, want legacy-v1 version 1", got.Info)
	}
	if got.Info.Notice == "" {
		t.Error("legacy load carries no re-index notice")
	}
	lay := got.DB.Layout()
	if lay == nil {
		t.Fatal("legacy load built no lane layout")
	}
	if lay.IsView() {
		t.Error("legacy layout claims to be a view")
	}
	if got.DB.WordIndex() == nil {
		t.Error("legacy load dropped the word index")
	}
	q := bio.Sequence("ACGTACGTACGT")
	a, err := search.RunCtx(context.Background(), q, got.DB, search.Options{Lanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := search.Run(q, testRecords(), search.Options{Lanes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Hits, b.Hits) {
		t.Errorf("legacy pack hits diverged:\n got %+v\nwant %+v", a.Hits, b.Hits)
	}
}

// v2DiffDB builds a database large enough to exercise lane groups,
// pruning and sharding, returning the records and a homolog-bearing
// query.
func v2DiffDB(t *testing.T) ([]bio.Record, bio.Sequence) {
	t.Helper()
	g := bio.NewGenerator(99)
	q := g.Random(200)
	recs := make([]bio.Record, 60)
	for i := range recs {
		n := 80 + (i*53)%300
		recs[i] = bio.Record{ID: fmt.Sprintf("r%03d", i), Seq: g.Random(n)}
	}
	for i := 0; i < 6; i++ {
		frag := q[10*i : 10*i+120]
		recs[i*9].Seq = append(append(bio.Sequence(nil), recs[i*9].Seq[:40]...),
			g.MutatedCopy(frag, bio.DefaultMutationModel())...)
	}
	return recs, q
}

// TestV2SearchDifferential is the tentpole's exactness pin: every scan
// mode over an mmap-opened v2 pack returns bit-identical hits to the
// same scan over an in-memory database prepared from the same records.
func TestV2SearchDifferential(t *testing.T) {
	recs, q := v2DiffDB(t)
	p, err := Build(recs, 11)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.pack")
	if err := WriteFileV2(path, p); err != nil {
		t.Fatal(err)
	}
	opened, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	if runtime.GOOS == "linux" && opened.Info.Mode != LoadMMap {
		t.Fatalf("differential wants the mmap path, got %v", opened.Info.Mode)
	}
	fresh := search.NewDB(recs)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		opt  search.Options
	}{
		{"inter8", search.Options{Lanes: 8, TopK: 8}},
		{"inter8 pruned", search.Options{Lanes: 8, TopK: 8, Prune: true}},
		{"pruned prefiltered", search.Options{TopK: 8, Prune: true, Prefilter: true}},
		{"dispatch fixed", search.Options{TopK: 8, Dispatch: "fixed"}},
		{"int16", search.Options{Lanes: 16, TopK: 8}},
		{"scalar", search.Options{Lanes: 1, TopK: 8}},
	} {
		got, err := search.RunCtx(ctx, q, opened.DB, tc.opt)
		if err != nil {
			t.Fatalf("%s over pack: %v", tc.name, err)
		}
		want, err := search.RunCtx(ctx, q, fresh, tc.opt)
		if err != nil {
			t.Fatalf("%s over fresh DB: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got.Hits, want.Hits) {
			t.Errorf("%s: pack hits diverge from in-memory hits", tc.name)
		}
		if got.Searched != want.Searched || got.Cells != want.Cells {
			t.Errorf("%s: pack scanned %d recs/%d cells, in-memory %d/%d",
				tc.name, got.Searched, got.Cells, want.Searched, want.Cells)
		}
	}

	// Batch mode over the pack.
	queries := []search.BatchQuery{{Seq: q}, {Seq: q[:90]}, {Seq: q[40:]}}
	gb, err := search.RunBatch(ctx, queries, opened.DB, search.Options{Lanes: 8, TopK: 6})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := search.RunBatch(ctx, queries, fresh, search.Options{Lanes: 8, TopK: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wb {
		if !reflect.DeepEqual(gb[i].Result.Hits, wb[i].Result.Hits) {
			t.Errorf("batch query %d: pack hits diverge", i)
		}
	}

	// Sharded mode: workers attach to the pack's mapped layout slices.
	sopt := search.Options{TopK: 8, Prune: true}
	cl, err := shard.New(opened.DB, shard.Options{Shards: 3, Search: sopt})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gs, err := cl.Search(ctx, q, sopt)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := search.RunCtx(ctx, q, fresh, sopt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs.Hits, ws.Hits) {
		t.Error("sharded pack hits diverge from single-node in-memory hits")
	}
}

// FuzzDecodeV2 flips bytes anywhere in a valid v2 blob. Every mutant
// must either be rejected or decode to exactly the original database —
// the latter happens only when the flip lands in inter-section zero
// padding, which no view ever reads.
func FuzzDecodeV2(f *testing.F) {
	p, err := Build(testRecords(), 4)
	if err != nil {
		f.Fatal(err)
	}
	base, err := EncodeV2(p)
	if err != nil {
		f.Fatal(err)
	}
	want, err := decodeV2(alignedCopy(base), Info{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint32(8), byte(0x01))
	f.Add(uint32(v2FixedHdr), byte(0x80))
	f.Add(uint32(pageAlign), byte(0x40))
	f.Add(uint32(len(base)-1), byte(0xff))
	f.Fuzz(func(t *testing.T, pos uint32, flip byte) {
		blob := append([]byte(nil), base...)
		blob[int(pos)%len(blob)] ^= flip | 1
		got, err := decodeV2(alignedCopy(blob), Info{})
		if err != nil {
			return
		}
		grecs, wrecs := got.DB.Records(), want.DB.Records()
		if len(grecs) != len(wrecs) {
			t.Fatalf("accepted mutant decodes %d records, want %d", len(grecs), len(wrecs))
		}
		for i := range wrecs {
			if grecs[i].ID != wrecs[i].ID || grecs[i].Description != wrecs[i].Description ||
				!bytes.Equal(grecs[i].Seq, wrecs[i].Seq) {
				t.Fatalf("accepted mutant changed record %d", i)
			}
		}
		if !reflect.DeepEqual(got.DB.Order(), want.DB.Order()) {
			t.Fatal("accepted mutant changed the scan order")
		}
		if got.Info.LayoutRebuilt {
			// A padding flip touches no section, so the layout must have
			// validated; anything else had to be caught above.
			t.Fatal("accepted mutant forced a layout rebuild")
		}
	})
}
