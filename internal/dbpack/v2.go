package dbpack

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"

	"genomedsm/internal/bio"
	"genomedsm/internal/blast"
	"genomedsm/internal/search"
)

// Pack format v2 — the zero-copy container (DESIGN.md §12).
//
// Where v1 is a varint value stream that must be decoded into heap
// objects record by record, v2 lays every array the scan needs out as
// raw little-endian bytes in page-aligned, individually-checksummed
// sections, so `dbpack.Open` can mmap the file and hand internal/search
// direct views: record sequences are subslices of the mapped seq
// section, and the precomputed lane-group layout (group word offsets +
// lane-interleaved code words, exactly the shape bio.PackedProfile is
// built from) is reinterpreted in place as []uint64. Load time becomes
// validate-header-and-map instead of decode-and-rebuild.
//
//	offset 0   magic "GDMPACK\x02"
//	       8   u32 version (=2)
//	      12   u32 section count
//	      16   u32 prefilter word size (0 = no blast section)
//	      20   u32 record count
//	      24   u64 total bases
//	      32   section table: count × {u32 kind, u32 zero, u64 off,
//	           u64 len, u64 FNV-1a} — offsets ascending, page-aligned
//	       …   u64 header FNV-1a (over every header byte before it)
//	       …   zero padding to the first page boundary, then the
//	           sections, each zero-padded to page alignment
//
// Integrity: the header checksum covers the section table, and each
// section carries its own FNV-1a, so a byte flip anywhere in described
// bytes is detected at Open (inter-section zero padding is the only
// undescribed region; flipping it cannot change what any view sees).
// Consistency: the scan order is revalidated against the canonical
// total order, the length table against the record views, the posting
// table against blast's restore checks, and the lane-group words are
// recomputed from the sequence views and compared — a forged-but-
// checksummed lane section is therefore detected and rebuilt in heap,
// never trusted: it can only slow a load, never corrupt a result.
const (
	magicV2       = "GDMPACK\x02"
	packVersionV2 = 2
	// pageAlign is the section alignment: a page, so mmap'd sections can
	// be reinterpreted as []uint64 (mmap bases are page-aligned) and
	// section starts never share a cache line with foreign bytes.
	pageAlign = 4096

	secMeta     = 1 // per record: uvarint-framed ID and description
	secSeqOff   = 2 // (n+1) × u64: record byte offsets into secSeq
	secSeq      = 3 // concatenated sequence bytes, record order
	secOrder    = 4 // n × u32: canonical scan order (rank → record)
	secLens     = 5 // n × u32: record lengths in scan-rank order
	secBlast    = 6 // prefilter word index (present iff word ≠ 0)
	secGroupOff = 7 // (ngroups+1) × u64: lane-group word offsets
	secLanes    = 8 // lane-interleaved code words, u64 each

	v2FixedHdr = 32
	v2SecHdr   = 32
	// maxSections bounds the table before it is trusted: v2 defines 8
	// section kinds and each may appear once.
	maxSections = 8
)

// LoadMode reports how a pack's bytes got into memory.
type LoadMode int

const (
	// LoadMemory marks a pack built in-process (Build), not loaded.
	LoadMemory LoadMode = iota
	// LoadMMap marks a v2 pack whose sections are mmap'd views.
	LoadMMap
	// LoadCopy marks a v2 pack read into one aligned buffer (mmap
	// unavailable or refused); views still point into that buffer.
	LoadCopy
	// LoadLegacyV1 marks a v1 pack decoded by the legacy path.
	LoadLegacyV1
)

func (m LoadMode) String() string {
	switch m {
	case LoadMMap:
		return "mmap"
	case LoadCopy:
		return "copy"
	case LoadLegacyV1:
		return "legacy-v1"
	default:
		return "memory"
	}
}

// Info describes how a pack was loaded — surfaced through /statsz.
type Info struct {
	// Mode is the load mode of the backing bytes.
	Mode LoadMode
	// Version is the pack format version of the source file (0 for an
	// in-process Build).
	Version int
	// MappedBytes is the size of the mmap'd region backing zero-copy
	// views (0 unless Mode is LoadMMap).
	MappedBytes int64
	// HeapBytes estimates the heap-resident side of the load: decoded
	// metadata, the word index, and — for legacy or copy loads — the
	// sequence/layout bytes themselves.
	HeapBytes int64
	// LayoutRebuilt reports that the stored lane-group section failed
	// semantic validation against the sequence bytes and was rebuilt in
	// heap (forged or stale derived data; the load slows, results
	// cannot change).
	LayoutRebuilt bool
	// Notice is a human-readable load remark, e.g. the legacy-v1
	// re-index suggestion.
	Notice string
}

// hostLittleEndian gates the zero-copy []byte→[]uint64 reinterpretation:
// the file is little-endian, so on a big-endian host every word view
// falls back to an allocating decode.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// u64sView reinterprets b as []uint64 in place when the host is
// little-endian and b is 8-aligned; ok=false demands the decode fallback.
func u64sView(b []byte) ([]uint64, bool) {
	if !hostLittleEndian || len(b)%8 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, false
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8), true
}

func u64sDecode(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// sum64 is the v2 integrity checksum: FNV-1a folded over 8-byte words
// instead of single bytes. One multiply per 8 bytes keeps validation
// off the cold-start critical path (a pack is checksummed end to end on
// every Open); the mixing is the same xor-then-multiply as byte FNV,
// ample for corruption detection, which is all the format asks of it —
// forgery resistance comes from semantic revalidation, not the hash.
func sum64(b []byte) uint64 {
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * prime
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return h
}

type v2Section struct {
	kind uint32
	off  uint64
	len  uint64
	sum  uint64
}

// EncodeV2 serializes the pack in format v2. The blob is deterministic
// for the same records, word size and layout (pinned by the golden
// test). The DB's lane-group layout is computed here when missing —
// index time is exactly where that cost belongs.
func EncodeV2(p *Pack) ([]byte, error) {
	recs := p.DB.Records()
	order := p.DB.Order()
	lay := p.DB.EnsureLayout()

	var meta, seqoff, seq, ordb, lensb, blastb, groupoff, lanes []byte
	for _, r := range recs {
		meta = binary.AppendUvarint(meta, uint64(len(r.ID)))
		meta = append(meta, r.ID...)
		meta = binary.AppendUvarint(meta, uint64(len(r.Description)))
		meta = append(meta, r.Description...)
	}
	var off uint64
	for _, r := range recs {
		seqoff = binary.LittleEndian.AppendUint64(seqoff, off)
		seq = append(seq, r.Seq...)
		off += uint64(len(r.Seq))
	}
	seqoff = binary.LittleEndian.AppendUint64(seqoff, off)
	for _, idx := range order {
		ordb = binary.LittleEndian.AppendUint32(ordb, uint32(idx))
		lensb = binary.LittleEndian.AppendUint32(lensb, uint32(len(recs[idx].Seq)))
	}
	if p.Word != 0 {
		ix := p.DB.WordIndex()
		if ix == nil {
			return nil, fmt.Errorf("dbpack: word size %d set but no index attached", p.Word)
		}
		words, postings := ix.Export()
		blastb = binary.LittleEndian.AppendUint32(blastb, uint32(len(words)))
		for i, word := range words {
			blastb = binary.LittleEndian.AppendUint32(blastb, word)
			blastb = binary.LittleEndian.AppendUint32(blastb, uint32(len(postings[i])))
		}
		for _, ps := range postings {
			for _, pt := range ps {
				blastb = binary.LittleEndian.AppendUint32(blastb, uint32(pt.Rec))
				blastb = binary.LittleEndian.AppendUint32(blastb, uint32(pt.Pos))
			}
		}
	}
	for _, o := range lay.Offsets() {
		groupoff = binary.LittleEndian.AppendUint64(groupoff, uint64(o))
	}
	for _, w := range lay.Words() {
		lanes = binary.LittleEndian.AppendUint64(lanes, w)
	}

	type blob struct {
		kind uint32
		data []byte
	}
	blobs := []blob{
		{secMeta, meta}, {secSeqOff, seqoff}, {secSeq, seq},
		{secOrder, ordb}, {secLens, lensb},
	}
	if p.Word != 0 {
		blobs = append(blobs, blob{secBlast, blastb})
	}
	blobs = append(blobs, blob{secGroupOff, groupoff}, blob{secLanes, lanes})

	hdrLen := v2FixedHdr + len(blobs)*v2SecHdr + 8
	pos := uint64(alignUp(hdrLen))
	out := make([]byte, 0, int(pos)+len(seq)+len(lanes)+pageAlign*len(blobs))
	out = append(out, magicV2...)
	out = binary.LittleEndian.AppendUint32(out, packVersionV2)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(blobs)))
	out = binary.LittleEndian.AppendUint32(out, uint32(p.Word))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(recs)))
	out = binary.LittleEndian.AppendUint64(out, uint64(p.DB.TotalBases()))
	for _, b := range blobs {
		out = binary.LittleEndian.AppendUint32(out, b.kind)
		out = binary.LittleEndian.AppendUint32(out, 0)
		out = binary.LittleEndian.AppendUint64(out, pos)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(b.data)))
		out = binary.LittleEndian.AppendUint64(out, sum64(b.data))
		pos = uint64(alignUp(int(pos) + len(b.data)))
	}
	out = binary.LittleEndian.AppendUint64(out, sum64(out))
	for _, b := range blobs {
		out = append(out, make([]byte, alignUp(len(out))-len(out))...)
		out = append(out, b.data...)
	}
	return out, nil
}

func alignUp(n int) int { return (n + pageAlign - 1) &^ (pageAlign - 1) }

// decodeV2 parses and validates a v2 blob whose magic has already been
// checked. data must be 8-aligned (an mmap'd region or readAligned
// buffer); the returned pack's sequences and lane layout are views into
// it wherever the host allows, so data must stay alive — and unwritten
// — until the pack is discarded.
func decodeV2(data []byte, info Info) (*Pack, error) {
	if len(data) < v2FixedHdr+8 {
		return nil, fmt.Errorf("dbpack: truncated v2 header (%d bytes)", len(data))
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != packVersionV2 {
		return nil, fmt.Errorf("dbpack: pack format version %d, want %d", v, packVersionV2)
	}
	ns := int(binary.LittleEndian.Uint32(data[12:]))
	word := int(binary.LittleEndian.Uint32(data[16:]))
	n := int(binary.LittleEndian.Uint32(data[20:]))
	total := binary.LittleEndian.Uint64(data[24:])
	if ns <= 0 || ns > maxSections {
		return nil, fmt.Errorf("dbpack: implausible section count %d", ns)
	}
	hdrLen := v2FixedHdr + ns*v2SecHdr
	if len(data) < hdrLen+8 {
		return nil, fmt.Errorf("dbpack: truncated section table")
	}
	if got, want := sum64(data[:hdrLen]), binary.LittleEndian.Uint64(data[hdrLen:]); got != want {
		return nil, fmt.Errorf("dbpack: header checksum mismatch")
	}
	secs := map[uint32][]byte{}
	for i := 0; i < ns; i++ {
		hdr := data[v2FixedHdr+i*v2SecHdr:]
		s := v2Section{
			kind: binary.LittleEndian.Uint32(hdr),
			off:  binary.LittleEndian.Uint64(hdr[8:]),
			len:  binary.LittleEndian.Uint64(hdr[16:]),
			sum:  binary.LittleEndian.Uint64(hdr[24:]),
		}
		if s.kind < secMeta || s.kind > secLanes {
			return nil, fmt.Errorf("dbpack: unknown section kind %d", s.kind)
		}
		if _, dup := secs[s.kind]; dup {
			return nil, fmt.Errorf("dbpack: duplicate section kind %d", s.kind)
		}
		if s.off%pageAlign != 0 {
			return nil, fmt.Errorf("dbpack: section %d misaligned at offset %d (need %d-byte alignment)", s.kind, s.off, pageAlign)
		}
		if s.off > uint64(len(data)) || s.len > uint64(len(data))-s.off {
			return nil, fmt.Errorf("dbpack: section %d [%d,+%d) beyond %d-byte pack (truncated?)", s.kind, s.off, s.len, len(data))
		}
		b := data[s.off : s.off+s.len]
		if sum64(b) != s.sum {
			return nil, fmt.Errorf("dbpack: section %d checksum mismatch", s.kind)
		}
		secs[s.kind] = b
	}
	for _, kind := range []uint32{secMeta, secSeqOff, secSeq, secOrder, secLens, secGroupOff, secLanes} {
		if _, ok := secs[kind]; !ok {
			return nil, fmt.Errorf("dbpack: missing section kind %d", kind)
		}
	}

	// Records: sequence bytes are views into the seq section; only the
	// ID/description strings are decoded to heap.
	seqoffB, seqB := secs[secSeqOff], secs[secSeq]
	if len(seqoffB) != 8*(n+1) {
		return nil, fmt.Errorf("dbpack: seq offset table holds %d bytes for %d records", len(seqoffB), n)
	}
	seqoff, ok := u64sView(seqoffB)
	if !ok {
		seqoff = u64sDecode(seqoffB)
	}
	if seqoff[0] != 0 || seqoff[n] != uint64(len(seqB)) {
		return nil, fmt.Errorf("dbpack: seq offsets cover [%d,%d) of %d sequence bytes", seqoff[0], seqoff[n], len(seqB))
	}
	recs := make([]bio.Record, n)
	meta := secs[secMeta]
	var heapBytes int64
	for i := range recs {
		id, rest, err := uvarintBytes(meta)
		if err != nil {
			return nil, fmt.Errorf("dbpack: record %d metadata: %w", i, err)
		}
		desc, rest, err := uvarintBytes(rest)
		if err != nil {
			return nil, fmt.Errorf("dbpack: record %d metadata: %w", i, err)
		}
		meta = rest
		if seqoff[i+1] < seqoff[i] || seqoff[i+1] > uint64(len(seqB)) {
			return nil, fmt.Errorf("dbpack: seq offsets invalid at record %d", i)
		}
		recs[i] = bio.Record{
			ID:          string(id),
			Description: string(desc),
			Seq:         bio.Sequence(seqB[seqoff[i]:seqoff[i+1]]),
		}
		heapBytes += int64(len(id) + len(desc))
	}
	if len(meta) != 0 {
		return nil, fmt.Errorf("dbpack: %d trailing metadata bytes", len(meta))
	}

	ordB, lensB := secs[secOrder], secs[secLens]
	if len(ordB) != 4*n || len(lensB) != 4*n {
		return nil, fmt.Errorf("dbpack: order/length tables hold %d/%d bytes for %d records", len(ordB), len(lensB), n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = int(binary.LittleEndian.Uint32(ordB[4*i:]))
		if order[i] >= n {
			return nil, fmt.Errorf("dbpack: order rank %d names record %d of %d", i, order[i], n)
		}
	}
	db, err := search.PreparedDB(recs, order)
	if err != nil {
		return nil, fmt.Errorf("dbpack: %w", err)
	}
	if db.TotalBases() != int64(total) {
		return nil, fmt.Errorf("dbpack: header claims %d total bases, records hold %d", total, db.TotalBases())
	}
	for i, idx := range order {
		if int(binary.LittleEndian.Uint32(lensB[4*i:])) != len(recs[idx].Seq) {
			return nil, fmt.Errorf("dbpack: length table disagrees with record %d", idx)
		}
	}
	heapBytes += int64(n) * int64(unsafe.Sizeof(bio.Record{}))

	p := &Pack{DB: db, Word: word, Info: info}
	if word != 0 {
		ix, hb, err := decodeBlastV2(secs[secBlast], recs, word)
		if err != nil {
			return nil, err
		}
		db.SetWordIndex(ix)
		heapBytes += hb
	} else if len(secs[secBlast]) != 0 {
		return nil, fmt.Errorf("dbpack: blast section present but word size is 0")
	}

	// Lane-group layout: reinterpret the mapped words in place, then
	// prove them consistent with the sequence bytes. Derived data never
	// gets the benefit of the doubt: a section that passes its checksum
	// but disagrees with the records (a forged or stale layout) is
	// rebuilt from the records — the load slows, the results cannot
	// change.
	goffB, lanesB := secs[secGroupOff], secs[secLanes]
	lay, lerr := layoutFromSections(goffB, lanesB)
	if lerr == nil {
		lerr = lay.Validate(db)
	}
	if lerr == nil {
		lerr = db.SetLayout(lay)
	}
	if lerr != nil {
		db.EnsureLayout()
		p.Info.LayoutRebuilt = true
		p.Info.Notice = fmt.Sprintf("lane layout rebuilt: %v", lerr)
		heapBytes += db.Layout().Bytes()
	} else if !lay.IsView() {
		heapBytes += lay.Bytes()
	}
	if p.Info.Mode == LoadCopy {
		heapBytes += int64(len(data))
	}
	p.Info.HeapBytes = heapBytes
	return p, nil
}

// layoutFromSections builds the layout view over the group-offset and
// lane-word sections, decoding copies on hosts that cannot view them.
func layoutFromSections(goffB, lanesB []byte) (*search.Layout, error) {
	if len(goffB)%8 != 0 || len(lanesB)%8 != 0 {
		return nil, fmt.Errorf("dbpack: layout sections hold %d/%d bytes, want multiples of 8", len(goffB), len(lanesB))
	}
	words, ok := u64sView(lanesB)
	if !ok {
		words = u64sDecode(lanesB)
	}
	goff, ok := u64sView(goffB)
	if !ok {
		goff = u64sDecode(goffB)
	}
	offs := make([]int64, len(goff))
	for i, o := range goff {
		if o > uint64(len(words)) {
			return nil, fmt.Errorf("dbpack: group offset %d beyond %d layout words", o, len(words))
		}
		offs[i] = int64(o)
	}
	return search.NewLayoutView(offs, words)
}

func decodeBlastV2(b []byte, recs []bio.Record, word int) (*blast.DBWordIndex, int64, error) {
	if len(b) < 4 {
		return nil, 0, fmt.Errorf("dbpack: blast section too short")
	}
	nw := int(binary.LittleEndian.Uint32(b))
	if nw < 0 || len(b) < 4+8*nw {
		return nil, 0, fmt.Errorf("dbpack: blast section holds %d bytes for %d words", len(b), nw)
	}
	words := make([]uint32, nw)
	counts := make([]int, nw)
	postings := make([][]blast.DBPosting, nw)
	totalPosts := 0
	for i := 0; i < nw; i++ {
		words[i] = binary.LittleEndian.Uint32(b[4+8*i:])
		counts[i] = int(binary.LittleEndian.Uint32(b[8+8*i:]))
		if i > 0 && words[i] <= words[i-1] {
			return nil, 0, fmt.Errorf("dbpack: word table not strictly ascending at entry %d", i)
		}
		if counts[i] < 0 || counts[i] > len(b) {
			return nil, 0, fmt.Errorf("dbpack: implausible posting count %d", counts[i])
		}
		totalPosts += counts[i]
	}
	if len(b) != 4+8*nw+8*totalPosts {
		return nil, 0, fmt.Errorf("dbpack: blast section holds %d bytes, want %d", len(b), 4+8*nw+8*totalPosts)
	}
	flat := b[4+8*nw:]
	// DBPosting is two int32s — byte-identical to the file's {u32 rec,
	// u32 pos} little-endian pairs — so on a little-endian host the
	// posting lists are zero-copy subslices of the mapped section; the
	// decode fallback batches them into one flat allocation either way.
	var flatPost []blast.DBPosting
	if totalPosts > 0 {
		if hostLittleEndian && uintptr(unsafe.Pointer(&flat[0]))%unsafe.Alignof(blast.DBPosting{}) == 0 {
			flatPost = unsafe.Slice((*blast.DBPosting)(unsafe.Pointer(&flat[0])), totalPosts)
		} else {
			flatPost = make([]blast.DBPosting, totalPosts)
			for j := range flatPost {
				flatPost[j] = blast.DBPosting{
					Rec: int32(binary.LittleEndian.Uint32(flat[8*j:])),
					Pos: int32(binary.LittleEndian.Uint32(flat[8*j+4:])),
				}
			}
		}
	}
	pos := 0
	for i := 0; i < nw; i++ {
		postings[i] = flatPost[pos : pos+counts[i] : pos+counts[i]]
		pos += counts[i]
	}
	ix, err := blast.RestoreDBWordIndex(recs, word, words, postings)
	if err != nil {
		return nil, 0, fmt.Errorf("dbpack: %w", err)
	}
	return ix, int64(len(b)), nil
}

func uvarintBytes(b []byte) ([]byte, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("bad uvarint frame")
	}
	b = b[n:]
	if v > uint64(len(b)) {
		return nil, nil, fmt.Errorf("frame of %d bytes in %d remaining", v, len(b))
	}
	return b[:v], b[v:], nil
}

// readAligned reads the whole file into an 8-aligned heap buffer, so
// the same zero-copy views work in LoadCopy mode as under mmap.
func readAligned(f *os.File, size int64) ([]byte, error) {
	buf := make([]uint64, (size+7)/8)
	if len(buf) == 0 {
		return nil, fmt.Errorf("dbpack: empty pack file")
	}
	b := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), size)
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteFileV2 writes the pack atomically in format v2 (temp file,
// fsync, rename — same discipline as WriteFile).
func WriteFileV2(path string, p *Pack) error {
	blob, err := EncodeV2(p)
	if err != nil {
		return err
	}
	return writeBlob(path, blob)
}

// Open loads a pack file in whichever format it carries: a v2 pack is
// mmap'd (falling back to one aligned read when the platform refuses)
// and validated section by section; a v1 pack goes through the legacy
// decoder with a re-index notice, and gets its lane layout built in
// heap so both generations scan through the same fast path. Close the
// returned pack when done — and never after handing its DB to a scan
// still running — to release the mapping.
func Open(path string) (*Pack, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var head [8]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("%s: dbpack: not a database pack (%v)", path, err)
	}
	switch string(head[:]) {
	case magic: // v1
		p, err := ReadFile(path)
		if err != nil {
			return nil, err
		}
		p.DB.EnsureLayout()
		p.Info = Info{
			Mode:      LoadLegacyV1,
			Version:   1,
			HeapBytes: p.DB.TotalBases() + p.DB.Layout().Bytes(),
			Notice:    "legacy v1 pack: re-index to v2 for zero-copy mmap loading",
		}
		return p, nil
	case magicV2:
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		size := st.Size()
		info := Info{Mode: LoadMMap, Version: packVersionV2, MappedBytes: size}
		data, closer, merr := mmapFile(f, size)
		if merr != nil {
			info = Info{Mode: LoadCopy, Version: packVersionV2}
			if _, err := f.Seek(0, io.SeekStart); err != nil {
				return nil, err
			}
			if data, err = readAligned(f, size); err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			closer = nil
		}
		p, err := decodeV2(data, info)
		if err != nil {
			if closer != nil {
				closer()
			}
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		p.close = closer
		return p, nil
	default:
		return nil, fmt.Errorf("%s: dbpack: not a database pack (bad magic)", path)
	}
}

// Close releases the pack's mapped region, if any. The pack's DB — its
// sequences and lane layout — must not be used afterwards.
func (p *Pack) Close() error {
	if p.close == nil {
		return nil
	}
	c := p.close
	p.close = nil
	return c()
}
