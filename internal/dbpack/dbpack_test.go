package dbpack

import (
	"bytes"
	"encoding/hex"
	"hash/fnv"
	"path/filepath"
	"strings"
	"testing"

	"genomedsm/internal/bio"
	"genomedsm/internal/recovery"
)

// goldenPackHex pins the wire bytes of the TestGoldenBlob fixture.
const goldenPackHex = "47444d5041434b01010102026161016205414347544103616263000447" +
	"434154020002020a0808031b0200006c020002930102020037c6f5e014ef3eff"

// testRecords is a small fixed database exercising the format corners:
// mixed lengths with ties (the canonical order must break them by
// index), a description, an empty description, an N run (resets the
// word indexer), and a record shorter than the word size (contributes
// no postings).
func testRecords() []bio.Record {
	return []bio.Record{
		{ID: "r0", Description: "first record", Seq: bio.Sequence("ACGTACGTACGTACGT")},
		{ID: "r1", Description: "", Seq: bio.Sequence("TTTTCCCCGGGGAAAA")},
		{ID: "r2", Description: "short", Seq: bio.Sequence("ACG")},
		{ID: "r3", Description: "with N", Seq: bio.Sequence("ACGTNNACGTACGTAATT")},
		{ID: "r4", Description: "long", Seq: bio.Sequence("ACGTACGTACGTACGTACGTACGTACGT")},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, word := range []int{0, 4, 11} {
		p, err := Build(testRecords(), word)
		if err != nil {
			t.Fatalf("Build(word=%d): %v", word, err)
		}
		got, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("Decode(word=%d): %v", word, err)
		}
		if got.Word != word {
			t.Errorf("word %d round-tripped to %d", word, got.Word)
		}
		want := testRecords()
		recs := got.DB.Records()
		if len(recs) != len(want) {
			t.Fatalf("got %d records, want %d", len(recs), len(want))
		}
		for i := range want {
			if recs[i].ID != want[i].ID || recs[i].Description != want[i].Description ||
				!bytes.Equal(recs[i].Seq, want[i].Seq) {
				t.Errorf("record %d round-tripped to %+v, want %+v", i, recs[i], want[i])
			}
		}
		if word == 0 {
			if got.DB.WordIndex() != nil {
				t.Error("word 0 pack decoded with a word index")
			}
			continue
		}
		ix := got.DB.WordIndex()
		if ix == nil {
			t.Fatalf("word %d pack decoded without its index", word)
		}
		orig := p.DB.WordIndex()
		if ix.Word() != word || ix.Postings() != orig.Postings() {
			t.Errorf("index round-tripped to (w=%d, %d postings), want (w=%d, %d)",
				ix.Word(), ix.Postings(), word, orig.Postings())
		}
		// The restored index must score identically to the built one.
		q := bio.Sequence("ACGTACGTACGT")
		sc := bio.DefaultScoring()
		a, b := orig.SeedScores(q, sc, 0), ix.SeedScores(q, sc, 0)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("restored index seed score for record %d: %d, want %d", i, b[i], a[i])
			}
		}
	}
}

func TestWriteReadFile(t *testing.T) {
	p, err := Build(testRecords(), 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.pack")
	if err := WriteFile(path, p); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.DB.Size() != len(testRecords()) || got.Word != 4 {
		t.Errorf("loaded pack has %d records word %d, want %d records word 4",
			got.DB.Size(), got.Word, len(testRecords()))
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.pack")); err == nil {
		t.Error("ReadFile of a missing file succeeded")
	}
}

// TestGoldenBlob pins the encoded bytes of a tiny fixed pack. A change
// here is a wire-format change: bump packVersion and regenerate the
// constant (the failure message prints the new hex), never silently
// re-pin — existing pack files in the field would otherwise mis-decode.
func TestGoldenBlob(t *testing.T) {
	p, err := Build([]bio.Record{
		{ID: "aa", Description: "b", Seq: bio.Sequence("ACGTA")},
		{ID: "abc", Description: "", Seq: bio.Sequence("GCAT")},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := hex.EncodeToString(p.Encode())
	if got != goldenPackHex {
		t.Errorf("pack wire format changed:\n got %s\nwant %s\nIf intentional, bump packVersion and re-pin.", got, goldenPackHex)
	}
	// The golden bytes must also still decode.
	blob, err := hex.DecodeString(goldenPackHex)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Decode(blob)
	if err != nil {
		t.Fatalf("golden blob no longer decodes: %v", err)
	}
	if dp.DB.Size() != 2 || dp.Word != 4 {
		t.Errorf("golden blob decoded to %d records word %d, want 2 records word 4", dp.DB.Size(), dp.Word)
	}
}

func TestDecodeRejects(t *testing.T) {
	p, err := Build(testRecords(), 4)
	if err != nil {
		t.Fatal(err)
	}
	good := p.Encode()

	corrupt := append([]byte(nil), good...)
	corrupt[len(magic)+10] ^= 0xff

	truncated := good[:len(good)/2]

	staleCodec := append([]byte(nil), good...)
	staleCodec[len(magic)] = 99 // codec version byte — breaks the checksum too

	// A stale *pack* version with a valid checksum: re-encode by hand.
	stalePack := func() []byte {
		blob := append([]byte(nil), good[len(magic):]...)
		payload := blob[:len(blob)-8]
		if payload[1] != packVersion {
			t.Fatalf("pack version byte not where expected")
		}
		payload[1] = packVersion + 1
		return append([]byte(magic), resum(payload)...)
	}()

	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"wrong magic", append([]byte("NOTAPACK"), good[len(magic):]...), "bad magic"},
		{"truncated", truncated, "checksum"},
		{"corrupt payload", corrupt, "checksum"},
		{"stale codec version", staleCodec, "checksum"},
		{"stale pack version", stalePack, "format version"},
	}
	for _, tc := range cases {
		_, err := Decode(tc.blob)
		if err == nil {
			t.Errorf("%s: Decode succeeded", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDecodeRejectsBadOrder proves the structural validation: a pack
// whose checksum is valid but whose scan order is not the canonical one
// is rejected, so a scan can trust a loaded DB's grouping unconditionally.
func TestDecodeRejectsBadOrder(t *testing.T) {
	p, err := Build(testRecords(), 0)
	if err != nil {
		t.Fatal(err)
	}
	good := p.Encode()
	// The order table is the first Int32s after the records. Rather than
	// hunt bytes, rebuild the blob with a swapped order via the internals.
	order := p.DB.Order()
	swapped := append([]int(nil), order...)
	swapped[0], swapped[1] = swapped[1], swapped[0]
	blob := encodeWithOrder(t, testRecords(), swapped)
	if _, err := Decode(blob); err == nil || !strings.Contains(err.Error(), "canonical") {
		t.Errorf("swapped order decoded with err=%v, want canonical-order rejection", err)
	}
	// Sanity: the unmodified blob still decodes.
	if _, err := Decode(good); err != nil {
		t.Fatalf("good blob rejected: %v", err)
	}
}

func FuzzDecode(f *testing.F) {
	for _, word := range []int{0, 4} {
		p, err := Build(testRecords(), word)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p.Encode())
	}
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, blob []byte) {
		// Decode must never panic, and anything it accepts must be a
		// well-formed DB whose order validation held.
		p, err := Decode(blob)
		if err != nil {
			return
		}
		if p.DB == nil {
			t.Fatal("Decode returned nil DB without error")
		}
		if p.DB.Size() != len(p.DB.Records()) {
			t.Fatal("inconsistent record count")
		}
	})
}

// FuzzDecodeMutated flips bytes of a valid pack: every mutation must be
// either rejected or yield a pack equal to the original (a flip in
// unused varint headroom cannot occur with this codec, so acceptance of
// a mutant means checksum collision — vanishingly unlikely, and caught).
func FuzzDecodeMutated(f *testing.F) {
	p, err := Build(testRecords(), 4)
	if err != nil {
		f.Fatal(err)
	}
	good := p.Encode()
	f.Add(0, byte(0xff))
	f.Add(len(magic), byte(1))
	f.Add(len(good)-1, byte(0x80))
	f.Fuzz(func(t *testing.T, pos int, flip byte) {
		if pos < 0 || pos >= len(good) || flip == 0 {
			return
		}
		mut := append([]byte(nil), good...)
		mut[pos] ^= flip
		if _, err := Decode(mut); err == nil {
			t.Fatalf("byte %d flipped by %#x decoded successfully", pos, flip)
		}
	})
}

// resum recomputes the recovery-codec FNV-1a trailer over payload.
func resum(payload []byte) []byte {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum(payload)
}

// encodeWithOrder encodes records with an arbitrary (non-canonical)
// order table and a valid checksum — test-only, to prove Decode's
// structural validation rejects what the checksum cannot.
func encodeWithOrder(t *testing.T, recs []bio.Record, order []int) []byte {
	t.Helper()
	w := recovery.NewWriter()
	w.Uint(packVersion)
	w.Uint(uint64(len(recs)))
	for _, r := range recs {
		w.Bytes([]byte(r.ID))
		w.Bytes([]byte(r.Description))
		w.Bytes(r.Seq)
	}
	ord32 := make([]int32, len(order))
	lens := make([]int32, len(order))
	for i, idx := range order {
		ord32[i] = int32(idx)
		lens[i] = int32(len(recs[idx].Seq))
	}
	w.Int32s(ord32)
	w.Int32s(lens)
	w.Int(0)
	return append([]byte(magic), w.Finish()...)
}

func TestBuildRejectsBadWord(t *testing.T) {
	for _, w := range []int{1, 3, 16, -2} {
		if _, err := Build(testRecords(), w); err == nil {
			t.Errorf("Build accepted word size %d", w)
		}
	}
}
