package cluster

import (
	"fmt"
	"strings"
)

// Clock is a per-node virtual clock with category accounting. A Clock is
// owned by exactly one node goroutine; cross-node time only flows through
// explicit timestamps carried on messages, so no locking is needed.
type Clock struct {
	now float64
	cat [numCategories]float64
}

// Now returns the node's current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by d seconds, attributed to cat.
// Negative d panics: virtual time is monotonic.
func (c *Clock) Advance(d float64, cat Category) {
	if d < 0 {
		panic(fmt.Sprintf("cluster: negative clock advance %g", d))
	}
	c.now += d
	c.cat[cat] += d
}

// AdvanceTo moves the clock to at least t, attributing the wait (if any)
// to cat. It returns the waited duration. Used when a node blocks until
// an event that happens at absolute virtual time t (a lock grant, a
// barrier release, a condition-variable signal).
func (c *Clock) AdvanceTo(t float64, cat Category) float64 {
	if t <= c.now {
		return 0
	}
	d := t - c.now
	c.now = t
	c.cat[cat] += d
	return d
}

// Breakdown summarises where this node's time went.
type Breakdown struct {
	Total float64
	Cat   [int(numCategories)]float64
}

// Breakdown returns a snapshot of the clock's accounting.
func (c *Clock) Breakdown() Breakdown {
	return Breakdown{Total: c.now, Cat: c.cat}
}

// Fraction returns the share of total time spent in cat (0 when the clock
// never advanced).
func (b Breakdown) Fraction(cat Category) float64 {
	if b.Total == 0 {
		return 0
	}
	return b.Cat[cat] / b.Total
}

// Merge returns the aggregate breakdown of several nodes: total is the
// maximum node time (the parallel makespan) and category figures are
// summed across nodes, the convention used by the paper's Fig. 10
// (relative time spent per category across the run).
func Merge(bs []Breakdown) Breakdown {
	var out Breakdown
	for _, b := range bs {
		if b.Total > out.Total {
			out.Total = b.Total
		}
		for i := range b.Cat {
			out.Cat[i] += b.Cat[i]
		}
	}
	return out
}

// String renders the breakdown as percentages of the summed category time,
// Fig.-10 style.
func (b Breakdown) String() string {
	var sum float64
	for _, v := range b.Cat {
		sum += v
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "total %.2fs", b.Total)
	if sum > 0 {
		for cat := Category(0); cat < numCategories; cat++ {
			if b.Cat[cat] > 0 {
				fmt.Fprintf(&sb, " %s %.1f%%", cat, 100*b.Cat[cat]/sum)
			}
		}
	}
	return sb.String()
}

// Speedup returns serial/parallel, the paper's absolute speed-up measure.
func Speedup(serial, parallel float64) float64 {
	if parallel == 0 {
		return 0
	}
	return serial / parallel
}
