// Package cluster provides the virtual-time machinery that stands in for
// the paper's physical testbed (8 × Pentium II 350 MHz, 100 Mbps switched
// Ethernet, NFS). Nodes execute the real algorithms on real memory; every
// DSM interaction and every batch of computed cells advances a per-node
// virtual clock according to the models below, and each advance is
// attributed to a category so the Fig.-10 execution-time breakdown can be
// reported.
//
// Simulated parallel time emerges causally: blocking interactions carry
// virtual timestamps (a message is visible at send-time + message cost; a
// barrier releases everyone at the maximum arrival time), which is exactly
// the mechanism that produces the paper's wavefront pipeline effects.
package cluster

import "fmt"

// Category classifies where virtual time is spent, matching the paper's
// Fig. 10 breakdown (computation, communication, lock+cv, barrier) plus
// disk I/O for the pre-process strategy.
type Category int

// Breakdown categories.
const (
	Compute Category = iota
	Comm             // page fetches, diff propagation
	LockCV           // lock acquire/release and condition-variable waits
	Barrier          // barrier waits
	IO               // disk writes of the pre-process strategy
	Recovery         // failure detection, checkpoint I/O and crash recovery
	numCategories
)

// String names the category as in Fig. 10.
func (c Category) String() string {
	switch c {
	case Compute:
		return "computation"
	case Comm:
		return "communication"
	case LockCV:
		return "lock+cv"
	case Barrier:
		return "barrier"
	case IO:
		return "io"
	case Recovery:
		return "recovery"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// NetworkModel prices messages on the cluster interconnect.
type NetworkModel struct {
	Latency       float64 // seconds end-to-end for a zero-byte message
	Bandwidth     float64 // bytes per second on the wire
	PerMessageCPU float64 // seconds of processing per message at each side
}

// MessageCost returns the virtual seconds between sending a message of the
// given payload size and the receiver being able to act on it.
func (nm NetworkModel) MessageCost(bytes int) float64 {
	cost := nm.Latency + 2*nm.PerMessageCPU
	if nm.Bandwidth > 0 {
		cost += float64(bytes) / nm.Bandwidth
	}
	return cost
}

// RoundTrip prices a request/response exchange where the request carries
// reqBytes and the response respBytes.
func (nm NetworkModel) RoundTrip(reqBytes, respBytes int) float64 {
	return nm.MessageCost(reqBytes) + nm.MessageCost(respBytes)
}

// DiskModel prices the NFS-backed disk of the testbed.
type DiskModel struct {
	Latency   float64 // seconds per operation
	Bandwidth float64 // bytes per second
}

// WriteCost returns the virtual seconds a blocking write of the given size
// takes.
func (dm DiskModel) WriteCost(bytes int) float64 {
	cost := dm.Latency
	if dm.Bandwidth > 0 {
		cost += float64(bytes) / dm.Bandwidth
	}
	return cost
}

// Config bundles all cost models for one simulated cluster.
type Config struct {
	Net  NetworkModel
	Disk DiskModel
	// CellTime is the virtual seconds one dynamic-programming cell takes
	// on a node (calibrated from the paper's serial runs).
	CellTime float64
	// ManagerService is the virtual seconds a lock/barrier/CV manager
	// spends handling one request.
	ManagerService float64
	// PageSize must match the DSM page size so fetch costs are right.
	PageSize int
	// NodeSpeeds, when non-empty, gives per-node relative CPU speeds
	// (1.0 = the calibrated CellTime; 0.5 = half speed). It models the
	// heterogeneous cluster of the paper's future work; empty means a
	// homogeneous cluster.
	NodeSpeeds []float64
	// Hooks carries the optional chaos-layer instrumentation (fault
	// injection, schedule control, deterministic execution gate); nil
	// for normal runs. See faults.go.
	Hooks *Hooks
}

// CellTimeFor returns the per-cell cost on the given node, honouring the
// heterogeneous speed table.
func (c Config) CellTimeFor(node int) float64 {
	if node >= 0 && node < len(c.NodeSpeeds) {
		return c.CellTime / c.NodeSpeeds[node]
	}
	return c.CellTime
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.CellTime < 0 || c.ManagerService < 0 ||
		c.Net.Latency < 0 || c.Net.Bandwidth < 0 || c.Net.PerMessageCPU < 0 ||
		c.Disk.Latency < 0 || c.Disk.Bandwidth < 0 {
		return fmt.Errorf("cluster: negative cost in config %+v", c)
	}
	if c.PageSize <= 0 {
		return fmt.Errorf("cluster: page size must be positive, got %d", c.PageSize)
	}
	for i, s := range c.NodeSpeeds {
		if s <= 0 {
			return fmt.Errorf("cluster: node %d speed %g must be positive", i, s)
		}
	}
	return nil
}

// Calibrated2005 returns the cost model calibrated against the paper's
// testbed:
//
//   - CellTime 1.3 µs: Table 1 reports 3461 s serial for 50 k × 50 k
//     (2.5·10⁹ cells ⇒ 1.38 µs) and 175295 s for 400 k × 400 k (1.10 µs).
//   - 100 Mbps Ethernet ⇒ 12.5 MB/s, ~150 µs small-message latency plus
//     ~50 µs protocol CPU per side (user-level UDP in JIAJIA).
//   - NFS over the same network with client-side buffer caching (the
//     paper credits the buffer cache for immediate I/O being nearly as
//     cheap as deferred): ~0.3 ms per buffered write operation, ~5 MB/s
//     sustained.
//   - 4 KiB pages, the JIAJIA default on x86 Linux.
func Calibrated2005() Config {
	return Config{
		Net:            NetworkModel{Latency: 150e-6, Bandwidth: 12.5e6, PerMessageCPU: 50e-6},
		Disk:           DiskModel{Latency: 0.3e-3, Bandwidth: 5e6},
		CellTime:       1.3e-6,
		ManagerService: 100e-6,
		PageSize:       4096,
	}
}

// Zero returns a config with free communication and computation; useful in
// tests that check protocol behaviour rather than timing.
func Zero() Config {
	return Config{PageSize: 4096}
}
