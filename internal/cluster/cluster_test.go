package cluster

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMessageCost(t *testing.T) {
	nm := NetworkModel{Latency: 1e-3, Bandwidth: 1e6, PerMessageCPU: 1e-4}
	got := nm.MessageCost(1000)
	want := 1e-3 + 2e-4 + 1e-3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("MessageCost = %g, want %g", got, want)
	}
	if rt := nm.RoundTrip(100, 1000); rt <= got {
		t.Errorf("round trip %g not larger than one-way %g", rt, got)
	}
	zero := NetworkModel{}
	if zero.MessageCost(1<<20) != 0 {
		t.Error("zero model should cost nothing")
	}
}

func TestDiskWriteCost(t *testing.T) {
	dm := DiskModel{Latency: 10e-3, Bandwidth: 5e6}
	got := dm.WriteCost(5e6)
	if math.Abs(got-1.01) > 1e-9 {
		t.Errorf("WriteCost = %g, want 1.01", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Calibrated2005().Validate(); err != nil {
		t.Errorf("calibrated config invalid: %v", err)
	}
	if err := Zero().Validate(); err != nil {
		t.Errorf("zero config invalid: %v", err)
	}
	bad := Calibrated2005()
	bad.CellTime = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative cell time accepted")
	}
	bad = Calibrated2005()
	bad.PageSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestCalibrationMatchesPaperSerial(t *testing.T) {
	// Table 1: serial 50 k × 50 k took 3461 s. The calibrated cell time
	// must land within 10% of it.
	cfg := Calibrated2005()
	serial := cfg.CellTime * 50000 * 50000
	if serial < 3461*0.85 || serial > 3461*1.1 {
		t.Errorf("modelled serial 50k time %.0f s, paper says 3461 s", serial)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(2, Compute)
	c.Advance(1, Comm)
	if c.Now() != 3 {
		t.Errorf("now = %g", c.Now())
	}
	b := c.Breakdown()
	if b.Cat[Compute] != 2 || b.Cat[Comm] != 1 || b.Total != 3 {
		t.Errorf("breakdown %+v", b)
	}
	if b.Fraction(Compute) != 2.0/3 {
		t.Errorf("fraction %g", b.Fraction(Compute))
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1, Compute)
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(5, Compute)
	if w := c.AdvanceTo(3, Barrier); w != 0 {
		t.Errorf("waiting for the past returned %g", w)
	}
	if c.Now() != 5 {
		t.Errorf("AdvanceTo moved the clock backwards: %g", c.Now())
	}
	if w := c.AdvanceTo(8, Barrier); w != 3 {
		t.Errorf("wait = %g, want 3", w)
	}
	if c.Breakdown().Cat[Barrier] != 3 {
		t.Error("wait not attributed to barrier")
	}
}

func TestClockMonotonic(t *testing.T) {
	f := func(steps []uint8) bool {
		var c Clock
		last := 0.0
		for _, s := range steps {
			switch s % 3 {
			case 0:
				c.Advance(float64(s), Compute)
			case 1:
				c.AdvanceTo(float64(s), Comm)
			default:
				c.AdvanceTo(c.Now()/2, LockCV)
			}
			if c.Now() < last {
				return false
			}
			last = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := Breakdown{Total: 10}
	a.Cat[Compute] = 8
	a.Cat[Barrier] = 2
	b := Breakdown{Total: 7}
	b.Cat[Compute] = 7
	m := Merge([]Breakdown{a, b})
	if m.Total != 10 {
		t.Errorf("merged total %g, want max 10", m.Total)
	}
	if m.Cat[Compute] != 15 || m.Cat[Barrier] != 2 {
		t.Errorf("merged categories %+v", m.Cat)
	}
	if Merge(nil).Total != 0 {
		t.Error("empty merge not zero")
	}
}

func TestBreakdownString(t *testing.T) {
	var c Clock
	c.Advance(3, Compute)
	c.Advance(1, Barrier)
	s := c.Breakdown().String()
	for _, want := range []string{"computation 75.0%", "barrier 25.0%", "total 4.00s"} {
		if !strings.Contains(s, want) {
			t.Errorf("breakdown string %q missing %q", s, want)
		}
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{Compute: "computation", Comm: "communication",
		LockCV: "lock+cv", Barrier: "barrier", IO: "io"}
	for cat, want := range names {
		if cat.String() != want {
			t.Errorf("%d.String() = %q, want %q", cat, cat.String(), want)
		}
	}
	if !strings.Contains(Category(99).String(), "99") {
		t.Error("unknown category string")
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(100, 25); s != 4 {
		t.Errorf("speedup %g", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Errorf("speedup with zero parallel time %g", s)
	}
}
