package cluster

import (
	"fmt"

	"genomedsm/internal/recovery"
)

// This file defines the chaos-layer hooks: interfaces through which a
// fault-injection and schedule-exploration harness (internal/chaos) can
// perturb the DSM protocol without the alignment strategies knowing.
// They ride on Config because the strategies pass a Config down to
// dsm.NewSystem verbatim — no strategy signature has to change for a
// run to become adversarial.
//
// All hooks are optional; a nil Hooks (or any nil member) leaves the
// protocol on its default, deterministic-by-virtual-time behaviour.

// MsgClass classifies DSM protocol messages for fault injection.
type MsgClass int

// Message classes the fault plan can target.
const (
	// MsgPageFetch is a GETP request and its page reply.
	MsgPageFetch MsgClass = iota
	// MsgDiff is a diff propagation to a page's home (including the
	// border-row messages of the message-passing ablation).
	MsgDiff
	// MsgNotice is a write-notice delivery riding on a lock grant,
	// barrier grant or condition-variable signal.
	MsgNotice
	// MsgSync is a synchronization control message: ACQ/REL to a lock
	// manager, BARR to the barrier owner, a condition-variable signal or
	// wait registration.
	MsgSync
	// NumMsgClasses bounds per-class tables.
	NumMsgClasses
)

// String names the message class.
func (c MsgClass) String() string {
	switch c {
	case MsgPageFetch:
		return "page-fetch"
	case MsgDiff:
		return "diff"
	case MsgNotice:
		return "notice"
	case MsgSync:
		return "sync"
	default:
		return fmt.Sprintf("msgclass(%d)", int(c))
	}
}

// FaultPlan injects message faults. Implementations must be safe for
// concurrent use by every node goroutine and, for replayability, must
// answer deterministically given the sequence of calls each node makes
// (the chaos package keys its answers on per-node, per-class message
// counters so the answer never depends on cross-node call interleaving).
type FaultPlan interface {
	// Delay returns extra virtual seconds (>= 0) experienced by the
	// node's next message of the given class — the per-class base delay
	// plus jitter.
	Delay(class MsgClass, node int) float64
	// Permute returns the order in which a batch of k same-class
	// deliveries from node (flushed diffs, applied write notices) is
	// processed: a permutation of 0..k-1, or nil for identity. The
	// displacement of each element is expected to stay within the
	// plan's reorder bound.
	Permute(class MsgClass, node, k int) []int
}

// LossPlan injects message loss and duplication. Delivery in the DSM is
// at-least-once with receiver-side deduplication: a lost message costs
// the sender a retransmission timeout (capped exponential backoff, see
// recovery.Backoff) per lost attempt before the attempt that gets
// through, and a duplicated message reaches the receiver twice, the
// second copy suppressed by its sequence number. Like FaultPlan,
// implementations must be concurrency-safe and answer deterministically
// from per-(node, class) counters so a seeded run replays exactly.
type LossPlan interface {
	// Lose returns how many consecutive transmission attempts of the
	// node's next message of the class are lost before one is delivered
	// (0 = first attempt gets through). Implementations cap the answer;
	// delivery is never suppressed forever.
	Lose(class MsgClass, node int) int
	// Duplicate reports whether the node's next delivered message of the
	// class arrives twice.
	Duplicate(class MsgClass, node int) bool
}

// ScheduleControl overrides the protocol's internal scheduling choices,
// replacing its deterministic tie-breaks so a harness can explore
// alternative legal interleavings. Every method receives candidates in
// the protocol's default order; returned indices out of range fall back
// to the default choice.
type ScheduleControl interface {
	// PickLockGrant chooses which of k queued waiters (ordered by
	// virtual request-arrival time, the default grant order) receives a
	// released lock.
	PickLockGrant(lock, k int) int
	// PickBarrierOrder returns the order (a permutation of 0..k-1 over
	// arrival order, or nil for identity) in which the k parked nodes
	// receive the barrier grant.
	PickBarrierOrder(k int) []int
	// PickEvictVictim chooses the cached page a node's replacement
	// algorithm evicts, as an index into pages (ordered oldest-first,
	// the default victim order).
	PickEvictVictim(node int, pages []int) int
}

// Gate serializes node execution so one protocol interleaving is
// explored deterministically and can be replayed from a seed. The dsm
// layer calls Yield at every protocol operation and brackets blocking
// channel receives with Park/Unpark; the granting side announces each
// wake-up with Wake before sending, so the scheduler can wait for all
// in-flight wake-ups to land before choosing the next runnable node —
// that choice is then a function of protocol state only, never of the
// Go scheduler.
type Gate interface {
	// Register blocks the freshly started node goroutine until every
	// node has registered and this one is scheduled.
	Register(node int)
	// Yield offers a scheduling point; blocks until the node is
	// scheduled again.
	Yield(node int)
	// Park announces that the node is about to block on a protocol
	// channel receive; releases its scheduling slot.
	Park(node int)
	// Wake announces (from the currently scheduled node) that node has
	// been or is about to be sent the value it is parked on.
	Wake(node int)
	// Unpark announces that the parked node received its value; blocks
	// until the node is scheduled again.
	Unpark(node int)
	// Done announces that the node goroutine finished.
	Done(node int)
}

// Hooks bundles the chaos-layer instrumentation carried by a Config.
type Hooks struct {
	Faults FaultPlan
	Sched  ScheduleControl
	Gate   Gate
	// Observer, when non-nil, is offered to higher layers: the dsm
	// layer installs it as its protocol Tracer when it implements that
	// interface. Typed any so cluster needs no upward dependency.
	Observer any
	// CacheSlots, when positive, overrides the per-node remote-page
	// cache capacity, letting a harness force replacement traffic.
	CacheSlots int
	// Loss, when non-nil, injects message loss and duplication (see
	// LossPlan).
	Loss LossPlan
	// Crashes schedules crash-stop faults: each Kill fires once, when
	// its node reaches the given recovery point. Crash faults require a
	// Gate (recovery mutates cross-node state while every other node is
	// quiescent) and at least two nodes; dsm.NewSystem enforces both.
	Crashes []recovery.Kill
	// Recovery sets the failure-detector and recovery-manager
	// parameters; the zero value means defaults (Params.WithDefaults).
	Recovery recovery.Params
}

// FaultDelay returns the injected extra delay for the node's next
// message of the class, or 0 without a fault plan. Negative answers are
// clamped: virtual time is monotonic.
func (c Config) FaultDelay(class MsgClass, node int) float64 {
	if c.Hooks == nil || c.Hooks.Faults == nil {
		return 0
	}
	if d := c.Hooks.Faults.Delay(class, node); d > 0 {
		return d
	}
	return 0
}

// FaultPermute returns the delivery order for a batch of k same-class
// messages, or nil (identity) without a fault plan. A malformed answer
// (wrong length or not a permutation) is discarded.
func (c Config) FaultPermute(class MsgClass, node, k int) []int {
	if c.Hooks == nil || c.Hooks.Faults == nil || k < 2 {
		return nil
	}
	perm := c.Hooks.Faults.Permute(class, node, k)
	if !validPerm(perm, k) {
		return nil
	}
	return perm
}

// Sched returns the schedule-control hook, or nil.
func (c Config) Sched() ScheduleControl {
	if c.Hooks == nil {
		return nil
	}
	return c.Hooks.Sched
}

// Gate returns the execution gate, or nil.
func (c Config) Gate() Gate {
	if c.Hooks == nil {
		return nil
	}
	return c.Hooks.Gate
}

// LostAttempts returns how many transmission attempts of the node's next
// message of the class are lost before delivery, or 0 without a loss
// plan. Negative answers are clamped.
func (c Config) LostAttempts(class MsgClass, node int) int {
	if c.Hooks == nil || c.Hooks.Loss == nil {
		return 0
	}
	if k := c.Hooks.Loss.Lose(class, node); k > 0 {
		return k
	}
	return 0
}

// Duplicated reports whether the node's next delivered message of the
// class arrives twice, or false without a loss plan.
func (c Config) Duplicated(class MsgClass, node int) bool {
	return c.Hooks != nil && c.Hooks.Loss != nil && c.Hooks.Loss.Duplicate(class, node)
}

// KillAt returns the scheduled crash-stop fault for the node at the
// given recovery point, if any. Points are counted per node across
// restarts, so each Kill can fire at most once.
func (c Config) KillAt(node, point int) (recovery.Kill, bool) {
	if c.Hooks == nil {
		return recovery.Kill{}, false
	}
	for _, k := range c.Hooks.Crashes {
		if k.Node == node && k.Point == point {
			return k, true
		}
	}
	return recovery.Kill{}, false
}

// RecoveryParams returns the effective failure-detector / recovery
// parameters (defaults filled in).
func (c Config) RecoveryParams() recovery.Params {
	if c.Hooks == nil {
		return recovery.Params{}.WithDefaults()
	}
	return c.Hooks.Recovery.WithDefaults()
}

// RecoveryActive reports whether the checkpoint/heartbeat machinery is
// on for this run: it is when crash faults are scheduled or checkpoints
// are forced. Everything recovery-related (checkpoint I/O, heartbeats,
// detection charges) is gated on this so a run without the hooks is
// bit- and timing-identical to one built before the fault layer existed.
func (c Config) RecoveryActive() bool {
	return c.Hooks != nil && (len(c.Hooks.Crashes) > 0 || c.Hooks.Recovery.ForceCheckpoints)
}

// validPerm reports whether perm is a permutation of 0..k-1.
func validPerm(perm []int, k int) bool {
	if len(perm) != k {
		return false
	}
	var seen = make([]bool, k)
	for _, v := range perm {
		if v < 0 || v >= k || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
