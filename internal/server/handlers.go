package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"genomedsm/internal/bio"
	"genomedsm/internal/dbpack"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/search"
	"genomedsm/internal/shard"
)

// QueryJSON is one query of a POST /search request.
type QueryJSON struct {
	Seq string `json:"seq"`
	// TopK and MinScore override the server defaults for this query
	// (0 keeps them).
	TopK     int `json:"top_k,omitempty"`
	MinScore int `json:"min_score,omitempty"`
	// TimeoutMS is this query's deadline: scan work on it stops at the
	// next lane-group boundary after it expires and the query answers
	// with its partial diagnostics (0 = no deadline).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Tag is echoed in the matching result, so concurrent clients can
	// pair responses to requests.
	Tag string `json:"tag,omitempty"`
}

// RequestJSON is the POST /search body: either Query (single form) or
// Queries (batch form), plus optional scan-option overrides. Requests
// whose overrides agree may be coalesced into one shared scan; the
// overrides never change any query's hits, only how they are computed.
type RequestJSON struct {
	Query     string `json:"query,omitempty"`
	TopK      int    `json:"top_k,omitempty"`
	MinScore  int    `json:"min_score,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	Tag       string `json:"tag,omitempty"`

	Queries []QueryJSON `json:"queries,omitempty"`

	// nil keeps the server-wide setting.
	Lanes      *int    `json:"lanes,omitempty"`
	Dispatch   *string `json:"dispatch,omitempty"`
	Prune      *bool   `json:"prune,omitempty"`
	Prefilter  *bool   `json:"prefilter,omitempty"`
	ScoresOnly bool    `json:"scores_only,omitempty"`
}

// HitJSON mirrors search.Hit.
type HitJSON struct {
	Index  int    `json:"index"`
	ID     string `json:"id"`
	Score  int    `json:"score"`
	QBegin int    `json:"q_begin,omitempty"`
	QEnd   int    `json:"q_end,omitempty"`
	TBegin int    `json:"t_begin,omitempty"`
	TEnd   int    `json:"t_end,omitempty"`
}

// PruneJSON mirrors search.PruneStats.
type PruneJSON struct {
	Skipped    int   `json:"skipped"`
	Abandoned  int   `json:"abandoned"`
	Scanned    int   `json:"scanned"`
	CellsSaved int64 `json:"cells_saved"`
	FloorFinal int   `json:"floor_final"`
}

// ResultJSON is one query's outcome. Error is set when the query's
// deadline expired or its client disconnected; the scan counters then
// cover only the records processed before cancellation, and Hits is
// absent (a partial top K is not a top K).
type ResultJSON struct {
	Tag         string     `json:"tag,omitempty"`
	Hits        []HitJSON  `json:"hits"`
	Searched    int        `json:"searched"`
	Cells       int64      `json:"cells"`
	PaddedCells int64      `json:"padded_cells"`
	Prune       *PruneJSON `json:"prune,omitempty"`
	BatchSize   int        `json:"batch_size"`
	Error       string     `json:"error,omitempty"`
}

// ResponseJSON is the batch-form response envelope.
type ResponseJSON struct {
	Results []ResultJSON `json:"results"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone = nothing to do
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// requestOptions resolves one request's effective scan options from the
// server defaults plus the request's overrides, and the compatibility
// key under which it may share a scan. The key covers exactly the
// fields RunBatch applies batch-wide; per-query fields (TopK, MinScore,
// deadline) ride in the BatchQueries and never block coalescing.
func (s *Server) requestOptions(req *RequestJSON) (search.Options, string, error) {
	opt := s.cfg.Options
	if req.Lanes != nil {
		opt.Lanes = *req.Lanes
	}
	if req.Dispatch != nil {
		opt.Dispatch = *req.Dispatch
	}
	if req.Prune != nil {
		opt.Prune = *req.Prune
	}
	if req.Prefilter != nil {
		opt.Prefilter = *req.Prefilter
	}
	opt.NoEndpoints = opt.NoEndpoints || req.ScoresOnly
	switch opt.Lanes {
	case 0, 8, 16, 1:
	default:
		return opt, "", fmt.Errorf("lanes must be 0, 8, 16 or 1, got %d", opt.Lanes)
	}
	if _, err := dispatch.ParseMode(opt.Dispatch); err != nil {
		return opt, "", err
	}
	// The shared router serves scans in the server's own dispatch mode;
	// an override routes through a mode-built router inside RunBatch.
	if opt.Lanes == 0 && opt.Dispatch == s.cfg.Options.Dispatch {
		opt.Router = s.router
	} else {
		opt.Router = nil
	}
	key := fmt.Sprintf("%d|%s|%t|%t|%t",
		opt.Lanes, opt.Dispatch, opt.Prune, opt.Prefilter, opt.NoEndpoints)
	return opt, key, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	started := time.Now()
	var req RequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	single := req.Query != ""
	if single == (len(req.Queries) > 0) {
		writeError(w, http.StatusBadRequest, errors.New(`exactly one of "query" and "queries" required`))
		return
	}
	if single {
		req.Queries = []QueryJSON{{
			Seq: req.Query, TopK: req.TopK, MinScore: req.MinScore,
			TimeoutMS: req.TimeoutMS, Tag: req.Tag,
		}}
	}
	if len(req.Queries) > s.cfg.BatchMax {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d queries exceed the batch cap of %d", len(req.Queries), s.cfg.BatchMax))
		return
	}
	opt, key, err := s.requestOptions(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	p := &pending{key: key, opt: opt, out: make(chan outcome, 1)}
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	for i, qj := range req.Queries {
		seq, err := bio.NewSequence(qj.Seq)
		if err != nil || len(seq) == 0 {
			if err == nil {
				err = errors.New("empty sequence")
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		qctx := r.Context()
		if qj.TimeoutMS > 0 {
			var cancel context.CancelFunc
			qctx, cancel = context.WithTimeout(qctx, time.Duration(qj.TimeoutMS)*time.Millisecond)
			cancels = append(cancels, cancel)
		}
		p.queries = append(p.queries, search.BatchQuery{
			Seq: seq, Ctx: qctx, TopK: qj.TopK, MinScore: qj.MinScore,
		})
	}

	if status, err := s.admit(p); err != nil {
		if status == http.StatusTooManyRequests {
			// Tell the shed client when the backlog should have drained;
			// blind immediate retries just re-fill the queue.
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		}
		writeError(w, status, err)
		return
	}
	// The dispatcher always answers an admitted pending — even for a
	// dead client, whose per-query contexts make its queries cheap.
	o := <-p.out
	if o.err != nil {
		writeError(w, http.StatusInternalServerError, o.err)
		return
	}

	results := make([]ResultJSON, len(o.results))
	for i, br := range o.results {
		results[i] = toResultJSON(req.Queries[i].Tag, br, o.batchSize)
		if br.Err != nil {
			s.st.cancelled.Add(1)
		} else {
			s.st.served.Add(1)
		}
		s.addPrune(br)
	}
	s.st.observeLatency(time.Since(started))

	if single {
		status := http.StatusOK
		if err := o.results[0].Err; err != nil {
			// The query died before the scan finished: its deadline
			// expired (504) or its client went away (499 is nginx lore,
			// not HTTP; report 500). The partial diagnostics still ship.
			status = http.StatusInternalServerError
			if errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
		}
		writeJSON(w, status, results[0])
		return
	}
	writeJSON(w, http.StatusOK, ResponseJSON{Results: results})
}

func toResultJSON(tag string, br search.BatchResult, batchSize int) ResultJSON {
	out := ResultJSON{Tag: tag, BatchSize: batchSize, Hits: []HitJSON{}}
	if br.Err != nil {
		out.Error = br.Err.Error()
		out.Hits = nil
	}
	if br.Result == nil {
		return out
	}
	res := br.Result
	out.Searched = res.Searched
	out.Cells = res.Cells
	out.PaddedCells = res.PaddedCells
	for _, h := range res.Hits {
		out.Hits = append(out.Hits, HitJSON{
			Index: h.Index, ID: h.ID, Score: h.Score,
			QBegin: h.QBegin, QEnd: h.QEnd, TBegin: h.TBegin, TEnd: h.TEnd,
		})
	}
	if res.Prune != nil {
		out.Prune = &PruneJSON{
			Skipped:    res.Prune.Skipped,
			Abandoned:  res.Prune.Abandoned,
			Scanned:    res.Prune.Scanned,
			CellsSaved: res.Prune.CellsSaved,
			FloorFinal: res.Prune.FloorFinal,
		}
	}
	return out
}

func (s *Server) addPrune(br search.BatchResult) {
	if br.Result == nil || br.Result.Prune == nil {
		return
	}
	p := br.Result.Prune
	s.st.pruneSkipped.Add(int64(p.Skipped))
	s.st.pruneAbandoned.Add(int64(p.Abandoned))
	s.st.pruneScanned.Add(int64(p.Scanned))
	s.st.pruneCellsSaved.Add(int64(p.CellsSaved))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining", "records": s.cfg.DB.Size(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok", "records": s.cfg.DB.Size(),
	})
}

// StatszJSON is the GET /statsz payload.
type StatszJSON struct {
	UptimeMS   int64 `json:"uptime_ms"`
	Records    int   `json:"records"`
	TotalBases int64 `json:"total_bases"`
	PackedWord int   `json:"prefilter_word,omitempty"`

	Queries    int64 `json:"queries"`
	Served     int64 `json:"served"`
	Cancelled  int64 `json:"cancelled"`
	Rejected   int64 `json:"rejected"`
	Batches    int64 `json:"batches"`
	QueueDepth int   `json:"queue_depth"`
	QueueHigh  int64 `json:"queue_high"`
	BatchMax   int64 `json:"batch_max"`

	// Pack describes how the served database got into memory: the pack
	// load mode ("mmap", "copy", "legacy-v1" or "memory" for an
	// in-process build), the pack format version (0 when built in
	// memory), and the mapped vs heap-resident byte split. A true
	// layout_rebuilt flags a pack whose stored lane-group section
	// failed semantic validation and was rebuilt from the records.
	Pack PackJSON `json:"pack"`

	// Shards is present when the server scans through a shard cluster:
	// per-shard health (liveness, span, answered counts, latency) plus
	// the cluster's retry/kill/reassign and gossip counters.
	Shards *shard.Stats `json:"shards,omitempty"`

	Prune struct {
		Skipped    int64 `json:"skipped"`
		Abandoned  int64 `json:"abandoned"`
		Scanned    int64 `json:"scanned"`
		CellsSaved int64 `json:"cells_saved"`
	} `json:"prune"`

	Routes struct {
		Group map[string]int64 `json:"group"`
		Pair  map[string]int64 `json:"pair"`
	} `json:"routes"`

	// LatencyMS is the request latency histogram: bucket upper bound in
	// milliseconds ("1", "2", ... and "inf") to request count.
	LatencyMS map[string]int64 `json:"latency_ms"`
}

// PackJSON is the /statsz pack-load block (see StatszJSON.Pack).
type PackJSON struct {
	Mode          string `json:"mode"`
	Version       int    `json:"version"`
	MappedBytes   int64  `json:"mapped_bytes"`
	HeapBytes     int64  `json:"heap_bytes"`
	LayoutRebuilt bool   `json:"layout_rebuilt,omitempty"`
	Notice        string `json:"notice,omitempty"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	var out StatszJSON
	out.UptimeMS = time.Since(s.start).Milliseconds()
	out.Records = s.cfg.DB.Size()
	out.TotalBases = s.cfg.DB.TotalBases()
	if ix := s.cfg.DB.WordIndex(); ix != nil {
		out.PackedWord = ix.Word()
	}
	pi := dbpack.Info{} // zero value reports an in-memory build
	if s.cfg.Pack != nil {
		pi = *s.cfg.Pack
	}
	out.Pack = PackJSON{
		Mode:          pi.Mode.String(),
		Version:       pi.Version,
		MappedBytes:   pi.MappedBytes,
		HeapBytes:     pi.HeapBytes,
		LayoutRebuilt: pi.LayoutRebuilt,
		Notice:        pi.Notice,
	}
	out.Queries = s.st.queries.Load()
	out.Served = s.st.served.Load()
	out.Cancelled = s.st.cancelled.Load()
	out.Rejected = s.st.rejected.Load()
	out.Batches = s.st.batches.Load()
	out.QueueDepth = s.QueueDepth()
	out.QueueHigh = s.st.queueHigh.Load()
	out.Shards = s.ShardStats()
	out.BatchMax = s.st.batchMax.Load()
	out.Prune.Skipped = s.st.pruneSkipped.Load()
	out.Prune.Abandoned = s.st.pruneAbandoned.Load()
	out.Prune.Scanned = s.st.pruneScanned.Load()
	out.Prune.CellsSaved = s.st.pruneCellsSaved.Load()
	out.Routes.Group = s.router.GroupCounts()
	out.Routes.Pair = s.router.PairCounts()
	out.LatencyMS = make(map[string]int64, len(latencyBucketsMS)+1)
	for i, ub := range latencyBucketsMS {
		if n := atomic.LoadInt64(&s.st.latency[i]); n > 0 {
			out.LatencyMS[fmt.Sprintf("%d", ub)] = n
		}
	}
	if n := atomic.LoadInt64(&s.st.latency[len(latencyBucketsMS)]); n > 0 {
		out.LatencyMS["inf"] = n
	}
	writeJSON(w, http.StatusOK, out)
}
