package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"genomedsm/internal/search"
	"genomedsm/internal/shard"
)

// TestShardedServerDifferential pins the serve-over-shards path: a
// server scanning through a 3-shard cluster answers bit-identically to
// a direct search.Run across option shapes.
func TestShardedServerDifferential(t *testing.T) {
	q, recs := testDB(t, 48, 60, 40)
	_, hs := newTestServer(t, recs, Config{Shards: 3, Options: search.Options{Prune: true}})

	for _, k := range []int{3, 10} {
		want, err := search.Run(q, recs, search.Options{TopK: k, Prune: true})
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postSearch(t, hs.URL, RequestJSON{Query: q.String(), TopK: k})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var got ResultJSON
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("bad response %s: %v", body, err)
		}
		if got.Searched != want.Searched || got.Cells != want.Cells {
			t.Errorf("k=%d: searched/cells %d/%d, want %d/%d",
				k, got.Searched, got.Cells, want.Searched, want.Cells)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("k=%d: %d hits, want %d", k, len(got.Hits), len(want.Hits))
		}
		for i, h := range want.Hits {
			g := got.Hits[i]
			if g.Index != h.Index || g.ID != h.ID || g.Score != h.Score ||
				g.QBegin != h.QBegin || g.QEnd != h.QEnd ||
				g.TBegin != h.TBegin || g.TEnd != h.TEnd {
				t.Errorf("k=%d hit %d: %+v, want %+v", k, i, g, h)
			}
		}
	}
}

// TestShardedServerUnderFaults injects transport loss and duplication
// through ShardOptions: the service keeps answering exactly.
func TestShardedServerUnderFaults(t *testing.T) {
	q, recs := testDB(t, 48, 60, 40)
	_, hs := newTestServer(t, recs, Config{
		Shards: 4,
		ShardOptions: &shard.Options{
			Timeout: 20 * time.Millisecond,
			Faults:  &shard.FaultConfig{Seed: 11, Loss: 0.3, Dup: 0.2},
		},
	})
	want, err := search.Run(q, recs, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postSearch(t, hs.URL, RequestJSON{Query: q.String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ResultJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Hits) != len(want.Hits) {
		t.Fatalf("%d hits, want %d", len(got.Hits), len(want.Hits))
	}
	for i, h := range want.Hits {
		if got.Hits[i].Score != h.Score || got.Hits[i].Index != h.Index {
			t.Errorf("hit %d: %+v, want %+v", i, got.Hits[i], h)
		}
	}
}

// TestRetryAfterOn429 pins the overload satellite: a request shed by
// the admission queue carries a Retry-After hint within the documented
// clamp.
func TestRetryAfterOn429(t *testing.T) {
	q, recs := testDB(t, 64, 60, 30)
	s, hs := newTestServer(t, recs, Config{MaxQueue: 1})
	release := holdFirstBatch(s)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSearch(t, hs.URL, RequestJSON{Query: q[:24].String()})
	}()
	waitFor(t, "blocker batch to start", func() bool { return s.st.batches.Load() == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSearch(t, hs.URL, RequestJSON{Query: q[:24].String()})
	}()
	waitFor(t, "queue to fill", func() bool { return queueLen(s) == 1 })

	resp, body := postSearch(t, hs.URL, RequestJSON{Query: q[:24].String()})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 30 {
		t.Fatalf("Retry-After %q outside the [1,30]s clamp", ra)
	}
	release()
	wg.Wait()
}

// TestStatszShardsAndQueueDepth checks the new observability fields:
// queue_depth always present, the shards section only on a sharded
// server, with per-shard health covering the whole partition.
func TestStatszShardsAndQueueDepth(t *testing.T) {
	q, recs := testDB(t, 48, 60, 40)
	s, hs := newTestServer(t, recs, Config{Shards: 3})
	if _, body := postSearch(t, hs.URL, RequestJSON{Query: q.String()}); len(body) == 0 {
		t.Fatal("empty search response")
	}
	resp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatszJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.QueueDepth != 0 {
		t.Errorf("idle queue depth %d, want 0", st.QueueDepth)
	}
	if st.Shards == nil {
		t.Fatal("sharded server reported no shards section")
	}
	if len(st.Shards.Shards) != 3 {
		t.Fatalf("%d shard healths, want 3", len(st.Shards.Shards))
	}
	covered := 0
	for _, h := range st.Shards.Shards {
		if !h.Alive || h.Killed {
			t.Errorf("shard %d unhealthy on a clean server: %+v", h.Shard, h)
		}
		covered += h.SpanHi - h.SpanLo
	}
	if covered != s.cfg.DB.Size() {
		t.Errorf("shard spans cover %d of %d records", covered, s.cfg.DB.Size())
	}
	if st.Shards.Queries < 1 || st.Shards.Batches < 1 {
		t.Errorf("cluster saw %d queries / %d batches, want ≥1", st.Shards.Queries, st.Shards.Batches)
	}

	// An unsharded server must omit the section entirely.
	_, hs2 := newTestServer(t, recs, Config{})
	resp2, err := http.Get(hs2.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["shards"]; ok {
		t.Error("unsharded server emitted a shards section")
	}
	if _, ok := raw["queue_depth"]; !ok {
		t.Error("statsz missing queue_depth")
	}
}
