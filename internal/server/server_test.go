package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"genomedsm/internal/bio"
	"genomedsm/internal/blast"
	"genomedsm/internal/dbpack"
	"genomedsm/internal/search"
)

// testDB builds a deterministic synthetic database with planted
// homologs, mirroring the CLI's synthetic inputs: a shared generator
// seeds both the query and the records, and every 7th record embeds a
// mutated copy of a query slice so the top-K has real signal.
func testDB(t testing.TB, n, recLen, count int) (bio.Sequence, []bio.Record) {
	t.Helper()
	g := bio.NewGenerator(42)
	q := g.Random(n)
	recs := make([]bio.Record, count)
	for i := range recs {
		seq := g.Random(recLen + (i%5)*7)
		if i%7 == 3 {
			m := g.MutatedCopy(q[:min(n, recLen/2)], bio.DefaultMutationModel())
			copy(seq[len(seq)/4:], m)
		}
		recs[i] = bio.Record{ID: fmt.Sprintf("r%03d", i), Seq: seq}
	}
	return q, recs
}

// newTestServer spins up a Server over recs behind an httptest.Server.
func newTestServer(t testing.TB, recs []bio.Record, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := search.NewDB(recs)
	if ix := blast.NewDBWordIndex(recs, 11); ix != nil {
		db.SetWordIndex(ix)
	}
	cfg.DB = db
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck // best-effort teardown
	})
	return s, hs
}

func postSearch(t testing.TB, url string, req RequestJSON) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSearchDifferential is the service-level exactness pin: every HTTP
// answer must be bit-identical — hit set, scores, coordinates,
// tie-breaks, searched/cells accounting — to a direct search.Run with
// the same options, across the kernel, pruning and dispatch grid.
func TestSearchDifferential(t *testing.T) {
	q, recs := testDB(t, 48, 60, 40)
	_, hs := newTestServer(t, recs, Config{})

	type pruneCase struct{ prune, prefilter bool }
	pruneCases := []pruneCase{{false, false}, {true, false}, {true, true}}
	for _, lanes := range []int{0, 8, 16, 1} {
		dispatches := []string{""}
		if lanes == 0 {
			dispatches = []string{"auto", "fixed", "scalar"}
		}
		for _, disp := range dispatches {
			for _, pc := range pruneCases {
				for _, k := range []int{3, 10} {
					name := fmt.Sprintf("lanes=%d/disp=%s/prune=%v/prefilter=%v/k=%d",
						lanes, disp, pc.prune, pc.prefilter, k)
					t.Run(name, func(t *testing.T) {
						opt := search.Options{
							TopK: k, Lanes: lanes, Dispatch: disp,
							Prune: pc.prune, Prefilter: pc.prefilter,
						}
						want, err := search.Run(q, recs, opt)
						if err != nil {
							t.Fatal(err)
						}
						lanesArg, dispArg := lanes, disp
						pruneArg, prefArg := pc.prune, pc.prefilter
						resp, body := postSearch(t, hs.URL, RequestJSON{
							Query: q.String(), TopK: k,
							Lanes: &lanesArg, Dispatch: &dispArg,
							Prune: &pruneArg, Prefilter: &prefArg,
						})
						if resp.StatusCode != http.StatusOK {
							t.Fatalf("status %d: %s", resp.StatusCode, body)
						}
						var got ResultJSON
						if err := json.Unmarshal(body, &got); err != nil {
							t.Fatalf("bad response %s: %v", body, err)
						}
						if got.Error != "" {
							t.Fatalf("unexpected error %q", got.Error)
						}
						if got.Searched != want.Searched || got.Cells != want.Cells {
							t.Errorf("searched/cells %d/%d, want %d/%d",
								got.Searched, got.Cells, want.Searched, want.Cells)
						}
						if len(got.Hits) != len(want.Hits) {
							t.Fatalf("%d hits, want %d", len(got.Hits), len(want.Hits))
						}
						for i, h := range want.Hits {
							g := got.Hits[i]
							if g.Index != h.Index || g.ID != h.ID || g.Score != h.Score ||
								g.QBegin != h.QBegin || g.QEnd != h.QEnd ||
								g.TBegin != h.TBegin || g.TEnd != h.TEnd {
								t.Errorf("hit %d: %+v, want %+v", i, g, h)
							}
						}
					})
				}
			}
		}
	}
}

// TestBatchedQueries exercises the multi-query form: one POST carrying
// several queries answers each bit-exactly and reports the shared batch.
func TestBatchedQueries(t *testing.T) {
	q, recs := testDB(t, 48, 60, 30)
	g := bio.NewGenerator(7)
	_, hs := newTestServer(t, recs, Config{Options: search.Options{Prune: true}})

	queries := []QueryJSON{
		{Seq: q.String(), Tag: "q0"},
		{Seq: g.Random(32).String(), TopK: 3, Tag: "q1"},
		{Seq: g.Random(64).String(), MinScore: 5, Tag: "q2"},
	}
	resp, body := postSearch(t, hs.URL, RequestJSON{Queries: queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ResponseJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(got.Results), len(queries))
	}
	for i, qj := range queries {
		r := got.Results[i]
		if r.Tag != qj.Tag {
			t.Errorf("result %d tagged %q, want %q", i, r.Tag, qj.Tag)
		}
		if r.BatchSize < len(queries) {
			t.Errorf("result %d batch size %d, want ≥ %d", i, r.BatchSize, len(queries))
		}
		opt := search.Options{Prune: true, TopK: qj.TopK, MinScore: qj.MinScore}
		want, err := search.Run(bio.MustSequence(qj.Seq), recs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Hits) != len(want.Hits) {
			t.Fatalf("result %d: %d hits, want %d", i, len(r.Hits), len(want.Hits))
		}
		for j, h := range want.Hits {
			if r.Hits[j].Index != h.Index || r.Hits[j].Score != h.Score {
				t.Errorf("result %d hit %d: %+v, want %+v", i, j, r.Hits[j], h)
			}
		}
	}
}

// holdFirstBatch installs the dispatcher hook: the first batch blocks
// until the returned release function runs, so subsequent requests
// deterministically pile up in the admission queue.
func holdFirstBatch(s *Server) (release func()) {
	ch := make(chan struct{})
	s.mu.Lock()
	s.testBatchStart = func() { <-ch }
	s.mu.Unlock()
	return func() { close(ch) }
}

// queueLen reads the admission queue depth.
func queueLen(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// waitFor polls cond until it holds (the dispatcher runs concurrently;
// these transitions complete in microseconds once scheduled).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescing proves concurrent compatible requests share one scan:
// with the dispatcher held on a blocker batch, four queued single-query
// requests are answered from one RunBatch, and each response reports
// the shared batch size.
func TestCoalescing(t *testing.T) {
	q, recs := testDB(t, 64, 60, 30)
	s, hs := newTestServer(t, recs, Config{})
	release := holdFirstBatch(s)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSearch(t, hs.URL, RequestJSON{Query: q[:24].String(), Tag: "blocker"})
	}()
	waitFor(t, "blocker batch to start", func() bool { return s.st.batches.Load() == 1 })

	const followers = 4
	sizes := make([]int, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postSearch(t, hs.URL, RequestJSON{Query: q[:32].String(), Tag: fmt.Sprintf("f%d", i)})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("follower %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var r ResultJSON
			if err := json.Unmarshal(body, &r); err != nil {
				t.Errorf("follower %d: %v", i, err)
				return
			}
			if r.Tag != fmt.Sprintf("f%d", i) {
				t.Errorf("follower %d answered with tag %q", i, r.Tag)
			}
			sizes[i] = r.BatchSize
		}(i)
	}
	waitFor(t, "followers to queue", func() bool { return queueLen(s) == followers })
	release()
	wg.Wait()
	for i, n := range sizes {
		if n != followers {
			t.Errorf("follower %d ran in a batch of %d, want %d (sizes %v)", i, n, followers, sizes)
		}
	}
	if got := s.st.batches.Load(); got != 2 {
		t.Errorf("%d batches for 5 requests, want 2 (blocker + coalesced followers)", got)
	}
}

// TestAdmissionControl pins the overload protocol: with the queue
// bounded at 2 and the dispatcher held busy, the third and later
// requests get 429 immediately, every request gets exactly one answer,
// and the queue never exceeds its cap.
func TestAdmissionControl(t *testing.T) {
	q, recs := testDB(t, 64, 60, 30)
	s, hs := newTestServer(t, recs, Config{MaxQueue: 2})
	release := holdFirstBatch(s)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postSearch(t, hs.URL, RequestJSON{Query: q[:24].String()})
	}()
	waitFor(t, "blocker batch to start", func() bool { return s.st.batches.Load() == 1 })

	// Two requests fill the queue...
	queued := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postSearch(t, hs.URL, RequestJSON{Query: q[:24].String()})
			queued <- resp.StatusCode
		}()
	}
	waitFor(t, "queue to fill", func() bool { return queueLen(s) == 2 })
	// ...and every request past the cap is refused synchronously.
	const overflow = 6
	for i := 0; i < overflow; i++ {
		resp, body := postSearch(t, hs.URL, RequestJSON{Query: q[:24].String()})
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("overflow request %d: status %d (%s), want 429", i, resp.StatusCode, body)
		}
	}
	release()
	wg.Wait()
	close(queued)
	for status := range queued {
		if status != http.StatusOK {
			t.Errorf("queued request answered %d, want 200", status)
		}
	}
	if high := s.st.queueHigh.Load(); high != 2 {
		t.Errorf("queue high-water mark %d, want 2", high)
	}
	if got := s.st.rejected.Load(); got != overflow {
		t.Errorf("rejected counter %d, want %d", got, overflow)
	}
}

// TestDeadline pins cancellation: a query whose deadline expires
// mid-scan answers 504 with partial diagnostics — fewer records
// searched than the database holds, no hits — proving the workers
// stopped spending on it rather than finishing the scan.
func TestDeadline(t *testing.T) {
	q, recs := testDB(t, 512, 400, 120)
	_, hs := newTestServer(t, recs, Config{Options: search.Options{Prune: true}})

	one := 1
	resp, body := postSearch(t, hs.URL, RequestJSON{
		Query: q.String(), TimeoutMS: 1, Lanes: &one,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r ResultJSON
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", r.Error)
	}
	if len(r.Hits) != 0 {
		t.Errorf("cancelled query returned %d hits", len(r.Hits))
	}
	if r.Searched >= len(recs) {
		t.Errorf("cancelled query searched %d of %d records — cancellation did not stop the scan",
			r.Searched, len(recs))
	}
	// The sibling full-length run still works: cancellation is per
	// query, not per server.
	resp, body = postSearch(t, hs.URL, RequestJSON{Query: q[:64].String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", resp.StatusCode, body)
	}
}

// TestShutdownDrain pins the drain protocol: Shutdown refuses new work
// with 503 but answers everything already admitted.
func TestShutdownDrain(t *testing.T) {
	q, recs := testDB(t, 64, 60, 30)
	s, hs := newTestServer(t, recs, Config{})
	release := holdFirstBatch(s)

	type reply struct {
		status int
		body   []byte
	}
	inflight := make(chan reply, 1)
	go func() {
		resp, body := postSearch(t, hs.URL, RequestJSON{Query: q[:32].String()})
		inflight <- reply{resp.StatusCode, body}
	}()
	waitFor(t, "in-flight batch to start", func() bool { return s.st.batches.Load() == 1 })

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	waitFor(t, "server to report draining", s.Draining)
	resp, _ := postSearch(t, hs.URL, RequestJSON{Query: "ACGTACGT"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request during drain got %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain got %d, want 503", hresp.StatusCode)
	}

	release()
	r := <-inflight
	if r.status != http.StatusOK {
		t.Errorf("in-flight request drained with status %d: %s", r.status, r.body)
	}
	if err := <-done; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestStatszPackInfo checks that a pack-loaded server surfaces the
// load mode and byte split on /statsz: serving a v2 pack is
// validate-header-and-map, and the stats page is where that shows.
func TestStatszPackInfo(t *testing.T) {
	q, recs := testDB(t, 48, 60, 30)
	p, err := dbpack.Build(recs, 11)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.pack")
	if err := dbpack.WriteFileV2(path, p); err != nil {
		t.Fatal(err)
	}
	opened, err := dbpack.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { opened.Close() }) //nolint:errcheck // best-effort teardown
	s, err := New(Config{DB: opened.DB, Pack: &opened.Info})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	resp, body := postSearch(t, hs.URL, RequestJSON{Query: q.String()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search over pack-backed server: status %d: %s", resp.StatusCode, body)
	}
	sresp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st StatszJSON
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS == "linux" && st.Pack.Mode != "mmap" {
		t.Errorf("pack mode %q, want mmap on linux", st.Pack.Mode)
	}
	if st.Pack.Version != 2 {
		t.Errorf("pack version %d, want 2", st.Pack.Version)
	}
	if st.Pack.Mode == "mmap" && st.Pack.MappedBytes == 0 {
		t.Error("mmap-backed server reports 0 mapped bytes")
	}
	if st.Pack.LayoutRebuilt {
		t.Error("clean pack reports a rebuilt layout")
	}
}

// TestStatsz sanity-checks the observability surface after traffic.
func TestStatsz(t *testing.T) {
	q, recs := testDB(t, 48, 60, 30)
	_, hs := newTestServer(t, recs, Config{Options: search.Options{Prune: true}})

	for i := 0; i < 3; i++ {
		resp, body := postSearch(t, hs.URL, RequestJSON{Query: q.String()})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatszJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Records != len(recs) || st.Queries != 3 || st.Served != 3 || st.Batches == 0 {
		t.Errorf("statsz %+v: want %d records, 3 queries, 3 served, >0 batches", st, len(recs))
	}
	if st.Prune.Scanned+st.Prune.Skipped+st.Prune.Abandoned == 0 {
		t.Error("statsz prune counters all zero after pruned scans")
	}
	if len(st.Routes.Group) == 0 {
		t.Error("statsz has no group route counts after auto-dispatch scans")
	}
	if st.Pack.Mode != "memory" || st.Pack.Version != 0 {
		t.Errorf("in-memory server reports pack %+v, want memory mode version 0", st.Pack)
	}
	total := int64(0)
	for _, n := range st.LatencyMS {
		total += n
	}
	if total != 3 {
		t.Errorf("latency histogram holds %d requests, want 3", total)
	}
}

func TestBadRequests(t *testing.T) {
	_, recs := testDB(t, 32, 40, 10)
	_, hs := newTestServer(t, recs, Config{BatchMax: 4})

	cases := []struct {
		name string
		req  RequestJSON
		want int
	}{
		{"no query", RequestJSON{}, http.StatusBadRequest},
		{"both forms", RequestJSON{Query: "ACGT", Queries: []QueryJSON{{Seq: "ACGT"}}}, http.StatusBadRequest},
		{"bad base", RequestJSON{Query: "ACGX"}, http.StatusBadRequest},
		{"empty seq in batch", RequestJSON{Queries: []QueryJSON{{Seq: "ACGT"}, {Seq: ""}}}, http.StatusBadRequest},
		{"over batch cap", func() RequestJSON {
			var r RequestJSON
			for i := 0; i < 5; i++ {
				r.Queries = append(r.Queries, QueryJSON{Seq: "ACGTACGT"})
			}
			return r
		}(), http.StatusBadRequest},
		{"bad lanes", func() RequestJSON { l := 4; return RequestJSON{Query: "ACGT", Lanes: &l} }(), http.StatusBadRequest},
		{"bad dispatch", func() RequestJSON { d := "warp"; return RequestJSON{Query: "ACGT", Dispatch: &d} }(), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postSearch(t, hs.URL, tc.req)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.want, body)
			}
		})
	}
	resp, err := http.Get(hs.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search got %d, want 405", resp.StatusCode)
	}
}
