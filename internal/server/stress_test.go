package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"genomedsm/internal/bio"
	"genomedsm/internal/search"
)

// TestStressMixedClients hammers one server with concurrent clients of
// mixed shapes — single and batched queries, tight and absent
// deadlines, two incompatible option sets — and checks the service
// invariants hold under scheduling pressure (run with -race in CI):
//
//   - every request gets exactly one response, tags echo back to their
//     query, nothing is lost or duplicated across coalesced batches;
//   - a query that timed out reports its partial scan (searched ≤
//     records, no hits) instead of wrong results;
//   - the admission queue never exceeds its cap and the accounting
//     identities (queries = served + cancelled) hold when idle.
func TestStressMixedClients(t *testing.T) {
	_, recs := testDB(t, 96, 80, 40)
	s, hs := newTestServer(t, recs, Config{
		Options:  search.Options{Prune: true},
		MaxQueue: 8,
		BatchMax: 8,
	})

	const clients = 6
	const perClient = 4
	timeouts := []int{0, 0, 1, 5000}

	var wg sync.WaitGroup
	var mu sync.Mutex
	seenTags := make(map[string]int)
	var sent, rejected, answered int

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := bio.NewGenerator(int64(1000 + c))
			for r := 0; r < perClient; r++ {
				req := RequestJSON{}
				if c%2 == 0 {
					// Half the clients flip pruning off: a second
					// compatibility key, so coalescing must partition.
					off := false
					req.Prune = &off
				}
				nq := 1 + (c+r)%3
				for i := 0; i < nq; i++ {
					req.Queries = append(req.Queries, QueryJSON{
						Seq:       g.Random(24 + 8*i).String(),
						TopK:      1 + (c+i)%5,
						TimeoutMS: timeouts[(c+r+i)%len(timeouts)],
						Tag:       fmt.Sprintf("c%d-r%d-q%d", c, r, i),
					})
				}
				mu.Lock()
				sent += nq
				mu.Unlock()

				resp, body := postSearch(t, hs.URL, req)
				switch resp.StatusCode {
				case http.StatusTooManyRequests:
					mu.Lock()
					rejected += nq
					mu.Unlock()
					continue
				case http.StatusOK:
				default:
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, body)
					continue
				}
				var out ResponseJSON
				if err := json.Unmarshal(body, &out); err != nil {
					t.Errorf("client %d: %v", c, err)
					continue
				}
				if len(out.Results) != nq {
					t.Errorf("client %d: %d results for %d queries", c, len(out.Results), nq)
					continue
				}
				mu.Lock()
				answered += nq
				mu.Unlock()
				for i, res := range out.Results {
					wantTag := fmt.Sprintf("c%d-r%d-q%d", c, r, i)
					if res.Tag != wantTag {
						t.Errorf("client %d got tag %q at slot %d, want %q", c, res.Tag, i, wantTag)
					}
					mu.Lock()
					seenTags[res.Tag]++
					mu.Unlock()
					if res.Error != "" {
						if len(res.Hits) != 0 {
							t.Errorf("%s: cancelled with %d hits", res.Tag, len(res.Hits))
						}
						if res.Searched > len(recs) {
							t.Errorf("%s: cancelled but searched %d of %d", res.Tag, res.Searched, len(recs))
						}
						continue
					}
					if res.Searched != len(recs) {
						t.Errorf("%s: completed but searched %d of %d", res.Tag, res.Searched, len(recs))
					}
				}
			}
		}(c)
	}
	wg.Wait()

	for tag, n := range seenTags {
		if n != 1 {
			t.Errorf("tag %q answered %d times", tag, n)
		}
	}
	if got := int(s.st.queries.Load()); got != sent-rejected {
		t.Errorf("server admitted %d queries, want %d (sent %d, rejected %d)", got, sent-rejected, sent, rejected)
	}
	if served, cancelled := s.st.served.Load(), s.st.cancelled.Load(); int(served+cancelled) != answered {
		t.Errorf("served %d + cancelled %d != answered %d", served, cancelled, answered)
	}
	if high := s.st.queueHigh.Load(); high > 8 {
		t.Errorf("queue high-water mark %d exceeds cap 8", high)
	}
}
