// Package server is the resident search service: a prepared database
// held in memory behind an HTTP/JSON API. It exists because the scan
// pipeline's fixed costs — FASTA parsing, length sorting, prefilter
// indexing, router calibration — dwarf the per-query cost for short
// queries, and a process that pays them per invocation cannot serve
// interactive load. The server pays them once (or loads them from a
// dbpack file) and amortizes the rest per batch: concurrent requests
// with compatible scan options are coalesced into one shared pass over
// the lane groups (search.RunBatch), so the worker pool, group
// traversal and record touch costs are split across the batch.
//
// Endpoints:
//
//	POST /search  — one query or a "queries" array; per-query top-K,
//	                min-score and deadline; optional scan-option
//	                overrides (lanes, dispatch, prune, prefilter,
//	                scores_only). Hits are bit-identical to a direct
//	                search.Run with the same options.
//	GET  /healthz — liveness: 200 while serving, 503 while draining.
//	GET  /statsz  — uptime, database shape, query/batch/reject totals,
//	                queue and batch high-water marks, prune aggregates,
//	                dispatch route counts, latency histogram.
//
// Overload and shutdown are explicit protocol, not emergent behavior:
// a bounded admission queue returns 429 when full, a draining server
// returns 503 to new work while every admitted query is still answered,
// and per-query deadlines cancel scan work at lane-group granularity
// (a timed-out query returns 504 with its partial scan diagnostics).
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"genomedsm/internal/dbpack"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/search"
	"genomedsm/internal/shard"
)

// Config configures a Server.
type Config struct {
	// DB is the prepared database to serve (required).
	DB *search.DB
	// Options is the server-wide scan configuration: scoring, kernel
	// selection, pruning, worker count. Requests may override TopK and
	// MinScore per query, and lanes/dispatch/prune/prefilter/scores_only
	// per request. TopK 0 means the search default (10).
	Options search.Options
	// MaxQueue bounds the admission queue: requests beyond it are
	// rejected with 429 instead of queuing without bound (default 64).
	MaxQueue int
	// BatchMax caps how many queries one shared scan carries
	// (default 16).
	BatchMax int
	// Shards, when ≥ 2, serves scans from an in-process shard cluster
	// (internal/shard): the database is partitioned across that many
	// workers and every batch is scattered, pruned under the gossiped
	// floor, and merged bit-identically to a single-node scan. 0 or 1
	// keeps the direct RunBatch path.
	Shards int
	// ShardOptions overrides the cluster's robustness tuning (timeouts,
	// lease, faults — the Shards field wins over ShardOptions.Shards).
	// Nil uses production defaults; tests inject faults through it.
	ShardOptions *shard.Options
	// Pack, when non-nil, records how the served database was loaded
	// (dbpack.Open fills it: mmap vs copy vs legacy-v1, mapped and
	// heap-resident bytes). Surfaced verbatim on /statsz; nil reports
	// an in-memory build.
	Pack *dbpack.Info
}

// Server is the resident search service. Build with New, mount
// Handler() on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg     Config
	router  *dispatch.Router // shared calibrated router for default-mode scans
	cluster *shard.Cluster   // non-nil when cfg.Shards ≥ 2
	start   time.Time

	mu       sync.Mutex
	queue    []*pending
	draining bool
	notify   chan struct{} // wakes the dispatcher (capacity 1)
	stopped  chan struct{} // closed when the dispatcher has drained and exited
	stop     chan struct{} // closed by Shutdown

	st stats

	// testBatchStart, when non-nil, runs after a batch is popped from
	// the queue and before its scan. Tests block in it to hold the
	// dispatcher busy deterministically — never set outside tests.
	testBatchStart func()
}

// pending is one admitted HTTP request: its queries, the compatibility
// key its scan options hash to, and the channel its handler waits on.
type pending struct {
	key     string
	opt     search.Options
	queries []search.BatchQuery
	out     chan outcome
}

// outcome carries one pending's slice of the shared scan's results.
type outcome struct {
	results   []search.BatchResult
	err       error // batch-level failure (kernel error, invalid options)
	batchSize int   // queries that shared the scan, for observability
}

// latencyBucketsMS are the upper bounds of the /statsz latency
// histogram, in milliseconds; the final +Inf bucket is implicit.
var latencyBucketsMS = [...]int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

type stats struct {
	queries   atomic.Int64 // queries admitted
	batches   atomic.Int64 // shared scans run
	rejected  atomic.Int64 // requests refused with 429
	cancelled atomic.Int64 // queries ended by deadline or disconnect
	served    atomic.Int64 // queries answered with full results
	queueHigh atomic.Int64 // admission queue high-water mark (requests)
	batchMax  atomic.Int64 // largest shared scan (queries)

	pruneSkipped    atomic.Int64
	pruneAbandoned  atomic.Int64
	pruneScanned    atomic.Int64
	pruneCellsSaved atomic.Int64

	latency [len(latencyBucketsMS) + 1]int64 // atomic; +Inf last

	// latencySumMS / latencyCount back the Retry-After estimate on 429:
	// mean request latency times queue depth approximates the backlog's
	// drain time.
	latencySumMS atomic.Int64
	latencyCount atomic.Int64
}

func (st *stats) observeLatency(d time.Duration) {
	ms := d.Milliseconds()
	st.latencySumMS.Add(ms)
	st.latencyCount.Add(1)
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			atomic.AddInt64(&st.latency[i], 1)
			return
		}
	}
	atomic.AddInt64(&st.latency[len(latencyBucketsMS)], 1)
}

// raise lifts an atomic high-water mark to at least v.
func raise(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// New builds a Server and starts its dispatcher. The config's scan
// options are validated up front so a bad deployment fails at startup,
// not on the first request.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: nil database")
	}
	switch cfg.Options.Lanes {
	case 0, 8, 16, 1:
	default:
		return nil, fmt.Errorf("server: lanes must be 0, 8, 16 or 1, got %d", cfg.Options.Lanes)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 16
	}
	mode, err := dispatch.ParseMode(cfg.Options.Dispatch)
	if err != nil {
		return nil, err
	}
	// A resident server always scans with the lane-group layout in
	// place: for a v2 pack this is the mapped (or validated-and-copied)
	// section and costs nothing; for a v1 pack or in-memory build it is
	// one interleaving pass here at startup instead of per scan.
	cfg.DB.EnsureLayout()
	s := &Server{
		cfg:     cfg,
		start:   time.Now(),
		notify:  make(chan struct{}, 1),
		stopped: make(chan struct{}),
		stop:    make(chan struct{}),
	}
	// One calibrated router for the server's lifetime: every
	// default-mode scan shares its adaptive profile and feeds the route
	// counters /statsz reports.
	if mode == dispatch.ModeAuto {
		s.router = dispatch.New(mode, dispatch.Host())
	} else {
		s.router = dispatch.New(mode, nil)
	}
	if cfg.Shards >= 2 {
		co := shard.Options{}
		if cfg.ShardOptions != nil {
			co = *cfg.ShardOptions
		}
		co.Shards = cfg.Shards
		if co.Lease <= 0 {
			// A resident service prefers slow failure detection over false
			// positives: an in-process worker does not silently die, so a
			// long lease only matters under injected faults.
			co.Lease = 30 * time.Second
		}
		cl, err := shard.New(cfg.DB, co)
		if err != nil {
			return nil, fmt.Errorf("server: building shard cluster: %w", err)
		}
		s.cluster = cl
	}
	go s.dispatch()
	return s, nil
}

// ShardStats returns the shard cluster's health and fault counters, or
// nil when the server runs unsharded.
func (s *Server) ShardStats() *shard.Stats {
	if s.cluster == nil {
		return nil
	}
	st := s.cluster.Stats()
	return &st
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return mux
}

// Router exposes the shared dispatch router (for stats and tests).
func (s *Server) Router() *dispatch.Router { return s.router }

// Shutdown drains the server: new requests are refused with 503, every
// already-admitted query still runs to completion (or its own
// deadline), and Shutdown returns when the queue is empty and the last
// shared scan has finished — or when ctx expires, whichever is first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}
	select {
	case <-s.stopped:
		if s.cluster != nil {
			s.cluster.Close()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// dispatch is the batching loop: it owns the admission queue, coalesces
// compatible pendings into one shared scan, and fans results back out.
// One goroutine per server — admission control has already bounded the
// backlog, and the scan itself fans out over the worker pool.
func (s *Server) dispatch() {
	defer close(s.stopped)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 {
			s.mu.Unlock()
			select {
			case <-s.notify:
				s.mu.Lock()
			case <-s.stop:
				// Drain: anything that raced into the queue after the
				// last notify still gets served.
				s.mu.Lock()
				if len(s.queue) == 0 {
					s.mu.Unlock()
					return
				}
			}
		}
		// Coalesce: the head pending plus every queued pending with the
		// same scan-option key, up to BatchMax queries. Order is
		// admission order, so per-request result slices stay contiguous.
		hook := s.testBatchStart
		head := s.queue[0]
		group := []*pending{head}
		total := len(head.queries)
		rest := s.queue[:0]
		for _, p := range s.queue[1:] {
			if p.key == head.key && total+len(p.queries) <= s.cfg.BatchMax {
				group = append(group, p)
				total += len(p.queries)
			} else {
				rest = append(rest, p)
			}
		}
		s.queue = rest
		s.mu.Unlock()

		batch := make([]search.BatchQuery, 0, total)
		for _, p := range group {
			batch = append(batch, p.queries...)
		}
		s.st.batches.Add(1)
		raise(&s.st.batchMax, int64(total))
		if hook != nil {
			hook()
		}
		// The batch context is the server's lifetime, not any one
		// request's: a shared scan must not die with one client, and a
		// draining server finishes admitted work. Per-query contexts
		// (deadline, disconnect) ride inside the BatchQueries — on the
		// sharded path the cluster watches each one and cancels that
		// query's remote scan work on every shard.
		var results []search.BatchResult
		var err error
		if s.cluster != nil {
			results, err = s.cluster.SearchBatch(context.Background(), batch, group[0].opt)
		} else {
			results, err = search.RunBatch(context.Background(), batch, s.cfg.DB, group[0].opt)
		}
		lo := 0
		for _, p := range group {
			o := outcome{err: err, batchSize: total}
			if err == nil {
				o.results = results[lo : lo+len(p.queries)]
			}
			lo += len(p.queries)
			p.out <- o
		}
	}
}

// QueueDepth reports the number of requests currently waiting for a
// shared scan.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// retryAfterSeconds estimates when a rejected client should come back:
// the mean request latency times the backlog it would wait behind,
// clamped to [1, 30] seconds (RFC 7231 permits any delay; a bounded
// hint keeps well-behaved clients from stampeding or stalling).
func (s *Server) retryAfterSeconds() int {
	avgMS := int64(100) // no history yet: assume a fast scan
	if n := s.st.latencyCount.Load(); n > 0 {
		avgMS = s.st.latencySumMS.Load() / n
	}
	secs := (avgMS*int64(s.QueueDepth()) + 999) / 1000
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return int(secs)
}

// admit queues a pending and wakes the dispatcher. It returns an HTTP
// status and error when the request must be refused instead.
func (s *Server) admit(p *pending) (int, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return http.StatusServiceUnavailable, errors.New("server is draining")
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.st.rejected.Add(1)
		return http.StatusTooManyRequests, errors.New("admission queue full")
	}
	s.queue = append(s.queue, p)
	depth := int64(len(s.queue))
	s.mu.Unlock()
	raise(&s.st.queueHigh, depth)
	s.st.queries.Add(int64(len(p.queries)))
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return 0, nil
}
