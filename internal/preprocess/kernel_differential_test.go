package preprocess

import (
	"reflect"
	"testing"

	"genomedsm/internal/cluster"
)

// TestBandKernelDifferentialRun runs the same pre-process twice — striped
// band kernel enabled and forced-scalar — and requires bit-identical
// results: best tracking (score and coordinates), the full result
// matrix, and every saved column and border row. This is the end-to-end
// guarantee behind swapping the kernel into the chunk loop: cluster
// semantics, checkpoints and sink output may not change by one bit.
func TestBandKernelDifferentialRun(t *testing.T) {
	s, tt := testPair(t, 911, 700)
	cfgs := []Config{
		// Narrow bands, immediate saving, offbeat interleaves.
		{BandScheme: BandFixed, BandSize: 37, ChunkSize: 48, ResultInterleave: 64,
			Threshold: 12, SaveInterleave: 53, IOMode: IOImmediate},
		// One band per node, deferred I/O, low threshold (dense hits).
		{BandScheme: BandEqual, BandSize: 1, ChunkSize: 100, ResultInterleave: 32,
			Threshold: 3, SaveInterleave: 61, IOMode: IODeferred},
		// No saving at all, growing chunks.
		{BandScheme: BandFixed, BandSize: 80, ChunkSize: 32, ChunkGrowth: GrowthGeometric,
			GrowthStep: 2, ResultInterleave: 50, Threshold: 20, IOMode: IONone},
	}
	for ci, cfg := range cfgs {
		run := func(disable bool) (*Result, *MemSink) {
			t.Helper()
			disableBandKernel = disable
			defer func() { disableBandKernel = false }()
			sink := NewMemSink()
			res, err := Run(3, cluster.Zero(), s, tt, sc, cfg, sink)
			if err != nil {
				t.Fatalf("cfg %d disable=%v: %v", ci, disable, err)
			}
			return res, sink
		}
		kres, ksink := run(false)
		sres, ssink := run(true)
		if kres.BestScore != sres.BestScore || kres.BestI != sres.BestI || kres.BestJ != sres.BestJ {
			t.Errorf("cfg %d: kernel best %d@(%d,%d), scalar %d@(%d,%d)", ci,
				kres.BestScore, kres.BestI, kres.BestJ, sres.BestScore, sres.BestI, sres.BestJ)
		}
		if kres.TotalHits != sres.TotalHits {
			t.Errorf("cfg %d: kernel hits %d, scalar %d", ci, kres.TotalHits, sres.TotalHits)
		}
		if !reflect.DeepEqual(kres.ResultMatrix, sres.ResultMatrix) {
			t.Errorf("cfg %d: result matrices differ", ci)
		}
		if kres.ColumnsSaved != sres.ColumnsSaved || kres.BorderRowsSaved != sres.BorderRowsSaved ||
			kres.BytesSaved != sres.BytesSaved {
			t.Errorf("cfg %d: kernel saved (%d cols, %d rows, %d B), scalar (%d, %d, %d)", ci,
				kres.ColumnsSaved, kres.BorderRowsSaved, kres.BytesSaved,
				sres.ColumnsSaved, sres.BorderRowsSaved, sres.BytesSaved)
		}
		if !reflect.DeepEqual(ksink.Columns, ssink.Columns) || !reflect.DeepEqual(ksink.Starts, ssink.Starts) {
			t.Errorf("cfg %d: saved columns differ", ci)
		}
		if !reflect.DeepEqual(ksink.Border, ssink.Border) {
			t.Errorf("cfg %d: saved border rows differ", ci)
		}
	}
}
