package preprocess

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
)

// Store provides read access to the data a pre-process run saved — the
// interface the paper's "later processing" consumes: "knowing interesting
// areas of the matrix and having the boundary columns and rows allow one
// to reprocess these limited areas so as to retrieve the local
// alignments" (§5).
type Store interface {
	// SavedColumn returns the values of a saved column segment for the
	// band (rows r0..r0+len-1), or ok=false when that column was not
	// saved.
	SavedColumn(band, col int) (r0 int, values []int32, ok bool, err error)
	// BorderRow returns the band's bottom border row (all n columns), or
	// ok=false when it was not saved.
	BorderRow(band int) (values []int32, ok bool, err error)
}

// SavedColumn implements Store for MemSink.
func (s *MemSink) SavedColumn(band, col int) (int, []int32, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.Columns[[2]int{band, col}]
	if !ok {
		return 0, nil, false, nil
	}
	return s.Starts[[2]int{band, col}], v, true, nil
}

// BorderRow implements Store for MemSink.
func (s *MemSink) BorderRow(band int) ([]int32, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, v := range s.Border {
		if key[0] == band {
			return v, true, nil
		}
	}
	return nil, false, nil
}

// SavedColumn implements Store for DirSink.
func (s *DirSink) SavedColumn(band, col int) (int, []int32, bool, error) {
	r0, values, err := ReadSavedColumn(s.Dir, band, col)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	return r0, values, true, nil
}

// BorderRow implements Store for DirSink.
func (s *DirSink) BorderRow(band int) ([]int32, bool, error) {
	matches, err := filepath.Glob(filepath.Join(s.Dir, fmt.Sprintf("band%04d_row*.sw", band)))
	if err != nil || len(matches) == 0 {
		return nil, false, err
	}
	buf, err := os.ReadFile(matches[0])
	if err != nil {
		return nil, false, err
	}
	if len(buf) < 4 || len(buf)%4 != 0 {
		return nil, false, fmt.Errorf("preprocess: corrupt border file %s", matches[0])
	}
	values := make([]int32, len(buf)/4-1)
	for i := range values {
		values[i] = int32(uint32(buf[4+4*i]) | uint32(buf[5+4*i])<<8 |
			uint32(buf[6+4*i])<<16 | uint32(buf[7+4*i])<<24)
	}
	return values, true, nil
}

// BlockScores is the exact recomputation of one result-matrix block.
type BlockScores struct {
	Band   Band
	C0, C1 int // recomputed column range (1-based inclusive)
	// Hits recounts the cells >= threshold inside the requested group's
	// columns (not the warm-up columns before C0Group).
	C0Group, C1Group int
	Hits             int64
	// Best cell inside the group columns.
	BestScore    int
	BestI, BestJ int
	// Endpoints are candidate alignment ends inside the group (score >=
	// threshold, no successor within the block improves on them); feed
	// them to align.ReverseRetrieve to obtain the actual alignments.
	Endpoints []align.Endpoint
}

// ReprocessBlock exactly recomputes the scores of result-matrix block
// (bandIdx, group) from saved data: the band's top border row (saved by
// the band above) and the nearest saved column to the left of the group
// (or the zero column). The recomputed values equal the full-matrix
// values because the boundary data is exact.
func ReprocessBlock(s, t bio.Sequence, sc bio.Scoring, res *Result, store Store, bandIdx, group int, cfg Config) (*BlockScores, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if bandIdx < 0 || bandIdx >= len(res.Bands) {
		return nil, fmt.Errorf("preprocess: band %d out of range", bandIdx)
	}
	n := t.Len()
	band := res.Bands[bandIdx]
	g0 := group * cfg.ResultInterleave
	if g0 < 1 {
		g0 = 1
	}
	g1 := (group+1)*cfg.ResultInterleave - 1
	if g1 > n {
		g1 = n
	}
	if g0 > n || g1 < g0 {
		return nil, fmt.Errorf("preprocess: group %d outside the matrix", group)
	}

	// Left boundary: the nearest saved column at or left of g0−1.
	h := band.Rows()
	prevCol := make([]int32, h+1)
	startCol := 0
	if cfg.SaveInterleave > 0 {
		for c := (g0 - 1) / cfg.SaveInterleave * cfg.SaveInterleave; c > 0; c -= cfg.SaveInterleave {
			r0, vals, ok, err := store.SavedColumn(bandIdx, c)
			if err != nil {
				return nil, err
			}
			if ok {
				if r0 != band.R0 || len(vals) != h {
					return nil, fmt.Errorf("preprocess: saved column %d has rows %d+%d, band needs %d+%d",
						c, r0, len(vals), band.R0, h)
				}
				copy(prevCol[1:], vals)
				startCol = c
				break
			}
		}
	}

	// Top border row: the band above saved its bottom row.
	var top []int32
	if bandIdx > 0 {
		row, ok, err := store.BorderRow(bandIdx - 1)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("preprocess: border row of band %d was not saved; cannot reprocess", bandIdx-1)
		}
		if len(row) != n {
			return nil, fmt.Errorf("preprocess: border row of band %d has %d columns, want %d", bandIdx-1, len(row), n)
		}
		top = row
	}
	topVal := func(j int) int32 {
		if top == nil {
			return 0
		}
		return top[j-1]
	}
	// The saved left column also needs its row-(R0−1) value, which lives
	// in the top border row (or is zero for band 0 / column 0).
	if startCol > 0 {
		prevCol[0] = topVal(startCol)
	}

	out := &BlockScores{Band: band, C0: startCol + 1, C1: g1, C0Group: g0, C1Group: g1}
	col := make([]int32, h+1)
	// Track the columns inside the group so endpoint detection can check
	// east/south-east successors; one look-ahead column past the group
	// edge resolves the endpoints of the group's last column (otherwise
	// every threshold cell on the edge would count as an endpoint).
	var groupCols [][]int32
	lookahead := g1
	if lookahead < n {
		lookahead++
	}
	for j := startCol + 1; j <= lookahead; j++ {
		tj := t[j-1]
		col[0] = topVal(j)
		for x := 1; x <= h; x++ {
			i := band.R0 + x - 1
			v := int(prevCol[x-1]) + sc.Pair(s[i-1], tj)
			if w := int(prevCol[x]) + sc.Gap; w > v {
				v = w
			}
			if no := int(col[x-1]) + sc.Gap; no > v {
				v = no
			}
			if v < 0 {
				v = 0
			}
			col[x] = int32(v)
			if j >= g0 && j <= g1 {
				if v >= cfg.Threshold {
					out.Hits++
				}
				if v > out.BestScore {
					out.BestScore, out.BestI, out.BestJ = v, i, j
				}
			}
		}
		if j >= g0 {
			cp := make([]int32, h+1)
			copy(cp, col)
			groupCols = append(groupCols, cp)
		}
		prevCol, col = col, prevCol
	}

	// Endpoint detection inside the group: value >= threshold and no
	// successor (east, south, south-east) matches or beats it.
	for k, c := range groupCols {
		j := g0 + k
		if j > g1 {
			break // the look-ahead column only serves as a successor
		}
		var east []int32
		if k+1 < len(groupCols) {
			east = groupCols[k+1]
		}
		lastMatrixRow := band.R1 == s.Len()
		for x := 1; x <= h; x++ {
			v := c[x]
			if int(v) < cfg.Threshold {
				continue
			}
			if x == h && !lastMatrixRow {
				// The band's bottom row has successors in the next band;
				// alignments continuing there are that band's blocks'
				// business.
				continue
			}
			if x < h && c[x+1] >= v {
				continue
			}
			if east != nil && (east[x] >= v || (x < h && east[x+1] >= v)) {
				continue
			}
			out.Endpoints = append(out.Endpoints, align.Endpoint{I: band.R0 + x - 1, J: j, Score: int(v)})
		}
	}
	// Best first: later retrieval skips endpoints already covered by a
	// retrieved alignment, so strong alignments should come first.
	sort.Slice(out.Endpoints, func(a, b int) bool {
		x, y := out.Endpoints[a], out.Endpoints[b]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		if x.I != y.I {
			return x.I < y.I
		}
		return x.J < y.J
	})
	// Non-maximum suppression: a strong alignment ending at (I, J) casts
	// a cone of weaker threshold-crossing ridge ends around it; an
	// endpoint within a kept endpoint's score-radius is a restatement of
	// the same similar region, not a distinct alignment.
	var kept []align.Endpoint
	for _, e := range out.Endpoints {
		shadowed := false
		for _, k := range kept {
			if iabs32(e.I-k.I) <= k.Score && iabs32(e.J-k.J) <= k.Score {
				shadowed = true
				break
			}
		}
		if !shadowed {
			kept = append(kept, e)
		}
	}
	out.Endpoints = kept
	return out, nil
}

func iabs32(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// RetrieveFromBlock composes the full "later processing" pipeline of §5:
// reprocess the block from saved data, then rebuild the actual alignments
// at its endpoints with the Section 6 reverse method over the original
// sequences.
func RetrieveFromBlock(s, t bio.Sequence, sc bio.Scoring, res *Result, store Store, bandIdx, group int, cfg Config) ([]*align.Alignment, error) {
	bs, err := ReprocessBlock(s, t, sc, res, store, bandIdx, group, cfg)
	if err != nil {
		return nil, err
	}
	als, _, err := align.RetrieveAll(s, t, sc, bs.Endpoints)
	return als, err
}
