package preprocess

import (
	"testing"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
)

// reprocessSetup runs a saving pre-process pass and returns everything the
// later-processing pipeline needs.
func reprocessSetup(t *testing.T, sink ColumnSink) (bio.Sequence, bio.Sequence, Config, *Result) {
	t.Helper()
	g := bio.NewGenerator(503)
	pair, err := g.HomologousPair(1200, bio.HomologyModel{
		Regions: 4, RegionLen: 150, RegionJit: 30,
		Divergence: bio.MutationModel{SubstitutionRate: 0.04},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		BandScheme: BandFixed, BandSize: 300,
		ChunkSize: 200, ResultInterleave: 150,
		SaveInterleave: 200, Threshold: 40,
		IOMode: IOImmediate,
	}
	res, err := Run(2, cluster.Zero(), pair.S, pair.T, sc, cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	return pair.S, pair.T, cfg, res
}

func TestReprocessBlockMatchesFullMatrix(t *testing.T) {
	sink := NewMemSink()
	s, tt, cfg, res := reprocessSetup(t, sink)
	m, err := align.NewSWMatrix(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	blocks := InterestingBlocks(res, 1)
	if len(blocks) == 0 {
		t.Fatal("no interesting blocks")
	}
	for _, blk := range blocks {
		bs, err := ReprocessBlock(s, tt, sc, res, sink, blk[0], blk[1], cfg)
		if err != nil {
			t.Fatalf("block %v: %v", blk, err)
		}
		if bs.Hits != res.ResultMatrix[blk[0]][blk[1]] {
			t.Errorf("block %v: recomputed hits %d, scoreboard says %d",
				blk, bs.Hits, res.ResultMatrix[blk[0]][blk[1]])
		}
		// The block's best cell must carry the true full-matrix value.
		if got := m.Score(bs.BestI, bs.BestJ); got != bs.BestScore {
			t.Errorf("block %v: best %d at (%d,%d), matrix has %d",
				blk, bs.BestScore, bs.BestI, bs.BestJ, got)
		}
		// Every endpoint's score must be exact too.
		for _, ep := range bs.Endpoints {
			if got := m.Score(ep.I, ep.J); got != ep.Score {
				t.Errorf("block %v endpoint (%d,%d): %d, matrix %d", blk, ep.I, ep.J, ep.Score, got)
			}
		}
	}
}

func TestRetrieveFromBlock(t *testing.T) {
	sink := NewMemSink()
	s, tt, cfg, res := reprocessSetup(t, sink)
	// Pick the block holding the global best cell.
	bandIdx := -1
	for i, b := range res.Bands {
		if res.BestI >= b.R0 && res.BestI <= b.R1 {
			bandIdx = i
		}
	}
	group := res.BestJ / cfg.ResultInterleave
	als, err := RetrieveFromBlock(s, tt, sc, res, sink, bandIdx, group, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(als) == 0 {
		t.Fatal("no alignments retrieved from the best block")
	}
	foundBest := false
	for i, al := range als {
		if err := al.Validate(s, tt, sc); err != nil {
			t.Errorf("alignment %d: %v", i, err)
		}
		if al.Score >= res.BestScore {
			foundBest = true
		}
	}
	if !foundBest {
		t.Errorf("best-score alignment (%d) not among the %d retrieved", res.BestScore, len(als))
	}
}

func TestReprocessFromDirSink(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, tt, cfg, res := reprocessSetup(t, sink)
	blocks := InterestingBlocks(res, 1)
	if len(blocks) == 0 {
		t.Fatal("no interesting blocks")
	}
	blk := blocks[0]
	bs, err := ReprocessBlock(s, tt, sc, res, sink, blk[0], blk[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Hits != res.ResultMatrix[blk[0]][blk[1]] {
		t.Errorf("dir-sink reprocess hits %d, scoreboard %d", bs.Hits, res.ResultMatrix[blk[0]][blk[1]])
	}
}

func TestReprocessErrors(t *testing.T) {
	sink := NewMemSink()
	s, tt, cfg, res := reprocessSetup(t, sink)
	if _, err := ReprocessBlock(s, tt, sc, res, sink, 99, 0, cfg); err == nil {
		t.Error("out-of-range band accepted")
	}
	if _, err := ReprocessBlock(s, tt, sc, res, sink, 0, 9999, cfg); err == nil {
		t.Error("out-of-range group accepted")
	}
	if _, err := ReprocessBlock(s, tt, bio.Scoring{}, res, sink, 0, 0, cfg); err == nil {
		t.Error("invalid scoring accepted")
	}
	// A run without saved border rows cannot reprocess bands > 0.
	empty := NewMemSink()
	if _, err := ReprocessBlock(s, tt, sc, res, empty, 1, 0, cfg); err == nil {
		t.Error("missing border row not reported")
	}
}
