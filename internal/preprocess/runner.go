package preprocess

import (
	"fmt"

	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/dispatch"
	"genomedsm/internal/dsm"
	"genomedsm/internal/recovery"
	"genomedsm/internal/swar"
)

// disableBandKernel forces every chunk through the scalar loop. The
// differential test flips it to prove the striped and scalar paths
// produce bit-identical runs (hits, best tracking, saved columns,
// checkpoint state included).
var disableBandKernel bool

// Result is the outcome of a pre-process run.
type Result struct {
	// Bands is the band layout used.
	Bands []Band
	// ResultMatrix[band][g] counts the cells of that band with score >=
	// Threshold among columns c with floor(c/ResultInterleave) == g.
	ResultMatrix [][]int64
	// TotalHits is the grand total of the result matrix.
	TotalHits int64
	// BestScore and its end coordinates, tracked exactly (no heuristics).
	BestScore    int
	BestI, BestJ int
	// ColumnsSaved / BorderRowsSaved / BytesSaved describe the I/O volume.
	ColumnsSaved    int
	BorderRowsSaved int
	BytesSaved      int64
	// Times per the paper's measurement protocol (§5.1): Core is the
	// score-matrix calculation (the number reported in Figs. 18–20), Term
	// covers deferred I/O and the final synchronization.
	CoreTime float64
	TermTime float64
	// Makespan is the full simulated time including result collection.
	Makespan   float64
	Breakdowns []cluster.Breakdown
	Stats      dsm.Stats
}

// Run executes the pre-process strategy over s (rows) and t (columns) on
// nprocs simulated nodes. sink receives saved columns and border rows (it
// may be nil when cfg.IOMode is IONone or SaveInterleave is 0).
func Run(nprocs int, cc cluster.Config, s, t bio.Sequence, sc bio.Scoring, cfg Config, sink ColumnSink) (*Result, error) {
	m, n := s.Len(), t.Len()
	if nprocs < 1 {
		return nil, fmt.Errorf("preprocess: nprocs %d", nprocs)
	}
	if err := scoringCheck(sc); err != nil {
		return nil, err
	}
	if err := cfg.Validate(m, n); err != nil {
		return nil, err
	}
	saving := cfg.IOMode != IONone && cfg.SaveInterleave > 0
	if saving && sink == nil {
		return nil, fmt.Errorf("preprocess: saving enabled but no sink provided")
	}
	bands, err := cfg.PlanBands(m, nprocs)
	if err != nil {
		return nil, err
	}
	chunks := cfg.PlanChunks(n)

	sys, err := dsm.NewSystem(nprocs, cc, dsm.Options{
		CondVars: len(bands) + 1,
		Locks:    4,
	})
	if err != nil {
		return nil, err
	}
	// One passage-band row per boundary, homed at the producer.
	borders := make([]dsm.Region, len(bands)-1)
	for b := range borders {
		if borders[b], err = sys.AllocAt(4*n, bands[b].Owner); err != nil {
			return nil, err
		}
	}
	// The result matrix: one row of int64 counters per band, homed at the
	// band's owner so each node handles its writes locally (§5.1).
	rowWidth := n/cfg.ResultInterleave + 1
	rRegions := make([]dsm.Region, len(bands))
	for b := range bands {
		if rRegions[b], err = sys.AllocAt(8*rowWidth, bands[b].Owner); err != nil {
			return nil, err
		}
	}

	res := &Result{Bands: bands, ResultMatrix: make([][]int64, len(bands))}
	type nodeOut struct {
		core, term           float64
		best, bestI, bestJ   int
		colsSaved, rowsSaved int
		bytesSaved           int64
	}
	outs := make([]nodeOut, nprocs)

	err = sys.Run(func(node *dsm.Node) error {
		id := node.ID()
		out := &outs[id]

		type deferredCol struct {
			band, col, r0 int
			values        []int32
		}
		var deferred []deferredCol

		// Crash recovery: resume from the checkpointed chunk cursor. The
		// blob carries the band-local column state, the accumulated
		// per-node result fields and the deferred-I/O list; bands this
		// node finished before the crash already published their hits to
		// the (re-homed, surviving) result-matrix pages.
		firstBand, firstChunk := 0, 0
		var resPrevCol, resBottom []int32
		var resHits []int64
		var coreStart float64
		if ck := node.Restored(); ck != nil {
			firstBand = ck.Int()
			firstChunk = ck.Int()
			resPrevCol = ck.Int32s()
			resBottom = ck.Int32s()
			resHits = ck.Int64s()
			out.best = ck.Int()
			out.bestI = ck.Int()
			out.bestJ = ck.Int()
			out.colsSaved = ck.Int()
			out.rowsSaved = ck.Int()
			out.bytesSaved = ck.Int64()
			coreStart = ck.Float()
			for i, cnt := 0, ck.Int(); i < cnt; i++ {
				var d deferredCol
				d.band = ck.Int()
				d.col = ck.Int()
				d.r0 = ck.Int()
				d.values = ck.Int32s()
				deferred = append(deferred, d)
			}
			if err := ck.Err(); err != nil {
				return err
			}
		} else {
			if err := node.Barrier(); err != nil {
				return err
			}
			coreStart = node.Clock().Now()
		}
		disk := node.Config().Disk

		saveColumn := func(band, col, r0 int, values []int32) error {
			cp := make([]int32, len(values))
			copy(cp, values)
			out.colsSaved++
			out.bytesSaved += int64(4 * len(cp))
			if cfg.IOMode == IODeferred {
				deferred = append(deferred, deferredCol{band, col, r0, cp})
				return nil
			}
			node.Clock().Advance(disk.WriteCost(4*len(cp)), cluster.IO)
			return sink.WriteColumn(band, col, r0, cp)
		}

		for bi := firstBand; bi < len(bands); bi++ {
			band := bands[bi]
			if band.Owner != id {
				continue
			}
			h := band.Rows()
			// The striped band kernel advances whole columns in packed
			// lanes; chunks whose value bound overflows both lane widths
			// (or a disabled kernel) fall back to the scalar loop below,
			// which stays the differential oracle.
			var kern *swar.BandKernel
			if !disableBandKernel && dispatch.Active().Band(h) {
				kern = swar.NewBandKernel(s[band.R0-1:band.R0-1+h], sc, cfg.Threshold)
			}
			var hitbuf []int32
			// prevCol[x] is the value at (band.R0-1+x, j-1); col[x] the
			// current column. Index 0 is the top border row.
			prevCol := make([]int32, h+1)
			col := make([]int32, h+1)
			topRow := make([]int32, 0, n) // received top border values, per chunk
			bottom := make([]int32, n)    // this band's bottom row (row band.R1)
			hits := make([]int64, rowWidth)
			ci0 := 0
			if bi == firstBand && firstChunk > 0 {
				// Mid-band resume: restore the carried column state.
				ci0 = firstChunk
				copy(prevCol, resPrevCol)
				copy(bottom, resBottom)
				copy(hits, resHits)
			}

			for ci := ci0; ci < len(chunks); ci++ {
				ch := chunks[ci]
				c0, c1 := ch[0], ch[1]
				width := c1 - c0 + 1
				topRow = topRow[:width]
				if band.Index > 0 {
					if err := node.Waitcv(band.Index - 1); err != nil {
						return err
					}
					if err := node.ReadInt32s(borders[band.Index-1], 4*(c0-1), topRow); err != nil {
						return err
					}
				} else {
					for x := range topRow {
						topRow[x] = 0
					}
				}
				done := 0
				if kern != nil {
					if cap(hitbuf) < width {
						hitbuf = make([]int32, width)
					}
					args := swar.ChunkArgs{
						Cols:   t[c0-1 : c1],
						Diag:   prevCol[0],
						Left:   prevCol[1:],
						Top:    topRow,
						BestIn: out.best,
						Bottom: bottom[c0-1 : c1],
						Hits:   hitbuf[:width],
					}
					if saving {
						args.WantCol = func(ci int) bool { return (c0+ci)%cfg.SaveInterleave == 0 }
						args.Save = func(ci int, values []int32) error {
							return saveColumn(band.Index, c0+ci, band.R0, values)
						}
					}
					var cb swar.ChunkBest
					var err error
					cb, done, err = kern.Chunk(&args)
					if err != nil {
						return err
					}
					if done > 0 {
						for x := 0; x < done; x++ {
							hits[(c0+x)/cfg.ResultInterleave] += int64(hitbuf[x])
						}
						if cb.Improved {
							out.best, out.bestI, out.bestJ = cb.Score, band.R0+cb.Row, c0+cb.Col
						}
						// The carried column's border cell, exactly as the
						// scalar loop's final swap would leave it.
						prevCol[0] = topRow[done-1]
					}
				}
				if done < width {
					// Scalar continuation for the columns the kernel did
					// not consume (all of them when the kernel is off).
					for j := c0 + done; j <= c1; j++ {
						tj := t[j-1]
						col[0] = topRow[j-c0]
						for x := 1; x <= h; x++ {
							i := band.R0 + x - 1
							v := int(prevCol[x-1]) + sc.Pair(s[i-1], tj)
							if w := int(prevCol[x]) + sc.Gap; w > v {
								v = w
							}
							if no := int(col[x-1]) + sc.Gap; no > v {
								v = no
							}
							if v < 0 {
								v = 0
							}
							col[x] = int32(v)
							if v >= cfg.Threshold {
								hits[j/cfg.ResultInterleave]++
							}
							if v > out.best {
								out.best, out.bestI, out.bestJ = v, i, j
							}
						}
						bottom[j-1] = col[h]
						if saving && j%cfg.SaveInterleave == 0 {
							if err := saveColumn(band.Index, j, band.R0, col[1:]); err != nil {
								return err
							}
						}
						prevCol, col = col, prevCol
					}
				}
				node.Compute(int64(h) * int64(width))
				if band.Index < len(bands)-1 {
					if err := node.WriteInt32s(borders[band.Index], 4*(c0-1), bottom[c0-1:c1]); err != nil {
						return err
					}
					if err := node.Setcv(band.Index); err != nil {
						return err
					}
				}
				// Chunk boundary: a recovery point (mid-band only; the
				// band's tail work — row save, hits publication — belongs
				// to the resumed pass over its remaining chunks).
				if ci+1 < len(chunks) {
					bandIdx, nextChunk := bi, ci+1
					if err := node.Checkpoint(func(w *recovery.Writer) {
						w.Int(bandIdx)
						w.Int(nextChunk)
						w.Int32s(prevCol)
						w.Int32s(bottom)
						w.Int64s(hits)
						w.Int(out.best)
						w.Int(out.bestI)
						w.Int(out.bestJ)
						w.Int(out.colsSaved)
						w.Int(out.rowsSaved)
						w.Int64(out.bytesSaved)
						w.Float(coreStart)
						w.Int(len(deferred))
						for _, d := range deferred {
							w.Int(d.band)
							w.Int(d.col)
							w.Int(d.r0)
							w.Int32s(d.values)
						}
					}); err != nil {
						return err
					}
				}
			}
			// The passage band is saved once the last of its cells has
			// been updated (§5).
			if saving && band.Index < len(bands)-1 {
				out.rowsSaved++
				out.bytesSaved += int64(4 * n)
				if cfg.IOMode == IODeferred {
					cp := make([]int32, n)
					copy(cp, bottom)
					deferred = append(deferred, deferredCol{band.Index, -1, band.R1, cp})
				} else {
					node.Clock().Advance(disk.WriteCost(4*n), cluster.IO)
					if err := sink.WriteBorderRow(band.Index, band.R1, bottom); err != nil {
						return err
					}
				}
			}
			// Publish this band's result-matrix row (local home writes).
			for g, hv := range hits {
				if hv != 0 {
					if err := node.WriteInt64(rRegions[band.Index], 8*g, hv); err != nil {
						return err
					}
				}
			}
		}
		out.core = node.Clock().Now() - coreStart

		// Term phase: deferred I/O, then the final barrier.
		for _, d := range deferred {
			node.Clock().Advance(disk.WriteCost(4*len(d.values)), cluster.IO)
			if d.col >= 0 {
				if err := sink.WriteColumn(d.band, d.col, d.r0, d.values); err != nil {
					return err
				}
			} else {
				if err := sink.WriteBorderRow(d.band, d.r0, d.values); err != nil {
					return err
				}
			}
		}
		if err := node.Barrier(); err != nil {
			return err
		}
		out.term = node.Clock().Now() - coreStart - out.core

		// Node 0 collects the result matrix.
		if id == 0 {
			for b := range bands {
				row := make([]int64, rowWidth)
				for g := range row {
					v, err := node.ReadInt64(rRegions[b], 8*g)
					if err != nil {
						return err
					}
					row[g] = v
				}
				res.ResultMatrix[b] = row
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		if o.core > res.CoreTime {
			res.CoreTime = o.core
		}
		if o.term > res.TermTime {
			res.TermTime = o.term
		}
		if o.best > res.BestScore {
			res.BestScore, res.BestI, res.BestJ = o.best, o.bestI, o.bestJ
		}
		res.ColumnsSaved += o.colsSaved
		res.BorderRowsSaved += o.rowsSaved
		res.BytesSaved += o.bytesSaved
	}
	for _, row := range res.ResultMatrix {
		for _, v := range row {
			res.TotalHits += v
		}
	}
	res.Makespan = sys.Makespan()
	res.Breakdowns = sys.Breakdowns()
	res.Stats = sys.TotalStats()
	return res, nil
}

// InterestingBlocks returns the result-matrix cells with at least minHits
// hits, the regions the paper suggests re-processing to retrieve actual
// alignments ("having the total number of hits will hint whether
// investigating further in that block of data").
func InterestingBlocks(res *Result, minHits int64) [][2]int {
	var out [][2]int
	for b, row := range res.ResultMatrix {
		for g, v := range row {
			if v >= minHits {
				out = append(out, [2]int{b, g})
			}
		}
	}
	return out
}
