// Package preprocess implements the paper's third strategy (§5): the
// exact Smith–Waterman recurrence, without candidate heuristics, run over
// bands of rows on the DSM cluster. Instead of tracking alignments, each
// node keeps a scoreboard — the result matrix — counting cells whose score
// exceeds a threshold, and saves selected columns to disk for later exact
// re-processing. Columns are processed in chunks through a shared passage
// band to limit locking.
package preprocess

import (
	"fmt"

	"genomedsm/internal/bio"
)

// IOMode selects how saved columns reach the disk (§5).
type IOMode int

// The three I/O modes of §5.
const (
	// IONone disables storing entirely ("used only to determine the
	// effect of I/O in general").
	IONone IOMode = iota
	// IOImmediate writes each column with a blocking operation as soon as
	// it is ready.
	IOImmediate
	// IODeferred keeps the columns in memory until the whole matrix has
	// been calculated, then sends the data to disk.
	IODeferred
)

func (m IOMode) String() string {
	switch m {
	case IONone:
		return "none"
	case IOImmediate:
		return "immediate"
	case IODeferred:
		return "deferred"
	default:
		return fmt.Sprintf("iomode(%d)", int(m))
	}
}

// BandScheme selects how band heights are chosen (§5).
type BandScheme int

// The three band-size schemes of §5.
const (
	// BandFixed uses the configured band size for every band (the last
	// band absorbs the remainder). Fixed blocking "produces better output
	// files since the columns are saved according to the band size".
	BandFixed BandScheme = iota
	// BandEqual gives every node one band of equal height.
	BandEqual
	// BandBalanced adjusts the band size so that all nodes process the
	// same number of bands of equal size while staying close to the
	// designated band size (the bsize_up/bsize_down equations).
	BandBalanced
)

func (s BandScheme) String() string {
	switch s {
	case BandFixed:
		return "fixed"
	case BandEqual:
		return "equal"
	case BandBalanced:
		return "balanced"
	default:
		return fmt.Sprintf("bandscheme(%d)", int(s))
	}
}

// ChunkGrowth selects how chunk sizes evolve across a band (§5: "the size
// of the chunks can be set to a fixed value or grow in arithmetic or
// geometric projections"). Small chunks at the beginning let downstream
// processors start earlier.
type ChunkGrowth int

// Chunk growth methods.
const (
	GrowthFixed ChunkGrowth = iota
	GrowthArithmetic
	GrowthGeometric
)

func (g ChunkGrowth) String() string {
	switch g {
	case GrowthFixed:
		return "fixed"
	case GrowthArithmetic:
		return "arithmetic"
	case GrowthGeometric:
		return "geometric"
	default:
		return fmt.Sprintf("chunkgrowth(%d)", int(g))
	}
}

// Config carries the behaviour parameters listed in §5: band height,
// chunk size and growth method, save interleave, result-matrix interleave
// and I/O mode.
type Config struct {
	BandScheme BandScheme
	// BandSize is the designated band height in rows (BandFixed and
	// BandBalanced).
	BandSize int
	// ChunkSize is the (initial) number of columns per chunk.
	ChunkSize int
	// ChunkGrowth is the growth method; GrowthStep is the arithmetic
	// increment or the geometric numerator (size *= 1+GrowthStep/8 per
	// chunk would be overly exotic — geometric doubles every GrowthStep
	// chunks, arithmetic adds GrowthStep columns per chunk).
	ChunkGrowth ChunkGrowth
	GrowthStep  int
	// SaveInterleave ip: column i is saved iff i ≠ 0 and i mod ip == 0.
	// Zero disables column saving.
	SaveInterleave int
	// ResultInterleave ip: result-matrix cell (band, j) accumulates the
	// hits of all columns c with floor(c/ip) == j.
	ResultInterleave int
	// Threshold is the hit threshold: a cell scores a hit when its value
	// is >= Threshold.
	Threshold int
	// IOMode selects none/immediate/deferred I/O for saved columns.
	IOMode IOMode
}

// DefaultConfig mirrors the paper's common test setup: 1K blocking on all
// three blocking parameters, threshold tuned for DNA, deferred I/O off.
func DefaultConfig() Config {
	return Config{
		BandScheme:       BandBalanced,
		BandSize:         1024,
		ChunkSize:        1024,
		ChunkGrowth:      GrowthFixed,
		SaveInterleave:   1024,
		ResultInterleave: 1024,
		Threshold:        25,
		IOMode:           IONone,
	}
}

// Validate rejects inconsistent configurations for a run over sequences of
// the given lengths.
func (c Config) Validate(m, n int) error {
	if c.BandSize < 1 && c.BandScheme != BandEqual {
		return fmt.Errorf("preprocess: band size %d", c.BandSize)
	}
	if c.ChunkSize < 1 {
		return fmt.Errorf("preprocess: chunk size %d", c.ChunkSize)
	}
	if c.ChunkGrowth != GrowthFixed && c.GrowthStep < 1 {
		return fmt.Errorf("preprocess: growth step %d for %s growth", c.GrowthStep, c.ChunkGrowth)
	}
	if c.SaveInterleave < 0 {
		return fmt.Errorf("preprocess: save interleave %d", c.SaveInterleave)
	}
	if c.ResultInterleave < 1 {
		return fmt.Errorf("preprocess: result interleave %d", c.ResultInterleave)
	}
	if c.Threshold < 1 {
		return fmt.Errorf("preprocess: threshold %d", c.Threshold)
	}
	if m < 1 || n < 1 {
		return fmt.Errorf("preprocess: empty input %dx%d", m, n)
	}
	return nil
}

// Band is one horizontal band of rows, 1-based inclusive.
type Band struct {
	Index  int
	R0, R1 int
	Owner  int
}

// Rows returns the band height.
func (b Band) Rows() int { return b.R1 - b.R0 + 1 }

// PlanBands computes the band layout for m rows over nprocs nodes using
// the configured scheme. Bands are assigned round-robin.
func (c Config) PlanBands(m, nprocs int) ([]Band, error) {
	if err := c.Validate(m, 1); err != nil {
		return nil, err
	}
	var heights []int
	switch c.BandScheme {
	case BandEqual:
		// One band per node, as equal as possible.
		for p := 0; p < nprocs; p++ {
			h := (p+1)*m/nprocs - p*m/nprocs
			if h > 0 {
				heights = append(heights, h)
			}
		}
	case BandFixed:
		for left := m; left > 0; {
			h := c.BandSize
			if h > left {
				h = left
			}
			heights = append(heights, h)
			left -= h
		}
	case BandBalanced:
		// The §5 equations: make every node process the same number of
		// bands of (nearly) the designated size.
		bsize := c.BandSize
		if bsize > m {
			bsize = m
		}
		bandsProc := ceilDiv(ceilDiv(m, bsize), nprocs)
		bsizeDown := ceilDiv(m, bandsProc*nprocs)
		var bsizeUp int
		if bandsProc > 1 {
			bsizeUp = ceilDiv(m, (bandsProc-1)*nprocs)
		} else {
			bsizeUp = m // a single band per node at most
			if bsizeUp > bsize*2 {
				bsizeUp = bsizeDown // cannot stretch that far
			}
		}
		newSize := bsizeDown
		if abs(bsizeUp-bsize) < abs(bsizeDown-bsize) && bsizeUp >= 1 {
			newSize = bsizeUp
		}
		if newSize < 1 {
			newSize = 1
		}
		for left := m; left > 0; {
			h := newSize
			if h > left {
				h = left
			}
			heights = append(heights, h)
			left -= h
		}
	default:
		return nil, fmt.Errorf("preprocess: unknown band scheme %d", c.BandScheme)
	}
	bands := make([]Band, len(heights))
	r := 1
	for i, h := range heights {
		bands[i] = Band{Index: i, R0: r, R1: r + h - 1, Owner: i % nprocs}
		r += h
	}
	return bands, nil
}

// PlanChunks splits n columns into chunks per the growth method.
func (c Config) PlanChunks(n int) [][2]int {
	var out [][2]int
	size := c.ChunkSize
	chunkIdx := 0
	for c0 := 1; c0 <= n; {
		c1 := c0 + size - 1
		if c1 > n {
			c1 = n
		}
		out = append(out, [2]int{c0, c1})
		c0 = c1 + 1
		chunkIdx++
		switch c.ChunkGrowth {
		case GrowthArithmetic:
			size += c.GrowthStep
		case GrowthGeometric:
			if chunkIdx%c.GrowthStep == 0 {
				size *= 2
			}
		}
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// scoringCheck revalidates the scoring scheme for this package's kernels.
func scoringCheck(sc bio.Scoring) error { return sc.Validate() }
