package preprocess

import (
	"testing"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
)

var sc = bio.DefaultScoring()

func testPair(t *testing.T, seed int64, n int) (bio.Sequence, bio.Sequence) {
	t.Helper()
	g := bio.NewGenerator(seed)
	pair, err := g.HomologousPair(n, bio.HomologyModel{
		Regions: n / 250, RegionLen: 120, RegionJit: 40,
		Divergence: bio.MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pair.S, pair.T
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(100, 100); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{BandScheme: BandFixed, BandSize: 0, ChunkSize: 1, ResultInterleave: 1, Threshold: 1},
		{BandScheme: BandFixed, BandSize: 1, ChunkSize: 0, ResultInterleave: 1, Threshold: 1},
		{BandScheme: BandFixed, BandSize: 1, ChunkSize: 1, ResultInterleave: 0, Threshold: 1},
		{BandScheme: BandFixed, BandSize: 1, ChunkSize: 1, ResultInterleave: 1, Threshold: 0},
		{BandScheme: BandFixed, BandSize: 1, ChunkSize: 1, ResultInterleave: 1, Threshold: 1, SaveInterleave: -1},
		{BandScheme: BandFixed, BandSize: 1, ChunkSize: 1, ResultInterleave: 1, Threshold: 1, ChunkGrowth: GrowthArithmetic},
	}
	for i, c := range bad {
		if err := c.Validate(10, 10); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestPlanBandsSchemes(t *testing.T) {
	check := func(bands []Band, m int) {
		t.Helper()
		if bands[0].R0 != 1 || bands[len(bands)-1].R1 != m {
			t.Fatalf("bands do not cover [1,%d]: %+v", m, bands)
		}
		for i := 1; i < len(bands); i++ {
			if bands[i].R0 != bands[i-1].R1+1 {
				t.Fatalf("bands overlap or gap at %d: %+v", i, bands)
			}
			if bands[i].Owner != i%4 {
				t.Fatalf("band %d owner %d, want round-robin", i, bands[i].Owner)
			}
		}
	}
	cfg := Config{BandScheme: BandEqual, BandSize: 1, ChunkSize: 8, ResultInterleave: 8, Threshold: 5}
	bands, err := cfg.PlanBands(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 4 {
		t.Errorf("equal scheme: %d bands, want 4", len(bands))
	}
	check(bands, 1000)
	for _, b := range bands {
		if b.Rows() != 250 {
			t.Errorf("equal band height %d, want 250", b.Rows())
		}
	}

	cfg.BandScheme = BandFixed
	cfg.BandSize = 300
	bands, err = cfg.PlanBands(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 4 || bands[3].Rows() != 100 {
		t.Errorf("fixed scheme: %+v", bands)
	}
	check(bands, 1000)

	cfg.BandScheme = BandBalanced
	bands, err = cfg.PlanBands(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	check(bands, 1000)
	// Balanced: every node should get the same number of bands.
	perNode := make(map[int]int)
	for _, b := range bands {
		perNode[b.Owner]++
	}
	for p := 0; p < 4; p++ {
		if perNode[p] != perNode[0] {
			t.Errorf("balanced scheme gave node %d %d bands vs node 0's %d", p, perNode[p], perNode[0])
		}
	}
}

func TestPlanChunksGrowth(t *testing.T) {
	cfg := Config{BandScheme: BandFixed, BandSize: 10, ChunkSize: 10, ResultInterleave: 10, Threshold: 5}
	chunks := cfg.PlanChunks(100)
	if len(chunks) != 10 {
		t.Errorf("fixed growth: %d chunks", len(chunks))
	}
	cover(t, chunks, 100)

	cfg.ChunkGrowth = GrowthArithmetic
	cfg.GrowthStep = 10
	chunks = cfg.PlanChunks(100) // 10,20,30,40 → 4 chunks
	if len(chunks) != 4 {
		t.Errorf("arithmetic growth: %d chunks: %v", len(chunks), chunks)
	}
	cover(t, chunks, 100)

	cfg.ChunkGrowth = GrowthGeometric
	cfg.GrowthStep = 1
	chunks = cfg.PlanChunks(100) // 10,20,40,30 → 4 chunks
	cover(t, chunks, 100)
	if len(chunks) != 4 {
		t.Errorf("geometric growth: %d chunks: %v", len(chunks), chunks)
	}
}

func cover(t *testing.T, chunks [][2]int, n int) {
	t.Helper()
	next := 1
	for _, c := range chunks {
		if c[0] != next || c[1] < c[0] {
			t.Fatalf("chunk %v out of order (expected start %d)", c, next)
		}
		next = c[1] + 1
	}
	if next != n+1 {
		t.Fatalf("chunks cover up to %d, want %d", next-1, n)
	}
}

// TestExactScoresAcrossBands is the core correctness check: the banded
// distributed computation must reproduce the exact sequential hit counts,
// best score and best-score position for every processor count and band
// scheme.
func TestExactScoresAcrossBands(t *testing.T) {
	s, tt := testPair(t, 211, 600)
	const threshold = 20
	ref, err := align.Scan(s, tt, sc, align.ScanOptions{HitThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Hits == 0 {
		t.Fatal("reference scan found no hits; weak test input")
	}
	for _, nprocs := range []int{1, 2, 4, 8} {
		for _, scheme := range []BandScheme{BandFixed, BandEqual, BandBalanced} {
			cfg := Config{
				BandScheme: scheme, BandSize: 150,
				ChunkSize: 100, ResultInterleave: 64, Threshold: threshold,
				IOMode: IONone,
			}
			res, err := Run(nprocs, cluster.Zero(), s, tt, sc, cfg, nil)
			if err != nil {
				t.Fatalf("nprocs=%d %s: %v", nprocs, scheme, err)
			}
			if res.TotalHits != ref.Hits {
				t.Errorf("nprocs=%d %s: hits %d, want %d", nprocs, scheme, res.TotalHits, ref.Hits)
			}
			if res.BestScore != ref.BestScore {
				t.Errorf("nprocs=%d %s: best %d, want %d", nprocs, scheme, res.BestScore, ref.BestScore)
			}
			if res.BestI != ref.BestI || res.BestJ != ref.BestJ {
				t.Errorf("nprocs=%d %s: best at (%d,%d), want (%d,%d)",
					nprocs, scheme, res.BestI, res.BestJ, ref.BestI, ref.BestJ)
			}
		}
	}
}

// TestChunkGrowthMethodsStayExact runs the full distributed computation
// with growing chunks: exactness must not depend on the chunk schedule.
func TestChunkGrowthMethodsStayExact(t *testing.T) {
	s, tt := testPair(t, 241, 500)
	const threshold = 20
	ref, err := align.Scan(s, tt, sc, align.ScanOptions{HitThreshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	for _, growth := range []struct {
		g    ChunkGrowth
		step int
	}{{GrowthFixed, 0}, {GrowthArithmetic, 40}, {GrowthGeometric, 2}} {
		cfg := Config{
			BandScheme: BandFixed, BandSize: 120,
			ChunkSize: 50, ChunkGrowth: growth.g, GrowthStep: growth.step,
			ResultInterleave: 100, Threshold: threshold,
		}
		res, err := Run(3, cluster.Zero(), s, tt, sc, cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", growth.g, err)
		}
		if res.TotalHits != ref.Hits || res.BestScore != ref.BestScore {
			t.Errorf("%s growth: hits %d best %d, want %d/%d",
				growth.g, res.TotalHits, res.BestScore, ref.Hits, ref.BestScore)
		}
	}
}

// TestResultMatrixMatchesBruteForce recomputes the per-cell hit counts
// from the full matrix and compares every result-matrix entry.
func TestResultMatrixMatchesBruteForce(t *testing.T) {
	s, tt := testPair(t, 223, 300)
	const threshold = 15
	cfg := Config{
		BandScheme: BandFixed, BandSize: 64,
		ChunkSize: 50, ResultInterleave: 32, Threshold: threshold,
	}
	res, err := Run(3, cluster.Zero(), s, tt, sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := align.NewSWMatrix(s, tt, sc)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int64, len(res.Bands))
	rowWidth := tt.Len()/cfg.ResultInterleave + 1
	for b, band := range res.Bands {
		want[b] = make([]int64, rowWidth)
		for i := band.R0; i <= band.R1; i++ {
			for j := 1; j <= tt.Len(); j++ {
				if m.Score(i, j) >= threshold {
					want[b][j/cfg.ResultInterleave]++
				}
			}
		}
	}
	for b := range want {
		for g := range want[b] {
			if res.ResultMatrix[b][g] != want[b][g] {
				t.Errorf("R[%d][%d] = %d, want %d", b, g, res.ResultMatrix[b][g], want[b][g])
			}
		}
	}
}

// TestSavedColumnsMatchDirectComputation verifies the save-interleave
// output against align.ColumnScan.
func TestSavedColumnsMatchDirectComputation(t *testing.T) {
	s, tt := testPair(t, 227, 300)
	sink := NewMemSink()
	cfg := Config{
		BandScheme: BandFixed, BandSize: 100,
		ChunkSize: 64, ResultInterleave: 64, Threshold: 15,
		SaveInterleave: 50, IOMode: IOImmediate,
	}
	res, err := Run(2, cluster.Zero(), s, tt, sc, cfg, sink)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := tt.Len() / cfg.SaveInterleave * len(res.Bands)
	if res.ColumnsSaved != wantCols {
		t.Errorf("saved %d column segments, want %d", res.ColumnsSaved, wantCols)
	}
	if res.BorderRowsSaved != len(res.Bands)-1 {
		t.Errorf("saved %d border rows, want %d", res.BorderRowsSaved, len(res.Bands)-1)
	}
	// Compare every saved segment against the exact column values.
	cols := make(map[int][]int32)
	err = align.ColumnScan(s, tt, sc, func(j int, col []int32) {
		if j != 0 && j%cfg.SaveInterleave == 0 {
			cp := make([]int32, len(col))
			copy(cp, col)
			cols[j] = cp
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for key, seg := range sink.Columns {
		band, col := key[0], key[1]
		r0 := sink.Starts[key]
		full := cols[col]
		if full == nil {
			t.Fatalf("unexpected saved column %d", col)
		}
		for x, v := range seg {
			if full[r0+x] != v {
				t.Errorf("band %d col %d row %d: saved %d, exact %d", band, col, r0+x, v, full[r0+x])
			}
		}
	}
	// Border rows must equal the exact row values too.
	for key, row := range sink.Border {
		band := key[0]
		r := res.Bands[band].R1
		for j := 1; j <= tt.Len(); j++ {
			wantV := int32(0)
			if full, ok := cols[j]; ok {
				wantV = full[r]
			} else {
				continue // only interleaved columns were captured above
			}
			if row[j-1] != wantV {
				t.Errorf("border row band %d col %d: %d, want %d", band, j, row[j-1], wantV)
			}
		}
	}
}

func TestIOModesCostOrdering(t *testing.T) {
	s, tt := testPair(t, 229, 400)
	cc := cluster.Calibrated2005()
	base := Config{
		BandScheme: BandFixed, BandSize: 100,
		ChunkSize: 100, ResultInterleave: 100, Threshold: 20,
		SaveInterleave: 20,
	}
	run := func(mode IOMode) *Result {
		cfg := base
		cfg.IOMode = mode
		var sink ColumnSink
		if mode != IONone {
			sink = &DiscardSink{}
		}
		res, err := Run(4, cc, s, tt, sc, cfg, sink)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	none := run(IONone)
	imm := run(IOImmediate)
	def := run(IODeferred)
	// Fig. 20: saving at these frequencies has little effect, and deferred
	// gives nearly no benefit over immediate.
	if imm.Makespan < none.Makespan {
		t.Errorf("immediate I/O (%.3f) cheaper than no I/O (%.3f)", imm.Makespan, none.Makespan)
	}
	if imm.Makespan > none.Makespan*1.5 {
		t.Errorf("immediate I/O cost blew up: %.3f vs %.3f", imm.Makespan, none.Makespan)
	}
	ratio := def.Makespan / imm.Makespan
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("deferred/immediate ratio %.2f, paper found them nearly equal", ratio)
	}
	// Deferred charges its I/O in the term phase.
	if def.TermTime <= imm.TermTime {
		t.Errorf("deferred term %.4f not larger than immediate term %.4f", def.TermTime, imm.TermTime)
	}
	if none.ColumnsSaved != 0 || imm.ColumnsSaved == 0 || def.ColumnsSaved != imm.ColumnsSaved {
		t.Errorf("saved column counts: none=%d imm=%d def=%d", none.ColumnsSaved, imm.ColumnsSaved, def.ColumnsSaved)
	}
}

func TestPreprocessSpeedup(t *testing.T) {
	s, tt := testPair(t, 233, 1500)
	cc := cluster.Calibrated2005()
	cfg := Config{
		BandScheme: BandBalanced, BandSize: 100,
		ChunkSize: 150, ResultInterleave: 150, Threshold: 20,
	}
	t1, err := Run(1, cc, s, tt, sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Run(8, cc, s, tt, sc, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := cluster.Speedup(t1.CoreTime, t8.CoreTime)
	// Fig. 18: speed-ups roughly 75% of linear.
	if sp < 4 || sp > 8 {
		t.Errorf("8-node speedup %.2f, expected within (4,8)", sp)
	}
}

func TestRunValidation(t *testing.T) {
	s, tt := testPair(t, 239, 100)
	if _, err := Run(0, cluster.Zero(), s, tt, sc, DefaultConfig(), nil); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := Run(1, cluster.Zero(), nil, tt, sc, DefaultConfig(), nil); err == nil {
		t.Error("empty input accepted")
	}
	cfg := DefaultConfig()
	cfg.IOMode = IOImmediate
	cfg.SaveInterleave = 10
	if _, err := Run(1, cluster.Zero(), s, tt, sc, cfg, nil); err == nil {
		t.Error("saving without sink accepted")
	}
	if _, err := Run(1, cluster.Zero(), s, tt, bio.Scoring{}, DefaultConfig(), nil); err == nil {
		t.Error("invalid scoring accepted")
	}
}

func TestInterestingBlocks(t *testing.T) {
	res := &Result{ResultMatrix: [][]int64{{0, 5, 0}, {9, 0, 2}}}
	got := InterestingBlocks(res, 5)
	if len(got) != 2 || got[0] != [2]int{0, 1} || got[1] != [2]int{1, 0} {
		t.Errorf("interesting blocks: %v", got)
	}
	if n := len(InterestingBlocks(res, 100)); n != 0 {
		t.Errorf("threshold 100 found %d blocks", n)
	}
}

func TestDirSinkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int32{3, 1, 4, 1, 5}
	if err := sink.WriteColumn(2, 100, 201, vals); err != nil {
		t.Fatal(err)
	}
	r0, got, err := ReadSavedColumn(dir, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != 201 || len(got) != len(vals) {
		t.Fatalf("round trip: r0=%d len=%d", r0, len(got))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("value %d: %d != %d", i, got[i], vals[i])
		}
	}
	if err := sink.WriteBorderRow(1, 50, vals); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSavedColumn(dir, 9, 9); err == nil {
		t.Error("missing column read succeeded")
	}
}
