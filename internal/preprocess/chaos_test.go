// Chaos coverage for the pre-process strategy and its reprocessing path:
// an external test package because internal/chaos itself imports
// preprocess.
package preprocess_test

import (
	"reflect"
	"testing"

	"genomedsm/internal/bio"
	"genomedsm/internal/chaos"
	"genomedsm/internal/cluster"
	"genomedsm/internal/preprocess"
)

// TestReprocessUnderDelayedDiffs runs the pre-process strategy with
// injected diff delays, jitter and bounded reordering, then reprocesses an
// interesting block from the chaotic run's saved columns. Saved columns
// and border rows are the strategy's durable output — if a delayed or
// reordered diff ever leaked a stale page into a saved column, the
// recomputed block would differ from the one rebuilt from a clean
// sequential run's store. Both the run results and the reprocessed blocks
// must be bit-exact.
func TestReprocessUnderDelayedDiffs(t *testing.T) {
	g := bio.NewGenerator(47)
	pair, err := g.HomologousPair(600, bio.HomologyModel{
		Regions: 2, RegionLen: 100, RegionJit: 50,
		Divergence: bio.MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := bio.DefaultScoring()
	cfg := preprocess.Config{
		BandScheme:       preprocess.BandFixed, // band layout independent of nprocs
		BandSize:         64,
		ChunkSize:        48,
		ChunkGrowth:      preprocess.GrowthFixed,
		SaveInterleave:   32,
		ResultInterleave: 64,
		Threshold:        15,
		IOMode:           preprocess.IOImmediate,
	}

	baseSink := preprocess.NewMemSink()
	base, err := preprocess.Run(1, cluster.Calibrated2005(), pair.S, pair.T, sc, cfg, baseSink)
	if err != nil {
		t.Fatal(err)
	}
	blocks := preprocess.InterestingBlocks(base, 1)
	if len(blocks) == 0 {
		t.Fatal("baseline run produced no interesting blocks")
	}

	// A plan that leans on the diff class: large base delay and jitter
	// relative to the other classes, plus a reorder window, so diff
	// arrival order at the homes is thoroughly scrambled.
	pc := chaos.DefaultPlanConfig()
	pc.Delays[cluster.MsgDiff] = chaos.DelaySpec{Base: 2e-3, Jitter: 8e-3}
	pc.ReorderWindow = 4

	for _, seed := range []int64{5, 6, 7} {
		plan := chaos.NewPlan(seed, 3, pc)
		cc := cluster.Calibrated2005()
		cc.Hooks = plan.Hooks(nil, 4)
		sink := preprocess.NewMemSink()
		res, err := preprocess.Run(3, cc, pair.S, pair.T, sc, cfg, sink)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.TotalHits != base.TotalHits ||
			res.BestScore != base.BestScore ||
			res.BestI != base.BestI || res.BestJ != base.BestJ {
			t.Fatalf("seed %d: summary differs: hits %d/%d best %d@(%d,%d) vs %d@(%d,%d)",
				seed, res.TotalHits, base.TotalHits,
				res.BestScore, res.BestI, res.BestJ,
				base.BestScore, base.BestI, base.BestJ)
		}
		if !reflect.DeepEqual(res.ResultMatrix, base.ResultMatrix) {
			t.Fatalf("seed %d: result matrix differs", seed)
		}

		// The stores themselves must hold identical data.
		if !reflect.DeepEqual(sink.Columns, baseSink.Columns) ||
			!reflect.DeepEqual(sink.Starts, baseSink.Starts) {
			t.Fatalf("seed %d: saved columns differ from sequential run", seed)
		}
		if !reflect.DeepEqual(sink.Border, baseSink.Border) {
			t.Fatalf("seed %d: saved border rows differ from sequential run", seed)
		}

		// Reprocess every interesting block from the chaotic run's store
		// and compare against the same block rebuilt from the clean store.
		for _, blk := range blocks {
			want, err := preprocess.ReprocessBlock(
				pair.S, pair.T, sc, base, baseSink, blk[0], blk[1], cfg)
			if err != nil {
				t.Fatalf("baseline reprocess block %v: %v", blk, err)
			}
			got, err := preprocess.ReprocessBlock(
				pair.S, pair.T, sc, res, sink, blk[0], blk[1], cfg)
			if err != nil {
				t.Fatalf("seed %d: reprocess block %v: %v", seed, blk, err)
			}
			// Band ownership differs by construction (the baseline is a
			// 1-proc run); everything else must match exactly.
			got.Band.Owner = want.Band.Owner
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: block %v scores differ:\ngot  %+v\nwant %+v",
					seed, blk, got, want)
			}
			gotAl, err := preprocess.RetrieveFromBlock(
				pair.S, pair.T, sc, res, sink, blk[0], blk[1], cfg)
			if err != nil {
				t.Fatalf("seed %d: retrieve block %v: %v", seed, blk, err)
			}
			wantAl, err := preprocess.RetrieveFromBlock(
				pair.S, pair.T, sc, base, baseSink, blk[0], blk[1], cfg)
			if err != nil {
				t.Fatalf("baseline retrieve block %v: %v", blk, err)
			}
			if !reflect.DeepEqual(gotAl, wantAl) {
				t.Fatalf("seed %d: block %v alignments differ", seed, blk)
			}
		}
	}
}
