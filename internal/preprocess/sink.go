package preprocess

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ColumnSink receives the column segments (and completed passage-band
// rows) that the pre-process strategy saves. Implementations must be safe
// for concurrent use by the simulated nodes.
type ColumnSink interface {
	// WriteColumn stores the values of rows [r0, r0+len(values)) of
	// column col computed by the given band.
	WriteColumn(band, col, r0 int, values []int32) error
	// WriteBorderRow stores a completed passage-band row (the bottom row
	// of the band).
	WriteBorderRow(band, row int, values []int32) error
}

// DiscardSink counts what would have been written and drops the data —
// the "no IO" configuration still exercises this path when a save
// interleave is configured with IOMode IONone.
type DiscardSink struct {
	mu      sync.Mutex
	Columns int
	Rows    int
	Bytes   int64
}

// WriteColumn implements ColumnSink.
func (s *DiscardSink) WriteColumn(band, col, r0 int, values []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Columns++
	s.Bytes += int64(4 * len(values))
	return nil
}

// WriteBorderRow implements ColumnSink.
func (s *DiscardSink) WriteBorderRow(band, row int, values []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Rows++
	s.Bytes += int64(4 * len(values))
	return nil
}

// MemSink keeps everything in memory, keyed for test verification.
type MemSink struct {
	mu      sync.Mutex
	Columns map[[2]int][]int32 // key: {band, col}
	Starts  map[[2]int]int     // r0 per saved column
	Border  map[[2]int][]int32 // key: {band, row}
}

// NewMemSink returns an empty MemSink.
func NewMemSink() *MemSink {
	return &MemSink{
		Columns: make(map[[2]int][]int32),
		Starts:  make(map[[2]int]int),
		Border:  make(map[[2]int][]int32),
	}
}

// WriteColumn implements ColumnSink.
func (s *MemSink) WriteColumn(band, col, r0 int, values []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]int32, len(values))
	copy(cp, values)
	s.Columns[[2]int{band, col}] = cp
	s.Starts[[2]int{band, col}] = r0
	return nil
}

// WriteBorderRow implements ColumnSink.
func (s *MemSink) WriteBorderRow(band, row int, values []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]int32, len(values))
	copy(cp, values)
	s.Border[[2]int{band, row}] = cp
	return nil
}

// DirSink writes one little-endian binary file per saved column or border
// row under dir: band<B>_col<C>.sw / band<B>_row<R>.sw, each prefixed with
// the starting row index. This is the "partial results for later
// processing" output the paper motivates.
type DirSink struct {
	Dir string
	mu  sync.Mutex
}

// NewDirSink creates dir if needed.
func NewDirSink(dir string) (*DirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirSink{Dir: dir}, nil
}

func (s *DirSink) writeFile(name string, start int, values []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, 4+4*len(values))
	binary.LittleEndian.PutUint32(buf, uint32(start))
	for i, v := range values {
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(v))
	}
	return os.WriteFile(filepath.Join(s.Dir, name), buf, 0o644)
}

// WriteColumn implements ColumnSink.
func (s *DirSink) WriteColumn(band, col, r0 int, values []int32) error {
	return s.writeFile(fmt.Sprintf("band%04d_col%07d.sw", band, col), r0, values)
}

// WriteBorderRow implements ColumnSink.
func (s *DirSink) WriteBorderRow(band, row int, values []int32) error {
	return s.writeFile(fmt.Sprintf("band%04d_row%07d.sw", band, row), 0, values)
}

// ReadSavedColumn loads a column written by DirSink.WriteColumn.
func ReadSavedColumn(dir string, band, col int) (r0 int, values []int32, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("band%04d_col%07d.sw", band, col)))
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < 4 || len(buf)%4 != 0 {
		return 0, nil, fmt.Errorf("preprocess: corrupt column file (%d bytes)", len(buf))
	}
	r0 = int(binary.LittleEndian.Uint32(buf))
	values = make([]int32, len(buf)/4-1)
	for i := range values {
		values[i] = int32(binary.LittleEndian.Uint32(buf[4+4*i:]))
	}
	return r0, values, nil
}
