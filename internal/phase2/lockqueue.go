package phase2

import (
	"fmt"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/recovery"
)

// RunLockQueue is the synchronization-based alternative that §4.4's
// scattered mapping was designed to avoid: nodes obtain work by popping
// the next index from a shared cursor under a lock ("no synchronization is
// needed to obtain work from the shared queue" — this variant measures
// what that synchronization would have cost). Results are identical; only
// the distribution mechanism differs. Dynamic popping balances load
// better on skewed job sizes, at the price of one lock round-trip per
// job — the classic centralized-queue trade-off.
func RunLockQueue(nprocs int, cc cluster.Config, s, t bio.Sequence, sc bio.Scoring, jobs []Job) (*Result, error) {
	if nprocs < 1 {
		return nil, fmt.Errorf("phase2: nprocs %d", nprocs)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	for i, j := range jobs {
		if j.SBegin < 1 || j.SEnd > s.Len() || j.TBegin < 1 || j.TEnd > t.Len() ||
			j.SBegin > j.SEnd || j.TBegin > j.TEnd {
			return nil, fmt.Errorf("phase2: job %d out of range: %+v", i, j)
		}
	}
	if len(jobs) == 0 {
		return &Result{}, nil
	}
	maxOps := 0
	for _, j := range jobs {
		if ops := (j.SEnd - j.SBegin + 1) + (j.TEnd - j.TBegin + 1); ops > maxOps {
			maxOps = ops
		}
	}
	slotBytes := slotHeaderBytes + maxOps

	sys, err := dsm.NewSystem(nprocs, cc, dsm.Options{Locks: 2})
	if err != nil {
		return nil, err
	}
	jobsRegion, err := sys.AllocAt(len(jobs)*jobBytes, 0)
	if err != nil {
		return nil, err
	}
	// The shared cursor lives on node 0; the queue lock protects it.
	cursorRegion, err := sys.AllocAt(8, 0)
	if err != nil {
		return nil, err
	}
	resultRegion, err := sys.Alloc(len(jobs)*slotBytes, 0)
	if err != nil {
		return nil, err
	}
	const queueLock = 0

	res := &Result{Alignments: make([]*align.Alignment, len(jobs))}
	err = sys.Run(func(node *dsm.Node) error {
		id := node.ID()
		done := 0
		if ck := node.Restored(); ck != nil {
			// Crash recovery: the queue cursor, the published jobs and
			// every finished result slot live in (re-homed, surviving) DSM
			// pages — the checkpoint flushed them — so the node just
			// re-enters the pop loop; the opening publication and barrier
			// belong to the previous incarnation.
			done = ck.Int()
			if err := ck.Err(); err != nil {
				return err
			}
		} else {
			if id == 0 {
				for i, j := range jobs {
					enc := []int32{int32(j.SBegin), int32(j.SEnd), int32(j.TBegin), int32(j.TEnd)}
					if err := node.WriteInt32s(jobsRegion, i*jobBytes, enc); err != nil {
						return err
					}
				}
			}
			if err := node.Barrier(); err != nil {
				return err
			}
		}

		buf := make([]int32, 4)
		slot := make([]byte, slotBytes)
		for {
			// Pop the next job index under the queue lock.
			var idx int64
			if err := node.WithLock(queueLock, func() error {
				v, err := node.ReadInt64(cursorRegion, 0)
				if err != nil {
					return err
				}
				idx = v
				return node.WriteInt64(cursorRegion, 0, v+1)
			}); err != nil {
				return err
			}
			if idx >= int64(len(jobs)) {
				break
			}
			i := int(idx)
			if err := node.ReadInt32s(jobsRegion, i*jobBytes, buf); err != nil {
				return err
			}
			job := Job{int(buf[0]), int(buf[1]), int(buf[2]), int(buf[3])}
			sub := s.Sub(job.SBegin, job.SEnd)
			tub := t.Sub(job.TBegin, job.TEnd)
			al, err := align.Global(sub, tub, sc)
			if err != nil {
				return err
			}
			node.Compute(int64(sub.Len()) * int64(tub.Len()))
			al.SBegin += job.SBegin - 1
			al.SEnd += job.SBegin - 1
			al.TBegin += job.TBegin - 1
			al.TEnd += job.TBegin - 1
			hdr := []int32{int32(al.SBegin), int32(al.SEnd), int32(al.TBegin), int32(al.TEnd),
				int32(al.Score), int32(len(al.Ops))}
			if err := node.WriteInt32s(resultRegion, i*slotBytes, hdr); err != nil {
				return err
			}
			for k, op := range al.Ops {
				slot[k] = byte(op)
			}
			if err := node.WriteAt(resultRegion, i*slotBytes+slotHeaderBytes, slot[:len(al.Ops)]); err != nil {
				return err
			}
			// Job boundary: a recovery point. No strategy state needs
			// saving beyond a progress marker — the cursor and the result
			// slots are shared memory, made crash-consistent by the
			// checkpoint's flush.
			done++
			jobsDone := done
			if err := node.Checkpoint(func(w *recovery.Writer) {
				w.Int(jobsDone)
			}); err != nil {
				return err
			}
		}
		if err := node.Barrier(); err != nil {
			return err
		}

		if id == 0 {
			hdr := make([]int32, 6)
			ops := make([]byte, maxOps)
			for i := range jobs {
				if err := node.ReadInt32s(resultRegion, i*slotBytes, hdr); err != nil {
					return err
				}
				opsLen := int(hdr[5])
				if err := node.ReadAt(resultRegion, i*slotBytes+slotHeaderBytes, ops[:opsLen]); err != nil {
					return err
				}
				al := &align.Alignment{
					SBegin: int(hdr[0]), SEnd: int(hdr[1]),
					TBegin: int(hdr[2]), TEnd: int(hdr[3]),
					Score: int(hdr[4]),
					Ops:   make([]align.Op, opsLen),
				}
				for k := 0; k < opsLen; k++ {
					al.Ops[k] = align.Op(ops[k])
				}
				res.Alignments[i] = al
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Makespan = sys.Makespan()
	res.Breakdowns = sys.Breakdowns()
	res.Stats = sys.TotalStats()
	return res, nil
}
