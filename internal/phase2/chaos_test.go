// Chaos coverage for the lock-queue work distribution: an external test
// package because internal/chaos itself imports phase2.
package phase2_test

import (
	"testing"

	"genomedsm/internal/bio"
	"genomedsm/internal/chaos"
	"genomedsm/internal/cluster"
	"genomedsm/internal/phase2"
)

// TestLockQueuePermutedGrants runs the lock-queue phase-2 variant under
// seeded chaos — permuted lock-grant order, injected notice/diff delays
// and the serializing gate — and asserts the alignments stay identical to
// the sequential baseline. The shared-cursor queue hands out jobs in
// whatever order the lock grants arrive, so permuting grants is exactly
// the adversary this code path needs.
func TestLockQueuePermutedGrants(t *testing.T) {
	g := bio.NewGenerator(31)
	pair, err := g.HomologousPair(500, bio.HomologyModel{
		Regions: 3, RegionLen: 90, RegionJit: 30,
		Divergence: bio.MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := bio.DefaultScoring()
	var jobs []phase2.Job
	for _, r := range []struct{ s0, s1, t0, t1 int }{
		{1, 80, 1, 80}, {100, 220, 90, 215}, {250, 400, 260, 410},
		{50, 150, 40, 160}, {300, 480, 310, 490}, {10, 490, 5, 495},
	} {
		jobs = append(jobs, phase2.Job{SBegin: r.s0, SEnd: r.s1, TBegin: r.t0, TEnd: r.t1})
	}
	want, err := phase2.Sequential(pair.S, pair.T, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range []int64{1, 2, 3, 4} {
		plan := chaos.NewPlan(seed, 3, chaos.DefaultPlanConfig())
		cc := cluster.Calibrated2005()
		cc.Hooks = plan.Hooks(nil, 4)
		res, err := phase2.RunLockQueue(3, cc, pair.S, pair.T, sc, jobs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Alignments) != len(want) {
			t.Fatalf("seed %d: %d alignments, sequential %d", seed, len(res.Alignments), len(want))
		}
		for i := range want {
			got := res.Alignments[i]
			if got == nil || want[i] == nil {
				if got != want[i] {
					t.Fatalf("seed %d: alignment %d nil mismatch", seed, i)
				}
				continue
			}
			if got.Score != want[i].Score || got.SBegin != want[i].SBegin ||
				got.SEnd != want[i].SEnd || got.TBegin != want[i].TBegin ||
				got.TEnd != want[i].TEnd {
				t.Fatalf("seed %d: alignment %d differs: got %+v want %+v",
					seed, i, *got, *want[i])
			}
			if len(got.Ops) != len(want[i].Ops) {
				t.Fatalf("seed %d: alignment %d op count differs", seed, i)
			}
			for k := range got.Ops {
				if got.Ops[k] != want[i].Ops[k] {
					t.Fatalf("seed %d: alignment %d op %d differs", seed, i, k)
				}
			}
		}
		if res.Stats.LockAcquires == 0 {
			t.Fatalf("seed %d: lock queue took no locks", seed)
		}
	}
}
