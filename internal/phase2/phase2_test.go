package phase2

import (
	"testing"

	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/heuristics"
)

var sc = bio.DefaultScoring()

// makeJobs builds a pair of sequences with planted regions and the job
// list covering them.
func makeJobs(t *testing.T, seed int64, n, regions int) (bio.Sequence, bio.Sequence, []Job) {
	t.Helper()
	g := bio.NewGenerator(seed)
	pair, err := g.HomologousPair(n, bio.HomologyModel{
		Regions: regions, RegionLen: 120, RegionJit: 60,
		Divergence: bio.MutationModel{SubstitutionRate: 0.05, InsertionRate: 0.003, DeletionRate: 0.003},
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, len(pair.Regions))
	for i, r := range pair.Regions {
		jobs[i] = Job{SBegin: r.SBegin, SEnd: r.SEnd, TBegin: r.TBegin, TEnd: r.TEnd}
	}
	return pair.S, pair.T, jobs
}

func TestParallelMatchesSequential(t *testing.T) {
	s, tt, jobs := makeJobs(t, 311, 4000, 12)
	want, err := Sequential(s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, nprocs := range []int{1, 2, 3, 8} {
		res, err := Run(nprocs, cluster.Zero(), s, tt, sc, jobs)
		if err != nil {
			t.Fatalf("nprocs=%d: %v", nprocs, err)
		}
		if len(res.Alignments) != len(want) {
			t.Fatalf("nprocs=%d: %d alignments, want %d", nprocs, len(res.Alignments), len(want))
		}
		for i := range want {
			got := res.Alignments[i]
			if got == nil {
				t.Fatalf("nprocs=%d: alignment %d missing", nprocs, i)
			}
			if got.Score != want[i].Score || got.SBegin != want[i].SBegin ||
				got.SEnd != want[i].SEnd || got.TBegin != want[i].TBegin || got.TEnd != want[i].TEnd {
				t.Errorf("nprocs=%d job %d: got %+v, want %+v", nprocs, i, got, want[i])
			}
			if len(got.Ops) != len(want[i].Ops) {
				t.Errorf("nprocs=%d job %d: ops length %d vs %d", nprocs, i, len(got.Ops), len(want[i].Ops))
			}
			if err := got.Validate(s, tt, sc); err != nil {
				t.Errorf("nprocs=%d job %d: %v", nprocs, i, err)
			}
		}
	}
}

func TestNoLocksUsed(t *testing.T) {
	// §4.4: "no locks or condition variables are used".
	s, tt, jobs := makeJobs(t, 313, 2000, 6)
	res, err := Run(4, cluster.Zero(), s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LockAcquires != 0 || res.Stats.CVSignals != 0 || res.Stats.CVWaits != 0 {
		t.Errorf("scattered mapping used synchronization: %s", res.Stats.String())
	}
	if res.Stats.Barriers == 0 {
		t.Error("expected the opening/closing barriers")
	}
}

func TestScatteredSpeedup(t *testing.T) {
	// Fig. 15: very good speed-ups, roughly independent of the queue
	// size; e.g. 7.57 for 1000 pairs on 8 processors.
	s, tt, jobs := makeJobs(t, 317, 20000, 120)
	cc := cluster.Calibrated2005()
	t1, err := Run(1, cc, s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Run(8, cc, s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	sp := cluster.Speedup(t1.Makespan, t8.Makespan)
	if sp < 5 || sp > 8 {
		t.Errorf("8-processor speedup %.2f, Fig. 15 reports 5.3–7.6", sp)
	}
}

// TestLinearSpaceOptionMatchesFullMatrix: Hirschberg-backed phase 2 must
// produce alignments with the same scores and coordinates (an optimal
// alignment may differ in ops where co-optimal paths exist, but the
// score is unique).
func TestLinearSpaceOptionMatchesFullMatrix(t *testing.T) {
	s, tt, jobs := makeJobs(t, 347, 3000, 8)
	full, err := Run(2, cluster.Zero(), s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := RunWithOptions(2, cluster.Zero(), s, tt, sc, jobs,
		RunOptions{LinearSpaceThreshold: 1}) // force Hirschberg everywhere
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		f, l := full.Alignments[i], lin.Alignments[i]
		if f.Score != l.Score {
			t.Errorf("job %d: scores %d vs %d", i, f.Score, l.Score)
		}
		if err := l.Validate(s, tt, sc); err != nil {
			t.Errorf("job %d: %v", i, err)
		}
	}
	// The time model charges Hirschberg double the cells.
	if lin.Makespan <= full.Makespan {
		t.Skip("zero-cost model; timing not comparable") // cluster.Zero has no cell cost
	}
}

func TestJobsFromCandidates(t *testing.T) {
	cands := []heuristics.Candidate{
		{SBegin: 1, SEnd: 50, TBegin: 3, TEnd: 52, Score: 40},
		{SBegin: 100, SEnd: 120, TBegin: 200, TEnd: 220, Score: 15},
	}
	jobs := JobsFromCandidates(cands)
	if len(jobs) != 2 {
		t.Fatalf("%d jobs", len(jobs))
	}
	if jobs[0] != (Job{1, 50, 3, 52}) || jobs[1] != (Job{100, 120, 200, 220}) {
		t.Errorf("jobs: %+v", jobs)
	}
}

func TestRunValidation(t *testing.T) {
	s := bio.MustSequence("ACGTACGT")
	if _, err := Run(0, cluster.Zero(), s, s, sc, nil); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := Run(1, cluster.Zero(), s, s, bio.Scoring{}, nil); err == nil {
		t.Error("invalid scoring accepted")
	}
	if _, err := Run(1, cluster.Zero(), s, s, sc, []Job{{0, 4, 1, 4}}); err == nil {
		t.Error("out-of-range job accepted")
	}
	if _, err := Sequential(s, s, sc, []Job{{5, 2, 1, 4}}); err == nil {
		t.Error("inverted job accepted by Sequential")
	}
	res, err := Run(2, cluster.Zero(), s, s, sc, nil)
	if err != nil || len(res.Alignments) != 0 {
		t.Errorf("empty job list: %v %v", res, err)
	}
}

// TestAlignmentsRecoverPlantedRegions checks end-to-end quality: phase-2
// alignments over planted regions must be high-identity.
func TestAlignmentsRecoverPlantedRegions(t *testing.T) {
	s, tt, jobs := makeJobs(t, 331, 3000, 8)
	res, err := Run(4, cluster.Zero(), s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, al := range res.Alignments {
		if al.Identity() < 0.80 {
			t.Errorf("job %d: identity %.2f below planted similarity", i, al.Identity())
		}
	}
}

// TestFig16ReportFormat smoke-tests the report rendering used by Fig. 16.
func TestFig16ReportFormat(t *testing.T) {
	s, tt, jobs := makeJobs(t, 337, 1000, 2)
	als, err := Sequential(s, tt, sc, jobs[:1])
	if err != nil {
		t.Fatal(err)
	}
	rep := als[0].RenderReport(s, tt, 32)
	if rep == "" {
		t.Fatal("empty report")
	}
	for _, want := range []string{"initial_x:", "final_x:", "similarity:", "align_s:", "align_t:"} {
		if !contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
