package phase2

import (
	"testing"

	"genomedsm/internal/cluster"
)

func TestLockQueueMatchesScattered(t *testing.T) {
	s, tt, jobs := makeJobs(t, 353, 4000, 10)
	want, err := Run(4, cluster.Zero(), s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLockQueue(4, cluster.Zero(), s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		w, g := want.Alignments[i], got.Alignments[i]
		if g == nil {
			t.Fatalf("job %d missing", i)
		}
		if w.Score != g.Score || w.SBegin != g.SBegin || w.TEnd != g.TEnd {
			t.Errorf("job %d differs: %+v vs %+v", i, w, g)
		}
	}
}

func TestLockQueueUsesLocksScatteredDoesNot(t *testing.T) {
	s, tt, jobs := makeJobs(t, 359, 3000, 8)
	scat, err := Run(4, cluster.Zero(), s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	lq, err := RunLockQueue(4, cluster.Zero(), s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if scat.Stats.LockAcquires != 0 {
		t.Errorf("scattered mapping acquired %d locks", scat.Stats.LockAcquires)
	}
	// One acquisition per job plus one terminating pop per node.
	if lq.Stats.LockAcquires < int64(len(jobs)) {
		t.Errorf("lock queue acquired %d locks for %d jobs", lq.Stats.LockAcquires, len(jobs))
	}
}

// TestScatteredBeatsLockQueueOnUniformJobs reproduces §4.4's design
// argument under the calibrated cost model: for the paper's workload
// (many similar-size regions) the lock-free scattered mapping wins,
// because every queue pop pays a lock round-trip.
func TestScatteredBeatsLockQueueOnUniformJobs(t *testing.T) {
	s, tt, jobs := makeJobs(t, 367, 30000, 150)
	cc := cluster.Calibrated2005()
	scat, err := Run(8, cc, s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	lq, err := RunLockQueue(8, cc, s, tt, sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if scat.Makespan >= lq.Makespan {
		t.Errorf("scattered (%.3fs) not faster than lock queue (%.3fs) on uniform jobs",
			scat.Makespan, lq.Makespan)
	}
}

func TestLockQueueValidation(t *testing.T) {
	s, tt, _ := makeJobs(t, 373, 500, 1)
	if _, err := RunLockQueue(0, cluster.Zero(), s, tt, sc, nil); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := RunLockQueue(1, cluster.Zero(), s, tt, sc, []Job{{0, 1, 1, 1}}); err == nil {
		t.Error("bad job accepted")
	}
	res, err := RunLockQueue(2, cluster.Zero(), s, tt, sc, nil)
	if err != nil || len(res.Alignments) != 0 {
		t.Errorf("empty jobs: %v %v", res, err)
	}
}
