// Package phase2 implements the paper's second phase (§4.4): retrieving
// the actual alignments of the similar regions found by phase 1. For each
// region, the global alignment algorithm of Needleman–Wunsch is executed
// on the delimited subsequences. Work is distributed by the scattered
// mapping scheme: the alignment queue is treated as a vector sorted by
// subsequence size, and processor Pi handles positions i, i+P, i+2P, …,
// which balances load and eliminates the need for locks and condition
// variables entirely — results land in a shared vector using the same
// scattered positions.
package phase2

import (
	"fmt"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/heuristics"
)

// Job is one similar region to align globally (1-based inclusive
// coordinates into the phase-1 sequences).
type Job struct {
	SBegin, SEnd int
	TBegin, TEnd int
}

// JobsFromCandidates converts a finalized phase-1 queue into jobs,
// preserving its size-sorted order (the order scattered mapping relies on
// for load balance).
func JobsFromCandidates(cands []heuristics.Candidate) []Job {
	jobs := make([]Job, len(cands))
	for i, c := range cands {
		jobs[i] = Job{SBegin: c.SBegin, SEnd: c.SEnd, TBegin: c.TBegin, TEnd: c.TEnd}
	}
	return jobs
}

// Result of a phase-2 run.
type Result struct {
	// Alignments is index-aligned with the input jobs; every alignment
	// carries global (phase-1) coordinates.
	Alignments []*align.Alignment
	Makespan   float64
	Breakdowns []cluster.Breakdown
	Stats      dsm.Stats
}

const jobBytes = 16 // 4 × int32

// slotHeaderBytes is the fixed part of one result slot:
// SBegin, SEnd, TBegin, TEnd, Score, OpsLen.
const slotHeaderBytes = 24

// RunOptions tunes phase 2 beyond the paper's defaults.
type RunOptions struct {
	// LinearSpaceThreshold switches regions whose full Needleman–Wunsch
	// matrix would exceed this many cells to Hirschberg's linear-space
	// algorithm (Section 6 points to [9] for exactly this situation).
	// Zero keeps the full-matrix algorithm for every region.
	LinearSpaceThreshold int
}

// Run executes phase 2 over the given jobs on nprocs simulated nodes.
func Run(nprocs int, cc cluster.Config, s, t bio.Sequence, sc bio.Scoring, jobs []Job) (*Result, error) {
	return RunWithOptions(nprocs, cc, s, t, sc, jobs, RunOptions{})
}

// RunWithOptions is Run with explicit options.
func RunWithOptions(nprocs int, cc cluster.Config, s, t bio.Sequence, sc bio.Scoring, jobs []Job, opts RunOptions) (*Result, error) {
	if nprocs < 1 {
		return nil, fmt.Errorf("phase2: nprocs %d", nprocs)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	for i, j := range jobs {
		if j.SBegin < 1 || j.SEnd > s.Len() || j.TBegin < 1 || j.TEnd > t.Len() ||
			j.SBegin > j.SEnd || j.TBegin > j.TEnd {
			return nil, fmt.Errorf("phase2: job %d out of range: %+v", i, j)
		}
	}
	if len(jobs) == 0 {
		return &Result{}, nil
	}

	// Result slots are sized for the largest job: a global alignment of
	// an a×b region has at most a+b columns.
	maxOps := 0
	for _, j := range jobs {
		if ops := (j.SEnd - j.SBegin + 1) + (j.TEnd - j.TBegin + 1); ops > maxOps {
			maxOps = ops
		}
	}
	slotBytes := slotHeaderBytes + maxOps

	sys, err := dsm.NewSystem(nprocs, cc, dsm.Options{Locks: 2})
	if err != nil {
		return nil, err
	}
	jobsRegion, err := sys.AllocAt(len(jobs)*jobBytes, 0)
	if err != nil {
		return nil, err
	}
	// The shared result vector: scattered writes mean disjoint slots, so
	// pages rotate across nodes to spread homes.
	resultRegion, err := sys.Alloc(len(jobs)*slotBytes, 0)
	if err != nil {
		return nil, err
	}

	res := &Result{Alignments: make([]*align.Alignment, len(jobs))}
	err = sys.Run(func(node *dsm.Node) error {
		id := node.ID()
		// Node 0 publishes the queue before the opening barrier.
		if id == 0 {
			for i, j := range jobs {
				enc := []int32{int32(j.SBegin), int32(j.SEnd), int32(j.TBegin), int32(j.TEnd)}
				if err := node.WriteInt32s(jobsRegion, i*jobBytes, enc); err != nil {
					return err
				}
			}
		}
		if err := node.Barrier(); err != nil {
			return err
		}

		// Scattered mapping: positions id, id+P, id+2P, … — no locks.
		buf := make([]int32, 4)
		slot := make([]byte, slotBytes)
		for i := id; i < len(jobs); i += nprocs {
			if err := node.ReadInt32s(jobsRegion, i*jobBytes, buf); err != nil {
				return err
			}
			job := Job{int(buf[0]), int(buf[1]), int(buf[2]), int(buf[3])}
			sub := s.Sub(job.SBegin, job.SEnd)
			tub := t.Sub(job.TBegin, job.TEnd)
			cells := int64(sub.Len()) * int64(tub.Len())
			var al *align.Alignment
			var err error
			if opts.LinearSpaceThreshold > 0 && cells > int64(opts.LinearSpaceThreshold) {
				// Hirschberg: linear space at roughly double the time.
				al, err = align.GlobalLinear(sub, tub, sc)
				cells *= 2
			} else {
				al, err = align.Global(sub, tub, sc)
			}
			if err != nil {
				return err
			}
			node.Compute(cells)
			// Remap to global coordinates.
			al.SBegin += job.SBegin - 1
			al.SEnd += job.SBegin - 1
			al.TBegin += job.TBegin - 1
			al.TEnd += job.TBegin - 1
			if len(al.Ops) > maxOps {
				return fmt.Errorf("phase2: job %d alignment has %d ops, slot holds %d", i, len(al.Ops), maxOps)
			}
			hdr := []int32{int32(al.SBegin), int32(al.SEnd), int32(al.TBegin), int32(al.TEnd),
				int32(al.Score), int32(len(al.Ops))}
			if err := node.WriteInt32s(resultRegion, i*slotBytes, hdr); err != nil {
				return err
			}
			for k, op := range al.Ops {
				slot[k] = byte(op)
			}
			if err := node.WriteAt(resultRegion, i*slotBytes+slotHeaderBytes, slot[:len(al.Ops)]); err != nil {
				return err
			}
		}
		if err := node.Barrier(); err != nil {
			return err
		}

		// Node 0 collects the shared vector.
		if id == 0 {
			hdr := make([]int32, 6)
			ops := make([]byte, maxOps)
			for i := range jobs {
				if err := node.ReadInt32s(resultRegion, i*slotBytes, hdr); err != nil {
					return err
				}
				opsLen := int(hdr[5])
				if err := node.ReadAt(resultRegion, i*slotBytes+slotHeaderBytes, ops[:opsLen]); err != nil {
					return err
				}
				al := &align.Alignment{
					SBegin: int(hdr[0]), SEnd: int(hdr[1]),
					TBegin: int(hdr[2]), TEnd: int(hdr[3]),
					Score: int(hdr[4]),
					Ops:   make([]align.Op, opsLen),
				}
				for k := 0; k < opsLen; k++ {
					al.Ops[k] = align.Op(ops[k])
				}
				res.Alignments[i] = al
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Makespan = sys.Makespan()
	res.Breakdowns = sys.Breakdowns()
	res.Stats = sys.TotalStats()
	return res, nil
}

// Sequential computes the same alignments serially (the 1-processor
// baseline of Fig. 15) without any DSM machinery; used for verification
// and speed-up baselines.
func Sequential(s, t bio.Sequence, sc bio.Scoring, jobs []Job) ([]*align.Alignment, error) {
	out := make([]*align.Alignment, len(jobs))
	for i, job := range jobs {
		if job.SBegin < 1 || job.SEnd > s.Len() || job.TBegin < 1 || job.TEnd > t.Len() ||
			job.SBegin > job.SEnd || job.TBegin > job.TEnd {
			return nil, fmt.Errorf("phase2: job %d out of range: %+v", i, job)
		}
		al, err := align.Global(s.Sub(job.SBegin, job.SEnd), t.Sub(job.TBegin, job.TEnd), sc)
		if err != nil {
			return nil, err
		}
		al.SBegin += job.SBegin - 1
		al.SEnd += job.SBegin - 1
		al.TBegin += job.TBegin - 1
		al.TEnd += job.TBegin - 1
		out[i] = al
	}
	return out, nil
}
