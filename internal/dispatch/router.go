package dispatch

import (
	"sync/atomic"

	"genomedsm/internal/bio"
)

// Router turns the calibrated profile into per-workload kernel
// decisions. A Router is immutable after construction (the test hooks
// excepted) and safe for concurrent use; the mutable adaptive state of
// one database scan lives in its ScanState.
type Router struct {
	mode Mode
	prof *Profile

	// counts tallies routing decisions over the router's lifetime.
	// Counters are atomics behind a pointer, so counting does not break
	// the immutability contract: a resident server shares one router
	// across every request and reads the tallies for its /statsz
	// endpoint. Counts observe scheduling, never influence routing.
	counts *routeCounts

	// ForceGroup and ForcePair are test hooks: when non-nil they
	// override the cost model entirely, letting the differential and
	// fuzz suites steer the scan down adversarially wrong routes to
	// prove results are routing-independent. Never set outside tests.
	ForceGroup func(qLen int, lens []int) (GroupRoute, bool)
	ForcePair  func(m, n int) (PairRoute, bool)
}

// routeCounts holds per-route decision tallies, indexed by route value.
type routeCounts struct {
	group [GroupScalar + 1]atomic.Int64
	pair  [PairScalar + 1]atomic.Int64
}

// GroupCounts returns the lane-group routing decisions taken so far,
// keyed by route label ("inter8", "inter16", "singles", "scalar").
// Routes never taken are omitted.
func (r *Router) GroupCounts() map[string]int64 {
	out := make(map[string]int64)
	for route := GroupInter8; route <= GroupScalar; route++ {
		if n := r.counts.group[route].Load(); n > 0 {
			out[route.String()] = n
		}
	}
	return out
}

// PairCounts returns the pairwise routing decisions taken so far, keyed
// by route label ("striped8", "striped16", "scalar"). Routes never
// taken are omitted.
func (r *Router) PairCounts() map[string]int64 {
	out := make(map[string]int64)
	for route := PairStriped8; route <= PairScalar; route++ {
		if n := r.counts.pair[route].Load(); n > 0 {
			out[route.String()] = n
		}
	}
	return out
}

// New builds a router in the given mode; a nil profile selects the
// static default table.
func New(mode Mode, prof *Profile) *Router {
	if prof == nil {
		prof = DefaultProfile()
	}
	return &Router{mode: mode, prof: prof, counts: &routeCounts{}}
}

// Mode returns the router's mode.
func (r *Router) Mode() Mode { return r.mode }

// Profile returns the router's calibration table (never nil).
func (r *Router) Profile() *Profile { return r.prof }

// SatPossible8 reports whether an int8 lane scanning a target of length
// tLen against a query of length qLen can saturate at all: the best
// local score is at most min(qLen, tLen)·Match, so below the clean cap
// the narrow rung is provably exact and retry-free. The search layer
// uses it to count only saturation-capable lanes into the observed
// saturation rate.
func SatPossible8(qLen, tLen int, sc bio.Scoring) bool {
	short := min(qLen, tLen)
	return short*sc.Match > bio.PackedCap8
}

// ScanState carries the per-database-scan adaptive routing state: the
// observed int8 saturation rate of this query against this database.
// Saturation depends on how homologous the records are, which no static
// feature predicts, so the scan learns it: every int8 word-pass reports
// how many saturation-capable lanes were flagged, and once the observed
// rate crosses the calibrated break-even point the router starts groups
// at int16 directly instead of paying the doomed int8 pass plus its
// retry. Routing feedback changes only speed — every route stays
// bit-exact — so the scheduling-dependent observation order is safe.
type ScanState struct {
	r *Router
	// tried / flagged count int8 lanes that could have saturated and
	// those that did.
	tried   atomic.Int64
	flagged atomic.Int64
}

// NewScan returns fresh adaptive state for one database scan.
func (r *Router) NewScan() *ScanState { return &ScanState{r: r} }

// Observe8 records the outcome of one int8 word-pass: lanes that could
// have saturated and how many actually did.
func (s *ScanState) Observe8(possible, saturated int) {
	if s == nil || possible <= 0 {
		return
	}
	s.tried.Add(int64(possible))
	s.flagged.Add(int64(saturated))
}

// satRate returns the observed saturation rate, or ok=false before
// enough evidence has accumulated.
func (s *ScanState) satRate() (float64, bool) {
	const warmup = 8 // lanes observed before the estimate is trusted
	tried := s.tried.Load()
	if tried < warmup {
		return 0, false
	}
	return float64(s.flagged.Load()) / float64(tried), true
}

// Group picks the scan route for one lane group: qLen is the query
// length and lens the group's record lengths (1 to 8 records, near
// equal after length-sorted batching except in the leftover tail).
func (s *ScanState) Group(qLen int, lens []int, sc bio.Scoring) GroupRoute {
	route := s.group(qLen, lens, sc)
	s.r.counts.group[route].Add(1)
	return route
}

func (s *ScanState) group(qLen int, lens []int, sc bio.Scoring) GroupRoute {
	r := s.r
	if r.ForceGroup != nil {
		if route, ok := r.ForceGroup(qLen, lens); ok {
			return route
		}
	}
	switch r.mode {
	case ModeScalar:
		return GroupScalar
	case ModeFixed:
		// The pre-dispatch thresholds: singletons ride the striped
		// intra-sequence kernel, everything else the int8 ladder.
		if len(lens) == 1 {
			return GroupSingles
		}
		return GroupInter8
	}

	g := len(lens)
	maxLen, sum := 0, 0
	for _, l := range lens {
		if l > maxLen {
			maxLen = l
		}
		sum += l
	}
	if g == 0 || maxLen == 0 || qLen == 0 {
		return GroupInter8
	}
	q := float64(qLen)

	// Predicted int8 retry rate: zero when no lane can saturate, the
	// observed scan-wide rate once warm, and optimistic before that
	// (random-sequence scores stay far below the cap, so the narrow
	// kernel is the right opening bet).
	rate := 0.0
	anySat := false
	for _, l := range lens {
		if SatPossible8(qLen, l, sc) {
			anySat = true
			break
		}
	}
	if anySat {
		if obs, ok := s.satRate(); ok {
			rate = obs
		}
	}

	inter8 := r.prof.Stats(FamInter8)
	inter16 := r.prof.Stats(FamInter16)
	striped := r.prof.Stats(FamStriped8)
	striped16 := r.prof.Stats(FamStriped16)
	scalar := r.prof.Stats(FamScalar)

	// Inter-sequence int8: one padded word-pass over the whole group,
	// plus the predicted int16 retry of the flagged lanes.
	tInter8 := inter8.seconds(float64(bio.PackedLanes8) * float64(maxLen) * q)
	if rate > 0 {
		tInter8 += rate * inter16.seconds(float64(g)*float64(maxLen)*q)
	}
	// Inter-sequence int16 directly: ⌈g/4⌉ word-passes of 4 lanes.
	words := (g + bio.PackedLanes16 - 1) / bio.PackedLanes16
	tInter16 := float64(words) * inter16.seconds(float64(bio.PackedLanes16)*float64(maxLen)*q)
	// Striped singles: each record pays its own profile build but only
	// its own cells — the win for ragged leftover groups. The build cost
	// grows with the query (the probes measured it at probeLarge), so
	// the per-call overhead is scaled up for longer queries. The striped
	// ladder retries saturated int8 passes at int16 too, so it pays the
	// same predicted retry penalty as the inter-sequence int8 route.
	scale := stripedOverheadScale(qLen)
	tSingles := float64(g)*striped.OverheadNS*scale/1e9 + striped.seconds(float64(sum)*q)
	if rate > 0 {
		tSingles += rate * striped16.seconds(float64(sum)*q)
	}
	// Scalar: no packing at all; wins only for tiny matrices where even
	// the striped profile build dominates.
	tScalar := float64(g)*scalar.seconds(0) + scalar.seconds(float64(sum)*q)

	// The int8 word-pass is the default; an alternative must beat it by
	// a clear margin, so probe noise on near-tied families (striped8 and
	// inter8 measure within a few percent of each other) cannot flip
	// routes run to run.
	const margin = 0.9
	bestAlt, route := tSingles, GroupSingles
	if anySat && tInter16 < bestAlt {
		bestAlt, route = tInter16, GroupInter16
	}
	if tScalar < bestAlt {
		bestAlt, route = tScalar, GroupScalar
	}
	if bestAlt < margin*tInter8 {
		return route
	}
	return GroupInter8
}

// stripedOverheadScale adjusts the striped families' probed per-call
// overhead for the actual query length: the dominant term is the
// striped profile build, which is linear in the query, and the probes
// measured it at probeLarge rows. Queries at or below the probe size
// keep the probed constant (the floor covers the length-independent
// call cost).
func stripedOverheadScale(qLen int) float64 {
	s := float64(qLen) / probeLarge
	if s < 1 {
		return 1
	}
	return s
}

// Pair picks the opening rung of a striped pairwise scan of an m-row
// query against an n-base target. expectScore, when positive, is a
// known lower bound on the final score (the search layer re-aligns hits
// whose score it already knows): a bound above a rung's clean cap
// proves that rung will saturate, so the ladder starts past it in every
// mode — that is a proof, not a tuned threshold.
func (r *Router) Pair(m, n int, sc bio.Scoring, expectScore int) PairRoute {
	route := r.pair(m, n, sc, expectScore)
	r.counts.pair[route].Add(1)
	return route
}

func (r *Router) pair(m, n int, sc bio.Scoring, expectScore int) PairRoute {
	if r.ForcePair != nil {
		if route, ok := r.ForcePair(m, n); ok {
			return route
		}
	}
	start := PairStriped8
	if expectScore > bio.PackedCap8 {
		start = PairStriped16
	}
	if expectScore > bio.PackedCap16 {
		start = PairScalar
	}
	switch r.mode {
	case ModeScalar:
		return PairScalar
	case ModeFixed:
		return start
	}
	if start == PairScalar {
		return start
	}
	// Tiny pairs: the striped profile build dominates the matrix; run
	// the scalar kernel when the calibrated model says it is cheaper.
	cells := float64(m) * float64(n)
	striped := r.prof.Stats(FamStriped8)
	if start == PairStriped16 {
		striped = r.prof.Stats(FamStriped16)
	}
	tStriped := striped.OverheadNS*stripedOverheadScale(m)/1e9 + cells/(striped.MCells*1e6)
	if r.prof.Stats(FamScalar).seconds(cells) < tStriped {
		return PairScalar
	}
	return start
}

// Band reports whether a pre-process band of the given height should
// run the striped band kernel (true) or the scalar column loop (false).
func (r *Router) Band(rows int) bool {
	switch r.mode {
	case ModeScalar:
		return false
	case ModeFixed:
		return true
	}
	if rows < bio.PackedLanes8 {
		// Fewer rows than lanes: the striped layout is mostly padding.
		return false
	}
	return r.prof.Stats(FamBand).MCells > r.prof.Stats(FamScalar).MCells
}
