// Package dispatch routes every exact-alignment workload in the repo to
// the fastest exact kernel for this host. The repo has four exact kernel
// families — the scalar int32 row kernel, the inter-sequence SWAR lanes
// (8× int8 / 4× int16 per word), the striped intra-sequence Farrar
// kernels, and the band kernel of the pre-process strategy — and until
// this package the choice between them was hard-coded by thresholds
// tuned on one machine and one workload shape. Following the KNL tuning
// study (Rucci et al.) and SWAPHI's per-batch routing, dispatch instead:
//
//  1. calibrates: a few milliseconds of synthetic probes measure each
//     family's Mcells/s and per-call overhead on the actual host
//     (calibrate.go), cached to a versioned on-disk profile keyed by
//     host + build so repeat CLI runs skip the probes (profile.go);
//  2. routes: a small cost model picks the cheapest exact path per
//     workload from the query length, the record-length distribution of
//     a lane group, the leftover-lane count, and the expected score
//     range — which predicts int8 guard-bit saturation and avoids
//     paying the int8 → int16 → scalar fallback ladder when the narrow
//     rung is provably (or statistically) doomed (router.go).
//
// Routing never changes results: every route ends in the same
// exact-or-flagged ladder, so scores, coordinates and tie-breaks are
// bit-identical across routes and only the time to produce them varies.
// The differential and fuzz suites (FuzzDispatchVsScalar) pin exactly
// that, including adversarially forced mis-routes.
package dispatch

import (
	"fmt"
	"sync/atomic"
)

// Mode selects how much freedom the router has.
type Mode int

const (
	// ModeAuto routes each workload by the calibrated cost model.
	ModeAuto Mode = iota
	// ModeFixed reproduces the pre-dispatch hard-coded thresholds:
	// inter-sequence int8 ladder for lane groups, striped ladder for
	// singletons and pairwise scans, band kernel always on.
	ModeFixed
	// ModeScalar forces the exact scalar kernels everywhere (reference
	// and benchmarking).
	ModeScalar
)

// ParseMode maps the CLI spelling to a Mode; the empty string means
// auto.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "fixed":
		return ModeFixed, nil
	case "scalar":
		return ModeScalar, nil
	}
	return 0, fmt.Errorf("dispatch: unknown mode %q (want auto, fixed or scalar)", s)
}

// String returns the CLI spelling of m.
func (m Mode) String() string {
	switch m {
	case ModeFixed:
		return "fixed"
	case ModeScalar:
		return "scalar"
	}
	return "auto"
}

// GroupRoute is the router's verdict for one lane group of a database
// scan.
type GroupRoute int

const (
	// GroupInter8 scans the group with the inter-sequence int8 SWAR
	// kernel and its int16 → scalar fallback ladder.
	GroupInter8 GroupRoute = iota
	// GroupInter16 starts the group directly at the int16 kernel (two
	// 4-lane words per 8-record group), skipping a doomed int8 pass.
	GroupInter16
	// GroupSingles scans each record of the group as its own striped
	// intra-sequence ladder — the right call for ragged leftover groups
	// whose padding would waste most of the packed lanes.
	GroupSingles
	// GroupScalar runs the exact scalar kernel per record.
	GroupScalar
)

// String returns a short label for logging and tests.
func (r GroupRoute) String() string {
	switch r {
	case GroupInter8:
		return "inter8"
	case GroupInter16:
		return "inter16"
	case GroupSingles:
		return "singles"
	}
	return "scalar"
}

// PairRoute is the router's verdict for one pairwise scan: the rung of
// the striped ladder to start at. Whatever the start, the ladder still
// falls back rung by rung on saturation, so the scan stays exact.
type PairRoute int

const (
	// PairStriped8 starts at the 8-lane striped int8 kernel.
	PairStriped8 PairRoute = iota
	// PairStriped16 starts at the 4-lane striped int16 kernel.
	PairStriped16
	// PairScalar runs the scalar kernel directly.
	PairScalar
)

// String returns a short label for logging and tests.
func (r PairRoute) String() string {
	switch r {
	case PairStriped8:
		return "striped8"
	case PairStriped16:
		return "striped16"
	}
	return "scalar"
}

// active is the process-wide router consulted by call sites that have
// no per-scan router of their own (align.Scan's fast path, the
// pre-process band loop). It defaults to ModeFixed — the pre-dispatch
// behavior — until something (the CLI -dispatch flag, a test) installs
// a calibrated one.
var active atomic.Pointer[Router]

// Active returns the process-wide router, never nil.
func Active() *Router {
	if r := active.Load(); r != nil {
		return r
	}
	r := New(ModeFixed, nil)
	if active.CompareAndSwap(nil, r) {
		return r
	}
	return active.Load()
}

// SetActive installs the process-wide router; nil resets to the fixed
// default.
func SetActive(r *Router) {
	if r == nil {
		active.Store(New(ModeFixed, nil))
		return
	}
	active.Store(r)
}
