package dispatch

import (
	"os"
	"path/filepath"
	"testing"

	"genomedsm/internal/bio"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"", ModeAuto, false},
		{"auto", ModeAuto, false},
		{"fixed", ModeFixed, false},
		{"scalar", ModeScalar, false},
		{"turbo", 0, true},
		{"AUTO", 0, true},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseMode(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseMode(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, m := range []Mode{ModeAuto, ModeFixed, ModeScalar} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("Mode round-trip %v → %q → %v (err %v)", m, m.String(), back, err)
		}
	}
}

// TestCacheRoundTrip is the table-driven calibration-cache contract:
// a valid profile survives Save/Load, and every class of defect —
// corrupt JSON, stale version, foreign host or build, missing family —
// fails Load so LoadOrCalibrate falls back to re-probing and repairs
// the cache file.
func TestCacheRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(p *Profile) []byte // nil body = Save the profile as-is
		wantErr bool
	}{
		{"valid", nil, false},
		{"corrupt-json", func(p *Profile) []byte { return []byte("{not json") }, true},
		{"stale-version", func(p *Profile) []byte { p.Version++; return nil }, true},
		{"foreign-host", func(p *Profile) []byte { p.Host = "elsewhere/linux/amd64/cpu1"; return nil }, true},
		{"foreign-build", func(p *Profile) []byte { p.Build = "go0.0/deadbeef"; return nil }, true},
		{"missing-family", func(p *Profile) []byte { delete(p.Families, FamBand); return nil }, true},
		{"zero-throughput", func(p *Profile) []byte { p.Families[FamScalar] = FamilyStats{}; return nil }, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "dispatch.json")
			p := DefaultProfile()
			var raw []byte
			if c.corrupt != nil {
				raw = c.corrupt(p)
			}
			if raw != nil {
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			} else if err := p.Save(path); err != nil {
				t.Fatal(err)
			}
			got, err := Load(path)
			if c.wantErr {
				if err == nil {
					t.Fatalf("Load accepted a %s cache", c.name)
				}
				// The fallback must re-probe, report fromCache=false, and
				// leave a now-valid cache behind.
				repaired, fromCache := LoadOrCalibrate(path)
				if fromCache {
					t.Fatalf("LoadOrCalibrate trusted a %s cache", c.name)
				}
				if err := repaired.validFor(hostSignature(), buildSignature()); err != nil {
					t.Fatalf("re-probed profile invalid: %v", err)
				}
				if _, err := Load(path); err != nil {
					t.Fatalf("cache not repaired after fallback: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			for _, fam := range Families {
				if got.Stats(fam) != p.Stats(fam) {
					t.Fatalf("family %s: %+v, want %+v", fam, got.Stats(fam), p.Stats(fam))
				}
			}
			if _, fromCache := LoadOrCalibrate(path); !fromCache {
				t.Fatal("LoadOrCalibrate re-probed despite a valid cache")
			}
		})
	}
}

func TestCachePathEnvOverride(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(cacheEnv, dir)
	path, err := CachePath()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("CachePath = %s, want inside %s", path, dir)
	}
}

// TestCalibrateCoversAllFamilies runs the real probe set (a few
// milliseconds) and checks every family yields a usable cost model.
func TestCalibrateCoversAllFamilies(t *testing.T) {
	p := Calibrate()
	if err := p.validFor(hostSignature(), buildSignature()); err != nil {
		t.Fatal(err)
	}
	for _, fam := range Families {
		st := p.Families[fam]
		if st.MCells <= 0 || st.MCells > 1e6 {
			t.Errorf("family %s: implausible throughput %.1f Mcells/s", fam, st.MCells)
		}
		if st.OverheadNS < 0 {
			t.Errorf("family %s: negative overhead %f", fam, st.OverheadNS)
		}
	}
}

func TestFit(t *testing.T) {
	// 1e6 cells in 2ms and 4e6 cells in 5ms → 1e9 cells/s, 1ms overhead.
	st := fit(1e6, 2e-3, 4e6, 5e-3)
	if st.MCells < 999 || st.MCells > 1001 {
		t.Fatalf("throughput %.2f, want ≈1000", st.MCells)
	}
	if st.OverheadNS < 0.99e6 || st.OverheadNS > 1.01e6 {
		t.Fatalf("overhead %.0f ns, want ≈1e6", st.OverheadNS)
	}
	// Degenerate (non-increasing time) collapses to pure throughput.
	st = fit(1e6, 5e-3, 4e6, 5e-3)
	if st.MCells <= 0 || st.OverheadNS != 0 {
		t.Fatalf("degenerate fit: %+v", st)
	}
}

func TestRouterFixedAndScalarModes(t *testing.T) {
	sc := bio.DefaultScoring()
	fixed := New(ModeFixed, nil)
	scalar := New(ModeScalar, nil)

	if r := fixed.NewScan().Group(100, []int{50}, sc); r != GroupSingles {
		t.Fatalf("fixed singleton → %v, want singles", r)
	}
	if r := fixed.NewScan().Group(100, []int{50, 60, 70}, sc); r != GroupInter8 {
		t.Fatalf("fixed group → %v, want inter8", r)
	}
	if r := scalar.NewScan().Group(100, []int{50, 60}, sc); r != GroupScalar {
		t.Fatalf("scalar group → %v, want scalar", r)
	}
	if r := fixed.Pair(100, 100, sc, 0); r != PairStriped8 {
		t.Fatalf("fixed pair → %v, want striped8", r)
	}
	if r := scalar.Pair(100, 100, sc, 0); r != PairScalar {
		t.Fatalf("scalar pair → %v, want scalar", r)
	}
	if !fixed.Band(4) || scalar.Band(100) {
		t.Fatal("band gating: fixed must allow, scalar must refuse")
	}
}

// TestPairExpectScoreProof pins the proof-based rung skip: a known
// score above a rung's clean cap must skip that rung in EVERY mode.
func TestPairExpectScoreProof(t *testing.T) {
	sc := bio.DefaultScoring()
	for _, mode := range []Mode{ModeAuto, ModeFixed} {
		r := New(mode, nil)
		if got := r.Pair(5000, 5000, sc, bio.PackedCap8+1); got != PairStriped16 {
			t.Fatalf("mode %v: expect>cap8 → %v, want striped16", mode, got)
		}
		if got := r.Pair(90000, 90000, sc, bio.PackedCap16+1); got != PairScalar {
			t.Fatalf("mode %v: expect>cap16 → %v, want scalar", mode, got)
		}
	}
}

// TestAutoRouting checks the cost model's qualitative calls on a
// controlled profile (equal throughputs would never separate routes, so
// the table gives each family a distinct, realistic shape).
func TestAutoRouting(t *testing.T) {
	prof := DefaultProfile()
	sc := bio.DefaultScoring()
	r := New(ModeAuto, prof)

	// Eight equal long lanes: the packed int8 word-pass wins (singles
	// would compute the same cells but pay eight profile builds).
	long := []int{1000, 1000, 1000, 1000, 1000, 1000, 1000, 1000}
	if got := r.NewScan().Group(1000, long, sc); got != GroupInter8 {
		t.Fatalf("uniform full group → %v, want inter8", got)
	}
	// A ragged leftover pair (one long, one tiny): padding the short
	// lane to maxLen in 8 lanes wastes ~8× the useful cells; singles win.
	if got := r.NewScan().Group(1000, []int{2000, 30}, sc); got != GroupSingles {
		t.Fatalf("ragged leftover → %v, want singles", got)
	}
	// Saturation feedback: once the observed int8 saturation rate says
	// nearly every capable lane retries, saturation-capable groups start
	// at int16.
	st := r.NewScan()
	st.Observe8(64, 64)
	sat := []int{900, 900, 900, 900, 900, 900, 900, 900} // 900·Match > cap8
	if !SatPossible8(900, 900, sc) {
		t.Fatal("test workload unexpectedly cannot saturate")
	}
	if got := st.Group(900, sat, sc); got != GroupInter16 {
		t.Fatalf("saturating group after feedback → %v, want inter16", got)
	}
	// The same group with no saturation observed stays on int8.
	st2 := r.NewScan()
	st2.Observe8(64, 0)
	if got := st2.Group(900, sat, sc); got != GroupInter8 {
		t.Fatalf("non-saturating group → %v, want inter8", got)
	}
	// Tiny pairs: per-call overhead dominates; scalar wins the pair.
	if got := r.Pair(4, 4, sc, 0); got != PairScalar {
		t.Fatalf("tiny pair → %v, want scalar", got)
	}
	if got := r.Pair(2000, 2000, sc, 0); got != PairStriped8 {
		t.Fatalf("large pair → %v, want striped8", got)
	}
	// Band: auto keeps the packed kernel for real band heights and
	// refuses sub-lane-width bands.
	if !r.Band(64) || r.Band(4) {
		t.Fatal("auto band gating wrong")
	}
}

// TestForceHooks pins the adversarial override used by the fuzz suite.
func TestForceHooks(t *testing.T) {
	r := New(ModeAuto, nil)
	r.ForceGroup = func(qLen int, lens []int) (GroupRoute, bool) { return GroupScalar, true }
	r.ForcePair = func(m, n int) (PairRoute, bool) { return PairStriped16, true }
	sc := bio.DefaultScoring()
	if got := r.NewScan().Group(1000, []int{1000, 1000}, sc); got != GroupScalar {
		t.Fatalf("ForceGroup ignored: %v", got)
	}
	if got := r.Pair(1000, 1000, sc, 0); got != PairStriped16 {
		t.Fatalf("ForcePair ignored: %v", got)
	}
}

func TestActiveDefaultIsFixed(t *testing.T) {
	SetActive(nil)
	if Active().Mode() != ModeFixed {
		t.Fatalf("default active mode %v, want fixed", Active().Mode())
	}
}
