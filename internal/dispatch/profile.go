package dispatch

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync/atomic"
)

// ProfileVersion is bumped whenever the probe set or the meaning of the
// stored numbers changes; cached profiles with another version are
// re-probed.
const ProfileVersion = 1

// cacheEnv overrides the on-disk cache location (a directory); tests
// point it at a temp dir so nothing outside the sandbox is written.
const cacheEnv = "GENOMEDSM_DISPATCH_CACHE"

// FamilyStats is one kernel family's calibrated cost model: time for a
// scan of c cells ≈ OverheadNS + c / (MCells · 1e6 / 1e9) nanoseconds.
// MCells counts useful (unpadded) cells per second at the family's full
// lane occupancy; OverheadNS is the per-call setup cost (profile
// construction, row buffers), which is what makes the scalar kernel win
// on tiny inputs despite its lower throughput.
type FamilyStats struct {
	MCells     float64 `json:"mcells_per_second"`
	OverheadNS float64 `json:"overhead_ns"`
}

// seconds returns the modeled wall time of one call over cells cells.
func (f FamilyStats) seconds(cells float64) float64 {
	if f.MCells <= 0 {
		return f.OverheadNS / 1e9
	}
	return f.OverheadNS/1e9 + cells/(f.MCells*1e6)
}

// Kernel family keys of the calibration table.
const (
	FamScalar    = "scalar"
	FamInter8    = "inter8"
	FamInter16   = "inter16"
	FamStriped8  = "striped8"
	FamStriped16 = "striped16"
	FamBand      = "band"
)

// Families lists every probed family in display order.
var Families = []string{FamScalar, FamInter8, FamInter16, FamStriped8, FamStriped16, FamBand}

// Profile is one host's calibrated kernel table. It is immutable after
// construction and safe to share between goroutines.
type Profile struct {
	Version  int                    `json:"version"`
	Host     string                 `json:"host"`
	Build    string                 `json:"build"`
	Families map[string]FamilyStats `json:"families"`
}

// Stats returns the named family's stats, falling back to the static
// default table for unknown names so the router never divides by zero.
func (p *Profile) Stats(name string) FamilyStats {
	if p != nil {
		if st, ok := p.Families[name]; ok && st.MCells > 0 {
			return st
		}
	}
	return defaultStats[name]
}

// defaultStats is the static fallback table: the committed benchmark
// snapshot of the dev machine, used when calibration is skipped or a
// family's probe failed. Ratios, not absolutes, drive routing, so a
// stale table degrades routing quality but never correctness.
var defaultStats = map[string]FamilyStats{
	FamScalar:    {MCells: 360, OverheadNS: 2500},
	FamInter8:    {MCells: 950, OverheadNS: 6000},
	FamInter16:   {MCells: 520, OverheadNS: 4000},
	FamStriped8:  {MCells: 950, OverheadNS: 5000},
	FamStriped16: {MCells: 520, OverheadNS: 5000},
	FamBand:      {MCells: 900, OverheadNS: 5000},
}

// DefaultProfile returns the static table wrapped as a Profile for the
// current host.
func DefaultProfile() *Profile {
	fams := make(map[string]FamilyStats, len(defaultStats))
	for k, v := range defaultStats {
		fams[k] = v
	}
	return &Profile{Version: ProfileVersion, Host: hostSignature(), Build: buildSignature(), Families: fams}
}

// hostSignature identifies the machine a profile was measured on.
// Calibration numbers do not transfer across hosts, architectures or
// core counts, so any mismatch invalidates a cached profile.
func hostSignature() string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	return fmt.Sprintf("%s/%s/%s/cpu%d", host, runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

// buildSignature identifies the binary the profile was measured with:
// kernel code generation shifts between toolchains and module versions,
// so a cached profile from another build is re-probed.
func buildSignature() string {
	sig := runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			sig += "/" + bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				sig += "/" + s.Value
			}
		}
	}
	return sig
}

// validFor reports whether p was measured by this exact probe set, on
// this host, with this build, and carries every family.
func (p *Profile) validFor(host, build string) error {
	switch {
	case p == nil:
		return fmt.Errorf("dispatch: nil profile")
	case p.Version != ProfileVersion:
		return fmt.Errorf("dispatch: profile version %d, want %d", p.Version, ProfileVersion)
	case p.Host != host:
		return fmt.Errorf("dispatch: profile host %q, running on %q", p.Host, host)
	case p.Build != build:
		return fmt.Errorf("dispatch: profile build %q, running %q", p.Build, build)
	}
	for _, fam := range Families {
		st, ok := p.Families[fam]
		if !ok || st.MCells <= 0 || st.OverheadNS < 0 {
			return fmt.Errorf("dispatch: profile missing family %q", fam)
		}
	}
	return nil
}

// CachePath returns the on-disk location of the calibration cache:
// $GENOMEDSM_DISPATCH_CACHE/dispatch.json when the env var is set,
// otherwise <user cache dir>/genomedsm/dispatch.json.
func CachePath() (string, error) {
	if dir := os.Getenv(cacheEnv); dir != "" {
		return filepath.Join(dir, "dispatch.json"), nil
	}
	dir, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("dispatch: no cache dir: %w", err)
	}
	return filepath.Join(dir, "genomedsm", "dispatch.json"), nil
}

// Load reads and validates a cached profile. Any defect — unreadable
// file, corrupt JSON, stale version, foreign host or build, missing
// families — is an error; callers fall back to re-probing.
func Load(path string) (*Profile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("dispatch: corrupt profile %s: %w", path, err)
	}
	if err := p.validFor(hostSignature(), buildSignature()); err != nil {
		return nil, err
	}
	return &p, nil
}

// Save writes the profile atomically (temp file + rename), creating the
// cache directory as needed.
func (p *Profile) Save(path string) error {
	raw, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "dispatch-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadOrCalibrate returns the cached profile when it is valid for this
// host and build, otherwise re-probes and (best effort) refreshes the
// cache. fromCache reports which happened.
func LoadOrCalibrate(path string) (p *Profile, fromCache bool) {
	if p, err := Load(path); err == nil {
		return p, true
	}
	p = Calibrate()
	_ = p.Save(path) // cache is an optimization; failure to write is not
	return p, false
}

// hostProf caches the in-memory calibration of this process: library
// callers (search auto mode, tests) get calibrated routing without any
// disk traffic; only the CLI opts into the on-disk cache.
var hostProf atomic.Pointer[Profile]

// Host returns this process's calibrated profile, probing on first use.
// It never touches the disk. Concurrent first calls may probe more than
// once (a few milliseconds each, results equivalent); exactly one wins.
func Host() *Profile {
	if p := hostProf.Load(); p != nil {
		return p
	}
	p := Calibrate()
	if hostProf.CompareAndSwap(nil, p) {
		return p
	}
	return hostProf.Load()
}

// SetHostProfile installs p as the process profile returned by Host():
// the CLI uses it to share its on-disk cached calibration with every
// library layer. A nil p re-enables lazy calibration.
func SetHostProfile(p *Profile) { hostProf.Store(p) }

// TableRows renders the profile as ordered (family, Mcells/s,
// overhead-ns) rows for the CLI -calibrate report.
func (p *Profile) TableRows() [][3]string {
	names := make([]string, 0, len(p.Families))
	for name := range p.Families {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([][3]string, 0, len(names))
	for _, name := range names {
		st := p.Families[name]
		rows = append(rows, [3]string{name,
			fmt.Sprintf("%.1f", st.MCells),
			fmt.Sprintf("%.0f", st.OverheadNS)})
	}
	return rows
}
