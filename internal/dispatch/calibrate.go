package dispatch

import (
	"time"

	"genomedsm/internal/bio"
	"genomedsm/internal/swar"
)

// Calibration probes. Each kernel family is timed on deterministic
// synthetic sequences at two matrix sizes; the two (cells, time) points
// solve the linear cost model t = overhead + cells/throughput, so the
// router can separate a family's asymptotic Mcells/s from its per-call
// setup cost (profile construction, row buffers). The probe matrices
// are a few hundred KCells, so a full Calibrate costs a few
// milliseconds — amortized to zero by the on-disk cache for CLI runs
// and by the per-process Host() cache for library use.
//
// Probe inputs are random DNA under the default scoring, whose local
// scores stay far below the int8 clean range: the narrow kernels are
// timed on their fast path, which is the regime routing cares about
// (a saturating int8 pass costs the same as a clean one — it is the
// retry that routing predicts separately).

// probe sizes: the small size exposes per-call overhead, the large one
// the asymptotic throughput.
const (
	probeSmall = 128
	probeLarge = 512
	// probeMinTime is the minimum measured wall time per (family, size)
	// point; calls are repeated until it is exceeded so timer
	// granularity cannot dominate.
	probeMinTime = 200 * time.Microsecond
	// probeMaxReps caps the repetitions so a mis-measured fast family
	// cannot stall startup.
	probeMaxReps = 512
	// probePasses timed passes are taken per point; the minimum wins.
	probePasses = 5
)

// measure times fn (which scans cells cells per call) and returns the
// per-call seconds: the minimum over a few timed passes, since the
// minimum is the least contaminated by scheduler and GC interference —
// a single noisy pass here would mis-rank kernel families for the
// whole process lifetime.
func measure(cells float64, fn func()) (secsPerCall float64) {
	fn() // warm caches and lazily-allocated buffers outside the timer
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		el := time.Since(start)
		if el >= probeMinTime || reps >= probeMaxReps {
			break
		}
		reps *= 2
	}
	best := 0.0
	for pass := 0; pass < probePasses; pass++ {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		if s := time.Since(start).Seconds() / float64(reps); pass == 0 || s < best {
			best = s
		}
	}
	return best
}

// fit solves the two-point cost model: t = overhead + cells/th.
// Degenerate measurements (non-increasing time) collapse to a pure
// throughput model with zero overhead.
func fit(c1, t1, c2, t2 float64) FamilyStats {
	if t2 > t1 && c2 > c1 {
		th := (c2 - c1) / (t2 - t1)
		over := t1 - c1/th
		if over < 0 {
			over = 0
		}
		return FamilyStats{MCells: th / 1e6, OverheadNS: over * 1e9}
	}
	if t2 > 0 {
		return FamilyStats{MCells: c2 / t2 / 1e6}
	}
	return defaultStats[FamScalar]
}

// Calibrate probes every kernel family on this host and returns the
// measured profile. It allocates only probe-sized buffers and runs for
// a few milliseconds.
func Calibrate() *Profile {
	g := bio.NewGenerator(1)
	sc := bio.DefaultScoring()
	q := g.Random(probeLarge)
	t := g.Random(probeLarge)
	targets := make([]bio.Sequence, bio.PackedLanes8)
	for i := range targets {
		targets[i] = g.Random(probeLarge)
	}
	var al swar.Aligner

	fams := make(map[string]FamilyStats, len(Families))
	twoPoint := func(fam string, run func(n int), cellsOf func(n int) float64) {
		t1 := measure(cellsOf(probeSmall), func() { run(probeSmall) })
		t2 := measure(cellsOf(probeLarge), func() { run(probeLarge) })
		fams[fam] = fit(cellsOf(probeSmall), t1, cellsOf(probeLarge), t2)
	}

	twoPoint(FamScalar, func(n int) {
		swar.ScalarScoreBounded(q[:n], t[:n], sc, nil)
	}, func(n int) float64 { return float64(n) * float64(n) })

	twoPoint(FamInter8, func(n int) {
		group := make([]bio.Sequence, bio.PackedLanes8)
		for i := range group {
			group[i] = targets[i][:n]
		}
		al.Scan8(q[:n], group, sc)
	}, func(n int) float64 { return float64(bio.PackedLanes8) * float64(n) * float64(n) })

	twoPoint(FamInter16, func(n int) {
		group := make([]bio.Sequence, bio.PackedLanes16)
		for i := range group {
			group[i] = targets[i][:n]
		}
		al.Scan16(q[:n], group, sc)
	}, func(n int) float64 { return float64(bio.PackedLanes16) * float64(n) * float64(n) })

	twoPoint(FamStriped8, func(n int) {
		al.StripedScan8(q[:n], t[:n], sc)
	}, func(n int) float64 { return float64(n) * float64(n) })

	twoPoint(FamStriped16, func(n int) {
		al.StripedScan16(q[:n], t[:n], sc)
	}, func(n int) float64 { return float64(n) * float64(n) })

	// The band probe advances a 64-row band across n columns from zero
	// borders — the pre-process chunk interior at its typical shape.
	const bandRows = 64
	rows := g.Random(bandRows)
	kern := swar.NewBandKernel(rows, sc, 1<<30)
	left := make([]int32, bandRows)
	bottom := make([]int32, probeLarge)
	hits := make([]int32, probeLarge)
	twoPoint(FamBand, func(n int) {
		clear(left)
		args := swar.ChunkArgs{
			Cols:   t[:n],
			Left:   left,
			Bottom: bottom[:n],
			Hits:   hits[:n],
		}
		if _, done, err := kern.Chunk(&args); done == 0 || err != nil {
			panic("dispatch: band probe rejected by its own kernel")
		}
	}, func(n int) float64 { return float64(bandRows) * float64(n) })

	return &Profile{
		Version:  ProfileVersion,
		Host:     hostSignature(),
		Build:    buildSignature(),
		Families: fams,
	}
}
