package shard

import (
	"fmt"
	"testing"

	"genomedsm/internal/bio"
	"genomedsm/internal/search"
)

func planDB(t *testing.T, seed int64, n, baseLen int) *search.DB {
	t.Helper()
	g := bio.NewGenerator(seed)
	recs := make([]bio.Record, n)
	for i := range recs {
		rl := baseLen/2 + (i*37)%(baseLen+1)
		recs[i] = bio.Record{ID: fmt.Sprintf("r%d", i), Seq: g.Random(rl)}
	}
	return search.NewDB(recs)
}

func TestPlanSpansPartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{64, 1}, {64, 2}, {64, 4}, {64, 7}, {64, 64}, {64, 100},
		{1, 4}, {3, 3}, {0, 2},
	} {
		db := planDB(t, 7, tc.n, 300)
		spans := PlanSpans(db, tc.shards)
		if len(spans) != tc.shards {
			t.Fatalf("n=%d shards=%d: got %d spans", tc.n, tc.shards, len(spans))
		}
		if err := ValidateSpans(spans, tc.n); err != nil {
			t.Fatalf("n=%d shards=%d: %v", tc.n, tc.shards, err)
		}
		for i, sp := range spans[:len(spans)-1] {
			// Interior cuts land on lane-group boundaries so every
			// shard can slice the precomputed layout (see subDB).
			if sp.Hi != tc.n && sp.Hi%bio.PackedLanes8 != 0 {
				t.Errorf("n=%d shards=%d: span %d ends at unaligned rank %d", tc.n, tc.shards, i, sp.Hi)
			}
		}
	}
}

func TestSubDBLayoutAttach(t *testing.T) {
	db := planDB(t, 17, 44, 300)
	db.EnsureLayout()
	spans := PlanSpans(db, 3)
	for si, sp := range spans {
		d, _, err := subDB(db, sp)
		if err != nil {
			t.Fatalf("span %v: %v", sp, err)
		}
		if sp.Len() == 0 {
			continue
		}
		lay := d.Layout()
		if lay == nil {
			t.Fatalf("span %d %v: planned span did not attach a layout slice", si, sp)
		}
		// The attached slice must be exactly what building from the
		// sub-database would produce — that is the bit-exactness claim.
		want := search.BuildLayout(d)
		if lay.Groups() != want.Groups() {
			t.Fatalf("span %v: %d groups, want %d", sp, lay.Groups(), want.Groups())
		}
		for g := 0; g < want.Groups(); g++ {
			gw, ww := lay.GroupWords(g), want.GroupWords(g)
			if len(gw) != len(ww) {
				t.Fatalf("span %v group %d: %d words, want %d", sp, g, len(gw), len(ww))
			}
			for j := range ww {
				if gw[j] != ww[j] {
					t.Fatalf("span %v group %d word %d: %#x want %#x", sp, g, j, gw[j], ww[j])
				}
			}
		}
		// And it must alias the parent's words, not copy them.
		if pw, sw := db.Layout().Words(), lay.Words(); len(sw) > 0 {
			off := db.Layout().Offsets()[sp.Lo/bio.PackedLanes8]
			if &pw[off] != &sw[0] {
				t.Errorf("span %v: layout slice copied instead of aliasing parent words", sp)
			}
		}
	}
	// An unaligned custom span must skip the attach (lazy rebuild is
	// still exact, just not zero-copy).
	d, _, err := subDB(db, Span{Lo: 4, Hi: 12})
	if err != nil {
		t.Fatal(err)
	}
	if d.Layout() != nil {
		t.Error("unaligned span attached a layout slice")
	}
}

func TestPlanSpansBalance(t *testing.T) {
	db := planDB(t, 11, 256, 500)
	const shards = 4
	spans := PlanSpans(db, shards)
	recs, order := db.Records(), db.Order()
	var loads []int64
	for _, sp := range spans {
		var bases int64
		for r := sp.Lo; r < sp.Hi; r++ {
			bases += int64(len(recs[order[r]].Seq))
		}
		loads = append(loads, bases)
	}
	target := db.TotalBases() / shards
	// Each cut lands within one max-record-length of the ideal point,
	// then moves at most half a lane group (4 records) to the nearest
	// group boundary so workers can slice the precomputed lane layout:
	// tolerance = (1 + PackedLanes8/2) × max record length (750 here).
	tol := int64(1+bio.PackedLanes8/2) * 750
	for i, l := range loads {
		if diff := l - target; diff > tol || diff < -tol {
			t.Errorf("shard %d carries %d bases, target %d (loads %v)", i, l, target, loads)
		}
	}
}

func TestValidateSpansRejects(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spans []Span
		n     int
	}{
		{"empty plan", nil, 4},
		{"gap", []Span{{0, 2}, {3, 4}}, 4},
		{"overlap", []Span{{0, 3}, {2, 4}}, 4},
		{"inverted", []Span{{0, 2}, {2, 1}}, 4},
		{"short", []Span{{0, 2}}, 4},
		{"long", []Span{{0, 6}}, 4},
	} {
		if err := ValidateSpans(tc.spans, tc.n); err == nil {
			t.Errorf("%s: ValidateSpans accepted %v over %d records", tc.name, tc.spans, tc.n)
		}
	}
}

func TestSubDBOrderAndMapping(t *testing.T) {
	db := planDB(t, 13, 40, 300)
	spans := PlanSpans(db, 3)
	seen := make(map[int]bool)
	for _, sp := range spans {
		sub, toGlobal, err := subDB(db, sp)
		if err != nil {
			t.Fatalf("subDB(%v): %v", sp, err)
		}
		if sub.Size() != sp.Len() || len(toGlobal) != sp.Len() {
			t.Fatalf("subDB(%v): %d records, %d mapped", sp, sub.Size(), len(toGlobal))
		}
		for li, gi := range toGlobal {
			if seen[gi] {
				t.Fatalf("record %d appears in two spans", gi)
			}
			seen[gi] = true
			if sub.Records()[li].ID != db.Records()[gi].ID {
				t.Fatalf("span %v local %d maps to %d but IDs differ", sp, li, gi)
			}
		}
	}
	if len(seen) != db.Size() {
		t.Fatalf("spans cover %d of %d records", len(seen), db.Size())
	}
}
