package shard

import (
	"fmt"
	"testing"

	"genomedsm/internal/bio"
	"genomedsm/internal/search"
)

func planDB(t *testing.T, seed int64, n, baseLen int) *search.DB {
	t.Helper()
	g := bio.NewGenerator(seed)
	recs := make([]bio.Record, n)
	for i := range recs {
		rl := baseLen/2 + (i*37)%(baseLen+1)
		recs[i] = bio.Record{ID: fmt.Sprintf("r%d", i), Seq: g.Random(rl)}
	}
	return search.NewDB(recs)
}

func TestPlanSpansPartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{64, 1}, {64, 2}, {64, 4}, {64, 7}, {64, 64}, {64, 100},
		{1, 4}, {3, 3}, {0, 2},
	} {
		db := planDB(t, 7, tc.n, 300)
		spans := PlanSpans(db, tc.shards)
		if len(spans) != tc.shards {
			t.Fatalf("n=%d shards=%d: got %d spans", tc.n, tc.shards, len(spans))
		}
		if err := ValidateSpans(spans, tc.n); err != nil {
			t.Fatalf("n=%d shards=%d: %v", tc.n, tc.shards, err)
		}
	}
}

func TestPlanSpansBalance(t *testing.T) {
	db := planDB(t, 11, 256, 500)
	const shards = 4
	spans := PlanSpans(db, shards)
	recs, order := db.Records(), db.Order()
	var loads []int64
	for _, sp := range spans {
		var bases int64
		for r := sp.Lo; r < sp.Hi; r++ {
			bases += int64(len(recs[order[r]].Seq))
		}
		loads = append(loads, bases)
	}
	target := db.TotalBases() / shards
	for i, l := range loads {
		// Each shard within one max-record-length of the ideal cut.
		if diff := l - target; diff > 800 || diff < -800 {
			t.Errorf("shard %d carries %d bases, target %d (loads %v)", i, l, target, loads)
		}
	}
}

func TestValidateSpansRejects(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spans []Span
		n     int
	}{
		{"empty plan", nil, 4},
		{"gap", []Span{{0, 2}, {3, 4}}, 4},
		{"overlap", []Span{{0, 3}, {2, 4}}, 4},
		{"inverted", []Span{{0, 2}, {2, 1}}, 4},
		{"short", []Span{{0, 2}}, 4},
		{"long", []Span{{0, 6}}, 4},
	} {
		if err := ValidateSpans(tc.spans, tc.n); err == nil {
			t.Errorf("%s: ValidateSpans accepted %v over %d records", tc.name, tc.spans, tc.n)
		}
	}
}

func TestSubDBOrderAndMapping(t *testing.T) {
	db := planDB(t, 13, 40, 300)
	spans := PlanSpans(db, 3)
	seen := make(map[int]bool)
	for _, sp := range spans {
		sub, toGlobal, err := subDB(db, sp)
		if err != nil {
			t.Fatalf("subDB(%v): %v", sp, err)
		}
		if sub.Size() != sp.Len() || len(toGlobal) != sp.Len() {
			t.Fatalf("subDB(%v): %d records, %d mapped", sp, sub.Size(), len(toGlobal))
		}
		for li, gi := range toGlobal {
			if seen[gi] {
				t.Fatalf("record %d appears in two spans", gi)
			}
			seen[gi] = true
			if sub.Records()[li].ID != db.Records()[gi].ID {
				t.Fatalf("span %v local %d maps to %d but IDs differ", sp, li, gi)
			}
		}
	}
	if len(seen) != db.Size() {
		t.Fatalf("spans cover %d of %d records", len(seen), db.Size())
	}
}
