package shard

import (
	"sync"
	"sync/atomic"
	"time"
)

// The shard layer's messages travel over an in-process transport that
// models an unreliable datagram network: every send may independently
// be lost, duplicated, delayed or reordered behind a later message,
// drawn deterministically from a seed. The protocol above it (retries,
// dedup, leases) must therefore be correct against every fault the
// chaos oracle can draw — and in production (no FaultConfig) the same
// code paths run with synchronous, reliable delivery.

// class labels a message for fault draws and dispatch.
type class int

const (
	cRequest class = iota // master → worker: scatter one span's scan
	cResponse
	cFloor  // both directions: gossip evidence up, floor broadcasts down
	cBeat   // worker → master: lease heartbeat
	cCancel // master → worker: per-query cancellation
	numClasses
)

// msg is one datagram.
type msg struct {
	from, to int
	class    class
	payload  any
}

// FaultConfig seeds the transport's fault injection. Probabilities are
// per send (loss, duplication, reorder) and delays are real time. The
// draws are a pure function of (Seed, class, from, to, per-link
// counter) — the same construction as chaos.Plan — so a run's fault
// sequence replays from its seed regardless of wall-clock timing.
type FaultConfig struct {
	Seed        int64
	Loss        float64       // probability a message is silently dropped
	Dup         float64       // probability a message is delivered twice
	DelayBase   time.Duration // fixed extra latency per delivery
	DelayJitter time.Duration // uniform extra latency in [0, DelayJitter)
	Reorder     float64       // probability a message is held behind the next same-link send
}

// transport carries messages between the master and the workers.
// Node ids 0..shards-1 are workers; node id shards is the master.
type transport struct {
	faults  *FaultConfig
	inboxes []chan msg
	stop    chan struct{}
	cnt     []atomic.Uint64 // per-(link, class) draw counters

	mu   sync.Mutex
	held map[int]msg // per-link message held back for reordering
	has  map[int]bool

	lost      atomic.Int64
	dupped    atomic.Int64
	reordered atomic.Int64
}

func newTransport(nodes int, faults *FaultConfig, stop chan struct{}) *transport {
	t := &transport{
		faults:  faults,
		inboxes: make([]chan msg, nodes),
		stop:    stop,
		cnt:     make([]atomic.Uint64, nodes*nodes*int(numClasses)),
		held:    make(map[int]msg),
		has:     make(map[int]bool),
	}
	for i := range t.inboxes {
		t.inboxes[i] = make(chan msg, 1024)
	}
	return t
}

// draw returns the k-th deterministic uniform in [0,1) for the link.
func (t *transport) draw(m msg, salt uint64) float64 {
	f := t.faults
	h := mix64(uint64(f.Seed), uint64(m.class), uint64(m.from), uint64(m.to), salt)
	return float64(h>>11) / float64(1<<53)
}

func (t *transport) send(m msg) {
	f := t.faults
	if f == nil {
		t.deliver(m)
		return
	}
	link := (m.from*len(t.inboxes)+m.to)*int(numClasses) + int(m.class)
	k := t.cnt[link].Add(1)
	if f.Loss > 0 && t.draw(m, mix64(k, 1)) < f.Loss {
		t.lost.Add(1)
		return
	}
	copies := 1
	if f.Dup > 0 && t.draw(m, mix64(k, 2)) < f.Dup {
		copies = 2
		t.dupped.Add(1)
	}
	// Reorder: hold this message back; it is released when the next
	// same-link send overtakes it, or by a short flush timer so a quiet
	// link cannot strand it forever.
	if f.Reorder > 0 && t.draw(m, mix64(k, 3)) < f.Reorder {
		t.mu.Lock()
		if !t.has[link] {
			t.held[link], t.has[link] = m, true
			t.mu.Unlock()
			t.reordered.Add(1)
			time.AfterFunc(2*time.Millisecond, func() { t.release(link) })
			return
		}
		t.mu.Unlock()
	}
	for c := 0; c < copies; c++ {
		if d := t.delay(m, k, uint64(c)); d > 0 {
			mm := m
			time.AfterFunc(d, func() { t.deliver(mm) })
		} else {
			t.deliver(m)
		}
	}
	t.release(link)
}

func (t *transport) delay(m msg, k, c uint64) time.Duration {
	f := t.faults
	d := f.DelayBase
	if f.DelayJitter > 0 {
		d += time.Duration(t.draw(m, mix64(k, 4+c)) * float64(f.DelayJitter))
	}
	return d
}

// release delivers the message held back on link, if any — the overtaken
// half of a reordering.
func (t *transport) release(link int) {
	t.mu.Lock()
	if !t.has[link] {
		t.mu.Unlock()
		return
	}
	m := t.held[link]
	t.has[link] = false
	t.mu.Unlock()
	t.deliver(m)
}

// deliver enqueues m on the receiver's inbox. A stopped transport drops
// everything; a full inbox drops the message — indistinguishable from
// network loss, and recovered by the same retries.
func (t *transport) deliver(m msg) {
	select {
	case <-t.stop:
		return
	default:
	}
	select {
	case t.inboxes[m.to] <- m:
	default:
		t.lost.Add(1)
	}
}

// mix64 is a splitmix64-style finalizer over a word sequence — the
// transport's only randomness source, shared shape with chaos.mix64 and
// recovery.hash64.
func mix64(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}
