package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"genomedsm/internal/bio"
	"genomedsm/internal/recovery"
	"genomedsm/internal/search"
)

// Kill schedules one shard crash for fault injection: the worker dies
// after its AfterGroups-th per-query lane-group scan — mid-scan by
// construction whenever the shard has more work than that. A dead
// worker stops answering and heartbeating; the master detects the
// expired lease and replays the span on a survivor.
type Kill struct {
	Shard       int
	AfterGroups int
}

// Options configures a Cluster.
type Options struct {
	// Shards is the worker count (required, ≥ 1).
	Shards int
	// Search is the default scan configuration; SearchBatch's opt
	// overrides it per call (the serve layer's per-request overrides).
	Search search.Options
	// Timeout is the per-attempt wait for a span response before the
	// request is retransmitted (default 150ms). Retransmits to a live,
	// busy shard are deduped by request id, so a Timeout shorter than a
	// scan costs messages, never correctness.
	Timeout time.Duration
	// Retry spaces retransmissions: attempt n additionally waits
	// Retry.Delay(requestID, n) seconds on top of Timeout. Default:
	// 25ms base, ×2, 400ms cap, 25% jitter.
	Retry recovery.Backoff
	// Lease is the heartbeat lease; a shard whose lease expires is
	// declared dead and its spans replay on survivors (default 3s). A
	// false positive — a slow shard declared dead — costs duplicate
	// work, never correctness: the master accepts one response per span
	// and every response for a span is identical.
	Lease time.Duration
	// Heartbeat is the lease renewal period (default Lease/8).
	Heartbeat time.Duration
	// Faults injects seeded transport faults (nil = reliable transport).
	Faults *FaultConfig
	// Kills schedules worker crashes.
	Kills []Kill
	// Spans overrides the computed partition (tests and fuzzing);
	// must be a valid partition for Shards shards.
	Spans []Span
	// NoGossip disables the shared floor broadcast; shards then prune
	// against their local floors only. Exactness is unaffected — the
	// gossiped floor is a speed hint (tests pin exactly that).
	NoGossip bool
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 150 * time.Millisecond
	}
	if o.Retry.Base <= 0 {
		o.Retry = recovery.Backoff{Base: 25e-3, Factor: 2, Cap: 400e-3, Jitter: 0.25, Seed: 1}
	}
	if o.Lease <= 0 {
		o.Lease = 3 * time.Second
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = o.Lease / 8
	}
	return o
}

// Cluster is the master plus its in-process worker shards. Build with
// New, search with Search/SearchBatch, inspect with Stats, and Close
// when done. Safe for concurrent searches.
type Cluster struct {
	db      *search.DB
	opt     Options
	spans   []Span
	net     *transport
	workers []*worker
	stop    chan struct{}
	closed  atomic.Bool

	qid atomic.Uint64 // query ids (floor gossip, cancels)
	rid atomic.Uint64 // request ids (at-least-once dedup)

	mu      sync.Mutex
	waiters map[uint64]chan response
	floors  map[uint64]*globalFloor

	lastBeat []atomic.Int64 // unix nanos of each shard's last heartbeat
	dead     []atomic.Bool  // master's failure-detector verdicts
	lat      []latAgg
	ct       counters
}

// New partitions db across opt.Shards workers and starts them.
func New(db *search.DB, opt Options) (*Cluster, error) {
	if db == nil {
		return nil, errors.New("shard: nil database")
	}
	if opt.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", opt.Shards)
	}
	opt = opt.withDefaults()
	spans := opt.Spans
	if spans == nil {
		spans = PlanSpans(db, opt.Shards)
	}
	if len(spans) != opt.Shards {
		return nil, fmt.Errorf("shard: plan has %d spans for %d shards", len(spans), opt.Shards)
	}
	if err := ValidateSpans(spans, db.Size()); err != nil {
		return nil, err
	}
	for _, k := range opt.Kills {
		if k.Shard < 0 || k.Shard >= opt.Shards {
			return nil, fmt.Errorf("shard: kill names shard %d of %d", k.Shard, opt.Shards)
		}
	}
	c := &Cluster{
		db:       db,
		opt:      opt,
		spans:    spans,
		stop:     make(chan struct{}),
		waiters:  make(map[uint64]chan response),
		floors:   make(map[uint64]*globalFloor),
		lastBeat: make([]atomic.Int64, opt.Shards),
		dead:     make([]atomic.Bool, opt.Shards),
		lat:      make([]latAgg, opt.Shards),
	}
	c.net = newTransport(opt.Shards+1, opt.Faults, c.stop)
	now := time.Now().UnixNano()
	c.workers = make([]*worker, opt.Shards)
	for i := range c.workers {
		var killAfter int64
		for _, k := range opt.Kills {
			if k.Shard == i {
				killAfter = int64(k.AfterGroups)
				if killAfter < 1 {
					killAfter = 1
				}
			}
		}
		c.workers[i] = newWorker(c, i, killAfter)
		// The lease clock starts now: a worker that never heartbeats is
		// declared dead one lease from startup.
		c.lastBeat[i].Store(now)
		go c.workers[i].loop()
		go c.workers[i].beats(opt.Heartbeat)
	}
	go c.loop()
	return c, nil
}

// Close stops the cluster: in-flight scans abort, workers exit. Safe to
// call twice.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	close(c.stop)
	for _, w := range c.workers {
		w.cancel()
	}
}

// Spans returns the partition (for tests and /statsz).
func (c *Cluster) Spans() []Span { return c.spans }

func (c *Cluster) masterID() int { return len(c.workers) }

func (c *Cluster) send(from, to int, cl class, payload any) {
	c.net.send(msg{from: from, to: to, class: cl, payload: payload})
}

// loop is the master's inbox: response routing, lease renewal, floor
// gossip. It runs for the cluster's lifetime.
func (c *Cluster) loop() {
	for {
		select {
		case <-c.stop:
			return
		case m := <-c.net.inboxes[c.masterID()]:
			switch m.class {
			case cResponse:
				r := m.payload.(response)
				c.mu.Lock()
				ch := c.waiters[r.ID]
				c.mu.Unlock()
				if ch != nil {
					select {
					case ch <- r:
					default: // duplicate response; one is enough
					}
				}
			case cBeat:
				b := m.payload.(heartbeat)
				c.lastBeat[b.Shard].Store(time.Now().UnixNano())
			case cFloor:
				c.onGossip(m.payload.(floorUpdate))
			}
		}
	}
}

// onGossip folds a worker's evidence into the query's global floor and
// broadcasts a rise to every live shard. Evidence is deduped by global
// record index, so replayed spans and duplicated messages cannot count
// one record twice — the floor stays valid (K distinct eligible records
// score ≥ it) under every fault the transport can draw.
func (c *Cluster) onGossip(u floorUpdate) {
	c.ct.gossipUpdates.Add(1)
	c.mu.Lock()
	gf := c.floors[u.QID]
	c.mu.Unlock()
	if gf == nil {
		return // query finished (or gossip disabled); stale evidence
	}
	floor, rose := gf.push(u.Evidence)
	if !rose {
		return
	}
	c.ct.floorBroadcasts.Add(1)
	for i := range c.workers {
		if !c.dead[i].Load() {
			c.send(c.masterID(), i, cFloor, floorSet{QID: u.QID, Floor: floor})
		}
	}
}

// globalFloor is the master-side top-K floor of one in-flight query: a
// bounded min-heap of per-record evidence, deduped by global index.
// Same validity argument as search's floorTracker — when K distinct
// result-eligible records score ≥ f, no record scoring < f can enter
// the top K — with the dedup made unconditional because the distributed
// layer can legitimately deliver the same record's score twice.
type globalFloor struct {
	mu      sync.Mutex
	k       int
	floor   int
	entries []scoreEv // min-heap on Score
}

// push folds evidence in and reports the floor (and whether it rose).
func (g *globalFloor) push(evs []scoreEv) (int, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rose := false
	for _, ev := range evs {
		if g.k <= 0 || (g.floor > 0 && ev.Score <= g.floor) {
			continue
		}
		dup := false
		for i := range g.entries {
			if g.entries[i].Index == ev.Index {
				dup = true
				if ev.Score > g.entries[i].Score {
					g.entries[i].Score = ev.Score
					g.siftDown(i)
				}
				break
			}
		}
		if !dup {
			if len(g.entries) < g.k {
				g.entries = append(g.entries, ev)
				for i := len(g.entries) - 1; i > 0; {
					parent := (i - 1) / 2
					if g.entries[parent].Score <= g.entries[i].Score {
						break
					}
					g.entries[i], g.entries[parent] = g.entries[parent], g.entries[i]
					i = parent
				}
			} else if ev.Score > g.entries[0].Score {
				g.entries[0] = ev
				g.siftDown(0)
			}
		}
		if len(g.entries) == g.k && g.entries[0].Score > g.floor {
			g.floor = g.entries[0].Score
			rose = true
		}
	}
	return g.floor, rose
}

func (g *globalFloor) siftDown(i int) {
	n := len(g.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && g.entries[l].Score < g.entries[smallest].Score {
			smallest = l
		}
		if r < n && g.entries[r].Score < g.entries[smallest].Score {
			smallest = r
		}
		if smallest == i {
			return
		}
		g.entries[i], g.entries[smallest] = g.entries[smallest], g.entries[i]
		i = smallest
	}
}


// shardDead evaluates (and latches) the failure detector's verdict for
// one shard: dead once its lease has expired.
func (c *Cluster) shardDead(i int) bool {
	if c.dead[i].Load() {
		return true
	}
	beat := time.Unix(0, c.lastBeat[i].Load())
	if time.Since(beat) <= c.opt.Lease {
		return false
	}
	if !c.dead[i].Swap(true) {
		c.ct.deadDetected.Add(1)
	}
	return true
}

// survivor picks the lowest-id live shard — deterministic, so every
// span manager replaying work converges on the same target.
func (c *Cluster) survivor() (int, bool) {
	for i := range c.workers {
		if !c.shardDead(i) {
			return i, true
		}
	}
	return 0, false
}

// Search runs one query through the cluster.
func (c *Cluster) Search(ctx context.Context, q bio.Sequence, opt search.Options) (*search.Result, error) {
	brs, err := c.SearchBatch(ctx, []search.BatchQuery{{Seq: q}}, opt)
	if err != nil {
		return nil, err
	}
	if brs[0].Err != nil {
		return nil, brs[0].Err
	}
	return brs[0].Result, nil
}

// SearchBatch scatters the batch to every shard and merges the
// per-shard results. Results are bit-identical to search.RunBatch of
// the same batch over the same database with the same options —
// including under shard kills, message loss, duplication and
// reordering. Per-query contexts propagate: a cancelled query's scan
// work stops on every shard at the next lane-group boundary, and its
// BatchResult carries the context error plus partial diagnostics. The
// queries' FloorHint/OnScore/OnGroup hooks are owned by the shard
// protocol and must be nil.
func (c *Cluster) SearchBatch(ctx context.Context, queries []search.BatchQuery, opt search.Options) ([]search.BatchResult, error) {
	if c.closed.Load() {
		return nil, errors.New("shard: cluster closed")
	}
	if len(queries) == 0 {
		return nil, nil
	}
	for i, bq := range queries {
		if bq.FloorHint != nil || bq.OnScore != nil || bq.OnGroup != nil {
			return nil, fmt.Errorf("shard: query %d sets scan hooks reserved for the shard protocol", i)
		}
	}
	sc := opt.Scoring
	if sc == (bio.Scoring{}) {
		sc = bio.DefaultScoring()
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	c.ct.batches.Add(1)
	c.ct.queries.Add(int64(len(queries)))

	nq := len(queries)
	type qmeta struct {
		qid uint64
		ctx context.Context
		k   int
		gf  *globalFloor
	}
	metas := make([]qmeta, nq)
	wqs := make([]wireQuery, nq)
	batchDone := make(chan struct{})
	defer close(batchDone)
	for i, bq := range queries {
		qid := c.qid.Add(1)
		qctx := bq.Ctx
		if qctx == nil {
			qctx = ctx
		}
		k := bq.TopK
		if k <= 0 {
			k = opt.TopK
		}
		if k <= 0 {
			k = 10
		}
		minScore := bq.MinScore
		if minScore == 0 {
			minScore = opt.MinScore
		}
		metas[i] = qmeta{qid: qid, ctx: qctx, k: k}
		wqs[i] = wireQuery{QID: qid, Seq: bq.Seq, TopK: k, MinScore: minScore}
		if opt.Prune && !c.opt.NoGossip {
			gf := &globalFloor{k: k}
			metas[i].gf = gf
			c.mu.Lock()
			c.floors[qid] = gf
			c.mu.Unlock()
		}
		if qctx.Done() != nil {
			go c.watchCancel(qid, qctx, batchDone)
		}
	}
	defer func() {
		c.mu.Lock()
		for _, m := range metas {
			delete(c.floors, m.qid)
		}
		c.mu.Unlock()
	}()

	spanResults := make([][]wireResult, len(c.spans))
	spanErrs := make([]error, len(c.spans))
	var wg sync.WaitGroup
	for si := range c.spans {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			spanResults[si], spanErrs[si] = c.runSpan(ctx, si, wqs, opt)
		}(si)
	}
	wg.Wait()
	for _, err := range spanErrs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := make([]search.BatchResult, nq)
	for i := range queries {
		m := metas[i]
		qerr := m.ctx.Err()
		res := &search.Result{}
		var pst *search.PruneStats
		if opt.Prune {
			pst = &search.PruneStats{}
			res.Prune = pst
		}
		var hits []search.Hit
		partial := false
		for si := range c.spans {
			wr := spanResults[si][i]
			res.PaddedCells += wr.Padded
			if pst != nil && wr.Prune != nil {
				pst.Skipped += wr.Prune.Skipped
				pst.Abandoned += wr.Prune.Abandoned
				pst.Scanned += wr.Prune.Scanned
				pst.CellsSaved += wr.Prune.CellsSaved
				if wr.Prune.FloorFinal > pst.FloorFinal {
					// A shard-local floor is globally valid evidence: its
					// K records are records of the full database too.
					pst.FloorFinal = wr.Prune.FloorFinal
				}
			}
			if wr.Cancelled {
				partial = true
			}
			if wr.Cancelled || qerr != nil {
				res.Searched += wr.Searched
				res.Cells += wr.Cells
			} else {
				hits = append(hits, wr.Hits...)
			}
		}
		if qerr == nil && partial {
			// A shard saw this query's cancel but the context has not
			// reported it here yet; it fired either way.
			qerr = context.Canceled
		}
		if qerr != nil {
			out[i] = search.BatchResult{Result: res, Err: qerr}
			continue
		}
		res.Searched = c.db.Size()
		res.Cells = int64(len(queries[i].Seq)) * c.db.TotalBases()
		// Merge under the canonical total order — score descending,
		// record index ascending on ties — then keep the K best. Every
		// global winner survives its own span's top K, spans are
		// disjoint, and one response per span reached here, so this
		// reproduces the single-node merge bit for bit.
		sort.Slice(hits, func(a, b int) bool {
			if hits[a].Score != hits[b].Score {
				return hits[a].Score > hits[b].Score
			}
			return hits[a].Index < hits[b].Index
		})
		if len(hits) > m.k {
			hits = hits[:m.k]
		}
		res.Hits = hits
		if pst != nil && len(hits) == m.k && hits[m.k-1].Score > pst.FloorFinal {
			// The final floor comes from the merged hits, not the gossip
			// heap: a full top K is K distinct records scoring ≥ the K-th
			// score — the single-node tracker's exact final value — while
			// the gossip heap only knows whichever fire-and-forget floor
			// updates survived the transport, which would make the
			// reported floor vary with message loss on replays. Gossip
			// evidence is always ≤ the true K-th best, so the hits
			// dominate anything it could add.
			pst.FloorFinal = hits[m.k-1].Score
		}
		if !opt.NoEndpoints {
			if err := search.Realign(queries[i].Seq, c.db.Records(), sc, res.Hits); err != nil {
				return nil, err
			}
		}
		out[i] = search.BatchResult{Result: res}
	}
	return out, nil
}

// watchCancel fans one query's context cancellation out to the shards,
// so a client disconnect stops remote scan work, not just the merge.
func (c *Cluster) watchCancel(qid uint64, qctx context.Context, done chan struct{}) {
	select {
	case <-qctx.Done():
		for i := range c.workers {
			if !c.dead[i].Load() {
				c.send(c.masterID(), i, cCancel, cancelMsg{QID: qid})
			}
		}
	case <-done:
	case <-c.stop:
	}
}

// runSpan drives one span to completion: scatter with at-least-once
// retransmission, lease-based death detection, and replay on a
// survivor. Exactly one response is accepted, so a false-positive death
// (or a duplicate delivery) can never double the span's records into
// the merge.
func (c *Cluster) runSpan(ctx context.Context, home int, wqs []wireQuery, opt search.Options) ([]wireResult, error) {
	sp := c.spans[home]
	target := home
	register := func() (request, chan response) {
		id := c.rid.Add(1)
		ch := make(chan response, 1)
		c.mu.Lock()
		c.waiters[id] = ch
		c.mu.Unlock()
		return request{ID: id, Span: sp, Queries: wqs, Opt: opt}, ch
	}
	drop := func(id uint64) {
		c.mu.Lock()
		delete(c.waiters, id)
		c.mu.Unlock()
	}
	req, ch := register()
	defer func() { drop(req.ID) }()
	attempt := 0
	for {
		if c.shardDead(target) {
			nt, ok := c.survivor()
			if !ok {
				return nil, fmt.Errorf("shard: span %v lost: no live shard remains", sp)
			}
			// Replay on the survivor under a fresh request id: the dead
			// shard's cached response (if it was only slow) answers the
			// old id, which no longer has a waiter.
			drop(req.ID)
			req, ch = register()
			target = nt
			attempt = 0
			c.ct.reassigns.Add(1)
			c.lat[target].reassigned.Add(1)
		}
		start := time.Now()
		c.send(c.masterID(), target, cRequest, req)
		wait := c.opt.Timeout + time.Duration(c.opt.Retry.Delay(req.ID, attempt)*float64(time.Second))
		timer := time.NewTimer(wait)
		select {
		case r := <-ch:
			timer.Stop()
			c.lat[target].observe(time.Since(start))
			if r.Err != "" {
				return nil, fmt.Errorf("shard %d: %s", r.Shard, r.Err)
			}
			if len(r.Results) != len(wqs) {
				return nil, fmt.Errorf("shard %d: %d results for %d queries", r.Shard, len(r.Results), len(wqs))
			}
			return r.Results, nil
		case <-timer.C:
			attempt++
			c.ct.retries.Add(1)
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		case <-c.stop:
			timer.Stop()
			return nil, errors.New("shard: cluster closed")
		}
	}
}
