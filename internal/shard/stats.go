package shard

import (
	"sync/atomic"
	"time"
)

// ShardHealth is one shard's view in Stats: the master's lease-based
// liveness verdict, the worker's own crash flag (ground truth in
// tests), and the request/latency history of the spans it answered.
type ShardHealth struct {
	Shard int `json:"shard"`
	// Alive is the master's failure-detector verdict: false once the
	// shard's heartbeat lease expired. A false positive (slow, not dead)
	// costs duplicate work, never correctness.
	Alive bool `json:"alive"`
	// Killed reports the worker actually crashed (fault injection).
	Killed bool `json:"killed"`
	// Span is the shard's home partition of the canonical scan order.
	SpanLo int `json:"span_lo"`
	SpanHi int `json:"span_hi"`
	// Answered counts span requests this shard completed.
	Answered int64 `json:"answered"`
	// ReassignedTo counts dead shards' spans replayed on this shard.
	ReassignedTo int64 `json:"reassigned_to"`
	// LastBeatMS is milliseconds since the last heartbeat (-1 = never).
	LastBeatMS int64 `json:"last_beat_ms"`
	// AvgLatencyMS / MaxLatencyMS cover the span requests this shard
	// answered, measured at the master from send to response.
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	MaxLatencyMS float64 `json:"max_latency_ms"`
}

// Stats is a snapshot of the cluster's health and fault counters.
type Stats struct {
	Shards []ShardHealth `json:"shards"`

	Queries int64 `json:"queries"`
	Batches int64 `json:"batches"`
	// Retries counts request retransmissions after a timeout.
	Retries int64 `json:"retries"`
	// Kills counts workers that crashed (injected faults).
	Kills int64 `json:"kills"`
	// DeadDetected counts shards whose lease the master saw expire.
	DeadDetected int64 `json:"dead_detected"`
	// Reassigns counts span replays moved to a survivor.
	Reassigns int64 `json:"reassigns"`
	// FloorBroadcasts counts floor rises pushed to the shards;
	// GossipUpdates counts evidence batches received from them.
	FloorBroadcasts int64 `json:"floor_broadcasts"`
	GossipUpdates   int64 `json:"gossip_updates"`
	// Transport-level fault counters.
	MsgsLost      int64 `json:"msgs_lost"`
	MsgsDuped     int64 `json:"msgs_duped"`
	MsgsReordered int64 `json:"msgs_reordered"`
}

// counters is the cluster's atomic counter block.
type counters struct {
	queries         atomic.Int64
	batches         atomic.Int64
	retries         atomic.Int64
	kills           atomic.Int64
	deadDetected    atomic.Int64
	reassigns       atomic.Int64
	floorBroadcasts atomic.Int64
	gossipUpdates   atomic.Int64
}

// latAgg aggregates one shard's answered-request latency.
type latAgg struct {
	answered   atomic.Int64
	reassigned atomic.Int64
	sumMicros  atomic.Int64
	maxMicros  atomic.Int64
}

func (l *latAgg) observe(d time.Duration) {
	l.answered.Add(1)
	us := d.Microseconds()
	l.sumMicros.Add(us)
	for {
		cur := l.maxMicros.Load()
		if us <= cur || l.maxMicros.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Stats returns a point-in-time snapshot; safe to call concurrently
// with searches.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Queries:         c.ct.queries.Load(),
		Batches:         c.ct.batches.Load(),
		Retries:         c.ct.retries.Load(),
		Kills:           c.ct.kills.Load(),
		DeadDetected:    c.ct.deadDetected.Load(),
		Reassigns:       c.ct.reassigns.Load(),
		FloorBroadcasts: c.ct.floorBroadcasts.Load(),
		GossipUpdates:   c.ct.gossipUpdates.Load(),
		MsgsLost:        c.net.lost.Load(),
		MsgsDuped:       c.net.dupped.Load(),
		MsgsReordered:   c.net.reordered.Load(),
	}
	now := time.Now()
	for i, w := range c.workers {
		h := ShardHealth{
			Shard:        i,
			Alive:        !c.dead[i].Load(),
			Killed:       w.dead.Load(),
			SpanLo:       c.spans[i].Lo,
			SpanHi:       c.spans[i].Hi,
			Answered:     c.lat[i].answered.Load(),
			ReassignedTo: c.lat[i].reassigned.Load(),
			LastBeatMS:   -1,
		}
		if beat := c.lastBeat[i].Load(); beat != 0 {
			h.LastBeatMS = now.Sub(time.Unix(0, beat)).Milliseconds()
		}
		if n := h.Answered; n > 0 {
			h.AvgLatencyMS = float64(c.lat[i].sumMicros.Load()) / float64(n) / 1e3
		}
		h.MaxLatencyMS = float64(c.lat[i].maxMicros.Load()) / 1e3
		s.Shards = append(s.Shards, h)
	}
	return s
}
