// Package shard is the distributed database-search layer: a master
// partitions a prepared database across N worker shards by total cell
// count (the DSA load-balance rule — cells, not record counts, predict
// scan time), scatters each query batch to every shard, runs the full
// pruned/dispatched kernel stack per shard, and merges the per-shard
// top-K heaps under the canonical tie-break order. The result is
// bit-identical — hits, scores, coordinates, tie-breaks, Searched and
// Cells — to a single-node search.Run of the same query with the same
// Options.
//
// Robustness is structural, not best-effort: scatter is at-least-once
// (per-shard request timeouts with recovery.Backoff retransmission,
// worker-side dedup by request id), lease heartbeats detect a dead
// shard, and the master replays a dead shard's partition on a survivor
// — a query in flight when a shard is killed mid-scan returns the same
// bits as if nothing happened. The pruning floor is shared by gossip:
// workers stream result-eligible scores to the master, which maintains
// the global top-K floor and broadcasts rises back to every shard; a
// lost or late floor update only loosens pruning, never the result
// (prune.go's exactness argument survives distribution unchanged, see
// DESIGN.md §11).
package shard

import (
	"fmt"
	"sort"

	"genomedsm/internal/bio"
	"genomedsm/internal/search"
)

// Span is one shard's partition: the half-open rank range [Lo, Hi) of
// the database's canonical scan order (length descending, record index
// ascending on ties). Partitioning by rank range keeps every shard's
// local scan order a contiguous slice of the global one, so lane
// groups inside a shard pack the same near-equal lengths they would in
// a single-node scan. An empty span (Lo == Hi) is a valid shard with
// no work — it appears when shards outnumber records.
type Span struct {
	Lo, Hi int
}

// Len returns the number of records in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

func (s Span) String() string { return fmt.Sprintf("[%d,%d)", s.Lo, s.Hi) }

// PlanSpans cuts the database's canonical order into shards contiguous
// spans balanced by total base count: with every shard scanning the
// same query, bases are proportional to DP cells, so equal bases means
// equal work (DSA's partition rule). The cut points are the ranks where
// the cumulative base count first reaches i/shards of the total,
// rounded to the nearest lane-group boundary (multiple of
// bio.PackedLanes8) — an aligned span's lane groups coincide with the
// global 8-lane groups, so a worker attaches to its slice of the
// pack's precomputed (possibly mmap'd) lane layout instead of
// re-interleaving its sub-database (see subDB). The rounding moves at
// most half a group of records per cut and is deterministic — every
// master over the same database computes the same plan, and FuzzShardPlan
// proves the plan never affects results, only balance.
func PlanSpans(db *search.DB, shards int) []Span {
	order := db.Order()
	recs := db.Records()
	n := len(order)
	spans := make([]Span, shards)
	lo := 0
	var cum int64
	for s := 0; s < shards; s++ {
		hi := lo
		if s == shards-1 {
			hi = n
		} else {
			target := db.TotalBases() * int64(s+1) / int64(shards)
			for hi < n && cum < target {
				cum += int64(len(recs[order[hi]].Seq))
				hi++
			}
			if hi < n {
				down := hi - hi%bio.PackedLanes8
				up := min(down+bio.PackedLanes8, n)
				if hi-down <= up-hi {
					for hi > down {
						hi--
						cum -= int64(len(recs[order[hi]].Seq))
					}
				} else {
					for hi < up {
						cum += int64(len(recs[order[hi]].Seq))
						hi++
					}
				}
			}
		}
		spans[s] = Span{Lo: lo, Hi: hi}
		lo = hi
	}
	return spans
}

// ValidateSpans checks that spans is a partition of [0, n): contiguous,
// non-overlapping, covering every rank exactly once. Overlap would
// double records into the merged top K (corrupting tie-breaks), a gap
// would silently drop them — both break bit-exactness, so a custom
// plan is rejected up front.
func ValidateSpans(spans []Span, n int) error {
	if len(spans) == 0 {
		return fmt.Errorf("shard: empty span plan")
	}
	at := 0
	for i, sp := range spans {
		if sp.Lo != at {
			return fmt.Errorf("shard: span %d is %v, want Lo=%d (plan must be contiguous)", i, sp, at)
		}
		if sp.Hi < sp.Lo {
			return fmt.Errorf("shard: span %d is %v: Hi < Lo", i, sp)
		}
		at = sp.Hi
	}
	if at != n {
		return fmt.Errorf("shard: plan covers [0,%d) of %d records", at, n)
	}
	return nil
}

// subDB materializes one span as a prepared sub-database plus the
// local→global record index map. The sub-records are laid out in
// ascending global index order — NOT canonical order — because the
// top-K heap breaks score ties by record index, and local index order
// must agree with global index order for the merged tie-breaks to be
// bit-identical to a single-node scan. The canonical scan permutation
// is supplied explicitly: the span's slice of the global canonical
// order, translated to local indices. (It is still canonical for the
// sub-database: lengths stay non-increasing, and on equal lengths
// global rank order is global index order, which is local index
// order.)
func subDB(db *search.DB, sp Span) (*search.DB, []int, error) {
	order := db.Order()
	recs := db.Records()
	toGlobal := make([]int, 0, sp.Len())
	for r := sp.Lo; r < sp.Hi; r++ {
		toGlobal = append(toGlobal, order[r])
	}
	sort.Ints(toGlobal)
	local := make(map[int]int, sp.Len())
	sub := make([]bio.Record, sp.Len())
	for li, gi := range toGlobal {
		sub[li] = recs[gi]
		local[gi] = li
	}
	perm := make([]int, sp.Len())
	for j := range perm {
		perm[j] = local[order[sp.Lo+j]]
	}
	d, err := search.PreparedDB(sub, perm)
	if err != nil {
		return nil, nil, err
	}
	if ix := db.WordIndex(); ix != nil && sp.Lo == 0 && sp.Hi == len(recs) {
		// The degenerate single-span plan can reuse the pack's word
		// index; proper sub-spans re-derive nothing and fall back to the
		// per-run query-side prefilter, which is equally exact.
		d.SetWordIndex(ix)
	}
	if lay := db.Layout(); lay != nil && sp.Len() > 0 &&
		sp.Lo%bio.PackedLanes8 == 0 && (sp.Hi%bio.PackedLanes8 == 0 || sp.Hi == len(order)) {
		// A lane-aligned span's groups coincide with the global 8-lane
		// groups (the sub-DB's canonical order is the span's slice of the
		// global one, and groups cut every 8 ranks from rank 0), so the
		// sub-DB can alias the parent's precomputed — possibly mmap'd —
		// layout slice instead of re-interleaving. A trailing partial
		// group only occurs at sp.Hi == n, where all its lanes are
		// in-span, so the slice is exactly BuildLayout(sub-DB). Unaligned
		// custom spans skip the attach and fall back to lazy rebuild.
		if err := d.SetLayout(lay.Slice(sp.Lo/bio.PackedLanes8, (sp.Hi+bio.PackedLanes8-1)/bio.PackedLanes8)); err != nil {
			return nil, nil, err
		}
	}
	return d, toGlobal, nil
}
