package shard

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"genomedsm/internal/bio"
	"genomedsm/internal/search"
)

// synthInputs builds the reproducible query + database pair the tests
// scan: noise records with mutated query fragments planted every
// eighth, the same shape the CLI synthesizes.
func synthInputs(seed int64, qLen, n, baseLen int) (bio.Sequence, []bio.Record) {
	g := bio.NewGenerator(seed)
	q := g.Random(qLen)
	recs := make([]bio.Record, 0, n)
	for i := 0; i < n; i++ {
		if i%8 == 3 && qLen >= 2 {
			half := qLen / 2
			frag := q[(i*13)%half : half+(i*29)%(half+1)]
			recs = append(recs, bio.Record{
				ID: fmt.Sprintf("hom%d", i), Seq: g.MutatedCopy(frag, bio.DefaultMutationModel()),
			})
			continue
		}
		rl := baseLen/2 + (i*37)%(baseLen+1)
		recs = append(recs, bio.Record{ID: fmt.Sprintf("rec%d", i), Seq: g.Random(rl)})
	}
	return q, recs
}

// quietOptions returns cluster options that cannot false-positive a
// death during a clean test run on a slow host.
func quietOptions(shards int) Options {
	return Options{Shards: shards, Lease: time.Hour, Heartbeat: time.Second}
}

func mustEqualResults(t *testing.T, label string, got, want *search.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Hits, want.Hits) {
		t.Fatalf("%s: hits diverge\n got %+v\nwant %+v", label, got.Hits, want.Hits)
	}
	if got.Searched != want.Searched || got.Cells != want.Cells {
		t.Fatalf("%s: searched/cells %d/%d, want %d/%d",
			label, got.Searched, got.Cells, want.Searched, want.Cells)
	}
}

// TestShardedMatchesSingleNode pins bit-exactness of the sharded scan
// against search.RunCtx over shard counts and option shapes.
func TestShardedMatchesSingleNode(t *testing.T) {
	q, recs := synthInputs(42, 240, 48, 320)
	db := search.NewDB(recs)
	for _, opt := range []search.Options{
		{},
		{Prune: true},
		{Prune: true, Prefilter: true},
		{Lanes: 16, TopK: 5},
		{Lanes: 1, TopK: 3, Prune: true},
		{MinScore: 25, Prune: true},
		{NoEndpoints: true, TopK: 20},
	} {
		want, err := search.RunCtx(context.Background(), q, db, opt)
		if err != nil {
			t.Fatalf("single-node: %v", err)
		}
		for _, shards := range []int{1, 2, 3, 4, 9} {
			c, err := New(db, quietOptions(shards))
			if err != nil {
				t.Fatalf("New(%d): %v", shards, err)
			}
			got, err := c.Search(context.Background(), q, opt)
			c.Close()
			if err != nil {
				t.Fatalf("shards=%d opt=%+v: %v", shards, opt, err)
			}
			mustEqualResults(t, fmt.Sprintf("shards=%d opt=%+v", shards, opt), got, want)
		}
	}
}

// TestShardedBatchMatchesSingleNode covers the multi-query path the
// serve layer uses.
func TestShardedBatchMatchesSingleNode(t *testing.T) {
	q1, recs := synthInputs(7, 200, 40, 300)
	q2 := bio.NewGenerator(8).Random(150)
	db := search.NewDB(recs)
	opt := search.Options{Prune: true}
	batch := []search.BatchQuery{{Seq: q1}, {Seq: q2, TopK: 4}}
	want, err := search.RunBatch(context.Background(), batch, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(db, quietOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.SearchBatch(context.Background(), batch, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Err != nil || want[i].Err != nil {
			t.Fatalf("query %d: errs %v / %v", i, got[i].Err, want[i].Err)
		}
		mustEqualResults(t, fmt.Sprintf("query %d", i), got[i].Result, want[i].Result)
	}
}

// TestMergeTieBreakAcrossShardBoundaries pins the canonical merge order
// when per-shard heaps hold floor-tied scores: identical records score
// identically, the K-th place ties break by record index ascending, and
// the winners must not depend on where the shard cuts fall — including
// custom plans that slice straight through a tie run.
func TestMergeTieBreakAcrossShardBoundaries(t *testing.T) {
	g := bio.NewGenerator(99)
	strong := g.Random(120)
	weak := g.Random(120)
	q := strong
	// 24 records, all the same length so the canonical order is pure
	// index order: 12 copies of the query itself (top scores, all tied)
	// interleaved with 12 copies of an unrelated sequence.
	var recs []bio.Record
	for i := 0; i < 24; i++ {
		seq := weak
		if i%2 == 0 {
			seq = strong
		}
		recs = append(recs, bio.Record{ID: fmt.Sprintf("r%d", i), Seq: seq})
	}
	db := search.NewDB(recs)
	const k = 8
	opt := search.Options{TopK: k, Prune: true}
	want, err := search.RunCtx(context.Background(), q, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the expected winners are the 8 lowest-indexed strong
	// copies, in index order — the tie-break the merge must preserve.
	for i, h := range want.Hits {
		if h.Index != 2*i {
			t.Fatalf("baseline hit %d is record %d, want %d (tie-break drifted)", i, h.Index, 2*i)
		}
	}
	cases := []struct {
		name   string
		shards int
		spans  []Span
	}{
		{"1 shard", 1, nil},
		{"2 shards", 2, nil},
		{"3 shards", 3, nil},
		{"5 shards", 5, nil},
		{"24 shards", 24, nil},
		{"cut inside tie run", 3, []Span{{0, 5}, {5, 11}, {11, 24}}},
		{"one record spans", 4, []Span{{0, 1}, {1, 2}, {2, 3}, {3, 24}}},
		{"empty first shard", 3, []Span{{0, 0}, {0, 13}, {13, 24}}},
	}
	for _, tc := range cases {
		copt := quietOptions(tc.shards)
		copt.Spans = tc.spans
		c, err := New(db, copt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := c.Search(context.Background(), q, opt)
		c.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		mustEqualResults(t, tc.name, got, want)
	}
}

// TestKillOneShardMidQuery is the acceptance pin: a shard killed after
// its first group scan must be invisible in the results across ≥8
// seeds, and the counters must prove a kill, a detected death and a
// reassignment actually happened.
func TestKillOneShardMidQuery(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		q, recs := synthInputs(seed, 220, 48, 320)
		db := search.NewDB(recs)
		opt := search.Options{Prune: true, TopK: 7}
		want, err := search.RunCtx(context.Background(), q, db, opt)
		if err != nil {
			t.Fatal(err)
		}
		victim := int(seed) % 4
		c, err := New(db, Options{
			Shards:    4,
			Timeout:   40 * time.Millisecond,
			Lease:     250 * time.Millisecond,
			Heartbeat: 25 * time.Millisecond,
			Kills:     []Kill{{Shard: victim, AfterGroups: 1}},
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Search(context.Background(), q, opt)
		if err != nil {
			c.Close()
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := c.Stats()
		c.Close()
		mustEqualResults(t, fmt.Sprintf("seed %d (killed shard %d)", seed, victim), got, want)
		if st.Kills < 1 {
			t.Fatalf("seed %d: no kill recorded: %+v", seed, st)
		}
		if st.DeadDetected < 1 {
			t.Fatalf("seed %d: death never detected: %+v", seed, st)
		}
		if st.Reassigns < 1 {
			t.Fatalf("seed %d: span never reassigned: %+v", seed, st)
		}
		if !st.Shards[victim].Killed {
			t.Fatalf("seed %d: victim %d not marked killed: %+v", seed, victim, st.Shards[victim])
		}
	}
}

// TestLossDupReorderStaysExact drives the protocol through heavy
// transport faults: results stay bit-identical and retransmission
// covers the losses.
func TestLossDupReorderStaysExact(t *testing.T) {
	q, recs := synthInputs(5, 200, 40, 300)
	db := search.NewDB(recs)
	opt := search.Options{Prune: true}
	want, err := search.RunCtx(context.Background(), q, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 4; seed++ {
		c, err := New(db, Options{
			Shards:  4,
			Timeout: 25 * time.Millisecond,
			Lease:   time.Hour, // loss cannot kill a node; no false deaths
			Faults: &FaultConfig{
				Seed: seed, Loss: 0.4, Dup: 0.2, Reorder: 0.2,
				DelayBase: 100 * time.Microsecond, DelayJitter: time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Search(context.Background(), q, opt)
		st := c.Stats()
		c.Close()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mustEqualResults(t, fmt.Sprintf("faults seed %d", seed), got, want)
		if st.MsgsLost == 0 {
			t.Errorf("seed %d: fault plan injected no loss (loss=0.4 over %d+ sends)", seed, 8)
		}
	}
}

// TestPerQueryCancelStopsRemoteWork pins the serve satellite: one
// query's cancellation reaches the shards and stops its scan work
// there, while the other query of the batch completes bit-exactly.
func TestPerQueryCancelStopsRemoteWork(t *testing.T) {
	q1, recs := synthInputs(3, 300, 96, 500)
	q2 := bio.NewGenerator(4).Random(200)
	db := search.NewDB(recs)
	opt := search.Options{Lanes: 1} // scalar: slow enough that the cancel lands mid-scan
	wantBatch, err := search.RunBatch(context.Background(),
		[]search.BatchQuery{{Seq: q2, TopK: 5}}, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(db, quietOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before scatter: deterministic
	got, err := c.SearchBatch(context.Background(), []search.BatchQuery{
		{Seq: q1, Ctx: ctx},
		{Seq: q2, TopK: 5},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Err == nil {
		t.Fatal("cancelled query returned no error")
	}
	if got[0].Result.Searched >= db.Size() {
		t.Fatalf("cancelled query still scanned all %d records remotely", db.Size())
	}
	if got[1].Err != nil {
		t.Fatalf("surviving query errored: %v", got[1].Err)
	}
	mustEqualResults(t, "surviving query", got[1].Result, wantBatch[0].Result)
}

// TestRetriesRecoverLostRequests forces pure request loss and checks
// the retry counter moved.
func TestRetriesRecoverLostRequests(t *testing.T) {
	q, recs := synthInputs(9, 150, 24, 250)
	db := search.NewDB(recs)
	c, err := New(db, Options{
		Shards:  2,
		Timeout: 15 * time.Millisecond,
		Lease:   time.Hour,
		Faults:  &FaultConfig{Seed: 17, Loss: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want, err := search.RunCtx(context.Background(), q, db, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Search(context.Background(), q, search.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualResults(t, "lossy", got, want)
	if st := c.Stats(); st.Retries == 0 && st.MsgsLost == 0 {
		t.Errorf("60%% loss produced neither retries nor recorded losses: %+v", st)
	}
}

// TestStatsShape sanity-checks the health snapshot after clean traffic.
func TestStatsShape(t *testing.T) {
	q, recs := synthInputs(21, 150, 24, 250)
	db := search.NewDB(recs)
	c, err := New(db, Options{Shards: 3, Lease: time.Hour, Heartbeat: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Search(context.Background(), q, search.Options{Prune: true}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Queries != 1 || st.Batches != 1 {
		t.Fatalf("queries/batches %d/%d, want 1/1", st.Queries, st.Batches)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("%d shard healths, want 3", len(st.Shards))
	}
	var answered int64
	for _, h := range st.Shards {
		if !h.Alive || h.Killed {
			t.Fatalf("clean shard unhealthy: %+v", h)
		}
		answered += h.Answered
	}
	if answered != 3 {
		t.Fatalf("%d spans answered, want 3", answered)
	}
}

// TestSearchAfterClose and hook rejection.
func TestSearchBatchValidation(t *testing.T) {
	q, recs := synthInputs(33, 100, 8, 200)
	db := search.NewDB(recs)
	c, err := New(db, quietOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SearchBatch(context.Background(), []search.BatchQuery{
		{Seq: q, OnScore: func(int, int) {}},
	}, search.Options{}); err == nil {
		t.Fatal("reserved hooks accepted")
	}
	c.Close()
	if _, err := c.Search(context.Background(), q, search.Options{}); err == nil {
		t.Fatal("closed cluster accepted a search")
	}
	if _, err := New(db, Options{Shards: 0}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := New(db, Options{Shards: 2, Kills: []Kill{{Shard: 5}}}); err == nil {
		t.Fatal("out-of-range kill accepted")
	}
	bad := quietOptions(2)
	bad.Spans = []Span{{0, 3}, {4, 8}}
	if _, err := New(db, bad); err == nil {
		t.Fatal("gapped custom plan accepted")
	}
}
