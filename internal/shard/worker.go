package shard

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"genomedsm/internal/bio"
	"genomedsm/internal/search"
)

// The wire types. The transport is in-process, so "wire" means "what a
// real RPC would carry": the request holds the span and the resolved
// per-query parameters, the response holds hits already mapped to
// global record indices plus the scan diagnostics. Options rides along
// by value; its Router pointer is deliberately shared — the process is
// the cluster, and one calibrated router serving every shard is the
// resident server's sharing rule applied across shards.

// wireQuery is one query of a scattered batch.
type wireQuery struct {
	QID      uint64 // cluster-global query id: floor gossip and cancels key on it
	Seq      bio.Sequence
	TopK     int
	MinScore int
}

// request asks one shard to scan one span for a query batch. Retries
// resend the same ID (at-least-once); a replay on a survivor uses a
// fresh ID, so worker-side dedup never conflates the two.
type request struct {
	ID      uint64
	Span    Span
	Queries []wireQuery
	Opt     search.Options
}

// wireResult is one query's outcome on one shard.
type wireResult struct {
	QID      uint64
	Hits     []search.Hit // global record indices
	Searched int
	Cells    int64
	Padded   int64
	Prune    *search.PruneStats
	// Cancelled marks a query the master cancelled mid-scan; the
	// diagnostics then cover only the records processed on this shard.
	Cancelled bool
}

// response answers a request. Err carries a non-retryable scan failure
// (invalid options, kernel error) — the master fails the batch rather
// than retrying what cannot succeed.
type response struct {
	ID      uint64
	Shard   int
	Span    Span
	Results []wireResult
	Err     string
}

// scoreEv is one record's floor evidence: a result-eligible exact
// score, keyed by global record index so the master can dedup replays.
type scoreEv struct {
	Score, Index int
}

// floorUpdate gossips evidence from a worker to the master.
type floorUpdate struct {
	QID      uint64
	Evidence []scoreEv
}

// floorSet broadcasts a risen global floor from the master to workers.
type floorSet struct {
	QID   uint64
	Floor int
}

// heartbeat renews a worker's lease at the master.
type heartbeat struct {
	Shard int
	N     uint64
}

// cancelMsg propagates one query's context cancellation to a shard.
type cancelMsg struct {
	QID uint64
}

// doneCap bounds the worker's completed-response cache (at-least-once
// dedup). Eviction only costs work: a retransmit of an evicted request
// re-runs the scan and produces the identical response.
const doneCap = 128

// recentCancelCap bounds the tombstone set remembering cancelled query
// ids that had no live state when the cancel arrived (a replay racing a
// cancel). Eviction only costs work: the replayed scan runs to
// completion and the master discards it anyway.
const recentCancelCap = 1024

// queryState is a worker's per-query shared state: the gossiped floor
// hint, the cancel fan-out, and the cancelled latch. Reference-counted
// by the requests naming the query (the home request plus any replays),
// deleted when the last one finishes.
type queryState struct {
	floor atomic.Int64

	mu        sync.Mutex
	refs      int
	cancelled bool
	cancels   []context.CancelFunc
}

// worker is one shard: a sub-database scanner behind an inbox. Workers
// model crash-stop nodes — a killed worker stops scanning, answering
// and heartbeating, and everything sent to it is dropped.
type worker struct {
	c      *Cluster
	id     int
	ctx    context.Context
	cancel context.CancelFunc

	dead      atomic.Bool
	killAfter int64 // crash after this many per-query group scans (0 = never)
	progress  atomic.Int64

	mu        sync.Mutex
	running   map[uint64]bool
	done      map[uint64]*response
	doneOrder []uint64
	subs      map[Span]*subPart
	qs        map[uint64]*queryState
	recentCan map[uint64]bool
	canOrder  []uint64
}

// subPart is one cached materialized span.
type subPart struct {
	db       *search.DB
	toGlobal []int
}

func newWorker(c *Cluster, id int, killAfter int64) *worker {
	ctx, cancel := context.WithCancel(context.Background())
	return &worker{
		c: c, id: id, ctx: ctx, cancel: cancel, killAfter: killAfter,
		running:   make(map[uint64]bool),
		done:      make(map[uint64]*response),
		subs:      make(map[Span]*subPart),
		qs:        make(map[uint64]*queryState),
		recentCan: make(map[uint64]bool),
	}
}

// loop drains the worker's inbox for the cluster's lifetime. A dead
// worker keeps draining but ignores everything — crash-stop, not
// crash-block.
func (w *worker) loop() {
	for {
		select {
		case <-w.c.stop:
			return
		case m := <-w.c.net.inboxes[w.id]:
			if w.dead.Load() {
				continue
			}
			switch m.class {
			case cRequest:
				w.onRequest(m.payload.(request))
			case cFloor:
				w.onFloor(m.payload.(floorSet))
			case cCancel:
				w.onCancel(m.payload.(cancelMsg))
			}
		}
	}
}

// beats renews the worker's lease until it dies or the cluster stops.
func (w *worker) beats(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	var n uint64
	for {
		select {
		case <-w.c.stop:
			return
		case <-t.C:
			if w.dead.Load() {
				return
			}
			n++
			w.c.send(w.id, w.c.masterID(), cBeat, heartbeat{Shard: w.id, N: n})
		}
	}
}

// crash kills the worker: scans abort at the next group boundary, no
// response is sent, heartbeats stop, the lease expires, the master
// reassigns. Idempotent.
func (w *worker) crash() {
	if w.dead.Swap(true) {
		return
	}
	w.c.ct.kills.Add(1)
	w.cancel()
}

// step advances the kill clock: one per-query group scanned.
func (w *worker) step() {
	if w.killAfter > 0 && w.progress.Add(1) >= w.killAfter {
		w.crash()
	}
}

// onRequest dedups by request id: completed requests re-answer from
// cache (a retransmitted request means the response was lost), running
// ones are ignored (the retransmit raced the scan), new ones start.
func (w *worker) onRequest(req request) {
	w.mu.Lock()
	if resp, ok := w.done[req.ID]; ok {
		w.mu.Unlock()
		w.respond(resp)
		return
	}
	if w.running[req.ID] {
		w.mu.Unlock()
		return
	}
	w.running[req.ID] = true
	w.mu.Unlock()
	go w.run(req)
}

// onFloor applies a broadcast floor to the query's hint. Floors only
// ratchet up; a stale or reordered broadcast is ignored by the max.
// Unknown query ids are dropped — a floor is a speed hint, and the next
// broadcast after the query's request arrives lands normally.
func (w *worker) onFloor(f floorSet) {
	w.mu.Lock()
	st := w.qs[f.QID]
	w.mu.Unlock()
	if st == nil {
		return
	}
	for {
		cur := st.floor.Load()
		if int64(f.Floor) <= cur || st.floor.CompareAndSwap(cur, int64(f.Floor)) {
			return
		}
	}
}

// onCancel cancels the query's scans on this shard. A cancel for a
// query with no live state leaves a bounded tombstone, so a replay
// arriving after the cancel still starts pre-cancelled.
func (w *worker) onCancel(cm cancelMsg) {
	w.mu.Lock()
	st := w.qs[cm.QID]
	if st == nil {
		if !w.recentCan[cm.QID] {
			w.recentCan[cm.QID] = true
			w.canOrder = append(w.canOrder, cm.QID)
			if len(w.canOrder) > recentCancelCap {
				delete(w.recentCan, w.canOrder[0])
				w.canOrder = w.canOrder[1:]
			}
		}
		w.mu.Unlock()
		return
	}
	w.mu.Unlock()
	st.mu.Lock()
	st.cancelled = true
	cancels := st.cancels
	st.cancels = nil
	st.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// acquireQuery refs (or creates) the query's shared state.
func (w *worker) acquireQuery(qid uint64) *queryState {
	w.mu.Lock()
	st := w.qs[qid]
	if st == nil {
		st = &queryState{}
		if w.recentCan[qid] {
			st.cancelled = true
		}
		w.qs[qid] = st
	}
	st.mu.Lock()
	st.refs++
	st.mu.Unlock()
	w.mu.Unlock()
	return st
}

func (w *worker) releaseQuery(qid uint64, st *queryState) {
	st.mu.Lock()
	st.refs--
	last := st.refs == 0
	st.mu.Unlock()
	if last {
		w.mu.Lock()
		if w.qs[qid] == st {
			delete(w.qs, qid)
		}
		w.mu.Unlock()
	}
}

// subFor materializes (and caches) the span's sub-database.
func (w *worker) subFor(sp Span) (*subPart, error) {
	w.mu.Lock()
	p := w.subs[sp]
	w.mu.Unlock()
	if p != nil {
		return p, nil
	}
	db, toGlobal, err := subDB(w.c.db, sp)
	if err != nil {
		return nil, err
	}
	p = &subPart{db: db, toGlobal: toGlobal}
	w.mu.Lock()
	w.subs[sp] = p
	w.mu.Unlock()
	return p, nil
}

// gossipBuf batches one query's floor evidence between group
// boundaries, so gossip costs one message per group, not per record.
type gossipBuf struct {
	w   *worker
	qid uint64
	mu  sync.Mutex
	ev  []scoreEv
}

func (g *gossipBuf) add(score, globalIdx int) {
	g.mu.Lock()
	g.ev = append(g.ev, scoreEv{Score: score, Index: globalIdx})
	flush := len(g.ev) >= 64
	g.mu.Unlock()
	if flush {
		g.flush()
	}
}

func (g *gossipBuf) flush() {
	g.mu.Lock()
	ev := g.ev
	g.ev = nil
	g.mu.Unlock()
	if len(ev) == 0 || g.w.dead.Load() {
		return
	}
	g.w.c.send(g.w.id, g.w.c.masterID(), cFloor, floorUpdate{QID: g.qid, Evidence: ev})
}

// run scans the requested span and responds. A worker that crashed
// mid-scan answers nothing — the master's lease machinery takes over.
func (w *worker) run(req request) {
	resp := w.scan(req)
	if w.dead.Load() {
		return
	}
	w.mu.Lock()
	delete(w.running, req.ID)
	w.done[req.ID] = resp
	w.doneOrder = append(w.doneOrder, req.ID)
	if len(w.doneOrder) > doneCap {
		delete(w.done, w.doneOrder[0])
		w.doneOrder = w.doneOrder[1:]
	}
	w.mu.Unlock()
	w.respond(resp)
}

func (w *worker) respond(resp *response) {
	w.c.send(w.id, w.c.masterID(), cResponse, *resp)
}

func (w *worker) scan(req request) *response {
	resp := &response{ID: req.ID, Shard: w.id, Span: req.Span}
	part, err := w.subFor(req.Span)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	opt := req.Opt
	// Workers split the host cores: endpoints come from the master's
	// single Realign pass over the merged winners, not per shard.
	opt.NoEndpoints = true
	if opt.Workers <= 0 {
		opt.Workers = max(1, runtime.NumCPU()/len(w.c.workers))
	}
	gossip := opt.Prune && !w.c.opt.NoGossip

	queries := make([]search.BatchQuery, len(req.Queries))
	states := make([]*queryState, len(req.Queries))
	for i, wq := range req.Queries {
		st := w.acquireQuery(wq.QID)
		states[i] = st
		qctx, cancel := context.WithCancel(w.ctx)
		st.mu.Lock()
		if st.cancelled {
			st.mu.Unlock()
			cancel()
		} else {
			st.cancels = append(st.cancels, cancel)
			st.mu.Unlock()
		}
		bq := search.BatchQuery{
			Seq: wq.Seq, Ctx: qctx, TopK: wq.TopK, MinScore: wq.MinScore,
			OnGroup: w.step,
		}
		if gossip {
			buf := &gossipBuf{w: w, qid: wq.QID}
			bq.FloorHint = func() int { return int(st.floor.Load()) }
			bq.OnScore = func(score, idx int) { buf.add(score, part.toGlobal[idx]) }
			bq.OnGroup = func() {
				buf.flush()
				w.step()
			}
		}
		queries[i] = bq
	}
	defer func() {
		for i, st := range states {
			w.releaseQuery(req.Queries[i].QID, st)
		}
	}()

	results, err := search.RunBatch(w.ctx, queries, part.db, opt)
	if err != nil {
		// The worker context only dies by crash; anything else is a real
		// scan failure the master must not retry.
		if w.ctx.Err() == nil {
			resp.Err = err.Error()
		}
		return resp
	}
	resp.Results = make([]wireResult, len(results))
	for i, br := range results {
		wr := wireResult{QID: req.Queries[i].QID}
		if r := br.Result; r != nil {
			wr.Searched = r.Searched
			wr.Cells = r.Cells
			wr.Padded = r.PaddedCells
			wr.Prune = r.Prune
			if br.Err == nil {
				wr.Hits = make([]search.Hit, len(r.Hits))
				for j, h := range r.Hits {
					h.Index = part.toGlobal[h.Index]
					wr.Hits[j] = h
				}
			}
		}
		wr.Cancelled = br.Err != nil
		resp.Results[i] = wr
	}
	return resp
}
