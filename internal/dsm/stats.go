package dsm

import "fmt"

// Stats counts protocol events, for tests and reporting. All counters are
// per-node; System.TotalStats sums them.
type Stats struct {
	PageFetches   int64 // remote pages fetched from their home
	Twins         int64 // twins created (first write to a remote page)
	DiffsSent     int64 // diffs propagated to home nodes
	DiffBytes     int64 // total wire size of those diffs
	Invalidations int64 // cached pages dropped due to write notices
	Evictions     int64 // cache replacements
	MsgsSent      int64 // protocol messages sent
	BytesMoved    int64 // total bytes in protocol messages
	LockAcquires  int64
	LockReleases  int64
	Barriers      int64
	CVSignals     int64
	CVWaits       int64
	// Updates counts cached pages patched in place by the write-update
	// protocol.
	Updates int64
	// Migrations counts home migrations (system-wide; filled by
	// System.TotalStats).
	Migrations int64
}

func (s *Stats) add(o Stats) {
	s.PageFetches += o.PageFetches
	s.Twins += o.Twins
	s.DiffsSent += o.DiffsSent
	s.DiffBytes += o.DiffBytes
	s.Invalidations += o.Invalidations
	s.Evictions += o.Evictions
	s.MsgsSent += o.MsgsSent
	s.BytesMoved += o.BytesMoved
	s.LockAcquires += o.LockAcquires
	s.LockReleases += o.LockReleases
	s.Barriers += o.Barriers
	s.CVSignals += o.CVSignals
	s.CVWaits += o.CVWaits
	s.Updates += o.Updates
}

// String gives a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("fetches=%d twins=%d diffs=%d diffB=%d inval=%d evict=%d msgs=%d bytes=%d locks=%d/%d barriers=%d cv=%d/%d",
		s.PageFetches, s.Twins, s.DiffsSent, s.DiffBytes, s.Invalidations,
		s.Evictions, s.MsgsSent, s.BytesMoved, s.LockAcquires, s.LockReleases,
		s.Barriers, s.CVSignals, s.CVWaits)
}
