package dsm

import (
	"fmt"
	"sync/atomic"
)

// Stats counts protocol events, for tests and reporting. All counters are
// per-node; System.TotalStats sums them.
//
// The live per-node instance is written by the node goroutine with atomic
// adds and snapshotted with atomic loads (Node.Stats, System.TotalStats),
// so observers may poll statistics while the protocol is running — e.g. a
// monitoring loop dumping counters next to a live trace — without a data
// race. Snapshots returned to callers are plain values.
type Stats struct {
	PageFetches   int64 // remote pages fetched from their home
	Twins         int64 // twins created (first write to a remote page)
	DiffsSent     int64 // diffs propagated to home nodes
	DiffBytes     int64 // total wire size of those diffs
	Invalidations int64 // cached pages dropped due to write notices
	Evictions     int64 // cache replacements
	MsgsSent      int64 // protocol messages sent
	BytesMoved    int64 // total bytes in protocol messages
	LockAcquires  int64
	LockReleases  int64
	Barriers      int64
	CVSignals     int64
	CVWaits       int64
	// Updates counts cached pages patched in place by the write-update
	// protocol.
	Updates int64
	// Migrations counts home migrations (system-wide; filled by
	// System.TotalStats).
	Migrations int64
	// Retries counts retransmissions after injected message loss (each
	// costs the sender a backoff timeout).
	Retries int64
	// DupsSuppressed counts duplicated deliveries dropped by
	// receiver-side sequence-number deduplication.
	DupsSuppressed int64
	// Heartbeats counts failure-detector heartbeats sent.
	Heartbeats int64
	// Checkpoints counts checkpoints persisted at recovery points.
	Checkpoints int64
	// Crashes counts crash-stop faults suffered.
	Crashes int64
	// Recoveries counts completed crash recoveries (checkpoint restored,
	// node restarted).
	Recoveries int64
	// PagesRehomed counts pages whose home moved to a survivor during
	// crash recovery.
	PagesRehomed int64
}

// inc atomically adds v to the counter, which must be a field of a live
// per-node Stats.
func inc(counter *int64, v int64) { atomic.AddInt64(counter, v) }

// snapshot atomically loads every counter of a live Stats into a plain
// value.
func (s *Stats) snapshot() Stats {
	return Stats{
		PageFetches:   atomic.LoadInt64(&s.PageFetches),
		Twins:         atomic.LoadInt64(&s.Twins),
		DiffsSent:     atomic.LoadInt64(&s.DiffsSent),
		DiffBytes:     atomic.LoadInt64(&s.DiffBytes),
		Invalidations: atomic.LoadInt64(&s.Invalidations),
		Evictions:     atomic.LoadInt64(&s.Evictions),
		MsgsSent:      atomic.LoadInt64(&s.MsgsSent),
		BytesMoved:    atomic.LoadInt64(&s.BytesMoved),
		LockAcquires:  atomic.LoadInt64(&s.LockAcquires),
		LockReleases:  atomic.LoadInt64(&s.LockReleases),
		Barriers:      atomic.LoadInt64(&s.Barriers),
		CVSignals:     atomic.LoadInt64(&s.CVSignals),
		CVWaits:       atomic.LoadInt64(&s.CVWaits),
		Updates:       atomic.LoadInt64(&s.Updates),
		Migrations:    atomic.LoadInt64(&s.Migrations),

		Retries:        atomic.LoadInt64(&s.Retries),
		DupsSuppressed: atomic.LoadInt64(&s.DupsSuppressed),
		Heartbeats:     atomic.LoadInt64(&s.Heartbeats),
		Checkpoints:    atomic.LoadInt64(&s.Checkpoints),
		Crashes:        atomic.LoadInt64(&s.Crashes),
		Recoveries:     atomic.LoadInt64(&s.Recoveries),
		PagesRehomed:   atomic.LoadInt64(&s.PagesRehomed),
	}
}

func (s *Stats) add(o Stats) {
	s.PageFetches += o.PageFetches
	s.Twins += o.Twins
	s.DiffsSent += o.DiffsSent
	s.DiffBytes += o.DiffBytes
	s.Invalidations += o.Invalidations
	s.Evictions += o.Evictions
	s.MsgsSent += o.MsgsSent
	s.BytesMoved += o.BytesMoved
	s.LockAcquires += o.LockAcquires
	s.LockReleases += o.LockReleases
	s.Barriers += o.Barriers
	s.CVSignals += o.CVSignals
	s.CVWaits += o.CVWaits
	s.Updates += o.Updates
	s.Retries += o.Retries
	s.DupsSuppressed += o.DupsSuppressed
	s.Heartbeats += o.Heartbeats
	s.Checkpoints += o.Checkpoints
	s.Crashes += o.Crashes
	s.Recoveries += o.Recoveries
	s.PagesRehomed += o.PagesRehomed
}

// String gives a one-line summary. The fault-tolerance counters only
// appear once any of them is non-zero, keeping fault-free summaries
// identical to the pre-fault-layer format.
func (s Stats) String() string {
	out := fmt.Sprintf("fetches=%d twins=%d diffs=%d diffB=%d inval=%d evict=%d msgs=%d bytes=%d locks=%d/%d barriers=%d cv=%d/%d",
		s.PageFetches, s.Twins, s.DiffsSent, s.DiffBytes, s.Invalidations,
		s.Evictions, s.MsgsSent, s.BytesMoved, s.LockAcquires, s.LockReleases,
		s.Barriers, s.CVSignals, s.CVWaits)
	if s.Retries != 0 || s.DupsSuppressed != 0 || s.Heartbeats != 0 || s.Checkpoints != 0 ||
		s.Crashes != 0 || s.Recoveries != 0 || s.PagesRehomed != 0 {
		out += fmt.Sprintf(" retries=%d dups=%d hb=%d ckpt=%d crash=%d recov=%d rehome=%d",
			s.Retries, s.DupsSuppressed, s.Heartbeats, s.Checkpoints,
			s.Crashes, s.Recoveries, s.PagesRehomed)
	}
	return out
}
