package dsm

import (
	"fmt"
	"sort"

	"genomedsm/internal/cluster"
	"genomedsm/internal/recovery"
)

// msgHeaderBytes approximates the wire overhead of one protocol message.
const msgHeaderBytes = 32

// noticeBytes approximates the wire size of one write notice (page id +
// version).
const noticeBytes = 12

// cachedPage is one remote page held in a node's cache.
type cachedPage struct {
	data    []byte
	version uint64 // master version at fetch time
	twin    []byte // non-nil after the first write since the last flush
	dirty   bool
	seq     uint64 // insertion order, for FIFO replacement
}

// Node is one cluster workstation running the SPMD program. Its ID is the
// JIAJIA jiapid. All methods must be called from the node's own goroutine
// (the body passed to System.Run).
type Node struct {
	sys   *System
	id    int
	clock cluster.Clock
	stats Stats

	cache   map[int]*cachedPage
	nextSeq uint64
	// dirtyHome tracks pages homed here that this node wrote since its
	// last release/barrier; they need write notices but no diffs.
	dirtyHome map[int]bool
	// pendingNotices holds write notices for diffs flushed outside a
	// synchronization flush — cache evictions and invalidation-forced
	// merges. The diff is already home, but its notice must still ride
	// the next release/barrier or other nodes' stale copies would never
	// learn about the writes.
	pendingNotices map[int]uint64

	// Fault-tolerance state (see recovery.go). ops, points, diffSeq,
	// cvSeq and syncSeq are manipulated only by the node's own
	// goroutine; diffSeq/cvSeq/syncSeq are the sender side of the
	// at-least-once-with-dedup sequence numbering and survive a crash
	// via the checkpoint (reusing a sequence number after restart would
	// make the homes wrongly suppress fresh diffs as duplicates).
	ops         uint64                        // protocol operations, paces heartbeats
	points      int                           // recovery points passed (checkpoint counter)
	incarnation int                           // completed crash recoveries
	diffSeq     map[int]uint64                // per-page outbound diff sequence numbers
	cvSeq       []uint64                      // per-cv outbound signal sequence numbers
	syncSeq     uint64                        // outbound sync-message sequence number
	sendSeq     [cluster.NumMsgClasses]uint64 // per-class message counter (backoff jitter keys)
	restored    *recovery.Reader              // strategy section of the restored checkpoint
}

func newNode(sys *System, id int) *Node {
	return &Node{
		sys:            sys,
		id:             id,
		cache:          make(map[int]*cachedPage),
		dirtyHome:      make(map[int]bool),
		pendingNotices: make(map[int]uint64),
		diffSeq:        make(map[int]uint64),
		cvSeq:          make([]uint64, sys.opts.CondVars),
	}
}

// ID returns the node identifier (jiapid).
func (n *Node) ID() int { return n.id }

// Nprocs returns the number of nodes in the system.
func (n *Node) Nprocs() int { return n.sys.nprocs }

// Clock exposes the node's virtual clock so applications can charge
// computation and I/O.
func (n *Node) Clock() *cluster.Clock { return &n.clock }

// Config returns the cluster cost model.
func (n *Node) Config() cluster.Config { return n.sys.cfg }

// Stats returns a copy of the node's protocol statistics. Safe to call
// from any goroutine, including while the node is running.
func (n *Node) Stats() Stats { return n.stats.snapshot() }

// Gate pass-throughs: no-ops without a configured execution gate. The
// gate serializes node execution at protocol operations so the chaos
// harness can replay one interleaving deterministically from a seed.

// yield offers a scheduling point at the start of a protocol operation.
func (n *Node) yield() {
	n.maybeHeartbeat()
	if g := n.sys.cfg.Gate(); g != nil {
		g.Yield(n.id)
	}
}

// maybeHeartbeat sends a failure-detector heartbeat every HeartbeatEvery
// protocol operations while recovery is active. Survivors use the absence
// of heartbeats past the lease to confirm a crash; the simulation charges
// the send cost here and the lease wait on the recovery path.
func (n *Node) maybeHeartbeat() {
	if !n.sys.recActive {
		return
	}
	every := n.sys.recParams.HeartbeatEvery
	if every <= 0 {
		return
	}
	n.ops++
	if n.ops%uint64(every) != 0 {
		return
	}
	n.clock.Advance(n.sys.cfg.Net.MessageCost(msgHeaderBytes), cluster.Recovery)
	inc(&n.stats.Heartbeats, 1)
	inc(&n.stats.MsgsSent, 1)
	inc(&n.stats.BytesMoved, msgHeaderBytes)
}

// lossRetries charges the at-least-once delivery cost of the node's next
// message of the given class: the loss plan reports how many transmission
// attempts vanish, and each lost attempt costs the sender one
// retransmission timeout from the capped exponential backoff schedule.
// The successful final attempt is the round trip the caller charges.
func (n *Node) lossRetries(class cluster.MsgClass, cat cluster.Category) {
	n.sendSeq[class]++
	lost := n.sys.cfg.LostAttempts(class, n.id)
	if lost == 0 {
		return
	}
	bo := n.sys.recParams.Retry
	key := uint64(n.id)<<48 ^ uint64(class)<<40 ^ n.sendSeq[class]
	total := 0.0
	for a := 0; a < lost; a++ {
		total += bo.Delay(key, a)
	}
	n.clock.Advance(total, cat)
	inc(&n.stats.Retries, int64(lost))
	inc(&n.stats.MsgsSent, int64(lost))
	n.trace(TraceRetry, -1, -1, fmt.Sprintf("%s x%d", class, lost))
}

// park announces that the node is about to block on a channel receive.
func (n *Node) park() {
	if g := n.sys.cfg.Gate(); g != nil {
		g.Park(n.id)
	}
}

// unpark announces the receive completed; blocks until scheduled again.
func (n *Node) unpark() {
	if g := n.sys.cfg.Gate(); g != nil {
		g.Unpark(n.id)
	}
}

// wake announces that waiter is about to be sent the value it parked on.
func (n *Node) wake(waiter int) {
	if g := n.sys.cfg.Gate(); g != nil {
		g.Wake(waiter)
	}
}

// Compute charges the virtual cost of the given number of
// dynamic-programming cells to the node, honouring heterogeneous node
// speeds when configured.
func (n *Node) Compute(cells int64) {
	n.clock.Advance(float64(cells)*n.sys.cfg.CellTimeFor(n.id), cluster.Compute)
}

// pageSpan iterates over the pages covered by [start, start+length) in the
// absolute shared address space, calling f with (pageID, offset inside
// page, slice bounds into the caller's buffer).
func (n *Node) pageSpan(start, length int, f func(pageID, pageOff, bufOff, count int) error) error {
	ps := n.sys.cfg.PageSize
	done := 0
	for done < length {
		addr := start + done
		pid := addr / ps
		off := addr % ps
		count := ps - off
		if count > length-done {
			count = length - done
		}
		if err := f(pid, off, done, count); err != nil {
			return err
		}
		done += count
	}
	return nil
}

func (r Region) check(off, count int) error {
	if off < 0 || count < 0 || off+count > r.size {
		return fmt.Errorf("dsm: access [%d,%d) outside region of %d bytes", off, off+count, r.size)
	}
	return nil
}

// ReadAt copies len(buf) bytes at offset off of region r into buf. A miss
// on a remote page fetches it from its home (GETP/page reply), charging
// the communication cost.
func (n *Node) ReadAt(r Region, off int, buf []byte) error {
	if err := r.check(off, len(buf)); err != nil {
		return err
	}
	return n.pageSpan(r.start+off, len(buf), func(pid, pageOff, bufOff, count int) error {
		p := n.sys.page(pid)
		if p.home == n.id {
			p.readMaster(pageOff, buf[bufOff:bufOff+count])
			return nil
		}
		cp, err := n.ensureCached(p)
		if err != nil {
			return err
		}
		copy(buf[bufOff:bufOff+count], cp.data[pageOff:pageOff+count])
		return nil
	})
}

// WriteAt writes data at offset off of region r. The first write to a
// remote page since the last flush creates a twin (the multiple-writer
// protocol); home pages are written in place.
func (n *Node) WriteAt(r Region, off int, data []byte) error {
	if err := r.check(off, len(data)); err != nil {
		return err
	}
	return n.pageSpan(r.start+off, len(data), func(pid, pageOff, bufOff, count int) error {
		p := n.sys.page(pid)
		if p.home == n.id {
			p.writeMaster(pageOff, data[bufOff:bufOff+count], n.id)
			n.dirtyHome[pid] = true
			return nil
		}
		cp, err := n.ensureCached(p)
		if err != nil {
			return err
		}
		if cp.twin == nil {
			cp.twin = make([]byte, len(cp.data))
			copy(cp.twin, cp.data)
			inc(&n.stats.Twins, 1)
		}
		copy(cp.data[pageOff:pageOff+count], data[bufOff:bufOff+count])
		cp.dirty = true
		return nil
	})
}

// ensureCached returns the node's valid copy of remote page p, fetching it
// from the home on a miss and running the replacement algorithm when the
// remote-page area is full.
func (n *Node) ensureCached(p *page) (*cachedPage, error) {
	if cp, ok := n.cache[p.id]; ok {
		return cp, nil
	}
	// A miss talks to the home node: a scheduling point for the gate.
	n.yield()
	if len(n.cache) >= n.sys.opts.CacheSlots {
		if err := n.evictOne(); err != nil {
			return nil, err
		}
	}
	// GETP request to the home; reply carries the page.
	n.lossRetries(cluster.MsgPageFetch, cluster.Comm)
	data, version := p.snapshot()
	n.clock.Advance(n.sys.cfg.Net.RoundTrip(msgHeaderBytes, msgHeaderBytes+len(data))+
		n.sys.cfg.FaultDelay(cluster.MsgPageFetch, n.id), cluster.Comm)
	inc(&n.stats.PageFetches, 1)
	inc(&n.stats.MsgsSent, 2)
	inc(&n.stats.BytesMoved, int64(2*msgHeaderBytes+len(data)))
	if n.sys.cfg.Duplicated(cluster.MsgPageFetch, n.id) {
		// A duplicated page reply carries the same snapshot; the requester
		// matches replies to outstanding GETPs and drops the straggler.
		inc(&n.stats.DupsSuppressed, 1)
		n.trace(TraceDup, p.id, -1, "page reply")
	}
	cp := &cachedPage{data: data, version: version, seq: n.nextSeq}
	n.nextSeq++
	n.cache[p.id] = cp
	n.trace(TraceFetch, p.id, -1, fmt.Sprintf("v%d from home %d", version, p.home))
	return cp, nil
}

// evictOne runs the replacement algorithm: the victim is the oldest
// cached page by default (JIAJIA's policy), or whichever candidate the
// schedule-control hook picks; its modifications are flushed home first.
func (n *Node) evictOne() error {
	if len(n.cache) == 0 {
		return fmt.Errorf("dsm: node %d cache empty during eviction", n.id)
	}
	candidates := make([]int, 0, len(n.cache))
	for id := range n.cache {
		candidates = append(candidates, id)
	}
	// Oldest-first order (unique insertion seqs make this total), so the
	// default pick and the hook's candidate list are both deterministic.
	sort.Slice(candidates, func(a, b int) bool {
		return n.cache[candidates[a]].seq < n.cache[candidates[b]].seq
	})
	pick := 0
	if sched := n.sys.cfg.Sched(); sched != nil {
		if i := sched.PickEvictVictim(n.id, candidates); i >= 0 && i < len(candidates) {
			pick = i
		}
	}
	victimID := candidates[pick]
	victim := n.cache[victimID]
	if victim.dirty {
		n.flushPage(victimID, victim, n.pendingNotices)
	}
	delete(n.cache, victimID)
	inc(&n.stats.Evictions, 1)
	n.trace(TraceEvict, victimID, -1, "")
	return nil
}

// flushPage diffs the cached copy against its twin, sends the diff to the
// home (DIFF/DIFFGRANT exchange) and records a write notice in notices
// when non-nil.
func (n *Node) flushPage(pid int, cp *cachedPage, notices map[int]uint64) {
	d := makeDiff(pid, cp.twin, cp.data)
	cp.twin = nil
	cp.dirty = false
	if d.empty() {
		return
	}
	p := n.sys.page(pid)
	n.diffSeq[pid]++
	seq := n.diffSeq[pid]
	version, _ := p.applyDiff(d, n.id, seq)
	// Deliberately leave cp.version at its fetch-time value: the cached
	// copy does not contain writes other nodes (including the home) made
	// meanwhile, so the write notice for this very diff must be able to
	// invalidate it — as JIAJIA does, where written pages fall back to
	// invalid at the next synchronization unless the node is the home.
	n.lossRetries(cluster.MsgDiff, cluster.Comm)
	n.clock.Advance(n.sys.cfg.Net.RoundTrip(d.wireSize()+msgHeaderBytes, msgHeaderBytes)+
		n.sys.cfg.FaultDelay(cluster.MsgDiff, n.id), cluster.Comm)
	inc(&n.stats.DiffsSent, 1)
	inc(&n.stats.DiffBytes, int64(d.wireSize()))
	inc(&n.stats.MsgsSent, 2)
	inc(&n.stats.BytesMoved, int64(d.wireSize()+2*msgHeaderBytes))
	n.trace(TraceDiff, pid, -1, fmt.Sprintf("%dB -> v%d", d.wireSize(), version))
	if n.sys.cfg.Duplicated(cluster.MsgDiff, n.id) {
		// Duplicated delivery: the home sees the same sequence number
		// again and must drop it, or the diff would apply twice and its
		// version bump would masquerade as a fresh write.
		if _, applied := p.applyDiff(d, n.id, seq); !applied {
			inc(&n.stats.DupsSuppressed, 1)
			n.trace(TraceDup, pid, -1, fmt.Sprintf("diff seq %d", seq))
		}
	}
	if notices != nil {
		notices[pid] = version
	}
}

// flushAll generates diffs for every modified page (remote and home) and
// returns the write notices, as both the lock release and the barrier
// arrival do. Dirty pages flush in ascending page-id order — map order
// would leak the runtime's hash seed into diff-arrival order at the
// homes, wrecking seed replay — optionally re-permuted (bounded) by the
// fault plan to explore alternative legal diff orderings.
func (n *Node) flushAll() map[int]uint64 {
	notices := make(map[int]uint64)
	// Deliver notices orphaned by evictions and forced merges first; a
	// fresher flush of the same page below simply overwrites the entry.
	for pid, v := range n.pendingNotices {
		notices[pid] = v
		delete(n.pendingNotices, pid)
	}
	var dirty []int
	for pid, cp := range n.cache {
		if cp.dirty {
			dirty = append(dirty, pid)
		}
	}
	sort.Ints(dirty)
	if perm := n.sys.cfg.FaultPermute(cluster.MsgDiff, n.id, len(dirty)); perm != nil {
		reordered := make([]int, len(dirty))
		for i, j := range perm {
			reordered[i] = dirty[j]
		}
		dirty = reordered
	}
	for _, pid := range dirty {
		n.flushPage(pid, n.cache[pid], notices)
	}
	var home []int
	for pid := range n.dirtyHome {
		home = append(home, pid)
	}
	sort.Ints(home)
	for _, pid := range home {
		p := n.sys.page(pid)
		p.mu.Lock()
		notices[pid] = p.version
		p.mu.Unlock()
		delete(n.dirtyHome, pid)
	}
	return notices
}

// applyNotices brings cached copies that the write notices prove stale
// back in line: under write-invalidate they are dropped (refetched on the
// next access); under write-update they are patched in place with the
// home's retained diffs when the history reaches back far enough.
// Notices apply in ascending page-id order (deterministic), optionally
// re-permuted (bounded) by the fault plan, and the fault plan may charge
// an extra per-class delivery delay for the batch.
func (n *Node) applyNotices(notices map[int]uint64) {
	if len(notices) == 0 {
		return
	}
	n.lossRetries(cluster.MsgNotice, cluster.Comm)
	if d := n.sys.cfg.FaultDelay(cluster.MsgNotice, n.id); d > 0 {
		n.clock.Advance(d, cluster.Comm)
	}
	pids := make([]int, 0, len(notices))
	for pid := range notices {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	if perm := n.sys.cfg.FaultPermute(cluster.MsgNotice, n.id, len(pids)); perm != nil {
		reordered := make([]int, len(pids))
		for i, j := range perm {
			reordered[i] = pids[j]
		}
		pids = reordered
	}
	for _, pid := range pids {
		version := notices[pid]
		cp, ok := n.cache[pid]
		if !ok || cp.version >= version {
			continue
		}
		if n.sys.opts.Protocol == WriteUpdate {
			if n.patchPage(pid, cp) {
				continue
			}
		}
		if cp.dirty {
			// Concurrent writer under a different lock: push our own
			// modifications home before dropping the copy, so they are
			// not lost (multiple-writer merge).
			n.flushPage(pid, cp, n.pendingNotices)
		}
		delete(n.cache, pid)
		inc(&n.stats.Invalidations, 1)
		n.trace(TraceInval, pid, -1, "")
	}
}

// patchPage applies the home's retained diffs to the cached copy,
// reporting false when the history is too short (caller falls back to
// invalidation). Patching the twin as well keeps this node's next diff
// limited to its own writes.
func (n *Node) patchPage(pid int, cp *cachedPage) bool {
	p := n.sys.page(pid)
	diffs, ok := p.diffsSince(cp.version)
	if !ok {
		return false
	}
	bytes := 0
	for _, vd := range diffs {
		for _, run := range vd.d.runs {
			copy(cp.data[run.off:run.off+len(run.data)], run.data)
			if cp.twin != nil {
				copy(cp.twin[run.off:run.off+len(run.data)], run.data)
			}
		}
		bytes += vd.d.wireSize()
		cp.version = vd.version
	}
	if len(diffs) > 0 {
		n.clock.Advance(n.sys.cfg.Net.RoundTrip(msgHeaderBytes, msgHeaderBytes+bytes), cluster.Comm)
		inc(&n.stats.MsgsSent, 2)
		inc(&n.stats.BytesMoved, int64(2*msgHeaderBytes+bytes))
	}
	inc(&n.stats.Updates, 1)
	n.trace(TraceUpdate, pid, -1, fmt.Sprintf("%d diffs", len(diffs)))
	return true
}
