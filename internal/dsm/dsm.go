// Package dsm is a Go port of the JIAJIA software DSM system the paper
// runs on (§3.1): a page-based distributed shared memory implementing the
// Scope Consistency memory model with a home-based, write-invalidate,
// multiple-writer coherence protocol.
//
// Every protocol action of JIAJIA is implemented and observable:
//
//   - shared pages have a fixed home node and are always present there;
//   - a remote access miss fetches a copy of the page from its home
//     (the analogue of JIAJIA's SIGSEGV fault handler — Go cannot trap
//     loads and stores, so access goes through Node.ReadAt/WriteAt);
//   - the first write to a remote page creates a twin; at a release or
//     barrier the node produces diffs against the twins, sends them to the
//     home nodes and emits write notices;
//   - write notices ride on lock grants and barrier grants; receiving them
//     invalidates stale cached copies (version-checked, so a copy that is
//     still current is kept);
//   - each node caches a bounded number of remote pages; when the cache is
//     full a replacement evicts the oldest page, flushing its diff first;
//   - locks, condition variables (jia_setcv / jia_waitcv) and the Fig.-6
//     barrier protocol provide synchronization.
//
// Virtual time: nodes own a cluster.Clock; every protocol message advances
// it per the cluster.NetworkModel and blocking operations resume at
// causally-derived timestamps, reproducing the timing behaviour of the
// paper's 8-node testbed (see package cluster).
package dsm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"genomedsm/internal/cluster"
	"genomedsm/internal/recovery"
)

// Options configures a System beyond the cluster cost model, mirroring
// jia_config(option, value).
type Options struct {
	// CacheSlots is the per-node remote-page cache capacity in pages
	// (JIAJIA's fixed remote-page area). Zero means a generous default.
	CacheSlots int
	// Locks is the number of distinct lock variables available. Zero
	// means a default of 64.
	Locks int
	// CondVars is the number of condition variables. Zero means 64.
	CondVars int
	// HomeMigration enables JIAJIA's optional home-migration feature
	// (jia_config(H_MIG, ON)): at each barrier, a page written by exactly
	// one node other than its home migrates its home to that writer, so
	// subsequent writes become local. Off by default, as in JIAJIA ("at
	// the beginning of the execution, all features are set to OFF").
	HomeMigration bool
	// Protocol selects the coherence protocol (§3 discusses the
	// write-invalidate / write-update design choice; JIAJIA itself is
	// write-invalidate, the default here).
	Protocol Protocol
	// Tracer, when non-nil, receives every protocol event (page fetches,
	// diffs, invalidations, synchronization) — the equivalent of
	// JIAJIA's debug log.
	Tracer Tracer
}

// Protocol selects how write notices are honoured at synchronization.
type Protocol int

// Coherence protocols.
const (
	// WriteInvalidate drops stale cached copies; the next access
	// refetches the whole page from its home (JIAJIA's protocol).
	WriteInvalidate Protocol = iota
	// WriteUpdate patches stale cached copies with the home's retained
	// diffs at synchronization time, trading update traffic for
	// fault-free re-reads — the update side of the §3 design space.
	// Copies staler than the retained history still fall back to
	// invalidation.
	WriteUpdate
)

func (p Protocol) String() string {
	switch p {
	case WriteInvalidate:
		return "write-invalidate"
	case WriteUpdate:
		return "write-update"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

const (
	defaultCacheSlots = 1024
	defaultLocks      = 64
	defaultCondVars   = 64
)

// Region is a contiguous range of the shared virtual address space
// returned by Alloc.
type Region struct {
	start int
	size  int
}

// Size returns the region's length in bytes.
func (r Region) Size() int { return r.size }

// Slice returns the sub-region [off, off+n).
func (r Region) Slice(off, n int) (Region, error) {
	if off < 0 || n < 0 || off+n > r.size {
		return Region{}, fmt.Errorf("dsm: slice [%d,%d) outside region of %d bytes", off, off+n, r.size)
	}
	return Region{start: r.start + off, size: n}, nil
}

// System is one simulated JIAJIA cluster: the page table, the
// synchronization managers and the SPMD runner.
type System struct {
	cfg    cluster.Config
	opts   Options
	nprocs int

	mu        sync.Mutex
	pages     []*page // indexed by page id
	allocated int     // bytes handed out so far

	locks   []*lockVar
	cvs     []*condVar
	barrier *barrierVar

	migrations atomic.Int64

	nodes []*Node

	// Fault-tolerance configuration, resolved once at NewSystem. recActive
	// gates every piece of new crash-recovery behaviour (checkpoint I/O,
	// heartbeats) so fault-free runs — including pre-existing golden
	// traces — are byte-identical to the pre-recovery protocol. recParams
	// is always resolved, because loss-retry backoff applies even without
	// crash faults.
	recActive bool
	recParams recovery.Params
	// ckpts holds each node's latest checkpoint blob — the simulated
	// stable storage a restarting node restores from.
	ckpts [][]byte
}

// NewSystem builds a cluster of nprocs nodes with the given cost model.
func NewSystem(nprocs int, cfg cluster.Config, opts Options) (*System, error) {
	if nprocs < 1 {
		return nil, fmt.Errorf("dsm: need at least one node, got %d", nprocs)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.CacheSlots == 0 {
		opts.CacheSlots = defaultCacheSlots
	}
	// The chaos hooks ride on the cluster config because the alignment
	// strategies build their own Options; a harness can still squeeze
	// the cache (forcing replacement traffic) and observe the protocol
	// trace without a strategy-level plumbing change.
	if h := cfg.Hooks; h != nil {
		if h.CacheSlots > 0 {
			opts.CacheSlots = h.CacheSlots
		}
		if opts.Tracer == nil {
			if t, ok := h.Observer.(Tracer); ok {
				opts.Tracer = t
			}
		}
	}
	if opts.CacheSlots < 1 {
		return nil, fmt.Errorf("dsm: cache must hold at least one page, got %d", opts.CacheSlots)
	}
	if opts.Locks == 0 {
		opts.Locks = defaultLocks
	}
	if opts.CondVars == 0 {
		opts.CondVars = defaultCondVars
	}
	if h := cfg.Hooks; h != nil && len(h.Crashes) > 0 {
		// Crash-stop faults need the execution gate (recovery mutates
		// survivor state inline while they are quiescent) and a survivor
		// to re-home pages to.
		if h.Gate == nil {
			return nil, fmt.Errorf("dsm: crash faults require an execution gate")
		}
		if nprocs < 2 {
			return nil, fmt.Errorf("dsm: crash faults need at least 2 nodes, got %d", nprocs)
		}
		for _, k := range h.Crashes {
			if k.Node < 0 || k.Node >= nprocs {
				return nil, fmt.Errorf("dsm: crash fault names node %d, have %d nodes", k.Node, nprocs)
			}
		}
	}
	sys := &System{cfg: cfg, opts: opts, nprocs: nprocs}
	sys.recActive = cfg.RecoveryActive()
	sys.recParams = cfg.RecoveryParams()
	sys.ckpts = make([][]byte, nprocs)
	sys.locks = make([]*lockVar, opts.Locks)
	for i := range sys.locks {
		sys.locks[i] = newLockVar(i % nprocs) // lock managers distributed round-robin
	}
	sys.cvs = make([]*condVar, opts.CondVars)
	for i := range sys.cvs {
		sys.cvs[i] = newCondVar(i % nprocs)
	}
	sys.barrier = newBarrierVar(0, nprocs) // node 0 owns the barrier, as in Fig. 6
	sys.nodes = make([]*Node, nprocs)
	for i := range sys.nodes {
		sys.nodes[i] = newNode(sys, i)
	}
	return sys, nil
}

// Nprocs returns the number of nodes.
func (s *System) Nprocs() int { return s.nprocs }

// Config returns the cluster cost model in force.
func (s *System) Config() cluster.Config { return s.cfg }

// Node returns node i (0 ≤ i < Nprocs), for inspection after a run.
func (s *System) Node(i int) *Node { return s.nodes[i] }

// Alloc reserves size bytes of shared memory. Pages are homed according
// to JIAJIA's NUMA-style block distribution: consecutive pages of one
// allocation rotate across nodes starting at firstHome, so data can be
// placed near its writer. Alloc must be called before Run (as jia_alloc
// is called during initialization).
func (s *System) Alloc(size int, firstHome int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("dsm: allocation size %d must be positive", size)
	}
	if firstHome < 0 || firstHome >= s.nprocs {
		return Region{}, fmt.Errorf("dsm: home node %d out of range", firstHome)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Round the allocation up to whole pages, like jia_alloc.
	ps := s.cfg.PageSize
	start := s.allocated
	npages := (size + ps - 1) / ps
	for k := 0; k < npages; k++ {
		s.pages = append(s.pages, newPage(len(s.pages), (firstHome+k)%s.nprocs, ps))
	}
	s.allocated += npages * ps
	return Region{start: start, size: size}, nil
}

// AllocAt reserves size bytes with every page homed at the given node,
// for data owned by a single producer.
func (s *System) AllocAt(size, home int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("dsm: allocation size %d must be positive", size)
	}
	if home < 0 || home >= s.nprocs {
		return Region{}, fmt.Errorf("dsm: home node %d out of range", home)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.cfg.PageSize
	start := s.allocated
	npages := (size + ps - 1) / ps
	for k := 0; k < npages; k++ {
		s.pages = append(s.pages, newPage(len(s.pages), home, ps))
	}
	s.allocated += npages * ps
	return Region{start: start, size: size}, nil
}

// AllocBlocked reserves size bytes split into per-node blocks: node i is
// the home of the i-th equal share. This is the layout the paper's
// strategies use for data written predominantly by one node.
func (s *System) AllocBlocked(size int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("dsm: allocation size %d must be positive", size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := s.cfg.PageSize
	start := s.allocated
	npages := (size + ps - 1) / ps
	per := (npages + s.nprocs - 1) / s.nprocs
	for k := 0; k < npages; k++ {
		home := k / per
		if home >= s.nprocs {
			home = s.nprocs - 1
		}
		s.pages = append(s.pages, newPage(len(s.pages), home, ps))
	}
	s.allocated += npages * ps
	return Region{start: start, size: size}, nil
}

// page returns the page table entry for id.
func (s *System) page(id int) *page {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pages[id]
}

// Run executes body SPMD-style on every node (body receives the node,
// whose ID plays the role of JIAJIA's jiapid) and waits for all of them.
// A panic in any node is recovered and returned as an error naming the
// node. Under an execution gate, each node registers before running and
// announces completion, so the gate serializes the whole SPMD execution
// deterministically.
//
// When a scheduled crash-stop fault fires inside body (at a checkpoint —
// see Node.Checkpoint), the node recovers inline — lease-expiry
// detection, forced lock release, page re-homing, checkpoint restore —
// and body is re-invoked on the same node; Node.Restored distinguishes
// the restarted incarnation from a fresh start.
func (s *System) Run(body func(n *Node) error) error {
	var wg sync.WaitGroup
	errs := make([]error, s.nprocs)
	gate := s.cfg.Gate()
	for i := 0; i < s.nprocs; i++ {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			if gate != nil {
				gate.Register(n.id)
				defer gate.Done(n.id)
			}
			for {
				err := runBody(body, n)
				cf, crashed := err.(*crashFault)
				if !crashed {
					errs[n.id] = err
					return
				}
				// Crash-stop fault: this goroutine still holds the gate
				// token, so every other node is quiescent and the
				// cross-node recovery fixups below are race-free.
				if rerr := n.recoverFromCrash(cf); rerr != nil {
					errs[n.id] = rerr
					return
				}
			}
		}(s.nodes[i])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("node %d: %w", i, err)
		}
	}
	return nil
}

// runBody invokes body once, converting a crash-fault panic back into the
// sentinel error Run's retry loop dispatches on and any other panic into
// a node-naming error.
func runBody(body func(n *Node) error, n *Node) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if cf, ok := r.(*crashFault); ok {
				err = cf
				return
			}
			err = fmt.Errorf("dsm: node %d panicked: %v", n.id, r)
		}
	}()
	return body(n)
}

// Breakdowns returns every node's virtual-time breakdown.
func (s *System) Breakdowns() []cluster.Breakdown {
	out := make([]cluster.Breakdown, s.nprocs)
	for i, n := range s.nodes {
		out[i] = n.clock.Breakdown()
	}
	return out
}

// Makespan returns the maximum node virtual time — the simulated parallel
// execution time.
func (s *System) Makespan() float64 {
	best := 0.0
	for _, n := range s.nodes {
		if t := n.clock.Now(); t > best {
			best = t
		}
	}
	return best
}

// TotalStats aggregates protocol statistics across nodes. Safe to call
// while the system is running (counters are loaded atomically).
func (s *System) TotalStats() Stats {
	var out Stats
	for _, n := range s.nodes {
		out.add(n.stats.snapshot())
	}
	out.Migrations = s.migrations.Load()
	return out
}

// migrateHomes runs the home-migration scan at a barrier: every page
// whose only writer this epoch is a single non-home node moves its home
// there. It returns the migrated page ids (delivered with the barrier
// grant so the new homes can drop their now-redundant cached copies), and
// resets the per-epoch writer tracking. Called with every node parked at
// the barrier, so the page table is quiescent.
func (s *System) migrateHomes() []int {
	s.mu.Lock()
	pages := s.pages
	s.mu.Unlock()
	var migrated []int
	for _, p := range pages {
		p.mu.Lock()
		if s.opts.HomeMigration && p.writerEpoch >= 0 && p.writerEpoch != p.home {
			p.home = p.writerEpoch
			migrated = append(migrated, p.id)
		}
		p.writerEpoch = noWriter
		p.mu.Unlock()
	}
	s.migrations.Add(int64(len(migrated)))
	return migrated
}
