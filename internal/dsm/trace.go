package dsm

import (
	"fmt"
	"strings"
	"sync"
)

// TraceEvent is one protocol action, as it would appear in a JIAJIA debug
// log.
type TraceEvent struct {
	Node  int     // acting node
	VTime float64 // the node's virtual time after the action
	Kind  TraceKind
	Page  int // page id, or -1
	Sync  int // lock / cv id, or -1
	Note  string
}

// TraceKind classifies trace events.
type TraceKind string

// Trace event kinds.
const (
	TraceFetch     TraceKind = "GETP"    // remote page fetched from home
	TraceDiff      TraceKind = "DIFF"    // diff propagated to the home
	TraceInval     TraceKind = "INVAL"   // cached copy invalidated
	TraceUpdate    TraceKind = "UPDATE"  // cached copy patched (write-update)
	TraceEvict     TraceKind = "EVICT"   // cache replacement
	TraceAcquire   TraceKind = "ACQ"     // lock acquired
	TraceRelease   TraceKind = "REL"     // lock released
	TraceBarrier   TraceKind = "BARR"    // barrier passed
	TraceSetcv     TraceKind = "SETCV"   // condition variable signalled
	TraceWaitcv    TraceKind = "WAITCV"  // condition variable wait satisfied
	TraceMigration TraceKind = "MIGRATE" // page home migrated

	// Fault-tolerance events (PR 4): these let a -replay trace explain a
	// kill-and-recover schedule end to end.
	TraceRetry      TraceKind = "RETRY"   // retransmission(s) after message loss
	TraceDup        TraceKind = "DUP"     // duplicated delivery suppressed by dedup
	TraceCrash      TraceKind = "CRASH"   // crash-stop fault fired
	TraceDetect     TraceKind = "DETECT"  // crash confirmed by lease expiry
	TraceRehome     TraceKind = "REHOME"  // page re-homed to a survivor
	TraceCheckpoint TraceKind = "CKPT"    // checkpoint persisted at a recovery point
	TraceRestore    TraceKind = "RESTORE" // checkpoint restored into a fresh node
	TraceRestart    TraceKind = "RESTART" // node rejoined after recovery
)

// String renders the event as one log line.
func (e TraceEvent) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%9.6f] n%d %-7s", e.VTime, e.Node, e.Kind)
	if e.Page >= 0 {
		fmt.Fprintf(&sb, " page=%d", e.Page)
	}
	if e.Sync >= 0 {
		fmt.Fprintf(&sb, " sync=%d", e.Sync)
	}
	if e.Note != "" {
		fmt.Fprintf(&sb, " %s", e.Note)
	}
	return sb.String()
}

// Tracer receives protocol events. Implementations must be safe for
// concurrent use by all nodes.
type Tracer interface {
	Trace(ev TraceEvent)
}

// RingTracer retains the last Cap events.
type RingTracer struct {
	Cap int

	mu     sync.Mutex
	events []TraceEvent
	next   int
	total  int64
}

// NewRingTracer returns a tracer retaining up to capacity events (a
// generous default when capacity <= 0).
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &RingTracer{Cap: capacity}
}

// Trace implements Tracer.
func (r *RingTracer) Trace(ev TraceEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) < r.Cap {
		r.events = append(r.events, ev)
	} else {
		r.events[r.next] = ev
		r.next = (r.next + 1) % r.Cap
	}
	r.total++
}

// Total returns the number of events ever traced (including overwritten
// ones).
func (r *RingTracer) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in arrival order.
func (r *RingTracer) Events() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceEvent, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump renders the retained events, one per line.
func (r *RingTracer) Dump() string {
	var sb strings.Builder
	for _, ev := range r.Events() {
		sb.WriteString(ev.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ListTracer retains every event, in arrival order. Unlike RingTracer it
// never drops history, which is what seed-replay comparison needs: two
// runs of the same chaos seed must produce identical full sequences, not
// just identical tails.
type ListTracer struct {
	mu     sync.Mutex
	events []TraceEvent
}

// Trace implements Tracer.
func (l *ListTracer) Trace(ev TraceEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Events returns a copy of the retained events in arrival order.
func (l *ListTracer) Events() []TraceEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TraceEvent, len(l.events))
	copy(out, l.events)
	return out
}

// Len returns the number of retained events.
func (l *ListTracer) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Reset clears the retained events (reused between runs of one plan).
func (l *ListTracer) Reset() {
	l.mu.Lock()
	l.events = nil
	l.mu.Unlock()
}

// DumpTail renders up to max trailing events, one per line, prefixed
// with a truncation note when events were omitted.
func (l *ListTracer) DumpTail(max int) string {
	evs := l.Events()
	var sb strings.Builder
	if max > 0 && len(evs) > max {
		fmt.Fprintf(&sb, "… %d earlier events omitted …\n", len(evs)-max)
		evs = evs[len(evs)-max:]
	}
	for _, ev := range evs {
		sb.WriteString(ev.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// trace emits an event when tracing is configured.
func (n *Node) trace(kind TraceKind, page, sync int, note string) {
	if n.sys.opts.Tracer == nil {
		return
	}
	n.sys.opts.Tracer.Trace(TraceEvent{
		Node: n.id, VTime: n.clock.Now(), Kind: kind,
		Page: page, Sync: sync, Note: note,
	})
}
