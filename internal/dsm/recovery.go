package dsm

import (
	"fmt"
	"sort"

	"genomedsm/internal/cluster"
	"genomedsm/internal/recovery"
)

// This file is the crash-fault-tolerance layer: checkpoints at recovery
// points, the crash-stop fault sentinel, and the recovery manager that
// survivors (conceptually) and the simulation (actually, inline in the
// crashed node's goroutine) run to bring a dead node back.
//
// Fault model. A crash-stop fault wipes a node's volatile state — cached
// pages, twins, pending notices, dirty-home flags, sequence counters —
// but not the page masters homed elsewhere, not the manager-side
// synchronization state, and not the checkpoint on stable storage.
// Faults fire only at recovery points (Checkpoint calls), where the
// strategy holds no lock and sits between work units; the checkpoint
// flushes every dirty page home first, so the crash loses no completed
// work and the sequential-equivalence argument of DESIGN.md §9 goes
// through: a kill-and-recover run produces bit-identical alignments.

// crashFault is the panic sentinel a scheduled crash-stop fault raises at
// a checkpoint. System.Run converts it back into a recovery, never into a
// user-visible error.
type crashFault struct {
	kill recovery.Kill
}

func (c *crashFault) Error() string {
	return fmt.Sprintf("dsm: crash-stop fault %s", c.kill)
}

// RecoveryEnabled reports whether the checkpoint/recovery machinery is
// active for this run (crash faults scheduled, or checkpoints forced).
func (n *Node) RecoveryEnabled() bool { return n.sys.recActive }

// Incarnation returns how many crash recoveries this node has completed
// (0 for a node that never crashed).
func (n *Node) Incarnation() int { return n.incarnation }

// Restored returns a reader positioned at the strategy section of the
// checkpoint this node was recovered from, or nil when the node is on a
// fresh start. A strategy body checks it first thing and, when non-nil,
// decodes its cursor state and resumes mid-loop instead of starting over.
func (n *Node) Restored() *recovery.Reader {
	r := n.restored
	n.restored = nil
	return r
}

// Checkpoint persists the node's recovery-point state: it flushes every
// dirty remote page home (so the checkpoint is crash-consistent — all
// completed work is either at the page homes or in this blob), writes the
// dsm-side counters followed by whatever the strategy's encode callback
// appends, and charges the blob's write to the simulated NFS disk. When
// recovery is inactive it returns immediately without invoking encode, so
// strategies call it unconditionally at their natural boundaries for free.
//
// A scheduled crash-stop fault for this node's current recovery point
// fires here, after the blob is persisted — modelling a machine that dies
// right after its last successful checkpoint.
func (n *Node) Checkpoint(encode func(w *recovery.Writer)) error {
	if !n.sys.recActive {
		return nil
	}
	n.yield()
	n.points++

	// Flush dirty remote pages (ascending page id, like flushAll) so no
	// completed writes live only in volatile cache. Their write notices
	// park in pendingNotices and are saved below, to ride the next
	// synchronization flush of whichever incarnation performs it.
	var dirty []int
	for pid, cp := range n.cache {
		if cp.dirty {
			dirty = append(dirty, pid)
		}
	}
	sort.Ints(dirty)
	for _, pid := range dirty {
		n.flushPage(pid, n.cache[pid], n.pendingNotices)
	}

	w := recovery.NewWriter()
	w.Int(n.points)
	w.Uint(n.syncSeq)
	pids := make([]int, 0, len(n.diffSeq))
	for pid := range n.diffSeq {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	w.Int(len(pids))
	for _, pid := range pids {
		w.Int(pid)
		w.Uint(n.diffSeq[pid])
	}
	w.Int(len(n.cvSeq))
	for _, s := range n.cvSeq {
		w.Uint(s)
	}
	pids = pids[:0]
	for pid := range n.pendingNotices {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	w.Int(len(pids))
	for _, pid := range pids {
		w.Int(pid)
		w.Uint(n.pendingNotices[pid])
	}
	pids = pids[:0]
	for pid := range n.dirtyHome {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	w.Int(len(pids))
	for _, pid := range pids {
		w.Int(pid)
	}
	encode(w)
	blob := w.Finish()
	n.sys.ckpts[n.id] = blob
	n.clock.Advance(n.sys.cfg.Disk.WriteCost(len(blob)), cluster.Recovery)
	inc(&n.stats.Checkpoints, 1)
	n.trace(TraceCheckpoint, -1, -1, fmt.Sprintf("point %d, %dB", n.points, len(blob)))

	if kill, ok := n.sys.cfg.KillAt(n.id, n.points); ok {
		inc(&n.stats.Crashes, 1)
		n.trace(TraceCrash, -1, -1, fmt.Sprintf("at point %d", n.points))
		panic(&crashFault{kill: kill})
	}
	return nil
}

// recoverFromCrash is the recovery manager. It runs inline in the crashed
// node's goroutine while that goroutine holds the execution-gate token —
// every other node is parked or waiting for the gate, so the cross-node
// fixups (forced lock release, page re-homing, dropping the successor's
// stale copies) are race-free. All recovery work is charged to the failed
// node's clock in the Recovery category; survivors blocked on it observe
// the outage as barrier/lock wait time, exactly as a real cluster would.
func (n *Node) recoverFromCrash(cf *crashFault) error {
	sys := n.sys
	params := sys.recParams

	// The crash wipes volatile state.
	n.cache = make(map[int]*cachedPage)
	n.dirtyHome = make(map[int]bool)
	n.pendingNotices = make(map[int]uint64)
	n.diffSeq = make(map[int]uint64)
	for i := range n.cvSeq {
		n.cvSeq[i] = 0
	}
	n.syncSeq = 0
	n.nextSeq = 0
	n.ops = 0
	for i := range n.sendSeq {
		n.sendSeq[i] = 0
	}

	// Detection: survivors miss heartbeats and confirm the crash once the
	// lease expires.
	n.clock.Advance(params.Lease, cluster.Recovery)
	n.trace(TraceDetect, -1, -1, fmt.Sprintf("lease %.0fµs expired", params.Lease*1e6))

	// Break any locks the dead node held (defensive: the fault model
	// guarantees none at a recovery point) so survivors cannot wedge.
	if broken := n.forceReleaseLocks(n.clock.Now()); broken > 0 {
		n.trace(TraceDetect, -1, -1, fmt.Sprintf("%d locks force-released", broken))
	}

	// Re-home the dead node's pages to its successor, reconstructed from
	// the flushed-diff log (the simulation retains master contents; the
	// cost model charges one page-sized transfer per page). The successor
	// drops its now-shadowing cached copies: the master is local to it.
	// A dirty copy (the successor was mid-interval with unflushed writes)
	// is flushed into the master first — dropping it unflushed would
	// silently discard completed writes and break bit-exactness; the gate
	// token makes this cross-node flush race-free, like applyNotices'
	// multiple-writer merge.
	succ := (n.id + 1) % sys.nprocs
	rehomed := sys.rehome(n.id, succ)
	if len(rehomed) > 0 {
		per := sys.cfg.Net.MessageCost(msgHeaderBytes + sys.cfg.PageSize)
		n.clock.Advance(float64(len(rehomed))*per, cluster.Recovery)
		inc(&n.stats.PagesRehomed, int64(len(rehomed)))
		n.trace(TraceRehome, -1, -1, fmt.Sprintf("%d pages -> node %d", len(rehomed), succ))
		sn := sys.nodes[succ]
		for _, pid := range rehomed {
			if cp := sn.cache[pid]; cp != nil && cp.dirty {
				sn.flushPage(pid, cp, sn.pendingNotices)
			}
			delete(sn.cache, pid)
		}
	}

	// Reboot, then restore the checkpoint from stable storage.
	n.clock.Advance(params.RestartDelay+cf.kill.After, cluster.Recovery)
	blob := sys.ckpts[n.id]
	if blob == nil {
		return fmt.Errorf("dsm: node %d crashed with no checkpoint on stable storage", n.id)
	}
	n.clock.Advance(sys.cfg.Disk.WriteCost(len(blob)), cluster.Recovery) // NFS read ≈ write
	r, err := recovery.NewReader(blob)
	if err != nil {
		return fmt.Errorf("dsm: node %d checkpoint corrupt: %w", n.id, err)
	}
	n.points = r.Int()
	n.syncSeq = r.Uint()
	for i, cnt := 0, r.Int(); i < cnt; i++ {
		pid := r.Int()
		n.diffSeq[pid] = r.Uint()
	}
	if cnt := r.Int(); cnt != len(n.cvSeq) {
		// A count mismatch means the blob does not match this run's
		// configuration; bail out before the positional codec desyncs and
		// every later field mis-decodes.
		if err := r.Err(); err != nil {
			return fmt.Errorf("dsm: node %d checkpoint decode: %w", n.id, err)
		}
		return fmt.Errorf("dsm: node %d checkpoint: %d cv counters, want %d", n.id, cnt, len(n.cvSeq))
	}
	for i := range n.cvSeq {
		n.cvSeq[i] = r.Uint()
	}
	for i, cnt := 0, r.Int(); i < cnt; i++ {
		pid := r.Int()
		n.pendingNotices[pid] = r.Uint()
	}
	for i, cnt := 0, r.Int(); i < cnt; i++ {
		n.dirtyHome[r.Int()] = true
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("dsm: node %d checkpoint decode: %w", n.id, err)
	}
	n.restored = r
	n.incarnation++
	inc(&n.stats.Recoveries, 1)
	n.trace(TraceRestore, -1, -1, fmt.Sprintf("point %d, %dB", n.points, len(blob)))
	n.trace(TraceRestart, -1, -1, fmt.Sprintf("incarnation %d", n.incarnation))
	return nil
}

// forceReleaseLocks sweeps every lock held by this (crashed) node and
// releases it on the manager's behalf, granting to the earliest queued
// waiter by virtual arrival time. The crash-at-recovery-point model
// guarantees no lock is held at a checkpoint, so this is defensive depth:
// lease-based recovery must be able to break locks regardless. Returns
// the number of locks broken.
func (n *Node) forceReleaseLocks(now float64) int {
	broken := 0
	cfg := n.sys.cfg
	for id, lv := range n.sys.locks {
		lv.mu.Lock()
		if !lv.held || lv.holder != n.id {
			lv.mu.Unlock()
			continue
		}
		broken++
		if len(lv.queue) > 0 {
			best := 0
			for i, w := range lv.queue {
				if w.reqArrive < lv.queue[best].reqArrive {
					best = i
				}
			}
			w := lv.queue[best]
			lv.queue = append(lv.queue[:best], lv.queue[best+1:]...)
			departAt := now
			if w.reqArrive > departAt {
				departAt = w.reqArrive
			}
			lv.holder = w.node
			n.wake(w.node)
			w.ch <- lockGrant{departAt: departAt + cfg.ManagerService, notices: copyNotices(lv.notices)}
		} else {
			lv.held = false
			lv.holder = -1
			lv.freeAt = now + cfg.ManagerService
		}
		lv.mu.Unlock()
		n.trace(TraceRelease, -1, id, "forced by recovery")
	}
	return broken
}

// rehome moves every page homed at dead to succ, returning the moved page
// ids. Master contents are retained: the model is that the successor
// reconstructs each page from the last flushed diffs, which the
// home-based protocol guarantees cover every completed write.
func (s *System) rehome(dead, succ int) []int {
	s.mu.Lock()
	pages := s.pages
	s.mu.Unlock()
	var moved []int
	for _, p := range pages {
		p.mu.Lock()
		if p.home == dead {
			p.home = succ
			moved = append(moved, p.id)
		}
		p.mu.Unlock()
	}
	return moved
}
