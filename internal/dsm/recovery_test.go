package dsm

import (
	"strings"
	"testing"

	"genomedsm/internal/cluster"
	"genomedsm/internal/recovery"
)

// TestApplyDiffDedup pins the receiver-side sequence-number dedup that
// makes delivery at-least-once safe: each case replays a delivery
// sequence and lists which applications must take effect.
func TestApplyDiffDedup(t *testing.T) {
	type delivery struct {
		writer      int
		seq         uint64
		wantApplied bool
	}
	cases := []struct {
		name       string
		deliveries []delivery
	}{
		{
			name: "duplicate suppressed",
			deliveries: []delivery{
				{writer: 1, seq: 1, wantApplied: true},
				{writer: 1, seq: 1, wantApplied: false},
			},
		},
		{
			name: "fresh sequence applies",
			deliveries: []delivery{
				{writer: 1, seq: 1, wantApplied: true},
				{writer: 1, seq: 2, wantApplied: true},
			},
		},
		{
			name: "stale sequence suppressed",
			deliveries: []delivery{
				{writer: 1, seq: 3, wantApplied: true},
				{writer: 1, seq: 2, wantApplied: false},
			},
		},
		{
			name: "per-writer independence",
			deliveries: []delivery{
				{writer: 1, seq: 1, wantApplied: true},
				{writer: 2, seq: 1, wantApplied: true},
				{writer: 2, seq: 1, wantApplied: false},
				{writer: 1, seq: 2, wantApplied: true},
			},
		},
		{
			name: "seq zero bypasses dedup",
			deliveries: []delivery{
				{writer: 1, seq: 0, wantApplied: true},
				{writer: 1, seq: 0, wantApplied: true},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newPage(0, 0, 64)
			twin := make([]byte, 64)
			current := make([]byte, 64)
			current[7] = 0xAB
			d := makeDiff(0, twin, current)
			for i, dv := range tc.deliveries {
				_, applied := p.applyDiff(d, dv.writer, dv.seq)
				if applied != dv.wantApplied {
					t.Errorf("delivery %d (writer %d seq %d): applied=%v, want %v",
						i, dv.writer, dv.seq, applied, dv.wantApplied)
				}
			}
		})
	}
}

// TestCheckpointInactiveNoop: without crash faults or forced checkpoints
// the facility costs nothing — encode is never invoked, no blob is
// written, no counter moves — so strategies call Checkpoint
// unconditionally at their natural boundaries.
func TestCheckpointInactiveNoop(t *testing.T) {
	sys := newTestSystem(t, 1, Options{})
	called := false
	err := sys.Run(func(n *Node) error {
		if n.RecoveryEnabled() {
			return nil
		}
		return n.Checkpoint(func(w *recovery.Writer) { called = true })
	})
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("encode invoked while recovery inactive")
	}
	if sys.ckpts[0] != nil {
		t.Error("checkpoint blob written while recovery inactive")
	}
	if st := sys.TotalStats(); st.Checkpoints != 0 || st.Heartbeats != 0 {
		t.Errorf("recovery counters moved while inactive: %s", st.String())
	}
}

// TestCheckpointForcedRoundTrip: with ForceCheckpoints on, a checkpoint
// flushes dirty remote pages home, persists a blob, and the blob decodes
// back to the dsm counters and strategy payload that went in — the
// round-trip contract a restore relies on.
func TestCheckpointForcedRoundTrip(t *testing.T) {
	cfg := cluster.Zero()
	cfg.Hooks = &cluster.Hooks{Recovery: recovery.Params{ForceCheckpoints: true}}
	sys, err := NewSystem(2, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := sys.AllocAt(cfg.PageSize, 0)
	payload := []int32{3, 1, 4, 1, 5}
	err = sys.Run(func(n *Node) error {
		if n.ID() != 1 {
			return n.Barrier()
		}
		// Dirty a remote page, then checkpoint: the flush must reach the
		// home before the blob is persisted.
		if err := n.WriteAt(r, 3, []byte{0x5A}); err != nil {
			return err
		}
		if err := n.Checkpoint(func(w *recovery.Writer) {
			w.Int(42)
			w.Int32s(payload)
		}); err != nil {
			return err
		}
		return n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	blob := sys.ckpts[1]
	if blob == nil {
		t.Fatal("no checkpoint blob persisted")
	}
	rd, err := recovery.NewReader(blob)
	if err != nil {
		t.Fatalf("blob does not decode: %v", err)
	}
	// The dsm section, in Checkpoint's writing order.
	if points := rd.Int(); points != 1 {
		t.Errorf("points = %d, want 1", points)
	}
	rd.Uint() // syncSeq
	diffSeqs := map[int]uint64{}
	for i, cnt := 0, rd.Int(); i < cnt; i++ {
		diffSeqs[rd.Int()] = rd.Uint()
	}
	if len(diffSeqs) != 1 {
		t.Errorf("diffSeq entries = %d, want 1 (the flushed page)", len(diffSeqs))
	}
	for i, cnt := 0, rd.Int(); i < cnt; i++ { // cvSeq
		rd.Uint()
	}
	pending := 0
	for i, cnt := 0, rd.Int(); i < cnt; i++ { // pendingNotices
		rd.Int()
		rd.Uint()
		pending++
	}
	if pending != 1 {
		t.Errorf("pending notices = %d, want 1 (the flushed page's)", pending)
	}
	for i, cnt := 0, rd.Int(); i < cnt; i++ { // dirtyHome
		rd.Int()
	}
	// The strategy section round-trips.
	if got := rd.Int(); got != 42 {
		t.Errorf("payload int = %d, want 42", got)
	}
	got := rd.Int32s()
	if len(got) != len(payload) {
		t.Fatalf("payload slice length %d, want %d", len(got), len(payload))
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Errorf("payload[%d] = %d, want %d", i, got[i], payload[i])
		}
	}
	if err := rd.Err(); err != nil {
		t.Fatalf("decode: %v", err)
	}
	// The dirty write reached the home through the checkpoint flush.
	err = sys.Run(func(n *Node) error {
		if n.ID() != 0 {
			return nil
		}
		var b [1]byte
		if err := n.ReadAt(r, 3, b[:]); err != nil {
			return err
		}
		if b[0] != 0x5A {
			t.Errorf("home byte = %#x, want 0x5A (checkpoint did not flush)", b[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := sys.TotalStats(); st.Checkpoints != 1 {
		t.Errorf("checkpoints = %d, want 1", st.Checkpoints)
	}
}

// TestForceReleaseLocks drives the recovery manager's lock sweep
// directly: a lock held by the dead node is granted to its earliest
// waiter (by virtual arrival), a queue-less lock is freed, and locks held
// by others are untouched.
func TestForceReleaseLocks(t *testing.T) {
	sys := newTestSystem(t, 2, Options{Locks: 3})

	// Lock 0: held by node 0 with two queued waiters; the earlier arrival
	// (node 1 at t=2) must win even though it is queued second.
	lv0 := sys.locks[0]
	lv0.held, lv0.holder = true, 0
	late := &lockWaiter{node: 1, reqArrive: 5, ch: make(chan lockGrant, 1)}
	early := &lockWaiter{node: 1, reqArrive: 2, ch: make(chan lockGrant, 1)}
	lv0.queue = []*lockWaiter{late, early}

	// Lock 1: held by node 0, no waiters — must become free.
	lv1 := sys.locks[1]
	lv1.held, lv1.holder = true, 0

	// Lock 2: held by node 1 — not the dead node's, must survive.
	lv2 := sys.locks[2]
	lv2.held, lv2.holder = true, 1

	broken := sys.nodes[0].forceReleaseLocks(3.0)
	if broken != 2 {
		t.Fatalf("broke %d locks, want 2", broken)
	}
	select {
	case g := <-early.ch:
		// Grant departs no earlier than the sweep time or the request.
		if g.departAt < 3.0 {
			t.Errorf("grant departs at %g, before the sweep at 3.0", g.departAt)
		}
	default:
		t.Fatal("earliest waiter did not receive the forced grant")
	}
	select {
	case <-late.ch:
		t.Fatal("later waiter received a grant")
	default:
	}
	if !lv0.held || lv0.holder != 1 {
		t.Errorf("lock 0 after sweep: held=%v holder=%d, want held by node 1", lv0.held, lv0.holder)
	}
	if lv1.held || lv1.holder != -1 {
		t.Errorf("lock 1 after sweep: held=%v holder=%d, want free", lv1.held, lv1.holder)
	}
	if !lv2.held || lv2.holder != 1 {
		t.Errorf("lock 2 after sweep: held=%v holder=%d, want untouched", lv2.held, lv2.holder)
	}
}

// TestRecoveryFlushesSuccessorDirtyCopy drives recoverFromCrash directly
// with the successor holding a dirty cached copy of a page homed at the
// crashed node — a survivor mid-interval with unflushed writes. Re-homing
// must flush that copy into the master before dropping it; discarding it
// would silently lose completed writes and break bit-exactness.
func TestRecoveryFlushesSuccessorDirtyCopy(t *testing.T) {
	cfg := cluster.Zero()
	sys, err := NewSystem(2, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AllocAt(cfg.PageSize, 0); err != nil { // page 0 homed at node 0
		t.Fatal(err)
	}
	sys.recActive = true

	// A minimal valid checkpoint for node 0, in Checkpoint's writing
	// order, with an empty strategy section.
	w := recovery.NewWriter()
	w.Int(1)  // points
	w.Uint(0) // syncSeq
	w.Int(0)  // diffSeq entries
	w.Int(len(sys.nodes[0].cvSeq))
	for range sys.nodes[0].cvSeq {
		w.Uint(0)
	}
	w.Int(0) // pendingNotices
	w.Int(0) // dirtyHome
	sys.ckpts[0] = w.Finish()

	data := make([]byte, cfg.PageSize)
	data[7] = 0xAB
	sys.nodes[1].cache[0] = &cachedPage{
		data:  data,
		twin:  make([]byte, cfg.PageSize),
		dirty: true,
	}

	if err := sys.nodes[0].recoverFromCrash(&crashFault{}); err != nil {
		t.Fatal(err)
	}

	p := sys.page(0)
	if p.home != 1 {
		t.Errorf("page home = %d, want 1 (the successor)", p.home)
	}
	if p.master[7] != 0xAB {
		t.Errorf("master[7] = %#x, want 0xAB: re-homing dropped the successor's unflushed write", p.master[7])
	}
	if _, ok := sys.nodes[1].cache[0]; ok {
		t.Error("successor still caches the re-homed page")
	}
	if sys.nodes[1].pendingNotices[0] == 0 {
		t.Error("no pending write notice for the flushed page; other nodes' stale copies would never invalidate")
	}
}

// TestRestoreRejectsCVCountMismatch: a checkpoint whose cv-counter count
// does not match the run's configuration must fail the restore cleanly
// instead of desyncing the positional codec.
func TestRestoreRejectsCVCountMismatch(t *testing.T) {
	cfg := cluster.Zero()
	sys, err := NewSystem(2, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.recActive = true
	w := recovery.NewWriter()
	w.Int(1)  // points
	w.Uint(0) // syncSeq
	w.Int(0)  // diffSeq entries
	w.Int(len(sys.nodes[0].cvSeq) + 3)
	for i := 0; i < len(sys.nodes[0].cvSeq)+3; i++ {
		w.Uint(0)
	}
	w.Int(0) // pendingNotices
	w.Int(0) // dirtyHome
	sys.ckpts[0] = w.Finish()

	err = sys.nodes[0].recoverFromCrash(&crashFault{})
	if err == nil || !strings.Contains(err.Error(), "cv counters") {
		t.Errorf("recoverFromCrash = %v, want cv-counter mismatch error", err)
	}
}

// TestHeartbeats: with recovery active, a node emits a failure-detector
// heartbeat every HeartbeatEvery protocol operations.
func TestHeartbeats(t *testing.T) {
	cfg := cluster.Zero()
	cfg.Hooks = &cluster.Hooks{Recovery: recovery.Params{
		ForceCheckpoints: true, HeartbeatEvery: 8,
	}}
	sys, err := NewSystem(2, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const ops = 64
	err = sys.Run(func(n *Node) error {
		if n.ID() != 1 {
			return n.Barrier()
		}
		// Synchronization calls are protocol operations; each offers a
		// yield and so a heartbeat opportunity.
		for i := 0; i < ops; i++ {
			if err := n.Setcv(0); err != nil {
				return err
			}
		}
		return n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.TotalStats()
	if st.Heartbeats < ops/8 {
		t.Errorf("heartbeats = %d, want >= %d for %d sync ops every 8", st.Heartbeats, ops/8, ops)
	}
}

// TestStatsStringRecoveryBlock: the fault-tolerance counters appear in
// String only when one of them moved, keeping fault-free summaries
// byte-identical to the pre-fault-layer format.
func TestStatsStringRecoveryBlock(t *testing.T) {
	clean := Stats{PageFetches: 2}.String()
	if strings.Contains(clean, "retries=") {
		t.Errorf("fault-free summary mentions recovery counters: %s", clean)
	}
	faulty := Stats{Retries: 3, Crashes: 1, Recoveries: 1, PagesRehomed: 4}.String()
	for _, want := range []string{"retries=3", "crash=1", "recov=1", "rehome=4"} {
		if !strings.Contains(faulty, want) {
			t.Errorf("summary lacks %q: %s", want, faulty)
		}
	}
}
