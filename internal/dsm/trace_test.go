package dsm

import (
	"strings"
	"testing"

	"genomedsm/internal/cluster"
)

func TestTracerRecordsProtocolFlow(t *testing.T) {
	tracer := NewRingTracer(256)
	sys, err := NewSystem(2, cluster.Zero(), Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := sys.AllocAt(4096, 0)
	err = sys.Run(func(n *Node) error {
		if n.ID() == 0 {
			if err := n.WithLock(0, func() error { return n.WriteAt(r, 0, []byte{1}) }); err != nil {
				return err
			}
			if err := n.Setcv(0); err != nil {
				return err
			}
		} else {
			if err := n.Waitcv(0); err != nil {
				return err
			}
			if err := n.Acquire(0); err != nil {
				return err
			}
			var b [1]byte
			if err := n.ReadAt(r, 0, b[:]); err != nil {
				return err
			}
			if err := n.Release(0); err != nil {
				return err
			}
		}
		return n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tracer.Events()
	kinds := map[TraceKind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
	}
	for _, want := range []TraceKind{TraceAcquire, TraceRelease, TraceSetcv,
		TraceWaitcv, TraceFetch, TraceBarrier} {
		if kinds[want] == 0 {
			t.Errorf("no %s event traced; kinds: %v", want, kinds)
		}
	}
	dump := tracer.Dump()
	for _, want := range []string{"ACQ", "GETP", "BARR", "n0", "n1"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}
	if tracer.Total() != int64(len(events)) {
		t.Errorf("total %d, retained %d; nothing should be dropped here", tracer.Total(), len(events))
	}
}

func TestRingTracerWraps(t *testing.T) {
	tracer := NewRingTracer(4)
	for i := 0; i < 10; i++ {
		tracer.Trace(TraceEvent{Node: i, Kind: TraceFetch, Page: i, Sync: -1})
	}
	events := tracer.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d, want 4", len(events))
	}
	for i, ev := range events {
		if ev.Node != 6+i {
			t.Errorf("event %d from node %d, want %d (oldest retained)", i, ev.Node, 6+i)
		}
	}
	if tracer.Total() != 10 {
		t.Errorf("total %d", tracer.Total())
	}
	if NewRingTracer(0).Cap <= 0 {
		t.Error("default capacity not applied")
	}
}

func TestTraceEventString(t *testing.T) {
	ev := TraceEvent{Node: 3, VTime: 1.25, Kind: TraceDiff, Page: 7, Sync: -1, Note: "96B -> v4"}
	s := ev.String()
	for _, want := range []string{"n3", "DIFF", "page=7", "96B"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "sync=") {
		t.Errorf("negative sync id rendered: %q", s)
	}
}

func TestNoTracerNoOverhead(t *testing.T) {
	// Without a tracer the hot path must not panic or allocate events.
	sys, err := NewSystem(1, cluster.Zero(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := sys.AllocAt(4096, 0)
	err = sys.Run(func(n *Node) error {
		n.trace(TraceFetch, 0, -1, "ignored")
		return n.WriteAt(r, 0, []byte{1})
	})
	if err != nil {
		t.Fatal(err)
	}
}
