package dsm

import (
	"bytes"
	"fmt"
	"testing"

	"genomedsm/internal/cluster"
)

func newTestSystem(t *testing.T, nprocs int, opts Options) *System {
	t.Helper()
	sys, err := NewSystem(nprocs, cluster.Zero(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(0, cluster.Zero(), Options{}); err == nil {
		t.Error("zero nodes accepted")
	}
	bad := cluster.Zero()
	bad.PageSize = 0
	if _, err := NewSystem(2, bad, Options{}); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewSystem(2, cluster.Zero(), Options{CacheSlots: -1}); err == nil {
		t.Error("negative cache accepted")
	}
}

func TestAllocValidation(t *testing.T) {
	sys := newTestSystem(t, 2, Options{})
	if _, err := sys.Alloc(0, 0); err == nil {
		t.Error("zero-size alloc accepted")
	}
	if _, err := sys.Alloc(10, 5); err == nil {
		t.Error("out-of-range home accepted")
	}
	if _, err := sys.AllocBlocked(-1); err == nil {
		t.Error("negative blocked alloc accepted")
	}
}

func TestAllocHomes(t *testing.T) {
	sys := newTestSystem(t, 4, Options{})
	ps := sys.Config().PageSize
	// Rotating allocation starting at node 2: pages homed 2,3,0,1…
	if _, err := sys.Alloc(4*ps, 2); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if got := sys.page(k).home; got != (2+k)%4 {
			t.Errorf("page %d home %d, want %d", k, got, (2+k)%4)
		}
	}
	// Blocked allocation: 8 pages over 4 nodes = 2 pages per node.
	if _, err := sys.AllocBlocked(8 * ps); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if got := sys.page(4 + k).home; got != k/2 {
			t.Errorf("blocked page %d home %d, want %d", k, got, k/2)
		}
	}
}

func TestRegionSlice(t *testing.T) {
	sys := newTestSystem(t, 1, Options{})
	r, err := sys.Alloc(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := r.Slice(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 20 {
		t.Errorf("slice size %d", sub.Size())
	}
	if _, err := r.Slice(90, 20); err == nil {
		t.Error("overlong slice accepted")
	}
	if _, err := r.Slice(-1, 5); err == nil {
		t.Error("negative slice accepted")
	}
}

func TestReadWriteWithinNode(t *testing.T) {
	sys := newTestSystem(t, 1, Options{})
	r, _ := sys.Alloc(10000, 0)
	err := sys.Run(func(n *Node) error {
		data := []byte("hello, dsm world")
		if err := n.WriteAt(r, 4090, data); err != nil { // crosses a page boundary
			return err
		}
		buf := make([]byte, len(data))
		if err := n.ReadAt(r, 4090, buf); err != nil {
			return err
		}
		if !bytes.Equal(buf, data) {
			return fmt.Errorf("read %q, want %q", buf, data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccessBoundsChecked(t *testing.T) {
	sys := newTestSystem(t, 1, Options{})
	r, _ := sys.Alloc(100, 0)
	err := sys.Run(func(n *Node) error {
		if err := n.ReadAt(r, 95, make([]byte, 10)); err == nil {
			return fmt.Errorf("out-of-region read accepted")
		}
		if err := n.WriteAt(r, -1, []byte{1}); err == nil {
			return fmt.Errorf("negative-offset write accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestReleaseConsistencyFlow exercises the §3.1 protocol end to end:
// node 0 writes under a lock; node 1 sees the value after acquiring the
// same lock (write notice → invalidation → fetch), and protocol counters
// reflect exactly that flow.
func TestReleaseConsistencyFlow(t *testing.T) {
	sys := newTestSystem(t, 2, Options{})
	r, _ := sys.Alloc(4096, 0) // homed at node 0; node 1 is remote
	err := sys.Run(func(n *Node) error {
		if n.ID() == 0 {
			if err := n.Acquire(0); err != nil {
				return err
			}
			if err := n.WriteAt(r, 100, []byte{42}); err != nil {
				return err
			}
			if err := n.Release(0); err != nil {
				return err
			}
			if err := n.Setcv(0); err != nil {
				return err
			}
		} else {
			// Pre-warm a stale copy before node 0 writes is racy; instead
			// wait for the signal, then acquire: the grant's write notice
			// must invalidate nothing (no copy) and the read must fetch
			// the fresh value.
			if err := n.Waitcv(0); err != nil {
				return err
			}
			if err := n.Acquire(0); err != nil {
				return err
			}
			var buf [1]byte
			if err := n.ReadAt(r, 100, buf[:]); err != nil {
				return err
			}
			if buf[0] != 42 {
				return fmt.Errorf("node 1 read %d, want 42", buf[0])
			}
			return n.Release(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.TotalStats()
	if st.PageFetches != 1 {
		t.Errorf("page fetches %d, want 1", st.PageFetches)
	}
	if st.LockAcquires != 2 || st.LockReleases != 2 {
		t.Errorf("lock counts %d/%d", st.LockAcquires, st.LockReleases)
	}
}

// TestWriteNoticeInvalidation checks the scope-consistency core: a cached
// copy goes stale only when a write notice with a newer version arrives
// via a lock the reader acquires.
func TestWriteNoticeInvalidation(t *testing.T) {
	sys := newTestSystem(t, 2, Options{})
	r, _ := sys.Alloc(4096, 0)
	// Native Go channels order the phases *without* any DSM
	// synchronization, so we can observe the stale copy that scope
	// consistency legally serves between sync operations.
	firstReadDone := make(chan struct{})
	updateDone := make(chan struct{})
	err := sys.Run(func(n *Node) error {
		var buf [1]byte
		switch n.ID() {
		case 0:
			if err := n.WithLock(0, func() error { return n.WriteAt(r, 0, []byte{1}) }); err != nil {
				return err
			}
			if err := n.Setcv(0); err != nil {
				return err
			}
			<-firstReadDone
			if err := n.WithLock(0, func() error { return n.WriteAt(r, 0, []byte{2}) }); err != nil {
				return err
			}
			close(updateDone)
		case 1:
			if err := n.Waitcv(0); err != nil {
				return err
			}
			if err := n.Acquire(0); err != nil {
				return err
			}
			if err := n.ReadAt(r, 0, buf[:]); err != nil {
				return err
			}
			if buf[0] != 1 {
				return fmt.Errorf("first read %d, want 1", buf[0])
			}
			if err := n.Release(0); err != nil {
				return err
			}
			close(firstReadDone)
			<-updateDone
			// Without acquiring the lock, the stale cached copy is legally
			// served (scope consistency permits it).
			if err := n.ReadAt(r, 0, buf[:]); err != nil {
				return err
			}
			if buf[0] != 1 {
				return fmt.Errorf("unsynchronized read %d, scope consistency should serve the cached 1", buf[0])
			}
			// After acquire, the write notice invalidates and the read
			// refetches.
			if err := n.Acquire(0); err != nil {
				return err
			}
			if err := n.ReadAt(r, 0, buf[:]); err != nil {
				return err
			}
			if buf[0] != 2 {
				return fmt.Errorf("synchronized read %d, want 2", buf[0])
			}
			return n.Release(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.TotalStats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations %d, want exactly 1", st.Invalidations)
	}
	if st.PageFetches != 2 {
		t.Errorf("page fetches %d, want 2 (initial + after invalidation)", st.PageFetches)
	}
}

// TestMultipleWriterMerge has every node write a disjoint slice of the
// same page under different locks, then checks at the barrier that the
// home merged all diffs — the MRMW protocol in action.
func TestMultipleWriterMerge(t *testing.T) {
	const nprocs = 4
	sys := newTestSystem(t, nprocs, Options{})
	r, _ := sys.Alloc(4096, 0)
	err := sys.Run(func(n *Node) error {
		part := make([]byte, 1024)
		for i := range part {
			part[i] = byte(n.ID() + 1)
		}
		if err := n.WriteAt(r, n.ID()*1024, part); err != nil {
			return err
		}
		if err := n.Barrier(); err != nil {
			return err
		}
		// After the barrier every node must see all four quadrants.
		buf := make([]byte, 4096)
		if err := n.ReadAt(r, 0, buf); err != nil {
			return err
		}
		for q := 0; q < nprocs; q++ {
			for i := 0; i < 1024; i++ {
				if buf[q*1024+i] != byte(q+1) {
					return fmt.Errorf("node %d sees %d at quadrant %d offset %d", n.ID(), buf[q*1024+i], q, i)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.TotalStats()
	// Nodes 1..3 are remote writers: one twin and one diff each.
	if st.Twins != nprocs-1 || st.DiffsSent != nprocs-1 {
		t.Errorf("twins %d diffs %d, want %d each", st.Twins, st.DiffsSent, nprocs-1)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	cfg := cluster.Zero()
	cfg.CellTime = 1e-6
	sys, err := NewSystem(3, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Run(func(n *Node) error {
		n.Compute(int64(1000 * (n.ID() + 1))) // 1ms, 2ms, 3ms
		return n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// All clocks must have advanced to at least the slowest node's time.
	for i := 0; i < 3; i++ {
		if now := sys.Node(i).Clock().Now(); now < 3e-3 {
			t.Errorf("node %d at %g after barrier, want >= 3ms", i, now)
		}
	}
	b := sys.Breakdowns()
	if b[0].Cat[cluster.Barrier] < 1.9e-3 {
		t.Errorf("fastest node barrier wait %g, want ~2ms", b[0].Cat[cluster.Barrier])
	}
	if b[2].Cat[cluster.Barrier] > 1e-3 {
		t.Errorf("slowest node barrier wait %g, want ~0", b[2].Cat[cluster.Barrier])
	}
}

func TestRepeatedBarriers(t *testing.T) {
	sys := newTestSystem(t, 4, Options{})
	r, _ := sys.Alloc(4096, 0)
	const rounds = 10
	err := sys.Run(func(n *Node) error {
		for round := 0; round < rounds; round++ {
			if n.ID() == round%4 {
				if err := n.WriteAt(r, round, []byte{byte(round)}); err != nil {
					return err
				}
			}
			if err := n.Barrier(); err != nil {
				return err
			}
			var buf [1]byte
			if err := n.ReadAt(r, round, buf[:]); err != nil {
				return err
			}
			if buf[0] != byte(round) {
				return fmt.Errorf("node %d round %d read %d", n.ID(), round, buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockMutualExclusionCounter(t *testing.T) {
	// Classic increment test: every node increments a shared counter k
	// times under a lock; the final value must be exact.
	const nprocs, k = 4, 25
	sys := newTestSystem(t, nprocs, Options{})
	r, _ := sys.Alloc(8, 0)
	err := sys.Run(func(n *Node) error {
		for i := 0; i < k; i++ {
			if err := n.WithLock(3, func() error {
				v, err := n.ReadInt64(r, 0)
				if err != nil {
					return err
				}
				return n.WriteInt64(r, 0, v+1)
			}); err != nil {
				return err
			}
		}
		return n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	err = sys.Run(func(n *Node) error {
		if n.ID() == 0 {
			v, err := n.ReadInt64(r, 0)
			got = v
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != nprocs*k {
		t.Errorf("counter = %d, want %d", got, nprocs*k)
	}
}

func TestLockErrors(t *testing.T) {
	sys := newTestSystem(t, 1, Options{Locks: 2, CondVars: 2})
	err := sys.Run(func(n *Node) error {
		if err := n.Acquire(5); err == nil {
			return fmt.Errorf("out-of-range lock accepted")
		}
		if err := n.Release(0); err == nil {
			return fmt.Errorf("release of unheld lock accepted")
		}
		if err := n.Setcv(7); err == nil {
			return fmt.Errorf("out-of-range cv accepted")
		}
		if err := n.Waitcv(-1); err == nil {
			return fmt.Errorf("negative cv accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondVarStickySignal(t *testing.T) {
	// A signal sent before anyone waits must not be lost.
	sys := newTestSystem(t, 2, Options{})
	err := sys.Run(func(n *Node) error {
		if n.ID() == 0 {
			return n.Setcv(0)
		}
		// Node 1 may arrive long after the signal; Waitcv must return.
		return n.Waitcv(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCondVarPingPong(t *testing.T) {
	// The §4.2 handoff pattern: 0 signals 1, 1 signals back, many times.
	sys := newTestSystem(t, 2, Options{})
	const rounds = 50
	r, _ := sys.Alloc(4, 0)
	err := sys.Run(func(n *Node) error {
		for i := 0; i < rounds; i++ {
			if n.ID() == 0 {
				if err := n.WriteInt32s(r, 0, []int32{int32(i)}); err != nil {
					return err
				}
				if err := n.Setcv(0); err != nil {
					return err
				}
				if err := n.Waitcv(1); err != nil {
					return err
				}
			} else {
				if err := n.Waitcv(0); err != nil {
					return err
				}
				var v [1]int32
				if err := n.ReadInt32s(r, 0, v[:]); err != nil {
					return err
				}
				if v[0] != int32(i) {
					return fmt.Errorf("round %d read %d", i, v[0])
				}
				if err := n.Setcv(1); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanicsAndErrors(t *testing.T) {
	sys := newTestSystem(t, 2, Options{})
	err := sys.Run(func(n *Node) error {
		if n.ID() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Error("panic not reported")
	}
	err = sys.Run(func(n *Node) error {
		if n.ID() == 0 {
			return fmt.Errorf("deliberate")
		}
		return nil
	})
	if err == nil {
		t.Error("error not reported")
	}
}
