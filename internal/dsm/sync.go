package dsm

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"genomedsm/internal/cluster"
)

// lockVar is one JIAJIA lock. Each lock is assigned to a manager node; the
// ACQ/REL protocol of §3.1 runs against it, with write notices
// piggy-backed on the grant message.
type lockVar struct {
	manager int

	mu      sync.Mutex
	held    bool
	holder  int     // node currently holding the lock, or -1
	freeAt  float64 // virtual time the lock last became free at the manager
	queue   []*lockWaiter
	notices map[int]uint64 // cumulative write notices associated with the lock
}

type lockWaiter struct {
	node      int
	reqArrive float64
	ch        chan lockGrant
}

type lockGrant struct {
	departAt float64
	notices  map[int]uint64
}

func newLockVar(manager int) *lockVar {
	return &lockVar{manager: manager, holder: -1, notices: make(map[int]uint64)}
}

func copyNotices(src map[int]uint64) map[int]uint64 {
	out := make(map[int]uint64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

func mergeNotices(dst, src map[int]uint64) {
	for k, v := range src {
		if v > dst[k] {
			dst[k] = v
		}
	}
}

func (s *System) lock(id int) (*lockVar, error) {
	if id < 0 || id >= len(s.locks) {
		return nil, fmt.Errorf("dsm: lock %d out of range (have %d)", id, len(s.locks))
	}
	return s.locks[id], nil
}

// Acquire obtains lock id. On an acquire the node sends an ACQ message to
// the lock manager; the grant carries all write notices associated with
// the lock, and the acquirer invalidates every cached page they prove
// stale (§3.1).
func (n *Node) Acquire(id int) error {
	lv, err := n.sys.lock(id)
	if err != nil {
		return err
	}
	n.yield()
	// Yield before deciding contention: node goroutines run on however
	// few host CPUs exist, so a hot node could re-acquire an "uncontended"
	// lock forever while starved peers never get to enqueue. After the
	// yield, peers' requests are queued and the release path's
	// virtual-time grant ordering treats everyone fairly.
	runtime.Gosched()
	cfg := n.sys.cfg
	n.lossRetries(cluster.MsgSync, cluster.LockCV)
	n.syncSeq++
	seq := n.syncSeq
	if cfg.Duplicated(cluster.MsgSync, n.id) {
		// The duplicated ACQ reaches the manager after the original with a
		// stale sequence number, so it is dropped (enqueueing the node
		// twice would wedge the lock at the second grant). The drop is
		// modelled sender-side: the simulation delivers each logical ACQ
		// once, so only the accounting happens here. The manager cannot
		// gate *originals* on sequence numbers anyway — crash recovery
		// restores syncSeq from the checkpoint and legitimately replays
		// them, and dropping a replayed ACQ would wedge the recovered node.
		inc(&n.stats.DupsSuppressed, 1)
		n.trace(TraceDup, -1, id, fmt.Sprintf("acq seq %d", seq))
	}
	reqArrive := n.clock.Now() + cfg.Net.MessageCost(msgHeaderBytes)
	inc(&n.stats.MsgsSent, 1)
	inc(&n.stats.BytesMoved, msgHeaderBytes)
	inc(&n.stats.LockAcquires, 1)

	lv.mu.Lock()
	var grant lockGrant
	if !lv.held {
		lv.held = true
		lv.holder = n.id
		departAt := reqArrive
		if lv.freeAt > departAt {
			departAt = lv.freeAt
		}
		grant = lockGrant{departAt: departAt + cfg.ManagerService, notices: copyNotices(lv.notices)}
		lv.mu.Unlock()
	} else {
		w := &lockWaiter{node: n.id, reqArrive: reqArrive, ch: make(chan lockGrant, 1)}
		lv.queue = append(lv.queue, w)
		lv.mu.Unlock()
		n.park()
		grant = <-w.ch
		n.unpark()
	}
	resumeAt := grant.departAt + cfg.Net.MessageCost(msgHeaderBytes+len(grant.notices)*noticeBytes)
	n.clock.AdvanceTo(resumeAt, cluster.LockCV)
	n.trace(TraceAcquire, -1, id, fmt.Sprintf("%d notices", len(grant.notices)))
	n.applyNotices(grant.notices)
	return nil
}

// Release releases lock id. The releaser first sends all modifications
// made inside the critical section to the home nodes (diffs) and then a
// REL message with the write notices to the lock manager, which passes the
// lock to the next queued acquirer if any.
func (n *Node) Release(id int) error {
	lv, err := n.sys.lock(id)
	if err != nil {
		return err
	}
	n.yield()
	cfg := n.sys.cfg
	notices := n.flushAll()
	n.lossRetries(cluster.MsgSync, cluster.LockCV)
	relSize := msgHeaderBytes + len(notices)*noticeBytes
	relArrive := n.clock.Now() + cfg.Net.MessageCost(relSize)
	// The one-way REL costs the releaser only its message processing.
	n.clock.Advance(cfg.Net.PerMessageCPU, cluster.LockCV)
	inc(&n.stats.MsgsSent, 1)
	inc(&n.stats.BytesMoved, int64(relSize))
	inc(&n.stats.LockReleases, 1)

	n.trace(TraceRelease, -1, id, fmt.Sprintf("%d notices", len(notices)))
	lv.mu.Lock()
	defer lv.mu.Unlock()
	if !lv.held {
		return fmt.Errorf("dsm: node %d released lock %d that is not held", n.id, id)
	}
	mergeNotices(lv.notices, notices)
	if len(lv.queue) > 0 {
		// Grant to the waiter whose request arrived first in *virtual*
		// time (stable on ties, so equal-time requests stay FIFO). Real
		// goroutine scheduling is decoupled from the simulated clock;
		// granting by real arrival order would hand the lock to whichever
		// goroutine the Go scheduler ran first and skew contended
		// workloads toward one node. The schedule-control hook may pick
		// any other queued waiter instead (grant-order permutation).
		order := make([]int, len(lv.queue))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return lv.queue[order[a]].reqArrive < lv.queue[order[b]].reqArrive
		})
		best := order[0]
		if sched := cfg.Sched(); sched != nil {
			if k := sched.PickLockGrant(id, len(order)); k >= 0 && k < len(order) {
				best = order[k]
			}
		}
		w := lv.queue[best]
		lv.queue = append(lv.queue[:best], lv.queue[best+1:]...)
		departAt := relArrive
		if w.reqArrive > departAt {
			departAt = w.reqArrive
		}
		lv.holder = w.node
		n.wake(w.node)
		w.ch <- lockGrant{departAt: departAt + cfg.ManagerService, notices: copyNotices(lv.notices)}
	} else {
		lv.held = false
		lv.holder = -1
		lv.freeAt = relArrive + cfg.ManagerService
	}
	return nil
}

// WithLock runs body inside acquire/release of lock id.
func (n *Node) WithLock(id int, body func() error) error {
	if err := n.Acquire(id); err != nil {
		return err
	}
	if err := body(); err != nil {
		n.Release(id) //nolint:errcheck // body error takes precedence
		return err
	}
	return n.Release(id)
}

// barrierVar implements the Fig.-6 barrier: arriving nodes flush diffs,
// send BARR with their write notices to the owner; when everyone has
// arrived the owner broadcasts BARRGRANT with the union of the notices and
// the nodes invalidate accordingly.
type barrierVar struct {
	owner int
	total int

	mu        sync.Mutex
	arrived   int
	maxArrive float64
	notices   map[int]uint64
	waiters   []barrierWaiter
}

type barrierWaiter struct {
	node int
	ch   chan barrierGrant
}

type barrierGrant struct {
	departAt float64
	notices  map[int]uint64
	migrated []int // pages whose home moved (home-migration option)
}

func newBarrierVar(owner, total int) *barrierVar {
	return &barrierVar{owner: owner, total: total, notices: make(map[int]uint64)}
}

// validPermutation reports whether perm is a permutation of 0..k-1; a
// malformed schedule-control answer falls back to the default order.
func validPermutation(perm []int, k int) bool {
	if len(perm) != k {
		return false
	}
	seen := make([]bool, k)
	for _, v := range perm {
		if v < 0 || v >= k || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Barrier synchronizes all nodes (jia_barrier).
func (n *Node) Barrier() error {
	bv := n.sys.barrier
	cfg := n.sys.cfg
	n.yield()
	notices := n.flushAll()
	n.lossRetries(cluster.MsgSync, cluster.Barrier)
	barrSize := msgHeaderBytes + len(notices)*noticeBytes
	arrive := n.clock.Now() + cfg.Net.MessageCost(barrSize)
	inc(&n.stats.MsgsSent, 1)
	inc(&n.stats.BytesMoved, int64(barrSize))
	inc(&n.stats.Barriers, 1)

	bv.mu.Lock()
	mergeNotices(bv.notices, notices)
	if arrive > bv.maxArrive {
		bv.maxArrive = arrive
	}
	bv.arrived++
	var grant barrierGrant
	if bv.arrived == bv.total {
		// The barrier closes every synchronization scope (Fig. 6 clears
		// the write notices of all locks): notices parked at lock and
		// condition-variable managers join the broadcast union, so a
		// node that never re-acquired some lock still invalidates the
		// pages its critical sections wrote. Without this, a cached copy
		// whose writer last flushed under a lock survives the barrier
		// stale — a divergence the chaos harness finds by permuting
		// grant orders.
		for _, lv := range n.sys.locks {
			lv.mu.Lock()
			mergeNotices(bv.notices, lv.notices)
			lv.notices = make(map[int]uint64)
			lv.mu.Unlock()
		}
		for _, cv := range n.sys.cvs {
			cv.mu.Lock()
			mergeNotices(bv.notices, cv.notices)
			cv.notices = make(map[int]uint64)
			cv.mu.Unlock()
		}
		grant = barrierGrant{
			departAt: bv.maxArrive + cfg.ManagerService,
			notices:  bv.notices,
			migrated: n.sys.migrateHomes(),
		}
		// BARRGRANT broadcast: arrival order by default, or whatever
		// release order the schedule-control hook explores.
		order := make([]int, len(bv.waiters))
		for i := range order {
			order[i] = i
		}
		if sched := cfg.Sched(); sched != nil {
			if perm := sched.PickBarrierOrder(len(order)); validPermutation(perm, len(order)) {
				order = perm
			}
		}
		for _, i := range order {
			n.wake(bv.waiters[i].node)
			bv.waiters[i].ch <- grant
		}
		bv.waiters = nil
		bv.arrived = 0
		bv.maxArrive = 0
		bv.notices = make(map[int]uint64) // Fig. 6: the owner clears write notices
		bv.mu.Unlock()
	} else {
		ch := make(chan barrierGrant, 1)
		bv.waiters = append(bv.waiters, barrierWaiter{node: n.id, ch: ch})
		bv.mu.Unlock()
		n.park()
		grant = <-ch
		n.unpark()
	}
	resumeAt := grant.departAt + cfg.Net.MessageCost(msgHeaderBytes+len(grant.notices)*noticeBytes)
	n.clock.AdvanceTo(resumeAt, cluster.Barrier)
	n.trace(TraceBarrier, -1, -1, fmt.Sprintf("%d notices", len(grant.notices)))
	n.applyNotices(grant.notices)
	// If a page migrated its home to this node, the master is now local;
	// drop the redundant (and potentially shadow-stale) cached copy.
	for _, pid := range grant.migrated {
		if n.sys.page(pid).home == n.id {
			delete(n.cache, pid)
			n.trace(TraceMigration, pid, -1, "home is now local")
		}
	}
	return nil
}

// condVar implements jia_setcv / jia_waitcv. Signals are sticky (a set
// before any wait is remembered), making the producer/consumer handoff of
// §4.2 race-free; each signal wakes exactly one waiter, FIFO. Consistency
// actions mirror JIAJIA's: a setcv behaves like a release (diffs are
// flushed home and write notices attach to the condition variable) and a
// waitcv behaves like an acquire (the received notices invalidate stale
// copies) — this is what lets the wavefront pass border cells through
// shared memory with a signal per cell.
type condVar struct {
	manager int

	mu      sync.Mutex
	pending []cvSignal // unconsumed signals, FIFO
	waiters []cvWaiter
	notices map[int]uint64 // cumulative write notices attached to the cv
}

// cvWaiter is one parked jia_waitcv caller. Signal consumption stays
// strictly FIFO — unlike lock grants and barrier releases it is not a
// schedule-control degree of freedom, because each signal's notices
// cover only the releases up to its send and handing an early signal to
// a late waiter would legally deliver stale memory.
type cvWaiter struct {
	node int
	ch   chan cvSignal
}

type cvSignal struct {
	arrive  float64
	notices map[int]uint64
}

func newCondVar(manager int) *condVar {
	return &condVar{manager: manager, notices: make(map[int]uint64)}
}

func (s *System) cv(id int) (*condVar, error) {
	if id < 0 || id >= len(s.cvs) {
		return nil, fmt.Errorf("dsm: condition variable %d out of range (have %d)", id, len(s.cvs))
	}
	return s.cvs[id], nil
}

// Setcv signals condition variable id (jia_setcv). Like a release, it
// first propagates the signaller's modifications to the home nodes and
// attaches the resulting write notices to the condition variable.
func (n *Node) Setcv(id int) error {
	cv, err := n.sys.cv(id)
	if err != nil {
		return err
	}
	n.yield()
	cfg := n.sys.cfg
	notices := n.flushAll()
	n.lossRetries(cluster.MsgSync, cluster.LockCV)
	n.cvSeq[id]++
	seq := n.cvSeq[id]
	if cfg.Duplicated(cluster.MsgSync, n.id) {
		// The duplicated SETCV carries a stale sequence number, so it is
		// dropped instead of waking a second waiter for a single produced
		// value. Like the ACQ case, the drop is modelled sender-side: each
		// logical SETCV is delivered once, and cvSeq replays after crash
		// recovery, so the manager keeps no sequence gate of its own.
		inc(&n.stats.DupsSuppressed, 1)
		n.trace(TraceDup, -1, id, fmt.Sprintf("setcv seq %d", seq))
	}
	sigSize := msgHeaderBytes + len(notices)*noticeBytes
	arrive := n.clock.Now() + cfg.Net.MessageCost(sigSize)
	n.clock.Advance(cfg.Net.PerMessageCPU, cluster.LockCV)
	inc(&n.stats.MsgsSent, 1)
	inc(&n.stats.BytesMoved, int64(sigSize))
	inc(&n.stats.CVSignals, 1)

	n.trace(TraceSetcv, -1, id, "")
	cv.mu.Lock()
	defer cv.mu.Unlock()
	mergeNotices(cv.notices, notices)
	sig := cvSignal{arrive: arrive, notices: copyNotices(cv.notices)}
	if len(cv.waiters) > 0 {
		w := cv.waiters[0]
		cv.waiters = cv.waiters[1:]
		n.wake(w.node)
		w.ch <- sig
		return nil
	}
	cv.pending = append(cv.pending, sig)
	return nil
}

// Waitcv blocks until the condition variable is signalled (jia_waitcv).
// Like an acquire, the wake-up carries the write notices attached to the
// condition variable and invalidates stale cached copies.
func (n *Node) Waitcv(id int) error {
	cv, err := n.sys.cv(id)
	if err != nil {
		return err
	}
	n.yield()
	cfg := n.sys.cfg
	// WAIT registration message to the manager.
	n.lossRetries(cluster.MsgSync, cluster.LockCV)
	regArrive := n.clock.Now() + cfg.Net.MessageCost(msgHeaderBytes)
	inc(&n.stats.MsgsSent, 1)
	inc(&n.stats.BytesMoved, msgHeaderBytes)
	inc(&n.stats.CVWaits, 1)

	cv.mu.Lock()
	var sig cvSignal
	if len(cv.pending) > 0 {
		sig = cv.pending[0]
		cv.pending = cv.pending[1:]
		cv.mu.Unlock()
	} else {
		ch := make(chan cvSignal, 1)
		cv.waiters = append(cv.waiters, cvWaiter{node: n.id, ch: ch})
		cv.mu.Unlock()
		n.park()
		sig = <-ch
		n.unpark()
	}
	departAt := sig.arrive
	if regArrive > departAt {
		departAt = regArrive
	}
	resumeAt := departAt + cfg.ManagerService + cfg.Net.MessageCost(msgHeaderBytes+len(sig.notices)*noticeBytes)
	n.clock.AdvanceTo(resumeAt, cluster.LockCV)
	n.trace(TraceWaitcv, -1, id, "")
	n.applyNotices(sig.notices)
	return nil
}
