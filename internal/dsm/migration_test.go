package dsm

import (
	"fmt"
	"testing"

	"genomedsm/internal/cluster"
)

// migrationWorkload has node 1 repeatedly write a page homed at node 0
// across several barrier epochs, and returns the system for inspection.
func migrationWorkload(t *testing.T, migrate bool) *System {
	t.Helper()
	cfg := cluster.Calibrated2005()
	sys, err := NewSystem(2, cfg, Options{HomeMigration: migrate})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.AllocAt(cfg.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 6
	err = sys.Run(func(n *Node) error {
		for e := 0; e < epochs; e++ {
			if n.ID() == 1 {
				if err := n.WriteAt(r, 10, []byte{byte(e + 1)}); err != nil {
					return err
				}
			}
			if err := n.Barrier(); err != nil {
				return err
			}
			// Both nodes read the value each epoch.
			var b [1]byte
			if err := n.ReadAt(r, 10, b[:]); err != nil {
				return err
			}
			if b[0] != byte(e+1) {
				return fmt.Errorf("node %d epoch %d read %d", n.ID(), e, b[0])
			}
			// Second barrier: the writer must not start the next epoch's
			// write before everyone has read this one.
			if err := n.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestHomeMigrationMovesPage(t *testing.T) {
	sys := migrationWorkload(t, true)
	st := sys.TotalStats()
	if st.Migrations != 1 {
		t.Errorf("migrations %d, want 1 (page moves to its single writer once)", st.Migrations)
	}
	if home := sys.page(0).home; home != 1 {
		t.Errorf("page home %d, want 1 after migration", home)
	}
	// After migration, node 1's writes are home writes: only the first
	// epoch produces a twin + diff.
	if st.Twins != 1 || st.DiffsSent != 1 {
		t.Errorf("twins=%d diffs=%d, want 1 each (writes local after migration)", st.Twins, st.DiffsSent)
	}
}

func TestHomeMigrationOffByDefault(t *testing.T) {
	sys := migrationWorkload(t, false)
	st := sys.TotalStats()
	if st.Migrations != 0 {
		t.Errorf("migrations %d with the feature off", st.Migrations)
	}
	if home := sys.page(0).home; home != 0 {
		t.Errorf("page home %d, want unchanged 0", home)
	}
	// Without migration every epoch pays the twin + diff.
	if st.DiffsSent < 5 {
		t.Errorf("diffs=%d, want one per epoch without migration", st.DiffsSent)
	}
}

func TestHomeMigrationReducesSimulatedTime(t *testing.T) {
	off := migrationWorkload(t, false).Makespan()
	on := migrationWorkload(t, true).Makespan()
	if on >= off {
		t.Errorf("migration did not pay off: on=%.6fs off=%.6fs", on, off)
	}
}

func TestNoMigrationForMultiWriterPage(t *testing.T) {
	cfg := cluster.Zero()
	sys, err := NewSystem(2, cfg, Options{HomeMigration: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.AllocAt(cfg.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Run(func(n *Node) error {
		// Both nodes write disjoint halves: multi-writer page must keep
		// its home.
		if err := n.WriteAt(r, n.ID()*100, []byte{1}); err != nil {
			return err
		}
		return n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.TotalStats().Migrations != 0 {
		t.Error("multi-writer page migrated")
	}
	if sys.page(0).home != 0 {
		t.Error("multi-writer page changed home")
	}
}
