package dsm

import "encoding/binary"

// Typed accessors over shared regions. All values are little-endian; a
// region used through these helpers is a flat array of int32/int64 cells,
// which is how the alignment strategies lay out border rows, passage
// bands and result matrices.

// ReadInt32s fills out with the int32 values stored at byte offset off.
func (n *Node) ReadInt32s(r Region, off int, out []int32) error {
	buf := make([]byte, 4*len(out))
	if err := n.ReadAt(r, off, buf); err != nil {
		return err
	}
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

// WriteInt32s stores vals at byte offset off.
func (n *Node) WriteInt32s(r Region, off int, vals []int32) error {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return n.WriteAt(r, off, buf)
}

// ReadInt64 reads one int64 at byte offset off.
func (n *Node) ReadInt64(r Region, off int) (int64, error) {
	var buf [8]byte
	if err := n.ReadAt(r, off, buf[:]); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf[:])), nil
}

// WriteInt64 stores v at byte offset off.
func (n *Node) WriteInt64(r Region, off int, v int64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	return n.WriteAt(r, off, buf[:])
}
